// Quickstart: join two BATs with the strategy planner, natively and
// under the memory-hierarchy simulator.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"monetlite"
)

func main() {
	const cardinality = 1 << 20 // one million 8-byte [OID,value] BUNs

	// Two relations with the same unique value set in different orders:
	// an equi-join with hit rate one, the paper's §3.4.1 setup.
	left, right := monetlite.JoinInputs(cardinality, 42)

	// Ask the planner (the paper's cost models) for the best strategy
	// on the Origin2000, the paper's experimental platform.
	machine := monetlite.Origin2000()
	plan := monetlite.PlanAuto(cardinality, machine)
	fmt.Printf("planner picked: %s for %d tuples on %s\n", plan, cardinality, machine.Name)

	// Native run: real wall-clock time on this host.
	t0 := time.Now()
	result, err := monetlite.Execute(nil, left, right, plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native:    %d result pairs in %v\n", result.Len(), time.Since(t0))

	// Instrumented run: exact simulated cache/TLB behaviour.
	sim, err := monetlite.NewSim(machine)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := monetlite.Execute(sim, left, right, plan, nil); err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("simulated: %.1f ms on %s (L1 misses %d, L2 misses %d, TLB misses %d)\n",
		st.ElapsedMillis(), machine.Name, st.L1Misses, st.L2Misses, st.TLBMisses)

	// Compare against the naive baseline the paper starts from.
	simBase, err := monetlite.NewSim(machine)
	if err != nil {
		log.Fatal(err)
	}
	left.Unbind()
	right.Unbind()
	if _, err := monetlite.SimpleHashJoin(simBase, left, right, nil); err != nil {
		log.Fatal(err)
	}
	base := simBase.Stats()
	fmt.Printf("baseline:  simple hash join takes %.1f ms — the radix plan is %.1fx faster\n",
		base.ElapsedMillis(), base.ElapsedNanos()/st.ElapsedNanos())

	// A peek at the join index ([left OID, right OID] pairs).
	fmt.Printf("join index head: ")
	for i := 0; i < 4; i++ {
		fmt.Printf("[%d,%d] ", result.BUNs[i].Head, result.BUNs[i].Tail)
	}
	fmt.Println("...")
}
