// Cacheexplorer: the Figure-3 "reality check" as an interactive ASCII
// chart — the simulated stride-scan curve of each machine profile,
// showing how the memory-access penalty has grown from the 1992 Sun LX
// to the 1998 Origin2000 (and a hypothetical modern CPU).
//
// Run with:
//
//	go run ./examples/cacheexplorer
package main

import (
	"fmt"
	"log"
	"strings"

	"monetlite"
)

func main() {
	const iters = monetlite.ScanIterations
	strides := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	machines := append(monetlite.Machines(), monetlite.Modern())

	// Collect curves.
	curves := make(map[string][]float64)
	var peak float64
	for _, m := range machines {
		for _, s := range strides {
			r, err := monetlite.StrideScan(m, s, iters)
			if err != nil {
				log.Fatal(err)
			}
			curves[m.Name] = append(curves[m.Name], r.Millis())
			if r.Millis() > peak {
				peak = r.Millis()
			}
		}
	}

	fmt.Printf("simple in-memory scan of %d tuples (simulated ms, bar ∝ time)\n\n", iters)
	for _, m := range machines {
		fmt.Printf("%s (%d MHz, L1 line %dB, L2 line %dB):\n",
			m.Name, int(m.ClockMHz), m.L1.LineSize, m.L2.LineSize)
		for i, s := range strides {
			v := curves[m.Name][i]
			bar := strings.Repeat("#", 1+int(v/peak*60))
			fmt.Printf("  stride %4d  %7.2f ms  %s\n", s, v, bar)
		}
		r1 := curves[m.Name][0]
		rp := curves[m.Name][len(strides)-1]
		fmt.Printf("  -> memory-access penalty: %.1fx\n\n", rp/r1)
	}

	fmt.Println("the paper's conclusion: the penalty grows with every hardware")
	fmt.Println("generation — \"all advances in CPU power are neutralized due to")
	fmt.Println("the memory access bottleneck\" unless data structures shrink the")
	fmt.Println("stride (vertical fragmentation) and algorithms keep locality.")
}
