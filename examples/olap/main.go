// OLAP example: the Figure-4 "Item" table, decomposed into BATs with
// virtual OIDs and byte encodings, answering
//
//	SELECT shipmode, COUNT(*), SUM(price * (1 - discnt))
//	FROM   item
//	WHERE  date1 BETWEEN 8500 AND 9499
//	GROUP  BY shipmode
//
// and quantifying why vertical decomposition wins: the same
// one-column scan costs far less at stride 1 (encoded byte) than at
// stride 8 (BUN) or stride ~80+ (N-ary relational record).
//
// Run with:
//
//	go run ./examples/olap
package main

import (
	"fmt"
	"log"

	"monetlite"
)

func main() {
	const rows = 1 << 20

	table, err := monetlite.ItemTable(rows, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("item table: %d rows, %d columns\n", table.N, len(table.Columns()))
	fmt.Printf("  N-ary record width : %d bytes\n", table.Schema.RowWidth())
	fmt.Printf("  decomposed width   : %d bytes/tuple total", table.BUNWidth())
	sm, err := table.Column("shipmode")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(" (shipmode stored in %d byte via dictionary %v)\n\n", sm.Width(), sm.Enc.Dict)

	// The query, instrumented on the Origin2000 profile.
	machine := monetlite.Origin2000()
	sim, err := monetlite.NewSim(machine)
	if err != nil {
		log.Fatal(err)
	}
	table.Bind(sim)

	oids, err := table.SelectRange(sim, "date1", 8500, 9499)
	if err != nil {
		log.Fatal(err)
	}
	discnt, err := table.GatherFloat(sim, "discnt", oids)
	if err != nil {
		log.Fatal(err)
	}
	i := 0
	result, err := table.GroupAggregate(sim, "shipmode", "price", oids, func(price float64) float64 {
		v := price * (1 - discnt[i])
		i++
		return v
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %d of %d rows qualify; revenue by shipmode:\n", len(oids), rows)
	for _, r := range result {
		fmt.Printf("  %-8s  count=%7d  sum=%14.2f  avg=%8.2f\n", r.Key, r.Count, r.Sum, r.Sum/float64(r.Count))
	}
	st := sim.Stats()
	fmt.Printf("\nsimulated cost on %s: %.1f ms (L1 %d, L2 %d, TLB %d misses)\n\n",
		machine.Name, st.ElapsedMillis(), st.L1Misses, st.L2Misses, st.TLBMisses)

	// §3.1 quantified: the same single-column aggregate under three
	// physical layouts.
	nsm, bun, dsmStats, err := table.ScanColumnStats(machine, "shipmode")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scanning ONE column of this table (simulated, cold caches):")
	fmt.Printf("  N-ary records (%3d B/tuple): %7.1f ms\n", table.Schema.RowWidth(), nsm.ElapsedMillis())
	fmt.Printf("  8-byte BUNs   (  8 B/tuple): %7.1f ms\n", bun.ElapsedMillis())
	fmt.Printf("  encoded bytes (  1 B/tuple): %7.1f ms  <- %0.1fx faster than N-ary\n",
		dsmStats.ElapsedMillis(), nsm.ElapsedNanos()/dsmStats.ElapsedNanos())

	// The §3.1 predicate re-mapping: selecting a string never decodes.
	mail, err := table.SelectString(nil, "shipmode", "MAIL")
	if err != nil {
		log.Fatal(err)
	}
	code, _ := sm.Enc.Code("MAIL")
	fmt.Printf("\npredicate shipmode='MAIL' re-mapped to byte code %d: %d rows\n", code, len(mail))
}
