// OLAP example: the Figure-4 "Item" table, decomposed into BATs with
// virtual OIDs and byte encodings, answering
//
//	SELECT shipmode, COUNT(*), SUM(price * (1 - discnt))
//	FROM   item
//	WHERE  date1 BETWEEN 8500 AND 9499
//	GROUP  BY shipmode
//
// through the cost-model-driven query engine: the query is a logical
// plan, the physical planner picks the access path and grouping
// algorithm from the paper's cost models (EXPLAIN shows the choices
// and predictions), and the run is instrumented on the Origin2000
// simulator. The example then quantifies why vertical decomposition
// wins: the same one-column scan costs far less at stride 1 (encoded
// byte) than at stride 8 (BUN) or stride ~80+ (N-ary record).
//
// Run with:
//
//	go run ./examples/olap
package main

import (
	"fmt"
	"log"

	"monetlite"
)

func main() {
	const rows = 1 << 20

	table, err := monetlite.ItemTable(rows, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("item table: %d rows, %d columns\n", table.N, len(table.Columns()))
	fmt.Printf("  N-ary record width : %d bytes\n", table.Schema.RowWidth())
	fmt.Printf("  decomposed width   : %d bytes/tuple total", table.BUNWidth())
	sm, err := table.Column("shipmode")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(" (shipmode stored in %d byte via dictionary %v)\n\n", sm.Width(), sm.Enc.Dict)

	// The query as the engine sees it: a logical plan, lowered by the
	// cost-model-driven physical planner.
	q := monetlite.Query(table).
		WhereRange("date1", 8500, 9499).
		GroupBy("shipmode", monetlite.Mul(monetlite.Col("price"),
			monetlite.Sub(monetlite.Const(1), monetlite.Col("discnt"))))
	plan, err := q.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Explain())

	// Execute instrumented on the Origin2000 profile.
	machine := monetlite.Origin2000()
	sim, err := monetlite.NewSim(machine)
	if err != nil {
		log.Fatal(err)
	}
	table.Bind(sim)
	result, err := plan.Run(sim)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("revenue by shipmode (%d groups):\n%s", result.N(), result.Format(-1))
	st := sim.Stats()
	fmt.Printf("\nsimulated cost on %s: %.1f ms (L1 %d, L2 %d, TLB %d misses)\n",
		machine.Name, st.ElapsedMillis(), st.L1Misses, st.L2Misses, st.TLBMisses)
	fmt.Printf("cost-model prediction: %.1f ms\n\n", plan.Predicted().Millis(machine))

	// §3.1 quantified: the same single-column aggregate under three
	// physical layouts.
	nsm, bun, dsmStats, err := table.ScanColumnStats(machine, "shipmode")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scanning ONE column of this table (simulated, cold caches):")
	fmt.Printf("  N-ary records (%3d B/tuple): %7.1f ms\n", table.Schema.RowWidth(), nsm.ElapsedMillis())
	fmt.Printf("  8-byte BUNs   (  8 B/tuple): %7.1f ms\n", bun.ElapsedMillis())
	fmt.Printf("  encoded bytes (  1 B/tuple): %7.1f ms  <- %0.1fx faster than N-ary\n",
		dsmStats.ElapsedMillis(), nsm.ElapsedNanos()/dsmStats.ElapsedNanos())

	// The §3.1 predicate re-mapping: selecting a string never decodes.
	mail, err := monetlite.Query(table).WhereString("shipmode", "MAIL").Select("order").Run()
	if err != nil {
		log.Fatal(err)
	}
	code, _ := sm.Enc.Code("MAIL")
	fmt.Printf("\npredicate shipmode='MAIL' re-mapped to byte code %d: %d rows\n", code, mail.N())
}
