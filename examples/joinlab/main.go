// Joinlab: a shoot-out of every join algorithm in the paper at one
// cardinality — simulated time, miss counts, the cost-model
// prediction, and native wall clock on both the serial and the
// parallel engine side by side (the Figure 13 story in miniature).
//
// Run with:
//
//	go run ./examples/joinlab [-c 1000000] [-machine origin2k] [-par 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"monetlite"
)

func main() {
	card := flag.Int("c", 1_000_000, "tuples per join operand")
	machineName := flag.String("machine", "origin2k", "machine profile")
	par := flag.Int("par", 0, "parallel-engine workers (0 = GOMAXPROCS)")
	flag.Parse()

	machine, err := monetlite.MachineByName(*machineName)
	if err != nil {
		log.Fatal(err)
	}
	model := monetlite.NewCostModel(machine)
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("equi-join of two %d-tuple relations (hit rate 1) on %s, %d workers\n\n",
		*card, machine.Name, workers)

	l, r := monetlite.JoinInputs(*card, 7)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tplan\tsim ms\tmodel ms\tL1\tL2\tTLB\tnative\tparallel")
	for _, s := range monetlite.Strategies() {
		plan := monetlite.NewPlan(s, *card, machine)

		// Native wall clock, serial engine.
		l.Unbind()
		r.Unbind()
		t0 := time.Now()
		res, err := monetlite.Execute(nil, l, r, plan, nil)
		if err != nil {
			log.Fatal(err)
		}
		native := time.Since(t0)
		if res.Len() != *card {
			log.Fatalf("%v: wrong result size %d", s, res.Len())
		}

		// Native wall clock, parallel engine (byte-identical result).
		t0 = time.Now()
		pres, err := monetlite.ExecuteOpts(nil, l, r, plan, nil, monetlite.Options{Parallelism: *par})
		if err != nil {
			log.Fatal(err)
		}
		parallel := time.Since(t0)
		if pres.Len() != res.Len() {
			log.Fatalf("%v: parallel result size %d != serial %d", s, pres.Len(), res.Len())
		}

		// Simulated counters.
		sim, err := monetlite.NewSim(machine)
		if err != nil {
			log.Fatal(err)
		}
		l.Unbind()
		r.Unbind()
		if _, err := monetlite.Execute(sim, l, r, plan, nil); err != nil {
			log.Fatal(err)
		}
		st := sim.Stats()

		// Model prediction for the same plan.
		var predicted monetlite.Breakdown
		switch s {
		case monetlite.SortMerge:
			predicted = model.SortMergeTotal(*card)
		case monetlite.SimpleHash:
			predicted = model.SimpleHashTotal(*card)
		case monetlite.Radix8, monetlite.RadixMin:
			predicted = model.RadixTotal(plan.Bits, *card)
		default:
			predicted = model.PhashTotal(plan.Bits, *card)
		}

		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.2e\t%.2e\t%.2e\t%v\t%v\n",
			s, plan, st.ElapsedMillis(), predicted.Millis(machine),
			float64(st.L1Misses), float64(st.L2Misses), float64(st.TLBMisses),
			native.Round(time.Millisecond), parallel.Round(time.Millisecond))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauto plan: %s\n", monetlite.PlanAuto(*card, machine))
}
