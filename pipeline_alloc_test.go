package monetlite

import (
	"runtime"
	"testing"
)

// TestPipelineAllocRegression is the allocation-regression gate CI
// runs on every push: on the canned 1M-row Q1 (select →
// group-aggregate), fused pipelined execution must allocate measurably
// fewer bytes per run than the forced-materializing path — the OID
// lists, position lists and operand temporaries a pipeline never
// materializes. TotalAlloc/Mallocs are monotonic counters, so the
// deltas are immune to concurrent GC.
func TestPipelineAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row allocation measurement; skipped in -short")
	}
	if raceEnabled {
		t.Skip("allocation measurement; skipped under the race detector")
	}
	const rows = 1 << 20
	items, err := ItemTable(rows, 42)
	if err != nil {
		t.Fatal(err)
	}
	build := func(pipe bool) func() {
		return func() {
			res, err := Query(items).
				WhereRange("date1", 8500, 9499).
				GroupBy("shipmode", Mul(Col("price"), Sub(Const(1), Col("discnt")))).
				Pipeline(pipe).
				Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.N() == 0 {
				t.Fatal("empty result")
			}
		}
	}
	measure := func(f func()) uint64 {
		const runs = 3
		f() // warm up (plan caches, arena growth patterns)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < runs; i++ {
			f()
		}
		runtime.ReadMemStats(&after)
		return (after.TotalAlloc - before.TotalAlloc) / runs
	}
	piped := measure(build(true))
	mat := measure(build(false))
	t.Logf("B/op on 1M-row Q1: pipelined %d, materializing %d (%.2fx)",
		piped, mat, float64(mat)/float64(piped))
	if piped >= mat {
		t.Errorf("pipelined execution allocated %d B/op, materializing %d B/op — pipeline must allocate less", piped, mat)
	}
}
