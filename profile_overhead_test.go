package monetlite

import (
	"runtime"
	"testing"
)

// TestProfileOverhead is the zero-cost-when-disabled gate CI runs on
// every push, on the same canned 1M-row Q1 as
// TestPipelineAllocRegression: with profiling off, the pipelined hot
// path must allocate exactly what it allocated before the profiling
// hooks existed. Allocation on this path is deterministic (fixed
// chunk/arena sizes per run), so two disabled measurements must agree
// to well under a percent — any per-morsel or per-vector allocation
// smuggled into a hook would show up as a stable offset instead. The
// structural half of the contract (the disabled hooks themselves
// allocate nothing) is pinned exactly by the engine's
// TestProfileHooksDisabledZeroAlloc.
func TestProfileOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row allocation measurement; skipped in -short")
	}
	if raceEnabled {
		t.Skip("allocation measurement; skipped under the race detector")
	}
	const rows = 1 << 20
	items, err := ItemTable(rows, 42)
	if err != nil {
		t.Fatal(err)
	}
	build := func(analyze bool) func() {
		return func() {
			res, err := Query(items).
				WhereRange("date1", 8500, 9499).
				GroupBy("shipmode", Mul(Col("price"), Sub(Const(1), Col("discnt")))).
				Analyze(analyze).
				Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.N() == 0 {
				t.Fatal("empty result")
			}
			if analyze != (res.Profile != nil) {
				t.Fatalf("analyze=%v but Profile=%v", analyze, res.Profile != nil)
			}
		}
	}
	measure := func(f func()) uint64 {
		const runs = 3
		f() // warm up (plan caches, arena growth patterns)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < runs; i++ {
			f()
		}
		runtime.ReadMemStats(&after)
		return (after.TotalAlloc - before.TotalAlloc) / runs
	}
	off1 := measure(build(false))
	on := measure(build(true))
	off2 := measure(build(false))
	t.Logf("B/op on 1M-row Q1: disabled %d and %d, analyzed %d", off1, off2, on)
	lo, hi := off1, off2
	if lo > hi {
		lo, hi = hi, lo
	}
	// 0.5% covers runtime bookkeeping noise; a real per-morsel (4
	// morsels) or per-vector (hundreds) hook allocation is far larger.
	if hi-lo > hi/200 {
		t.Errorf("disabled-path B/op drifts: %d vs %d", off1, off2)
	}
	if on <= off1 {
		t.Errorf("analyzed run allocates %d B/op, disabled %d — profiling collected nothing?", on, off1)
	}
}
