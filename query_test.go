package monetlite

import (
	"strings"
	"testing"
)

// The facade-level engine tests: the fluent Query builder as a
// downstream user drives it.

func TestQueryBuilderPipeline(t *testing.T) {
	items, err := ItemTable(1<<14, 42)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartTable(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	q := Query(items).
		WhereRange("date1", 8500, 9499).
		JoinTable(parts, "part", "id").
		GroupBy("category", Mul(Col("price"), Sub(Const(1), Col("discnt")))).
		OrderBy("sum", true)

	ex, err := q.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Join[", "GroupAggregate[", "Select[", "predicted"} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}

	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.N() == 0 || res.N() > len(Categories()) {
		t.Fatalf("got %d groups, want 1..%d", res.N(), len(Categories()))
	}
	sums, err := res.Floats("sum")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] > sums[i-1] {
			t.Errorf("sums not descending: %v", sums)
		}
	}
	counts, err := res.Ints("count")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	// Every selected item joins exactly one part, so the grouped counts
	// must sum to the selection size.
	oids, err := items.SelectRange(nil, "date1", 8500, 9499)
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(oids)) {
		t.Errorf("grouped counts sum to %d, selection has %d rows", total, len(oids))
	}
}

func TestQuerySimMatchesNative(t *testing.T) {
	items, err := ItemTable(1<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *QueryBuilder {
		return Query(items).
			WhereString("shipmode", "MAIL").
			GroupBy("status", Col("price"))
	}
	native, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	instr, err := build().RunSim(sim)
	if err != nil {
		t.Fatal(err)
	}
	if native.N() != instr.N() {
		t.Fatalf("native %d rows, instrumented %d", native.N(), instr.N())
	}
	if sim.Stats().ElapsedNanos() <= 0 {
		t.Error("instrumented run recorded no simulated time")
	}
}

func TestQueryFormatAndRows(t *testing.T) {
	items, err := ItemTable(256, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Query(items).
		Select("order", "qty", "shipmode").
		Limit(3).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 3 {
		t.Fatalf("got %d rows, want 3", res.N())
	}
	out := res.Format(-1)
	if !strings.Contains(out, "shipmode") {
		t.Errorf("Format missing header:\n%s", out)
	}
	row := res.Row(0)
	if len(row) != 3 {
		t.Fatalf("Row has %d values, want 3", len(row))
	}
}
