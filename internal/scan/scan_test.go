package scan

import (
	"testing"

	"monetlite/internal/memsim"
)

func TestRunValidation(t *testing.T) {
	m := memsim.Origin2000()
	if _, err := Run(m, 0, 100); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := Run(m, 8, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	bad := m
	bad.ClockMHz = 0
	if _, err := Run(bad, 8, 100); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestMonotoneUntilPlateau(t *testing.T) {
	// Figure 3: cost rises with stride until the L2 line size, then
	// stays constant.
	m := memsim.Origin2000()
	var prev float64
	for _, s := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		r, err := Run(m, s, 50000)
		if err != nil {
			t.Fatal(err)
		}
		if ms := r.Millis(); ms < prev {
			t.Errorf("stride %d: %.3fms dropped below %.3fms", s, ms, prev)
		} else {
			prev = ms
		}
	}
	at128, _ := Run(m, 128, 50000)
	at256, _ := Run(m, 256, 50000)
	rel := at256.Millis() / at128.Millis()
	if rel < 0.98 || rel > 1.02 {
		t.Errorf("no plateau past L2 line: %.3f vs %.3f ms", at128.Millis(), at256.Millis())
	}
}

func TestKneesMatchLineSizes(t *testing.T) {
	// The L1 miss rate saturates at one miss/iteration at the L1 line
	// size; the L2 miss rate at the L2 line size (§2).
	m := memsim.Origin2000()
	iters := 100000
	atL1, _ := Run(m, m.L1.LineSize, iters)
	if got := float64(atL1.Stats.L1Misses) / float64(iters); got < 0.99 {
		t.Errorf("L1 miss rate at stride %d = %.3f, want ≈1", m.L1.LineSize, got)
	}
	atHalfL1, _ := Run(m, m.L1.LineSize/2, iters)
	if got := float64(atHalfL1.Stats.L1Misses) / float64(iters); got > 0.51 {
		t.Errorf("L1 miss rate at half line = %.3f, want ≈0.5", got)
	}
	atL2, _ := Run(m, m.L2.LineSize, iters)
	if got := float64(atL2.Stats.L2Misses) / float64(iters); got < 0.99 {
		t.Errorf("L2 miss rate at stride %d = %.3f, want ≈1", m.L2.LineSize, got)
	}
}

func TestStallDominatesAtFullMiss(t *testing.T) {
	// §2: "a database server running even a simple sequential scan on
	// a table will spend 95% of its cycles waiting for memory".
	m := memsim.Origin2000()
	r, err := Run(m, 256, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if f := StallFraction(r); f < 0.90 {
		t.Errorf("stall fraction at stride 256 = %.2f, want ≥ 0.90", f)
	}
}

func TestCyclesPerIterationStride8(t *testing.T) {
	// §3.1: stride-8 scan ≈ 10 cycles/iteration of which 4 are CPU
	// work on the Origin2000.
	m := memsim.Origin2000()
	r, err := Run(m, 8, 200000)
	if err != nil {
		t.Fatal(err)
	}
	work, stall := CyclesPerIteration(m, r)
	if work < 3.5 || work > 4.5 {
		t.Errorf("CPU cycles/iter = %.2f, want ≈4", work)
	}
	total := work + stall
	if total < 7 || total > 13 {
		t.Errorf("total cycles/iter at stride 8 = %.2f, want ≈10", total)
	}
}

func TestMachinesOrderedByAge(t *testing.T) {
	// Figure 3's headline: the memory-access penalty has grown; at
	// stride 1 the newest machine is fastest, and every machine's
	// plateau sits well above its stride-1 cost.
	var stride1, plateau []float64
	for _, m := range memsim.Machines() {
		r1, err := Run(m, 1, Iterations)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := Run(m, 256, Iterations)
		if err != nil {
			t.Fatal(err)
		}
		stride1 = append(stride1, r1.Millis())
		plateau = append(plateau, rp.Millis())
	}
	// Machines() is ordered newest → oldest. The 1990s-era machines
	// hover together at stride 1 (their clocks are close), so the
	// figure's real message is in the ratios: every machine pays a
	// penalty at full stride, and the penalty ratio grows monotonically
	// for newer machines (the "sad conclusion" of §2).
	if stride1[3] < 2*stride1[0] {
		t.Errorf("1992 machine should be far slower at stride 1: %.2f vs %.2f", stride1[3], stride1[0])
	}
	for i, m := range memsim.Machines() {
		ratio := plateau[i] / stride1[i]
		if ratio < 1.5 {
			t.Errorf("%s: plateau only %.2f× stride-1 cost", m.Name, ratio)
		}
	}
	for i := 1; i < len(plateau); i++ {
		newer := plateau[i-1] / stride1[i-1]
		older := plateau[i] / stride1[i]
		if newer <= older {
			t.Errorf("penalty ratio not growing with machine age: %.1f× then %.1f×", newer, older)
		}
	}
}

func TestSweepAndDefaultStrides(t *testing.T) {
	strides := DefaultStrides()
	if strides[0] != 1 || strides[len(strides)-1] != 256 {
		t.Errorf("stride range [%d, %d]", strides[0], strides[len(strides)-1])
	}
	rs, err := Sweep(memsim.SunLX(), []int{1, 16, 64}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("sweep returned %d results", len(rs))
	}
	// sunLX has 16-byte lines and a single effective cache level: the
	// plateau is reached at stride 16 already.
	if rs[1].Millis() < rs[2].Millis()*0.98 {
		t.Errorf("sunLX not flat past 16B: %.2f vs %.2f", rs[1].Millis(), rs[2].Millis())
	}
}

func TestBUNScanWidths(t *testing.T) {
	// §3.1: smaller stride ⇒ cheaper scan. 1-byte encoded column <
	// 8-byte BUN < 80-byte relational record.
	m := memsim.Origin2000()
	w1, err := BUNScan(m, 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	w8, _ := BUNScan(m, 100000, 8)
	w80, _ := BUNScan(m, 100000, 80)
	if !(w1.ElapsedNanos() < w8.ElapsedNanos() && w8.ElapsedNanos() < w80.ElapsedNanos()) {
		t.Errorf("widths not ordered: 1B=%.2fms 8B=%.2fms 80B=%.2fms",
			w1.ElapsedMillis(), w8.ElapsedMillis(), w80.ElapsedMillis())
	}
	if _, err := BUNScan(m, 0, 8); err == nil {
		t.Error("zero n accepted")
	}
	if _, err := BUNScan(m, 10, 0); err == nil {
		t.Error("zero width accepted")
	}
}
