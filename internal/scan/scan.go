// Package scan implements the paper's initial experiment (§2,
// Figure 3): sequentially reading one byte from an in-memory buffer at
// a varying stride, mimicking a read-only scan of a one-byte column in
// a table with a given record width. It also implements the §3.1
// BUN-scan variants that motivate vertical decomposition: the same
// aggregate over 8-byte BUNs versus an 80-byte relational record and
// versus a 1-byte encoded column.
package scan

import (
	"fmt"

	"monetlite/internal/memsim"
)

// Iterations is the iteration count of Figure 3 (200,000 tuples).
const Iterations = 200000

// Result is one simulated point of the scan experiment.
type Result struct {
	Machine string
	Stride  int
	Iters   int
	Stats   memsim.Stats
}

// Millis returns the simulated elapsed milliseconds, Figure 3's Y axis.
func (r Result) Millis() float64 { return r.Stats.ElapsedMillis() }

// Run performs the stride scan on a fresh simulator for machine m:
// iters iterations reading one byte every stride bytes from a buffer
// that is in memory but cold in all caches, exactly the Figure-3
// setup. The per-iteration CPU work (the paper's 4 cycles on the
// Origin2000) is charged from the machine's calibration.
func Run(m memsim.Machine, stride, iters int) (Result, error) {
	if stride <= 0 {
		return Result{}, fmt.Errorf("scan: non-positive stride %d", stride)
	}
	if iters <= 0 {
		return Result{}, fmt.Errorf("scan: non-positive iteration count %d", iters)
	}
	sim, err := memsim.New(m)
	if err != nil {
		return Result{}, err
	}
	base := sim.Alloc(stride * iters)
	sim.InvalidateCaches()
	for i := 0; i < iters; i++ {
		sim.Read(base+uint64(i)*uint64(stride), 1)
	}
	sim.AddCPU(iters, m.Cost.WScanByte)
	return Result{Machine: m.Name, Stride: stride, Iters: iters, Stats: sim.Stats()}, nil
}

// Sweep runs the experiment across strides for one machine.
func Sweep(m memsim.Machine, strides []int, iters int) ([]Result, error) {
	out := make([]Result, 0, len(strides))
	for _, s := range strides {
		r, err := Run(m, s, iters)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultStrides returns the Figure-3 X axis: 1..256 bytes, dense at
// the small strides where the knees are, sparser beyond.
func DefaultStrides() []int {
	var s []int
	for i := 1; i <= 64; i++ {
		s = append(s, i)
	}
	for i := 68; i <= 256; i += 4 {
		s = append(s, i)
	}
	return s
}

// CyclesPerIteration converts a result to CPU cycles per iteration on
// its machine, the unit of the §3.1 discussion (4 cycles of work vs 6
// cycles of memory stall for a stride-8 scan on the Origin2000).
func CyclesPerIteration(m memsim.Machine, r Result) (work, stall float64) {
	perIterWork := r.Stats.CPUNanos / float64(r.Iters)
	perIterStall := r.Stats.StallNanos / float64(r.Iters)
	return perIterWork * m.CyclesPerNano(), perIterStall * m.CyclesPerNano()
}

// StallFraction returns the fraction of simulated time spent waiting
// on memory — the paper's "95% of its cycles waiting for memory" claim
// for strides past the L2 line size.
func StallFraction(r Result) float64 {
	t := r.Stats.ElapsedNanos()
	if t == 0 {
		return 0
	}
	return r.Stats.StallNanos / t
}

// BUNScan simulates the §3.1 comparison on machine m: the same
// Max-style aggregate over n tuples stored (a) as w-byte-wide records
// where only one field is needed. It returns the simulated stats. The
// paper's cases: w=80 relational record, w=8 BAT BUN, w=1 encoded
// column.
func BUNScan(m memsim.Machine, n, width int) (memsim.Stats, error) {
	if width <= 0 || n <= 0 {
		return memsim.Stats{}, fmt.Errorf("scan: invalid BUN scan n=%d width=%d", n, width)
	}
	sim, err := memsim.New(m)
	if err != nil {
		return memsim.Stats{}, err
	}
	base := sim.Alloc(n * width)
	sim.InvalidateCaches()
	for i := 0; i < n; i++ {
		sim.Read(base+uint64(i)*uint64(width), 1)
	}
	sim.AddCPU(n, m.Cost.WScanBUN)
	return sim.Stats(), nil
}
