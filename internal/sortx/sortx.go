// Package sortx provides the sorting machinery behind sort-merge join
// and the radix-sort degeneration of radix-join ([Knu68], §3.3.1):
// LSB radix sort on the 32-bit Tail keys of BAT tuples, an insertion
// sort for small runs, and sortedness checks. The instrumented mode
// mirrors every tuple movement into a memsim.Sim, which is what gives
// sort-merge join its "random access over even a larger memory region"
// cost signature in Figure 13.
package sortx

import (
	"monetlite/internal/bat"
	"monetlite/internal/memsim"
)

// radixBitsPerPass is the digit width of the LSB radix sort: 8 bits =
// 256 counting buckets per pass, four passes for 32-bit keys.
const radixBitsPerPass = 8

// SortPairs sorts p in place by Tail using LSB radix sort, mirroring
// accesses into sim when non-nil (p must be bound then). The scratch
// buffer, if non-nil, must have the same length; passing one lets
// callers reuse allocations.
func SortPairs(sim *memsim.Sim, p *bat.Pairs, scratch *bat.Pairs) {
	n := p.Len()
	if n < 2 {
		return
	}
	if scratch == nil || scratch.Len() != n {
		scratch = bat.NewPairs(n)
	}
	scratch.Bind(sim)

	src, dst := p, scratch
	const radix = 1 << radixBitsPerPass
	var counts [radix]int
	for shift := 0; shift < 32; shift += radixBitsPerPass {
		for i := range counts {
			counts[i] = 0
		}
		for i, bun := range src.BUNs {
			if sim != nil {
				sim.Read(src.Addr(i), bat.PairSize)
			}
			counts[(bun.Tail>>shift)&(radix-1)]++
		}
		pos := 0
		for i := range counts {
			c := counts[i]
			counts[i] = pos
			pos += c
		}
		for i, bun := range src.BUNs {
			d := counts[(bun.Tail>>shift)&(radix-1)]
			counts[(bun.Tail>>shift)&(radix-1)]++
			if sim != nil {
				sim.Read(src.Addr(i), bat.PairSize)
				sim.Write(dst.Addr(d), bat.PairSize)
			}
			dst.BUNs[d] = bun
		}
		src, dst = dst, src
	}
	// 32/8 = 4 passes: even, so the sorted data ended in p already.
}

// InsertionSort sorts p[lo:hi) in place by Tail; used for tiny runs
// where counting passes cost more than they save.
func InsertionSort(sim *memsim.Sim, p *bat.Pairs, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		bun := p.BUNs[i]
		if sim != nil {
			sim.Read(p.Addr(i), bat.PairSize)
		}
		j := i - 1
		for j >= lo && p.BUNs[j].Tail > bun.Tail {
			if sim != nil {
				sim.Read(p.Addr(j), bat.PairSize)
				sim.Write(p.Addr(j+1), bat.PairSize)
			}
			p.BUNs[j+1] = p.BUNs[j]
			j--
		}
		if sim != nil {
			sim.Write(p.Addr(j+1), bat.PairSize)
		}
		p.BUNs[j+1] = bun
	}
}

// IsSortedByTail reports whether p is non-decreasing on Tail.
func IsSortedByTail(p *bat.Pairs) bool {
	for i := 1; i < p.Len(); i++ {
		if p.BUNs[i-1].Tail > p.BUNs[i].Tail {
			return false
		}
	}
	return true
}

// MergeJoinSorted merges two Tail-sorted BATs and emits the join index
// [l.Head, r.Head] for every pair of tuples with equal Tail. Handles
// duplicate keys on both sides (cross product per key group).
func MergeJoinSorted(sim *memsim.Sim, l, r *bat.Pairs, emit func(lh, rh bat.Oid)) {
	i, j := 0, 0
	nl, nr := l.Len(), r.Len()
	for i < nl && j < nr {
		if sim != nil {
			sim.Read(l.Addr(i), bat.PairSize)
			sim.Read(r.Addr(j), bat.PairSize)
		}
		lv, rv := l.BUNs[i].Tail, r.BUNs[j].Tail
		switch {
		case lv < rv:
			i++
		case lv > rv:
			j++
		default:
			// Key group: find extents on both sides.
			i2 := i + 1
			for i2 < nl && l.BUNs[i2].Tail == lv {
				if sim != nil {
					sim.Read(l.Addr(i2), bat.PairSize)
				}
				i2++
			}
			j2 := j + 1
			for j2 < nr && r.BUNs[j2].Tail == rv {
				if sim != nil {
					sim.Read(r.Addr(j2), bat.PairSize)
				}
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					emit(l.BUNs[a].Head, r.BUNs[b].Head)
				}
			}
			i, j = i2, j2
		}
	}
}
