package sortx

import (
	"sort"
	"testing"
	"testing/quick"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

func tailsOf(p *bat.Pairs) []uint32 {
	out := make([]uint32, p.Len())
	for i, b := range p.BUNs {
		out[i] = b.Tail
	}
	return out
}

func TestSortPairsAgainstStdlib(t *testing.T) {
	p := workload.UniquePairs(10000, 21)
	want := tailsOf(p)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	SortPairs(nil, p, nil)
	got := tailsOf(p)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestSortPreservesPairs(t *testing.T) {
	p := workload.UniquePairs(1000, 8)
	orig := make(map[bat.Pair]bool, p.Len())
	for _, b := range p.BUNs {
		orig[b] = true
	}
	SortPairs(nil, p, nil)
	for _, b := range p.BUNs {
		if !orig[b] {
			t.Fatal("sort corrupted a BUN (head/tail pairing broken)")
		}
	}
}

func TestSortEdgeCases(t *testing.T) {
	empty := bat.NewPairs(0)
	SortPairs(nil, empty, nil) // must not panic
	one := bat.NewPairs(1)
	one.BUNs[0].Tail = 5
	SortPairs(nil, one, nil)
	if one.BUNs[0].Tail != 5 {
		t.Error("singleton mutated")
	}
	dup := bat.NewPairs(6)
	for i := range dup.BUNs {
		dup.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(i % 2)}
	}
	SortPairs(nil, dup, nil)
	if !IsSortedByTail(dup) {
		t.Error("duplicates not sorted")
	}
}

func TestSortWithScratchReuse(t *testing.T) {
	p := workload.UniquePairs(500, 3)
	scratch := bat.NewPairs(500)
	SortPairs(nil, p, scratch)
	if !IsSortedByTail(p) {
		t.Error("not sorted with provided scratch")
	}
	// Wrong-size scratch is replaced internally, not an error.
	q := workload.UniquePairs(300, 4)
	SortPairs(nil, q, scratch)
	if !IsSortedByTail(q) {
		t.Error("not sorted with wrong-size scratch")
	}
}

func TestInsertionSortRange(t *testing.T) {
	p := workload.UniquePairs(100, 5)
	InsertionSort(nil, p, 10, 60)
	for i := 11; i < 60; i++ {
		if p.BUNs[i-1].Tail > p.BUNs[i].Tail {
			t.Fatal("range not sorted")
		}
	}
}

func TestIsSortedByTail(t *testing.T) {
	p := bat.NewPairs(3)
	p.BUNs[0].Tail, p.BUNs[1].Tail, p.BUNs[2].Tail = 1, 2, 2
	if !IsSortedByTail(p) {
		t.Error("sorted reported unsorted")
	}
	p.BUNs[2].Tail = 0
	if IsSortedByTail(p) {
		t.Error("unsorted reported sorted")
	}
}

func TestMergeJoinSortedUnique(t *testing.T) {
	l, r := workload.JoinInputs(2000, 6)
	SortPairs(nil, l, nil)
	SortPairs(nil, r, nil)
	want := make(map[uint32][2]bat.Oid, 2000)
	for _, b := range l.BUNs {
		e := want[b.Tail]
		e[0] = b.Head
		want[b.Tail] = e
	}
	for _, b := range r.BUNs {
		e := want[b.Tail]
		e[1] = b.Head
		want[b.Tail] = e
	}
	n := 0
	MergeJoinSorted(nil, l, r, func(lh, rh bat.Oid) {
		n++
		found := false
		for _, e := range want {
			if e[0] == lh && e[1] == rh {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("spurious pair (%d,%d)", lh, rh)
		}
	})
	if n != 2000 {
		t.Errorf("merge produced %d pairs, want 2000", n)
	}
}

func TestMergeJoinDuplicates(t *testing.T) {
	l := bat.NewPairs(3)
	l.BUNs[0] = bat.Pair{Head: 0, Tail: 5}
	l.BUNs[1] = bat.Pair{Head: 1, Tail: 5}
	l.BUNs[2] = bat.Pair{Head: 2, Tail: 9}
	r := bat.NewPairs(3)
	r.BUNs[0] = bat.Pair{Head: 10, Tail: 5}
	r.BUNs[1] = bat.Pair{Head: 11, Tail: 7}
	r.BUNs[2] = bat.Pair{Head: 12, Tail: 9}
	var got [][2]bat.Oid
	MergeJoinSorted(nil, l, r, func(lh, rh bat.Oid) { got = append(got, [2]bat.Oid{lh, rh}) })
	// 2 L-tuples × 1 R-tuple on key 5, plus (2,12) on key 9.
	if len(got) != 3 {
		t.Fatalf("got %d pairs, want 3: %v", len(got), got)
	}
}

func TestInstrumentedSortCounts(t *testing.T) {
	sim := memsim.MustNew(memsim.Origin2000())
	p := workload.UniquePairs(4096, 13)
	p.Bind(sim)
	SortPairs(sim, p, nil)
	st := sim.Stats()
	// 4 passes × (count read + scatter read + scatter write) per tuple.
	want := uint64(4 * 3 * 4096)
	if st.Accesses != want {
		t.Errorf("accesses = %d, want %d", st.Accesses, want)
	}
	if !IsSortedByTail(p) {
		t.Error("instrumented sort incorrect")
	}
}

// Property: SortPairs sorts any uint32 multiset and preserves BUNs.
func TestSortProperty(t *testing.T) {
	f := func(tails []uint32) bool {
		p := bat.NewPairs(len(tails))
		for i, v := range tails {
			p.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: v}
		}
		multiset := make(map[bat.Pair]int)
		for _, b := range p.BUNs {
			multiset[b]++
		}
		SortPairs(nil, p, nil)
		if !IsSortedByTail(p) {
			return false
		}
		for _, b := range p.BUNs {
			multiset[b]--
			if multiset[b] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
