package hashtab

import (
	"testing"
	"testing/quick"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

func pairsOf(tails ...uint32) *bat.Pairs {
	p := bat.NewPairs(len(tails))
	for i, v := range tails {
		p.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: v}
	}
	return p
}

func TestBucketsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 4: 1, 5: 2, 16: 4, 17: 8, 1000: 256}
	for n, want := range cases {
		if got := BucketsFor(n); got != want {
			t.Errorf("BucketsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBuildAndProbeExact(t *testing.T) {
	build := pairsOf(5, 17, 5, 99, 0)
	tab := New(build.Len(), Identity)
	tab.Build(nil, build)
	var hits []int32
	tab.Probe(nil, build, 5, func(pos int32) { hits = append(hits, pos) })
	if len(hits) != 2 {
		t.Fatalf("probe(5) found %d, want 2", len(hits))
	}
	for _, h := range hits {
		if build.BUNs[h].Tail != 5 {
			t.Errorf("hit %d has tail %d", h, build.BUNs[h].Tail)
		}
	}
	var none []int32
	tab.Probe(nil, build, 1234, func(pos int32) { none = append(none, pos) })
	if len(none) != 0 {
		t.Errorf("probe(1234) found %d, want 0", len(none))
	}
}

func TestProbeMatchesMapSemantics(t *testing.T) {
	build := workload.UniquePairs(5000, 3)
	tab := New(build.Len(), Mult)
	tab.Build(nil, build)
	want := make(map[uint32]int32, build.Len())
	for i, b := range build.BUNs {
		want[b.Tail] = int32(i)
	}
	for _, b := range build.BUNs {
		found := false
		tab.Probe(nil, build, b.Tail, func(pos int32) {
			if pos == want[b.Tail] {
				found = true
			}
		})
		if !found {
			t.Fatalf("key %d not found", b.Tail)
		}
	}
}

func TestTableReuseAcrossBuilds(t *testing.T) {
	tab := New(100, Identity)
	a := pairsOf(1, 2, 3)
	tab.Build(nil, a)
	if tab.Buckets() != 1 {
		t.Errorf("buckets for 3 tuples = %d, want 1", tab.Buckets())
	}
	// Rebuild with different data: old entries must be gone.
	b := pairsOf(7, 8)
	tab.Build(nil, b)
	count := 0
	tab.Probe(nil, b, 1, func(int32) { count++ })
	if count != 0 {
		t.Error("stale entry survived rebuild")
	}
	tab.Probe(nil, b, 7, func(int32) { count++ })
	if count != 1 {
		t.Error("fresh entry not found after rebuild")
	}
}

// TestBuildBeyondCapacityGrows: a build larger than the allocated
// capacity (an under-estimated cardinality on skewed data) must grow
// the table and keep probing correctly, not crash.
func TestBuildBeyondCapacityGrows(t *testing.T) {
	tab := New(2, Identity)
	build := pairsOf(1, 2, 3, 4, 5, 6, 7, 8, 9)
	tab.Build(nil, build)
	if tab.Cap() < build.Len() {
		t.Fatalf("Cap = %d after building %d tuples", tab.Cap(), build.Len())
	}
	for _, bun := range build.BUNs {
		hits := 0
		tab.Probe(nil, build, bun.Tail, func(pos int32) {
			if build.BUNs[pos].Tail == bun.Tail {
				hits++
			}
		})
		if hits != 1 {
			t.Errorf("key %d: %d probe hits after grow, want 1", bun.Tail, hits)
		}
	}
	// Growing an instrumented table must re-allocate simulated space
	// and keep mirroring accesses.
	sim := memsim.MustNew(memsim.Origin2000())
	small := workload.UniquePairs(8, 3)
	big := workload.UniquePairs(64, 4)
	small.Bind(sim)
	big.Bind(sim)
	itab := New(small.Len(), Identity)
	itab.Build(sim, small)
	before := sim.Stats().Accesses
	itab.Build(sim, big)
	if itab.Cap() < big.Len() {
		t.Fatalf("instrumented Cap = %d after building %d tuples", itab.Cap(), big.Len())
	}
	if sim.Stats().Accesses <= before {
		t.Error("instrumented rebuild after grow did no simulated accesses")
	}
}

func TestMeanChainLength(t *testing.T) {
	build := workload.UniquePairs(4096, 9)
	tab := New(build.Len(), Identity)
	tab.Build(nil, build)
	total := 0
	for _, b := range build.BUNs {
		total += tab.ChainLen(b.Tail)
	}
	mean := float64(total) / float64(build.Len())
	// Design target is ≈4 tuples per bucket (ChainTarget).
	if mean < 1 || mean > 2*ChainTarget {
		t.Errorf("mean chain length %.2f, want ≈%d", mean, ChainTarget)
	}
}

func TestBytesAccounting(t *testing.T) {
	build := pairsOf(make([]uint32, 1000)...)
	tab := New(1000, Identity)
	tab.Build(nil, build)
	// heads: 256 buckets ×4B; chains: 1000 ×4B.
	if got := tab.Bytes(); got != 4*(256+1000) {
		t.Errorf("Bytes = %d", got)
	}
}

func TestInstrumentedBuildProbeCounts(t *testing.T) {
	sim := memsim.MustNew(memsim.Origin2000())
	build := workload.UniquePairs(1000, 4)
	build.Bind(sim)
	tab := New(build.Len(), Identity)
	tab.Build(sim, build)
	st := sim.Stats()
	if st.Accesses == 0 {
		t.Fatal("instrumented build did no simulated accesses")
	}
	// Build: 256 head-init writes + 4 accesses per tuple.
	wantBuild := uint64(256 + 4*1000)
	if st.Accesses != wantBuild {
		t.Errorf("build accesses = %d, want %d", st.Accesses, wantBuild)
	}
	before := st
	hits := 0
	for _, b := range build.BUNs[:100] {
		tab.Probe(sim, build, b.Tail, func(int32) { hits++ })
	}
	if hits != 100 {
		t.Fatalf("hits = %d", hits)
	}
	d := sim.Stats().Sub(before)
	// Each probe: 1 head read + per chain entry (tuple read + next read).
	if d.Accesses < 300 { // ≥ 3 accesses per probe
		t.Errorf("probe accesses = %d, suspiciously few", d.Accesses)
	}
}

func TestShiftedTableSpreadsClusterKeys(t *testing.T) {
	// After radix-clustering on B low bits, all keys in one cluster
	// share those bits. A shifted table must still spread them; an
	// unshifted one would chain them all into one bucket.
	// Shared bits must cover the bucket bits (1024 tuples → 256
	// buckets → 8 bucket bits) for the unshifted table to degenerate.
	const b = 8
	n := 1024
	cluster := bat.NewPairs(n)
	rng := workload.NewRNG(9)
	for i := 0; i < n; i++ {
		// Keys with identical low 8 bits (cluster 13), random above.
		cluster.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: rng.Uint32()<<b | 13}
	}
	shifted := NewShifted(n, b, Identity)
	shifted.Build(nil, cluster)
	unshifted := New(n, Identity)
	unshifted.Build(nil, cluster)
	if got := unshifted.ChainLen(cluster.BUNs[0].Tail); got != n {
		t.Fatalf("unshifted chain = %d, expected degenerate %d", got, n)
	}
	if got := shifted.ChainLen(cluster.BUNs[0].Tail); got > 8*ChainTarget {
		t.Errorf("shifted chain = %d, want ≈%d", got, ChainTarget)
	}
	// Shifted probe still finds exactly its keys.
	for i, bun := range cluster.BUNs[:64] {
		found := false
		shifted.Probe(nil, cluster, bun.Tail, func(pos int32) {
			if int(pos) == i {
				found = true
			}
		})
		if !found {
			t.Fatalf("key of tuple %d not found in shifted table", i)
		}
	}
}

func TestNewShiftedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid shift accepted")
		}
	}()
	NewShifted(4, 32, nil)
}

func TestHashFunctions(t *testing.T) {
	if Identity(42) != 42 {
		t.Error("identity broken")
	}
	if Mult(1) == Mult(2) {
		t.Error("mult collides on 1,2")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative capacity accepted")
		}
	}()
	New(-1, nil)
}

// Property: probing every built key finds exactly its own position
// among the hits (unique keys).
func TestProbeFindsAllProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%500 + 1
		build := workload.UniquePairs(n, seed)
		tab := New(n, Identity)
		tab.Build(nil, build)
		for i, b := range build.BUNs {
			ok := false
			tab.Probe(nil, build, b.Tail, func(pos int32) {
				if int(pos) == i {
					ok = true
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
