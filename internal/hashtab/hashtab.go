// Package hashtab implements the bucket-chained hash table of
// main-memory join processing ([LC86], §3.2–3.4 of the paper): an
// array of bucket heads plus a chain array parallel to the build
// relation, with a mean chain length of about four tuples per bucket.
//
// The table is the building block of both the non-partitioned
// ("simple") hash-join and the per-cluster joins of partitioned
// hash-join, and of hash-grouping. All structures live in flat arrays
// so the instrumented mode can mirror every probe into a memsim.Sim
// exactly the way the paper's cost model counts them: up to 8 accesses
// per tuple through head/chain plus 2 for the tuple itself.
package hashtab

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
)

// ChainTarget is the designed mean bucket-chain length: the paper
// tunes cluster sizes "like the length of the bucket-chain in a
// hash-table" to a small constant, and its Th model assumes a
// bucket-chain length of 4.
const ChainTarget = 4

// none marks the end of a bucket chain.
const none int32 = -1

// Hash is the integer hash function used to pick a bucket. The
// experiments join unique uniform integers, where the identity on the
// low bits is exactly what Monet uses; Mult is available for
// adversarial domains.
type Hash func(key uint32) uint32

// Identity hashes a key to itself (low bits select the bucket).
func Identity(key uint32) uint32 { return key }

// Mult is Knuth's multiplicative hash (golden-ratio constant).
func Mult(key uint32) uint32 { return key * 2654435761 }

// Table is a bucket-chained hash table over the Tail values of a BAT.
// Entry i chains the i-th build tuple. A Table is allocated once for a
// maximum build size and can be Reset cheaply for successive builds
// (partitioned hash-join reuses one table across clusters, the way a
// real allocator would hand back the same warm memory).
type Table struct {
	mask  uint32
	shift uint32  // bucket bits start above the shift lowest hash bits
	head  []int32 // capBuckets slots; only mask+1 live
	next  []int32 // cap slots; only current build size live
	hash  Hash
	n     int // current build size

	// Simulated addresses of the head and next arrays (4 bytes/slot).
	headBase uint64
	nextBase uint64
}

// BucketsFor returns the bucket count for a build side of n tuples:
// the smallest power of two giving a mean chain of at most ChainTarget.
func BucketsFor(n int) int {
	b := 1
	for b*ChainTarget < n {
		b <<= 1
	}
	return b
}

// New allocates a table sized for builds of up to maxN tuples.
func New(maxN int, h Hash) *Table { return NewShifted(maxN, 0, h) }

// NewShifted allocates a table whose bucket index is taken from the
// hash bits above the shift lowest ones. A table built over one radix
// cluster MUST shift past the radix bits: inside cluster k all keys
// agree on the B lowest hash bits, so bucketing on them would chain
// the entire cluster into a single bucket (§3.3: the cluster bits and
// the bucket bits partition different parts of the hash value).
func NewShifted(maxN, shift int, h Hash) *Table {
	if maxN < 0 {
		panic("hashtab: negative capacity")
	}
	if shift < 0 || shift > 31 {
		panic(fmt.Sprintf("hashtab: shift %d outside [0, 31]", shift))
	}
	if h == nil {
		h = Identity
	}
	return &Table{
		shift: uint32(shift),
		head:  make([]int32, BucketsFor(maxN)),
		next:  make([]int32, maxN),
		hash:  h,
	}
}

// Buckets returns the live bucket count of the current build.
func (t *Table) Buckets() int { return int(t.mask) + 1 }

// Cap returns the maximum build size the table was allocated for.
func (t *Table) Cap() int { return len(t.next) }

// Bytes returns the live footprint of the current build: heads plus
// chain entries, 4 bytes each. Together with the 8-byte build tuples
// this is the "inner relation plus hash-table" ≈ 12 bytes/tuple of
// §3.4.4.
func (t *Table) Bytes() int { return 4 * (t.Buckets() + t.n) }

// Bind allocates simulated addresses for the head and chain arrays.
func (t *Table) Bind(sim *memsim.Sim) {
	if sim == nil || t.headBase != 0 {
		return
	}
	t.headBase = sim.Alloc(4 * len(t.head))
	t.nextBase = sim.Alloc(4 * len(t.next))
}

// Build resets the table and inserts all tuples of build, mirroring
// accesses into sim when non-nil (the BAT must be bound then). A build
// larger than the table's allocated capacity grows the table first —
// capacities are sized from cardinality *estimates*, and skewed data
// routinely exceeds them, which must degrade into a realloc, never a
// crash.
func (t *Table) Build(sim *memsim.Sim, build *bat.Pairs) {
	n := build.Len()
	if n > len(t.next) {
		t.grow(sim, n)
	}
	t.Bind(sim)
	t.n = n
	buckets := BucketsFor(n)
	t.mask = uint32(buckets - 1)
	if sim == nil {
		for i := 0; i < buckets; i++ {
			t.head[i] = none
		}
		for i, bun := range build.BUNs {
			h := (t.hash(bun.Tail) >> t.shift) & t.mask
			t.next[i] = t.head[h]
			t.head[h] = int32(i)
		}
		return
	}
	for i := 0; i < buckets; i++ {
		sim.Write(t.headBase+uint64(i)*4, 4)
		t.head[i] = none
	}
	for i, bun := range build.BUNs {
		sim.Read(build.Addr(i), bat.PairSize) // fetch build tuple
		h := (t.hash(bun.Tail) >> t.shift) & t.mask
		sim.Read(t.headBase+uint64(h)*4, 4)  // old chain head
		sim.Write(t.nextBase+uint64(i)*4, 4) // link entry
		sim.Write(t.headBase+uint64(h)*4, 4) // new chain head
		t.next[i] = t.head[h]
		t.head[h] = int32(i)
	}
}

// grow reallocates the head and chain arrays for builds of up to n
// tuples (the simulated-memory equivalent of a realloc: previously
// bound tables get fresh simulated addresses for the new regions).
func (t *Table) grow(sim *memsim.Sim, n int) {
	t.next = make([]int32, n)
	if b := BucketsFor(n); b > len(t.head) {
		t.head = make([]int32, b)
	}
	if t.headBase != 0 {
		// Rebind: the old addresses cover too few slots. With a live sim
		// allocate the new regions now; otherwise clear the bases so the
		// next instrumented Bind re-allocates.
		t.headBase, t.nextBase = 0, 0
		t.Bind(sim)
	}
}

// Probe walks the chain for key and calls emit for every build
// position whose Tail equals key. Accesses are mirrored into sim when
// non-nil.
func (t *Table) Probe(sim *memsim.Sim, build *bat.Pairs, key uint32, emit func(pos int32)) {
	h := (t.hash(key) >> t.shift) & t.mask
	if sim == nil {
		for e := t.head[h]; e != none; e = t.next[e] {
			if build.BUNs[e].Tail == key {
				emit(e)
			}
		}
		return
	}
	sim.Read(t.headBase+uint64(h)*4, 4)
	for e := t.head[h]; e != none; e = t.next[e] {
		sim.Read(build.Addr(int(e)), bat.PairSize) // candidate tuple
		if build.BUNs[e].Tail == key {
			emit(e)
		}
		sim.Read(t.nextBase+uint64(e)*4, 4) // follow chain
	}
}

// ChainLen returns the chain length of key's bucket (diagnostics).
func (t *Table) ChainLen(key uint32) int {
	n := 0
	for e := t.head[(t.hash(key)>>t.shift)&t.mask]; e != none; e = t.next[e] {
		n++
	}
	return n
}
