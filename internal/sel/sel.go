// Package sel implements the selection access paths discussed in §3.2
// of the paper: the scan-select (optimal data locality, best for low
// selectivity), the bucket-chained hash index and the T-tree of Lehman
// and Carey [LC86] (both with random access to the entire relation),
// and the cache-line-sized B-tree that Rönström [Ron98] — and the
// paper's own findings on cache-miss impact — favour for point and
// high-selectivity queries.
//
// All structures select over a 4-byte integer column whose OIDs are
// positional (a void head), and support instrumented runs through a
// memsim.Sim.
package sel

import (
	"cmp"
	"fmt"
	"slices"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
)

// Column is the selection input: a dense 4-byte integer column with a
// void (positional) head, exactly a decomposed BAT of Figure 4.
type Column struct {
	Vals []int32
	base uint64
}

// NewColumn wraps values as a selection column.
func NewColumn(vals []int32) *Column { return &Column{Vals: vals} }

// Bind allocates simulated address space for the column.
func (c *Column) Bind(sim *memsim.Sim) {
	if sim != nil && c.base == 0 {
		c.base = sim.Alloc(4 * len(c.Vals))
	}
}

// Len returns the column cardinality.
func (c *Column) Len() int { return len(c.Vals) }

func (c *Column) touch(sim *memsim.Sim, i int) {
	if sim != nil {
		sim.Read(c.base+uint64(i)*4, 4)
	}
}

// resultSink collects qualifying OIDs, mirroring result writes.
type resultSink struct {
	sim  *memsim.Sim
	oids []bat.Oid
	base uint64
	cap  int
}

func newResultSink(sim *memsim.Sim, expect int) *resultSink {
	s := &resultSink{sim: sim, oids: make([]bat.Oid, 0, expect)}
	if sim != nil {
		s.cap = expect
		s.base = sim.Alloc(4 * expect)
	}
	return s
}

func (s *resultSink) add(o bat.Oid) {
	if s.sim != nil && len(s.oids) < s.cap {
		s.sim.Write(s.base+uint64(len(s.oids))*4, 4)
	}
	s.oids = append(s.oids, o)
}

// ScanSelect returns the OIDs of all values in [lo, hi] by scanning
// the column — the §3.2 recommendation when selectivity is low, since
// a scan has optimal data locality.
func ScanSelect(sim *memsim.Sim, c *Column, lo, hi int32) []bat.Oid {
	c.Bind(sim)
	sink := newResultSink(sim, len(c.Vals))
	for i, v := range c.Vals {
		c.touch(sim, i)
		if v >= lo && v <= hi {
			sink.add(bat.Oid(i))
		}
	}
	if sim != nil {
		sim.AddCPU(len(c.Vals), sim.Machine().Cost.WScanBUN/4)
	}
	return sink.oids
}

// ---------------------------------------------------------------------
// Bucket-chained hash index (equality only).

// HashIndex accelerates equality selections with a bucket-chained hash
// table over the column: a lookup walks one chain, but each chain hop
// is a random access into the relation — the cache-hostile pattern
// §3.2 warns about for large relations.
type HashIndex struct {
	col  *Column
	mask uint32
	head []int32
	next []int32

	headBase uint64
	nextBase uint64
}

// BuildHashIndex creates the index with a mean chain length of ≈4.
func BuildHashIndex(sim *memsim.Sim, c *Column) *HashIndex {
	buckets := 1
	for buckets*4 < len(c.Vals) {
		buckets <<= 1
	}
	ix := &HashIndex{
		col:  c,
		mask: uint32(buckets - 1),
		head: make([]int32, buckets),
		next: make([]int32, len(c.Vals)),
	}
	c.Bind(sim)
	if sim != nil {
		ix.headBase = sim.Alloc(4 * buckets)
		ix.nextBase = sim.Alloc(4 * len(c.Vals))
	}
	for i := range ix.head {
		ix.head[i] = -1
		if sim != nil {
			sim.Write(ix.headBase+uint64(i)*4, 4)
		}
	}
	for i, v := range c.Vals {
		c.touch(sim, i)
		h := uint32(v) & ix.mask
		if sim != nil {
			sim.Read(ix.headBase+uint64(h)*4, 4)
			sim.Write(ix.nextBase+uint64(i)*4, 4)
			sim.Write(ix.headBase+uint64(h)*4, 4)
		}
		ix.next[i] = ix.head[h]
		ix.head[h] = int32(i)
	}
	return ix
}

// Lookup returns the OIDs of all values equal to key.
func (ix *HashIndex) Lookup(sim *memsim.Sim, key int32) []bat.Oid {
	out := []bat.Oid{} // never nil: nil reads as "all rows" downstream
	h := uint32(key) & ix.mask
	if sim != nil {
		sim.Read(ix.headBase+uint64(h)*4, 4)
		sim.AddCPU(1, sim.Machine().Cost.WScanBUN)
	}
	for e := ix.head[h]; e != -1; e = ix.next[e] {
		ix.col.touch(sim, int(e))
		if ix.col.Vals[e] == key {
			out = append(out, bat.Oid(e))
		}
		if sim != nil {
			sim.Read(ix.nextBase+uint64(e)*4, 4)
			sim.AddCPU(1, sim.Machine().Cost.WScanBUN/4)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Shared helper: sorted (value, oid) entries for the tree indexes.

type entry struct {
	val int32
	oid bat.Oid
}

func sortedEntries(c *Column) []entry {
	es := make([]entry, len(c.Vals))
	for i, v := range c.Vals {
		es[i] = entry{val: v, oid: bat.Oid(i)}
	}
	// (val, oid) pairs are unique, so this order is total and the
	// reflection-free sort is fully deterministic.
	slices.SortFunc(es, func(a, b entry) int {
		if c := cmp.Compare(a.val, b.val); c != 0 {
			return c
		}
		return cmp.Compare(a.oid, b.oid)
	})
	return es
}

// Validate checks that a selection result matches a naive rescan.
func Validate(c *Column, lo, hi int32, got []bat.Oid) error {
	want := make(map[bat.Oid]bool)
	for i, v := range c.Vals {
		if v >= lo && v <= hi {
			want[bat.Oid(i)] = true
		}
	}
	if len(want) != len(got) {
		return fmt.Errorf("sel: %d results, want %d", len(got), len(want))
	}
	for _, o := range got {
		if !want[o] {
			return fmt.Errorf("sel: spurious OID %d", o)
		}
	}
	return nil
}
