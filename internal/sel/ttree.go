package sel

import (
	"monetlite/internal/bat"
	"monetlite/internal/memsim"
)

// TTreeNodeCap is the classic T-tree node capacity of Lehman and Carey
// [LC86]: around 32 (value, OID) entries per node. At 8 bytes per
// entry plus the node header, a node spans several cache lines — the
// structural reason §3.2 finds the T-tree no longer optimal on
// deep-memory-hierarchy machines.
const TTreeNodeCap = 32

// tnode is one T-tree node: a sorted run of entries plus child links.
// Nodes are stored in a flat arena so the simulator can address them.
type tnode struct {
	entries     []entry
	left, right int32 // arena indexes, -1 if absent
}

// tnodeBytes is the simulated footprint of a node: 8 bytes per entry
// slot plus a 16-byte header (bounds + child pointers).
const tnodeBytes = TTreeNodeCap*8 + 16

// TTree is a binary tree of sorted multi-entry nodes built over the
// column (a static, balanced build — the experiments only query it).
type TTree struct {
	col   *Column
	nodes []tnode
	root  int32
	base  uint64
}

// BuildTTree constructs a balanced T-tree over the column's values.
func BuildTTree(sim *memsim.Sim, c *Column) *TTree {
	es := sortedEntries(c)
	t := &TTree{col: c, root: -1}
	c.Bind(sim)
	// Chop the sorted entries into node-sized runs, then build a
	// balanced binary tree over the runs.
	var runs [][]entry
	for lo := 0; lo < len(es); lo += TTreeNodeCap {
		hi := lo + TTreeNodeCap
		if hi > len(es) {
			hi = len(es)
		}
		runs = append(runs, es[lo:hi])
	}
	// A real T-tree is grown by inserts and rotations, so node
	// addresses carry no key order: neighbouring keys live in
	// unrelated heap locations. The balanced bulk-build below would
	// accidentally lay nodes out in near-key order (giving the T-tree
	// an unrealistic locality advantage), so node slots are assigned
	// through a deterministic pseudo-random permutation.
	perm := scatterPermutation(len(runs))
	t.nodes = make([]tnode, len(runs))
	var build func(lo, hi int) int32
	build = func(lo, hi int) int32 {
		if lo >= hi {
			return -1
		}
		mid := (lo + hi) / 2
		idx := perm[mid]
		t.nodes[idx] = tnode{entries: runs[mid], left: build(lo, mid), right: build(mid+1, hi)}
		return idx
	}
	t.root = build(0, len(runs))
	if sim != nil {
		t.base = sim.Alloc(len(t.nodes) * tnodeBytes)
		// Building writes every node once.
		for i := range t.nodes {
			sim.Write(t.base+uint64(i)*tnodeBytes, tnodeBytes)
		}
	}
	return t
}

// touchNode mirrors reading a node's header and bounds, charging the
// bounds-check CPU work.
func (t *TTree) touchNode(sim *memsim.Sim, idx int32) {
	if sim != nil {
		sim.Read(t.base+uint64(idx)*tnodeBytes, 16)
		sim.AddCPU(1, sim.Machine().Cost.WScanBUN)
	}
}

// touchEntry mirrors reading one entry of a node, charging the
// per-entry comparison work (same rate as the scan's per-value work,
// so access paths compare fairly).
func (t *TTree) touchEntry(sim *memsim.Sim, idx int32, k int) {
	if sim != nil {
		sim.Read(t.base+uint64(idx)*tnodeBytes+16+uint64(k)*8, 8)
		sim.AddCPU(1, sim.Machine().Cost.WScanBUN/4)
	}
}

// bounds returns the min and max value of a node (non-empty by
// construction).
func (n *tnode) bounds() (int32, int32) {
	return n.entries[0].val, n.entries[len(n.entries)-1].val
}

// Lookup returns the OIDs of all entries equal to key.
func (t *TTree) Lookup(sim *memsim.Sim, key int32) []bat.Oid {
	out := []bat.Oid{} // never nil: nil reads as "all rows" downstream
	idx := t.root
	for idx != -1 {
		n := &t.nodes[idx]
		t.touchNode(sim, idx)
		min, max := n.bounds()
		switch {
		case key < min:
			idx = n.left
		case key > max:
			idx = n.right
		default:
			// Bounding node: binary search inside, then collect the
			// duplicate run (duplicates never straddle nodes for
			// distinct (val,oid) sort order only when values repeat
			// within one run; scan neighbours via the right child
			// chain to stay correct with duplicates).
			out = append(out, t.collectEqual(sim, idx, key)...)
			return out
		}
	}
	return out
}

// collectEqual gathers all entries with value key from node idx and,
// because duplicates may spill into neighbouring runs, from its
// subtrees' adjacent bounding nodes.
func (t *TTree) collectEqual(sim *memsim.Sim, idx int32, key int32) []bat.Oid {
	var out []bat.Oid
	if idx == -1 {
		return out
	}
	n := &t.nodes[idx]
	t.touchNode(sim, idx)
	min, max := n.bounds()
	if key < min {
		return t.collectEqual(sim, n.left, key)
	}
	if key > max {
		return t.collectEqual(sim, n.right, key)
	}
	// Binary search for the first occurrence inside this node.
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		t.touchEntry(sim, idx, mid)
		if n.entries[mid].val < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for k := lo; k < len(n.entries) && n.entries[k].val == key; k++ {
		t.touchEntry(sim, idx, k)
		out = append(out, n.entries[k].oid)
	}
	// Duplicates may continue in the neighbouring runs.
	if key == min {
		out = append(t.collectEqual(sim, n.left, key), out...)
	}
	if key == max {
		out = append(out, t.collectEqual(sim, n.right, key)...)
	}
	return out
}

// RangeSelect returns the OIDs of all values in [lo, hi] via an
// in-order traversal pruned by node bounds.
func (t *TTree) RangeSelect(sim *memsim.Sim, lo, hi int32) []bat.Oid {
	out := []bat.Oid{} // never nil: nil reads as "all rows" downstream
	var walk func(idx int32)
	walk = func(idx int32) {
		if idx == -1 {
			return
		}
		n := &t.nodes[idx]
		t.touchNode(sim, idx)
		min, max := n.bounds()
		// Inclusive bounds on both descents: node runs are arbitrary
		// chops of the sorted entries, so duplicates of min/max can
		// spill into the neighbouring subtrees.
		if lo <= min {
			walk(n.left)
		}
		if hi >= min && lo <= max {
			for k, e := range n.entries {
				if e.val >= lo && e.val <= hi {
					t.touchEntry(sim, idx, k)
					out = append(out, e.oid)
				}
			}
		}
		if hi >= max {
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// scatterPermutation returns a deterministic pseudo-random permutation
// of [0, n) (splitmix-seeded Fisher–Yates).
func scatterPermutation(n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Depth returns the tree depth (diagnostics).
func (t *TTree) Depth() int {
	var d func(idx int32) int
	d = func(idx int32) int {
		if idx == -1 {
			return 0
		}
		l, r := d(t.nodes[idx].left), d(t.nodes[idx].right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return d(t.root)
}
