package sel

import (
	"testing"

	"monetlite/internal/bat"
)

// The engine reads a nil OID list as "all rows" (void-head
// semantics), so every index lookup must return a non-nil empty slice
// when nothing matches — the bug class monetvet's nonnilsel analyzer
// flagged in CSSTree, TTree and HashIndex. These tests pin the fix
// for both empty-input and no-match shapes.

func nonNilEmpty(t *testing.T, name string, got []bat.Oid) {
	t.Helper()
	if got == nil {
		t.Errorf("%s returned nil for an empty selection; nil reads as \"all rows\" downstream", name)
	}
	if len(got) != 0 {
		t.Errorf("%s returned %v for an empty selection, want []", name, got)
	}
}

func TestEmptySelectionsNonNil(t *testing.T) {
	empty := NewColumn(nil)
	some := NewColumn([]int32{10, 20, 30, 20})

	// Duplicates of 20 sit at OIDs 1 and 3; the (val, oid) build order
	// must surface them ascending (pins the reflection-free sortedEntries).
	wantDup := []bat.Oid{1, 3}

	t.Run("csstree", func(t *testing.T) {
		et := BuildCSSTree(nil, empty)
		nonNilEmpty(t, "empty-tree Lookup", et.Lookup(nil, 5))
		nonNilEmpty(t, "empty-tree RangeSelect", et.RangeSelect(nil, 0, 100))
		st := BuildCSSTree(nil, some)
		nonNilEmpty(t, "no-match Lookup", st.Lookup(nil, 5))
		nonNilEmpty(t, "no-match RangeSelect", st.RangeSelect(nil, 40, 100))
		checkOids(t, "Lookup(20)", st.Lookup(nil, 20), wantDup)
	})

	t.Run("ttree", func(t *testing.T) {
		et := BuildTTree(nil, empty)
		nonNilEmpty(t, "empty-tree Lookup", et.Lookup(nil, 5))
		nonNilEmpty(t, "empty-tree RangeSelect", et.RangeSelect(nil, 0, 100))
		st := BuildTTree(nil, some)
		nonNilEmpty(t, "no-match Lookup", st.Lookup(nil, 5))
		nonNilEmpty(t, "no-match RangeSelect", st.RangeSelect(nil, 40, 100))
		checkOids(t, "Lookup(20)", st.Lookup(nil, 20), wantDup)
	})

	t.Run("hashindex", func(t *testing.T) {
		st := BuildHashIndex(nil, some)
		nonNilEmpty(t, "no-match Lookup", st.Lookup(nil, 5))
		if got := st.Lookup(nil, 20); len(got) != 2 {
			t.Errorf("Lookup(20) = %v, want 2 hits", got)
		}
	})
}

func checkOids(t *testing.T, name string, got, want []bat.Oid) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", name, got, want)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s = %v, want %v", name, got, want)
			return
		}
	}
}
