package sel

import (
	"sort"
	"testing"
	"testing/quick"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// testColumn builds a column of n values drawn from [0, domain).
func testColumn(n, domain int, seed uint64) *Column {
	rng := workload.NewRNG(seed)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(rng.Intn(domain))
	}
	return NewColumn(vals)
}

func sortOids(os []bat.Oid) {
	sort.Slice(os, func(i, j int) bool { return os[i] < os[j] })
}

func equalOids(a, b []bat.Oid) bool {
	if len(a) != len(b) {
		return false
	}
	sortOids(a)
	sortOids(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScanSelectExact(t *testing.T) {
	c := NewColumn([]int32{5, 1, 9, 5, 3, 7})
	got := ScanSelect(nil, c, 3, 6)
	want := []bat.Oid{0, 3, 4} // values 5, 5, 3
	if !equalOids(got, want) {
		t.Errorf("ScanSelect = %v, want %v", got, want)
	}
	if err := Validate(c, 3, 6, got); err != nil {
		t.Error(err)
	}
	if n := len(ScanSelect(nil, c, 100, 200)); n != 0 {
		t.Errorf("empty range returned %d", n)
	}
}

func TestHashIndexLookup(t *testing.T) {
	c := testColumn(5000, 500, 3)
	ix := BuildHashIndex(nil, c)
	for _, key := range []int32{0, 17, 250, 499} {
		got := ix.Lookup(nil, key)
		want := ScanSelect(nil, c, key, key)
		if !equalOids(got, want) {
			t.Errorf("Lookup(%d): %d oids, want %d", key, len(got), len(want))
		}
	}
	if n := len(ix.Lookup(nil, 10000)); n != 0 {
		t.Errorf("missing key returned %d oids", n)
	}
}

func TestTTreeLookupAndRange(t *testing.T) {
	c := testColumn(5000, 300, 5) // heavy duplication
	tt := BuildTTree(nil, c)
	for _, key := range []int32{0, 50, 299} {
		got := tt.Lookup(nil, key)
		want := ScanSelect(nil, c, key, key)
		if !equalOids(got, want) {
			t.Errorf("TTree.Lookup(%d): %d oids, want %d", key, len(got), len(want))
		}
	}
	got := tt.RangeSelect(nil, 100, 150)
	want := ScanSelect(nil, c, 100, 150)
	if !equalOids(got, want) {
		t.Errorf("TTree.RangeSelect: %d oids, want %d", len(got), len(want))
	}
	if d := tt.Depth(); d < 1 || d > 20 {
		t.Errorf("suspicious tree depth %d", d)
	}
}

func TestTTreeEmptyAndSingleton(t *testing.T) {
	empty := BuildTTree(nil, NewColumn(nil))
	if got := empty.Lookup(nil, 5); len(got) != 0 {
		t.Error("empty tree found something")
	}
	single := BuildTTree(nil, NewColumn([]int32{42}))
	if got := single.Lookup(nil, 42); len(got) != 1 || got[0] != 0 {
		t.Errorf("singleton lookup = %v", got)
	}
}

func TestCSSTreeLookupAndRange(t *testing.T) {
	c := testColumn(5000, 300, 7)
	ct := BuildCSSTree(nil, c)
	for _, key := range []int32{0, 50, 299, 1000} {
		got := ct.Lookup(nil, key)
		want := ScanSelect(nil, c, key, key)
		if !equalOids(got, want) {
			t.Errorf("CSSTree.Lookup(%d): %d oids, want %d", key, len(got), len(want))
		}
	}
	got := ct.RangeSelect(nil, 42, 84)
	want := ScanSelect(nil, c, 42, 84)
	if !equalOids(got, want) {
		t.Errorf("CSSTree.RangeSelect: %d oids, want %d", len(got), len(want))
	}
	if h := ct.Height(); h < 2 || h > 8 {
		t.Errorf("suspicious height %d for 5000 keys", h)
	}
}

func TestCSSTreeEmpty(t *testing.T) {
	ct := BuildCSSTree(nil, NewColumn(nil))
	if got := ct.Lookup(nil, 1); len(got) != 0 {
		t.Error("empty CSS tree found something")
	}
	if got := ct.RangeSelect(nil, 0, 10); len(got) != 0 {
		t.Error("empty CSS tree range found something")
	}
}

func TestCSSTreeNodeIsOneCacheLine(t *testing.T) {
	sim := memsim.MustNew(memsim.Origin2000())
	c := testColumn(100000, 1<<30, 11)
	ct := BuildCSSTree(sim, c)
	// A point lookup with a cold cache touches about Height lines: the
	// design point of [Ron98].
	sim.Reset()
	ct.Lookup(sim, c.Vals[0])
	st := sim.Stats()
	h := uint64(ct.Height())
	if st.L1Misses > 2*h+4 {
		t.Errorf("point lookup cost %d L1 misses, want ≈height %d", st.L1Misses, h)
	}
}

func TestPointLookupMissOrdering(t *testing.T) {
	// §3.2's claim, quantified: for point lookups on a large relation,
	// the cache-line B-tree touches fewer lines than the T-tree, and
	// both beat a full scan by orders of magnitude. The hash index uses
	// few accesses too but each is a random memory hit.
	const n = 1 << 18 // 1 MB column: out of L1, fits L2
	c := testColumn(n, 1<<30, 13)
	keys := make([]int32, 200)
	rng := workload.NewRNG(17)
	for i := range keys {
		keys[i] = c.Vals[rng.Intn(n)]
	}

	sim := memsim.MustNew(memsim.Origin2000())
	cc := NewColumn(c.Vals)
	hx := BuildHashIndex(sim, cc)
	tt := BuildTTree(sim, cc)
	ct := BuildCSSTree(sim, cc)

	measure := func(f func(k int32)) memsim.Stats {
		sim.Reset()
		for _, k := range keys {
			f(k)
		}
		return sim.Stats()
	}
	scanStats := measure(func(k int32) { ScanSelect(sim, cc, k, k) })
	hashStats := measure(func(k int32) { hx.Lookup(sim, k) })
	ttreeStats := measure(func(k int32) { tt.Lookup(sim, k) })
	cssStats := measure(func(k int32) { ct.Lookup(sim, k) })

	if cssStats.L1Misses >= ttreeStats.L1Misses {
		t.Errorf("CSS tree (%d L1) not below T-tree (%d L1)", cssStats.L1Misses, ttreeStats.L1Misses)
	}
	if ttreeStats.ElapsedNanos() >= scanStats.ElapsedNanos()/10 {
		t.Errorf("T-tree (%f) not ≫ faster than scan (%f)", ttreeStats.ElapsedMillis(), scanStats.ElapsedMillis())
	}
	if hashStats.ElapsedNanos() >= scanStats.ElapsedNanos()/10 {
		t.Errorf("hash (%f) not ≫ faster than scan (%f)", hashStats.ElapsedMillis(), scanStats.ElapsedMillis())
	}
}

func TestScanBestAtLowSelectivity(t *testing.T) {
	// §3.2: "if the selectivity is low, most data needs to be visited
	// and this is best done with a scan-select". A 90%-selectivity
	// range over a large column must favour the scan over the T-tree.
	const n = 1 << 18
	c := testColumn(n, 1000, 19)
	sim1 := memsim.MustNew(memsim.Origin2000())
	c1 := NewColumn(c.Vals)
	got := ScanSelect(sim1, c1, 0, 899)
	scanStats := sim1.Stats()

	sim2 := memsim.MustNew(memsim.Origin2000())
	c2 := NewColumn(c.Vals)
	tt := BuildTTree(sim2, c2)
	sim2.Reset()
	got2 := tt.RangeSelect(sim2, 0, 899)
	ttreeStats := sim2.Stats()

	if !equalOids(got, got2) {
		t.Fatal("scan and T-tree disagree")
	}
	if scanStats.ElapsedNanos() >= ttreeStats.ElapsedNanos() {
		t.Errorf("scan (%.2fms) not cheaper than T-tree (%.2fms) at 90%% selectivity",
			scanStats.ElapsedMillis(), ttreeStats.ElapsedMillis())
	}
}

// Property: all four access paths agree on arbitrary range selections.
func TestAccessPathsAgreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, loRaw, width uint8) bool {
		n := int(nRaw)%800 + 1
		c := testColumn(n, 100, seed)
		lo := int32(loRaw) % 100
		hi := lo + int32(width)%20
		want := ScanSelect(nil, c, lo, hi)
		tt := BuildTTree(nil, c)
		if !equalOids(tt.RangeSelect(nil, lo, hi), want) {
			return false
		}
		ct := BuildCSSTree(nil, c)
		if !equalOids(ct.RangeSelect(nil, lo, hi), want) {
			return false
		}
		// Hash index: equality on the bound.
		ix := BuildHashIndex(nil, c)
		return equalOids(ix.Lookup(nil, lo), ScanSelect(nil, c, lo, lo))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
