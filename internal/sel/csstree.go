package sel

import (
	"monetlite/internal/bat"
	"monetlite/internal/memsim"
)

// CSSTree is the cache-line-conscious static B+-tree of the §3.2
// discussion ([Ron98]: "a B-tree with a block-size equal to the cache
// line size is optimal"): internal nodes hold exactly one cache line
// of separator keys, children are found by arithmetic instead of
// pointers, and the leaves are the sorted column itself. Each level
// of a descent therefore costs exactly one cache-line touch.
type CSSTree struct {
	col *Column
	m   int // keys per node = line size / 4

	// levels[0] is the sorted leaf keys; levels[k>0] holds, for each
	// node group of level k-1, its last key (the separators).
	levels [][]int32
	oids   []bat.Oid // leaf OIDs parallel to levels[0]

	bases    []uint64 // simulated base per level
	oidsBase uint64
}

// BuildCSSTree constructs the tree with node size equal to the
// machine's L1 cache line (the Rönström design point). With a nil sim
// the Origin2000's 32-byte line (8 keys) is used.
func BuildCSSTree(sim *memsim.Sim, c *Column) *CSSTree {
	line := 32
	if sim != nil {
		line = sim.Machine().L1.LineSize
	}
	m := line / 4
	if m < 2 {
		m = 2
	}
	es := sortedEntries(c)
	leaf := make([]int32, len(es))
	oids := make([]bat.Oid, len(es))
	for i, e := range es {
		leaf[i] = e.val
		oids[i] = e.oid
	}
	t := &CSSTree{col: c, m: m, levels: [][]int32{leaf}, oids: oids}
	for len(t.levels[len(t.levels)-1]) > m {
		below := t.levels[len(t.levels)-1]
		var seps []int32
		for lo := 0; lo < len(below); lo += m {
			hi := lo + m
			if hi > len(below) {
				hi = len(below)
			}
			seps = append(seps, below[hi-1])
		}
		t.levels = append(t.levels, seps)
	}
	c.Bind(sim)
	if sim != nil {
		t.bases = make([]uint64, len(t.levels))
		for i, lv := range t.levels {
			t.bases[i] = sim.Alloc(4 * len(lv))
			for j := range lv {
				sim.Write(t.bases[i]+uint64(j)*4, 4)
			}
		}
		t.oidsBase = sim.Alloc(4 * len(oids))
		for j := range oids {
			sim.Write(t.oidsBase+uint64(j)*4, 4)
		}
	}
	return t
}

// touchNode mirrors reading one node (one cache line) of a level,
// charging the in-node search work.
func (t *CSSTree) touchNode(sim *memsim.Sim, level, node int) {
	if sim == nil {
		return
	}
	lo := node * t.m
	hi := lo + t.m
	if hi > len(t.levels[level]) {
		hi = len(t.levels[level])
	}
	if lo < hi {
		sim.Read(t.bases[level]+uint64(lo)*4, 4*(hi-lo))
		sim.AddCPU(hi-lo, sim.Machine().Cost.WScanBUN/4)
	}
}

// lowerBound descends to the index of the first leaf key ≥ key.
func (t *CSSTree) lowerBound(sim *memsim.Sim, key int32) int {
	node := 0
	for level := len(t.levels) - 1; level > 0; level-- {
		lv := t.levels[level]
		lo := node * t.m
		hi := lo + t.m
		if hi > len(lv) {
			hi = len(lv)
		}
		t.touchNode(sim, level, node)
		p := lo
		for p < hi && lv[p] < key {
			p++
		}
		if p == hi { // key beyond every separator: rightmost child
			p = hi - 1
		}
		node = p
	}
	// Leaf node scan.
	leaf := t.levels[0]
	lo := node * t.m
	hi := lo + t.m
	if hi > len(leaf) {
		hi = len(leaf)
	}
	t.touchNode(sim, 0, node)
	p := lo
	for p < hi && leaf[p] < key {
		p++
	}
	return p
}

// Lookup returns the OIDs of all leaf entries equal to key. The
// result is never nil: engine bindings read a nil OID list as "all
// rows", so an empty match must stay a non-nil empty slice.
func (t *CSSTree) Lookup(sim *memsim.Sim, key int32) []bat.Oid {
	out := []bat.Oid{}
	if len(t.levels[0]) == 0 {
		return out
	}
	leaf := t.levels[0]
	for i := t.lowerBound(sim, key); i < len(leaf) && leaf[i] == key; i++ {
		if sim != nil {
			sim.Read(t.bases[0]+uint64(i)*4, 4)
			sim.Read(t.oidsBase+uint64(i)*4, 4)
			sim.AddCPU(1, sim.Machine().Cost.WScanBUN/4)
		}
		out = append(out, t.oids[i])
	}
	return out
}

// RangeSelect returns the OIDs of all values in [lo, hi]: one descent
// plus a sequential leaf scan (the cache-friendly part of the design).
// Like Lookup, it never returns nil — nil means "all rows" downstream.
func (t *CSSTree) RangeSelect(sim *memsim.Sim, lo, hi int32) []bat.Oid {
	out := []bat.Oid{}
	if len(t.levels[0]) == 0 {
		return out
	}
	leaf := t.levels[0]
	for i := t.lowerBound(sim, lo); i < len(leaf) && leaf[i] <= hi; i++ {
		if sim != nil {
			sim.Read(t.bases[0]+uint64(i)*4, 4)
			sim.Read(t.oidsBase+uint64(i)*4, 4)
			sim.AddCPU(1, sim.Machine().Cost.WScanBUN/4)
		}
		out = append(out, t.oids[i])
	}
	return out
}

// Height returns the number of levels (diagnostics: a descent touches
// exactly Height cache lines).
func (t *CSSTree) Height() int { return len(t.levels) }
