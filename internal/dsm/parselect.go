package dsm

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/core"
	"monetlite/internal/memsim"
)

// Morsel-driven parallel select kernels: the native scan-selects split
// the column into fixed-size morsels (core.MorselRows) and fan them
// out over the core.Options worker pool. Each morsel scans its own
// contiguous range into a private buffer — OIDs ascend within a morsel
// — and the buffers concatenate in morsel order, so the result is
// byte-identical to the serial scan for any worker count. Instrumented
// runs (sim != nil) always take the serial path: the simulator models
// a single CPU and is not safe for concurrent use.

// concatOids stitches per-morsel OID buffers back together in morsel
// order.
func concatOids(parts [][]bat.Oid) []bat.Oid {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]bat.Oid, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// SelectRangeOpts is SelectRange with an execution-engine
// configuration: the native scan fans morsels out over the worker
// pool; instrumented or single-worker runs take the serial path.
func (t *Table) SelectRangeOpts(sim *memsim.Sim, column string, lo, hi int64, opt core.Options) ([]bat.Oid, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	if c.Enc != nil {
		return nil, fmt.Errorf("dsm: SelectRange on encoded column %q; use SelectStringRange", column)
	}
	n := c.Vec.Len()
	workers := opt.WorkersFor(n)
	if sim != nil || workers <= 1 {
		return t.SelectRange(sim, column, lo, hi)
	}
	parts := make([][]bat.Oid, core.MorselsOf(n))
	core.ForMorsels(workers, n, func(m, from, to int) {
		parts[m] = nativeSelectRangeAt(c, lo, hi, from, to)
	})
	return concatOids(parts), nil
}

// SelectStringOpts is SelectString with an execution-engine
// configuration. Only the re-mapped byte-code scan over an encoded
// column parallelizes — an unencoded string column scans serially
// (its cost is dominated by string compares the §3.1 encoding exists
// to avoid).
func (t *Table) SelectStringOpts(sim *memsim.Sim, column, value string, opt core.Options) ([]bat.Oid, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	n := c.Vec.Len()
	workers := opt.WorkersFor(n)
	if sim != nil || workers <= 1 || c.Enc == nil {
		return t.SelectString(sim, column, value)
	}
	code, ok := c.Enc.Code(value)
	if !ok {
		return []bat.Oid{}, nil // value outside domain: empty, never nil
	}
	parts := make([][]bat.Oid, core.MorselsOf(n))
	core.ForMorsels(workers, n, func(m, from, to int) {
		parts[m] = nativeSelectCodeAt(c, code, from, to)
	})
	return concatOids(parts), nil
}
