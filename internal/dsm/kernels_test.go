package dsm

import (
	"reflect"
	"testing"

	"monetlite/internal/bat"
	"monetlite/internal/workload"
)

// The into-caller-buffer pipeline kernels must agree exactly with the
// materializing operators they replace, and must not allocate when the
// caller's buffer has capacity.

func kernelTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl, err := ItemTable(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSelectAndFilterPosKernels(t *testing.T) {
	tbl := kernelTable(t, 4096)
	date, err := tbl.Column("date1")
	if err != nil {
		t.Fatal(err)
	}
	ship, err := tbl.Column("shipmode")
	if err != nil {
		t.Fatal(err)
	}

	// Ranged select into a caller buffer vs the whole-column scan.
	oids, err := tbl.SelectRange(nil, "date1", 8500, 9499)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int32, 0, 4096)
	var got []int32
	for _, r := range [][2]int{{0, 1000}, {1000, 1000}, {1000, 4096}} {
		part := SelectRangePos(date, 8500, 9499, r[0], r[1], buf[:0])
		got = append(got, part...)
	}
	if len(got) != len(oids) {
		t.Fatalf("SelectRangePos found %d positions, scan %d", len(got), len(oids))
	}
	for i := range oids {
		if int64(got[i]) != int64(oids[i]) {
			t.Fatalf("position %d: kernel %d, scan %d", i, got[i], oids[i])
		}
	}

	// Code select + range refilter compose like two scans.
	code, ok := ship.Enc.Code("MAIL")
	if !ok {
		t.Fatal("MAIL outside dictionary")
	}
	pos := SelectCodePos(ship, code, 0, 4096, buf[:0])
	pos = FilterRangePos(date, 8500, 9499, pos)
	want, err := tbl.SelectString(nil, "shipmode", "MAIL")
	if err != nil {
		t.Fatal(err)
	}
	dates, err := tbl.GatherInt(nil, "date1", want)
	if err != nil {
		t.Fatal(err)
	}
	wantBoth := 0
	for _, v := range dates {
		if v >= 8500 && v <= 9499 {
			wantBoth++
		}
	}
	if len(pos) != wantBoth {
		t.Fatalf("code+range filter kept %d rows, scans agree on %d", len(pos), wantBoth)
	}

	// FilterCodePos over an identity position vector equals the code
	// scan.
	idn := buf[:0]
	for i := 0; i < 4096; i++ {
		idn = append(idn, int32(i))
	}
	kept := FilterCodePos(ship, code, idn)
	if len(kept) != len(want) {
		t.Fatalf("FilterCodePos kept %d, scan %d", len(kept), len(want))
	}
}

func TestGatherPosKernels(t *testing.T) {
	tbl := kernelTable(t, 2048)
	rng := workload.NewRNG(3)
	pos := make([]int32, 0, 300)
	for i := 0; i < 300; i++ {
		pos = append(pos, int32(rng.Intn(2048)))
	}
	oids := make([]bat.Oid, len(pos))
	for i, p := range pos {
		oids[i] = bat.Oid(p)
	}

	price, _ := tbl.Column("price")
	order, _ := tbl.Column("order")
	ship, _ := tbl.Column("shipmode")

	wantF, err := tbl.GatherFloat(nil, "price", oids)
	if err != nil {
		t.Fatal(err)
	}
	if gotF := AppendFloatsPos(nil, price, pos); !reflect.DeepEqual(gotF, wantF) {
		t.Error("AppendFloatsPos differs from GatherFloat")
	}
	if gotF := GatherFloatsPos(price, pos, make([]float64, 0, len(pos))); !reflect.DeepEqual(gotF, wantF) {
		t.Error("GatherFloatsPos differs from GatherFloat")
	}
	wantI, err := tbl.GatherInt(nil, "order", oids)
	if err != nil {
		t.Fatal(err)
	}
	if gotI := AppendIntsPos(nil, order, pos); !reflect.DeepEqual(gotI, wantI) {
		t.Error("AppendIntsPos differs from GatherInt")
	}
	wantS, err := tbl.GatherString(nil, "shipmode", oids)
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := AppendStringsPos(nil, ship, pos)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, wantS) {
		t.Error("AppendStringsPos differs from GatherString")
	}
	// Codes: unsigned, matching CodeAt.
	codes := AppendCodesPos(nil, ship, pos)
	for i, p := range pos {
		if codes[i] != CodeAt(ship, int(p)) {
			t.Fatalf("code at %d: %d, want %d", p, codes[i], CodeAt(ship, int(p)))
		}
	}
}

func TestPosKernelsDoNotAllocate(t *testing.T) {
	tbl := kernelTable(t, 4096)
	date, _ := tbl.Column("date1")
	price, _ := tbl.Column("price")
	posBuf := make([]int32, 0, 4096)
	fltBuf := make([]float64, 0, 4096)
	allocs := testing.AllocsPerRun(20, func() {
		pos := SelectRangePos(date, 8000, 9999, 0, 4096, posBuf[:0])
		pos = FilterRangePos(date, 8500, 9499, pos)
		GatherFloatsPos(price, pos, fltBuf)
	})
	if allocs != 0 {
		t.Errorf("select→filter→gather pipeline allocated %.1f times per run, want 0", allocs)
	}
}
