package dsm

import (
	"testing"

	"monetlite/internal/bat"
	"monetlite/internal/core"
	"monetlite/internal/memsim"
)

// shrinkMorsels drops the morsel size so small test columns span many
// morsels; restored after the test.
func shrinkMorsels(t *testing.T, rows int) {
	t.Helper()
	old := core.MorselRows
	core.MorselRows = rows
	t.Cleanup(func() { core.MorselRows = old })
}

func sameOids(t *testing.T, name string, got, want []bat.Oid) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: parallel selected %d OIDs, serial %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: OID %d = %d, serial %d", name, i, got[i], want[i])
		}
	}
}

// TestParallelSelectsMatchSerial: the morsel-parallel scan-selects
// must produce OID lists byte-identical to the serial scans, across
// selectivities, on skewed and tiny inputs, for awkward worker counts.
func TestParallelSelectsMatchSerial(t *testing.T) {
	shrinkMorsels(t, 256)
	for _, n := range []int{1, 7, 255, 256, 257, 5000} {
		tbl, err := ItemTable(n, 42)
		if err != nil {
			t.Fatal(err)
		}
		ranges := []struct {
			name   string
			lo, hi int64
		}{
			{"all", 0, 1 << 40},
			{"none", -10, -1},
			{"half", 8000, 9000},
			{"point", 8500, 8500},
		}
		for _, r := range ranges {
			want, err := tbl.SelectRange(nil, "date1", r.lo, r.hi)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 16} {
				got, err := tbl.SelectRangeOpts(nil, "date1", r.lo, r.hi, core.Options{Parallelism: w})
				if err != nil {
					t.Fatal(err)
				}
				sameOids(t, r.name, got, want)
			}
		}
		for _, v := range []string{"MAIL", "NOSUCH"} {
			want, err := tbl.SelectString(nil, "shipmode", v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tbl.SelectStringOpts(nil, "shipmode", v, core.Options{Parallelism: 5})
			if err != nil {
				t.Fatal(err)
			}
			sameOids(t, "string "+v, got, want)
		}
	}
}

// TestParallelSelectInstrumentedStaysSerial: with a simulator the Opts
// selects must behave exactly like the serial selects — same OIDs and
// same simulated access counts (the sim models a single CPU).
func TestParallelSelectInstrumentedStaysSerial(t *testing.T) {
	shrinkMorsels(t, 256)
	run := func(opts bool) (memsim.Stats, []bat.Oid) {
		tbl, err := ItemTable(2048, 42)
		if err != nil {
			t.Fatal(err)
		}
		sim := memsim.MustNew(memsim.Origin2000())
		var oids []bat.Oid
		if opts {
			oids, err = tbl.SelectRangeOpts(sim, "date1", 8500, 9499, core.Options{Parallelism: 8})
		} else {
			oids, err = tbl.SelectRange(sim, "date1", 8500, 9499)
		}
		if err != nil {
			t.Fatal(err)
		}
		return sim.Stats(), oids
	}
	serialStats, serialOids := run(false)
	optStats, optOids := run(true)
	if serialStats != optStats {
		t.Errorf("instrumented Opts select changed simulated stats:\nserial %+v\nopts   %+v", serialStats, optStats)
	}
	sameOids(t, "instrumented", optOids, serialOids)
}
