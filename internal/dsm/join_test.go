package dsm

import (
	"testing"

	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// orderTable builds a small dimension table of order ids and
// priorities to join the Item fact table against.
func orderTable(t *testing.T, n int) *Table {
	t.Helper()
	schema := Schema{
		Name: "order",
		Cols: []ColumnDef{
			{Name: "id", Type: LInt},
			{Name: "priority", Type: LString},
			{Name: "fee", Type: LFloat},
		},
	}
	rng := workload.NewRNG(99)
	rows := make([][]any, n)
	prios := []string{"LOW", "MEDIUM", "HIGH"}
	for i := range rows {
		rows[i] = []any{int64(1000 + i), prios[rng.Intn(3)], float64(rng.Intn(100))}
	}
	tab, err := Decompose(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestJoinItemOrder(t *testing.T) {
	const n = 2000
	items := itemTable(t, n)   // item.order ∈ [1000, 1000+n)
	orders := orderTable(t, n) // order.id = 1000+i
	m := memsim.Origin2000()
	res, err := Join(nil, items, "order", orders, "id", m)
	if err != nil {
		t.Fatal(err)
	}
	// item.order = 1000+i is unique per row and matches order.id
	// exactly once: n result pairs.
	if res.Len() != n {
		t.Fatalf("join produced %d pairs, want %d", res.Len(), n)
	}
	// The join index must align matching values.
	itemOrder, err := items.GatherInt(nil, "order", res.LeftOids())
	if err != nil {
		t.Fatal(err)
	}
	orderID, err := orders.GatherInt(nil, "id", res.RightOids())
	if err != nil {
		t.Fatal(err)
	}
	for i := range itemOrder {
		if itemOrder[i] != orderID[i] {
			t.Fatalf("pair %d: item.order %d != order.id %d", i, itemOrder[i], orderID[i])
		}
	}
	// Reconstruction along the index.
	prios, err := res.GatherRightFloat(nil, "fee")
	if err != nil {
		t.Fatal(err)
	}
	if len(prios) != n {
		t.Errorf("gathered %d fees", len(prios))
	}
	modes, err := res.GatherLeftString(nil, "shipmode")
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != n {
		t.Errorf("gathered %d shipmodes", len(modes))
	}
}

func TestJoinInstrumented(t *testing.T) {
	items := itemTable(t, 5000)
	orders := orderTable(t, 5000)
	m := memsim.Origin2000()
	sim := memsim.MustNew(m)
	res, err := Join(sim, items, "order", orders, "id", m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5000 {
		t.Fatalf("join produced %d pairs", res.Len())
	}
	if sim.Stats().Accesses == 0 {
		t.Error("instrumented join did no simulated accesses")
	}
}

func TestJoinValidation(t *testing.T) {
	items := itemTable(t, 10)
	orders := orderTable(t, 10)
	m := memsim.Origin2000()
	if _, err := Join(nil, items, "shipmode", orders, "id", m); err == nil {
		t.Error("join on encoded string column accepted")
	}
	if _, err := Join(nil, items, "price", orders, "id", m); err == nil {
		t.Error("join on float column accepted")
	}
	if _, err := Join(nil, items, "nope", orders, "id", m); err == nil {
		t.Error("join on missing column accepted")
	}
	// Negative values do not fit the uint32 BUN layout.
	neg, err := Decompose(Schema{Name: "neg", Cols: []ColumnDef{{Name: "k", Type: LInt}}},
		[][]any{{int64(-5)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Join(nil, neg, "k", orders, "id", m); err == nil {
		t.Error("negative join key accepted")
	}
}
