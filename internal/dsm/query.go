package dsm

import (
	"fmt"

	"monetlite/internal/agg"
	"monetlite/internal/bat"
	"monetlite/internal/memsim"
)

// SelectRange returns the OIDs of rows whose numeric column value lies
// in [lo, hi]: a scan-select over the decomposed column (optimal
// locality; the §3.2 low-selectivity access path).
func (t *Table) SelectRange(sim *memsim.Sim, column string, lo, hi int64) ([]bat.Oid, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	if c.Enc != nil {
		return nil, fmt.Errorf("dsm: SelectRange on encoded column %q; use SelectStringRange", column)
	}
	c.Vec.Bind(sim)
	var out []bat.Oid
	for i := 0; i < c.Vec.Len(); i++ {
		c.Vec.Touch(sim, i)
		if v := c.Vec.Int(i); v >= lo && v <= hi {
			out = append(out, bat.Oid(i))
		}
	}
	if sim != nil {
		sim.AddCPU(c.Vec.Len(), sim.Machine().Cost.WScanBUN/4)
	}
	return out, nil
}

// SelectString returns the OIDs of rows whose string column equals
// value. On an encoded column the predicate is re-mapped to a 1-byte
// code comparison — "a selection on a string 'MAIL' can be re-mapped
// to a selection on a byte with value 3" (§3.1) — so the scan never
// decodes.
func (t *Table) SelectString(sim *memsim.Sim, column, value string) ([]bat.Oid, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	if c.Enc == nil {
		sv, ok := c.Vec.(*bat.StrVec)
		if !ok {
			return nil, fmt.Errorf("dsm: column %q is not a string column", column)
		}
		var out []bat.Oid
		for i := 0; i < sv.Len(); i++ {
			sv.Touch(sim, i)
			if sv.Str(i) == value {
				out = append(out, bat.Oid(i))
			}
		}
		return out, nil
	}
	code, ok := c.Enc.Code(value)
	if !ok {
		return nil, nil // value outside domain: empty result
	}
	c.Vec.Bind(sim)
	var out []bat.Oid
	for i := 0; i < c.Vec.Len(); i++ {
		c.Vec.Touch(sim, i)
		if codeOf(c, i) == code {
			out = append(out, bat.Oid(i))
		}
	}
	if sim != nil {
		sim.AddCPU(c.Vec.Len(), sim.Machine().Cost.WScanBUN/4)
	}
	return out, nil
}

// codeOf reads the unsigned dictionary code at position i.
func codeOf(c *Column, i int) int64 {
	v := c.Vec.Int(i)
	if v < 0 {
		switch c.Vec.Type() {
		case bat.TI8:
			v += 1 << 8
		case bat.TI16:
			v += 1 << 16
		}
	}
	return v
}

// GatherFloat reconstructs the float values of the given OIDs by
// positional lookup — the void-column tuple-reconstruction join whose
// cost §3.1 calls effectively eliminated.
func (t *Table) GatherFloat(sim *memsim.Sim, column string, oids []bat.Oid) ([]float64, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	fv, ok := c.Vec.(*bat.F64Vec)
	if !ok {
		return nil, fmt.Errorf("dsm: column %q is not a float column", column)
	}
	fv.Bind(sim)
	out := make([]float64, len(oids))
	for i, o := range oids {
		pos, ok := t.Head.Position(o)
		if !ok {
			return nil, fmt.Errorf("dsm: OID %d outside table", o)
		}
		fv.Touch(sim, pos)
		out[i] = fv.Float(pos)
	}
	return out, nil
}

// GatherInt reconstructs integer/date values of the given OIDs.
func (t *Table) GatherInt(sim *memsim.Sim, column string, oids []bat.Oid) ([]int64, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	c.Vec.Bind(sim)
	out := make([]int64, len(oids))
	for i, o := range oids {
		pos, ok := t.Head.Position(o)
		if !ok {
			return nil, fmt.Errorf("dsm: OID %d outside table", o)
		}
		c.Vec.Touch(sim, pos)
		out[i] = c.Vec.Int(pos)
	}
	return out, nil
}

// GatherString reconstructs (and decodes) string values of the given
// OIDs. Decoding happens only here, at result materialization.
func (t *Table) GatherString(sim *memsim.Sim, column string, oids []bat.Oid) ([]string, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(oids))
	for i, o := range oids {
		pos, ok := t.Head.Position(o)
		if !ok {
			return nil, fmt.Errorf("dsm: OID %d outside table", o)
		}
		c.Vec.Touch(sim, pos)
		switch {
		case c.Enc != nil:
			out[i] = c.Enc.Decode(c.Vec.Int(pos))
		default:
			sv, ok := c.Vec.(*bat.StrVec)
			if !ok {
				return nil, fmt.Errorf("dsm: column %q is not a string column", column)
			}
			out[i] = sv.Str(pos)
		}
	}
	return out, nil
}

// AggregateRow is one row of a grouped aggregate result, with the
// group key decoded back to its string form when the key column is
// encoded.
type AggregateRow struct {
	Key   string
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// GroupAggregate computes per-group aggregates of a measure expression
// over the qualifying OIDs (nil oids = all rows): the Monet-style plan
// for SELECT key, SUM(measure) ... GROUP BY key. Key must be a string
// (usually encoded) column; measure a float column. The measure can be
// transformed by expr (nil = identity), evaluated per tuple.
func (t *Table) GroupAggregate(sim *memsim.Sim, keyCol, measureCol string, oids []bat.Oid, expr func(float64) float64) ([]AggregateRow, error) {
	kc, err := t.Column(keyCol)
	if err != nil {
		return nil, err
	}
	mc, err := t.Column(measureCol)
	if err != nil {
		return nil, err
	}
	mv, ok := mc.Vec.(*bat.F64Vec)
	if !ok {
		return nil, fmt.Errorf("dsm: measure column %q is not float", measureCol)
	}
	kc.Vec.Bind(sim)
	mv.Bind(sim)

	// Materialize the qualifying (code, measure) pair columns; with nil
	// OIDs this is a pure scan, otherwise a positional gather.
	n := t.N
	if oids != nil {
		n = len(oids)
	}
	codes := make([]int16, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		pos := i
		if oids != nil {
			p, ok := t.Head.Position(oids[i])
			if !ok {
				return nil, fmt.Errorf("dsm: OID %d outside table", oids[i])
			}
			pos = p
		}
		kc.Vec.Touch(sim, pos)
		mv.Touch(sim, pos)
		codes[i] = int16(codeOf(kc, pos))
		v := mv.Float(pos)
		if expr != nil {
			v = expr(v)
		}
		vals[i] = v
	}
	res, err := agg.HashGroup(sim, bat.NewI16(codes), bat.NewF64(vals))
	if err != nil {
		return nil, err
	}
	sorted := res.Sorted()
	rows := make([]AggregateRow, sorted.Groups())
	for i := range rows {
		key := fmt.Sprintf("%d", sorted.Key[i])
		if kc.Enc != nil {
			key = kc.Enc.Decode(sorted.Key[i])
		}
		rows[i] = AggregateRow{
			Key:   key,
			Count: sorted.Count[i],
			Sum:   sorted.Sum[i],
			Min:   sorted.Min[i],
			Max:   sorted.Max[i],
		}
	}
	return rows, nil
}

// ScanColumnStats runs the §3.1 motivating comparison for one column
// of this table: the simulated cost of aggregating that column when
// stored (a) inside N-ary records of the schema's full row width,
// (b) as an 8-byte BUN column, and (c) in its actual decomposed width
// (1 byte for an encoded shipmode). It returns the three stat sets.
func (t *Table) ScanColumnStats(m memsim.Machine, column string) (nsm, bun, dsmStats memsim.Stats, err error) {
	c, err := t.Column(column)
	if err != nil {
		return nsm, bun, dsmStats, err
	}
	width := c.Width()
	if width == 0 {
		width = 1
	}
	nsm, err = scanWidth(m, t.N, t.Schema.RowWidth())
	if err != nil {
		return nsm, bun, dsmStats, err
	}
	bun, err = scanWidth(m, t.N, bat.PairSize)
	if err != nil {
		return nsm, bun, dsmStats, err
	}
	dsmStats, err = scanWidth(m, t.N, width)
	return nsm, bun, dsmStats, err
}

// scanWidth simulates a one-field scan over n records of the given
// width (cold caches), like the Figure-3 experiment.
func scanWidth(m memsim.Machine, n, width int) (memsim.Stats, error) {
	sim, err := memsim.New(m)
	if err != nil {
		return memsim.Stats{}, err
	}
	base := sim.Alloc(n * width)
	sim.InvalidateCaches()
	for i := 0; i < n; i++ {
		sim.Read(base+uint64(i)*uint64(width), 1)
	}
	sim.AddCPU(n, m.Cost.WScanBUN)
	return sim.Stats(), nil
}
