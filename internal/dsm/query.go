package dsm

import (
	"fmt"

	"monetlite/internal/agg"
	"monetlite/internal/bat"
	"monetlite/internal/memsim"
)

// SelectRange returns the OIDs of rows whose numeric column value lies
// in [lo, hi]: a scan-select over the decomposed column (optimal
// locality; the §3.2 low-selectivity access path). Native runs take a
// fast path with no per-element simulator check, direct typed-slice
// access, and an output preallocated from a sampled selectivity.
func (t *Table) SelectRange(sim *memsim.Sim, column string, lo, hi int64) ([]bat.Oid, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	if c.Enc != nil {
		return nil, fmt.Errorf("dsm: SelectRange on encoded column %q; use SelectStringRange", column)
	}
	if sim == nil {
		return nativeSelectRange(c, lo, hi), nil
	}
	c.Vec.Bind(sim)
	out := []bat.Oid{} // empty results stay non-nil, like every select path
	for i := 0; i < c.Vec.Len(); i++ {
		c.Vec.Touch(sim, i)
		if v := c.Vec.Int(i); v >= lo && v <= hi {
			out = append(out, bat.Oid(i))
		}
	}
	sim.AddCPU(c.Vec.Len(), sim.Machine().Cost.WScanBUN/4)
	return out, nil
}

// SamplePositions returns up to 1024 evenly spaced positions of an
// n-row column: the deterministic probe set behind every selectivity
// and group-count estimate (here and in the engine's planner).
func SamplePositions(n int) []int {
	if n <= 0 {
		return nil
	}
	step := (n + 1023) / 1024
	if step < 1 {
		step = 1
	}
	out := make([]int, 0, (n+step-1)/step)
	for i := 0; i < n; i += step {
		out = append(out, i)
	}
	return out
}

// estimateCapRange probes up to 1024 evenly spaced positions inside
// [from, to) through the test predicate and sizes an output slice from
// the matching fraction (with slack, clamped to [16, n]) — so a scan
// (or one morsel of a parallel scan) almost never reallocates while
// small results stay small, and a morsel that misestimates only
// reallocates its own buffer.
func estimateCapRange(from, to int, test func(i int) bool) int {
	n := to - from
	if n <= 0 {
		return 0
	}
	step := (n + 1023) / 1024
	match, probes := 0, 0
	for i := from; i < to; i += step {
		probes++
		if test(i) {
			match++
		}
	}
	cap := n / probes * match
	cap += cap / 8
	if cap < 16 {
		cap = 16
	}
	if cap > n {
		cap = n
	}
	return cap
}

// nativeSelectRange is the uninstrumented scan-select: one tight loop
// per physical width, no Touch, preallocated output.
//
//monet:kernel
func nativeSelectRange(c *Column, lo, hi int64) []bat.Oid {
	return nativeSelectRangeAt(c, lo, hi, 0, c.Vec.Len())
}

// nativeSelectRangeAt scans positions [from, to) only — the morsel
// body of the parallel scan-select (OIDs ascend within the range, so
// concatenating morsel outputs in order reproduces the full scan).
//
//monet:kernel
func nativeSelectRangeAt(c *Column, lo, hi int64, from, to int) []bat.Oid {
	switch v := c.Vec.(type) {
	case *bat.I8Vec:
		return selectSlice(v.V[from:to], lo, hi, from)
	case *bat.I16Vec:
		return selectSlice(v.V[from:to], lo, hi, from)
	case *bat.I32Vec:
		return selectSlice(v.V[from:to], lo, hi, from)
	case *bat.I64Vec:
		return selectSlice(v.V[from:to], lo, hi, from)
	default:
		//monet:allow kernalloc non-escaping capacity-estimate predicate, stack-allocated; the scan loop itself is allocation-free
		out := make([]bat.Oid, 0, estimateCapRange(from, to, func(i int) bool {
			x := c.Vec.Int(i)
			return x >= lo && x <= hi
		}))
		for i := from; i < to; i++ {
			if x := c.Vec.Int(i); x >= lo && x <= hi {
				out = append(out, bat.Oid(i))
			}
		}
		return out
	}
}

// selectSlice scans one typed slice, emitting OIDs offset by base.
// Widths narrower than the bounds clamp correctly because the
// comparison widens each element.
//
//monet:kernel
func selectSlice[T int8 | int16 | int32 | int64](vals []T, lo, hi int64, base int) []bat.Oid {
	//monet:allow kernalloc non-escaping capacity-estimate predicate, stack-allocated; the scan loop itself is allocation-free
	out := make([]bat.Oid, 0, estimateCapRange(0, len(vals), func(i int) bool {
		x := int64(vals[i])
		return x >= lo && x <= hi
	}))
	for i, v := range vals {
		if x := int64(v); x >= lo && x <= hi {
			out = append(out, bat.Oid(base+i))
		}
	}
	return out
}

// SelectString returns the OIDs of rows whose string column equals
// value. On an encoded column the predicate is re-mapped to a 1-byte
// code comparison — "a selection on a string 'MAIL' can be re-mapped
// to a selection on a byte with value 3" (§3.1) — so the scan never
// decodes.
func (t *Table) SelectString(sim *memsim.Sim, column, value string) ([]bat.Oid, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	if c.Enc == nil {
		sv, ok := c.Vec.(*bat.StrVec)
		if !ok {
			return nil, fmt.Errorf("dsm: column %q is not a string column", column)
		}
		out := []bat.Oid{}
		for i := 0; i < sv.Len(); i++ {
			sv.Touch(sim, i)
			if sv.Str(i) == value {
				out = append(out, bat.Oid(i))
			}
		}
		return out, nil
	}
	code, ok := c.Enc.Code(value)
	if !ok {
		// Value outside the dictionary: an empty — and, like every
		// select result, non-nil — OID list. A nil here would read as
		// "all rows" to consumers that treat nil OID lists as the
		// unfiltered identity (dsm.GroupAggregate, engine bindings).
		return []bat.Oid{}, nil
	}
	if sim == nil {
		return nativeSelectCode(c, code), nil
	}
	c.Vec.Bind(sim)
	out := []bat.Oid{}
	for i := 0; i < c.Vec.Len(); i++ {
		c.Vec.Touch(sim, i)
		if codeOf(c, i) == code {
			out = append(out, bat.Oid(i))
		}
	}
	sim.AddCPU(c.Vec.Len(), sim.Machine().Cost.WScanBUN/4)
	return out, nil
}

// nativeSelectCode is the uninstrumented byte-code equality scan: the
// re-mapped string predicate on the 1-/2-byte code column, as one
// tight loop with preallocated output.
//
//monet:kernel
func nativeSelectCode(c *Column, code int64) []bat.Oid {
	return nativeSelectCodeAt(c, code, 0, c.Vec.Len())
}

// nativeSelectCodeAt scans positions [from, to) only — the morsel body
// of the parallel byte-code equality scan.
//
//monet:kernel
func nativeSelectCodeAt(c *Column, code int64, from, to int) []bat.Oid {
	switch v := c.Vec.(type) {
	case *bat.I8Vec:
		return selectEqSlice(v.V[from:to], int8(code), from)
	case *bat.I16Vec:
		return selectEqSlice(v.V[from:to], int16(code), from)
	default:
		//monet:allow kernalloc non-escaping capacity-estimate predicate, stack-allocated; the scan loop itself is allocation-free
		out := make([]bat.Oid, 0, estimateCapRange(from, to, func(i int) bool { return codeOf(c, i) == code }))
		for i := from; i < to; i++ {
			if codeOf(c, i) == code {
				out = append(out, bat.Oid(i))
			}
		}
		return out
	}
}

// selectEqSlice scans one typed code slice for equality, emitting OIDs
// offset by base. The target is pre-narrowed to the slice's element
// type, so each comparison is a single machine-width compare (codes
// are stored with wraparound, and narrowing the unsigned code value
// applies the same wraparound).
//
//monet:kernel
func selectEqSlice[T int8 | int16](vals []T, code T, base int) []bat.Oid {
	//monet:allow kernalloc non-escaping capacity-estimate predicate, stack-allocated; the scan loop itself is allocation-free
	out := make([]bat.Oid, 0, estimateCapRange(0, len(vals), func(i int) bool { return vals[i] == code }))
	for i, v := range vals {
		if v == code {
			out = append(out, bat.Oid(base+i))
		}
	}
	return out
}

// CodeAt reads the unsigned dictionary code at position i of an
// encoded column — the value the §3.1 predicate re-mapping compares.
func CodeAt(c *Column, i int) int64 { return codeOf(c, i) }

// CodeWrap returns the modulus that undoes the signed storage of a
// column's code vector (0 when the stored value is already unsigned):
// a negative stored value v decodes to v + CodeWrap. The single source
// of the wraparound invariant, shared by every code reader.
func CodeWrap(c *Column) int64 {
	switch c.Vec.Type() {
	case bat.TI8:
		return 1 << 8
	case bat.TI16:
		return 1 << 16
	}
	return 0
}

// codeOf reads the unsigned dictionary code at position i.
func codeOf(c *Column, i int) int64 {
	v := c.Vec.Int(i)
	if v < 0 {
		v += CodeWrap(c)
	}
	return v
}

// GatherFloat reconstructs the float values of the given OIDs by
// positional lookup — the void-column tuple-reconstruction join whose
// cost §3.1 calls effectively eliminated.
func (t *Table) GatherFloat(sim *memsim.Sim, column string, oids []bat.Oid) ([]float64, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	fv, ok := c.Vec.(*bat.F64Vec)
	if !ok {
		return nil, fmt.Errorf("dsm: column %q is not a float column", column)
	}
	fv.Bind(sim)
	out := make([]float64, len(oids))
	for i, o := range oids {
		pos, ok := t.Head.Position(o)
		if !ok {
			return nil, fmt.Errorf("dsm: OID %d outside table", o)
		}
		fv.Touch(sim, pos)
		out[i] = fv.Float(pos)
	}
	return out, nil
}

// GatherInt reconstructs integer/date values of the given OIDs.
func (t *Table) GatherInt(sim *memsim.Sim, column string, oids []bat.Oid) ([]int64, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	c.Vec.Bind(sim)
	out := make([]int64, len(oids))
	for i, o := range oids {
		pos, ok := t.Head.Position(o)
		if !ok {
			return nil, fmt.Errorf("dsm: OID %d outside table", o)
		}
		c.Vec.Touch(sim, pos)
		out[i] = c.Vec.Int(pos)
	}
	return out, nil
}

// GatherString reconstructs (and decodes) string values of the given
// OIDs. Decoding happens only here, at result materialization.
func (t *Table) GatherString(sim *memsim.Sim, column string, oids []bat.Oid) ([]string, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(oids))
	for i, o := range oids {
		pos, ok := t.Head.Position(o)
		if !ok {
			return nil, fmt.Errorf("dsm: OID %d outside table", o)
		}
		c.Vec.Touch(sim, pos)
		switch {
		case c.Enc != nil:
			out[i] = c.Enc.Decode(c.Vec.Int(pos))
		default:
			sv, ok := c.Vec.(*bat.StrVec)
			if !ok {
				return nil, fmt.Errorf("dsm: column %q is not a string column", column)
			}
			out[i] = sv.Str(pos)
		}
	}
	return out, nil
}

// AggregateRow is one row of a grouped aggregate result, with the
// group key decoded back to its string form when the key column is
// encoded.
type AggregateRow struct {
	Key   string
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// GroupAggregate computes per-group aggregates of a measure expression
// over the qualifying OIDs (nil oids = all rows): the Monet-style plan
// for SELECT key, SUM(measure) ... GROUP BY key. Key must be a string
// (usually encoded) column; measure a float column. The measure can be
// transformed by expr (nil = identity), evaluated per tuple.
func (t *Table) GroupAggregate(sim *memsim.Sim, keyCol, measureCol string, oids []bat.Oid, expr func(float64) float64) ([]AggregateRow, error) {
	kc, err := t.Column(keyCol)
	if err != nil {
		return nil, err
	}
	mc, err := t.Column(measureCol)
	if err != nil {
		return nil, err
	}
	mv, ok := mc.Vec.(*bat.F64Vec)
	if !ok {
		return nil, fmt.Errorf("dsm: measure column %q is not float", measureCol)
	}
	kc.Vec.Bind(sim)
	mv.Bind(sim)

	// Materialize the qualifying (code, measure) pair columns; with nil
	// OIDs this is a pure scan, otherwise a positional gather.
	n := t.N
	if oids != nil {
		n = len(oids)
	}
	codes := make([]int16, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		pos := i
		if oids != nil {
			p, ok := t.Head.Position(oids[i])
			if !ok {
				return nil, fmt.Errorf("dsm: OID %d outside table", oids[i])
			}
			pos = p
		}
		kc.Vec.Touch(sim, pos)
		mv.Touch(sim, pos)
		codes[i] = int16(codeOf(kc, pos))
		v := mv.Float(pos)
		if expr != nil {
			v = expr(v)
		}
		vals[i] = v
	}
	res, err := agg.HashGroup(sim, bat.NewI16(codes), bat.NewF64(vals))
	if err != nil {
		return nil, err
	}
	sorted := res.Sorted()
	rows := make([]AggregateRow, sorted.Groups())
	for i := range rows {
		key := fmt.Sprintf("%d", sorted.Key[i])
		if kc.Enc != nil {
			key = kc.Enc.Decode(sorted.Key[i])
		}
		rows[i] = AggregateRow{
			Key:   key,
			Count: sorted.Count[i],
			Sum:   sorted.Sum[i],
			Min:   sorted.Min[i],
			Max:   sorted.Max[i],
		}
	}
	return rows, nil
}

// ScanColumnStats runs the §3.1 motivating comparison for one column
// of this table: the simulated cost of aggregating that column when
// stored (a) inside N-ary records of the schema's full row width,
// (b) as an 8-byte BUN column, and (c) in its actual decomposed width
// (1 byte for an encoded shipmode). It returns the three stat sets.
func (t *Table) ScanColumnStats(m memsim.Machine, column string) (nsm, bun, dsmStats memsim.Stats, err error) {
	c, err := t.Column(column)
	if err != nil {
		return nsm, bun, dsmStats, err
	}
	width := c.Width()
	if width == 0 {
		width = 1
	}
	nsm, err = scanWidth(m, t.N, t.Schema.RowWidth())
	if err != nil {
		return nsm, bun, dsmStats, err
	}
	bun, err = scanWidth(m, t.N, bat.PairSize)
	if err != nil {
		return nsm, bun, dsmStats, err
	}
	dsmStats, err = scanWidth(m, t.N, width)
	return nsm, bun, dsmStats, err
}

// scanWidth simulates a one-field scan over n records of the given
// width (cold caches), like the Figure-3 experiment.
func scanWidth(m memsim.Machine, n, width int) (memsim.Stats, error) {
	sim, err := memsim.New(m)
	if err != nil {
		return memsim.Stats{}, err
	}
	base := sim.Alloc(n * width)
	sim.InvalidateCaches()
	for i := 0; i < n; i++ {
		sim.Read(base+uint64(i)*uint64(width), 1)
	}
	sim.AddCPU(n, m.Cost.WScanBUN)
	return sim.Stats(), nil
}
