package dsm

import "monetlite/internal/workload"

// ItemSchema is the Figure-4 "Item" table schema.
func ItemSchema() Schema {
	return Schema{
		Name: "item",
		Cols: []ColumnDef{
			{Name: "order", Type: LInt},
			{Name: "part", Type: LInt},
			{Name: "supp", Type: LInt},
			{Name: "cust", Type: LInt},
			{Name: "qty", Type: LInt},
			{Name: "price", Type: LFloat},
			{Name: "discnt", Type: LFloat},
			{Name: "tax", Type: LFloat},
			{Name: "status", Type: LString},
			{Name: "date1", Type: LDate},
			{Name: "date2", Type: LDate},
			{Name: "shipmode", Type: LString},
			{Name: "comment", Type: LString},
		},
	}
}

// PartSchema is the "Part" dimension-table schema (id joins
// item.part).
func PartSchema() Schema {
	return Schema{
		Name: "part",
		Cols: []ColumnDef{
			{Name: "id", Type: LInt},
			{Name: "category", Type: LString},
			{Name: "retail", Type: LFloat},
		},
	}
}

// PartTable generates and decomposes n deterministic Part rows.
func PartTable(n int, seed uint64) (*Table, error) {
	parts := workload.Parts(n, seed)
	rows := make([][]any, n)
	for i, p := range parts {
		rows[i] = []any{int64(p.Id), p.Category, p.Retail}
	}
	return Decompose(PartSchema(), rows)
}

// ItemTable generates and decomposes n deterministic Item rows.
func ItemTable(n int, seed uint64) (*Table, error) {
	items := workload.Items(n, seed)
	rows := make([][]any, n)
	for i, it := range items {
		rows[i] = []any{
			int64(it.Order), int64(it.Part), int64(it.Supp), int64(it.Cust),
			int64(it.Qty), it.Price, it.Discnt, it.Tax, it.Status,
			it.Date1, it.Date2, it.ShipMode, it.Comment,
		}
	}
	return Decompose(ItemSchema(), rows)
}
