package dsm

import (
	"encoding/binary"
	"testing"

	"monetlite/internal/bat"
)

// FuzzSelectRangePos checks the positional range-select kernel, at
// every stored width, against a materializing oracle that re-reads the
// column through the generic Vector.Int accessor:
//
//   - exactly the positions whose value lies in [lo, hi] are emitted;
//   - positions come out ascending, restricted to [from, to);
//   - the kernel appends to (and returns) the caller's buffer — an
//     existing prefix must survive untouched.
func FuzzSelectRangePos(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(-10), int64(10), uint8(0), uint8(255), uint8(2))
	f.Add([]byte{}, int64(0), int64(0), uint8(0), uint8(0), uint8(1))
	f.Add([]byte{0x80, 0x7f, 0x00, 0xff}, int64(-128), int64(127), uint8(0), uint8(4), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, lo, hi int64, fromRaw, toRaw, width uint8) {
		if lo > hi {
			lo, hi = hi, lo
		}
		var vec bat.Vector
		switch width % 4 {
		case 0:
			vals := make([]int8, len(data))
			for i, b := range data {
				vals[i] = int8(b)
			}
			vec = bat.NewI8(vals)
		case 1:
			vals := make([]int16, len(data)/2)
			for i := range vals {
				vals[i] = int16(binary.LittleEndian.Uint16(data[2*i:]))
			}
			vec = bat.NewI16(vals)
		case 2:
			vals := make([]int32, len(data)/4)
			for i := range vals {
				vals[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
			}
			vec = bat.NewI32(vals)
		default:
			vals := make([]int64, len(data)/8)
			for i := range vals {
				vals[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
			}
			vec = bat.NewI64(vals)
		}
		n := vec.Len()
		from := 0
		if n > 0 {
			from = int(fromRaw) % (n + 1)
		}
		to := from
		if n > from {
			to = from + int(toRaw)%(n-from+1)
		}
		col := &Column{Def: ColumnDef{Name: "v", Type: LInt}, Vec: vec}

		// Materializing oracle over the generic accessor.
		var want []int32
		for i := from; i < to; i++ {
			if x := vec.Int(i); x >= lo && x <= hi {
				want = append(want, int32(i))
			}
		}

		prefix := []int32{-7, -9}
		dst := make([]int32, len(prefix), len(prefix)+len(want))
		copy(dst, prefix)
		got := SelectRangePos(col, lo, hi, from, to, dst)

		if len(got) != len(prefix)+len(want) {
			t.Fatalf("SelectRangePos emitted %d positions, oracle %d (width %d, [%d,%d], rows [%d,%d))",
				len(got)-len(prefix), len(want), vec.Width(), lo, hi, from, to)
		}
		for i, p := range prefix {
			if got[i] != p {
				t.Fatalf("caller's buffer prefix clobbered: %v", got[:len(prefix)])
			}
		}
		for i, p := range want {
			if got[len(prefix)+i] != p {
				t.Fatalf("position %d: got %d, oracle %d", i, got[len(prefix)+i], p)
			}
		}
	})
}

// FuzzSelectCodePos checks the positional dictionary-code select
// kernel against a materializing oracle that re-reads every position
// through codeOf (the single source of the wraparound invariant):
//
//   - exactly the positions in [from, to) whose unsigned code equals
//     the probe are emitted, ascending;
//   - the narrow I8/I16 fast paths (which pre-narrow the probe and
//     compare at machine width) agree with the generic decode;
//   - the kernel appends to the caller's buffer — an existing prefix
//     must survive untouched.
func FuzzSelectCodePos(f *testing.F) {
	f.Add([]byte{1, 2, 3, 2, 1}, int64(2), uint8(0), uint8(255), uint8(0))
	f.Add([]byte{}, int64(0), uint8(0), uint8(0), uint8(1))
	f.Add([]byte{0xff, 0x00, 0x80, 0xff}, int64(255), uint8(0), uint8(4), uint8(0))
	f.Add([]byte{0x01, 0xff, 0x01, 0xff}, int64(0xff01), uint8(0), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, code int64, fromRaw, toRaw, width uint8) {
		var vec bat.Vector
		switch width % 4 {
		case 0:
			vals := make([]int8, len(data))
			for i, b := range data {
				vals[i] = int8(b)
			}
			vec = bat.NewI8(vals)
		case 1:
			vals := make([]int16, len(data)/2)
			for i := range vals {
				vals[i] = int16(binary.LittleEndian.Uint16(data[2*i:]))
			}
			vec = bat.NewI16(vals)
		case 2:
			vals := make([]int32, len(data)/4)
			for i := range vals {
				vals[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
			}
			vec = bat.NewI32(vals)
		default:
			vals := make([]int64, len(data)/8)
			for i := range vals {
				vals[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
			}
			vec = bat.NewI64(vals)
		}
		n := vec.Len()
		from := 0
		if n > 0 {
			from = int(fromRaw) % (n + 1)
		}
		to := from
		if n > from {
			to = from + int(toRaw)%(n-from+1)
		}
		col := &Column{Def: ColumnDef{Name: "v", Type: LString}, Vec: vec}

		// Probe codes are dictionary indexes: clamp into the width's
		// unsigned range, matching the kernel's contract (the narrow
		// fast paths pre-narrow the probe).
		switch vec.Type() {
		case bat.TI8:
			code &= 0xff
		case bat.TI16:
			code &= 0xffff
		}

		// Materializing oracle over the shared wraparound decoder.
		var want []int32
		for i := from; i < to; i++ {
			if codeOf(col, i) == code {
				want = append(want, int32(i))
			}
		}

		prefix := []int32{-3, -5}
		dst := make([]int32, len(prefix), len(prefix)+len(want))
		copy(dst, prefix)
		got := SelectCodePos(col, code, from, to, dst)

		if len(got) != len(prefix)+len(want) {
			t.Fatalf("SelectCodePos emitted %d positions, oracle %d (width %d, code %d, rows [%d,%d))",
				len(got)-len(prefix), len(want), vec.Width(), code, from, to)
		}
		for i, p := range prefix {
			if got[i] != p {
				t.Fatalf("caller's buffer prefix clobbered: %v", got[:len(prefix)])
			}
		}
		for i, p := range want {
			if got[len(prefix)+i] != p {
				t.Fatalf("position %d: got %d, oracle %d", i, got[len(prefix)+i], p)
			}
		}
	})
}
