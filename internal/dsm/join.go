package dsm

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/core"
	"monetlite/internal/memsim"
)

// JoinResult is the outcome of a table-level equi-join: the join index
// ([left OID, right OID] pairs, [Val87]) plus handles to both tables
// for reconstruction.
type JoinResult struct {
	Index *bat.Pairs
	Left  *Table
	Right *Table
}

// Len returns the number of matching row pairs.
func (j *JoinResult) Len() int { return j.Index.Len() }

// LeftOids returns the left-side OIDs of the join index.
func (j *JoinResult) LeftOids() []bat.Oid {
	out := make([]bat.Oid, j.Index.Len())
	for i, b := range j.Index.BUNs {
		out[i] = b.Head
	}
	return out
}

// RightOids returns the right-side OIDs of the join index.
func (j *JoinResult) RightOids() []bat.Oid {
	out := make([]bat.Oid, j.Index.Len())
	for i, b := range j.Index.BUNs {
		out[i] = bat.Oid(b.Tail)
	}
	return out
}

// joinColumn materializes a [OID, value] BAT from an integer column,
// the Monet plan step feeding a join. Values must fit in 32 bits
// unsigned — the BUN layout of the paper's join kernels.
func joinColumn(sim *memsim.Sim, t *Table, column string) (*bat.Pairs, error) {
	c, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	switch c.Def.Type {
	case LInt, LDate:
	default:
		return nil, fmt.Errorf("dsm: join column %s.%s is %v, want int/date", t.Schema.Name, column, c.Def.Type)
	}
	c.Vec.Bind(sim)
	pairs := bat.NewPairs(t.N)
	pairs.Bind(sim)
	for i := 0; i < t.N; i++ {
		c.Vec.Touch(sim, i)
		v := c.Vec.Int(i)
		if v < 0 || v > 1<<32-1 {
			return nil, fmt.Errorf("dsm: join value %d of %s.%s outside uint32", v, t.Schema.Name, column)
		}
		if sim != nil {
			sim.Write(pairs.Addr(i), bat.PairSize)
		}
		pairs.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(v)}
	}
	return pairs, nil
}

// Join equi-joins left.leftCol = right.rightCol with the strategy the
// cost models pick for the cardinality (core.PlanAuto) — the full
// Monet pipeline: materialize both join columns as BATs, radix-cluster
// and join them, return the join index. Native runs use the fully
// parallel engine; instrumented runs are serial by the simulator's
// single-CPU contract.
func Join(sim *memsim.Sim, left *Table, leftCol string, right *Table, rightCol string, m memsim.Machine) (*JoinResult, error) {
	return JoinOpts(sim, left, leftCol, right, rightCol, m, core.Options{})
}

// JoinOpts is Join with an explicit execution-engine configuration.
func JoinOpts(sim *memsim.Sim, left *Table, leftCol string, right *Table, rightCol string, m memsim.Machine, opt core.Options) (*JoinResult, error) {
	l, err := joinColumn(sim, left, leftCol)
	if err != nil {
		return nil, err
	}
	r, err := joinColumn(sim, right, rightCol)
	if err != nil {
		return nil, err
	}
	c := left.N
	if right.N > c {
		c = right.N
	}
	plan := core.PlanAuto(c, m)
	idx, err := core.ExecuteOpts(sim, l, r, plan, nil, opt)
	if err != nil {
		return nil, err
	}
	return &JoinResult{Index: idx, Left: left, Right: right}, nil
}

// GatherLeftString reconstructs a left-table string column along the
// join index (a positional void join, §3.1).
func (j *JoinResult) GatherLeftString(sim *memsim.Sim, column string) ([]string, error) {
	return j.Left.GatherString(sim, column, j.LeftOids())
}

// GatherRightFloat reconstructs a right-table float column along the
// join index.
func (j *JoinResult) GatherRightFloat(sim *memsim.Sim, column string) ([]float64, error) {
	return j.Right.GatherFloat(sim, column, j.RightOids())
}
