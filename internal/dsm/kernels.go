package dsm

import (
	"fmt"

	"monetlite/internal/bat"
)

// Into-caller-buffer kernels for the engine's fused pipelines: ranged
// selects that append matching storage positions into a caller-owned
// vector, positional refilters that compact a position vector in
// place, and positional gathers that append (or fill) column values
// through a position vector. None of them allocate when the caller's
// buffer has capacity, so a pipeline worker can reuse one small set of
// vectors across every morsel it drains — the whole point of
// cache-resident execution. All kernels are native-only: instrumented
// runs (sim != nil) take the materializing operators, which mirror
// every access into the simulator.

// SelectRangePos appends the storage positions in [from, to) whose
// numeric column value lies in [lo, hi] to dst, in ascending order.
//
//monet:kernel
func SelectRangePos(c *Column, lo, hi int64, from, to int, dst []int32) []int32 {
	switch v := c.Vec.(type) {
	case *bat.I8Vec:
		return selectRangePosSlice(v.V, lo, hi, from, to, dst)
	case *bat.I16Vec:
		return selectRangePosSlice(v.V, lo, hi, from, to, dst)
	case *bat.I32Vec:
		return selectRangePosSlice(v.V, lo, hi, from, to, dst)
	case *bat.I64Vec:
		return selectRangePosSlice(v.V, lo, hi, from, to, dst)
	default:
		for i := from; i < to; i++ {
			if x := c.Vec.Int(i); x >= lo && x <= hi {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
}

//monet:kernel
func selectRangePosSlice[T int8 | int16 | int32 | int64](vals []T, lo, hi int64, from, to int, dst []int32) []int32 {
	for i, v := range vals[from:to] {
		if x := int64(v); x >= lo && x <= hi {
			dst = append(dst, int32(from+i))
		}
	}
	return dst
}

// SelectCodePos appends the storage positions in [from, to) whose
// unsigned dictionary code equals code to dst — the §3.1 re-mapped
// string-equality scan as a pipeline stage.
//
//monet:kernel
func SelectCodePos(c *Column, code int64, from, to int, dst []int32) []int32 {
	switch v := c.Vec.(type) {
	case *bat.I8Vec:
		return selectCodePosSlice(v.V, int8(code), from, to, dst)
	case *bat.I16Vec:
		return selectCodePosSlice(v.V, int16(code), from, to, dst)
	default:
		for i := from; i < to; i++ {
			if codeOf(c, i) == code {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
}

//monet:kernel
func selectCodePosSlice[T int8 | int16](vals []T, code T, from, to int, dst []int32) []int32 {
	for i, v := range vals[from:to] {
		if v == code {
			dst = append(dst, int32(from+i))
		}
	}
	return dst
}

// FilterRangePos keeps the positions whose numeric column value lies
// in [lo, hi], compacting pos in place (a refilter pipeline stage).
//
//monet:kernel
func FilterRangePos(c *Column, lo, hi int64, pos []int32) []int32 {
	switch v := c.Vec.(type) {
	case *bat.I8Vec:
		return filterRangePosSlice(v.V, lo, hi, pos)
	case *bat.I16Vec:
		return filterRangePosSlice(v.V, lo, hi, pos)
	case *bat.I32Vec:
		return filterRangePosSlice(v.V, lo, hi, pos)
	case *bat.I64Vec:
		return filterRangePosSlice(v.V, lo, hi, pos)
	default:
		out := pos[:0]
		for _, p := range pos {
			if x := c.Vec.Int(int(p)); x >= lo && x <= hi {
				out = append(out, p)
			}
		}
		return out
	}
}

//monet:kernel
func filterRangePosSlice[T int8 | int16 | int32 | int64](vals []T, lo, hi int64, pos []int32) []int32 {
	out := pos[:0]
	for _, p := range pos {
		if x := int64(vals[p]); x >= lo && x <= hi {
			out = append(out, p)
		}
	}
	return out
}

// FilterCodePos keeps the positions whose unsigned dictionary code
// equals code, compacting pos in place.
//
//monet:kernel
func FilterCodePos(c *Column, code int64, pos []int32) []int32 {
	switch v := c.Vec.(type) {
	case *bat.I8Vec:
		return filterCodePosSlice(v.V, int8(code), pos)
	case *bat.I16Vec:
		return filterCodePosSlice(v.V, int16(code), pos)
	default:
		out := pos[:0]
		for _, p := range pos {
			if codeOf(c, int(p)) == code {
				out = append(out, p)
			}
		}
		return out
	}
}

//monet:kernel
func filterCodePosSlice[T int8 | int16](vals []T, code T, pos []int32) []int32 {
	out := pos[:0]
	for _, p := range pos {
		if vals[p] == code {
			out = append(out, p)
		}
	}
	return out
}

// AppendIntsPos appends the widened integer values at the given
// positions to dst (signed, exactly like the materializing gather).
//
//monet:kernel
func AppendIntsPos(dst []int64, c *Column, pos []int32) []int64 {
	switch v := c.Vec.(type) {
	case *bat.I8Vec:
		return appendIntsPosSlice(dst, v.V, pos)
	case *bat.I16Vec:
		return appendIntsPosSlice(dst, v.V, pos)
	case *bat.I32Vec:
		return appendIntsPosSlice(dst, v.V, pos)
	case *bat.I64Vec:
		return appendIntsPosSlice(dst, v.V, pos)
	default:
		for _, p := range pos {
			dst = append(dst, c.Vec.Int(int(p)))
		}
		return dst
	}
}

//monet:kernel
func appendIntsPosSlice[T int8 | int16 | int32 | int64](dst []int64, vals []T, pos []int32) []int64 {
	for _, p := range pos {
		dst = append(dst, int64(vals[p]))
	}
	return dst
}

// AppendCodesPos appends the unsigned dictionary codes at the given
// positions to dst (the wraparound-corrected form the group keys use).
//
//monet:kernel
func AppendCodesPos(dst []int64, c *Column, pos []int32) []int64 {
	wrap := CodeWrap(c)
	at := len(dst)
	dst = AppendIntsPos(dst, c, pos)
	if wrap != 0 {
		for i := at; i < len(dst); i++ {
			if dst[i] < 0 {
				dst[i] += wrap
			}
		}
	}
	return dst
}

// AppendFloatsPos appends the float-widened values at the given
// positions to dst.
//
//monet:kernel
func AppendFloatsPos(dst []float64, c *Column, pos []int32) []float64 {
	switch v := c.Vec.(type) {
	case *bat.F64Vec:
		for _, p := range pos {
			dst = append(dst, v.V[p])
		}
		return dst
	case *bat.I8Vec:
		return appendFloatsPosSlice(dst, v.V, pos)
	case *bat.I16Vec:
		return appendFloatsPosSlice(dst, v.V, pos)
	case *bat.I32Vec:
		return appendFloatsPosSlice(dst, v.V, pos)
	case *bat.I64Vec:
		return appendFloatsPosSlice(dst, v.V, pos)
	default:
		for _, p := range pos {
			dst = append(dst, float64(c.Vec.Int(int(p))))
		}
		return dst
	}
}

//monet:kernel
func appendFloatsPosSlice[T int8 | int16 | int32 | int64](dst []float64, vals []T, pos []int32) []float64 {
	for _, p := range pos {
		dst = append(dst, float64(vals[p]))
	}
	return dst
}

// GatherFloatsPos fills dst[:len(pos)] with the float-widened values
// at the given positions — the scratch-buffer form AppendFloatsPos
// takes when the result is consumed immediately (measure operands).
//
//monet:kernel
func GatherFloatsPos(c *Column, pos []int32, dst []float64) []float64 {
	return AppendFloatsPos(dst[:0], c, pos)
}

// AppendStringsPos appends the decoded string values at the given
// positions to dst (dictionary decode, or direct string storage).
//
//monet:kernel
func AppendStringsPos(dst []string, c *Column, pos []int32) ([]string, error) {
	if c.Enc != nil {
		for _, p := range pos {
			dst = append(dst, c.Enc.Decode(c.Vec.Int(int(p))))
		}
		return dst, nil
	}
	sv, ok := c.Vec.(*bat.StrVec)
	if !ok {
		//monet:allow hotalloc cold mistyped-column error path, runs at most once per query
		return nil, fmt.Errorf("dsm: column %q is not a string column", c.Def.Name)
	}
	for _, p := range pos {
		dst = append(dst, sv.Str(int(p)))
	}
	return dst, nil
}
