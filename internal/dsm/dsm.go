// Package dsm implements the Decomposed Storage Model layer of §3.1
// ([CK85], Figure 4): relational tables are stored as one BAT per
// column with a virtual-OID (void) head, low-cardinality string
// columns are byte-encoded into 1- or 2-byte code columns plus a
// decoding BAT, and tuple reconstruction is a positional (void) join
// that costs nothing beyond the value fetch.
//
// The package offers the building blocks of Monet-style query plans —
// column selections, positional gathers, group/aggregate — that the
// examples compose into full queries.
package dsm

import (
	"fmt"
	"sync"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
)

// LogicalType is the schema-level type of a column.
type LogicalType uint8

// Logical column types of the relational front-end.
const (
	LInt LogicalType = iota
	LFloat
	LString
	LDate // stored as days-since-epoch in an int32 column
)

func (t LogicalType) String() string {
	switch t {
	case LInt:
		return "int"
	case LFloat:
		return "float"
	case LString:
		return "string"
	case LDate:
		return "date"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ColumnDef is one column of a schema.
type ColumnDef struct {
	Name string
	Type LogicalType
}

// Schema describes a relational table.
type Schema struct {
	Name string
	Cols []ColumnDef
}

// Col returns the position of a named column.
func (s Schema) Col(name string) (int, error) {
	for i, c := range s.Cols {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("dsm: %s has no column %q", s.Name, name)
}

// RowWidth returns the width of one N-ary (slotted) record of this
// schema, the "width of relational tuple" of Figure 4: 8 bytes per
// numeric field, 16 per string reference plus an assumed 24-byte
// average payload.
func (s Schema) RowWidth() int {
	w := 0
	for _, c := range s.Cols {
		switch c.Type {
		case LString:
			w += 16 + 24
		default:
			w += 8
		}
	}
	return w
}

// Column is the physical store of one decomposed column: a vector
// (possibly a 1-/2-byte code vector) plus the string dictionary when
// encoded.
type Column struct {
	Def ColumnDef
	Vec bat.Vector
	Enc *bat.Encoding // non-nil when Vec holds dictionary codes

	idxMu sync.Mutex
	idx   any // cached access-path index (see IndexCache)
}

// IndexCache returns the column's cached access-path index (e.g. the
// engine's CSS-tree), building and storing it on first use. Columns
// are immutable once decomposed, so the cache never invalidates — and
// because it lives on the column, dropping a table frees its indexes.
func (c *Column) IndexCache(build func() (any, error)) (any, error) {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	if c.idx != nil {
		return c.idx, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	c.idx = v
	return v, nil
}

// Width returns the stored bytes per value — 1 for an encoded
// shipmode column, as in Figure 4.
func (c *Column) Width() int { return c.Vec.Width() }

// Table is a vertically decomposed relational table.
type Table struct {
	Schema Schema
	N      int
	Head   *bat.VoidVec // the shared virtual-OID head
	cols   []*Column
}

// Column returns the store of a named column.
func (t *Table) Column(name string) (*Column, error) {
	i, err := t.Schema.Col(name)
	if err != nil {
		return nil, err
	}
	return t.cols[i], nil
}

// Columns returns all column stores in schema order.
func (t *Table) Columns() []*Column { return t.cols }

// Bind allocates simulated addresses for every column.
func (t *Table) Bind(sim *memsim.Sim) {
	for _, c := range t.cols {
		c.Vec.Bind(sim)
	}
}

// BUNWidth sums the stored widths of all columns: the total bytes per
// logical tuple after decomposition and encoding.
func (t *Table) BUNWidth() int {
	w := 0
	for _, c := range t.cols {
		w += c.Width()
	}
	return w
}

// Decompose vertically fragments row-major records into a Table. Rows
// are []any with int64 (LInt), float64 (LFloat), string (LString) and
// int32 (LDate) fields matching the schema.
func Decompose(schema Schema, rows [][]any) (*Table, error) {
	n := len(rows)
	t := &Table{Schema: schema, N: n, Head: bat.NewVoid(n, 0)}
	for ci, def := range schema.Cols {
		col := &Column{Def: def}
		switch def.Type {
		case LInt:
			vals := make([]int64, n)
			for ri, row := range rows {
				v, ok := row[ci].(int64)
				if !ok {
					return nil, fmt.Errorf("dsm: %s.%s row %d: want int64, got %T", schema.Name, def.Name, ri, row[ci])
				}
				vals[ri] = v
			}
			col.Vec = shrinkInts(vals)
		case LDate:
			vals := make([]int32, n)
			for ri, row := range rows {
				v, ok := row[ci].(int32)
				if !ok {
					return nil, fmt.Errorf("dsm: %s.%s row %d: want int32 date, got %T", schema.Name, def.Name, ri, row[ci])
				}
				vals[ri] = v
			}
			col.Vec = bat.NewI32(vals)
		case LFloat:
			vals := make([]float64, n)
			for ri, row := range rows {
				v, ok := row[ci].(float64)
				if !ok {
					return nil, fmt.Errorf("dsm: %s.%s row %d: want float64, got %T", schema.Name, def.Name, ri, row[ci])
				}
				vals[ri] = v
			}
			col.Vec = bat.NewF64(vals)
		case LString:
			vals := make([]string, n)
			for ri, row := range rows {
				v, ok := row[ci].(string)
				if !ok {
					return nil, fmt.Errorf("dsm: %s.%s row %d: want string, got %T", schema.Name, def.Name, ri, row[ci])
				}
				vals[ri] = v
			}
			enc, err := bat.Encode(vals)
			if err == nil {
				col.Vec = enc.Codes
				col.Enc = enc
			} else {
				col.Vec = bat.NewStrs(vals)
			}
		default:
			return nil, fmt.Errorf("dsm: %s.%s: unknown type %v", schema.Name, def.Name, def.Type)
		}
		t.cols = append(t.cols, col)
	}
	return t, nil
}

// ShrinkInts stores an int64 column in the narrowest fixed width that
// holds its domain — the §3.1 byte-encoding idea applied to integers.
// Exposed for engine temporaries (materialized group-key columns).
func ShrinkInts(vals []int64) bat.Vector { return shrinkInts(vals) }

// shrinkInts stores an int64 column in the narrowest fixed width that
// holds its domain — the §3.1 byte-encoding idea applied to integers.
func shrinkInts(vals []int64) bat.Vector {
	lo, hi := int64(0), int64(0)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	switch {
	case lo >= -128 && hi < 128:
		out := make([]int8, len(vals))
		for i, v := range vals {
			out[i] = int8(v)
		}
		return bat.NewI8(out)
	case lo >= -32768 && hi < 32768:
		out := make([]int16, len(vals))
		for i, v := range vals {
			out[i] = int16(v)
		}
		return bat.NewI16(out)
	case lo >= -(1<<31) && hi < 1<<31:
		out := make([]int32, len(vals))
		for i, v := range vals {
			out[i] = int32(v)
		}
		return bat.NewI32(out)
	default:
		out := make([]int64, len(vals))
		copy(out, vals)
		return bat.NewI64(out)
	}
}
