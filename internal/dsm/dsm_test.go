package dsm

import (
	"math"
	"testing"
	"testing/quick"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

func itemTable(t *testing.T, n int) *Table {
	t.Helper()
	tab, err := ItemTable(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDecomposeShape(t *testing.T) {
	tab := itemTable(t, 1000)
	if tab.N != 1000 {
		t.Fatalf("N = %d", tab.N)
	}
	if len(tab.Columns()) != len(ItemSchema().Cols) {
		t.Fatalf("%d columns", len(tab.Columns()))
	}
	// shipmode: 7 distinct values → 1-byte codes (Figure 4's headline).
	sm, err := tab.Column("shipmode")
	if err != nil {
		t.Fatal(err)
	}
	if sm.Width() != 1 || sm.Enc == nil {
		t.Errorf("shipmode width = %d, enc = %v; want 1-byte encoded", sm.Width(), sm.Enc != nil)
	}
	// qty ≤ 50 fits one byte after integer shrinking.
	qty, _ := tab.Column("qty")
	if qty.Width() != 1 {
		t.Errorf("qty width = %d, want 1", qty.Width())
	}
	// order numbers exceed 16 bits at this cardinality? 1000+999 <
	// 32768, so 2 bytes.
	ord, _ := tab.Column("order")
	if ord.Width() != 2 {
		t.Errorf("order width = %d, want 2", ord.Width())
	}
	// The decomposed tuple is far narrower than the N-ary record.
	if tab.BUNWidth() >= tab.Schema.RowWidth()/2 {
		t.Errorf("BUN width %d not ≪ row width %d", tab.BUNWidth(), tab.Schema.RowWidth())
	}
}

func TestDecomposeTypeErrors(t *testing.T) {
	schema := Schema{Name: "t", Cols: []ColumnDef{{Name: "a", Type: LInt}}}
	if _, err := Decompose(schema, [][]any{{"oops"}}); err == nil {
		t.Error("wrong field type accepted")
	}
	bad := Schema{Name: "t", Cols: []ColumnDef{{Name: "a", Type: LogicalType(99)}}}
	if _, err := Decompose(bad, [][]any{{int64(1)}}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := ItemSchema()
	if _, err := s.Col("shipmode"); err != nil {
		t.Error(err)
	}
	if _, err := s.Col("nope"); err == nil {
		t.Error("missing column found")
	}
	tab := itemTable(t, 10)
	if _, err := tab.Column("nope"); err == nil {
		t.Error("missing column found on table")
	}
	for typ, want := range map[LogicalType]string{LInt: "int", LFloat: "float", LString: "string", LDate: "date"} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", typ, typ.String())
		}
	}
}

func TestSelectStringRemapsToCode(t *testing.T) {
	tab := itemTable(t, 2000)
	oids, err := tab.SelectString(nil, "shipmode", "MAIL")
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: regenerate rows.
	items := workload.Items(2000, 42)
	want := 0
	for _, it := range items {
		if it.ShipMode == "MAIL" {
			want++
		}
	}
	if len(oids) != want {
		t.Errorf("MAIL selection: %d rows, want %d", len(oids), want)
	}
	// Every result row really is MAIL.
	vals, err := tab.GatherString(nil, "shipmode", oids)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v != "MAIL" {
			t.Fatalf("gathered %q", v)
		}
	}
	// Out-of-domain value: empty, no error.
	none, err := tab.SelectString(nil, "shipmode", "TELEPORT")
	if err != nil || len(none) != 0 {
		t.Errorf("out-of-domain: %d rows, err %v", len(none), err)
	}
}

func TestSelectRange(t *testing.T) {
	tab := itemTable(t, 2000)
	oids, err := tab.SelectRange(nil, "date1", 9000, 9499)
	if err != nil {
		t.Fatal(err)
	}
	items := workload.Items(2000, 42)
	want := 0
	for _, it := range items {
		if it.Date1 >= 9000 && it.Date1 <= 9499 {
			want++
		}
	}
	if len(oids) != want {
		t.Errorf("date range: %d rows, want %d", len(oids), want)
	}
	if _, err := tab.SelectRange(nil, "shipmode", 0, 1); err == nil {
		t.Error("range select on encoded column accepted")
	}
	if _, err := tab.SelectRange(nil, "nope", 0, 1); err == nil {
		t.Error("missing column accepted")
	}
}

func TestGatherers(t *testing.T) {
	tab := itemTable(t, 500)
	items := workload.Items(500, 42)
	oids := []bat.Oid{0, 10, 499}
	fs, err := tab.GatherFloat(nil, "price", oids)
	if err != nil {
		t.Fatal(err)
	}
	is, err := tab.GatherInt(nil, "qty", oids)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := tab.GatherString(nil, "shipmode", oids)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range oids {
		it := items[o]
		if fs[i] != it.Price || is[i] != int64(it.Qty) || ss[i] != it.ShipMode {
			t.Errorf("row %d: got (%v,%v,%v), want (%v,%v,%v)", o, fs[i], is[i], ss[i], it.Price, it.Qty, it.ShipMode)
		}
	}
	// Bad OID.
	if _, err := tab.GatherFloat(nil, "price", []bat.Oid{9999}); err == nil {
		t.Error("out-of-range OID accepted")
	}
	// Type mismatches.
	if _, err := tab.GatherFloat(nil, "qty", oids); err != nil == false {
		t.Error("GatherFloat on int column accepted")
	}
	if _, err := tab.GatherString(nil, "price", oids); err == nil {
		t.Error("GatherString on float column accepted")
	}
}

func TestGroupAggregateFullQuery(t *testing.T) {
	// SELECT shipmode, COUNT(*), SUM(price*(1-discnt))
	// FROM item WHERE date1 BETWEEN 8500 AND 9499 GROUP BY shipmode
	const n = 5000
	tab := itemTable(t, n)
	oids, err := tab.SelectRange(nil, "date1", 8500, 9499)
	if err != nil {
		t.Fatal(err)
	}
	// Gather discnt per OID to fold into the expression via closure
	// over a gathered column (price is the measure).
	discnt, err := tab.GatherFloat(nil, "discnt", oids)
	if err != nil {
		t.Fatal(err)
	}
	di := 0
	rows, err := tab.GroupAggregate(nil, "shipmode", "price", oids, func(p float64) float64 {
		v := p * (1 - discnt[di])
		di++
		return v
	})
	if err != nil {
		t.Fatal(err)
	}

	// Oracle over the raw rows.
	items := workload.Items(n, 42)
	wantSum := map[string]float64{}
	wantCnt := map[string]int64{}
	for _, it := range items {
		if it.Date1 >= 8500 && it.Date1 <= 9499 {
			wantSum[it.ShipMode] += it.Price * (1 - it.Discnt)
			wantCnt[it.ShipMode]++
		}
	}
	if len(rows) != len(wantSum) {
		t.Fatalf("%d groups, want %d", len(rows), len(wantSum))
	}
	for _, r := range rows {
		if r.Count != wantCnt[r.Key] {
			t.Errorf("%s: count %d, want %d", r.Key, r.Count, wantCnt[r.Key])
		}
		if math.Abs(r.Sum-wantSum[r.Key]) > 1e-6*math.Max(1, wantSum[r.Key]) {
			t.Errorf("%s: sum %v, want %v", r.Key, r.Sum, wantSum[r.Key])
		}
	}
}

func TestGroupAggregateWholeTable(t *testing.T) {
	tab := itemTable(t, 1000)
	rows, err := tab.GroupAggregate(nil, "status", "tax", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var totalCnt int64
	for _, r := range rows {
		totalCnt += r.Count
	}
	if totalCnt != 1000 {
		t.Errorf("counts sum to %d, want 1000", totalCnt)
	}
}

func TestScanColumnStatsOrdering(t *testing.T) {
	// §3.1: scanning one column costs NSM > BUN(8B) > encoded byte.
	tab := itemTable(t, 100000)
	m := memsim.Origin2000()
	nsm, bun, dsmS, err := tab.ScanColumnStats(m, "shipmode")
	if err != nil {
		t.Fatal(err)
	}
	if !(dsmS.ElapsedNanos() < bun.ElapsedNanos() && bun.ElapsedNanos() < nsm.ElapsedNanos()) {
		t.Errorf("scan cost ordering violated: dsm=%.2f bun=%.2f nsm=%.2f ms",
			dsmS.ElapsedMillis(), bun.ElapsedMillis(), nsm.ElapsedMillis())
	}
	// The N-ary record is ≥ 80 bytes (Figure 4).
	if tab.Schema.RowWidth() < 80 {
		t.Errorf("row width = %d, want ≥ 80", tab.Schema.RowWidth())
	}
}

func TestInstrumentedQueryRuns(t *testing.T) {
	sim := memsim.MustNew(memsim.Origin2000())
	tab := itemTable(t, 20000)
	tab.Bind(sim)
	oids, err := tab.SelectString(sim, "shipmode", "AIR")
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) == 0 {
		t.Fatal("no AIR rows")
	}
	if _, err := tab.GroupAggregate(sim, "status", "price", oids, nil); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	if st.Accesses == 0 || st.ElapsedNanos() <= 0 {
		t.Errorf("no simulated activity: %v", st)
	}
}

// Property: decompose→gather round-trips arbitrary small tables.
func TestDecomposeGatherRoundtripProperty(t *testing.T) {
	schema := Schema{Name: "p", Cols: []ColumnDef{
		{Name: "k", Type: LInt},
		{Name: "v", Type: LFloat},
		{Name: "s", Type: LString},
	}}
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := workload.NewRNG(seed)
		rows := make([][]any, n)
		for i := range rows {
			rows[i] = []any{
				int64(rng.Intn(1 << 20)),
				float64(rng.Intn(1000)) / 7,
				[]string{"a", "b", "c"}[rng.Intn(3)],
			}
		}
		tab, err := Decompose(schema, rows)
		if err != nil {
			return false
		}
		oids := make([]bat.Oid, n)
		for i := range oids {
			oids[i] = bat.Oid(i)
		}
		is, err1 := tab.GatherInt(nil, "k", oids)
		fs, err2 := tab.GatherFloat(nil, "v", oids)
		ss, err3 := tab.GatherString(nil, "s", oids)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range rows {
			if is[i] != rows[i][0].(int64) || fs[i] != rows[i][1].(float64) || ss[i] != rows[i][2].(string) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
