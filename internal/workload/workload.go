// Package workload generates the deterministic synthetic inputs of the
// paper's experiments: BATs of 8-byte [OID,value] tuples with uniformly
// distributed unique random values (§3.4.1), join inputs with hit-rate
// one, skewed variants for the extension ablations, and the Figure-4
// "Item" table for the DSM examples.
//
// All generators use an embedded splitmix64 PRNG so results are
// bit-identical across Go releases.
package workload

import (
	"fmt"
	"math"

	"monetlite/internal/bat"
)

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and with a
// fixed algorithm so experiment inputs never change under us.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Shuffle permutes xs in place (Fisher–Yates).
func Shuffle[T any](r *RNG, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// feistel32 is a 4-round balanced Feistel network on 32 bits keyed by
// the seed: a bijection on [0, 2^32), so mapping distinct inputs yields
// unique, roughly uniform 32-bit values — "uniformly distributed unique
// random numbers" without a sort or a dedup pass.
func feistel32(x uint32, seed uint64) uint32 {
	l, r := uint16(x>>16), uint16(x)
	for round := 0; round < 4; round++ {
		k := uint32(seed>>(16*uint(round%4))) ^ uint32(round)*0x9e37
		f := uint16((uint32(r)*0x85ebca6b + k) >> 13)
		l, r = r, l^f
	}
	return uint32(l)<<16 | uint32(r)
}

// UniqueValues returns n unique, roughly uniform 32-bit values.
func UniqueValues(n int, seed uint64) []uint32 {
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = feistel32(uint32(i), seed)
	}
	return vals
}

// UniquePairs builds the experimental BAT of §3.4.1: n BUNs with dense
// OIDs 0..n-1 and unique uniform random values, in random storage
// order.
func UniquePairs(n int, seed uint64) *bat.Pairs {
	rng := NewRNG(seed)
	p := bat.NewPairs(n)
	vals := UniqueValues(n, seed^0xace1)
	for i := range p.BUNs {
		p.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: vals[i]}
	}
	Shuffle(rng, p.BUNs)
	return p
}

// JoinInputs builds the two join operands of the §3.4 experiments:
// equal cardinality, identical unique value sets in independent random
// orders, so the equi-join hit rate is exactly one and the result is a
// join index of n [OID,OID] pairs.
func JoinInputs(n int, seed uint64) (l, r *bat.Pairs) {
	vals := UniqueValues(n, seed^0xace1)
	l, r = bat.NewPairs(n), bat.NewPairs(n)
	for i := 0; i < n; i++ {
		l.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: vals[i]}
		r.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: vals[i]}
	}
	Shuffle(NewRNG(seed^0x1), l.BUNs)
	Shuffle(NewRNG(seed^0x2), r.BUNs)
	return l, r
}

// DensePairs returns n BUNs with values = a permutation of [0, n):
// handy for tests that need a known value domain.
func DensePairs(n int, seed uint64) *bat.Pairs {
	p := bat.NewPairs(n)
	for i := range p.BUNs {
		p.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(i)}
	}
	Shuffle(NewRNG(seed), p.BUNs)
	return p
}

// ZipfPairs returns n BUNs whose values follow a Zipf-like rank
// distribution over domain [0, domain): value v has probability
// proportional to 1/(rank+1)^s. Used by the skew ablation (not in the
// paper's uniform setup).
func ZipfPairs(n, domain int, s float64, seed uint64) *bat.Pairs {
	if domain <= 0 {
		panic("workload: non-positive zipf domain")
	}
	rng := NewRNG(seed)
	// Inverse-CDF sampling over precomputed cumulative weights.
	cum := make([]float64, domain)
	total := 0.0
	for i := 0; i < domain; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	p := bat.NewPairs(n)
	for i := range p.BUNs {
		x := rng.Float64() * total
		lo, hi := 0, domain-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		p.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(lo)}
	}
	return p
}

// zipfLowBits draws values whose low `bits` bits follow a Zipf rank
// distribution (rank 0 = radix 0) while the high bits keep them
// globally unique.
func zipfLowBits(n, bits int, s float64, seed uint64) []uint32 {
	domain := 1 << bits
	rng := NewRNG(seed)
	cum := make([]float64, domain)
	total := 0.0
	for i := 0; i < domain; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	vals := make([]uint32, n)
	for i := range vals {
		x := rng.Float64() * total
		lo, hi := 0, domain-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// High bits = per-value counter: uniqueness regardless of the
		// skewed low bits.
		vals[i] = uint32(i)<<bits | uint32(lo)
	}
	return vals
}

// SkewedJoinInputs builds join operands whose radix distribution over
// the low `bits` bits is Zipf-skewed with exponent s, while every key
// stays unique and the hit rate stays one. Used by the skew ablation:
// the paper's experiments are uniform (§3.4.1), and skew breaks the
// equal-cluster-size assumption behind the B-bit strategy formulas.
func SkewedJoinInputs(n, bits int, s float64, seed uint64) (l, r *bat.Pairs) {
	vals := zipfLowBits(n, bits, s, seed^0xbeef)
	l, r = bat.NewPairs(n), bat.NewPairs(n)
	for i := 0; i < n; i++ {
		l.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: vals[i]}
		r.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: vals[i]}
	}
	Shuffle(NewRNG(seed^0x3), l.BUNs)
	Shuffle(NewRNG(seed^0x4), r.BUNs)
	return l, r
}

// Sizes of the paper's cardinality sweeps.
var (
	// Fig10Cards are the radix-join cardinalities of Figure 10 (64M is
	// behind the -full flag in the harness, like the paper's truncated
	// 15-minute runs).
	Fig10Cards = []int{15625, 125000, 1000000, 8000000}
	// Fig12Cards are the overall-performance cardinalities of Figure 12.
	Fig12Cards = []int{15625, 62500, 250000, 1000000, 4000000, 16000000, 64000000}
	// Fig13Cards are the Figure 13 x-axis points, in thousands:
	// 16, 64, 256, 1024, 4096, 16384, 65536.
	Fig13Cards = []int{16000, 64000, 256000, 1024000, 4096000, 16384000, 65536000}
)

// Describe returns a human-readable cardinality label (e.g. "8M").
func Describe(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dK", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
