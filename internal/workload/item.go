package workload

import "fmt"

// Item is one row of the Figure-4 "Item" table: the relational tuple
// the paper uses to motivate vertical decomposition (≥ 80 bytes wide
// in a relational system, 8 bytes — or 1 after encoding — per column
// as BATs).
type Item struct {
	Order    int32
	Part     int32
	Supp     int32
	Cust     int32 // customer id: high-cardinality, uniformly random
	Qty      int32
	Price    float64
	Discnt   float64
	Tax      float64
	Status   string
	Date1    int32 // days since epoch, like a DATE column
	Date2    int32
	ShipMode string
	Comment  string
}

// ShipModes is the low-cardinality shipmode domain of Figure 4.
var ShipModes = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}

// Statuses is the one-character status domain.
var Statuses = []string{"F", "O", "P"}

// Part is one row of the "Part" dimension table joining Item.Part:
// the second relation of the engine's multi-table query plans.
type Part struct {
	Id       int32
	Category string
	Retail   float64
}

// Categories is the low-cardinality part-category domain.
var Categories = []string{"ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED"}

// Parts generates n deterministic Part rows with dense ids 0..n-1, so
// a join on Item.Part (drawn from [0, 2000)) hits every item when
// n >= 2000.
func Parts(n int, seed uint64) []Part {
	rng := NewRNG(seed)
	parts := make([]Part, n)
	for i := range parts {
		parts[i] = Part{
			Id:       int32(i),
			Category: Categories[rng.Intn(len(Categories))],
			Retail:   float64(100+rng.Intn(90000)) / 100,
		}
	}
	return parts
}

// Items generates n deterministic Item rows. Discounts are drawn from
// {0.00, 0.10} and shipmodes uniformly from ShipModes, echoing the
// figure's example values. Cust is a uniformly random customer id from
// [0, max(n/2, 1)) — a high-cardinality group-by key whose accesses
// have no sequential structure, unlike the dense ascending Order. It
// draws from its own independent RNG stream, so adding the column
// left every previously generated column (and with them the repo's
// earlier benchmark snapshots) byte-for-byte unchanged.
func Items(n int, seed uint64) []Item {
	rng := NewRNG(seed)
	custRNG := NewRNG(seed ^ 0x9e3779b97f4a7c15)
	custDomain := n / 2
	if custDomain < 1 {
		custDomain = 1
	}
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Order:    int32(1000 + i),
			Part:     int32(rng.Intn(2000)),
			Supp:     int32(rng.Intn(100)),
			Cust:     int32(custRNG.Intn(custDomain)),
			Qty:      int32(1 + rng.Intn(50)),
			Price:    float64(rng.Intn(10000)) / 100,
			Discnt:   float64(rng.Intn(2)) / 10,
			Tax:      float64(rng.Intn(9)) / 100,
			Status:   Statuses[rng.Intn(len(Statuses))],
			Date1:    int32(8000 + rng.Intn(2500)),
			Date2:    int32(8000 + rng.Intn(2500)),
			ShipMode: ShipModes[rng.Intn(len(ShipModes))],
			Comment:  fmt.Sprintf("item comment %d", rng.Intn(1000)),
		}
	}
	return items
}
