package workload

import (
	"fmt"
	"testing"
)

// TestItemsStreamUnchangedByCust pins the generator-stability contract:
// Cust draws from an independent RNG stream, so every pre-existing
// column must be byte-for-byte what the pre-Cust generator produced
// (replicated here), keeping the repo's earlier benchmark snapshots
// and figures comparable.
func TestItemsStreamUnchangedByCust(t *testing.T) {
	const n, seed = 4096, 42
	got := Items(n, seed)
	rng := NewRNG(seed)
	for i := 0; i < n; i++ {
		want := Item{
			Order:    int32(1000 + i),
			Part:     int32(rng.Intn(2000)),
			Supp:     int32(rng.Intn(100)),
			Qty:      int32(1 + rng.Intn(50)),
			Price:    float64(rng.Intn(10000)) / 100,
			Discnt:   float64(rng.Intn(2)) / 10,
			Tax:      float64(rng.Intn(9)) / 100,
			Status:   Statuses[rng.Intn(len(Statuses))],
			Date1:    int32(8000 + rng.Intn(2500)),
			Date2:    int32(8000 + rng.Intn(2500)),
			ShipMode: ShipModes[rng.Intn(len(ShipModes))],
			Comment:  fmt.Sprintf("item comment %d", rng.Intn(1000)),
		}
		g := got[i]
		g.Cust = 0 // the only column allowed to differ from the old stream
		if g != want {
			t.Fatalf("row %d: pre-existing columns changed:\n got %+v\nwant %+v", i, g, want)
		}
	}
}
