package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds collided on first draw")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(3)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	Shuffle(r, xs)
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Error("shuffle lost elements")
	}
}

func TestFeistelBijection(t *testing.T) {
	// On a 16-bit subdomain, outputs of distinct inputs must be
	// distinct (the Feistel network is a bijection on 32 bits).
	seen := make(map[uint32]bool, 1<<16)
	for i := 0; i < 1<<16; i++ {
		v := feistel32(uint32(i), 12345)
		if seen[v] {
			t.Fatalf("collision at input %d", i)
		}
		seen[v] = true
	}
}

func TestUniqueValuesUniqueAndSpread(t *testing.T) {
	vals := UniqueValues(100000, 99)
	seen := make(map[uint32]bool, len(vals))
	var lowBitOnes int
	for _, v := range vals {
		if seen[v] {
			t.Fatal("duplicate value")
		}
		seen[v] = true
		lowBitOnes += int(v & 1)
	}
	// Low bits should be balanced (radix clustering relies on it).
	frac := float64(lowBitOnes) / float64(len(vals))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("low-bit balance %.3f, want ≈0.5", frac)
	}
}

func TestUniquePairsShape(t *testing.T) {
	p := UniquePairs(1000, 5)
	if p.Len() != 1000 {
		t.Fatalf("len = %d", p.Len())
	}
	heads := make(map[uint32]bool, 1000)
	tails := make(map[uint32]bool, 1000)
	for _, b := range p.BUNs {
		heads[uint32(b.Head)] = true
		tails[b.Tail] = true
	}
	if len(heads) != 1000 || len(tails) != 1000 {
		t.Errorf("distinct heads=%d tails=%d, want 1000 each", len(heads), len(tails))
	}
}

func TestJoinInputsHitRateOne(t *testing.T) {
	l, r := JoinInputs(500, 11)
	lv := make(map[uint32]bool, 500)
	for _, b := range l.BUNs {
		lv[b.Tail] = true
	}
	matched := 0
	for _, b := range r.BUNs {
		if lv[b.Tail] {
			matched++
		}
	}
	if matched != 500 {
		t.Errorf("matched %d of 500 (hit rate must be 1)", matched)
	}
	// Orders must differ (independent shuffles).
	same := true
	for i := range l.BUNs {
		if l.BUNs[i] != r.BUNs[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("l and r in identical order")
	}
}

func TestDensePairsDomain(t *testing.T) {
	p := DensePairs(256, 1)
	seen := make([]bool, 256)
	for _, b := range p.BUNs {
		if b.Tail >= 256 || seen[b.Tail] {
			t.Fatal("not a permutation of [0,256)")
		}
		seen[b.Tail] = true
	}
}

func TestZipfPairsSkew(t *testing.T) {
	p := ZipfPairs(10000, 100, 1.2, 77)
	counts := make(map[uint32]int)
	for _, b := range p.BUNs {
		if b.Tail >= 100 {
			t.Fatalf("value %d outside domain", b.Tail)
		}
		counts[b.Tail]++
	}
	// Rank 0 must dominate rank 50 under s=1.2.
	if counts[0] <= counts[50] {
		t.Errorf("no skew: count[0]=%d count[50]=%d", counts[0], counts[50])
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive domain accepted")
		}
	}()
	ZipfPairs(1, 0, 1, 1)
}

func TestDescribe(t *testing.T) {
	cases := map[int]string{
		8000000: "8M", 64000000: "64M", 125000: "125K", 15625: "15625", 16000: "16K",
	}
	for n, want := range cases {
		if got := Describe(n); got != want {
			t.Errorf("Describe(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestItemsDeterministicAndValid(t *testing.T) {
	a := Items(100, 42)
	b := Items(100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	modes := make(map[string]bool)
	for _, it := range a {
		if it.Qty < 1 || it.Qty > 50 {
			t.Errorf("qty out of range: %d", it.Qty)
		}
		if it.Discnt != 0 && it.Discnt != 0.1 {
			t.Errorf("discount out of domain: %v", it.Discnt)
		}
		modes[it.ShipMode] = true
	}
	if len(modes) < 3 {
		t.Errorf("shipmode domain too small in sample: %d", len(modes))
	}
}

// Property: UniquePairs is a bijection i→value for every cardinality.
func TestUniquePairsProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := int(nRaw)%2000 + 1
		p := UniquePairs(n, seed)
		tails := make(map[uint32]bool, n)
		for _, b := range p.BUNs {
			tails[b.Tail] = true
		}
		return len(tails) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
