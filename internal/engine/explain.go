package engine

import (
	"fmt"
	"strings"
)

// Explain renders the physical operator tree with, per operator, the
// chosen physical algorithm and its cost-model prediction, headed by
// the plan-wide predicted total — what a Monet EXPLAIN armed with the
// paper's cost models shows.
func (p *PhysicalPlan) Explain() string {
	var sb strings.Builder
	total := p.Predicted()
	fmt.Fprintf(&sb, "plan for %s  (predicted %.2f ms: %.2e L1, %.2e L2, %.2e TLB misses)\n",
		p.cfg.Machine.Name, total.Millis(p.cfg.Machine),
		total.L1Misses, total.L2Misses, total.TLBMisses)
	explainOp(&sb, p, p.root, "", "")
	return sb.String()
}

func explainOp(sb *strings.Builder, p *PhysicalPlan, op physOp, prefix, childPrefix string) {
	sb.WriteString(prefix)
	sb.WriteString(op.label())
	if d := op.detail(); d != "" {
		sb.WriteString(" ")
		sb.WriteString(d)
	}
	if c := op.predicted(); c != (emptyBreakdown) {
		fmt.Fprintf(sb, "  [pred %.2f ms]", c.Millis(p.cfg.Machine))
	}
	sb.WriteString("\n")
	kids := op.kids()
	for i, k := range kids {
		last := i == len(kids)-1
		if last {
			explainOp(sb, p, k, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			explainOp(sb, p, k, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}
