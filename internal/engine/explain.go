package engine

import (
	"fmt"
	"strings"

	"monetlite/internal/costmodel"
)

// Explain renders the physical operator tree with, per operator, the
// chosen physical algorithm and its cost-model prediction, headed by
// the plan-wide predicted total — what a Monet EXPLAIN armed with the
// paper's cost models shows. Predictions are priced through the plan's
// cost model: when it carries learned per-kind corrections, corrected
// operators show the factor as "×K learned".
func (p *PhysicalPlan) Explain() string {
	var sb strings.Builder
	total := p.Predicted()
	fmt.Fprintf(&sb, "plan for %s  (predicted %.2f ms: %.2e L1, %.2e L2, %.2e TLB misses)\n",
		p.cfg.Machine.Name, p.PredictedMillis(),
		total.L1Misses, total.L2Misses, total.TLBMisses)
	explainOp(&sb, p, p.root, "", "")
	return sb.String()
}

func explainOp(sb *strings.Builder, p *PhysicalPlan, op physOp, prefix, childPrefix string) {
	sb.WriteString(prefix)
	sb.WriteString(op.label())
	if d := op.detail(); d != "" {
		sb.WriteString(" ")
		sb.WriteString(d)
	}
	if c := op.predicted(); c != (emptyBreakdown) {
		kind := costmodel.KindOf(op.label())
		fmt.Fprintf(sb, "  [pred %.2f ms", p.cfg.Model.Millis(kind, c))
		if corr := p.cfg.Model.Correction(kind); corr != 1 {
			fmt.Fprintf(sb, " ×%.2f learned", corr)
		}
		sb.WriteString("]")
	}
	sb.WriteString("\n")
	kids := op.kids()
	for i, k := range kids {
		last := i == len(kids)-1
		if last {
			explainOp(sb, p, k, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			explainOp(sb, p, k, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}
