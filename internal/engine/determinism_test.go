package engine

import (
	"testing"
)

// TestPlanCostDeterministic pins the detorder fix in the group-agg
// planner: the measure operands' gather costs are floats accumulated
// into one Breakdown, and summing them in map-iteration order made the
// predicted totals (and therefore EXPLAIN) differ run to run. Planning
// the same multi-operand measure repeatedly must yield byte-identical
// EXPLAIN output.
func TestPlanCostDeterministic(t *testing.T) {
	tbl := itemTable(t, 1<<14)
	build := func() string {
		plan := mustPlan(t, &GroupAggNode{
			Input: &ScanNode{Table: tbl},
			Key:   "shipmode",
			Measure: BinExpr{Op: '+',
				L: BinExpr{Op: '*', L: ColExpr{Name: "price"}, R: ColExpr{Name: "qty"}},
				R: BinExpr{Op: '*', L: ColExpr{Name: "discnt"}, R: ColExpr{Name: "tax"}},
			},
		})
		return plan.Explain()
	}
	want := build()
	for i := 0; i < 20; i++ {
		if got := build(); got != want {
			t.Fatalf("plan %d differs from plan 0:\n--- want\n%s\n--- got\n%s", i+1, want, got)
		}
	}
}
