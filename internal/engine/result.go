package engine

import (
	"fmt"
	"strings"

	"monetlite/internal/costmodel"
)

// emptyBreakdown is the zero prediction (operators the models skip).
var emptyBreakdown costmodel.Breakdown

// Result is a fully materialized query result.
type Result struct {
	Rel *Rel
	// Profile holds the per-operator execution profile when the plan
	// ran via RunProfiled (EXPLAIN ANALYZE); nil otherwise.
	Profile *Profile
}

// N returns the number of result rows.
func (r *Result) N() int { return r.Rel.N }

// Columns returns the result column names in order.
func (r *Result) Columns() []string {
	out := make([]string, len(r.Rel.Cols))
	for i := range r.Rel.Cols {
		out[i] = r.Rel.Cols[i].Name
	}
	return out
}

func (r *Result) col(name string, kind Kind) (*RelCol, error) {
	i := r.Rel.Col(name)
	if i < 0 {
		return nil, fmt.Errorf("engine: result has no column %q", name)
	}
	c := &r.Rel.Cols[i]
	if c.Kind != kind {
		return nil, fmt.Errorf("engine: column %q is %v, not %v", name, c.Kind, kind)
	}
	return c, nil
}

// Ints returns an integer result column.
func (r *Result) Ints(name string) ([]int64, error) {
	c, err := r.col(name, KInt)
	if err != nil {
		return nil, err
	}
	return c.Ints, nil
}

// Floats returns a float result column.
func (r *Result) Floats(name string) ([]float64, error) {
	c, err := r.col(name, KFloat)
	if err != nil {
		return nil, err
	}
	return c.Floats, nil
}

// Strings returns a string result column.
func (r *Result) Strings(name string) ([]string, error) {
	c, err := r.col(name, KString)
	if err != nil {
		return nil, err
	}
	return c.Strs, nil
}

// Row returns row i as one value per column.
func (r *Result) Row(i int) []any {
	out := make([]any, len(r.Rel.Cols))
	for ci := range r.Rel.Cols {
		c := &r.Rel.Cols[ci]
		switch c.Kind {
		case KInt:
			out[ci] = c.Ints[i]
		case KFloat:
			out[ci] = c.Floats[i]
		default:
			out[ci] = c.Strs[i]
		}
	}
	return out
}

// Format renders up to maxRows rows as an aligned text table.
func (r *Result) Format(maxRows int) string {
	n := r.Rel.N
	truncated := false
	if maxRows >= 0 && n > maxRows {
		n = maxRows
		truncated = true
	}
	cols := r.Rel.Cols
	widths := make([]int, len(cols))
	cells := make([][]string, n+1)
	cells[0] = make([]string, len(cols))
	for ci := range cols {
		cells[0][ci] = cols[ci].Name
		widths[ci] = len(cols[ci].Name)
	}
	for i := 0; i < n; i++ {
		row := make([]string, len(cols))
		for ci := range cols {
			c := &cols[ci]
			switch c.Kind {
			case KInt:
				row[ci] = fmt.Sprintf("%d", c.Ints[i])
			case KFloat:
				row[ci] = fmt.Sprintf("%.2f", c.Floats[i])
			default:
				row[ci] = c.Strs[i]
			}
			if len(row[ci]) > widths[ci] {
				widths[ci] = len(row[ci])
			}
		}
		cells[i+1] = row
	}
	var sb strings.Builder
	for ri, row := range cells {
		for ci, cell := range row {
			if ci > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[ci], cell)
		}
		sb.WriteString("\n")
		if ri == 0 {
			for ci := range row {
				if ci > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", widths[ci]))
			}
			sb.WriteString("\n")
		}
	}
	if truncated {
		fmt.Fprintf(&sb, "... (%d rows total)\n", r.Rel.N)
	}
	return sb.String()
}
