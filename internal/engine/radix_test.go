package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"monetlite/internal/core"
	"monetlite/internal/dsm"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// Property suite for the radix-partitioned grouping strategy: every
// strategy, worker count and execution mode must produce byte-identical
// results, and the planner must flip to radix exactly when the
// estimated group table outgrows the caches.

// keyedTable builds an n-row table with an integer key column drawn by
// gen and a float measure.
func keyedTable(t *testing.T, n int, gen func(rng *workload.RNG, i int) int64) *dsm.Table {
	t.Helper()
	schema := dsm.Schema{Name: "keyed", Cols: []dsm.ColumnDef{
		{Name: "k", Type: dsm.LInt},
		{Name: "v", Type: dsm.LFloat},
		{Name: "w", Type: dsm.LFloat},
	}}
	rng := workload.NewRNG(31)
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{gen(rng, i), float64(rng.Intn(1<<20)) / 3, float64(rng.Intn(100)) / 7}
	}
	tbl, err := dsm.Decompose(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// groupPlanFor lowers a GroupAggregate over the table and returns its
// sink operator (fused or not).
func groupPlanFor(t *testing.T, tbl *dsm.Table, cfg Config) (*PhysicalPlan, *groupAggOp) {
	t.Helper()
	root := &GroupAggNode{Input: &ScanNode{Table: tbl}, Key: "k", Measure: ColExpr{Name: "v"}}
	p, err := Plan(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	switch op := p.root.(type) {
	case *pipelineOp:
		return p, op.gagg
	case *groupAggOp:
		return p, op
	}
	t.Fatalf("unexpected root %T", p.root)
	return nil, nil
}

// TestGroupStrategyFlipsAtCacheFit: the planner keeps §3.2 hash
// grouping while the ~48 B/group table is cache-resident and switches
// to GroupAggregate[radix bits=B] once the estimated group cardinality
// crosses the cache-fit threshold (here: a near-unique key whose
// estimate saturates to the relation size).
func TestGroupStrategyFlipsAtCacheFit(t *testing.T) {
	few := keyedTable(t, 1<<15, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(32)) })
	_, fo := groupPlanFor(t, few, Config{})
	if fo.strat != aggHash {
		t.Errorf("32-group key lowered to %v grouping, want hash", fo.strat)
	}

	many := keyedTable(t, 1<<18, func(_ *workload.RNG, i int) int64 { return int64(i * 2654435761) })
	plan, mo := groupPlanFor(t, many, Config{})
	if mo.strat != aggRadix {
		t.Fatalf("near-unique key lowered to %v grouping, want radix:\n%s", mo.strat, plan.Explain())
	}
	if mo.radixBits < 1 || mo.radixPass < 1 {
		t.Errorf("radix plan has bits=%d passes=%d", mo.radixBits, mo.radixPass)
	}
	// The chosen B must actually restore the cache-fit regime: one
	// partition's table within a quarter of L1.
	m := memsim.Origin2000()
	if per := mo.estGroups * 48 / float64(int(1)<<mo.radixBits); per > float64(m.L1.Size)/4 {
		t.Errorf("partition table ~%.0f B exceeds the L1/4 budget", per)
	}
	ex := plan.Explain()
	want := fmt.Sprintf("GroupAggregate[radix bits=%d]", mo.radixBits)
	if !strings.Contains(ex, want) {
		t.Errorf("Explain missing %q:\n%s", want, ex)
	}
	if !strings.Contains(ex, "saves~") || !strings.Contains(ex, "ms vs hash") {
		t.Errorf("radix Explain does not report predicted savings:\n%s", ex)
	}
	if mo.savedMS <= 0 {
		t.Errorf("radix chosen with non-positive predicted saving %.2f ms", mo.savedMS)
	}
}

// relsEquivalent compares two result relations: keys, counts, min and
// max bitwise; float sums within a relative 1e-9 — grouping strategies
// that decompose the input differently (hash's morsel partials vs
// radix's input-order partitions) associate the same per-group sums
// differently, so only within-strategy runs are bitwise comparable.
func relsEquivalent(t *testing.T, label string, a, b *Rel) {
	t.Helper()
	if a.N != b.N || len(a.Cols) != len(b.Cols) {
		t.Errorf("%s: shape (%d rows, %d cols) vs (%d rows, %d cols)", label, a.N, len(a.Cols), b.N, len(b.Cols))
		return
	}
	for c := range a.Cols {
		ac, bc := &a.Cols[c], &b.Cols[c]
		if ac.Name != bc.Name || ac.Kind != bc.Kind {
			t.Errorf("%s: column %d is (%s, %v) vs (%s, %v)", label, c, ac.Name, ac.Kind, bc.Name, bc.Kind)
			return
		}
		if ac.Kind != KFloat || ac.Name != "sum" {
			if !reflect.DeepEqual(a.Cols[c], b.Cols[c]) {
				t.Errorf("%s: column %q differs", label, ac.Name)
			}
			continue
		}
		for i := range ac.Floats {
			if d := ac.Floats[i] - bc.Floats[i]; d > 1e-9*(1+absF(ac.Floats[i])) || -d > 1e-9*(1+absF(ac.Floats[i])) {
				t.Errorf("%s: sum[%d] = %v vs %v", label, i, ac.Floats[i], bc.Floats[i])
				return
			}
		}
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestGroupStrategiesAgree is the whole-query cross-check on skewed,
// duplicated, negative-key, near-unique, tiny and empty inputs across
// multiple morsels (run under -race in CI). Within one strategy, every
// (worker count, pipeline mode) combination must be byte-identical —
// the determinism contract. Across strategies, keys/counts/min/max
// must be bitwise equal and sums equal up to association order.
func TestGroupStrategiesAgree(t *testing.T) {
	shrinkMorsels(t, 512)
	inputs := map[string]struct {
		n   int
		gen func(rng *workload.RNG, i int) int64
	}{
		"empty":    {0, func(*workload.RNG, int) int64 { return 0 }},
		"tiny":     {3, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(2)) }},
		"skewed":   {5000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(rng.Intn(64) + 1)) }},
		"dups":     {5000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(111)) }},
		"negative": {5000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(4001)) - 2000 }},
		"unique":   {5000, func(_ *workload.RNG, i int) int64 { return int64(i)*2654435761 - 1<<40 }},
	}
	measure := BinExpr{Op: '*', L: ColExpr{Name: "v"}, R: BinExpr{Op: '-', L: ConstExpr{V: 1}, R: ColExpr{Name: "w"}}}
	for name, in := range inputs {
		tbl := keyedTable(t, in.n, in.gen)
		root := func() Node {
			return &GroupAggNode{Input: &ScanNode{Table: tbl}, Key: "k", Measure: measure}
		}
		var crossBase *Rel
		for _, strat := range []string{"hash", "sort", "radix"} {
			var want *Rel
			for _, workers := range []int{1, 4} {
				for _, noPipe := range []bool{false, true} {
					cfg := Config{
						ForceGroup: strat,
						NoPipeline: noPipe,
						Opt:        core.Options{Parallelism: workers},
					}
					p, err := Plan(root(), cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := p.Run(nil)
					if err != nil {
						t.Fatal(err)
					}
					if want == nil {
						want = res.Rel
						continue
					}
					if !reflect.DeepEqual(want, res.Rel) {
						t.Errorf("%s: %s grouping (workers=%d noPipe=%v) not byte-identical to its serial pipelined run",
							name, strat, workers, noPipe)
					}
				}
			}
			if crossBase == nil {
				crossBase = want
				continue
			}
			relsEquivalent(t, fmt.Sprintf("%s: %s vs hash", name, strat), crossBase, want)
		}
	}
}

// TestRadixGroupingInstrumented: forced-radix instrumented runs go
// through agg.RadixGroup's simulated path and still match native
// results exactly.
func TestRadixGroupingInstrumented(t *testing.T) {
	tbl := keyedTable(t, 4000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(1200)) })
	root := &GroupAggNode{Input: &ScanNode{Table: tbl}, Key: "k", Measure: ColExpr{Name: "v"}}
	p, err := Plan(root, Config{ForceGroup: "radix"})
	if err != nil {
		t.Fatal(err)
	}
	native, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := p.Run(memsim.MustNew(memsim.Origin2000()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(native.Rel, instr.Rel) {
		t.Error("instrumented radix grouping differs from native")
	}
}

// TestForceGroupValidation: unknown strategies fail at Plan time.
func TestForceGroupValidation(t *testing.T) {
	tbl := keyedTable(t, 64, func(_ *workload.RNG, i int) int64 { return int64(i) })
	root := &GroupAggNode{Input: &ScanNode{Table: tbl}, Key: "k", Measure: ColExpr{Name: "v"}}
	if _, err := Plan(root, Config{ForceGroup: "bogus"}); err == nil {
		t.Error("unknown ForceGroup accepted")
	}
	// Forcing radix on a low-cardinality key floors the bit count at 1
	// so the partitioning machinery actually runs.
	small := keyedTable(t, 256, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(4)) })
	_, op := groupPlanFor(t, small, Config{ForceGroup: "radix"})
	if op.strat != aggRadix || op.radixBits < 1 {
		t.Errorf("forced radix lowered to %v bits=%d", op.strat, op.radixBits)
	}
}
