package engine

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"monetlite/internal/core"
	"monetlite/internal/costmodel"
)

// Execution profiling (EXPLAIN ANALYZE): a profiled run collects, per
// physical operator — including each fused pipeline stage and each
// grouping phase — the actual wall time, input/output rows, bytes
// read+written (computed with the same width accounting the cost
// models charge, so predicted and actual are in the same units),
// allocation deltas, morsel count and per-worker busy time.
//
// The instrumentation contract:
//
//   - Zero cost when disabled. Every hook is a nil check on
//     execCtx.prof / execCtx.spans; the disabled branches are the
//     exact pre-profiling code paths, with no closures and no
//     allocations (pinned by TestProfileHooksDisabledZeroAlloc).
//   - Observation only. Profiling never changes the morsel
//     decomposition, merge orders or any result byte: a profiled run
//     is byte-identical to an unprofiled one at any worker count.

// Profile is the execution profile of one plan run, a tree of
// per-operator statistics mirroring the Explain() operator tree.
type Profile struct {
	Machine string   `json:"machine"`
	Workers int      `json:"workers"`
	TotalMS float64  `json:"total_ms"`
	Root    *OpStats `json:"root"`
	// Spans are the raw per-worker work-unit spans (morsels, grouping
	// tasks), ordered by start time — the trace-export feed.
	Spans []core.Span `json:"-"`

	model *costmodel.Model
	rec   *core.SpanRecorder
	nodes []*OpStats // index == span tag
	stack []*OpStats // stack[0] is the sentinel
}

// OpStats is one profiled node: a physical operator, a fused pipeline
// stage, or an operator-internal phase (grouping cluster/merge,
// default-projection reconstruction). Times and allocation deltas are
// inclusive of child nodes; SelfMS subtracts them back out. Traffic
// (BytesRead/BytesWritten) is the node's own, in cost-model width
// units — sum a subtree for inclusive traffic.
type OpStats struct {
	Op           string    `json:"op"`
	Detail       string    `json:"detail,omitempty"`
	Phase        bool      `json:"phase,omitempty"` // stage/phase node, not a plan operator
	PredictedMS  float64   `json:"predicted_ms,omitempty"`
	PredRatio    float64   `json:"pred_ratio,omitempty"` // actual/predicted
	ActualMS     float64   `json:"actual_ms"`
	SelfMS       float64   `json:"self_ms"`
	InRows       int64     `json:"in_rows"`
	OutRows      int64     `json:"out_rows"`
	BytesRead    int64     `json:"bytes_read"`
	BytesWritten int64     `json:"bytes_written"`
	AllocBytes   int64     `json:"alloc_bytes,omitempty"`
	Allocs       int64     `json:"allocs,omitempty"`
	Morsels      int       `json:"morsels,omitempty"`
	WorkerBusyMS []float64 `json:"worker_busy_ms,omitempty"`
	// Replanned records an adaptive re-optimization taken while this
	// operator ran: "replanned at <op>: est=N obs=M (...)."
	Replanned string     `json:"replanned,omitempty"`
	Kids      []*OpStats `json:"kids,omitempty"`

	tag      int
	startNS  int64
	actualNS int64
	op       physOp // nil for stage/phase nodes
	outBinds int    // bindings in the output fragment (OID-list width accounting)
}

func newProfile(model *costmodel.Model, workers int) *Profile {
	if workers < 1 {
		workers = 1
	}
	sentinel := &OpStats{Op: "query", Phase: true}
	p := &Profile{
		Machine: model.M.Name,
		Workers: workers,
		model:   model,
		rec:     core.NewSpanRecorder(workers),
		nodes:   []*OpStats{sentinel},
		stack:   []*OpStats{sentinel},
	}
	return p
}

// exec routes a child-operator execution through the profiler. The
// disabled path is a bare nil check — no allocations, no closures —
// so unprofiled runs execute exactly the pre-profiling code.
func (ctx *execCtx) exec(op physOp) (*fragment, error) {
	if ctx.prof == nil {
		return op.exec(ctx)
	}
	return ctx.prof.execOp(ctx, op)
}

// execOp times one operator execution, recording rows and allocation
// deltas, with child executions nesting into the stats tree.
func (p *Profile) execOp(ctx *execCtx, op physOp) (*fragment, error) {
	node := p.push(op.label(), op.detail(), op)
	node.PredictedMS = p.model.Millis(costmodel.KindOf(op.label()), op.predicted())
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	node.startNS = p.rec.Clock()
	frag, err := op.exec(ctx)
	node.actualNS = p.rec.Clock() - node.startNS
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	node.AllocBytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	node.Allocs = int64(m1.Mallocs - m0.Mallocs)
	if err == nil && frag != nil {
		node.OutRows = int64(frag.rows())
		node.outBinds = len(frag.binds)
	}
	p.pop()
	return frag, err
}

// push opens a profiled node under the current one and points the span
// recorder's tag at it; pop closes it. Serial use only (operators
// execute their children serially; fan-outs happen inside one node).
func (p *Profile) push(label, detail string, op physOp) *OpStats {
	node := &OpStats{Op: label, Detail: detail, op: op, tag: len(p.nodes)}
	p.nodes = append(p.nodes, node)
	parent := p.stack[len(p.stack)-1]
	parent.Kids = append(parent.Kids, node)
	p.stack = append(p.stack, node)
	p.rec.SetTag(node.tag)
	return node
}

func (p *Profile) pop() {
	p.stack = p.stack[:len(p.stack)-1]
	p.rec.SetTag(p.stack[len(p.stack)-1].tag)
}

// beginPhase opens a phase node (a serial section inside the current
// operator — a grouping cluster pass, a merge, a pipeline stage
// summary). Callers must guard with ctx.prof != nil and close with
// endPhase.
func (p *Profile) beginPhase(label, detail string) *OpStats {
	node := p.push(label, detail, nil)
	node.Phase = true
	node.startNS = p.rec.Clock()
	return node
}

// endPhase closes a phase node with its output rows and its own
// traffic in cost-model width units.
func (p *Profile) endPhase(node *OpStats, outRows, read, written int64) {
	node.actualNS = p.rec.Clock() - node.startNS
	node.OutRows = outRows
	node.BytesRead = read
	node.BytesWritten = written
	p.pop()
}

// addStage attaches a pipeline-stage summary node (rows + traffic, no
// own timing: stages interleave per vector inside the pipeline's wall
// time) under the current node.
func (p *Profile) addStage(label, detail string, inRows, outRows, read, written int64) {
	node := p.push(label, detail, nil)
	node.Phase = true
	node.InRows = inRows
	node.OutRows = outRows
	node.BytesRead = read
	node.BytesWritten = written
	p.pop()
}

// finish resolves the collected tree: span attribution (morsel counts,
// per-worker busy time), derived times, input rows, traffic and
// predicted-vs-actual ratios.
func (p *Profile) finish() {
	p.TotalMS = float64(p.rec.Clock()) / 1e6
	p.Spans = p.rec.Spans()
	for _, s := range p.Spans {
		if int(s.Tag) >= len(p.nodes) {
			continue
		}
		node := p.nodes[s.Tag]
		node.Morsels++
		if node.WorkerBusyMS == nil {
			node.WorkerBusyMS = make([]float64, p.Workers)
		}
		if int(s.Worker) < len(node.WorkerBusyMS) {
			node.WorkerBusyMS[s.Worker] += float64(s.Dur) / 1e6
		}
	}
	sentinel := p.nodes[0]
	var walk func(n *OpStats)
	walk = func(n *OpStats) {
		var kidMS float64
		var inRows int64
		for _, k := range n.Kids {
			walk(k)
			kidMS += k.ActualMS
			if !k.Phase {
				inRows += k.OutRows
			}
		}
		n.ActualMS = float64(n.actualNS) / 1e6
		n.SelfMS = n.ActualMS - kidMS
		if n.SelfMS < 0 {
			n.SelfMS = 0
		}
		if n.InRows == 0 {
			n.InRows = inRows
		}
		if n.op != nil {
			p.opTraffic(n)
		}
		if n.PredictedMS > 0 && n.ActualMS > 0 {
			n.PredRatio = n.ActualMS / n.PredictedMS
		}
	}
	walk(sentinel)
	if len(sentinel.Kids) == 1 {
		p.Root = sentinel.Kids[0]
	} else {
		sentinel.actualNS = int64(p.TotalMS * 1e6)
		sentinel.ActualMS = p.TotalMS
		p.Root = sentinel
	}
}

// opTraffic fills a real operator node's own bytes read/written from
// its actual row counts, mirroring the width accounting of the cost
// formulas in cost.go (4-byte OID-list entries, stored column widths,
// 8-byte join pairs, the 16-byte aggregation feed) so predicted and
// actual traffic are directly comparable.
func (p *Profile) opTraffic(n *OpStats) {
	in, out := n.InRows, n.OutRows
	switch op := n.op.(type) {
	case *scanOp:
		n.InRows = int64(op.t.N) // a scan binds, it does not move bytes
	case *selectScanOp:
		n.BytesRead = in * int64(op.col.Width())
		n.BytesWritten = out * 4
	case *selectCSSOp:
		n.BytesRead = out * 8 // leaf (key, OID) entries; descent is noise
		n.BytesWritten = out * 4
	case *refilterOp:
		n.BytesRead = in * int64(op.col.Width())
		n.BytesWritten = out * 4 * int64(n.outBinds)
	case *joinOp:
		// Gathered join columns in, (row, value) pairs + the join index
		// + the remapped OID lists out.
		n.BytesRead = in * 8
		n.BytesWritten = in*8 + out*8 + out*4*int64(n.outBinds)
	case *groupAggOp:
		w := int64(op.keyCol.Width())
		for _, oc := range op.operands {
			w += int64(oc.col.Width())
		}
		n.BytesRead = in * w
		n.BytesWritten = in*16 + out*40 // (key, value) feed + 5 result columns
	case *projectOp:
		var r, wr int64
		for _, pc := range op.cols {
			if pc.col == nil {
				continue // pass-through of a materialized column
			}
			cw := int64(pc.col.Width())
			r += out * cw
			if cw < 8 {
				cw = 8 // widened on materialization
			}
			wr += out * cw
		}
		n.BytesRead, n.BytesWritten = r, wr
	case *orderByOp:
		w := int64(8)
		if op.col != nil {
			w = int64(op.col.Width())
		}
		n.BytesRead = in * w
		n.BytesWritten = out * 8 // the permutation rewrite
	case *pipelineOp:
		n.InRows = int64(op.t.N) // stages carry the per-stage traffic
	case *limitOp:
		// slicing in place: no traffic
	}
}

// noteReplan records an adaptive re-optimization on the operator
// currently executing — EXPLAIN ANALYZE's "replanned at" annotation.
// Serial use only, like push/pop: replan decisions happen on the
// coordinating goroutine at materialization boundaries.
func (p *Profile) noteReplan(msg string) {
	p.stack[len(p.stack)-1].Replanned = msg
}

// Residuals folds this profile's per-operator predicted-vs-actual
// pairs into the accumulator — the calibration feed. Only real plan
// operators with a cost-model prediction contribute. Kinds are
// normalized with costmodel.KindOf, the same labels model corrections
// are keyed by.
func (p *Profile) Residuals(acc *costmodel.Residuals) {
	var walk func(n *OpStats)
	walk = func(n *OpStats) {
		if !n.Phase && n.PredictedMS > 0 {
			acc.Observe(costmodel.KindOf(n.Op), n.PredictedMS, n.ActualMS)
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	if p.Root != nil {
		walk(p.Root)
	}
}

// inclTraffic sums a node's own traffic with its phase/stage subtree —
// the operator's total byte movement, excluding distinct upstream
// operators (which annotate themselves).
func inclTraffic(n *OpStats) (read, written int64) {
	read, written = n.BytesRead, n.BytesWritten
	for _, k := range n.Kids {
		if !k.Phase {
			continue
		}
		r, w := inclTraffic(k)
		read += r
		written += w
	}
	return read, written
}

// annotate renders one node's EXPLAIN ANALYZE annotation.
func (p *Profile) annotate(n *OpStats) string {
	var sb strings.Builder
	sb.WriteString("[")
	if n.actualNS > 0 {
		fmt.Fprintf(&sb, "actual=%.2fms ", n.ActualMS)
	}
	if n.InRows != n.OutRows {
		fmt.Fprintf(&sb, "rows=%d→%d", n.InRows, n.OutRows)
	} else {
		fmt.Fprintf(&sb, "rows=%d", n.OutRows)
	}
	r, w := inclTraffic(n)
	fmt.Fprintf(&sb, " traffic=%s", fmtBytes(float64(r+w)))
	if n.WorkerBusyMS != nil {
		busy, nw := 0.0, 0
		for _, b := range n.WorkerBusyMS {
			if b > 0 {
				busy += b
				nw++
			}
		}
		if nw > 0 {
			fmt.Fprintf(&sb, " workers=%d×%.2fms", nw, busy/float64(nw))
		}
	}
	if n.PredictedMS > 0 && n.PredRatio > 0 {
		fmt.Fprintf(&sb, " (pred %.2fms ×%.2g off)", n.PredictedMS, n.PredRatio)
	}
	if n.Replanned != "" {
		fmt.Fprintf(&sb, " %s", n.Replanned)
	}
	sb.WriteString("]")
	return sb.String()
}

// String renders the EXPLAIN ANALYZE tree: the operator tree with
// per-node actual time, rows, traffic, worker utilization and the
// predicted-vs-actual factor.
func (p *Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile for %s  (total %.2f ms, %d workers)\n",
		p.Machine, p.TotalMS, p.Workers)
	if p.Root != nil {
		p.render(&sb, p.Root, "", "")
	}
	return sb.String()
}

func (p *Profile) render(sb *strings.Builder, n *OpStats, prefix, childPrefix string) {
	sb.WriteString(prefix)
	sb.WriteString(n.Op)
	if n.Detail != "" {
		sb.WriteString(" ")
		sb.WriteString(n.Detail)
	}
	sb.WriteString("  ")
	sb.WriteString(p.annotate(n))
	sb.WriteString("\n")
	for i, k := range n.Kids {
		if i == len(n.Kids)-1 {
			p.render(sb, k, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			p.render(sb, k, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// JSON serializes the profile tree (machine-readable analyze block).
func (p *Profile) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ---------------------------------------------------------------------
// Chrome-trace export: profiles serialize to the trace-event format
// chrome://tracing and Perfetto load — per-worker morsel spans on one
// row per worker, the operator intervals on a separate "operators"
// row, one process per query.

// TraceEvent is one entry of the Chrome trace event format.
type TraceEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"` // microseconds since trace epoch
	Dur  float64    `json:"dur,omitempty"`
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	Args *TraceArgs `json:"args,omitempty"`
}

// TraceArgs carries the per-event detail (fixed fields: deterministic
// serialization, no map ordering involved).
type TraceArgs struct {
	Name        string  `json:"name,omitempty"`
	Rows        int64   `json:"rows,omitempty"`
	Unit        int     `json:"unit,omitempty"`
	PredictedMS float64 `json:"predicted_ms,omitempty"`
}

// TraceEvents renders the profile as Chrome trace events under the
// given process id (one pid per query when concatenating profiles) and
// process name.
func (p *Profile) TraceEvents(pid int, name string) []TraceEvent {
	events := []TraceEvent{{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: &TraceArgs{Name: name},
	}}
	for w := 0; w < p.Workers; w++ {
		events = append(events, TraceEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: w,
			Args: &TraceArgs{Name: fmt.Sprintf("worker %d", w)},
		})
	}
	opTID := p.Workers
	events = append(events, TraceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: opTID,
		Args: &TraceArgs{Name: "operators"},
	})
	for _, n := range p.nodes {
		if n.actualNS <= 0 {
			continue
		}
		events = append(events, TraceEvent{
			Name: n.Op, Cat: "operator", Ph: "X",
			TS: float64(n.startNS) / 1e3, Dur: float64(n.actualNS) / 1e3,
			PID: pid, TID: opTID,
			Args: &TraceArgs{Rows: n.OutRows, PredictedMS: n.PredictedMS},
		})
	}
	for _, s := range p.Spans {
		label := "work"
		if int(s.Tag) < len(p.nodes) {
			label = p.nodes[s.Tag].Op
		}
		events = append(events, TraceEvent{
			Name: label, Cat: "morsel", Ph: "X",
			TS: float64(s.Start) / 1e3, Dur: float64(s.Dur) / 1e3,
			PID: pid, TID: int(s.Worker),
			Args: &TraceArgs{Unit: int(s.Unit)},
		})
	}
	return events
}

// EncodeChromeTrace wraps trace events in the JSON object form the
// Chrome trace viewer expects.
func EncodeChromeTrace(events []TraceEvent) ([]byte, error) {
	return json.Marshal(struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}
