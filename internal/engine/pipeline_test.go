package engine

import (
	"reflect"
	"strings"
	"testing"

	"monetlite/internal/core"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// Cross-checks for fused cache-resident pipelines: pipelined execution
// must be byte-identical to the forced-materializing path
// (Config.NoPipeline) on every plan shape, at every worker count, on
// skewed, duplicated, empty and tiny inputs — float aggregates
// included, bit for bit. Run under -race these tests also prove the
// pipeline's worker arenas and morsel chunks share no mutable state.

// runPipelineAB plans and runs the same logical DAG with pipelines on
// and off at the given parallelism, requiring byte-identical
// relations.
func runPipelineAB(t *testing.T, name string, root Node, workers int) {
	t.Helper()
	opt := core.Options{Parallelism: workers}
	mat, err := Plan(root, Config{Opt: opt, NoPipeline: true})
	if err != nil {
		t.Fatalf("%s: materializing plan: %v", name, err)
	}
	if mat.Pipelined() {
		t.Fatalf("%s: NoPipeline plan contains a pipeline", name)
	}
	want, err := mat.Run(nil)
	if err != nil {
		t.Fatalf("%s: materializing run: %v", name, err)
	}
	piped, err := Plan(root, Config{Opt: opt})
	if err != nil {
		t.Fatalf("%s: pipelined plan: %v", name, err)
	}
	got, err := piped.Run(nil)
	if err != nil {
		t.Fatalf("%s: pipelined run: %v", name, err)
	}
	if !reflect.DeepEqual(want.Rel, got.Rel) {
		t.Errorf("%s (workers=%d): pipelined result differs from materializing (%d vs %d rows)\n%s",
			name, workers, got.N(), want.N(), piped.Explain())
	}
}

// TestPipelinedMatchesMaterializing is the fixed-shape A/B suite:
// every fusable chain shape (and several breakers mixed in), on
// skewed/dup/tiny inputs, with morsels shrunk so chunk concatenation
// and the limit fence actually engage.
func TestPipelinedMatchesMaterializing(t *testing.T) {
	shrinkMorsels(t, 512)
	items := itemTable(t, 8192)
	parts := partTable(t, 500)
	skew := skewTable(t, 6000)
	tiny := skewTable(t, 3)

	revenue := BinExpr{Op: '*', L: ColExpr{Name: "price"},
		R: BinExpr{Op: '-', L: ConstExpr{V: 1}, R: ColExpr{Name: "discnt"}}}

	sel := func(in Node, p Predicate) Node { return &SelectNode{Input: in, Pred: p} }
	dateSel := func(in Node) Node { return sel(in, RangePred{Col: "date1", Lo: 8000, Hi: 9999}) }

	cases := []struct {
		name string
		root Node
	}{
		{"agg over bare scan", &GroupAggNode{
			Input: &ScanNode{Table: items}, Key: "shipmode", Measure: revenue}},
		{"agg over select", &GroupAggNode{
			Input: dateSel(&ScanNode{Table: items}), Key: "shipmode", Measure: revenue}},
		{"agg over select+refilter", &GroupAggNode{
			Input: sel(dateSel(&ScanNode{Table: items}), EqStringPred{Col: "status", Value: "F"}),
			Key:   "status", Measure: ColExpr{Name: "price"}}},
		{"agg integer key skew", &GroupAggNode{
			Input: sel(&ScanNode{Table: skew}, RangePred{Col: "payload", Lo: 0, Hi: 700}),
			Key:   "k", Measure: ColExpr{Name: "v"}}},
		{"agg tiny table", &GroupAggNode{
			Input: &ScanNode{Table: tiny}, Key: "tag", Measure: ColExpr{Name: "v"}}},
		{"agg empty selection", &GroupAggNode{
			Input: sel(&ScanNode{Table: items}, RangePred{Col: "qty", Lo: -10, Hi: -5}),
			Key:   "shipmode", Measure: revenue}},
		{"agg dictionary miss", &GroupAggNode{
			Input: sel(&ScanNode{Table: items}, EqStringPred{Col: "shipmode", Value: "NOSUCH"}),
			Key:   "status", Measure: ColExpr{Name: "price"}}},
		{"project over select", &ProjectNode{
			Input: sel(&ScanNode{Table: items}, RangePred{Col: "qty", Lo: 5, Hi: 40}),
			Cols:  []string{"order", "price", "shipmode", "comment"}}},
		{"project over refilter chain", &ProjectNode{
			Input: sel(dateSel(&ScanNode{Table: items}), EqStringPred{Col: "shipmode", Value: "MAIL"}),
			Cols:  []string{"order", "qty", "price"}}},
		{"double refilter to oids", sel(
			sel(dateSel(&ScanNode{Table: items}), EqStringPred{Col: "status", Value: "F"}),
			RangePred{Col: "qty", Lo: 1, Hi: 30})},
		{"refilter skew hot key", sel(
			sel(&ScanNode{Table: skew}, RangePred{Col: "payload", Lo: 0, Hi: 500}),
			RangePred{Col: "k", Lo: 0, Hi: 0})},
		{"limit over select chain", &LimitNode{
			Input: sel(dateSel(&ScanNode{Table: items}), EqStringPred{Col: "status", Value: "F"}),
			N:     37}},
		{"limit over project", &LimitNode{
			Input: &ProjectNode{
				Input: dateSel(&ScanNode{Table: items}),
				Cols:  []string{"order", "price", "shipmode"}},
			N: 100}},
		{"limit zero", &LimitNode{
			Input: &ProjectNode{
				Input: dateSel(&ScanNode{Table: items}),
				Cols:  []string{"order"}},
			N: 0}},
		{"limit beyond input", &LimitNode{
			Input: sel(&ScanNode{Table: tiny}, RangePred{Col: "payload", Lo: 0, Hi: 1000}),
			N:     1 << 20}},
		{"pipeline feeding join", &GroupAggNode{
			Input: &JoinNode{
				Left:    sel(dateSel(&ScanNode{Table: items}), EqStringPred{Col: "shipmode", Value: "MAIL"}),
				Right:   &ScanNode{Table: parts},
				LeftCol: "part", RightCol: "id"},
			Key: "category", Measure: revenue}},
		{"orderby over pipeline project", &OrderByNode{
			Input: &ProjectNode{
				Input: sel(&ScanNode{Table: items}, RangePred{Col: "qty", Lo: 1, Hi: 25}),
				Cols:  []string{"order", "price"}},
			Col: "price", Desc: true}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			runPipelineAB(t, tc.name, tc.root, workers)
		}
	}
}

// TestRandomPlansPipelinedVsMaterializing is the property test: random
// select/refilter chains with random sinks, cross-checked pipelined vs
// forced-materializing at 1 and 4 workers, bit for bit.
func TestRandomPlansPipelinedVsMaterializing(t *testing.T) {
	shrinkMorsels(t, 256)
	items := itemTable(t, 6144)
	rng := workload.NewRNG(0xF00D)
	for round := 0; round < 50; round++ {
		var node Node = &ScanNode{Table: items}
		nsel := rng.Intn(4)
		for i := 0; i < nsel; i++ {
			p, _ := randPred(rng)
			node = &SelectNode{Input: node, Pred: p}
		}
		switch rng.Intn(4) {
		case 0:
			key, _ := randKey(rng, false)
			measure, _ := randMeasure(rng, false)
			node = &GroupAggNode{Input: node, Key: key, Measure: measure}
		case 1:
			node = &ProjectNode{Input: node, Cols: []string{"order", "price", "shipmode"}}
		case 2:
			node = &LimitNode{
				Input: &ProjectNode{Input: node, Cols: []string{"order", "qty"}},
				N:     rng.Intn(2000),
			}
		default:
			// bare chain: OID-list sink (or no fusion at all — both fine)
		}
		for _, workers := range []int{1, 4} {
			runPipelineAB(t, "random plan", node, workers)
		}
	}
}

// TestOrderByLimitParallelDeterminism: OrderBy's stable sort over a
// key with heavy duplicates, followed by Limit, must produce the
// identical prefix at every worker count, pipelined or not — tie
// order must come from storage order, never from scheduling.
func TestOrderByLimitParallelDeterminism(t *testing.T) {
	shrinkMorsels(t, 512)
	items := itemTable(t, 8192)
	// qty has ~50 distinct values over 8192 rows: dense ties.
	root := func() Node {
		return &LimitNode{
			Input: &OrderByNode{
				Input: &ProjectNode{
					Input: &SelectNode{
						Input: &ScanNode{Table: items},
						Pred:  RangePred{Col: "date1", Lo: 8000, Hi: 9999}},
					Cols: []string{"qty", "order", "price"}},
				Col: "qty", Desc: false},
			N: 50}
	}
	var want *Result
	for _, cfg := range []Config{
		{Opt: core.Serial()},
		{Opt: core.Options{Parallelism: 4}},
		{Opt: core.Options{Parallelism: 13}},
		{Opt: core.Serial(), NoPipeline: true},
		{Opt: core.Options{Parallelism: 4}, NoPipeline: true},
	} {
		plan, err := Plan(root(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(want.Rel, res.Rel) {
			t.Errorf("OrderBy+Limit differs under %+v", cfg)
		}
	}
	// The limit must actually bite, and ties must be in storage order:
	// within equal qty, the order column ascends.
	if want.N() != 50 {
		t.Fatalf("got %d rows, want 50", want.N())
	}
	qty, _ := want.Ints("qty")
	order, _ := want.Ints("order")
	for i := 1; i < want.N(); i++ {
		if qty[i] < qty[i-1] {
			t.Fatalf("qty not ascending at %d", i)
		}
		if qty[i] == qty[i-1] && order[i] <= order[i-1] {
			t.Errorf("tie at qty=%d broken out of storage order (order %d then %d)",
				qty[i], order[i-1], order[i])
		}
	}
}

// TestPipelineFusionShapes pins which chains fuse and which stay
// materializing.
func TestPipelineFusionShapes(t *testing.T) {
	items := itemTable(t, 8192)
	parts := partTable(t, 500)
	dateSel := &SelectNode{Input: &ScanNode{Table: items},
		Pred: RangePred{Col: "date1", Lo: 8000, Hi: 9999}}
	cases := []struct {
		name string
		root Node
		want bool
	}{
		{"groupagg over scan", &GroupAggNode{
			Input: &ScanNode{Table: items}, Key: "shipmode", Measure: ColExpr{Name: "price"}}, true},
		{"project over select", &ProjectNode{Input: dateSel, Cols: []string{"order"}}, true},
		{"double select", &SelectNode{Input: dateSel,
			Pred: EqStringPred{Col: "status", Value: "F"}}, true},
		{"limit over select", &LimitNode{Input: dateSel, N: 10}, true},
		{"single select", dateSel, false},
		{"bare projection", &ProjectNode{Input: &ScanNode{Table: items}, Cols: []string{"order"}}, false},
		{"css point select", &ProjectNode{
			Input: &SelectNode{Input: &ScanNode{Table: items},
				Pred: RangePred{Col: "order", Lo: 1000, Hi: 1010}},
			Cols: []string{"order"}}, false},
		{"join is a breaker", &JoinNode{
			Left: &ScanNode{Table: items}, Right: &ScanNode{Table: parts},
			LeftCol: "part", RightCol: "id"}, false},
	}
	for _, tc := range cases {
		plan, err := Plan(tc.root, Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := plan.Pipelined(); got != tc.want {
			t.Errorf("%s: Pipelined() = %v, want %v\n%s", tc.name, got, tc.want, plan.Explain())
		}
		off, err := Plan(tc.root, Config{NoPipeline: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if off.Pipelined() {
			t.Errorf("%s: NoPipeline plan still fused", tc.name)
		}
	}
}

// TestPipelineExplain: EXPLAIN must print the pipeline grouping with
// its per-stage detail, parallelism, vector size, and the predicted
// materialization-traffic saving.
func TestPipelineExplain(t *testing.T) {
	plan, err := Plan(&GroupAggNode{
		Input: &SelectNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: itemTable(t, 8192)},
				Pred:  RangePred{Col: "date1", Lo: 8000, Hi: 9999}},
			Pred: EqStringPred{Col: "shipmode", Value: "MAIL"}},
		Key: "shipmode", Measure: ColExpr{Name: "price"},
	}, Config{Opt: core.Options{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ex := plan.Explain()
	for _, want := range []string{
		"Pipeline[Select→Refilter→Agg]", "saves~", "vec=", "par=",
		"Scan item", "Select[scan]", "Select[refilter]", "GroupAggregate[hash]",
	} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}
}

// TestPipelineInstrumentedUnchanged: a pipelined plan run under the
// simulator must take the serial materializing path — identical
// simulated stats and results to an explicit NoPipeline plan.
func TestPipelineInstrumentedUnchanged(t *testing.T) {
	shrinkMorsels(t, 512)
	root := func() Node {
		return &GroupAggNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: itemTable(t, 4096)},
				Pred:  RangePred{Col: "date1", Lo: 8500, Hi: 9499}},
			Key: "shipmode", Measure: ColExpr{Name: "price"},
		}
	}
	stats := make([]memsim.Stats, 2)
	rels := make([]*Rel, 2)
	for i, noPipe := range []bool{false, true} {
		plan, err := Plan(root(), Config{Opt: core.Options{Parallelism: 8}, NoPipeline: noPipe})
		if err != nil {
			t.Fatal(err)
		}
		sim := memsim.MustNew(plan.Machine())
		res, err := plan.Run(sim)
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = sim.Stats()
		rels[i] = res.Rel
	}
	if stats[0] != stats[1] {
		t.Errorf("pipelined plan changed the instrumented run:\npipelined %+v\nlegacy    %+v", stats[0], stats[1])
	}
	if !reflect.DeepEqual(rels[0], rels[1]) {
		t.Error("instrumented results differ between pipelined and legacy plans")
	}
}
