package engine

import (
	"reflect"
	"strings"
	"testing"

	"monetlite/internal/core"
	"monetlite/internal/dsm"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// Cross-checks for morsel-driven parallel execution: every operator's
// parallel output must be byte-identical to its serial output — OIDs,
// ints, strings, and float aggregates alike — on skewed, duplicated,
// empty and tiny inputs. Run under -race these tests also prove the
// fan-out touches no shared mutable state.

// shrinkMorsels drops the morsel size so small test tables span many
// morsels (the merge paths are degenerate on a single morsel). Set
// before any goroutines spawn; restored after the test.
func shrinkMorsels(t *testing.T, rows int) {
	t.Helper()
	old := core.MorselRows
	core.MorselRows = rows
	t.Cleanup(func() { core.MorselRows = old })
}

// skewTable builds a table whose key column is heavily skewed (half
// the rows share one key, the rest cycle over many duplicates), with
// an int payload, a float measure and an encoded string tag.
func skewTable(t *testing.T, n int) *dsm.Table {
	t.Helper()
	schema := dsm.Schema{Name: "skew", Cols: []dsm.ColumnDef{
		{Name: "k", Type: dsm.LInt},
		{Name: "payload", Type: dsm.LInt},
		{Name: "v", Type: dsm.LFloat},
		{Name: "tag", Type: dsm.LString},
	}}
	tags := []string{"hot", "warm", "cold"}
	rng := workload.NewRNG(77)
	rows := make([][]any, n)
	for i := range rows {
		k := int64(0) // the hot key
		if i%2 == 1 {
			k = int64(1 + rng.Intn(n/4+1)) // long tail of duplicates
		}
		rows[i] = []any{k, int64(rng.Intn(1000)), float64(rng.Intn(1 << 20)), tags[rng.Intn(len(tags))]}
	}
	tbl, err := dsm.Decompose(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// runBoth plans and runs the same logical DAG serially and with the
// given parallelism, requiring byte-identical relations.
func runBoth(t *testing.T, name string, root Node, workers int) {
	t.Helper()
	serialPlan, err := Plan(root, Config{Opt: core.Serial()})
	if err != nil {
		t.Fatalf("%s: serial plan: %v", name, err)
	}
	serial, err := serialPlan.Run(nil)
	if err != nil {
		t.Fatalf("%s: serial run: %v", name, err)
	}
	parPlan, err := Plan(root, Config{Opt: core.Options{Parallelism: workers}})
	if err != nil {
		t.Fatalf("%s: parallel plan: %v", name, err)
	}
	par, err := parPlan.Run(nil)
	if err != nil {
		t.Fatalf("%s: parallel run: %v", name, err)
	}
	if !reflect.DeepEqual(serial.Rel, par.Rel) {
		t.Errorf("%s: parallel result differs from serial (serial %d rows, parallel %d)\n%s",
			name, serial.N(), par.N(), parPlan.Explain())
	}
}

func TestParallelOperatorsMatchSerial(t *testing.T) {
	shrinkMorsels(t, 512)
	items := itemTable(t, 8192)
	parts := partTable(t, 500)
	skew := skewTable(t, 6000)
	tiny := skewTable(t, 3)

	revenue := BinExpr{Op: '*', L: ColExpr{Name: "price"},
		R: BinExpr{Op: '-', L: ConstExpr{V: 1}, R: ColExpr{Name: "discnt"}}}

	cases := []struct {
		name string
		root Node
	}{
		{"scan-select range", &SelectNode{
			Input: &ScanNode{Table: items}, Pred: RangePred{Col: "date1", Lo: 8500, Hi: 9499}}},
		{"scan-select string", &SelectNode{
			Input: &ScanNode{Table: items}, Pred: EqStringPred{Col: "shipmode", Value: "MAIL"}}},
		{"scan-select empty", &SelectNode{
			Input: &ScanNode{Table: items}, Pred: RangePred{Col: "qty", Lo: -100, Hi: -50}}},
		{"refilter chain", &SelectNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: items}, Pred: RangePred{Col: "date1", Lo: 8000, Hi: 9999}},
			Pred: EqStringPred{Col: "status", Value: "F"}}},
		{"refilter to empty", &SelectNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: items}, Pred: RangePred{Col: "date1", Lo: 8000, Hi: 9999}},
			Pred: EqStringPred{Col: "shipmode", Value: "NOSUCH"}}},
		{"project gathers", &ProjectNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: items}, Pred: RangePred{Col: "qty", Lo: 5, Hi: 40}},
			Cols: []string{"order", "price", "shipmode", "comment"}}},
		{"default projection join", &JoinNode{
			Left:    &SelectNode{Input: &ScanNode{Table: items}, Pred: RangePred{Col: "date1", Lo: 8500, Hi: 9499}},
			Right:   &ScanNode{Table: parts},
			LeftCol: "part", RightCol: "id"}},
		{"join group-aggregate", &GroupAggNode{
			Input: &JoinNode{
				Left:    &ScanNode{Table: items},
				Right:   &ScanNode{Table: parts},
				LeftCol: "part", RightCol: "id"},
			Key: "category", Measure: revenue}},
		{"group-aggregate skewed dup keys", &GroupAggNode{
			Input: &ScanNode{Table: skew}, Key: "k", Measure: ColExpr{Name: "v"}}},
		{"group-aggregate encoded key", &GroupAggNode{
			Input: &ScanNode{Table: skew}, Key: "tag", Measure: ColExpr{Name: "v"}}},
		{"refilter on skew", &SelectNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: skew}, Pred: RangePred{Col: "payload", Lo: 0, Hi: 500}},
			Pred: RangePred{Col: "k", Lo: 0, Hi: 0}}},
		{"tiny table aggregate", &GroupAggNode{
			Input: &ScanNode{Table: tiny}, Key: "tag", Measure: ColExpr{Name: "v"}}},
		{"orderby limit tail", &LimitNode{
			Input: &OrderByNode{
				Input: &ProjectNode{
					Input: &SelectNode{
						Input: &ScanNode{Table: items}, Pred: RangePred{Col: "qty", Lo: 1, Hi: 30}},
					Cols: []string{"order", "price"}},
				Col: "price", Desc: true},
			N: 25}},
	}
	for _, tc := range cases {
		for _, workers := range []int{2, 4, 13} {
			runBoth(t, tc.name, tc.root, workers)
		}
	}
}

// TestMorselMergeMatchesGroundTruth pins the multi-morsel merge paths
// against an independent implementation: the instrumented executor,
// which always runs the pre-morsel whole-relation algorithms (serial
// keep-scan refilter, single-pass grouping). With morsels shrunk so
// the native run merges dozens of partials, a bug in the prefix-sum
// OID rewrite or in mergeGroupPartials cannot hide — unlike the
// parallel-vs-serial checks above, whose two sides share the morsel
// decomposition by design.
func TestMorselMergeMatchesGroundTruth(t *testing.T) {
	shrinkMorsels(t, 256)
	items := itemTable(t, 8192)

	// Refilter: OID output must match the whole-scan keep[] path bit
	// for bit (integers — exact equality).
	filter := &ProjectNode{
		Input: &SelectNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: items}, Pred: RangePred{Col: "date1", Lo: 8000, Hi: 9999}},
			Pred: EqStringPred{Col: "shipmode", Value: "MAIL"}},
		Cols: []string{"order", "qty", "shipmode"}}
	plan, err := Plan(filter, Config{Opt: core.Options{Parallelism: 7}})
	if err != nil {
		t.Fatal(err)
	}
	native, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := plan.Run(memsim.MustNew(plan.Machine()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(native.Rel, truth.Rel) {
		t.Errorf("morsel refilter differs from whole-scan ground truth (%d vs %d rows)", native.N(), truth.N())
	}

	// Group-aggregate: keys, counts, min and max are order-independent
	// and must match the single-pass grouping exactly; sums associate
	// differently across partials, so they get a relative tolerance.
	gagg := &GroupAggNode{
		Input: &SelectNode{
			Input: &ScanNode{Table: items}, Pred: RangePred{Col: "qty", Lo: 1, Hi: 45}},
		Key: "shipmode", Measure: BinExpr{Op: '*', L: ColExpr{Name: "price"}, R: ColExpr{Name: "qty"}}}
	plan, err = Plan(gagg, Config{Opt: core.Options{Parallelism: 7}})
	if err != nil {
		t.Fatal(err)
	}
	native, err = plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	truth, err = plan.Run(memsim.MustNew(plan.Machine()))
	if err != nil {
		t.Fatal(err)
	}
	if native.N() != truth.N() {
		t.Fatalf("morsel grouping found %d groups, ground truth %d", native.N(), truth.N())
	}
	nk, _ := native.Strings("shipmode")
	tk, _ := truth.Strings("shipmode")
	nc, _ := native.Ints("count")
	tc, _ := truth.Ints("count")
	for _, col := range []string{"min", "max"} {
		nv, _ := native.Floats(col)
		tv, _ := truth.Floats(col)
		for i := range tv {
			if nv[i] != tv[i] {
				t.Errorf("group %d: merged %s %v != ground truth %v", i, col, nv[i], tv[i])
			}
		}
	}
	ns, _ := native.Floats("sum")
	ts, _ := truth.Floats("sum")
	for i := range tk {
		if nk[i] != tk[i] || nc[i] != tc[i] {
			t.Errorf("group %d: merged (%s, %d) != ground truth (%s, %d)", i, nk[i], nc[i], tk[i], tc[i])
		}
		if d := ns[i] - ts[i]; d > 1e-6*ts[i] || d < -1e-6*ts[i] {
			t.Errorf("group %d: merged sum %v far from ground truth %v", i, ns[i], ts[i])
		}
	}
}

// TestParallelGroupAggManyGroups: a near-unique integer key saturates
// the planner's group estimate and stresses the partial-merge path
// with group counts in the thousands — results must still match the
// serial run exactly, with no panic on the under-estimated sizing.
func TestParallelGroupAggManyGroups(t *testing.T) {
	shrinkMorsels(t, 256)
	schema := dsm.Schema{Name: "wide", Cols: []dsm.ColumnDef{
		{Name: "k", Type: dsm.LInt},
		{Name: "v", Type: dsm.LFloat},
	}}
	const n = 5000
	rng := workload.NewRNG(5)
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(rng.Intn(n)), float64(i) * 0.25}
	}
	tbl, err := dsm.Decompose(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, "many groups", &GroupAggNode{
		Input: &ScanNode{Table: tbl}, Key: "k", Measure: ColExpr{Name: "v"}}, 8)
}

// TestInstrumentedRunStaysSerial: the simulator models a single CPU,
// so a parallel configuration must not change an instrumented run in
// any way — identical results and identical simulated access counts.
func TestInstrumentedRunStaysSerial(t *testing.T) {
	shrinkMorsels(t, 512)
	root := func() Node {
		return &GroupAggNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: itemTable(t, 4096)},
				Pred:  RangePred{Col: "date1", Lo: 8500, Hi: 9499},
			},
			Key: "shipmode", Measure: ColExpr{Name: "price"},
		}
	}
	stats := make([]memsim.Stats, 2)
	rels := make([]*Rel, 2)
	for i, opt := range []core.Options{core.Serial(), {Parallelism: 8}} {
		plan, err := Plan(root(), Config{Opt: opt})
		if err != nil {
			t.Fatal(err)
		}
		sim := memsim.MustNew(plan.Machine())
		res, err := plan.Run(sim)
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = sim.Stats()
		rels[i] = res.Rel
	}
	if stats[0] != stats[1] {
		t.Errorf("instrumented run changed under Parallelism=8:\nserial   %+v\nparallel %+v", stats[0], stats[1])
	}
	if !reflect.DeepEqual(rels[0], rels[1]) {
		t.Error("instrumented results differ between serial and parallel configuration")
	}
}

// TestExplainShowsParallelism: EXPLAIN must annotate each
// morsel-driven operator with its planned degree of parallelism.
func TestExplainShowsParallelism(t *testing.T) {
	shrinkMorsels(t, 512)
	plan, err := Plan(&GroupAggNode{
		Input: &SelectNode{
			Input: &ScanNode{Table: itemTable(t, 8192)},
			Pred:  RangePred{Col: "date1", Lo: 8000, Hi: 9999},
		},
		Key: "shipmode", Measure: ColExpr{Name: "price"},
	}, Config{Opt: core.Options{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ex := plan.Explain()
	if !strings.Contains(ex, "par=4") {
		t.Errorf("Explain does not annotate the degree of parallelism:\n%s", ex)
	}
}
