package engine

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"monetlite/internal/core"
	"monetlite/internal/costmodel"
)

// profQueries are the plan shapes the profiling invariants are checked
// on: a fusable select→aggregate chain (pipeline + grouping phases), a
// join (build/probe breaker), and a project→order→limit chain.
func profQueries(t testing.TB) map[string]Node {
	items := itemTable(t, 1<<17)
	parts := partTable(t, 500)
	measure := BinExpr{Op: '*', L: ColExpr{Name: "price"},
		R: BinExpr{Op: '-', L: ConstExpr{V: 1}, R: ColExpr{Name: "discnt"}}}
	return map[string]Node{
		"select-agg": &GroupAggNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: items},
				Pred:  RangePred{Col: "date1", Lo: 8500, Hi: 9499},
			},
			Key: "shipmode", Measure: measure,
		},
		"join-agg": &GroupAggNode{
			Input: &JoinNode{
				Left: &SelectNode{
					Input: &ScanNode{Table: items},
					Pred:  RangePred{Col: "date1", Lo: 8500, Hi: 9499},
				},
				Right:   &ScanNode{Table: parts},
				LeftCol: "part", RightCol: "id",
			},
			Key: "shipmode", Measure: ColExpr{Name: "price"},
		},
		"proj-order-limit": &LimitNode{
			Input: &OrderByNode{
				Input: &ProjectNode{
					Input: &SelectNode{
						Input: &SelectNode{
							Input: &ScanNode{Table: items},
							Pred:  RangePred{Col: "date1", Lo: 8000, Hi: 9999},
						},
						Pred: EqStringPred{Col: "shipmode", Value: "AIR"},
					},
					Cols: []string{"order", "price"},
				},
				Col: "price", Desc: true,
			},
			N: 100,
		},
	}
}

// TestProfiledRunByteIdentical is the observation-only contract:
// RunProfiled must return byte-identical results to Run for every plan
// shape, worker count and pipeline mode.
func TestProfiledRunByteIdentical(t *testing.T) {
	for name, root := range profQueries(t) {
		for _, workers := range []int{1, 4} {
			for _, noPipe := range []bool{false, true} {
				cfg := Config{Opt: core.Options{Parallelism: workers}, NoPipeline: noPipe}
				plan, err := Plan(root, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want, err := plan.Run(nil)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				got, err := plan.RunProfiled(nil)
				if err != nil {
					t.Fatalf("%s profiled: %v", name, err)
				}
				if !reflect.DeepEqual(want.Rel, got.Rel) {
					t.Errorf("%s workers=%d noPipe=%v: profiled result differs from unprofiled",
						name, workers, noPipe)
				}
				if got.Profile == nil {
					t.Fatalf("%s: RunProfiled returned nil Profile", name)
				}
				if want.Profile != nil {
					t.Errorf("%s: Run attached a Profile", name)
				}
			}
		}
	}
}

// TestProfileTreeConsistency pins the structural invariants of the
// stats tree: a root, positive total time, the query's real output
// rows at the root, non-negative traffic everywhere, and InRows
// consistent with the non-phase children feeding each operator.
func TestProfileTreeConsistency(t *testing.T) {
	for name, root := range profQueries(t) {
		for _, noPipe := range []bool{false, true} {
			plan, err := Plan(root, Config{Opt: core.Options{Parallelism: 4}, NoPipeline: noPipe})
			if err != nil {
				t.Fatal(err)
			}
			res, err := plan.RunProfiled(nil)
			if err != nil {
				t.Fatal(err)
			}
			p := res.Profile
			if p.Root == nil {
				t.Fatalf("%s: profile has no root", name)
			}
			if p.TotalMS <= 0 {
				t.Errorf("%s: TotalMS = %v, want > 0", name, p.TotalMS)
			}
			if p.Workers != 4 {
				t.Errorf("%s: Workers = %d, want 4", name, p.Workers)
			}
			var walk func(n *OpStats)
			walk = func(n *OpStats) {
				if n.BytesRead < 0 || n.BytesWritten < 0 {
					t.Errorf("%s: %s has negative traffic %d/%d", name, n.Op, n.BytesRead, n.BytesWritten)
				}
				if n.InRows < 0 || n.OutRows < 0 {
					t.Errorf("%s: %s has negative rows %d/%d", name, n.Op, n.InRows, n.OutRows)
				}
				if n.SelfMS < 0 || n.ActualMS < 0 {
					t.Errorf("%s: %s has negative time", name, n.Op)
				}
				var kidOut int64
				realKids := 0
				for _, k := range n.Kids {
					walk(k)
					if !k.Phase {
						kidOut += k.OutRows
						realKids++
					}
				}
				// Every operator with real children consumes exactly what
				// they produced.
				if realKids > 0 && !n.Phase && n.InRows != kidOut {
					t.Errorf("%s: %s InRows=%d but children produced %d", name, n.Op, n.InRows, kidOut)
				}
			}
			walk(p.Root)
		}
	}
}

// TestProfileAnnotatedExplainAndResiduals: the rendered tree carries
// the actual=/rows=/traffic= annotations and predicted-vs-actual
// ratios, and the residual accumulator receives every costed operator
// kind.
func TestProfileAnnotatedExplainAndResiduals(t *testing.T) {
	root := profQueries(t)["select-agg"]
	plan, err := Plan(root, Config{Opt: core.Options{Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.RunProfiled(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Profile.String()
	for _, want := range []string{"profile for", "actual=", "rows=", "traffic=", "pred "} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	acc := costmodel.NewResiduals(plan.Machine().Name)
	res.Profile.Residuals(acc)
	if len(acc.Kinds()) == 0 {
		t.Fatalf("no residual kinds accumulated from:\n%s", out)
	}
	for _, k := range acc.Kinds() {
		if k.Count <= 0 || k.ActualMS <= 0 || k.PredictedMS <= 0 {
			t.Errorf("degenerate residual for %q: %+v", k.Kind, k)
		}
	}
	if _, err := res.Profile.JSON(); err != nil {
		t.Fatalf("Profile.JSON: %v", err)
	}
}

// TestProfileChromeTraceValid: the trace export is well-formed JSON in
// the Chrome trace event format, with metadata naming every worker
// thread and per-worker morsel spans whose tids stay in range.
func TestProfileChromeTraceValid(t *testing.T) {
	root := profQueries(t)["select-agg"]
	plan, err := Plan(root, Config{Opt: core.Options{Parallelism: 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.RunProfiled(nil)
	if err != nil {
		t.Fatal(err)
	}
	events := res.Profile.TraceEvents(3, "q1")
	raw, err := EncodeChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if back.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", back.DisplayTimeUnit)
	}
	meta, ops, morsels := 0, 0, 0
	for _, e := range back.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			if e.PID != 3 {
				t.Errorf("event %q has pid %d, want 3", e.Name, e.PID)
			}
			if e.Dur < 0 || e.TS < 0 {
				t.Errorf("event %q has negative time", e.Name)
			}
			if e.TID == res.Profile.Workers {
				ops++
			} else if e.TID < res.Profile.Workers {
				morsels++
			} else {
				t.Errorf("event %q on tid %d, beyond the operator track", e.Name, e.TID)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// process_name + one thread_name per worker + the operator track.
	if wantMeta := 1 + res.Profile.Workers + 1; meta != wantMeta {
		t.Errorf("metadata events = %d, want %d", meta, wantMeta)
	}
	if ops == 0 {
		t.Error("no operator events in trace")
	}
	if morsels == 0 {
		t.Error("no per-worker morsel spans in trace")
	}
}

// TestKindOf pins the label → calibration-kind normalization.
func TestKindOf(t *testing.T) {
	cases := map[string]string{
		"Select[scan]":                   "Select[scan]",
		"GroupAggregate[radix bits=10]":  "GroupAggregate[radix]",
		"Join[phash (B=8, P=2)]":         "Join[phash]",
		"Join[shash]":                    "Join[shash]",
		"OrderBy":                        "OrderBy",
		"Pipeline[Select→Agg[radix]]":    "Pipeline[Select→Agg[radix]]",
		"GroupAggregate[hash ~7 groups]": "GroupAggregate[hash]",
	}
	for in, want := range cases {
		if got := costmodel.KindOf(in); got != want {
			t.Errorf("KindOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// fakeOp is a no-op physOp for the hook-overhead gates.
type fakeOp struct{ frag fragment }

func (f *fakeOp) exec(*execCtx) (*fragment, error) { return &f.frag, nil }
func (f *fakeOp) label() string                    { return "fake" }
func (f *fakeOp) detail() string                   { return "" }
func (f *fakeOp) kids() []physOp                   { return nil }
func (f *fakeOp) predicted() costmodel.Breakdown   { return costmodel.Breakdown{} }

// TestProfileHooksDisabledZeroAlloc pins the zero-cost-when-disabled
// contract at the hook level: with profiling off, ctx.exec and the
// span-aware morsel loops must allocate nothing beyond the wrapped
// work itself.
func TestProfileHooksDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation measurement; skipped under the race detector")
	}
	ctx := &execCtx{opt: core.Serial()}
	op := &fakeOp{}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := ctx.exec(op); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("disabled ctx.exec allocates %v/op, want 0", n)
	}
	sink := 0
	morselBody := func(m, lo, hi int) { sink += hi - lo }
	// core.ForMorsels allocates its morsel-bounds closure with or
	// without profiling; the hook must add nothing on top of it.
	base := testing.AllocsPerRun(100, func() {
		core.ForMorsels(1, 1024, morselBody)
	})
	if n := testing.AllocsPerRun(100, func() {
		ctx.forMorsels(1024, morselBody)
	}); n != base {
		t.Errorf("disabled forMorsels allocates %v/op, pre-profiling path %v/op", n, base)
	}
	spanBody := func(w, i int) { sink += i }
	if n := testing.AllocsPerRun(100, func() {
		core.ForEachSpan(1, 4, nil, spanBody)
	}); n != 0 {
		t.Errorf("nil-recorder ForEachSpan allocates %v/op, want 0", n)
	}
	_ = sink
}
