package engine

import (
	"fmt"

	"monetlite/internal/agg"
	"monetlite/internal/core"
)

// Morsel-driven parallel execution: every materializing operator
// splits its input into fixed-size morsels (core.MorselRows) and fans
// them out over the core.Options worker pool carried by the execCtx.
// Two invariants keep results byte-identical to serial execution for
// any Parallelism setting:
//
//   - Merge order is a function of morsel boundaries, never of worker
//     scheduling: per-morsel buffers concatenate (or, for aggregates,
//     partials merge) in morsel index order.
//   - The native path always uses the morsel decomposition when the
//     input spans more than one morsel — Parallelism only sizes the
//     pool that drains the morsels — so serial (Parallelism: 1) and
//     parallel runs compute, e.g., float sums in exactly the same
//     association order.
//
// Instrumented runs (sim != nil) never parallelize: the memory
// simulator models a single CPU and is documented single-goroutine, so
// execCtx.par reports 1 and every operator takes its serial loop.

// par resolves the degree of parallelism for an operator stage over n
// rows: 1 under a simulator, otherwise the configured worker bound
// clamped by the morsel count (core.Options.WorkersFor).
func (ctx *execCtx) par(n int) int {
	if ctx.sim != nil {
		return 1
	}
	return ctx.opt.WorkersFor(n)
}

// planPar is the plan-time counterpart of execCtx.par, computed from
// the estimated cardinality for the EXPLAIN annotation (native runs;
// instrumented runs are always serial).
func planPar(cfg Config, rows float64) int {
	n := int(rows)
	if float64(n) < rows {
		n++
	}
	return cfg.Opt.WorkersFor(n)
}

// forMorsels runs body(m, lo, hi) for every morsel of an n-row input
// on the worker pool. body must write only morsel-m-local state. A
// profiled run (ctx.spans != nil) records one span per morsel; the
// decomposition and any merge order the caller builds from it are
// identical either way.
func (ctx *execCtx) forMorsels(n int, body func(m, lo, hi int)) {
	if ctx.spans == nil {
		core.ForMorsels(ctx.par(n), n, body)
		return
	}
	core.ForEachSpan(ctx.par(n), core.MorselsOf(n), ctx.spans, func(_, m int) {
		lo, hi := core.MorselBounds(m, n)
		body(m, lo, hi)
	})
}

// forMorselsErr is forMorsels for fallible bodies: every morsel runs,
// and the first error in morsel order is returned (deterministic
// regardless of scheduling).
func (ctx *execCtx) forMorselsErr(n int, body func(m, lo, hi int) error) error {
	nm := core.MorselsOf(n)
	if ctx.par(n) <= 1 && ctx.spans == nil {
		// Inline fast path: stop at the first error like a plain loop.
		for m := 0; m < nm; m++ {
			lo, hi := core.MorselBounds(m, n)
			if err := body(m, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, nm)
	core.ForEachSpan(ctx.par(n), nm, ctx.spans, func(_, m int) {
		lo, hi := core.MorselBounds(m, n)
		errs[m] = body(m, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pipeArena is one worker's reusable scratch for pipeline execution:
// the position vector passed between fused stages and the per-operand
// gather buffers of an AggFeed sink. A worker reuses its arena across
// every morsel it drains — per-morsel allocation was the materializing
// path's overhead the pipelines exist to avoid.
type pipeArena struct {
	pos []int32
	ops [][]float64
}

// ensure grows the arena to the pipeline's vector size and operand
// count (no-ops once warm).
func (a *pipeArena) ensure(vecRows, nops int) {
	if cap(a.pos) < vecRows {
		a.pos = make([]int32, 0, vecRows)
	}
	for len(a.ops) < nops {
		a.ops = append(a.ops, nil)
	}
	for i := 0; i < nops; i++ {
		if cap(a.ops[i]) < vecRows {
			a.ops[i] = make([]float64, 0, vecRows)
		}
	}
}

// arena returns worker w's scratch arena, creating it on first use.
// Worker ids are exclusive within any one fan-out, and operators run
// one after another, so slot w is never touched concurrently.
func (ctx *execCtx) arena(w int) *pipeArena {
	if w >= len(ctx.arenas) {
		// Defensive: a fan-out wider than the pre-sized pool (cannot
		// happen via par()) gets a throwaway arena rather than a panic.
		return &pipeArena{}
	}
	if ctx.arenas[w] == nil {
		ctx.arenas[w] = &pipeArena{}
	}
	return ctx.arenas[w]
}

// prefixSum turns per-morsel counts into start offsets, returning the
// total.
func prefixSum(counts []int) (starts []int, total int) {
	starts = make([]int, len(counts))
	for m, c := range counts {
		starts[m] = total
		total += c
	}
	return starts, total
}

// radixGroupNative is the native radix-partitioned grouping path:
// cluster the (key, value) feed on the low `bits` key bits over the
// worker pool, then aggregate every partition independently — each
// worker drains contiguous partition ranges with one reused
// cache-resident PartitionAggregator — and concatenate the per-range
// results in partition order. There is no merge step: partitions own
// disjoint key sets by construction. The output is byte-identical at
// any worker count because the cluster kernel is worker-independent,
// tuples keep input order within a partition (stable passes), and
// task ranges are contiguous, so concatenating task results in task
// order is concatenating partitions in partition order.
func radixGroupNative(ctx *execCtx, keys []int64, vals []float64, bits, passes int) (*agg.GroupResult, error) {
	var clPh *OpStats
	if ctx.prof != nil {
		clPh = ctx.prof.beginPhase("cluster[radix]", fmt.Sprintf("bits=%d passes=%d", bits, passes))
	}
	ck, cv, offs, err := core.RadixClusterKV(keys, vals, bits, passes, ctx.opt)
	if clPh != nil {
		// Every pass reads and rewrites the 16-byte (key, value) pairs —
		// the §3.4.2 cluster-pass traffic, at actual cardinality.
		moved := int64(len(keys)) * 16 * int64(passes)
		parts := int64(0)
		if err == nil {
			parts = int64(len(offs) - 1)
		}
		ctx.prof.endPhase(clPh, parts, moved, moved)
	}
	if err != nil {
		return nil, err
	}
	nparts := len(offs) - 1
	workers := ctx.opt.Workers()
	if workers > nparts {
		workers = nparts
	}
	if workers < 1 {
		workers = 1
	}
	tasks := aggPartitionTasks(offs, workers)
	var agPh *OpStats
	if ctx.prof != nil {
		agPh = ctx.prof.beginPhase("aggregate[partitions]", fmt.Sprintf("%d partitions, %d tasks", nparts, len(tasks)))
	}
	results := make([]agg.GroupResult, len(tasks))
	aggs := make([]agg.PartitionAggregator, workers)
	core.ForEachSpan(workers, len(tasks), ctx.spans, func(w, t int) {
		lo, hi := tasks[t][0], tasks[t][1]
		res := &results[t]
		// At worst every tuple of the range is its own group.
		res.Reserve(offs[hi] - offs[lo])
		pa := &aggs[w]
		for p := lo; p < hi; p++ {
			pa.AggregateInto(res, ck[offs[p]:offs[p+1]], cv[offs[p]:offs[p+1]])
		}
	})
	total := 0
	for t := range results {
		total += results[t].Groups()
	}
	if agPh != nil {
		ctx.prof.endPhase(agPh, int64(total), int64(len(ck))*16, int64(total)*40)
	}
	if len(tasks) == 1 {
		return &results[0], nil
	}
	out := &agg.GroupResult{
		Key:   make([]int64, 0, total),
		Count: make([]int64, 0, total),
		Sum:   make([]float64, 0, total),
		Min:   make([]float64, 0, total),
		Max:   make([]float64, 0, total),
	}
	for t := range results {
		out.Key = append(out.Key, results[t].Key...)
		out.Count = append(out.Count, results[t].Count...)
		out.Sum = append(out.Sum, results[t].Sum...)
		out.Min = append(out.Min, results[t].Min...)
		out.Max = append(out.Max, results[t].Max...)
	}
	return out, nil
}

// aggPartitionTasks splits the partition index range [0, len(offsets)-1)
// into contiguous tasks of roughly equal tuple count (partitions can
// skew, so equal partition counts would balance badly), a few tasks
// per worker so stragglers even out. Task boundaries influence only
// scheduling, never output order.
func aggPartitionTasks(offsets []int, workers int) [][2]int {
	nparts := len(offsets) - 1
	total := offsets[nparts]
	grain := total/(workers*4) + 1
	tasks := make([][2]int, 0, workers*4)
	lo := 0
	for p := 0; p < nparts; p++ {
		if offsets[p+1]-offsets[lo] >= grain {
			tasks = append(tasks, [2]int{lo, p + 1})
			lo = p + 1
		}
	}
	if lo < nparts {
		tasks = append(tasks, [2]int{lo, nparts})
	}
	if len(tasks) == 0 { // zero partitions cannot happen (bits ≥ 1), but stay safe
		tasks = append(tasks, [2]int{0, nparts})
	}
	return tasks
}

// mergeGroupPartials combines per-morsel grouping partials by group
// key, in morsel index order: counts and sums accumulate, min/max
// fold. Because the iteration order is (morsel, partial row) — both
// deterministic — the merged sums associate identically however many
// workers computed the partials.
func mergeGroupPartials(partials []*agg.GroupResult) *agg.GroupResult {
	slots := make(map[int64]int)
	out := &agg.GroupResult{}
	for _, p := range partials {
		for i, k := range p.Key {
			s, ok := slots[k]
			if !ok {
				s = len(out.Key)
				slots[k] = s
				out.Key = append(out.Key, k)
				out.Count = append(out.Count, p.Count[i])
				out.Sum = append(out.Sum, p.Sum[i])
				out.Min = append(out.Min, p.Min[i])
				out.Max = append(out.Max, p.Max[i])
				continue
			}
			out.Count[s] += p.Count[i]
			out.Sum[s] += p.Sum[i]
			if p.Min[i] < out.Min[s] {
				out.Min[s] = p.Min[i]
			}
			if p.Max[i] > out.Max[s] {
				out.Max[s] = p.Max[i]
			}
		}
	}
	return out
}
