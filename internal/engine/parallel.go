package engine

import (
	"monetlite/internal/agg"
	"monetlite/internal/core"
)

// Morsel-driven parallel execution: every materializing operator
// splits its input into fixed-size morsels (core.MorselRows) and fans
// them out over the core.Options worker pool carried by the execCtx.
// Two invariants keep results byte-identical to serial execution for
// any Parallelism setting:
//
//   - Merge order is a function of morsel boundaries, never of worker
//     scheduling: per-morsel buffers concatenate (or, for aggregates,
//     partials merge) in morsel index order.
//   - The native path always uses the morsel decomposition when the
//     input spans more than one morsel — Parallelism only sizes the
//     pool that drains the morsels — so serial (Parallelism: 1) and
//     parallel runs compute, e.g., float sums in exactly the same
//     association order.
//
// Instrumented runs (sim != nil) never parallelize: the memory
// simulator models a single CPU and is documented single-goroutine, so
// execCtx.par reports 1 and every operator takes its serial loop.

// par resolves the degree of parallelism for an operator stage over n
// rows: 1 under a simulator, otherwise the configured worker bound
// clamped by the morsel count (core.Options.WorkersFor).
func (ctx *execCtx) par(n int) int {
	if ctx.sim != nil {
		return 1
	}
	return ctx.opt.WorkersFor(n)
}

// planPar is the plan-time counterpart of execCtx.par, computed from
// the estimated cardinality for the EXPLAIN annotation (native runs;
// instrumented runs are always serial).
func planPar(cfg Config, rows float64) int {
	n := int(rows)
	if float64(n) < rows {
		n++
	}
	return cfg.Opt.WorkersFor(n)
}

// forMorsels runs body(m, lo, hi) for every morsel of an n-row input
// on the worker pool. body must write only morsel-m-local state.
func (ctx *execCtx) forMorsels(n int, body func(m, lo, hi int)) {
	core.ForMorsels(ctx.par(n), n, body)
}

// forMorselsErr is forMorsels for fallible bodies: every morsel runs,
// and the first error in morsel order is returned (deterministic
// regardless of scheduling).
func (ctx *execCtx) forMorselsErr(n int, body func(m, lo, hi int) error) error {
	nm := core.MorselsOf(n)
	if ctx.par(n) <= 1 {
		// Inline fast path: stop at the first error like a plain loop.
		for m := 0; m < nm; m++ {
			lo, hi := core.MorselBounds(m, n)
			if err := body(m, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, nm)
	core.ForMorsels(ctx.par(n), n, func(m, lo, hi int) {
		errs[m] = body(m, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pipeArena is one worker's reusable scratch for pipeline execution:
// the position vector passed between fused stages and the per-operand
// gather buffers of an AggFeed sink. A worker reuses its arena across
// every morsel it drains — per-morsel allocation was the materializing
// path's overhead the pipelines exist to avoid.
type pipeArena struct {
	pos []int32
	ops [][]float64
}

// ensure grows the arena to the pipeline's vector size and operand
// count (no-ops once warm).
func (a *pipeArena) ensure(vecRows, nops int) {
	if cap(a.pos) < vecRows {
		a.pos = make([]int32, 0, vecRows)
	}
	for len(a.ops) < nops {
		a.ops = append(a.ops, nil)
	}
	for i := 0; i < nops; i++ {
		if cap(a.ops[i]) < vecRows {
			a.ops[i] = make([]float64, 0, vecRows)
		}
	}
}

// arena returns worker w's scratch arena, creating it on first use.
// Worker ids are exclusive within any one fan-out, and operators run
// one after another, so slot w is never touched concurrently.
func (ctx *execCtx) arena(w int) *pipeArena {
	if w >= len(ctx.arenas) {
		// Defensive: a fan-out wider than the pre-sized pool (cannot
		// happen via par()) gets a throwaway arena rather than a panic.
		return &pipeArena{}
	}
	if ctx.arenas[w] == nil {
		ctx.arenas[w] = &pipeArena{}
	}
	return ctx.arenas[w]
}

// prefixSum turns per-morsel counts into start offsets, returning the
// total.
func prefixSum(counts []int) (starts []int, total int) {
	starts = make([]int, len(counts))
	for m, c := range counts {
		starts[m] = total
		total += c
	}
	return starts, total
}

// mergeGroupPartials combines per-morsel grouping partials by group
// key, in morsel index order: counts and sums accumulate, min/max
// fold. Because the iteration order is (morsel, partial row) — both
// deterministic — the merged sums associate identically however many
// workers computed the partials.
func mergeGroupPartials(partials []*agg.GroupResult) *agg.GroupResult {
	slots := make(map[int64]int)
	out := &agg.GroupResult{}
	for _, p := range partials {
		for i, k := range p.Key {
			s, ok := slots[k]
			if !ok {
				s = len(out.Key)
				slots[k] = s
				out.Key = append(out.Key, k)
				out.Count = append(out.Count, p.Count[i])
				out.Sum = append(out.Sum, p.Sum[i])
				out.Min = append(out.Min, p.Min[i])
				out.Max = append(out.Max, p.Max[i])
				continue
			}
			out.Count[s] += p.Count[i]
			out.Sum[s] += p.Sum[i]
			if p.Min[i] < out.Min[s] {
				out.Min[s] = p.Min[i]
			}
			if p.Max[i] > out.Max[s] {
				out.Max[s] = p.Max[i]
			}
		}
	}
	return out
}
