package engine

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/dsm"
)

// Shared column gathers: every engine operator that materializes a
// column through a binding (join-column BATs, group keys, measure
// operands) funnels through these. Like the dsm select fast paths, the
// native (sim == nil) loops carry no per-element simulator plumbing —
// no Touch interface calls, no per-row error checks — read the typed
// slices directly, and fan out over the worker pool in morsels (each
// morsel fills its own disjoint output range, so the result is
// byte-identical to a serial fill); instrumented loops stay serial and
// mirror every access.

// positions resolves the binding's row → storage-position mapping
// once, morsel-parallel on the native path. A nil result means the
// identity mapping (unfiltered binding).
func (b binding) positions(ctx *execCtx) ([]int, error) {
	if b.oids == nil {
		return nil, nil
	}
	out := make([]int, len(b.oids))
	err := ctx.forMorselsErr(len(b.oids), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			p, ok := b.table.Head.Position(b.oids[i])
			if !ok {
				return fmt.Errorf("engine: OID %d outside table %s", b.oids[i], b.table.Schema.Name)
			}
			out[i] = p
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// gatherInt64s materializes a numeric column's widened values through
// the binding.
func gatherInt64s(ctx *execCtx, b binding, c *dsm.Column) ([]int64, error) {
	pos, err := b.positions(ctx)
	if err != nil {
		return nil, err
	}
	n := b.rows()
	out := make([]int64, n)
	if ctx.sim == nil {
		ctx.forMorsels(n, func(_, lo, hi int) {
			switch v := c.Vec.(type) {
			case *bat.I8Vec:
				fillInts(out, v.V, pos, lo, hi)
			case *bat.I16Vec:
				fillInts(out, v.V, pos, lo, hi)
			case *bat.I32Vec:
				fillInts(out, v.V, pos, lo, hi)
			case *bat.I64Vec:
				fillInts(out, v.V, pos, lo, hi)
			default:
				for i := lo; i < hi; i++ {
					out[i] = c.Vec.Int(at(pos, i))
				}
			}
		})
		return out, nil
	}
	c.Vec.Bind(ctx.sim)
	for i := 0; i < n; i++ {
		p := at(pos, i)
		c.Vec.Touch(ctx.sim, p)
		out[i] = c.Vec.Int(p)
	}
	return out, nil
}

// gatherCodes materializes an encoded column's unsigned dictionary
// codes through the binding.
func gatherCodes(ctx *execCtx, b binding, c *dsm.Column) ([]int64, error) {
	out, err := gatherInt64s(ctx, b, c)
	if err != nil {
		return nil, err
	}
	// Undo the signed storage of the 1-/2-byte code vectors.
	wrap := dsm.CodeWrap(c)
	if wrap != 0 {
		ctx.forMorsels(len(out), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if out[i] < 0 {
					out[i] += wrap
				}
			}
		})
	}
	return out, nil
}

// gatherFloat64s materializes a numeric column as floats through the
// binding (integer and date columns widen).
func gatherFloat64s(ctx *execCtx, b binding, c *dsm.Column) ([]float64, error) {
	pos, err := b.positions(ctx)
	if err != nil {
		return nil, err
	}
	n := b.rows()
	out := make([]float64, n)
	if ctx.sim == nil {
		ctx.forMorsels(n, func(_, lo, hi int) {
			switch v := c.Vec.(type) {
			case *bat.F64Vec:
				if pos == nil {
					copy(out[lo:hi], v.V[lo:hi])
				} else {
					for i := lo; i < hi; i++ {
						out[i] = v.V[pos[i]]
					}
				}
			case *bat.I8Vec:
				fillFloats(out, v.V, pos, lo, hi)
			case *bat.I16Vec:
				fillFloats(out, v.V, pos, lo, hi)
			case *bat.I32Vec:
				fillFloats(out, v.V, pos, lo, hi)
			case *bat.I64Vec:
				fillFloats(out, v.V, pos, lo, hi)
			default:
				for i := lo; i < hi; i++ {
					out[i] = float64(c.Vec.Int(at(pos, i)))
				}
			}
		})
		return out, nil
	}
	c.Vec.Bind(ctx.sim)
	fv, isFloat := c.Vec.(*bat.F64Vec)
	for i := 0; i < n; i++ {
		p := at(pos, i)
		c.Vec.Touch(ctx.sim, p)
		if isFloat {
			out[i] = fv.Float(p)
		} else {
			out[i] = float64(c.Vec.Int(p))
		}
	}
	return out, nil
}

// at maps row i through an optional position list.
func at(pos []int, i int) int {
	if pos == nil {
		return i
	}
	return pos[i]
}

// fillInts widens rows [lo, hi) of one typed slice through an optional
// position list.
func fillInts[T int8 | int16 | int32 | int64](dst []int64, src []T, pos []int, lo, hi int) {
	if pos == nil {
		for i := lo; i < hi; i++ {
			dst[i] = int64(src[i])
		}
		return
	}
	for i := lo; i < hi; i++ {
		dst[i] = int64(src[pos[i]])
	}
}

// fillFloats converts rows [lo, hi) of one typed integer slice through
// an optional position list.
func fillFloats[T int8 | int16 | int32 | int64](dst []float64, src []T, pos []int, lo, hi int) {
	if pos == nil {
		for i := lo; i < hi; i++ {
			dst[i] = float64(src[i])
		}
		return
	}
	for i := lo; i < hi; i++ {
		dst[i] = float64(src[pos[i]])
	}
}
