package engine

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/dsm"
	"monetlite/internal/memsim"
)

// Shared column gathers: every engine operator that materializes a
// column through a binding (join-column BATs, group keys, measure
// operands) funnels through these. Like the dsm select fast paths, the
// native (sim == nil) loops carry no per-element simulator plumbing —
// no Touch interface calls, no per-row error checks — and read the
// typed slices directly; instrumented loops mirror every access.

// positions resolves the binding's row → storage-position mapping
// once. A nil result means the identity mapping (unfiltered binding).
func (b binding) positions() ([]int, error) {
	if b.oids == nil {
		return nil, nil
	}
	out := make([]int, len(b.oids))
	for i, o := range b.oids {
		p, ok := b.table.Head.Position(o)
		if !ok {
			return nil, fmt.Errorf("engine: OID %d outside table %s", o, b.table.Schema.Name)
		}
		out[i] = p
	}
	return out, nil
}

// gatherInt64s materializes a numeric column's widened values through
// the binding.
func gatherInt64s(sim *memsim.Sim, b binding, c *dsm.Column) ([]int64, error) {
	pos, err := b.positions()
	if err != nil {
		return nil, err
	}
	n := b.rows()
	out := make([]int64, n)
	if sim == nil {
		switch v := c.Vec.(type) {
		case *bat.I8Vec:
			fillInts(out, v.V, pos)
		case *bat.I16Vec:
			fillInts(out, v.V, pos)
		case *bat.I32Vec:
			fillInts(out, v.V, pos)
		case *bat.I64Vec:
			fillInts(out, v.V, pos)
		default:
			for i := 0; i < n; i++ {
				out[i] = c.Vec.Int(at(pos, i))
			}
		}
		return out, nil
	}
	c.Vec.Bind(sim)
	for i := 0; i < n; i++ {
		p := at(pos, i)
		c.Vec.Touch(sim, p)
		out[i] = c.Vec.Int(p)
	}
	return out, nil
}

// gatherCodes materializes an encoded column's unsigned dictionary
// codes through the binding.
func gatherCodes(sim *memsim.Sim, b binding, c *dsm.Column) ([]int64, error) {
	out, err := gatherInt64s(sim, b, c)
	if err != nil {
		return nil, err
	}
	// Undo the signed storage of the 1-/2-byte code vectors.
	var wrap int64
	switch c.Vec.Type() {
	case bat.TI8:
		wrap = 1 << 8
	case bat.TI16:
		wrap = 1 << 16
	}
	if wrap != 0 {
		for i, v := range out {
			if v < 0 {
				out[i] = v + wrap
			}
		}
	}
	return out, nil
}

// gatherFloat64s materializes a numeric column as floats through the
// binding (integer and date columns widen).
func gatherFloat64s(sim *memsim.Sim, b binding, c *dsm.Column) ([]float64, error) {
	pos, err := b.positions()
	if err != nil {
		return nil, err
	}
	n := b.rows()
	out := make([]float64, n)
	if sim == nil {
		switch v := c.Vec.(type) {
		case *bat.F64Vec:
			if pos == nil {
				copy(out, v.V)
			} else {
				for i, p := range pos {
					out[i] = v.V[p]
				}
			}
		case *bat.I8Vec:
			fillFloats(out, v.V, pos)
		case *bat.I16Vec:
			fillFloats(out, v.V, pos)
		case *bat.I32Vec:
			fillFloats(out, v.V, pos)
		case *bat.I64Vec:
			fillFloats(out, v.V, pos)
		default:
			for i := 0; i < n; i++ {
				out[i] = float64(c.Vec.Int(at(pos, i)))
			}
		}
		return out, nil
	}
	c.Vec.Bind(sim)
	fv, isFloat := c.Vec.(*bat.F64Vec)
	for i := 0; i < n; i++ {
		p := at(pos, i)
		c.Vec.Touch(sim, p)
		if isFloat {
			out[i] = fv.Float(p)
		} else {
			out[i] = float64(c.Vec.Int(p))
		}
	}
	return out, nil
}

// at maps row i through an optional position list.
func at(pos []int, i int) int {
	if pos == nil {
		return i
	}
	return pos[i]
}

// fillInts widens one typed slice through an optional position list.
func fillInts[T int8 | int16 | int32 | int64](dst []int64, src []T, pos []int) {
	if pos == nil {
		for i := range dst {
			dst[i] = int64(src[i])
		}
		return
	}
	for i, p := range pos {
		dst[i] = int64(src[p])
	}
}

// fillFloats converts one typed integer slice through an optional
// position list.
func fillFloats[T int8 | int16 | int32 | int64](dst []float64, src []T, pos []int) {
	if pos == nil {
		for i := range dst {
			dst[i] = float64(src[i])
		}
		return
	}
	for i, p := range pos {
		dst[i] = float64(src[p])
	}
}
