package engine

import (
	"fmt"
	"slices"
	"sync"

	"monetlite/internal/agg"
	"monetlite/internal/bat"
	"monetlite/internal/core"
	"monetlite/internal/costmodel"
	"monetlite/internal/dsm"
	"monetlite/internal/memsim"
	"monetlite/internal/sel"
)

// ---------------------------------------------------------------------
// Intermediates: the MIL execution model materializes one BAT-algebra
// operator at a time. Before any projection or aggregation, the
// intermediate is table-backed: a set of aligned (table, OID-list)
// bindings — after a join, one binding per joined table, all the same
// length. Afterwards it is a materialized relation (Rel).

// binding is one table's contribution to a table-backed intermediate.
// A nil OID list means "all rows in storage order".
type binding struct {
	table *dsm.Table
	oids  []bat.Oid
}

// rows returns the binding's cardinality.
func (b binding) rows() int {
	if b.oids != nil {
		return len(b.oids)
	}
	return b.table.N
}

// pos returns the storage position of row i.
func (b binding) pos(i int) (int, error) {
	if b.oids == nil {
		return i, nil
	}
	p, ok := b.table.Head.Position(b.oids[i])
	if !ok {
		return 0, fmt.Errorf("engine: OID %d outside table %s", b.oids[i], b.table.Schema.Name)
	}
	return p, nil
}

// rowOid returns the table OID of row i.
func (b binding) rowOid(i int) bat.Oid {
	if b.oids == nil {
		return b.table.Head.Seq + bat.Oid(i)
	}
	return b.oids[i]
}

// Kind is the value kind of a materialized column.
type Kind uint8

// Materialized column kinds.
const (
	KInt Kind = iota
	KFloat
	KString
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KString:
		return "string"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// RelCol is one materialized column: exactly one of the value slices
// is populated, matching Kind.
type RelCol struct {
	Name   string
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
}

// Rel is a fully materialized result relation.
type Rel struct {
	Cols []RelCol
	N    int
}

// Col returns the index of a named column, or -1.
func (r *Rel) Col(name string) int {
	for i := range r.Cols {
		if r.Cols[i].Name == name {
			return i
		}
	}
	return -1
}

// fragment is the intermediate flowing between physical operators.
type fragment struct {
	binds []binding // table-backed form
	rel   *Rel      // materialized form (binds is nil)
}

func (f *fragment) rows() int {
	if f.rel != nil {
		return f.rel.N
	}
	if len(f.binds) == 0 {
		return 0
	}
	return f.binds[0].rows()
}

// execCtx carries the run-wide execution state.
type execCtx struct {
	sim     *memsim.Sim
	machine memsim.Machine
	model   *costmodel.Model
	opt     core.Options
	arenas  []*pipeArena // per-worker pipeline scratch, reused across morsels

	// Adaptive re-optimization (maybeReplan): when observed cardinality
	// at a breaker boundary diverges from the plan-time estimate by
	// more than replanFactor, the remaining choice is re-costed with
	// the observed count. 0 disables (Config.NoReplan, simulated runs).
	// forceGroup carries Config.ForceGroup so a replan respects the
	// same override the planner did.
	replanFactor float64
	forceGroup   string

	// Profiling hooks, both nil unless the run was started by
	// RunProfiled: prof collects the per-operator stats tree, spans
	// records per-worker work-unit spans. Every touch is guarded by a
	// nil check so the disabled path stays the exact pre-profiling
	// code (zero extra allocations).
	prof  *Profile
	spans *core.SpanRecorder
}

// physOp is one physical operator of a lowered plan.
type physOp interface {
	exec(ctx *execCtx) (*fragment, error)
	// label is the operator name with its chosen physical algorithm,
	// e.g. "Select[csstree]".
	label() string
	// detail describes the operator's arguments and estimates.
	detail() string
	kids() []physOp
	// predicted is this operator's own cost-model prediction (zero for
	// operators the model does not cover).
	predicted() costmodel.Breakdown
}

// ---------------------------------------------------------------------
// Scan.

type scanOp struct {
	t *dsm.Table
}

func (o *scanOp) exec(*execCtx) (*fragment, error) {
	return &fragment{binds: []binding{{table: o.t}}}, nil
}

func (o *scanOp) label() string                  { return "Scan" }
func (o *scanOp) detail() string                 { return fmt.Sprintf("%s (%d rows)", o.t.Schema.Name, o.t.N) }
func (o *scanOp) kids() []physOp                 { return nil }
func (o *scanOp) predicted() costmodel.Breakdown { return costmodel.Breakdown{} }

// ---------------------------------------------------------------------
// Select: scan-select access path.

type selectScanOp struct {
	in   physOp
	col  *dsm.Column
	pred Predicate
	est  float64 // estimated selected fraction
	par  int     // planned native degree of parallelism
	cost costmodel.Breakdown
}

func (o *selectScanOp) exec(ctx *execCtx) (*fragment, error) {
	in, err := ctx.exec(o.in)
	if err != nil {
		return nil, err
	}
	b := in.binds[0]
	oids, err := scanSelect(ctx, b.table, o.pred)
	if err != nil {
		return nil, err
	}
	return &fragment{binds: []binding{{table: b.table, oids: nonNil(oids)}}}, nil
}

// nonNil normalizes an empty selection result: a nil OID list in a
// binding means "all rows", so selections must never produce one.
func nonNil(oids []bat.Oid) []bat.Oid {
	if oids == nil {
		return []bat.Oid{}
	}
	return oids
}

func (o *selectScanOp) label() string { return "Select[scan]" }
func (o *selectScanOp) detail() string {
	return fmt.Sprintf("%s  sel~%.2f%%  par=%d", o.pred, o.est*100, o.par)
}
func (o *selectScanOp) kids() []physOp                 { return []physOp{o.in} }
func (o *selectScanOp) predicted() costmodel.Breakdown { return o.cost }

// scanSelect runs a full-column scan select over a base table column
// on the context's execution engine (morsel-parallel when native).
func scanSelect(ctx *execCtx, t *dsm.Table, pred Predicate) ([]bat.Oid, error) {
	switch p := pred.(type) {
	case RangePred:
		return t.SelectRangeOpts(ctx.sim, p.Col, p.Lo, p.Hi, ctx.opt)
	case EqStringPred:
		return t.SelectStringOpts(ctx.sim, p.Col, p.Value, ctx.opt)
	}
	return nil, fmt.Errorf("engine: unsupported predicate %T", pred)
}

// ---------------------------------------------------------------------
// Select: CSS-tree access path (§3.2, [Ron98]).

type selectCSSOp struct {
	in   physOp
	col  *dsm.Column
	pred RangePred
	est  float64
	cost costmodel.Breakdown
}

func (o *selectCSSOp) exec(ctx *execCtx) (*fragment, error) {
	in, err := ctx.exec(o.in)
	if err != nil {
		return nil, err
	}
	b := in.binds[0]
	// A range entirely outside the int32 domain (or inverted) matches
	// nothing; clamping alone would saturate the bounds onto real
	// MinInt32/MaxInt32 values.
	if o.pred.Lo > o.pred.Hi || o.pred.Lo > 1<<31-1 || o.pred.Hi < -1<<31 {
		return &fragment{binds: []binding{{table: b.table, oids: []bat.Oid{}}}}, nil
	}
	tree, err := cssTreeFor(ctx.sim, o.col)
	if err != nil {
		return nil, err
	}
	lo, hi := clampI32(o.pred.Lo), clampI32(o.pred.Hi)
	oids := tree.RangeSelect(ctx.sim, lo, hi)
	// The tree returns OIDs in value order; restore storage order so the
	// result is byte-identical to the scan access path.
	slices.Sort(oids)
	return &fragment{binds: []binding{{table: b.table, oids: nonNil(oids)}}}, nil
}

func (o *selectCSSOp) label() string { return "Select[csstree]" }
func (o *selectCSSOp) detail() string {
	return fmt.Sprintf("%s  sel~%.2f%%", o.pred, o.est*100)
}
func (o *selectCSSOp) kids() []physOp                 { return []physOp{o.in} }
func (o *selectCSSOp) predicted() costmodel.Breakdown { return o.cost }

func clampI32(v int64) int32 {
	if v < -1<<31 {
		return -1 << 31
	}
	if v > 1<<31-1 {
		return 1<<31 - 1
	}
	return int32(v)
}

// cssIndexes is a column's cached CSS-trees, living on the column
// itself (immutable; freed with the table). The native tree is shared
// by all uninstrumented runs. The instrumented slot holds the tree of
// the most recent sim only — a tree's simulated addresses belong to
// the sim that allocated them, and a single slot keeps harnesses that
// churn through fresh sims from pinning every dead simulator. The
// first instrumented use per sim charges the build to that sim (the
// index-creation cost); later runs on the same sim probe the amortized
// index, which is what the planner's cssSelectCost assumes.
type cssIndexes struct {
	mu      sync.Mutex
	native  *sel.CSSTree
	sim     *memsim.Sim
	simTree *sel.CSSTree
}

// cssTreeFor returns the CSS-tree over a column for the given sim.
func cssTreeFor(sim *memsim.Sim, c *dsm.Column) (*sel.CSSTree, error) {
	v, err := c.IndexCache(func() (any, error) { return &cssIndexes{}, nil })
	if err != nil {
		return nil, err
	}
	ix, ok := v.(*cssIndexes)
	if !ok {
		return nil, fmt.Errorf("engine: column %q has a foreign cached index %T", c.Def.Name, v)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if sim == nil && ix.native != nil {
		return ix.native, nil
	}
	if sim != nil && ix.sim == sim {
		return ix.simTree, nil
	}
	vals, err := columnI32(c)
	if err != nil {
		return nil, err
	}
	t := sel.BuildCSSTree(sim, sel.NewColumn(vals))
	if sim == nil {
		ix.native = t
	} else {
		ix.sim, ix.simTree = sim, t
	}
	return t, nil
}

// columnI32 copies an integer column into the int32 domain the sel
// package indexes.
func columnI32(c *dsm.Column) ([]int32, error) {
	n := c.Vec.Len()
	out := make([]int32, n)
	switch v := c.Vec.(type) {
	case *bat.I8Vec:
		for i, x := range v.V {
			out[i] = int32(x)
		}
	case *bat.I16Vec:
		for i, x := range v.V {
			out[i] = int32(x)
		}
	case *bat.I32Vec:
		copy(out, v.V)
	default:
		return nil, fmt.Errorf("engine: column type %v not int32-indexable", c.Vec.Type())
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Select: refilter (a predicate above an already-filtered or joined
// intermediate — a positional gather plus test).

type refilterOp struct {
	in      physOp
	bindIdx int
	col     *dsm.Column
	pred    Predicate
	est     float64
	par     int // planned native degree of parallelism
	cost    costmodel.Breakdown
}

func (o *refilterOp) exec(ctx *execCtx) (*fragment, error) {
	in, err := ctx.exec(o.in)
	if err != nil {
		return nil, err
	}
	b := in.binds[o.bindIdx]
	n := b.rows()

	// Evaluate the predicate into per-morsel buffers of kept row
	// indices (native runs test morsels on the worker pool; the morsel
	// decomposition itself is worker-count-independent, so any
	// Parallelism produces the same buffers).
	kept, err := o.refilterKeep(ctx, b, n)
	if err != nil {
		return nil, err
	}
	if ctx.sim != nil {
		ctx.sim.AddCPU(n, ctx.machine.Cost.WScanBUN/4)
	}

	// Prefix-sum the per-morsel match counts, then every binding's OID
	// list fills in parallel: morsel m writes rows [starts[m], ...) —
	// disjoint ranges concatenating in morsel order, byte-identical to
	// a serial rewrite.
	counts := make([]int, len(kept))
	for m, k := range kept {
		counts[m] = len(k)
	}
	starts, total := prefixSum(counts)
	out := &fragment{binds: make([]binding, len(in.binds))}
	for bi, ib := range in.binds {
		oids := make([]bat.Oid, total)
		ctx.forMorsels(n, func(m, _, _ int) {
			at := starts[m]
			for _, r := range kept[m] {
				oids[at] = ib.rowOid(int(r))
				at++
			}
		})
		out.binds[bi] = binding{table: ib.table, oids: oids}
	}
	return out, nil
}

// refilterKeep tests the refilter predicate over the binding, morsel
// by morsel, returning each morsel's kept row indices in row order.
func (o *refilterOp) refilterKeep(ctx *execCtx, b binding, n int) ([][]int32, error) {
	c := o.col
	kept := make([][]int32, core.MorselsOf(n))
	testRange := func(vals []int64, lo, hi int64) {
		ctx.forMorsels(n, func(m, from, to int) {
			var local []int32
			for i := from; i < to; i++ {
				if vals[i] >= lo && vals[i] <= hi {
					local = append(local, int32(i))
				}
			}
			kept[m] = local
		})
	}
	switch p := o.pred.(type) {
	case RangePred:
		vals, err := gatherInt64s(ctx, b, c)
		if err != nil {
			return nil, err
		}
		testRange(vals, p.Lo, p.Hi)
	case EqStringPred:
		switch {
		case c.Enc != nil:
			code, ok := c.Enc.Code(p.Value)
			if !ok {
				break // value outside dictionary: nothing matches
			}
			codes, err := gatherCodes(ctx, b, c)
			if err != nil {
				return nil, err
			}
			testRange(codes, code, code)
		default:
			sv, ok := c.Vec.(*bat.StrVec)
			if !ok {
				return nil, fmt.Errorf("engine: column %q is not a string column", p.Col)
			}
			sv.Bind(ctx.sim)
			err := ctx.forMorselsErr(n, func(m, from, to int) error {
				var local []int32
				for i := from; i < to; i++ {
					pos, err := b.pos(i)
					if err != nil {
						return err
					}
					sv.Touch(ctx.sim, pos)
					if sv.Str(pos) == p.Value {
						local = append(local, int32(i))
					}
				}
				kept[m] = local
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("engine: unsupported predicate %T", o.pred)
	}
	return kept, nil
}

func (o *refilterOp) label() string { return "Select[refilter]" }
func (o *refilterOp) detail() string {
	return fmt.Sprintf("%s  sel~%.2f%%  par=%d", o.pred, o.est*100, o.par)
}
func (o *refilterOp) kids() []physOp                 { return []physOp{o.in} }
func (o *refilterOp) predicted() costmodel.Breakdown { return o.cost }

// ---------------------------------------------------------------------
// Join.

type joinOp struct {
	left, right         physOp
	leftIdx, rightIdx   int // binding index owning the join column
	leftCol, rightCol   *dsm.Column
	leftName, rightName string
	plan                core.Plan
	card                int // planned cardinality (max of the estimates)
	par                 int // planned native degree of parallelism
	cost                costmodel.Breakdown
}

func (o *joinOp) exec(ctx *execCtx) (*fragment, error) {
	lf, err := ctx.exec(o.left)
	if err != nil {
		return nil, err
	}
	rf, err := ctx.exec(o.right)
	if err != nil {
		return nil, err
	}
	l, err := materializeJoinColumn(ctx, lf.binds[o.leftIdx], o.leftCol, o.leftName)
	if err != nil {
		return nil, err
	}
	r, err := materializeJoinColumn(ctx, rf.binds[o.rightIdx], o.rightCol, o.rightName)
	if err != nil {
		return nil, err
	}
	idx, err := core.ExecuteOpts(ctx.sim, l, r, o.plan, nil, ctx.opt)
	if err != nil {
		return nil, err
	}
	out := &fragment{binds: make([]binding, 0, len(lf.binds)+len(rf.binds))}
	for _, b := range lf.binds {
		nb, err := remapBinding(ctx, b, idx, true)
		if err != nil {
			return nil, err
		}
		out.binds = append(out.binds, nb)
	}
	for _, b := range rf.binds {
		nb, err := remapBinding(ctx, b, idx, false)
		if err != nil {
			return nil, err
		}
		out.binds = append(out.binds, nb)
	}
	return out, nil
}

func (o *joinOp) label() string { return fmt.Sprintf("Join[%s]", o.plan) }
func (o *joinOp) detail() string {
	return fmt.Sprintf("%s = %s  card~%d  par=%d", o.leftName, o.rightName, o.card, o.par)
}
func (o *joinOp) kids() []physOp                 { return []physOp{o.left, o.right} }
func (o *joinOp) predicted() costmodel.Breakdown { return o.cost }

// materializeJoinColumn builds the [row, value] BAT feeding the join
// kernels: heads are row indices into the intermediate (not table
// OIDs), tails the gathered column values, which must fit uint32.
// Native runs fill the BAT morsel-parallel.
func materializeJoinColumn(ctx *execCtx, b binding, c *dsm.Column, name string) (*bat.Pairs, error) {
	switch c.Def.Type {
	case dsm.LInt, dsm.LDate:
	default:
		return nil, fmt.Errorf("engine: join column %s is %v, want int/date", name, c.Def.Type)
	}
	if c.Enc != nil {
		return nil, fmt.Errorf("engine: join column %s is dictionary-encoded", name)
	}
	vals, err := gatherInt64s(ctx, b, c)
	if err != nil {
		return nil, err
	}
	pairs := bat.NewPairs(len(vals))
	pairs.Bind(ctx.sim)
	err = ctx.forMorselsErr(len(vals), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			v := vals[i]
			if v < 0 || v > 1<<32-1 {
				return fmt.Errorf("engine: join value %d of %s outside uint32", v, name)
			}
			if ctx.sim != nil {
				ctx.sim.Write(pairs.Addr(i), bat.PairSize)
			}
			pairs.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(v)}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// remapBinding routes a pre-join binding through the join index: the
// index heads (left) or tails (right) are row indices into the old
// intermediate. Native runs remap morsel-parallel (each morsel writes
// its own output range).
func remapBinding(ctx *execCtx, b binding, idx *core.JoinIndex, left bool) (binding, error) {
	oids := make([]bat.Oid, idx.Len())
	err := ctx.forMorselsErr(idx.Len(), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			bun := idx.BUNs[i]
			row := int(bun.Tail)
			if left {
				row = int(bun.Head)
			}
			if row < 0 || row >= b.rows() {
				return fmt.Errorf("engine: join row %d outside intermediate", row)
			}
			oids[i] = b.rowOid(row)
		}
		return nil
	})
	if err != nil {
		return binding{}, err
	}
	return binding{table: b.table, oids: oids}, nil
}

// ---------------------------------------------------------------------
// GroupAggregate.

// aggStrategy is the grouping algorithm a GroupAggregate runs (§3.2's
// hash vs sort choice, plus the §4-style radix-partitioned third way).
type aggStrategy uint8

const (
	aggHash aggStrategy = iota
	aggSort
	aggRadix
)

func (s aggStrategy) String() string {
	switch s {
	case aggSort:
		return "sort"
	case aggRadix:
		return "radix"
	}
	return "hash"
}

type groupAggOp struct {
	in        physOp
	bindIdx   int
	keyCol    *dsm.Column
	keyName   string
	measure   Expr        // bound: ColExprs rewritten to operand indices
	measStr   string      // display form
	operands  []opCol     // gathered operand columns, in bind order
	strat     aggStrategy // chosen grouping algorithm
	radixBits int         // radix partitioning bits (strat == aggRadix)
	radixPass int         // cluster passes (strat == aggRadix)
	savedMS   float64     // predicted ms saved vs hash grouping (radix)
	estGroups float64
	estRows   int // planner's input-cardinality estimate (replan trigger)
	par       int // planned native degree of parallelism
	cost      costmodel.Breakdown
}

// opCol is one gathered numeric operand of the measure expression.
type opCol struct {
	bindIdx int
	col     *dsm.Column
	name    string
}

func (o *groupAggOp) exec(ctx *execCtx) (*fragment, error) {
	in, err := ctx.exec(o.in)
	if err != nil {
		return nil, err
	}
	keys, vals, err := o.aggInput(ctx, in)
	if err != nil {
		return nil, err
	}
	return o.finish(ctx, keys, vals)
}

// aggInput materializes the aggregation feed MIL-style: the group-key
// code column and the evaluated measure, one temporary BAT each.
func (o *groupAggOp) aggInput(ctx *execCtx, in *fragment) ([]int64, []float64, error) {
	n := in.rows()
	kb := in.binds[o.bindIdx]
	gatherKeys := gatherInt64s
	if o.keyCol.Enc != nil {
		gatherKeys = gatherCodes
	}
	keys, err := gatherKeys(ctx, kb, o.keyCol)
	if err != nil {
		return nil, nil, err
	}

	// Materialize each measure operand, then evaluate the expression
	// (morsel-parallel when native; eval is per-row, so the values are
	// bit-identical however the rows are scheduled).
	cols := make([][]float64, len(o.operands))
	for ci, op := range o.operands {
		vals, err := gatherFloat64s(ctx, in.binds[op.bindIdx], op.col)
		if err != nil {
			return nil, nil, err
		}
		cols[ci] = vals
	}
	vals := make([]float64, n)
	ctx.forMorsels(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i] = o.measure.eval(cols, i)
		}
	})
	if ctx.sim != nil {
		ctx.sim.AddCPU(n*(1+len(o.operands)), ctx.machine.Cost.WScanBUN/4)
	}
	return keys, vals, nil
}

// finish groups the (key, value) feed and builds the result relation.
// Both execution paths — the materializing operator and the fused
// pipeline's AggFeed sink — funnel through this one function with
// identical feed arrays, so their aggregates are bit-identical.
func (o *groupAggOp) finish(ctx *execCtx, keys []int64, vals []float64) (*fragment, error) {
	choice := groupChoice{strat: o.strat, bits: o.radixBits, passes: o.radixPass}
	if re, note, ok := o.maybeReplan(ctx, len(keys)); ok {
		choice = re
		if ctx.prof != nil {
			ctx.prof.noteReplan(note)
		}
	}
	res, err := o.group(ctx, keys, vals, choice)
	if err != nil {
		return nil, err
	}
	sorted := res.Sorted()
	g := sorted.Groups()

	keyRC := RelCol{Name: o.keyName}
	if o.keyCol.Enc != nil {
		keyRC.Kind = KString
		keyRC.Strs = make([]string, g)
		for i := 0; i < g; i++ {
			keyRC.Strs[i] = o.keyCol.Enc.Decode(sorted.Key[i])
		}
	} else {
		keyRC.Kind = KInt
		keyRC.Ints = sorted.Key
	}
	rel := &Rel{N: g, Cols: []RelCol{
		keyRC,
		{Name: "count", Kind: KInt, Ints: sorted.Count},
		{Name: "sum", Kind: KFloat, Floats: sorted.Sum},
		{Name: "min", Kind: KFloat, Floats: sorted.Min},
		{Name: "max", Kind: KFloat, Floats: sorted.Max},
	}}
	return &fragment{rel: rel}, nil
}

// group runs the chosen grouping algorithm. Instrumented runs keep the
// single whole-relation scan the §3.2 cost models describe (the radix
// strategy mirrors its cluster passes and per-partition probes). On
// the native path, hash and sort grouping partition the input into
// morsels, group each morsel independently on the worker pool, and
// merge the partials by group key in morsel order; radix grouping
// clusters the feed on the low key bits instead and aggregates every
// partition independently with no merge at all — partitions own
// disjoint key sets, so per-partition results concatenate in partition
// order. Within one strategy, every decomposition is fixed (morsel
// boundaries, partition assignment), so aggregates are bit-identical
// across worker counts and pipeline modes. Across strategies,
// keys/counts/min/max agree bitwise but multi-morsel float sums only
// to rounding: hash merges per-morsel partial sums while radix
// accumulates each group in global input order — different association
// of the same additions (on a single morsel the decompositions
// coincide and even the sums match bitwise).
// The choice argument is the effective grouping decision: the planner's
// unless maybeReplan retuned it within the byte-compatibility classes
// above.
func (o *groupAggOp) group(ctx *execCtx, keys []int64, vals []float64, choice groupChoice) (*agg.GroupResult, error) {
	if choice.strat == aggRadix {
		if ctx.sim != nil {
			return agg.RadixGroup(ctx.sim, dsm.ShrinkInts(keys), bat.NewF64(vals), choice.bits, choice.passes)
		}
		return radixGroupNative(ctx, keys, vals, choice.bits, choice.passes)
	}
	group := agg.HashGroup
	if choice.strat == aggSort {
		group = agg.SortGroup
	}
	n := len(keys)
	nm := core.MorselsOf(n)
	if ctx.sim != nil || nm <= 1 {
		return group(ctx.sim, dsm.ShrinkInts(keys), bat.NewF64(vals))
	}
	partials := make([]*agg.GroupResult, nm)
	var paPh *OpStats
	if ctx.prof != nil {
		paPh = ctx.prof.beginPhase(fmt.Sprintf("partials[%s]", choice.strat), fmt.Sprintf("%d morsels", nm))
	}
	err := ctx.forMorselsErr(n, func(m, lo, hi int) error {
		p, err := group(nil, dsm.ShrinkInts(keys[lo:hi]), bat.NewF64(vals[lo:hi]))
		if err != nil {
			return err
		}
		partials[m] = p
		return nil
	})
	partialGroups := int64(0)
	if paPh != nil {
		for _, p := range partials {
			if p != nil {
				partialGroups += int64(p.Groups())
			}
		}
		ctx.prof.endPhase(paPh, partialGroups, int64(n)*16, partialGroups*40)
	}
	if err != nil {
		return nil, err
	}
	var mePh *OpStats
	if ctx.prof != nil {
		mePh = ctx.prof.beginPhase("merge", fmt.Sprintf("%d partials", nm))
	}
	res := mergeGroupPartials(partials)
	if mePh != nil {
		ctx.prof.endPhase(mePh, int64(res.Groups()), partialGroups*40, int64(res.Groups())*40)
	}
	return res, nil
}

func (o *groupAggOp) label() string {
	if o.strat == aggRadix {
		return fmt.Sprintf("GroupAggregate[radix bits=%d]", o.radixBits)
	}
	return fmt.Sprintf("GroupAggregate[%s]", o.strat)
}

func (o *groupAggOp) detail() string {
	d := fmt.Sprintf("key=%s measure=%s  groups~%.0f  par=%d", o.keyName, o.measStr, o.estGroups, o.par)
	if o.strat == aggRadix {
		d += fmt.Sprintf("  passes=%d  saves~%.1f ms vs hash", o.radixPass, o.savedMS)
	}
	return d
}
func (o *groupAggOp) kids() []physOp                 { return []physOp{o.in} }
func (o *groupAggOp) predicted() costmodel.Breakdown { return o.cost }

// ---------------------------------------------------------------------
// Project: materialize named columns (the final tuple reconstruction —
// positional void joins, §3.1).

type projectOp struct {
	in   physOp
	cols []projCol
	par  int // planned native degree of parallelism
	cost costmodel.Breakdown
}

// projCol is one output column: either a table-backed gather or a
// pass-through of a materialized column.
type projCol struct {
	name    string
	bindIdx int
	col     *dsm.Column // table-backed form
	relIdx  int         // materialized form (col == nil)
}

func (o *projectOp) exec(ctx *execCtx) (*fragment, error) {
	in, err := ctx.exec(o.in)
	if err != nil {
		return nil, err
	}
	if in.rel != nil {
		out := &Rel{N: in.rel.N, Cols: make([]RelCol, len(o.cols))}
		for i, pc := range o.cols {
			out.Cols[i] = in.rel.Cols[pc.relIdx]
		}
		return &fragment{rel: out}, nil
	}
	rel, err := materializeColumns(ctx, in, o.cols)
	if err != nil {
		return nil, err
	}
	return &fragment{rel: rel}, nil
}

func (o *projectOp) label() string { return "Project" }
func (o *projectOp) detail() string {
	names := make([]string, len(o.cols))
	for i, c := range o.cols {
		names[i] = c.name
	}
	return fmt.Sprintf("%s  par=%d", describeCols(names), o.par)
}
func (o *projectOp) kids() []physOp                 { return []physOp{o.in} }
func (o *projectOp) predicted() costmodel.Breakdown { return o.cost }

// materializeColumns gathers the given table-backed columns into a Rel
// — one positional reconstruction join per column, each filled
// morsel-parallel on the native path (every morsel writes a disjoint
// range of the output column, so the Rel is byte-identical to a serial
// reconstruction).
func materializeColumns(ctx *execCtx, in *fragment, cols []projCol) (*Rel, error) {
	n := in.rows()
	rel := &Rel{N: n, Cols: make([]RelCol, len(cols))}
	for i, pc := range cols {
		b := in.binds[pc.bindIdx]
		c := pc.col
		c.Vec.Bind(ctx.sim)
		rc := RelCol{Name: pc.name}
		var fill func(j, pos int)
		switch {
		case c.Enc != nil:
			rc.Kind = KString
			rc.Strs = make([]string, n)
			fill = func(j, pos int) { rc.Strs[j] = c.Enc.Decode(c.Vec.Int(pos)) }
		case c.Def.Type == dsm.LString:
			sv, ok := c.Vec.(*bat.StrVec)
			if !ok {
				return nil, fmt.Errorf("engine: column %q is not a string column", pc.name)
			}
			rc.Kind = KString
			rc.Strs = make([]string, n)
			fill = func(j, pos int) { rc.Strs[j] = sv.Str(pos) }
		case c.Def.Type == dsm.LFloat:
			fv, ok := c.Vec.(*bat.F64Vec)
			if !ok {
				return nil, fmt.Errorf("engine: column %q is not a float column", pc.name)
			}
			rc.Kind = KFloat
			rc.Floats = make([]float64, n)
			fill = func(j, pos int) { rc.Floats[j] = fv.Float(pos) }
		default:
			rc.Kind = KInt
			rc.Ints = make([]int64, n)
			fill = func(j, pos int) { rc.Ints[j] = c.Vec.Int(pos) }
		}
		err := ctx.forMorselsErr(n, func(_, lo, hi int) error {
			for j := lo; j < hi; j++ {
				pos, err := b.pos(j)
				if err != nil {
					return err
				}
				c.Vec.Touch(ctx.sim, pos)
				fill(j, pos)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rel.Cols[i] = rc
	}
	if ctx.sim != nil {
		ctx.sim.AddCPU(n*len(cols), ctx.machine.Cost.WScanBUN/4)
	}
	return rel, nil
}

// ---------------------------------------------------------------------
// OrderBy.

type orderByOp struct {
	in      physOp
	colName string
	desc    bool
	// table-backed form:
	bindIdx int
	col     *dsm.Column
	// materialized form (col == nil):
	relIdx int
	cost   costmodel.Breakdown
}

func (o *orderByOp) exec(ctx *execCtx) (*fragment, error) {
	in, err := ctx.exec(o.in)
	if err != nil {
		return nil, err
	}
	n := in.rows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var less func(a, b int) bool
	if in.rel != nil {
		rc := &in.rel.Cols[o.relIdx]
		switch rc.Kind {
		case KInt:
			less = func(a, b int) bool { return rc.Ints[a] < rc.Ints[b] }
		case KFloat:
			less = func(a, b int) bool { return rc.Floats[a] < rc.Floats[b] }
		default:
			less = func(a, b int) bool { return rc.Strs[a] < rc.Strs[b] }
		}
	} else {
		b := in.binds[o.bindIdx]
		keys, err := gatherSortKeys(ctx, b, o.col, o.colName, n)
		if err != nil {
			return nil, err
		}
		less = keys.less
	}
	if o.desc {
		inner := less
		less = func(a, b int) bool { return inner(b, a) }
	}
	// Stable comparison sort without sort.SliceStable's reflection
	// overhead; same comparator, same stability, so the permutation —
	// ties included — is identical to the previous implementation.
	slices.SortStableFunc(idx, func(a, b int) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		}
		return 0
	})
	if ctx.sim != nil {
		// Charge the comparison sort: n·log2(n) key comparisons.
		lg := 0
		for v := n; v > 1; v >>= 1 {
			lg++
		}
		ctx.sim.AddCPU(n*lg, ctx.machine.Cost.WScanBUN/4)
	}
	return permute(in, idx), nil
}

// sortKeys holds one gathered sort-key column.
type sortKeys struct {
	ints []int64
	flts []float64
	strs []string
}

func (k *sortKeys) less(a, b int) bool {
	switch {
	case k.ints != nil:
		return k.ints[a] < k.ints[b]
	case k.flts != nil:
		return k.flts[a] < k.flts[b]
	default:
		return k.strs[a] < k.strs[b]
	}
}

func gatherSortKeys(ctx *execCtx, b binding, c *dsm.Column, name string, n int) (*sortKeys, error) {
	c.Vec.Bind(ctx.sim)
	out := &sortKeys{}
	switch {
	case c.Enc != nil:
		out.strs = make([]string, n)
	case c.Def.Type == dsm.LString:
		out.strs = make([]string, n)
	case c.Def.Type == dsm.LFloat:
		out.flts = make([]float64, n)
	default:
		out.ints = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		pos, err := b.pos(i)
		if err != nil {
			return nil, err
		}
		c.Vec.Touch(ctx.sim, pos)
		switch {
		case c.Enc != nil:
			out.strs[i] = c.Enc.Decode(c.Vec.Int(pos))
		case out.strs != nil:
			sv, ok := c.Vec.(*bat.StrVec)
			if !ok {
				return nil, fmt.Errorf("engine: column %q is not a string column", name)
			}
			out.strs[i] = sv.Str(pos)
		case out.flts != nil:
			out.flts[i] = c.Vec.(*bat.F64Vec).Float(pos)
		default:
			out.ints[i] = c.Vec.Int(pos)
		}
	}
	return out, nil
}

// permute reorders a fragment by row indices (also used by Limit with
// a prefix).
func permute(in *fragment, idx []int) *fragment {
	if in.rel != nil {
		out := &Rel{N: len(idx), Cols: make([]RelCol, len(in.rel.Cols))}
		for ci := range in.rel.Cols {
			src := &in.rel.Cols[ci]
			dst := RelCol{Name: src.Name, Kind: src.Kind}
			switch src.Kind {
			case KInt:
				dst.Ints = make([]int64, len(idx))
				for i, j := range idx {
					dst.Ints[i] = src.Ints[j]
				}
			case KFloat:
				dst.Floats = make([]float64, len(idx))
				for i, j := range idx {
					dst.Floats[i] = src.Floats[j]
				}
			default:
				dst.Strs = make([]string, len(idx))
				for i, j := range idx {
					dst.Strs[i] = src.Strs[j]
				}
			}
			out.Cols[ci] = dst
		}
		return &fragment{rel: out}
	}
	out := &fragment{binds: make([]binding, len(in.binds))}
	for bi, b := range in.binds {
		oids := make([]bat.Oid, len(idx))
		for i, j := range idx {
			oids[i] = b.rowOid(j)
		}
		out.binds[bi] = binding{table: b.table, oids: oids}
	}
	return out
}

func (o *orderByOp) label() string { return "OrderBy" }
func (o *orderByOp) detail() string {
	dir := "asc"
	if o.desc {
		dir = "desc"
	}
	return fmt.Sprintf("%s %s", o.colName, dir)
}
func (o *orderByOp) kids() []physOp                 { return []physOp{o.in} }
func (o *orderByOp) predicted() costmodel.Breakdown { return o.cost }

// ---------------------------------------------------------------------
// Limit.

type limitOp struct {
	in physOp
	n  int
}

// exec keeps the first n rows by slicing the intermediate in place —
// no permutation copy. (In pipelined plans a Limit above a fusable
// chain short-circuits earlier still: the pipeline stops consuming
// morsels once the prefix has produced n rows.)
func (o *limitOp) exec(ctx *execCtx) (*fragment, error) {
	in, err := ctx.exec(o.in)
	if err != nil {
		return nil, err
	}
	n := in.rows()
	if o.n < n {
		n = o.n
	}
	if in.rel != nil {
		out := &Rel{N: n, Cols: make([]RelCol, len(in.rel.Cols))}
		for ci, c := range in.rel.Cols {
			switch c.Kind {
			case KInt:
				c.Ints = c.Ints[:n]
			case KFloat:
				c.Floats = c.Floats[:n]
			default:
				c.Strs = c.Strs[:n]
			}
			out.Cols[ci] = c
		}
		return &fragment{rel: out}, nil
	}
	out := &fragment{binds: make([]binding, len(in.binds))}
	for bi, b := range in.binds {
		oids := b.oids
		if oids == nil {
			// A void binding has no list to slice; build the prefix.
			oids = make([]bat.Oid, n)
			for i := range oids {
				oids[i] = b.table.Head.Seq + bat.Oid(i)
			}
		} else {
			oids = oids[:n]
		}
		out.binds[bi] = binding{table: b.table, oids: oids}
	}
	return out, nil
}

func (o *limitOp) label() string                  { return "Limit" }
func (o *limitOp) detail() string                 { return fmt.Sprintf("%d", o.n) }
func (o *limitOp) kids() []physOp                 { return []physOp{o.in} }
func (o *limitOp) predicted() costmodel.Breakdown { return costmodel.Breakdown{} }
