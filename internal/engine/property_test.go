package engine

import (
	"math"
	"testing"

	"monetlite/internal/workload"
)

// The property test: random Select/Join/GroupAggregate plans over the
// Figure-4 Item workload, cross-checked against a row-at-a-time
// oracle computed straight from the generated structs — the engine's
// BAT-algebra plans and the naive tuple loop must agree exactly.

// oracleRow is one joined tuple of the oracle's row-at-a-time world.
type oracleRow struct {
	item workload.Item
	part workload.Part // zero unless the plan joins
}

// randPred draws a random predicate with its oracle counterpart.
func randPred(rng *workload.RNG) (Predicate, func(workload.Item) bool) {
	switch rng.Intn(5) {
	case 0:
		lo := int64(1 + rng.Intn(40))
		hi := lo + int64(rng.Intn(15))
		return RangePred{Col: "qty", Lo: lo, Hi: hi},
			func(it workload.Item) bool { return int64(it.Qty) >= lo && int64(it.Qty) <= hi }
	case 1:
		lo := int64(8000 + rng.Intn(2000))
		hi := lo + int64(rng.Intn(1200))
		return RangePred{Col: "date1", Lo: lo, Hi: hi},
			func(it workload.Item) bool { return int64(it.Date1) >= lo && int64(it.Date1) <= hi }
	case 2:
		// Point-like range on the near-unique order column: exercises
		// the CSS-tree access path.
		lo := int64(1000 + rng.Intn(4000))
		hi := lo + int64(rng.Intn(64))
		return RangePred{Col: "order", Lo: lo, Hi: hi},
			func(it workload.Item) bool { return int64(it.Order) >= lo && int64(it.Order) <= hi }
	case 3:
		v := workload.ShipModes[rng.Intn(len(workload.ShipModes))]
		return EqStringPred{Col: "shipmode", Value: v},
			func(it workload.Item) bool { return it.ShipMode == v }
	default:
		v := workload.Statuses[rng.Intn(len(workload.Statuses))]
		return EqStringPred{Col: "status", Value: v},
			func(it workload.Item) bool { return it.Status == v }
	}
}

// randMeasure draws a random measure expression with its oracle.
func randMeasure(rng *workload.RNG, joined bool) (Expr, func(oracleRow) float64) {
	switch n := rng.Intn(4); {
	case n == 0:
		return ColExpr{Name: "price"}, func(r oracleRow) float64 { return r.item.Price }
	case n == 1:
		return BinExpr{Op: '*', L: ColExpr{Name: "price"},
				R: BinExpr{Op: '-', L: ConstExpr{V: 1}, R: ColExpr{Name: "discnt"}}},
			func(r oracleRow) float64 { return r.item.Price * (1 - r.item.Discnt) }
	case n == 2:
		return BinExpr{Op: '*', L: ColExpr{Name: "price"}, R: ColExpr{Name: "qty"}},
			func(r oracleRow) float64 { return r.item.Price * float64(r.item.Qty) }
	case joined:
		return BinExpr{Op: '-', L: ColExpr{Name: "retail"}, R: ColExpr{Name: "price"}},
			func(r oracleRow) float64 { return r.part.Retail - r.item.Price }
	default:
		return BinExpr{Op: '+', L: ColExpr{Name: "tax"}, R: ColExpr{Name: "discnt"}},
			func(r oracleRow) float64 { return r.item.Tax + r.item.Discnt }
	}
}

// randKey draws a random group key with its oracle.
func randKey(rng *workload.RNG, joined bool) (string, func(oracleRow) string) {
	switch n := rng.Intn(3); {
	case n == 0:
		return "shipmode", func(r oracleRow) string { return r.item.ShipMode }
	case n == 1 && joined:
		return "category", func(r oracleRow) string { return r.part.Category }
	default:
		return "status", func(r oracleRow) string { return r.item.Status }
	}
}

func TestRandomPlansMatchRowOracle(t *testing.T) {
	const nItems = 4096
	const nParts = 2000
	const rounds = 60

	items := workload.Items(nItems, 42)
	parts := workload.Parts(nParts, 7)
	itemTbl := itemTable(t, nItems) // same seed 42: identical rows
	partTbl := partTable(t, nParts) // same seed 7

	rng := workload.NewRNG(0xE17)
	for round := 0; round < rounds; round++ {
		// Random plan: 0–2 selects, optional join, group-aggregate.
		var node Node = &ScanNode{Table: itemTbl}
		var preds []func(workload.Item) bool
		for i := rng.Intn(3); i > 0; i-- {
			p, oracle := randPred(rng)
			node = &SelectNode{Input: node, Pred: p}
			preds = append(preds, oracle)
		}
		joined := rng.Intn(2) == 1
		if joined {
			node = &JoinNode{Left: node, Right: &ScanNode{Table: partTbl},
				LeftCol: "part", RightCol: "id"}
		}
		key, keyOracle := randKey(rng, joined)
		measure, measOracle := randMeasure(rng, joined)
		node = &GroupAggNode{Input: node, Key: key, Measure: measure}

		plan, err := Plan(node, Config{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		res, err := plan.Run(nil)
		if err != nil {
			t.Fatalf("round %d: %v\n%s", round, err, plan.Explain())
		}

		// Row-at-a-time oracle.
		type aggState struct {
			count       int64
			sum, mn, mx float64
		}
		want := map[string]*aggState{}
		for _, it := range items {
			ok := true
			for _, p := range preds {
				if !p(it) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			row := oracleRow{item: it}
			if joined {
				pid := int(it.Part)
				if pid >= nParts {
					continue // no matching part
				}
				row.part = parts[pid]
			}
			k := keyOracle(row)
			v := measOracle(row)
			st := want[k]
			if st == nil {
				st = &aggState{mn: v, mx: v}
				want[k] = st
			}
			st.count++
			st.sum += v
			if v < st.mn {
				st.mn = v
			}
			if v > st.mx {
				st.mx = v
			}
		}

		keys, err := res.Strings(key)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		counts, _ := res.Ints("count")
		sums, _ := res.Floats("sum")
		mins, _ := res.Floats("min")
		maxs, _ := res.Floats("max")
		if len(keys) != len(want) {
			t.Fatalf("round %d: %d groups, oracle %d\n%s", round, len(keys), len(want), plan.Explain())
		}
		for i, k := range keys {
			st := want[k]
			if st == nil {
				t.Fatalf("round %d: spurious group %q", round, k)
			}
			if counts[i] != st.count {
				t.Errorf("round %d group %q: count %d, oracle %d", round, k, counts[i], st.count)
			}
			if !approx(sums[i], st.sum) || !approx(mins[i], st.mn) || !approx(maxs[i], st.mx) {
				t.Errorf("round %d group %q: (sum %g min %g max %g), oracle (%g %g %g)",
					round, k, sums[i], mins[i], maxs[i], st.sum, st.mn, st.mx)
			}
		}
	}
}

// approx compares float aggregates with a relative tolerance that
// absorbs summation-order differences.
func approx(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*(math.Abs(a)+math.Abs(b)+1)
}

// TestSelectedRowsMatchOracle cross-checks plain (non-aggregated)
// select plans: the projected rows must equal the oracle's qualifying
// tuples in storage order.
func TestSelectedRowsMatchOracle(t *testing.T) {
	const n = 4096
	items := workload.Items(n, 42)
	tbl := itemTable(t, n)
	rng := workload.NewRNG(0x5E1)
	for round := 0; round < 40; round++ {
		var node Node = &ScanNode{Table: tbl}
		var preds []func(workload.Item) bool
		for i := 1 + rng.Intn(2); i > 0; i-- {
			p, oracle := randPred(rng)
			node = &SelectNode{Input: node, Pred: p}
			preds = append(preds, oracle)
		}
		node = &ProjectNode{Input: node, Cols: []string{"order", "price", "shipmode"}}
		plan, err := Plan(node, Config{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		res, err := plan.Run(nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		orders, _ := res.Ints("order")
		prices, _ := res.Floats("price")
		modes, _ := res.Strings("shipmode")

		i := 0
		for _, it := range items {
			ok := true
			for _, p := range preds {
				if !p(it) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if i >= res.N() {
				t.Fatalf("round %d: engine returned %d rows, oracle has more", round, res.N())
			}
			if orders[i] != int64(it.Order) || prices[i] != it.Price || modes[i] != it.ShipMode {
				t.Fatalf("round %d row %d: engine (%d, %g, %s), oracle (%d, %g, %s)",
					round, i, orders[i], prices[i], modes[i], it.Order, it.Price, it.ShipMode)
			}
			i++
		}
		if i != res.N() {
			t.Fatalf("round %d: engine returned %d rows, oracle %d", round, res.N(), i)
		}
	}
}
