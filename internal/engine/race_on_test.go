//go:build race

package engine

// raceEnabled reports whether the race detector instruments this
// test binary (allocation-measurement tests skip under it).
const raceEnabled = true
