package engine

import (
	"math"

	"monetlite/internal/agg"
	"monetlite/internal/costmodel"
)

// Cost formulas for the physical choices the paper's models do not
// cover directly, assembled from the same per-event methodology (§2,
// §3.4): expected L1/L2/TLB miss counts times calibrated latencies
// plus CPU work. Joins use costmodel's Tc/Tr/Th via core.PredictPlan;
// the formulas here cover selections, gathers and grouping. Every
// formula takes the unified *costmodel.Model — the machine geometry
// and work constants come from model.M, and the planner prices the
// resulting breakdowns through the model's kind-corrected Nanos/Millis
// so learned residuals bend the decisions, not just the reports.

// seqBreakdown models a sequential sweep over bytes of memory: one
// miss per cache line / page, the optimal-locality pattern of a
// scan-select (§3.2).
func seqBreakdown(bytes float64, model *costmodel.Model) costmodel.Breakdown {
	m := model.M
	return costmodel.Breakdown{
		L1Misses:  bytes / float64(m.L1.LineSize),
		L2Misses:  bytes / float64(m.L2.LineSize),
		TLBMisses: bytes / float64(m.TLB.PageSize),
	}
}

// randomBreakdown models k random accesses into a region of footprint
// bytes: every access misses a cache whose capacity the footprint
// exceeds, scaled by the fraction of the region beyond the cache — but
// never more misses than the region has lines (or pages), since a
// dense access pattern degenerates to a sweep that touches each line
// once.
func randomBreakdown(k, footprint float64, model *costmodel.Model) costmodel.Breakdown {
	m := model.M
	miss := func(cache, unit float64) float64 {
		if footprint <= cache {
			return 0
		}
		n := k * (1 - cache/footprint)
		if lines := footprint / unit; n > lines {
			n = lines
		}
		return n
	}
	return costmodel.Breakdown{
		L1Misses:  miss(float64(m.L1.Size), float64(m.L1.LineSize)),
		L2Misses:  miss(float64(m.L2.Size), float64(m.L2.LineSize)),
		TLBMisses: miss(float64(m.TLB.Span()), float64(m.TLB.PageSize)),
	}
}

// probeBreakdown models k independent random probes into a resident
// structure of the given footprint — a grouping hash table. Unlike
// randomBreakdown's gather pattern, probing never degenerates to a
// sweep: successive touches of the same line are separated by roughly
// a footprint's worth of other probes, so once the footprint exceeds a
// cache the line is evicted before its next touch and every probe
// misses at the capacity rate — §3.2's "each memory reference a cache
// miss" regime.
func probeBreakdown(k, footprint float64, model *costmodel.Model) costmodel.Breakdown {
	m := model.M
	miss := func(cache float64) float64 {
		if footprint <= cache {
			return 0
		}
		return k * (1 - cache/footprint)
	}
	return costmodel.Breakdown{
		L1Misses:  miss(float64(m.L1.Size)),
		L2Misses:  miss(float64(m.L2.Size)),
		TLBMisses: miss(float64(m.TLB.Span())),
	}
}

// scanSelectCost predicts a full-column scan select over n values of
// the given stored width, writing k qualifying OIDs.
func scanSelectCost(n int, width int, k float64, model *costmodel.Model) costmodel.Breakdown {
	b := seqBreakdown(float64(n)*float64(width), model)
	out := seqBreakdown(k*4, model)
	b = b.Add(out)
	b.CPUNanos = float64(n)*model.M.Cost.WScanBUN/4 + k*model.M.Cost.WScanBUN/4
	return b
}

// cssSelectCost predicts a CSS-tree range select returning k of n
// entries: a descent of height ceil(log_f n) — one cache line per
// level, randomly placed — then a sequential leaf scan of k (key, OID)
// entries, the k-OID output, and the positional re-sort of the result.
func cssSelectCost(n int, k float64, model *costmodel.Model) costmodel.Breakdown {
	fanout := float64(model.M.L1.LineSize / 4)
	if fanout < 2 {
		fanout = 2
	}
	height := 1.0
	if n > 1 {
		height = math.Ceil(math.Log(float64(n)) / math.Log(fanout))
	}
	b := costmodel.Breakdown{ // descent: one line touch per level
		L1Misses:  height,
		L2Misses:  height,
		TLBMisses: height,
	}
	leaf := seqBreakdown(k*8, model) // 4-byte key + 4-byte OID per entry
	out := seqBreakdown(k*4, model)
	b = b.Add(leaf).Add(out)
	lgk := math.Log2(k + 2)
	b.CPUNanos = height*fanout*model.M.Cost.WScanBUN/4 + // in-node scans
		k*model.M.Cost.WScanBUN/4 + // leaf emit
		k*lgk*model.M.Cost.WScanBUN/8 // re-sort to storage order
	return b
}

// refilterCost predicts re-testing a predicate on k already-selected
// rows of a column spanning footprint bytes: k random gathers plus the
// OID rewrite.
func refilterCost(k, footprint float64, model *costmodel.Model) costmodel.Breakdown {
	b := randomBreakdown(k, footprint, model)
	b = b.Add(seqBreakdown(k*4, model))
	b.CPUNanos = k * model.M.Cost.WScanBUN / 2
	return b
}

// gatherCost predicts materializing k values of the given width from a
// column of footprint bytes through an OID list (nil-OID scans become
// sequential, but the planner conservatively assumes the gather is
// positional/random), writing the k-value temporary sequentially.
func gatherCost(k, footprint float64, width int, model *costmodel.Model) costmodel.Breakdown {
	b := randomBreakdown(k, footprint, model)
	b = b.Add(seqBreakdown(k*float64(width), model))
	b.CPUNanos = k * model.M.Cost.WScanBUN / 4
	return b
}

// groupCost predicts grouping n tuples into g groups. Hash grouping
// (§3.2) makes two random probes per tuple into a table of ~48
// bytes/group — cache-resident while that footprint fits, a
// RAM-latency miss per probe beyond it (probeBreakdown). Sort
// grouping radix-sorts the (key, row) pairs first — modelled as four
// 8-bit cluster passes via the §3.4.2 formula — then merges
// sequentially.
func groupCost(n int, g float64, useSort bool, model *costmodel.Model) costmodel.Breakdown {
	if useSort {
		b := model.ClusterPass(8, n).Scale(4)
		// The merge scan re-gathers the measure through the sorted row
		// index: one random access per tuple over the whole relation.
		merge := seqBreakdown(float64(n)*8, model).
			Add(randomBreakdown(float64(n), float64(n)*8, model))
		merge.CPUNanos = float64(n) * model.M.Cost.WScanBUN
		return b.Add(merge)
	}
	b := probeBreakdown(2*float64(n), g*float64(agg.GroupTableBytesPerGroup), model)
	in := seqBreakdown(float64(n)*10, model) // key codes + measure
	b = b.Add(in)
	b.CPUNanos = 2 * float64(n) * model.M.Cost.WScanBUN
	return b
}

// maxAggRadixBits caps the radix-bit choice for aggregation: 2^16
// partitions is already far past any group cardinality where more
// splitting helps, and keeps the offset structure negligible.
const maxAggRadixBits = 16

// radixBitsFor picks the fewest radix bits B such that one partition's
// group table (~48 bytes/group) fits a quarter of L1 — §4's
// cache-sizing criterion applied to the §3.2 aggregation table. 0
// means the whole table is already cache-resident and partitioning
// would be pure overhead.
func radixBitsFor(g float64, model *costmodel.Model) int {
	budget := float64(model.M.L1.Size) / 4
	bits := 0
	for g*float64(agg.GroupTableBytesPerGroup)/math.Pow(2, float64(bits)) > budget &&
		bits < maxAggRadixBits {
		bits++
	}
	return bits
}

// radixGroupCost predicts radix-partitioned grouping of n tuples into
// g groups on B bits in P passes: the §3.4.2 cluster-pass model over
// the 16-byte (key, value) feed, then the cache-resident probe phase —
// two probes per tuple into a per-partition table of g·48/2^B bytes,
// which B was chosen to keep inside L1 (so the probe term is ~zero and
// the cost is the clustering plus one stream over the clustered feed).
func radixGroupCost(n int, g float64, bits, passes int, model *costmodel.Model) costmodel.Breakdown {
	b := model.ClusterPassBytes(float64(bits)/float64(passes), n, agg.PairBytes).
		Scale(float64(passes))
	part := g * float64(agg.GroupTableBytesPerGroup) / math.Pow(2, float64(bits))
	b = b.Add(probeBreakdown(2*float64(n), part, model))
	b = b.Add(seqBreakdown(float64(n)*agg.PairBytes, model)) // stream the clustered feed
	b.CPUNanos += 2 * float64(n) * model.M.Cost.WScanBUN
	return b
}

// subClamp subtracts a predicted saving from a cost breakdown,
// clamping every component at zero — a fused pipeline can at best
// eliminate its intermediates, never go negative. Used for the
// materialization-traffic term: the bytes the materializing path
// writes to and re-reads from RAM for inter-operator intermediates
// (modelled as sequential sweeps via seqBreakdown) that a fused
// pipeline keeps cache-resident.
func subClamp(b, saved costmodel.Breakdown) costmodel.Breakdown {
	out := b.Add(saved.Scale(-1))
	if out.L1Misses < 0 {
		out.L1Misses = 0
	}
	if out.L2Misses < 0 {
		out.L2Misses = 0
	}
	if out.TLBMisses < 0 {
		out.TLBMisses = 0
	}
	if out.CPUNanos < 0 {
		out.CPUNanos = 0
	}
	return out
}

// orderByCost predicts a comparison sort of n keys of the given width.
func orderByCost(n int, width int, model *costmodel.Model) costmodel.Breakdown {
	lg := math.Log2(float64(n) + 2)
	b := randomBreakdown(float64(n)*lg/4, float64(n)*float64(width), model)
	b.CPUNanos = float64(n) * lg * model.M.Cost.WScanBUN / 4
	return b
}
