package engine

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"monetlite/internal/core"
	"monetlite/internal/costmodel"
	"monetlite/internal/dsm"
	"monetlite/internal/memsim"
)

// sampleBlindTable builds a table engineered to defeat the planner's
// evenly-spaced sampling estimator. With matchSampled=false the "flag"
// column is 0 exactly at the sampled positions (every n/1024-th row)
// and 1 everywhere else, so a flag=1 selection is estimated at the
// clamp floor (~64 rows) while actually selecting nearly the whole
// table; with matchSampled=true the polarity flips and the planner
// overestimates by the same ~2000×. "g" is the group key (i mod
// groups), "v" the measure.
func sampleBlindTable(t testing.TB, n, groups int, matchSampled bool) *dsm.Table {
	t.Helper()
	step := (n + 1023) / 1024
	rows := make([][]any, n)
	for i := range rows {
		flag := int64(1)
		if (i%step == 0) != matchSampled {
			flag = 0
		}
		rows[i] = []any{flag, int64(i % groups), float64(i%97) + 0.5}
	}
	tbl, err := dsm.Decompose(dsm.Schema{
		Name: "skew",
		Cols: []dsm.ColumnDef{
			{Name: "flag", Type: dsm.LInt},
			{Name: "g", Type: dsm.LInt},
			{Name: "v", Type: dsm.LFloat},
		},
	}, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// misestimatedAgg is a grouping query whose input cardinality the
// planner mis-estimates by ~2000× (direction set by the table's
// matchSampled polarity).
func misestimatedAgg(tbl *dsm.Table) Node {
	return &GroupAggNode{
		Input: &SelectNode{
			Input: &ScanNode{Table: tbl},
			Pred:  RangePred{Col: "flag", Lo: 1, Hi: 1},
		},
		Key: "g", Measure: ColExpr{Name: "v"},
	}
}

// TestReplanTriggersOnMisestimate: with the default replan factor the
// misestimated aggregate re-plans at the breaker and EXPLAIN ANALYZE
// says so; with NoReplan (or under simulation) it never does.
func TestReplanTriggersOnMisestimate(t *testing.T) {
	// Overestimate with an all-distinct group key: the planner expects
	// ~131K rows with ~131K groups (radix territory), but only the
	// ~1K sampled rows actually pass the filter — at the breaker the
	// observed cardinality caps the group count and hash wins, so the
	// re-costed choice genuinely differs from the planned one.
	tbl := sampleBlindTable(t, 1<<17, 1<<17, true)
	root := misestimatedAgg(tbl)

	plan, err := Plan(root, Config{Opt: core.Options{Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.RunProfiled(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Profile.String()
	if !strings.Contains(out, "replanned at") {
		t.Errorf("misestimated aggregate did not replan:\n%s", out)
	}
	if !strings.Contains(out, "est=") || !strings.Contains(out, "obs=") {
		t.Errorf("replan annotation missing est/obs:\n%s", out)
	}

	off, err := Plan(root, Config{Opt: core.Options{Parallelism: 2}, NoReplan: true})
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := off.RunProfiled(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := resOff.Profile.String(); strings.Contains(s, "replanned") {
		t.Errorf("NoReplan run still replanned:\n%s", s)
	}
}

// TestReplanSkippedWhenEstimateGood: an accurately-estimated query
// must run exactly as planned — replanning is for misestimates only.
func TestReplanSkippedWhenEstimateGood(t *testing.T) {
	items := itemTable(t, 1<<16)
	root := &GroupAggNode{
		Input: &SelectNode{
			Input: &ScanNode{Table: items},
			Pred:  RangePred{Col: "date1", Lo: 8000, Hi: 9999},
		},
		Key: "shipmode", Measure: ColExpr{Name: "price"},
	}
	plan, err := Plan(root, Config{Opt: core.Options{Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.RunProfiled(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Profile.String(); strings.Contains(s, "replanned") {
		t.Errorf("well-estimated query replanned:\n%s", s)
	}
}

// TestAdaptiveByteIdentical is the correctness contract of mid-query
// re-optimization: adaptive runs return byte-identical results to
// NoReplan runs for every worker count and pipeline mode, on both a
// single-morsel input (where any strategy flip is legal) and a
// multi-morsel input (where the replanner is restricted to flips that
// preserve per-morsel float-sum association).
func TestAdaptiveByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name         string
		n, groups    int
		matchSampled bool
	}{
		// Overestimate, all-distinct key: the replanner flips the
		// planned radix grouping to hash on a single-morsel input.
		{"single-morsel-flip", 1 << 17, 1 << 17, true},
		// Underestimates: the replanner re-costs at the observed
		// (larger, multi-morsel) cardinality under the restricted
		// flip classes.
		{"single-morsel", 1 << 17, 1 << 14, false},
		{"multi-morsel", 3 << 17, 1 << 12, false},
	} {
		tbl := sampleBlindTable(t, tc.n, tc.groups, tc.matchSampled)
		root := misestimatedAgg(tbl)
		for _, workers := range []int{1, 4} {
			for _, noPipe := range []bool{false, true} {
				base := Config{Opt: core.Options{Parallelism: workers}, NoPipeline: noPipe}

				cfg := base
				cfg.NoReplan = true
				fixed, err := Plan(root, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fixed.Run(nil)
				if err != nil {
					t.Fatal(err)
				}

				adaptive, err := Plan(root, base)
				if err != nil {
					t.Fatal(err)
				}
				got, err := adaptive.Run(nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Rel, got.Rel) {
					t.Errorf("%s workers=%d noPipe=%v: adaptive result differs from fixed plan",
						tc.name, workers, noPipe)
				}
			}
		}
	}
}

// TestReplanFactorValidation: factors ≤ 1 other than the 0 default are
// rejected — a factor of 1 would replan on every run.
func TestReplanFactorValidation(t *testing.T) {
	tbl := sampleBlindTable(t, 1<<12, 8, false)
	if _, err := Plan(misestimatedAgg(tbl), Config{ReplanFactor: 0.5}); err == nil {
		t.Error("Plan accepted ReplanFactor 0.5")
	}
	if _, err := Plan(misestimatedAgg(tbl), Config{ReplanFactor: 8}); err != nil {
		t.Errorf("Plan rejected ReplanFactor 8: %v", err)
	}
}

// TestHostCalibrationFixture: the engine prices plans on a calibrated
// host profile loaded through the search path — the committed fixture
// stands in for real measurement so CI never times its own hardware.
func TestHostCalibrationFixture(t *testing.T) {
	fixture, err := filepath.Abs("../calibrate/testdata/host-fixture.json")
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(memsim.HostFileEnv, fixture)
	m, err := memsim.MachineByName(memsim.HostName)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != memsim.HostName {
		t.Fatalf("resolved %q, want %q", m.Name, memsim.HostName)
	}
	model := costmodel.New(m)
	items := itemTable(t, 1<<16)
	root := &GroupAggNode{
		Input: &SelectNode{
			Input: &ScanNode{Table: items},
			Pred:  RangePred{Col: "date1", Lo: 8500, Hi: 9499},
		},
		Key: "shipmode", Measure: ColExpr{Name: "price"},
	}
	plan, err := Plan(root, Config{Model: &model})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Machine().Name != memsim.HostName {
		t.Errorf("plan machine = %q, want %q", plan.Machine().Name, memsim.HostName)
	}
	if ms := plan.PredictedMillis(); !(ms > 0) {
		t.Errorf("PredictedMillis = %v on the host profile, want > 0", ms)
	}
	res, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	canned, err := Plan(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := canned.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Rel, res.Rel) {
		t.Error("host-profile plan returns different bytes than the canned-profile plan")
	}
}
