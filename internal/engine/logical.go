// Package engine is the cost-model-driven BAT-algebra query engine:
// the subsystem that composes the repo's operator pieces — DSM column
// selections (internal/sel access paths), radix-cluster/join
// (internal/core), grouping (internal/agg) — into end-to-end queries.
//
// Queries are logical plan DAGs (Scan, Select, Project, Join,
// GroupAggregate, OrderBy, Limit) over dsm.Tables. Plan lowers a DAG
// into a physical operator tree, consulting the paper's analytical
// cost models (internal/costmodel, §2 and §3.4) for every physical
// choice: the selection access path (scan-select vs CSS-tree), the
// join algorithm and radix bits (the §3.4.4 Plan/PlanAuto machinery),
// and the grouping algorithm (hash while the table fits the caches,
// sort/merge beyond, §3.2).
//
// Execution is MIL-style — full materialization, one BAT-algebra
// operator at a time — exactly the operator-at-a-time model of Monet
// that the paper's cost formulas assume. Every physical plan prints
// itself via Explain (operator tree plus predicted cost) and accepts
// an optional *memsim.Sim so predicted and simulated cost can be
// compared.
package engine

import (
	"fmt"
	"strings"

	"monetlite/internal/dsm"
)

// Node is one logical plan operator. Build the DAG bottom-up from a
// Scan and lower it with Plan.
type Node interface {
	logicalNode()
}

// ScanNode is the leaf: a full scan of a decomposed table.
type ScanNode struct {
	Table *dsm.Table
}

// SelectNode filters its input by a predicate.
type SelectNode struct {
	Input Node
	Pred  Predicate
}

// ProjectNode materializes the named columns of its input.
type ProjectNode struct {
	Input Node
	Cols  []string
}

// JoinNode equi-joins Left.LeftCol = Right.RightCol. Join columns must
// be integer or date columns with values in the uint32 domain — the
// BUN layout of the paper's join kernels.
type JoinNode struct {
	Left, Right       Node
	LeftCol, RightCol string
}

// GroupAggNode groups by Key and aggregates Measure per group,
// producing columns key, count, sum, min, max. Key must be a string
// (usually byte-encoded, §3.1) or integer column.
type GroupAggNode struct {
	Input   Node
	Key     string
	Measure Expr
}

// OrderByNode sorts its input by a column.
type OrderByNode struct {
	Input Node
	Col   string
	Desc  bool
}

// LimitNode keeps the first N rows of its input.
type LimitNode struct {
	Input Node
	N     int
}

func (*ScanNode) logicalNode()     {}
func (*SelectNode) logicalNode()   {}
func (*ProjectNode) logicalNode()  {}
func (*JoinNode) logicalNode()     {}
func (*GroupAggNode) logicalNode() {}
func (*OrderByNode) logicalNode()  {}
func (*LimitNode) logicalNode()    {}

// ---------------------------------------------------------------------
// Predicates.

// Predicate is a selection condition on one column.
type Predicate interface {
	predicate()
	String() string
}

// RangePred selects rows whose integer/date column value lies in
// [Lo, Hi].
type RangePred struct {
	Col    string
	Lo, Hi int64
}

// EqStringPred selects rows whose string column equals Value. On an
// encoded column the predicate is re-mapped to a byte-code comparison
// (§3.1), so the scan never decodes.
type EqStringPred struct {
	Col   string
	Value string
}

func (RangePred) predicate()    {}
func (EqStringPred) predicate() {}

func (p RangePred) String() string {
	return fmt.Sprintf("%s in [%d,%d]", p.Col, p.Lo, p.Hi)
}

func (p EqStringPred) String() string {
	return fmt.Sprintf("%s = %q", p.Col, p.Value)
}

// ---------------------------------------------------------------------
// Measure expressions.

// Expr is a per-tuple arithmetic expression over numeric columns,
// evaluated during aggregation (e.g. price * (1 - discnt)).
type Expr interface {
	expr()
	String() string
	// columns appends the column names the expression reads.
	columns(dst []string) []string
	// eval computes the expression for row i given the gathered
	// operand columns (parallel to columns()).
	eval(cols [][]float64, i int) float64
}

// ColExpr reads a numeric (float, int or date) column.
type ColExpr struct{ Name string }

// ConstExpr is a numeric literal.
type ConstExpr struct{ V float64 }

// BinExpr applies Op ('+', '-', '*', '/') to two sub-expressions.
type BinExpr struct {
	Op   byte
	L, R Expr
}

func (ColExpr) expr()   {}
func (ConstExpr) expr() {}
func (BinExpr) expr()   {}

func (e ColExpr) String() string   { return e.Name }
func (e ConstExpr) String() string { return trimFloat(e.V) }
func (e BinExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", e.L, e.Op, e.R)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

func (e ColExpr) columns(dst []string) []string   { return append(dst, e.Name) }
func (e ConstExpr) columns(dst []string) []string { return dst }
func (e BinExpr) columns(dst []string) []string {
	return e.R.columns(e.L.columns(dst))
}

func (e ColExpr) eval(cols [][]float64, i int) float64 {
	// The planner rewrites ColExpr into indexed references before
	// execution; see boundExpr.
	panic("engine: unbound ColExpr evaluated")
}
func (e ConstExpr) eval(cols [][]float64, i int) float64 { return e.V }
func (e BinExpr) eval(cols [][]float64, i int) float64 {
	l, r := e.L.eval(cols, i), e.R.eval(cols, i)
	switch e.Op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	case '/':
		return l / r
	}
	panic(fmt.Sprintf("engine: unknown operator %q", string(e.Op)))
}

// validateExpr checks a measure expression at plan time, so malformed
// expressions surface as errors from Plan/Run instead of panicking
// during evaluation on a long-running server: every node must be a
// known expression type, every operator one of + - * /, and no
// sub-expression nil. After validation, bindExpr resolves every
// ColExpr, so the defensive eval panics below are unreachable from the
// public API.
func validateExpr(e Expr) error {
	switch x := e.(type) {
	case nil:
		return fmt.Errorf("engine: nil measure sub-expression")
	case ColExpr:
		if x.Name == "" {
			return fmt.Errorf("engine: measure column reference with empty name")
		}
		return nil
	case ConstExpr:
		return nil
	case BinExpr:
		switch x.Op {
		case '+', '-', '*', '/':
		default:
			return fmt.Errorf("engine: unknown operator %q in measure expression", string(x.Op))
		}
		if err := validateExpr(x.L); err != nil {
			return err
		}
		return validateExpr(x.R)
	default:
		return fmt.Errorf("engine: unsupported measure expression %T", e)
	}
}

// boundExpr is a ColExpr resolved to an operand-column index.
type boundExpr struct {
	ColExpr
	idx int
}

func (e boundExpr) eval(cols [][]float64, i int) float64 { return cols[e.idx][i] }

// bindExpr rewrites every ColExpr into a boundExpr indexing the
// gathered operand columns in first-appearance order.
func bindExpr(e Expr, order map[string]int) Expr {
	switch x := e.(type) {
	case ColExpr:
		i, ok := order[x.Name]
		if !ok {
			i = len(order)
			order[x.Name] = i
		}
		return boundExpr{ColExpr: x, idx: i}
	case BinExpr:
		return BinExpr{Op: x.Op, L: bindExpr(x.L, order), R: bindExpr(x.R, order)}
	default:
		return e
	}
}

// exprColumns returns the distinct columns an expression reads, in
// first-appearance order.
func exprColumns(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range e.columns(nil) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// describeCols joins a projection list for display.
func describeCols(cols []string) string { return strings.Join(cols, ", ") }
