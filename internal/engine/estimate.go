package engine

import (
	"monetlite/internal/bat"
	"monetlite/internal/dsm"
)

// samplePositions is the shared evenly-spaced probe set (≤1024
// positions), so planner estimates are deterministic for a given
// table and consistent with dsm's own output-size estimates.
func samplePositions(n int) []int { return dsm.SamplePositions(n) }

// estimateFraction estimates the fraction of rows a predicate selects
// by probing evenly spaced sample positions. The result is clamped
// away from exactly 0 so downstream cardinalities never collapse.
func estimateFraction(c *dsm.Column, pred Predicate) float64 {
	n := c.Vec.Len()
	pos := samplePositions(n)
	if len(pos) == 0 {
		return 0
	}
	match := 0
	switch p := pred.(type) {
	case RangePred:
		for _, i := range pos {
			if v := c.Vec.Int(i); v >= p.Lo && v <= p.Hi {
				match++
			}
		}
	case EqStringPred:
		if c.Enc != nil {
			code, ok := c.Enc.Code(p.Value)
			if !ok {
				return 0
			}
			for _, i := range pos {
				if dsm.CodeAt(c, i) == code {
					match++
				}
			}
		} else if sv, ok := c.Vec.(*bat.StrVec); ok {
			for _, i := range pos {
				if sv.Str(i) == p.Value {
					match++
				}
			}
		}
	}
	f := float64(match) / float64(len(pos))
	if f < 0.5/float64(len(pos)) {
		f = 0.5 / float64(len(pos))
	}
	return f
}

// estimateGroups estimates the number of distinct group keys. An
// encoded column's dictionary gives the exact domain; otherwise the
// sample's distinct count is used, saturating to the full cardinality
// when every sampled value is distinct (a high-cardinality key).
func estimateGroups(c *dsm.Column) float64 {
	if c.Enc != nil {
		return float64(len(c.Enc.Dict))
	}
	n := c.Vec.Len()
	pos := samplePositions(n)
	if len(pos) == 0 {
		return 1
	}
	seen := make(map[int64]struct{}, len(pos))
	for _, i := range pos {
		seen[c.Vec.Int(i)] = struct{}{}
	}
	d := len(seen)
	if d >= len(pos) {
		return float64(n) // saturated sample: assume near-unique key
	}
	return float64(d)
}
