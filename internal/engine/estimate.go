package engine

import (
	"math"

	"monetlite/internal/bat"
	"monetlite/internal/dsm"
)

// samplePositions is the shared evenly-spaced probe set (≤1024
// positions), so planner estimates are deterministic for a given
// table and consistent with dsm's own output-size estimates.
func samplePositions(n int) []int { return dsm.SamplePositions(n) }

// estimateFraction estimates the fraction of rows a predicate selects
// by probing evenly spaced sample positions. Every exit routes through
// clampFraction, so the result is never exactly 0 — a zero estimate
// would collapse all downstream cardinalities and degenerate the
// planner's join and grouping choices. In particular a dictionary miss
// (predicate value outside the encoding) and an empty sample set still
// return the clamp floor, not 0.
func estimateFraction(c *dsm.Column, pred Predicate) float64 {
	n := c.Vec.Len()
	pos := samplePositions(n)
	match := 0
	switch p := pred.(type) {
	case RangePred:
		for _, i := range pos {
			if v := c.Vec.Int(i); v >= p.Lo && v <= p.Hi {
				match++
			}
		}
	case EqStringPred:
		if c.Enc != nil {
			code, ok := c.Enc.Code(p.Value)
			if !ok {
				return clampFraction(0, len(pos))
			}
			for _, i := range pos {
				if dsm.CodeAt(c, i) == code {
					match++
				}
			}
		} else if sv, ok := c.Vec.(*bat.StrVec); ok {
			for _, i := range pos {
				if sv.Str(i) == p.Value {
					match++
				}
			}
		}
	}
	if len(pos) == 0 {
		return clampFraction(0, 0)
	}
	return clampFraction(float64(match)/float64(len(pos)), len(pos))
}

// clampFraction clamps a sampled selectivity away from exactly 0: the
// floor is half a hit over the probe count — the resolution limit of
// the sample. With no probes at all (an empty column) there is no
// evidence either way, and the floor degenerates to 0.5.
func clampFraction(f float64, samples int) float64 {
	if samples < 1 {
		samples = 1
	}
	if floor := 0.5 / float64(samples); f < floor {
		return floor
	}
	return f
}

// estimateGroups estimates the number of distinct group keys. An
// encoded column's dictionary gives the exact domain. Otherwise the
// sample's distinct count is used directly while the sample covers the
// domain (each value seen several times); once most samples are
// distinct, the count only bounds the domain from below, so the
// estimate inverts the birthday-collision expectation instead — s
// uniform draws from D values collide ≈ s²/2D times — saturating to
// the full cardinality when the sample has no collision at all.
func estimateGroups(c *dsm.Column) float64 {
	if c.Enc != nil {
		return float64(len(c.Enc.Dict))
	}
	n := c.Vec.Len()
	pos := samplePositions(n)
	if len(pos) == 0 {
		return 1
	}
	seen := make(map[int64]struct{}, len(pos))
	for _, i := range pos {
		seen[c.Vec.Int(i)] = struct{}{}
	}
	d := len(seen)
	s := len(pos)
	switch {
	case d >= s:
		return float64(n) // no collisions: assume near-unique key
	case d > s/2:
		// Nearly saturated: invert E[collisions] ≈ s²/2D for the
		// domain size, clamped to [d, n].
		est := float64(s) * float64(s) / (2 * float64(s-d))
		return math.Min(float64(n), math.Max(float64(d), est))
	}
	return float64(d)
}
