package engine

import (
	"fmt"
	"math"
	"strings"

	"monetlite/internal/bat"
	"monetlite/internal/core"
	"monetlite/internal/costmodel"
	"monetlite/internal/dsm"
	"monetlite/internal/memsim"
)

// Config configures planning and execution.
type Config struct {
	// Machine is the profile whose cost models drive physical choices
	// (and whose simulator instruments Run, when given one). The zero
	// value means the Origin2000, the paper's experimental platform.
	// Ignored when Model is set — the model's machine wins.
	Machine memsim.Machine
	// Model prices every cost-model consultation: the machine profile
	// plus any per-operator-kind corrections learned from profiling
	// feeds (costmodel.Model.WithResiduals). Nil means an uncorrected
	// model over Machine. When set, its embedded machine overrides
	// Machine, so a calibrated + learned model changes both the
	// formulas' inputs and how their outputs are weighed.
	Model *costmodel.Model
	// Opt tunes the native parallel execution engine for the whole
	// operator tree: selects, refilters, gathers, joins and
	// group-aggregates all split their inputs into morsels and fan
	// them out over one pool of Opt.Parallelism workers, producing
	// output byte-identical to serial execution. Instrumented runs
	// are always serial (single-CPU sim).
	Opt core.Options
	// NoPipeline disables fused cache-resident pipelines: every
	// operator executes MIL-style, one fully materialized BAT at a
	// time (the pre-pipeline engine) — the A/B baseline behind
	// mlquery's -pipeline=off. Results are byte-identical either way;
	// only the intermediate memory traffic differs. Instrumented runs
	// always take the materializing path regardless.
	NoPipeline bool
	// ForceGroup overrides the cost-based grouping choice: "hash",
	// "sort" or "radix" forces that algorithm for every GroupAggregate
	// in the plan (the A/B lever behind mlquery's -agg flag and the
	// strategy cross-check tests); "" keeps the cost-model decision.
	// Results are byte-identical whichever strategy runs.
	ForceGroup string
	// ReplanFactor configures adaptive re-optimization at breaker
	// boundaries: when the observed cardinality entering a
	// GroupAggregate materialization diverges from the planner's
	// estimate by more than this factor (in either direction), the
	// grouping choice is re-costed with the observed count — within the
	// byte-identical strategy classes (see maybeReplan). 0 means the
	// default factor 4; values must exceed 1. Results are always
	// byte-identical to the non-adaptive plan.
	ReplanFactor float64
	// NoReplan disables adaptive re-optimization entirely (the A/B
	// lever behind mlquery's -replan=0).
	NoReplan bool
}

func (c Config) machine() memsim.Machine {
	if c.Machine.Name == "" {
		return memsim.Origin2000()
	}
	return c.Machine
}

// defaultReplanFactor is the divergence (×/÷) between estimated and
// observed cardinality beyond which a breaker boundary re-costs the
// remaining choice. 4 keeps ordinary estimation noise (uniformity
// assumptions, hit-rate-one joins) from churning plans while catching
// the order-of-magnitude misses that flip algorithm choices.
const defaultReplanFactor = 4.0

// PhysicalPlan is a lowered, executable plan.
type PhysicalPlan struct {
	root physOp
	cfg  Config
}

// Plan lowers a logical DAG into a physical operator tree, consulting
// the cost models for every physical choice (see package doc), then —
// unless Config.NoPipeline — fuses maximal non-breaking operator
// chains into cache-resident pipelines.
func Plan(root Node, cfg Config) (*PhysicalPlan, error) {
	if cfg.Model != nil {
		cfg.Machine = cfg.Model.M
	} else {
		cfg.Machine = cfg.machine()
		m := costmodel.New(cfg.Machine)
		cfg.Model = &m
	}
	switch cfg.ForceGroup {
	case "", "hash", "sort", "radix":
	default:
		return nil, fmt.Errorf("engine: unknown grouping strategy %q (want hash, sort or radix)", cfg.ForceGroup)
	}
	if cfg.ReplanFactor == 0 {
		cfg.ReplanFactor = defaultReplanFactor
	}
	if cfg.ReplanFactor <= 1 {
		return nil, fmt.Errorf("engine: replan factor %g must exceed 1", cfg.ReplanFactor)
	}
	op, _, err := lower(root, cfg)
	if err != nil {
		return nil, err
	}
	if !cfg.NoPipeline {
		op = fusePipelines(op, cfg)
	}
	return &PhysicalPlan{root: op, cfg: cfg}, nil
}

// Pipelined reports whether the plan contains at least one fused
// pipeline (false under Config.NoPipeline or when every chain hits a
// breaker).
func (p *PhysicalPlan) Pipelined() bool {
	found := false
	var walk func(op physOp)
	walk = func(op physOp) {
		if _, ok := op.(*pipelineOp); ok {
			found = true
			return
		}
		for _, k := range op.kids() {
			walk(k)
		}
	}
	walk(p.root)
	return found
}

// Predicted sums the cost-model predictions of every operator.
func (p *PhysicalPlan) Predicted() costmodel.Breakdown {
	var sum costmodel.Breakdown
	var walk func(op physOp)
	walk = func(op physOp) {
		sum = sum.Add(op.predicted())
		for _, k := range op.kids() {
			walk(k)
		}
	}
	walk(p.root)
	return sum
}

// PredictedMillis prices the whole plan through the model: each
// operator's breakdown is charged at its kind's learned correction and
// the corrected milliseconds summed. This — not Predicted().Millis —
// is the number a self-tuned model reports (and what mlquery compares
// against wall-clock time).
func (p *PhysicalPlan) PredictedMillis() float64 {
	var sum float64
	var walk func(op physOp)
	walk = func(op physOp) {
		if c := op.predicted(); c != (emptyBreakdown) {
			sum += p.cfg.Model.Millis(costmodel.KindOf(op.label()), c)
		}
		for _, k := range op.kids() {
			walk(k)
		}
	}
	walk(p.root)
	return sum
}

// Machine returns the machine profile the plan was costed for.
func (p *PhysicalPlan) Machine() memsim.Machine { return p.cfg.Machine }

// Model returns the cost model (machine + learned corrections) the
// plan was costed with.
func (p *PhysicalPlan) Model() *costmodel.Model { return p.cfg.Model }

// Run executes the plan. Natively (nil sim), fused chains execute as
// cache-resident pipelines (vector-at-a-time through per-worker
// buffers) and everything else morsel-parallel per Config.Opt; with
// Config.NoPipeline the whole plan runs MIL-style, one fully
// materialized BAT-algebra operator at a time. Pass a simulator of
// the plan's machine to obtain exact L1/L2/TLB miss counts on the
// strictly serial materializing path — predicted vs simulated cost,
// side by side.
func (p *PhysicalPlan) Run(sim *memsim.Sim) (*Result, error) {
	return p.run(sim, false)
}

// RunProfiled executes the plan exactly like Run — same operators, same
// morsel decomposition, byte-identical result — while collecting a
// per-operator execution profile (EXPLAIN ANALYZE). Profiling is
// observation-only: it reads clocks and counters around operator
// boundaries and never influences scheduling or merge order.
func (p *PhysicalPlan) RunProfiled(sim *memsim.Sim) (*Result, error) {
	return p.run(sim, true)
}

func (p *PhysicalPlan) run(sim *memsim.Sim, profile bool) (*Result, error) {
	ctx := &execCtx{sim: sim, machine: p.cfg.Machine, model: p.cfg.Model,
		opt: p.cfg.Opt, forceGroup: p.cfg.ForceGroup}
	if sim != nil {
		ctx.opt = core.Serial()
	} else {
		ctx.arenas = make([]*pipeArena, ctx.opt.Workers())
	}
	if !p.cfg.NoReplan && sim == nil {
		// Adaptive re-optimization: breaker boundaries may re-cost the
		// remaining choice against observed cardinalities. Simulated
		// runs pin the planned strategies so predicted and simulated
		// cost describe the same algorithm.
		ctx.replanFactor = p.cfg.ReplanFactor
	}
	var prof *Profile
	if profile {
		workers := 1
		if sim == nil {
			workers = ctx.opt.Workers()
		}
		prof = newProfile(p.cfg.Model, workers)
		ctx.prof, ctx.spans = prof, prof.rec
	}
	frag, err := ctx.exec(p.root)
	if err != nil {
		return nil, err
	}
	if frag.rel == nil {
		// No explicit projection: reconstruct every column of every
		// bound table (names table-qualified on collision).
		cols, err := defaultProjection(frag.binds)
		if err != nil {
			return nil, err
		}
		var ph *OpStats
		if prof != nil {
			ph = prof.beginPhase("Reconstruct[default]", fmt.Sprintf("%d columns", len(cols)))
		}
		rel, err := materializeColumns(ctx, frag, cols)
		if err != nil {
			return nil, err
		}
		if ph != nil {
			var written int64
			for _, pc := range cols {
				w := int64(pc.col.Width())
				if w < 8 {
					w = 8
				}
				written += int64(rel.N) * w
			}
			prof.endPhase(ph, int64(rel.N), 0, written)
		}
		frag = &fragment{rel: rel}
	}
	res := &Result{Rel: frag.rel}
	if prof != nil {
		prof.finish()
		res.Profile = prof
	}
	return res, nil
}

// defaultProjection lists every column of every binding, qualifying
// names that appear in more than one table.
func defaultProjection(binds []binding) ([]projCol, error) {
	count := map[string]int{}
	for _, b := range binds {
		for _, cd := range b.table.Schema.Cols {
			count[cd.Name]++
		}
	}
	var out []projCol
	for bi, b := range binds {
		for _, cd := range b.table.Schema.Cols {
			name := cd.Name
			if count[cd.Name] > 1 {
				name = b.table.Schema.Name + "." + cd.Name
			}
			c, err := b.table.Column(cd.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, projCol{name: name, bindIdx: bi, col: c})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Plan-time shapes.

// shape is the planner's knowledge of an operator's output: either a
// set of bound tables (table-backed) or materialized columns, plus the
// estimated cardinality.
type shape struct {
	tables []*dsm.Table
	mat    []matCol
	rows   float64
}

type matCol struct {
	name string
	kind Kind
}

func (s *shape) materialized() bool { return s.tables == nil }

// resolve finds a named column among the bound tables. Qualified
// "table.col" names disambiguate; unqualified names must be unique.
func (s *shape) resolve(name string) (int, *dsm.Column, error) {
	if tbl, col, ok := strings.Cut(name, "."); ok {
		for i, t := range s.tables {
			if t.Schema.Name == tbl {
				c, err := t.Column(col)
				if err != nil {
					return 0, nil, err
				}
				return i, c, nil
			}
		}
		return 0, nil, fmt.Errorf("engine: no table %q in scope", tbl)
	}
	found := -1
	var fc *dsm.Column
	for i, t := range s.tables {
		if c, err := t.Column(name); err == nil {
			if found >= 0 {
				return 0, nil, fmt.Errorf("engine: column %q is ambiguous; qualify as table.%s", name, name)
			}
			found, fc = i, c
		}
	}
	if found < 0 {
		return 0, nil, fmt.Errorf("engine: no column %q in scope", name)
	}
	return found, fc, nil
}

// resolveMat finds a named materialized column.
func (s *shape) resolveMat(name string) (int, error) {
	for i, c := range s.mat {
		if c.name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("engine: no column %q in materialized result", name)
}

// ---------------------------------------------------------------------
// Lowering.

func lower(n Node, cfg Config) (physOp, *shape, error) {
	model := cfg.Model
	switch x := n.(type) {
	case *ScanNode:
		if x.Table == nil {
			return nil, nil, fmt.Errorf("engine: Scan of nil table")
		}
		return &scanOp{t: x.Table},
			&shape{tables: []*dsm.Table{x.Table}, rows: float64(x.Table.N)}, nil

	case *SelectNode:
		return lowerSelect(x, cfg)

	case *JoinNode:
		return lowerJoin(x, cfg)

	case *GroupAggNode:
		return lowerGroupAgg(x, cfg)

	case *ProjectNode:
		in, s, err := lower(x.Input, cfg)
		if err != nil {
			return nil, nil, err
		}
		op := &projectOp{in: in}
		out := &shape{rows: s.rows}
		for _, name := range x.Cols {
			if s.materialized() {
				i, err := s.resolveMat(name)
				if err != nil {
					return nil, nil, err
				}
				op.cols = append(op.cols, projCol{name: name, relIdx: i})
				out.mat = append(out.mat, s.mat[i])
			} else {
				bi, c, err := s.resolve(name)
				if err != nil {
					return nil, nil, err
				}
				op.cols = append(op.cols, projCol{name: name, bindIdx: bi, col: c})
				out.mat = append(out.mat, matCol{name: name, kind: colKind(c)})
				op.cost = op.cost.Add(gatherCost(s.rows, columnBytes(c), c.Width(), model))
			}
		}
		op.par = planPar(cfg, s.rows)
		return op, out, nil

	case *OrderByNode:
		in, s, err := lower(x.Input, cfg)
		if err != nil {
			return nil, nil, err
		}
		op := &orderByOp{in: in, colName: x.Col, desc: x.Desc}
		width := 8
		if s.materialized() {
			i, err := s.resolveMat(x.Col)
			if err != nil {
				return nil, nil, err
			}
			op.relIdx = i
		} else {
			bi, c, err := s.resolve(x.Col)
			if err != nil {
				return nil, nil, err
			}
			op.bindIdx, op.col = bi, c
			width = c.Width()
		}
		op.cost = orderByCost(int(s.rows), width, model)
		return op, s, nil

	case *LimitNode:
		in, s, err := lower(x.Input, cfg)
		if err != nil {
			return nil, nil, err
		}
		if x.N < 0 {
			return nil, nil, fmt.Errorf("engine: negative limit %d", x.N)
		}
		out := *s
		if float64(x.N) < out.rows {
			out.rows = float64(x.N)
		}
		return &limitOp{in: in, n: x.N}, &out, nil
	}
	return nil, nil, fmt.Errorf("engine: unknown logical node %T", n)
}

// lowerSelect picks the selection access path (§3.2): directly above a
// Scan the planner compares the cost models of a full-column
// scan-select and a CSS-tree range select; above anything else the
// predicate becomes a positional refilter.
func lowerSelect(x *SelectNode, cfg Config) (physOp, *shape, error) {
	model := cfg.Model
	in, s, err := lower(x.Input, cfg)
	if err != nil {
		return nil, nil, err
	}
	if s.materialized() {
		return nil, nil, fmt.Errorf("engine: Select above a materialized result is not supported")
	}
	col, err := predColumn(s, x.Pred)
	if err != nil {
		return nil, nil, err
	}
	bi, c := col.bindIdx, col.col
	frac := estimateFraction(c, x.Pred)
	out := &shape{tables: s.tables, rows: s.rows * frac}

	if _, isScan := in.(*scanOp); !isScan {
		op := &refilterOp{in: in, bindIdx: bi, col: c, pred: x.Pred, est: frac,
			par:  planPar(cfg, s.rows),
			cost: refilterCost(s.rows, columnBytes(c), model)}
		return op, out, nil
	}

	n := c.Vec.Len()
	k := float64(n) * frac
	scanCost := scanSelectCost(n, c.Width(), k, model)

	rp, isRange := x.Pred.(RangePred)
	if isRange && indexableI32(c) && rangeInI32(rp) {
		cssCost := cssSelectCost(n, k, model)
		if model.Nanos("Select[csstree]", cssCost) < model.Nanos("Select[scan]", scanCost) {
			return &selectCSSOp{in: in, col: c, pred: rp, est: frac, cost: cssCost}, out, nil
		}
	}
	return &selectScanOp{in: in, col: c, pred: x.Pred, est: frac,
		par: planPar(cfg, float64(n)), cost: scanCost}, out, nil
}

// predColumn resolves and type-checks the predicate's column.
type resolvedCol struct {
	bindIdx int
	col     *dsm.Column
}

func predColumn(s *shape, pred Predicate) (resolvedCol, error) {
	switch p := pred.(type) {
	case RangePred:
		bi, c, err := s.resolve(p.Col)
		if err != nil {
			return resolvedCol{}, err
		}
		switch c.Def.Type {
		case dsm.LInt, dsm.LDate:
		default:
			return resolvedCol{}, fmt.Errorf("engine: range predicate on %v column %q", c.Def.Type, p.Col)
		}
		return resolvedCol{bi, c}, nil
	case EqStringPred:
		bi, c, err := s.resolve(p.Col)
		if err != nil {
			return resolvedCol{}, err
		}
		if c.Def.Type != dsm.LString {
			return resolvedCol{}, fmt.Errorf("engine: string predicate on %v column %q", c.Def.Type, p.Col)
		}
		return resolvedCol{bi, c}, nil
	}
	return resolvedCol{}, fmt.Errorf("engine: unknown predicate %T", pred)
}

// rangeInI32 reports whether both range bounds lie in the int32 domain
// the CSS-tree indexes. Constants outside it are routed to scan-select
// — which compares at full int64 width — rather than clamped onto real
// MinInt32/MaxInt32 key values, which would silently change the
// predicate (e.g. v > 2^31 must match nothing, not the MaxInt32 rows).
// selectCSSOp.exec keeps a defensive guard for plans built without
// this check.
func rangeInI32(p RangePred) bool {
	const loMin, hiMax = -1 << 31, 1<<31 - 1
	return p.Lo >= loMin && p.Lo <= hiMax && p.Hi >= loMin && p.Hi <= hiMax
}

// indexableI32 reports whether a column can back a CSS-tree (a stored
// integer column within the int32 domain).
func indexableI32(c *dsm.Column) bool {
	if c.Enc != nil {
		return false
	}
	switch c.Vec.(type) {
	case *bat.I8Vec, *bat.I16Vec, *bat.I32Vec:
		return true
	}
	return false
}

// columnBytes is a column's stored footprint.
func columnBytes(c *dsm.Column) float64 {
	return float64(c.Vec.Len()) * float64(c.Width())
}

func colKind(c *dsm.Column) Kind {
	switch {
	case c.Def.Type == dsm.LString:
		return KString
	case c.Def.Type == dsm.LFloat:
		return KFloat
	default:
		return KInt
	}
}

// lowerJoin resolves the join strategy, radix bits and passes with the
// §3.4.4 machinery (core.PlanAuto over the paper's cost models) at the
// estimated operand cardinality.
func lowerJoin(x *JoinNode, cfg Config) (physOp, *shape, error) {
	model := cfg.Model
	l, ls, err := lower(x.Left, cfg)
	if err != nil {
		return nil, nil, err
	}
	r, rs, err := lower(x.Right, cfg)
	if err != nil {
		return nil, nil, err
	}
	if ls.materialized() || rs.materialized() {
		return nil, nil, fmt.Errorf("engine: Join above a materialized result is not supported")
	}
	li, lc, err := ls.resolve(x.LeftCol)
	if err != nil {
		return nil, nil, err
	}
	ri, rc, err := rs.resolve(x.RightCol)
	if err != nil {
		return nil, nil, err
	}
	for _, c := range []struct {
		col  *dsm.Column
		name string
	}{{lc, x.LeftCol}, {rc, x.RightCol}} {
		switch c.col.Def.Type {
		case dsm.LInt, dsm.LDate:
		default:
			return nil, nil, fmt.Errorf("engine: join column %q is %v, want int/date", c.name, c.col.Def.Type)
		}
	}
	card := int(ls.rows)
	if int(rs.rows) > card {
		card = int(rs.rows)
	}
	if card < 1 {
		card = 1
	}
	plan := core.PlanAutoModel(card, model)
	cost := core.PredictPlan(plan, card, model.M).
		Add(gatherCost(ls.rows, columnBytes(lc), 8, model)).
		Add(gatherCost(rs.rows, columnBytes(rc), 8, model))
	op := &joinOp{
		left: l, right: r,
		leftIdx: li, rightIdx: ri,
		leftCol: lc, rightCol: rc,
		leftName: qualify(ls, li, x.LeftCol), rightName: qualify(rs, ri, x.RightCol),
		plan: plan, card: card, par: planPar(cfg, float64(card)), cost: cost,
	}
	out := &shape{
		tables: append(append([]*dsm.Table{}, ls.tables...), rs.tables...),
		rows:   float64(card), // hit-rate-one heuristic (§3.4.1 workloads)
	}
	return op, out, nil
}

// groupChoice is a fully resolved grouping decision: the algorithm
// plus its radix tuning and predicted cost. costGrouping computes it;
// plan-time lowering and the adaptive replan at the breaker boundary
// (maybeReplan) both go through it, so the two decisions agree
// whenever the cardinalities do.
type groupChoice struct {
	strat   aggStrategy
	bits    int
	passes  int
	cost    costmodel.Breakdown
	savedMS float64 // predicted hash-minus-radix saving (radix only)
}

// costGrouping resolves the grouping algorithm for n tuples with g
// estimated groups (§3.2 extended): hash while the ~48 bytes/group
// table stays cache-resident, sort/merge if its flat cost undercuts
// that, and radix-partitioned aggregation once the table outgrows the
// caches — cluster the feed on radixBitsFor(g) low key bits
// (cost-modelled cluster passes + now-cache-resident probes) so each
// partition's table fits a quarter of L1. The three candidates are
// priced through the model under their own kinds, so a learned
// "GroupAggregate[radix]" correction reweighs the comparison. force
// ("hash"/"sort"/"radix") overrides it; a forced radix floors the bit
// count at 1 so the partitioning machinery genuinely runs. force was
// already validated by Plan — the one validation point — so every
// non-forcing value means the cost-based choice here.
func costGrouping(n int, g float64, force string, model *costmodel.Model) groupChoice {
	bits := radixBitsFor(g, model)
	passes := core.OptimalPasses(bits, model.M)
	hash := groupCost(n, g, false, model)
	sortc := groupCost(n, g, true, model)
	hashN := model.Nanos("GroupAggregate[hash]", hash)
	sortN := model.Nanos("GroupAggregate[sort]", sortc)
	var radix costmodel.Breakdown
	radixN := math.Inf(1)
	if bits > 0 {
		radix = radixGroupCost(n, g, bits, passes, model)
		radixN = model.Nanos("GroupAggregate[radix]", radix)
	}
	mkRadix := func() groupChoice {
		if bits == 0 {
			bits, passes = 1, 1
			radix = radixGroupCost(n, g, bits, passes, model)
			radixN = model.Nanos("GroupAggregate[radix]", radix)
		}
		return groupChoice{strat: aggRadix, bits: bits, passes: passes,
			cost: radix, savedMS: (hashN - radixN) / 1e6}
	}
	switch force {
	case "hash":
		return groupChoice{strat: aggHash, cost: hash}
	case "sort":
		return groupChoice{strat: aggSort, cost: sortc}
	case "radix":
		return mkRadix()
	default:
		switch {
		case bits > 0 && radixN < hashN && radixN < sortN:
			return mkRadix()
		case sortN < hashN:
			return groupChoice{strat: aggSort, cost: sortc}
		default:
			return groupChoice{strat: aggHash, cost: hash}
		}
	}
}

// chooseGrouping applies costGrouping's decision to the operator.
func chooseGrouping(op *groupAggOp, n int, g float64, cfg Config) {
	c := costGrouping(n, g, cfg.ForceGroup, cfg.Model)
	op.strat, op.radixBits, op.radixPass = c.strat, c.bits, c.passes
	op.cost, op.savedMS = c.cost, c.savedMS
}

// qualify prints a column name with its table when helpful.
func qualify(s *shape, bindIdx int, name string) string {
	if strings.Contains(name, ".") {
		return name
	}
	return s.tables[bindIdx].Schema.Name + "." + name
}

// lowerGroupAgg picks the grouping algorithm (§3.2): hash while the
// per-group state fits the memory caches, sort/merge beyond.
func lowerGroupAgg(x *GroupAggNode, cfg Config) (physOp, *shape, error) {
	model := cfg.Model
	in, s, err := lower(x.Input, cfg)
	if err != nil {
		return nil, nil, err
	}
	if s.materialized() {
		return nil, nil, fmt.Errorf("engine: GroupAggregate above a materialized result is not supported")
	}
	ki, kc, err := s.resolve(x.Key)
	if err != nil {
		return nil, nil, err
	}
	if kc.Def.Type == dsm.LString && kc.Enc == nil {
		return nil, nil, fmt.Errorf("engine: group key %q is an unencoded string column", x.Key)
	}
	if x.Measure == nil {
		return nil, nil, fmt.Errorf("engine: GroupAggregate needs a measure expression")
	}
	if err := validateExpr(x.Measure); err != nil {
		return nil, nil, err
	}
	op := &groupAggOp{in: in, bindIdx: ki, keyCol: kc, keyName: x.Key, measStr: x.Measure.String(),
		par: planPar(cfg, s.rows)}
	order := map[string]int{}
	op.measure = bindExpr(x.Measure, order)
	op.operands = make([]opCol, len(order))
	var gather costmodel.Breakdown
	// Iterate in slot order (first appearance in the expression), not
	// map order: the gather-cost floats below accumulate into a sum,
	// and float addition in random map order makes EXPLAIN output flap
	// run to run. exprColumns walks the expression exactly as bindExpr
	// does, so it yields each name at its assigned operand index.
	for _, name := range exprColumns(x.Measure) {
		idx := order[name]
		bi, c, err := s.resolve(name)
		if err != nil {
			return nil, nil, err
		}
		switch c.Def.Type {
		case dsm.LInt, dsm.LFloat, dsm.LDate:
		default:
			return nil, nil, fmt.Errorf("engine: measure column %q is %v, want numeric", name, c.Def.Type)
		}
		op.operands[idx] = opCol{bindIdx: bi, col: c, name: name}
		gather = gather.Add(gatherCost(s.rows, columnBytes(c), 8, model))
	}
	g := estimateGroups(kc)
	op.estGroups = g
	op.estRows = int(s.rows)
	chooseGrouping(op, int(s.rows), g, cfg)
	op.cost = op.cost.Add(gather)
	keyKind := KInt
	if kc.Enc != nil {
		keyKind = KString
	}
	out := &shape{
		rows: g,
		mat: []matCol{
			{name: x.Key, kind: keyKind},
			{name: "count", kind: KInt},
			{name: "sum", kind: KFloat},
			{name: "min", kind: KFloat},
			{name: "max", kind: KFloat},
		},
	}
	return op, out, nil
}
