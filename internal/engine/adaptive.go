package engine

import (
	"fmt"

	"monetlite/internal/core"
)

// Adaptive re-optimization (mid-query replanning): the planner's
// physical choices are made from cardinality *estimates* — uniformity
// assumptions for selections, the hit-rate-one heuristic for joins —
// and a bad estimate can leave a GroupAggregate running the wrong
// algorithm by an order of magnitude. But by the time the aggregate's
// feed reaches it, the estimates below have been replaced by facts:
// every pipeline breaker (the Join build/probe boundary, selection
// materialization, OrderBy) materializes its result, so the exact
// cardinality entering the aggregate is known before a single group is
// built. maybeReplan exploits that breaker boundary: when the observed
// feed cardinality diverges from the plan-time estimate by more than
// Config.ReplanFactor (either direction), the grouping choice is
// re-costed with the observed count through the same costGrouping the
// planner used.
//
// The replan is constrained to moves that keep results byte-identical
// to the non-adaptive plan — the determinism contract (results
// byte-identical across worker counts, pipeline on/off, profiled or
// not) extends to replan on/off. Per groupAggOp.group's decomposition
// analysis:
//
//   - Single morsel (n ≤ core.MorselRows): all three strategies
//     produce bitwise-identical results (hash/sort collapse to one
//     monolithic grouping; radix's stable clustering preserves global
//     input order per group), so the re-choice is unconstrained.
//   - Multi-morsel, planned radix: any bit/pass retune is free —
//     stable clustering aggregates each group in global input order
//     whatever B and P are — but switching to hash/sort would
//     re-associate the float sums (per-morsel partials merge instead
//     of global-order accumulation). Only the tuning is revisited.
//   - Multi-morsel, planned hash or sort: hash and sort share the
//     per-morsel-partials-plus-merge decomposition, so flipping
//     between them is free; moving to radix is not. The flip is the
//     only move.
//
// What deliberately does NOT replan, and why:
//
//   - The join plan (strategy/bits/passes): the JoinIndex emission
//     order is strategy-dependent, and every downstream binding
//     inherits it — a join replan would change result bytes. The
//     cardinality a join sees is also its *operands'*, already
//     materialized under the plan the estimates picked.
//   - The cluster pass count alone: core.OptimalPasses depends only on
//     the bit count and the TLB geometry, not cardinality, so an
//     observed-cardinality retune is vacuous by construction.
//   - OrderBy: one comparison-sort algorithm, nothing to choose.
//
// So in this engine the breaker boundaries below a GroupAggregate act
// as the observation points, and the aggregate — the one operator
// whose three-way algorithm choice is both cardinality-sensitive and
// byte-stable under the moves above — is what gets replanned.
// Decisions depend only on (estimate, observation, model, force), all
// identical across worker counts and pipeline modes: the replan itself
// is deterministic.

// maybeReplan re-costs the grouping choice for the observed feed
// cardinality obs, returning the retuned choice, the EXPLAIN ANALYZE
// annotation ("replanned at <op>: est=N obs=M ..."), and whether a
// replan actually changed anything. Disabled (ctx.replanFactor == 0)
// under Config.NoReplan and on simulated runs.
func (o *groupAggOp) maybeReplan(ctx *execCtx, obs int) (groupChoice, string, bool) {
	planned := groupChoice{strat: o.strat, bits: o.radixBits, passes: o.radixPass}
	f := ctx.replanFactor
	if f == 0 || o.estRows <= 0 || obs <= 0 {
		return planned, "", false
	}
	est := float64(o.estRows)
	if float64(obs) <= est*f && est <= float64(obs)*f {
		return planned, "", false // estimate held up
	}

	// Groups can't exceed rows: the observation also tightens the
	// group-count estimate the table-sizing terms use.
	g := o.estGroups
	if float64(obs) < g {
		g = float64(obs)
	}

	re := costGrouping(obs, g, ctx.forceGroup, ctx.model)
	if core.MorselsOf(obs) > 1 {
		// Multi-morsel: restrict to the byte-identical class of the
		// planned strategy (see package comment).
		switch {
		case planned.strat == aggRadix && re.strat != aggRadix:
			re = costGrouping(obs, g, "radix", ctx.model) // retune bits/passes only
		case planned.strat != aggRadix && re.strat == aggRadix:
			hashN := ctx.model.Nanos("GroupAggregate[hash]", groupCost(obs, g, false, ctx.model))
			sortN := ctx.model.Nanos("GroupAggregate[sort]", groupCost(obs, g, true, ctx.model))
			if sortN < hashN {
				re = groupChoice{strat: aggSort}
			} else {
				re = groupChoice{strat: aggHash}
			}
		}
	}
	if re.strat == planned.strat && re.bits == planned.bits && re.passes == planned.passes {
		return planned, "", false // divergence noted, same choice survives
	}
	note := fmt.Sprintf("replanned at %s: est=%d obs=%d (%s)",
		o.label(), o.estRows, obs, describeReplan(planned, re))
	return re, note, true
}

// describeReplan renders the strategy move for the annotation.
func describeReplan(from, to groupChoice) string {
	s := func(c groupChoice) string {
		if c.strat == aggRadix {
			return fmt.Sprintf("radix bits=%d passes=%d", c.bits, c.passes)
		}
		return c.strat.String()
	}
	return s(from) + " → " + s(to)
}
