package engine

import (
	"strings"
	"testing"

	"monetlite/internal/core"
	"monetlite/internal/costmodel"
	"monetlite/internal/dsm"
	"monetlite/internal/memsim"
)

func itemTable(t testing.TB, n int) *dsm.Table {
	t.Helper()
	tbl, err := dsm.ItemTable(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func partTable(t testing.TB, n int) *dsm.Table {
	t.Helper()
	tbl, err := dsm.PartTable(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func mustPlan(t testing.TB, root Node) *PhysicalPlan {
	t.Helper()
	p, err := Plan(root, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSelectAccessPathFlipsWithSelectivity is the §3.2 planner choice:
// a point-like range on a 256K-row column goes through the CSS-tree, a
// half-relation range through the scan-select, purely by predicted
// cost.
func TestSelectAccessPathFlipsWithSelectivity(t *testing.T) {
	tbl := itemTable(t, 1<<16)
	narrow := mustPlan(t, &SelectNode{
		Input: &ScanNode{Table: tbl},
		Pred:  RangePred{Col: "order", Lo: 1000, Hi: 1016},
	})
	if _, ok := narrow.root.(*selectCSSOp); !ok {
		t.Errorf("narrow range lowered to %T, want *selectCSSOp\n%s", narrow.root, narrow.Explain())
	}
	wide := mustPlan(t, &SelectNode{
		Input: &ScanNode{Table: tbl},
		Pred:  RangePred{Col: "order", Lo: 1000, Hi: 1000 + 1<<15},
	})
	if _, ok := wide.root.(*selectScanOp); !ok {
		t.Errorf("wide range lowered to %T, want *selectScanOp\n%s", wide.root, wide.Explain())
	}

	// Both access paths must select the identical rows, in storage
	// order.
	res, err := narrow.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := tbl.SelectRange(nil, "order", 1000, 1016)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tbl.GatherInt(nil, "order", scanned)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Ints("order")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("css path selected %d rows, scan %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: css %d, scan %d", i, got[i], want[i])
		}
	}
}

// TestEmptySelectionReturnsNoRows: a selection matching nothing must
// yield zero rows, never "all rows" (a nil OID list in a binding means
// the unfiltered table) — and the CSS path must not saturate
// out-of-int32-domain bounds onto real values.
func TestEmptySelectionReturnsNoRows(t *testing.T) {
	tbl := itemTable(t, 1<<14) // order domain: 1000..17383
	cases := []struct {
		name string
		pred Predicate
	}{
		{"scan range outside domain", RangePred{Col: "date1", Lo: 100, Hi: 200}},
		{"css range outside domain", RangePred{Col: "order", Lo: 500000, Hi: 500019}},
		{"css range beyond int32", RangePred{Col: "order", Lo: 1 << 33, Hi: 1<<33 + 5}},
		{"css inverted range", RangePred{Col: "order", Lo: 2000, Hi: 1000}},
		{"string outside dictionary", EqStringPred{Col: "shipmode", Value: "NOSUCH"}},
	}
	for _, tc := range cases {
		for _, sim := range []*memsim.Sim{nil, memsim.MustNew(memsim.Origin2000())} {
			plan := mustPlan(t, &SelectNode{Input: &ScanNode{Table: tbl}, Pred: tc.pred})
			res, err := plan.Run(sim)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if res.N() != 0 {
				t.Errorf("%s (sim=%v): %d rows, want 0\n%s", tc.name, sim != nil, res.N(), plan.Explain())
			}
		}
	}
}

// TestJoinPlanSwitchesWithCardinality verifies the §3.4.4 planner
// switches physical join operators as cardinality grows: tiny
// operands get the non-partitioned simple hash join, large operands a
// radix-clustered strategy with B > 0.
func TestJoinPlanSwitchesWithCardinality(t *testing.T) {
	small := mustPlan(t, &JoinNode{
		Left:    &ScanNode{Table: itemTable(t, 1<<10)},
		Right:   &ScanNode{Table: partTable(t, 2000)},
		LeftCol: "part", RightCol: "id",
	})
	big := mustPlan(t, &JoinNode{
		Left:    &ScanNode{Table: itemTable(t, 1<<18)},
		Right:   &ScanNode{Table: partTable(t, 2000)},
		LeftCol: "part", RightCol: "id",
	})
	sj, ok := small.root.(*joinOp)
	if !ok {
		t.Fatalf("small join lowered to %T", small.root)
	}
	bj, ok := big.root.(*joinOp)
	if !ok {
		t.Fatalf("big join lowered to %T", big.root)
	}
	if sj.plan.Strategy == bj.plan.Strategy && sj.plan.Bits == bj.plan.Bits {
		t.Errorf("planner chose %v at both 2K and 256K tuples", sj.plan)
	}
	if sj.plan.Strategy != core.SimpleHash {
		t.Errorf("small join strategy = %v, want simple hash", sj.plan.Strategy)
	}
	if bj.plan.Bits == 0 {
		t.Errorf("big join plan %v has no radix clustering", bj.plan)
	}
	if !strings.Contains(big.Explain(), "B=") {
		t.Errorf("Explain does not show radix bits:\n%s", big.Explain())
	}
}

// TestGroupingChoiceAndCostModel: the §3.2 grouping decision. On the
// paper's machines the compact hash table (≈48 bytes/group) beats the
// TLB-hostile radix sort + random merge gather even at high group
// counts, so hash must be chosen for a cache-resident key — and the
// hash model must charge more as the group count (and thus the table
// footprint) grows, while the sort model stays flat, which is exactly
// the crossover structure the planner compares.
func TestGroupingChoiceAndCostModel(t *testing.T) {
	tbl := itemTable(t, 1<<18)
	few := mustPlan(t, &GroupAggNode{
		Input: &ScanNode{Table: tbl}, Key: "shipmode", Measure: ColExpr{Name: "price"},
	})
	// An aggregate over a bare scan fuses; the grouping choice lives on
	// the pipeline's GroupAggregate sink.
	fo := few.root.(*pipelineOp).gagg
	if fo.strat != aggHash {
		t.Errorf("7-group aggregate lowered to %v grouping, want hash:\n%s", fo.strat, few.Explain())
	}
	if fo.estGroups != 7 {
		t.Errorf("encoded shipmode key estimated %v groups, want exactly 7 (dictionary size)", fo.estGroups)
	}
	model := costmodel.New(memsim.Origin2000())
	const n = 1 << 18
	prev := -1.0
	for _, g := range []float64{7, 1 << 12, 1 << 16, 1 << 18} {
		c := model.Nanos("GroupAggregate[hash]", groupCost(n, g, false, &model))
		if c < prev {
			t.Errorf("hash grouping model not monotone in groups: cost(%g) = %.0f < %.0f", g, c, prev)
		}
		prev = c
	}
	s1 := model.Nanos("GroupAggregate[sort]", groupCost(n, 7, true, &model))
	s2 := model.Nanos("GroupAggregate[sort]", groupCost(n, 1<<18, true, &model))
	if s1 != s2 {
		t.Errorf("sort grouping model depends on group count: %.0f vs %.0f", s1, s2)
	}
}

// TestExplainShowsChoices: the acceptance-level EXPLAIN contract — a
// select→join→group pipeline prints the chosen access path, join
// algorithm with radix bits, and grouping algorithm with predictions.
func TestExplainShowsChoices(t *testing.T) {
	plan := mustPlan(t, &GroupAggNode{
		Input: &JoinNode{
			Left: &SelectNode{
				Input: &ScanNode{Table: itemTable(t, 1<<16)},
				Pred:  RangePred{Col: "date1", Lo: 8500, Hi: 9499},
			},
			Right:   &ScanNode{Table: partTable(t, 2000)},
			LeftCol: "part", RightCol: "id",
		},
		Key:     "category",
		Measure: BinExpr{Op: '*', L: ColExpr{Name: "price"}, R: ColExpr{Name: "qty"}},
	})
	ex := plan.Explain()
	for _, want := range []string{
		"GroupAggregate[hash]", "Join[", "Select[scan]", "Scan item", "Scan part",
		"pred", "predicted",
	} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}
	joinLine := ""
	for _, line := range strings.Split(ex, "\n") {
		if strings.Contains(line, "Join[") {
			joinLine = line
		}
	}
	if !strings.Contains(joinLine, "hash") && !strings.Contains(joinLine, "radix") && !strings.Contains(joinLine, "merge") {
		t.Errorf("join line does not name an algorithm: %q", joinLine)
	}
}

// TestPredictedVsSimulated compares the plan-wide cost-model
// prediction against the memory simulator's measurement of the same
// run — the paper's Figures 9–12 methodology applied to a whole query
// plan. The models are per-operator approximations, so the check is an
// order-of-magnitude envelope, not equality.
func TestPredictedVsSimulated(t *testing.T) {
	tbl := itemTable(t, 1<<16)
	plan := mustPlan(t, &GroupAggNode{
		Input: &SelectNode{
			Input: &ScanNode{Table: tbl},
			Pred:  RangePred{Col: "date1", Lo: 8500, Hi: 9499},
		},
		Key:     "shipmode",
		Measure: ColExpr{Name: "price"},
	})
	sim := memsim.MustNew(plan.Machine())
	if _, err := plan.Run(sim); err != nil {
		t.Fatal(err)
	}
	pred := plan.Predicted().Total(plan.Machine())
	got := sim.Stats().ElapsedNanos()
	if pred <= 0 || got <= 0 {
		t.Fatalf("degenerate costs: predicted %.0f ns, simulated %.0f ns", pred, got)
	}
	ratio := pred / got
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("predicted %.2f ms vs simulated %.2f ms: ratio %.2f outside [0.1, 10]",
			pred/1e6, got/1e6, ratio)
	}
}

// TestSimRunMatchesNativeRun: instrumentation must not change results.
func TestSimRunMatchesNativeRun(t *testing.T) {
	tbl := itemTable(t, 1<<12)
	build := func() *PhysicalPlan {
		return mustPlan(t, &GroupAggNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: itemTable(t, 1<<12)},
				Pred:  RangePred{Col: "qty", Lo: 10, Hi: 20},
			},
			Key:     "status",
			Measure: ColExpr{Name: "price"},
		})
	}
	_ = tbl
	native, err := build().Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := build().Run(memsim.MustNew(memsim.Origin2000()))
	if err != nil {
		t.Fatal(err)
	}
	if native.N() != instr.N() {
		t.Fatalf("native %d rows, instrumented %d", native.N(), instr.N())
	}
	nk, _ := native.Strings("status")
	ik, _ := instr.Strings("status")
	ns, _ := native.Floats("sum")
	is, _ := instr.Floats("sum")
	for i := range nk {
		if nk[i] != ik[i] || ns[i] != is[i] {
			t.Errorf("row %d: native (%s, %f) != instrumented (%s, %f)", i, nk[i], ns[i], ik[i], is[i])
		}
	}
}

// TestPlanErrors: malformed logical plans fail at plan time, not run
// time.
func TestPlanErrors(t *testing.T) {
	tbl := itemTable(t, 128)
	part := partTable(t, 64)
	cases := []struct {
		name string
		node Node
	}{
		{"unknown column", &SelectNode{Input: &ScanNode{Table: tbl}, Pred: RangePred{Col: "nope", Lo: 0, Hi: 1}}},
		{"range on string", &SelectNode{Input: &ScanNode{Table: tbl}, Pred: RangePred{Col: "shipmode", Lo: 0, Hi: 1}}},
		{"string eq on int", &SelectNode{Input: &ScanNode{Table: tbl}, Pred: EqStringPred{Col: "qty", Value: "x"}}},
		{"join on float", &JoinNode{Left: &ScanNode{Table: tbl}, Right: &ScanNode{Table: part}, LeftCol: "price", RightCol: "id"}},
		{"measure on string", &GroupAggNode{Input: &ScanNode{Table: tbl}, Key: "shipmode", Measure: ColExpr{Name: "comment"}}},
		{"missing measure", &GroupAggNode{Input: &ScanNode{Table: tbl}, Key: "shipmode"}},
		{"select above groupagg", &SelectNode{
			Input: &GroupAggNode{Input: &ScanNode{Table: tbl}, Key: "shipmode", Measure: ColExpr{Name: "price"}},
			Pred:  RangePred{Col: "count", Lo: 0, Hi: 10},
		}},
		{"negative limit", &LimitNode{Input: &ScanNode{Table: tbl}, N: -1}},
	}
	for _, tc := range cases {
		if _, err := Plan(tc.node, Config{}); err == nil {
			t.Errorf("%s: Plan succeeded, want error", tc.name)
		}
	}
}

// TestAmbiguousColumnNeedsQualification: after a join, a column name
// present in both tables must be qualified.
func TestAmbiguousColumnNeedsQualification(t *testing.T) {
	items := itemTable(t, 256)
	// Self-join: every column is ambiguous.
	join := &JoinNode{
		Left: &ScanNode{Table: items}, Right: &ScanNode{Table: items},
		LeftCol: "order", RightCol: "order",
	}
	if _, err := Plan(&ProjectNode{Input: join, Cols: []string{"qty"}}, Config{}); err == nil {
		t.Error("unqualified ambiguous projection succeeded, want error")
	}
	if _, err := Plan(&ProjectNode{Input: join, Cols: []string{"item.qty"}}, Config{}); err != nil {
		// Self-join of the same table name cannot disambiguate either —
		// both bindings are "item" — but resolution must pick the first
		// match for a qualified name rather than erroring.
		t.Errorf("qualified projection failed: %v", err)
	}
}

// TestOrderByLimitProject exercises the tail operators over a
// table-backed intermediate.
func TestOrderByLimitProject(t *testing.T) {
	tbl := itemTable(t, 1<<10)
	plan := mustPlan(t, &LimitNode{
		Input: &OrderByNode{
			Input: &ProjectNode{Input: &ScanNode{Table: tbl}, Cols: []string{"order", "price"}},
			Col:   "price", Desc: true,
		},
		N: 5,
	})
	res, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.N() != 5 {
		t.Fatalf("got %d rows, want 5", res.N())
	}
	prices, err := res.Floats("price")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prices); i++ {
		if prices[i] > prices[i-1] {
			t.Errorf("prices not descending: %v", prices)
		}
	}
}
