package engine

import (
	"reflect"
	"testing"

	"monetlite/internal/bat"
	"monetlite/internal/core"
	"monetlite/internal/dsm"
)

// Regression pins for two correctness hazards around the CSS-tree
// select path: int32-boundary predicate constants (clamping must never
// change predicate semantics) and nil-vs-empty OID lists (an empty
// selection must always be a non-nil empty slice — a nil list means
// "all rows" to bindings and dsm.GroupAggregate).

// boundaryTable holds the int32 extremes plus interior values in an
// I32 column.
func boundaryTable(t *testing.T) *dsm.Table {
	t.Helper()
	vals := []int64{-1 << 31, -1<<31 + 1, -7, 0, 7, 1<<31 - 2, 1<<31 - 1}
	schema := dsm.Schema{Name: "bound", Cols: []dsm.ColumnDef{
		{Name: "k", Type: dsm.LInt},
		{Name: "v", Type: dsm.LFloat},
	}}
	rows := make([][]any, len(vals))
	for i, v := range vals {
		rows[i] = []any{v, float64(i)}
	}
	tbl, err := dsm.Decompose(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mustColumn(t, tbl, "k").Vec.(*bat.I32Vec); !ok {
		t.Fatalf("boundary column not stored as int32")
	}
	return tbl
}

func mustColumn(t *testing.T, tbl *dsm.Table, name string) *dsm.Column {
	t.Helper()
	c, err := tbl.Column(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCSSSelectInt32Boundaries: for ranges at and beyond the int32
// domain edges, the CSS-tree exec path must return exactly what the
// full-width scan-select returns — out-of-domain constants route to
// empty or saturate harmlessly, never silently match boundary rows.
func TestCSSSelectInt32Boundaries(t *testing.T) {
	tbl := boundaryTable(t)
	col := mustColumn(t, tbl, "k")
	ranges := []struct {
		name   string
		lo, hi int64
	}{
		{"all of int64", -1 << 62, 1 << 62},
		{"exact domain", -1 << 31, 1<<31 - 1},
		{"above MaxInt32", 1 << 31, 1 << 40},
		{"v > MaxInt32 (the clamp bug)", 1<<31 - 1 + 1, 1<<62 - 1},
		{"below MinInt32", -1 << 40, -1<<31 - 1},
		{"straddles MaxInt32", 1<<31 - 2, 1 << 40},
		{"straddles MinInt32", -1 << 40, -1<<31 + 1},
		{"point MaxInt32", 1<<31 - 1, 1<<31 - 1},
		{"point MinInt32", -1 << 31, -1 << 31},
		{"inverted", 10, -10},
		{"inverted outside", 1 << 40, -1 << 40},
	}
	for _, r := range ranges {
		pred := RangePred{Col: "k", Lo: r.lo, Hi: r.hi}
		ctx := &execCtx{opt: core.Serial()}
		scanFrag, err := (&selectScanOp{in: &scanOp{t: tbl}, col: col, pred: pred}).exec(ctx)
		if err != nil {
			t.Fatal(err)
		}
		cssFrag, err := (&selectCSSOp{in: &scanOp{t: tbl}, col: col, pred: pred}).exec(ctx)
		if err != nil {
			t.Fatal(err)
		}
		so, co := scanFrag.binds[0].oids, cssFrag.binds[0].oids
		if !reflect.DeepEqual(so, co) {
			t.Errorf("%s [%d, %d]: scan selected %v, css-tree %v", r.name, r.lo, r.hi, so, co)
		}
		if so == nil || co == nil {
			t.Errorf("%s: nil OID list (scan nil=%v, css nil=%v)", r.name, so == nil, co == nil)
		}
	}
}

// TestPlannerRoutesOutOfDomainRangesToScan: the planner must not hand
// an out-of-int32-domain constant to the CSS-tree path at all, however
// selective the predicate looks.
func TestPlannerRoutesOutOfDomainRangesToScan(t *testing.T) {
	tbl := itemTable(t, 1<<16)
	// A point-like in-domain range prefers the CSS-tree (the flip test
	// pins this); the same shape beyond MaxInt32 must take the scan.
	in := mustPlan(t, &SelectNode{
		Input: &ScanNode{Table: tbl},
		Pred:  RangePred{Col: "order", Lo: 1000, Hi: 1016},
	})
	if _, ok := in.root.(*selectCSSOp); !ok {
		t.Fatalf("in-domain narrow range lowered to %T, want *selectCSSOp", in.root)
	}
	for _, r := range []struct{ lo, hi int64 }{
		{1 << 31, 1<<31 + 16},
		{-1<<31 - 17, -1<<31 - 1},
		{1<<31 - 8, 1<<31 + 8},
	} {
		p := mustPlan(t, &SelectNode{
			Input: &ScanNode{Table: tbl},
			Pred:  RangePred{Col: "order", Lo: r.lo, Hi: r.hi},
		})
		if _, ok := p.root.(*selectScanOp); !ok {
			t.Errorf("out-of-domain range [%d, %d] lowered to %T, want *selectScanOp\n%s",
				r.lo, r.hi, p.root, p.Explain())
		}
	}
}

// TestWholeQueryOutOfDomainRange: end to end, a predicate beyond the
// int32 domain returns the correct rows (none here) on every execution
// mode.
func TestWholeQueryOutOfDomainRange(t *testing.T) {
	tbl := itemTable(t, 1<<12)
	for _, noPipe := range []bool{false, true} {
		p, err := Plan(&ProjectNode{
			Input: &SelectNode{
				Input: &ScanNode{Table: tbl},
				Pred:  RangePred{Col: "order", Lo: 1 << 31, Hi: 1 << 40},
			},
			Cols: []string{"order"},
		}, Config{NoPipeline: noPipe})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.N() != 0 {
			t.Errorf("noPipe=%v: v in [2^31, 2^40] matched %d rows, want 0", noPipe, res.N())
		}
	}
}

// TestEmptySelectionsAreNonNil: every access path — scan-select,
// CSS-tree, refilter, pipeline OID sink, dsm-level selects — must
// normalize an empty result to a non-nil empty OID slice, so no
// consumer can mistake it for the nil "all rows" binding.
func TestEmptySelectionsAreNonNil(t *testing.T) {
	shrinkMorsels(t, 64)
	tbl := itemTable(t, 512)

	// dsm level, native and instrumented, serial and parallel.
	for _, opt := range []core.Options{core.Serial(), {Parallelism: 4}} {
		oids, err := tbl.SelectRangeOpts(nil, "qty", 1000, 2000, opt)
		if err != nil {
			t.Fatal(err)
		}
		if oids == nil || len(oids) != 0 {
			t.Errorf("SelectRangeOpts empty result: nil=%v len=%d", oids == nil, len(oids))
		}
		oids, err = tbl.SelectStringOpts(nil, "shipmode", "NO-SUCH-MODE", opt)
		if err != nil {
			t.Fatal(err)
		}
		if oids == nil || len(oids) != 0 {
			t.Errorf("SelectStringOpts dictionary miss: nil=%v len=%d", oids == nil, len(oids))
		}
	}

	// Engine level: empty selects, refilters above them, and the fused
	// pipeline's OID sink, on both execution modes.
	preds := []Predicate{
		RangePred{Col: "qty", Lo: 1000, Hi: 2000},
		EqStringPred{Col: "shipmode", Value: "NO-SUCH-MODE"},
	}
	for _, pred := range preds {
		for _, noPipe := range []bool{false, true} {
			root := &SelectNode{
				Input: &SelectNode{Input: &ScanNode{Table: tbl}, Pred: RangePred{Col: "date1", Lo: 8000, Hi: 10500}},
				Pred:  pred,
			}
			p, err := Plan(root, Config{NoPipeline: noPipe, Opt: core.Options{Parallelism: 4}})
			if err != nil {
				t.Fatal(err)
			}
			ctx := &execCtx{machine: p.cfg.Machine, opt: p.cfg.Opt}
			ctx.arenas = make([]*pipeArena, ctx.opt.Workers())
			frag, err := p.root.exec(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for bi, b := range frag.binds {
				if b.oids == nil {
					t.Errorf("pred %v noPipe=%v: binding %d has nil OID list for an empty result", pred, noPipe, bi)
				} else if len(b.oids) != 0 {
					t.Errorf("pred %v noPipe=%v: expected empty result, got %d rows", pred, noPipe, len(b.oids))
				}
			}
		}
	}

	// The CSS path's own empty exits (inverted and out-of-domain).
	col := mustColumn(t, tbl, "order")
	for _, pred := range []RangePred{
		{Col: "order", Lo: 5, Hi: -5},
		{Col: "order", Lo: 1 << 40, Hi: 1 << 41},
		{Col: "order", Lo: 1 << 20, Hi: 1 << 21},
	} {
		frag, err := (&selectCSSOp{in: &scanOp{t: tbl}, col: col, pred: pred}).exec(&execCtx{opt: core.Serial()})
		if err != nil {
			t.Fatal(err)
		}
		if frag.binds[0].oids == nil {
			t.Errorf("CSS %v: nil OID list for an empty result", pred)
		}
	}
}

// TestGroupAggregateEmptyOidsVsNil pins the consumer-side hazard the
// normalization prevents: dsm.GroupAggregate must aggregate zero rows
// for an empty (non-nil) selection, not fall back to the whole table.
func TestGroupAggregateEmptyOidsVsNil(t *testing.T) {
	tbl := itemTable(t, 256)
	empty, err := tbl.SelectString(nil, "shipmode", "NO-SUCH-MODE")
	if err != nil {
		t.Fatal(err)
	}
	if empty == nil {
		t.Fatal("empty selection returned nil")
	}
	rows, err := tbl.GroupAggregate(nil, "shipmode", "price", empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("empty selection aggregated %d groups, want 0", len(rows))
	}
}
