package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"monetlite/internal/bat"
	"monetlite/internal/core"
	"monetlite/internal/costmodel"
	"monetlite/internal/dsm"
)

// Fused, cache-resident pipelines: instead of executing one fully
// materialized BAT-algebra operator at a time, the planner groups a
// maximal non-breaking operator chain
//
//	Scan → Select[scan] → Refilter* → {OID list | Project | AggFeed} [→ Limit]
//
// into a single pipeline physical op. The pipeline executes per morsel
// of the base table: within a morsel it iterates small typed vectors
// (sized so the working set fits the machine's L2 cache), passing a
// position vector from stage to stage through per-worker scratch
// buffers — the intermediates that the materializing path writes to
// RAM and reads back (OID lists, position lists, gathered operand
// temporaries) never leave the cache. Pipeline breakers — the Join
// build/probe boundary, the GroupAggregate merge, OrderBy — still
// materialize exactly as before.
//
// Two contracts hold by construction:
//
//   - Results are byte-identical to the materializing path at every
//     worker count. Outputs append in (morsel, vector, row) order, the
//     gathers perform the same conversions, and the GroupAggregate
//     sink materializes the identical (key, value) feed arrays before
//     handing them to the *same* grouping code the materializing
//     operator uses — hash/sort partials-and-merge or the
//     radix-partitioned path, per the planner's choice — so even float
//     aggregates associate identically. The AggFeed sink is thus all a
//     radix GroupAggregate needs: its feed arrays stream straight into
//     the first cluster pass, with no other intermediate materialized.
//   - Instrumented runs (sim != nil) never enter the fused path: the
//     pipeline delegates to the original operator chain, which stays
//     strictly serial, so the paper's figures reproduce unchanged.

// pipeFilter is one filtering stage of a pipeline.
type pipeFilter struct {
	col  *dsm.Column
	pred Predicate
	est  float64
	base bool // contiguous scan-select directly above the Scan
}

// pipelineOp is the fused physical operator.
type pipelineOp struct {
	legacy  physOp // the original chain, kept for instrumented runs
	t       *dsm.Table
	filters []pipeFilter
	proj    *projectOp  // Project sink (nil otherwise)
	gagg    *groupAggOp // GroupAggregate sink (nil otherwise)
	limitN  int         // Limit probe; -1 = none

	vecRows int     // rows per stage vector (working set fits L2)
	estOut  float64 // estimated fraction of base rows surviving all filters
	par     int     // planned native degree of parallelism

	model      *costmodel.Model
	stages     []physOp // explain adapters, in execution order
	savedBytes float64  // predicted intermediate traffic not spent
	cost       costmodel.Breakdown
}

func (o *pipelineOp) label() string {
	parts := []string{}
	if len(o.filters) > 0 && o.filters[0].base {
		parts = append(parts, "Select")
	} else {
		parts = append(parts, "Scan")
	}
	for _, f := range o.filters {
		if !f.base {
			parts = append(parts, "Refilter")
		}
	}
	switch {
	case o.proj != nil:
		parts = append(parts, "Project")
	case o.gagg != nil:
		if o.gagg.strat == aggRadix {
			parts = append(parts, "Agg[radix]")
		} else {
			parts = append(parts, "Agg")
		}
	}
	if o.limitN >= 0 {
		parts = append(parts, "Limit")
	}
	return fmt.Sprintf("Pipeline[%s]", strings.Join(parts, "→"))
}

func (o *pipelineOp) detail() string {
	return fmt.Sprintf("%s  vec=%d rows  par=%d  saves~%s traffic",
		o.t.Schema.Name, o.vecRows, o.par, fmtBytes(o.savedBytes))
}

func (o *pipelineOp) kids() []physOp                 { return o.stages }
func (o *pipelineOp) predicted() costmodel.Breakdown { return o.cost }

// fmtBytes renders a byte count at a human scale.
func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// pipeStageOp adapts a fused operator for EXPLAIN: the pipeline prints
// its member stages with their per-stage details and predictions, but
// the stages report a zero breakdown so Predicted() counts the
// pipeline's net cost exactly once.
//
//monet:allow costcover explain-only adapter: exec() always errors and the enclosing pipelineOp accounts the fused traffic exactly once
type pipeStageOp struct {
	inner physOp
	model *costmodel.Model
}

func (s *pipeStageOp) exec(*execCtx) (*fragment, error) {
	return nil, fmt.Errorf("engine: pipeline stage executed outside its pipeline")
}
func (s *pipeStageOp) label() string { return s.inner.label() }
func (s *pipeStageOp) detail() string {
	d := s.inner.detail()
	if c := s.inner.predicted(); c != emptyBreakdown {
		kind := costmodel.KindOf(s.inner.label())
		d = fmt.Sprintf("%s  [stage pred %.2f ms]", d, s.model.Millis(kind, c))
	}
	return d
}
func (s *pipeStageOp) kids() []physOp                 { return nil }
func (s *pipeStageOp) predicted() costmodel.Breakdown { return costmodel.Breakdown{} }

// ---------------------------------------------------------------------
// Fusion: rewrite a lowered physical tree, grouping maximal
// non-breaking chains into pipelines.

// fusePipelines walks a lowered plan and replaces every maximal
// fusable chain with a pipelineOp. Everything else (joins, CSS-tree
// selects, OrderBy, operators over materialized results) is left
// untouched — those are the pipeline breakers.
func fusePipelines(op physOp, cfg Config) physOp {
	if p := matchChain(op, cfg); p != nil {
		return p
	}
	switch x := op.(type) {
	case *limitOp:
		x.in = fusePipelines(x.in, cfg)
	case *projectOp:
		x.in = fusePipelines(x.in, cfg)
	case *orderByOp:
		x.in = fusePipelines(x.in, cfg)
	case *refilterOp:
		x.in = fusePipelines(x.in, cfg)
	case *groupAggOp:
		x.in = fusePipelines(x.in, cfg)
	case *selectScanOp:
		x.in = fusePipelines(x.in, cfg)
	case *selectCSSOp:
		x.in = fusePipelines(x.in, cfg)
	case *joinOp:
		x.left = fusePipelines(x.left, cfg)
		x.right = fusePipelines(x.right, cfg)
	}
	return op
}

// matchChain tries to interpret op as the head of a fusable chain down
// to a Scan, returning the pipeline or nil. Fusion rules (each must
// beat the materializing path, not just match it):
//
//   - a GroupAggregate sink always fuses (the gather+eval feed stays
//     in cache even over a bare scan);
//   - a Project sink fuses when at least one filter stage or a Limit
//     rides the chain (a bare full-table projection is already one
//     sequential sweep);
//   - a bare filter chain (OID-list sink) fuses when it has ≥ 2
//     stages, or a Limit to short-circuit — a single scan-select
//     already runs morsel-parallel with one output write.
func matchChain(op physOp, cfg Config) *pipelineOp {
	limitN := -1
	cur := op
	if l, ok := cur.(*limitOp); ok {
		limitN = l.n
		cur = l.in
	}
	var proj *projectOp
	var gagg *groupAggOp
	switch s := cur.(type) {
	case *projectOp:
		proj = s
		cur = s.in
	case *groupAggOp:
		if limitN >= 0 {
			return nil // Limit over the tiny aggregate result is free; fuse below instead
		}
		gagg = s
		cur = s.in
	}
	var filters []pipeFilter
	var scan *scanOp
walk:
	for {
		switch f := cur.(type) {
		case *refilterOp:
			if f.bindIdx != 0 {
				return nil
			}
			filters = append(filters, pipeFilter{col: f.col, pred: f.pred, est: f.est})
			cur = f.in
		case *selectScanOp:
			filters = append(filters, pipeFilter{col: f.col, pred: f.pred, est: f.est, base: true})
			cur = f.in
		case *scanOp:
			scan = f
			break walk
		default:
			return nil // CSS-tree select, join, materialized input, ...
		}
	}
	// filters were collected top-down; execution order is bottom-up.
	for i, j := 0, len(filters)-1; i < j; i, j = i+1, j-1 {
		filters[i], filters[j] = filters[j], filters[i]
	}
	// A fused chain covers exactly one table, so every column reference
	// must resolve to binding 0 — guaranteed by construction (the chain
	// roots at a Scan), checked here so a future planner change cannot
	// silently fuse a multi-binding shape.
	if proj != nil {
		for _, pc := range proj.cols {
			if pc.col == nil || pc.bindIdx != 0 {
				return nil
			}
		}
	}
	if gagg != nil {
		if gagg.bindIdx != 0 {
			return nil
		}
		for _, op := range gagg.operands {
			if op.bindIdx != 0 {
				return nil
			}
		}
	}
	switch {
	case gagg != nil:
	case proj != nil:
		if len(filters) == 0 && limitN < 0 {
			return nil
		}
	default:
		if len(filters) < 2 && limitN < 0 {
			return nil
		}
		if len(filters) == 0 {
			return nil // bare Scan (+Limit): the sliced void binding is already free
		}
	}

	p := &pipelineOp{
		legacy:  op,
		t:       scan.t,
		filters: filters,
		proj:    proj,
		gagg:    gagg,
		limitN:  limitN,
		model:   cfg.Model,
		par:     planPar(cfg, float64(scan.t.N)),
	}
	p.estOut = 1
	for _, f := range filters {
		p.estOut *= f.est
	}
	p.vecRows = vecRowsFor(cfg.Model, p.rowFootprint())
	p.savedBytes = p.savedTraffic()
	var sum costmodel.Breakdown
	var stages []physOp
	var collect func(c physOp)
	collect = func(c physOp) {
		for _, k := range c.kids() {
			collect(k)
		}
		sum = sum.Add(c.predicted())
		stages = append(stages, &pipeStageOp{inner: c, model: cfg.Model})
	}
	collect(op)
	p.stages = stages
	p.cost = subClamp(sum, p.savedBreakdown(cfg.Model))
	return p
}

// savedBreakdown is the cost-model form of the traffic saving: only
// the terms the per-operator models actually charge for intermediates
// are subtracted — the eliminated OID-list output writes
// (seqBreakdown(4k) in scanSelectCost/refilterCost) and the
// per-operand temporary writes (the seqBreakdown(8k) term of each
// operand's gatherCost). savedTraffic reports the larger
// implementation-level byte count (lists are also read back, position
// lists materialize, …), but subtracting that would erase misses the
// models never predicted.
func (o *pipelineOp) savedBreakdown(model *costmodel.Model) costmodel.Breakdown {
	k := float64(o.t.N)
	var saved costmodel.Breakdown
	for i, f := range o.filters {
		k *= f.est
		if i < len(o.filters)-1 || o.proj != nil || o.gagg != nil {
			saved = saved.Add(seqBreakdown(4*k, model))
		}
	}
	if o.gagg != nil {
		saved = saved.Add(seqBreakdown(8*k, model).Scale(float64(len(o.gagg.operands))))
	}
	return saved
}

// rowFootprint estimates the per-row working-set bytes of one pipeline
// vector: the position vector plus every value the stages and sink
// touch per kept row — what must stay cache-resident.
func (o *pipelineOp) rowFootprint() int {
	b := 4 // position vector entry
	for _, f := range o.filters {
		if !f.base {
			b += f.col.Width()
		}
	}
	switch {
	case o.proj != nil:
		for _, pc := range o.proj.cols {
			w := pc.col.Width()
			if w < 8 {
				w = 8 // widened on materialization
			}
			b += w
		}
	case o.gagg != nil:
		b += 16 + 8*len(o.gagg.operands) // keys + vals + operand scratch
	default:
		b += 8 // OID output
	}
	return b
}

// vecRowsFor sizes a stage vector so the pipeline's working set
// occupies at most a quarter of L2 — leaving room for the streamed
// base columns and, under a GroupAggregate sink, the aggregation hash
// table (§3.2's cache-resident regime).
func vecRowsFor(model *costmodel.Model, rowBytes int) int {
	if rowBytes < 12 {
		rowBytes = 12
	}
	budget := model.M.L2.Size / 4
	v := budget / rowBytes
	// Round down to a power of two, clamped to [256, 64K].
	p := 256
	for p*2 <= v && p < 1<<16 {
		p *= 2
	}
	return p
}

// savedTraffic predicts the intermediate bytes the materializing path
// writes to and reads back from RAM that the fused pipeline never
// materializes: inter-stage OID lists, per-gather position resolution,
// and the GroupAggregate operand temporaries. This is the
// materialization-traffic term EXPLAIN reports per pipeline.
func (o *pipelineOp) savedTraffic() float64 {
	k := float64(o.t.N)
	saved := 0.0
	for i, f := range o.filters {
		k *= f.est
		last := i == len(o.filters)-1
		if !last || o.proj != nil || o.gagg != nil {
			// An OID list of k rows (4 bytes each), written once and read
			// back by the next stage.
			saved += 8 * k
		}
	}
	switch {
	case o.proj != nil:
		// Each materialized column re-reads the OID list to resolve
		// positions.
		saved += 4 * k * float64(len(o.proj.cols))
	case o.gagg != nil:
		// Per gather call (keys + each operand): the 8-byte position
		// list written and read back, plus the OID-list re-read; per
		// operand: the float temporary written then read by eval.
		saved += 20 * k * float64(1+len(o.gagg.operands))
		saved += 16 * k * float64(len(o.gagg.operands))
	}
	return saved
}

// ---------------------------------------------------------------------
// Execution.

// resolvedFilter is a pipeline filter with its predicate resolved to a
// kernel-ready form (dictionary codes looked up once per run).
type resolvedFilter struct {
	col  *dsm.Column
	base bool
	kind uint8
	lo   int64 // range lower bound, or the dictionary code
	hi   int64
	sv   *bat.StrVec
	val  string
}

// resolvedFilter kinds.
const (
	fRange uint8 = iota // numeric range
	fCode               // encoded string equality → code compare
	fStr                // unencoded string equality
	fMiss               // value outside dictionary: nothing matches
)

func (o *pipelineOp) resolveFilters() ([]resolvedFilter, error) {
	out := make([]resolvedFilter, len(o.filters))
	for i, f := range o.filters {
		rf := resolvedFilter{col: f.col, base: f.base}
		switch p := f.pred.(type) {
		case RangePred:
			rf.kind, rf.lo, rf.hi = fRange, p.Lo, p.Hi
		case EqStringPred:
			switch {
			case f.col.Enc != nil:
				code, ok := f.col.Enc.Code(p.Value)
				if !ok {
					rf.kind = fMiss
				} else {
					rf.kind, rf.lo = fCode, code
				}
			default:
				sv, ok := f.col.Vec.(*bat.StrVec)
				if !ok {
					return nil, fmt.Errorf("engine: column %q is not a string column", p.Col)
				}
				rf.kind, rf.sv, rf.val = fStr, sv, p.Value
			}
		default:
			return nil, fmt.Errorf("engine: unsupported predicate %T in pipeline", f.pred)
		}
		out[i] = rf
	}
	return out, nil
}

// selectInto runs a base filter over the contiguous positions
// [from, to), appending matches to dst.
func (f *resolvedFilter) selectInto(from, to int, dst []int32) []int32 {
	switch f.kind {
	case fRange:
		return dsm.SelectRangePos(f.col, f.lo, f.hi, from, to, dst)
	case fCode:
		return dsm.SelectCodePos(f.col, f.lo, from, to, dst)
	case fStr:
		for i := from; i < to; i++ {
			if f.sv.Str(i) == f.val {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	return dst // fMiss
}

// filterInPlace runs a refilter stage over a position vector.
func (f *resolvedFilter) filterInPlace(pos []int32) []int32 {
	switch f.kind {
	case fRange:
		return dsm.FilterRangePos(f.col, f.lo, f.hi, pos)
	case fCode:
		return dsm.FilterCodePos(f.col, f.lo, pos)
	case fStr:
		out := pos[:0]
		for _, p := range pos {
			if f.sv.Str(int(p)) == f.val {
				out = append(out, p)
			}
		}
		return out
	}
	return pos[:0] // fMiss
}

// pipeChunk accumulates one morsel's pipeline output; chunks
// concatenate in morsel order, so results are byte-identical for any
// worker count.
type pipeChunk struct {
	oids []bat.Oid // OID-list sink
	cols []RelCol  // Project sink
	keys []int64   // AggFeed sink
	vals []float64
	rows int
	done bool
	err  error

	// Profiling-only per-stage counters (nil when disabled — the hot
	// loop pays one nil check per vector): scanned base rows and the
	// survivor count after each filter stage.
	scanned   int
	stageRows []int64
}

func (o *pipelineOp) exec(ctx *execCtx) (*fragment, error) {
	if ctx.sim != nil {
		// The instrumented path models a single 1999 CPU and must stay
		// exactly the serial materializing execution the paper's cost
		// formulas describe.
		return ctx.exec(o.legacy)
	}
	rf, err := o.resolveFilters()
	if err != nil {
		return nil, err
	}
	n := o.t.N
	chunks := make([]pipeChunk, core.MorselsOf(n))
	if ctx.prof != nil {
		for m := range chunks {
			chunks[m].stageRows = make([]int64, len(rf))
		}
	}
	if err := o.run(ctx, rf, chunks); err != nil {
		return nil, err
	}
	if ctx.prof != nil {
		o.recordStages(ctx.prof, chunks)
	}
	return o.assemble(ctx, chunks)
}

// recordStages summarizes the fused stages as profile nodes: rows in
// and out per stage (from the profiling counters the morsel loop kept)
// and each stage's would-be traffic in cost-model width units. Stages
// carry no own wall time — they interleave per vector inside the
// pipeline's time.
func (o *pipelineOp) recordStages(prof *Profile, chunks []pipeChunk) {
	scanned := int64(0)
	stage := make([]int64, len(o.filters))
	fed := int64(0)
	for m := range chunks {
		scanned += int64(chunks[m].scanned)
		for i, r := range chunks[m].stageRows {
			stage[i] += r
		}
		fed += int64(chunks[m].rows)
	}
	prof.addStage("Scan", fmt.Sprintf("%s (%d rows)", o.t.Schema.Name, o.t.N),
		int64(o.t.N), scanned, 0, 0)
	in := scanned
	for i, f := range o.filters {
		label := "Select[refilter]"
		read := in * int64(f.col.Width())
		if f.base {
			label = "Select[scan]"
			read = scanned * int64(f.col.Width())
		}
		prof.addStage(label, fmt.Sprint(f.pred), in, stage[i], read, stage[i]*4)
		in = stage[i]
	}
	switch {
	case o.proj != nil:
		var read, written int64
		for _, pc := range o.proj.cols {
			w := int64(pc.col.Width())
			read += fed * w
			if w < 8 {
				w = 8
			}
			written += fed * w
		}
		prof.addStage("Project", o.proj.detail(), in, fed, read, written)
	case o.gagg != nil:
		w := int64(o.gagg.keyCol.Width())
		for _, oc := range o.gagg.operands {
			w += int64(oc.col.Width())
		}
		prof.addStage(fmt.Sprintf("AggFeed[%s]", o.gagg.strat), o.gagg.detail(),
			in, fed, fed*w, fed*16)
	default:
		prof.addStage("OIDs", "", in, fed, 0, fed*4)
	}
	if o.limitN >= 0 {
		out := fed
		if int64(o.limitN) < out {
			out = int64(o.limitN)
		}
		prof.addStage("Limit", fmt.Sprintf("%d", o.limitN), fed, out, 0, 0)
	}
}

// run drains the morsels over the worker pool. With a Limit probe the
// loop stops scheduling morsels as soon as a contiguous prefix of
// completed morsels has produced enough rows — the short-circuit that
// makes Limit-without-OrderBy stop consuming input.
func (o *pipelineOp) run(ctx *execCtx, rf []resolvedFilter, chunks []pipeChunk) error {
	n := o.t.N
	nm := len(chunks)
	workers := ctx.par(n)
	if workers <= 1 {
		produced := 0
		for m := 0; m < nm; m++ {
			lo, hi := core.MorselBounds(m, n)
			var start int64
			if ctx.spans != nil {
				start = ctx.spans.Clock()
			}
			o.runMorsel(ctx.arena(0), rf, lo, hi, &chunks[m])
			if ctx.spans != nil {
				ctx.spans.Record(0, m, start)
			}
			if chunks[m].err != nil {
				return chunks[m].err
			}
			chunks[m].done = true
			produced += chunks[m].rows
			if o.limitN >= 0 && produced >= o.limitN {
				break
			}
		}
		return nil
	}
	if o.limitN < 0 {
		core.ForEachSpan(workers, nm, ctx.spans, func(w, m int) {
			lo, hi := core.MorselBounds(m, n)
			o.runMorsel(ctx.arena(w), rf, lo, hi, &chunks[m])
			chunks[m].done = true
		})
	} else {
		o.runLimited(ctx, rf, chunks, workers)
	}
	for m := range chunks {
		if chunks[m].err != nil {
			return chunks[m].err
		}
	}
	return nil
}

// runLimited is the parallel morsel loop with the Limit short-circuit:
// workers pull morsel indexes off a shared counter; whenever the
// contiguous prefix of completed morsels reaches the limit, the fence
// drops and later morsels are never claimed. Which morsels run beyond
// the fence depends on scheduling, but the output never does — assemble
// cuts at the deterministic prefix.
func (o *pipelineOp) runLimited(ctx *execCtx, rf []resolvedFilter, chunks []pipeChunk, workers int) {
	n := o.t.N
	nm := len(chunks)
	var next, fence atomic.Int64
	fence.Store(int64(nm))
	var mu sync.Mutex
	frontier, cum := 0, 0
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			a := ctx.arena(w)
			for {
				m := int(next.Add(1) - 1)
				if m >= nm || int64(m) >= fence.Load() {
					return
				}
				lo, hi := core.MorselBounds(m, n)
				var start int64
				if ctx.spans != nil {
					start = ctx.spans.Clock()
				}
				o.runMorsel(a, rf, lo, hi, &chunks[m])
				if ctx.spans != nil {
					ctx.spans.Record(w, m, start)
				}
				mu.Lock()
				chunks[m].done = true
				for frontier < nm && chunks[frontier].done {
					cum += chunks[frontier].rows
					frontier++
					if cum >= o.limitN {
						if int64(frontier) < fence.Load() {
							fence.Store(int64(frontier))
						}
						break
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}

// runMorsel executes the fused stages over one morsel, iterating
// cache-sized vectors; all scratch comes from the worker's arena.
func (o *pipelineOp) runMorsel(a *pipeArena, rf []resolvedFilter, lo, hi int, ch *pipeChunk) {
	a.ensure(o.vecRows, len(o.gaggOperands()))
	est := int(o.estOut*float64(hi-lo)) + 16
	if est > hi-lo {
		est = hi - lo
	}
	o.initChunk(ch, est)
	for vlo := lo; vlo < hi; vlo += o.vecRows {
		vhi := vlo + o.vecRows
		if vhi > hi {
			vhi = hi
		}
		if ch.stageRows != nil {
			ch.scanned += vhi - vlo
		}
		pos := a.pos[:0]
		rest := rf
		fi := 0
		if len(rf) > 0 && rf[0].base {
			pos = rf[0].selectInto(vlo, vhi, pos)
			rest = rf[1:]
			fi = 1
			if ch.stageRows != nil {
				ch.stageRows[0] += int64(len(pos))
			}
		} else {
			for i := vlo; i < vhi; i++ {
				pos = append(pos, int32(i))
			}
		}
		for i := range rest {
			if len(pos) == 0 {
				break
			}
			pos = rest[i].filterInPlace(pos)
			if ch.stageRows != nil {
				ch.stageRows[fi+i] += int64(len(pos))
			}
		}
		if len(pos) == 0 {
			continue
		}
		if err := o.emit(a, pos, ch); err != nil {
			ch.err = err
			return
		}
		ch.rows += len(pos)
	}
}

func (o *pipelineOp) gaggOperands() []opCol {
	if o.gagg == nil {
		return nil
	}
	return o.gagg.operands
}

// initChunk pre-sizes a morsel's output buffers from the planner's
// selectivity estimate.
func (o *pipelineOp) initChunk(ch *pipeChunk, est int) {
	switch {
	case o.proj != nil:
		ch.cols = make([]RelCol, len(o.proj.cols))
		for i, pc := range o.proj.cols {
			rc := RelCol{Name: pc.name, Kind: projColKind(pc)}
			switch rc.Kind {
			case KInt:
				rc.Ints = make([]int64, 0, est)
			case KFloat:
				rc.Floats = make([]float64, 0, est)
			default:
				rc.Strs = make([]string, 0, est)
			}
			ch.cols[i] = rc
		}
	case o.gagg != nil:
		ch.keys = make([]int64, 0, est)
		ch.vals = make([]float64, 0, est)
	default:
		ch.oids = make([]bat.Oid, 0, est)
	}
}

// projColKind mirrors the materializing projection's kind choice.
func projColKind(pc projCol) Kind {
	switch {
	case pc.col.Enc != nil:
		return KString
	case pc.col.Def.Type == dsm.LString:
		return KString
	case pc.col.Def.Type == dsm.LFloat:
		return KFloat
	default:
		return KInt
	}
}

// emit runs the sink over one vector of surviving positions.
func (o *pipelineOp) emit(a *pipeArena, pos []int32, ch *pipeChunk) error {
	switch {
	case o.proj != nil:
		for i, pc := range o.proj.cols {
			rc := &ch.cols[i]
			switch rc.Kind {
			case KInt:
				rc.Ints = dsm.AppendIntsPos(rc.Ints, pc.col, pos)
			case KFloat:
				rc.Floats = dsm.AppendFloatsPos(rc.Floats, pc.col, pos)
			default:
				strs, err := dsm.AppendStringsPos(rc.Strs, pc.col, pos)
				if err != nil {
					return err
				}
				rc.Strs = strs
			}
		}
	case o.gagg != nil:
		g := o.gagg
		if g.keyCol.Enc != nil {
			ch.keys = dsm.AppendCodesPos(ch.keys, g.keyCol, pos)
		} else {
			ch.keys = dsm.AppendIntsPos(ch.keys, g.keyCol, pos)
		}
		for ci, op := range g.operands {
			a.ops[ci] = dsm.GatherFloatsPos(op.col, pos, a.ops[ci])
		}
		for i := range pos {
			ch.vals = append(ch.vals, g.measure.eval(a.ops, i))
		}
	default:
		seq := o.t.Head.Seq
		for _, p := range pos {
			ch.oids = append(ch.oids, seq+bat.Oid(p))
		}
	}
	return nil
}

// assemble concatenates the morsel chunks in morsel order (cutting at
// the Limit, if any) and builds the output fragment.
func (o *pipelineOp) assemble(ctx *execCtx, chunks []pipeChunk) (*fragment, error) {
	total, cut := 0, len(chunks)
	for m := range chunks {
		total += chunks[m].rows
		if o.limitN >= 0 && total >= o.limitN {
			cut = m + 1
			break
		}
	}
	if o.limitN >= 0 {
		if cut < len(chunks) || total > o.limitN {
			if total > o.limitN {
				total = o.limitN
			}
			chunks = chunks[:cut]
		}
	}
	if len(chunks) == 1 {
		// Single-morsel fast path: the chunk's buffers already hold the
		// result in order — no concatenation copy.
		ch := &chunks[0]
		switch {
		case o.proj != nil:
			rel := &Rel{N: total, Cols: make([]RelCol, len(ch.cols))}
			for i, rc := range ch.cols {
				switch rc.Kind {
				case KInt:
					rc.Ints = rc.Ints[:total]
				case KFloat:
					rc.Floats = rc.Floats[:total]
				default:
					rc.Strs = rc.Strs[:total]
				}
				rel.Cols[i] = rc
			}
			return &fragment{rel: rel}, nil
		case o.gagg != nil:
			return o.gagg.finish(ctx, ch.keys[:total], ch.vals[:total])
		default:
			return &fragment{binds: []binding{{table: o.t, oids: ch.oids[:total]}}}, nil
		}
	}
	switch {
	case o.proj != nil:
		rel := &Rel{N: total, Cols: make([]RelCol, len(o.proj.cols))}
		for i, pc := range o.proj.cols {
			rc := RelCol{Name: pc.name, Kind: projColKind(pc)}
			switch rc.Kind {
			case KInt:
				rc.Ints = make([]int64, total)
				at := 0
				for m := range chunks {
					at += copy(rc.Ints[at:], chunks[m].cols[i].Ints)
				}
			case KFloat:
				rc.Floats = make([]float64, total)
				at := 0
				for m := range chunks {
					at += copy(rc.Floats[at:], chunks[m].cols[i].Floats)
				}
			default:
				rc.Strs = make([]string, total)
				at := 0
				for m := range chunks {
					at += copy(rc.Strs[at:], chunks[m].cols[i].Strs)
				}
			}
			rel.Cols[i] = rc
		}
		return &fragment{rel: rel}, nil
	case o.gagg != nil:
		keys := make([]int64, total)
		vals := make([]float64, total)
		at := 0
		for m := range chunks {
			copy(keys[at:], chunks[m].keys)
			at += copy(vals[at:], chunks[m].vals)
		}
		// Hand the feed to the same grouping + merge code the
		// materializing operator runs — bit-identical aggregates.
		return o.gagg.finish(ctx, keys, vals)
	default:
		oids := make([]bat.Oid, total)
		at := 0
		for m := range chunks {
			at += copy(oids[at:], chunks[m].oids)
		}
		return &fragment{binds: []binding{{table: o.t, oids: oids}}}, nil
	}
}
