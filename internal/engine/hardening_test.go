package engine

import (
	"strings"
	"testing"
)

// Planner/eval hardening regressions: a malformed query must surface a
// plan-time error, never a panic or a degenerate estimate, on a
// long-running server.

// TestEstimateFractionNeverZero: every exit of estimateFraction must
// respect the documented clamp away from 0 — in particular the
// dictionary-miss path (predicate value absent from the encoding) and
// a predicate matching no sampled row. A zero estimate collapses all
// downstream cardinalities and degenerates the join/grouping choices.
func TestEstimateFractionNeverZero(t *testing.T) {
	tbl := itemTable(t, 4096)
	ship, err := tbl.Column("shipmode")
	if err != nil {
		t.Fatal(err)
	}
	if f := estimateFraction(ship, EqStringPred{Col: "shipmode", Value: "NOSUCH"}); f <= 0 {
		t.Errorf("dictionary miss estimated fraction %g, want > 0 (clamped)", f)
	}
	date, err := tbl.Column("date1")
	if err != nil {
		t.Fatal(err)
	}
	if f := estimateFraction(date, RangePred{Col: "date1", Lo: -9, Hi: -1}); f <= 0 {
		t.Errorf("no-match range estimated fraction %g, want > 0 (clamped)", f)
	}
	// The clamp must not disturb estimates the sample supports.
	if f := estimateFraction(date, RangePred{Col: "date1", Lo: 0, Hi: 1 << 30}); f < 0.9 {
		t.Errorf("match-all range estimated fraction %g, want ~1", f)
	}
}

// TestPlanRejectsMalformedMeasures: expression defects that previously
// panicked during evaluation (unknown operators, nil sub-expressions)
// must come back as errors from Plan.
func TestPlanRejectsMalformedMeasures(t *testing.T) {
	tbl := itemTable(t, 128)
	ga := func(m Expr) Node {
		return &GroupAggNode{Input: &ScanNode{Table: tbl}, Key: "shipmode", Measure: m}
	}
	cases := []struct {
		name    string
		measure Expr
		wantSub string
	}{
		{"unknown operator", BinExpr{Op: '%', L: ColExpr{Name: "price"}, R: ConstExpr{V: 2}}, "unknown operator"},
		{"nil left operand", BinExpr{Op: '+', R: ConstExpr{V: 1}}, "nil measure"},
		{"nil right operand", BinExpr{Op: '*', L: ColExpr{Name: "price"}}, "nil measure"},
		{"nested bad operator", BinExpr{Op: '+',
			L: ColExpr{Name: "price"},
			R: BinExpr{Op: '^', L: ConstExpr{V: 2}, R: ConstExpr{V: 3}}}, "unknown operator"},
		{"empty column name", BinExpr{Op: '-', L: ColExpr{}, R: ConstExpr{V: 0}}, "empty name"},
	}
	for _, tc := range cases {
		_, err := Plan(ga(tc.measure), Config{})
		if err == nil {
			t.Errorf("%s: Plan succeeded, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
	// A deep well-formed expression must still plan and run.
	ok := ga(BinExpr{Op: '/',
		L: BinExpr{Op: '*', L: ColExpr{Name: "price"}, R: BinExpr{Op: '-', L: ConstExpr{V: 1}, R: ColExpr{Name: "discnt"}}},
		R: BinExpr{Op: '+', L: ConstExpr{V: 1}, R: ColExpr{Name: "tax"}}})
	plan, err := Plan(ok, Config{})
	if err != nil {
		t.Fatalf("well-formed measure rejected: %v", err)
	}
	if _, err := plan.Run(nil); err != nil {
		t.Fatalf("well-formed measure failed to run: %v", err)
	}
}
