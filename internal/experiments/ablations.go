package experiments

import (
	"fmt"

	"monetlite/internal/agg"
	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/sel"
	"monetlite/internal/workload"
)

// SelAblation quantifies the §3.2 selection discussion: point lookups
// and range selections of varying selectivity over a large column,
// comparing scan-select, bucket-chained hash index, T-tree [LC86] and
// the cache-line B-tree [Ron98], in simulated misses and time.
func SelAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	n := 1 << 18
	if cfg.Full {
		n = 1 << 21
	}
	if cfg.CardOverride > 0 {
		n = cfg.CardOverride
	}
	rng := workload.NewRNG(cfg.Seed)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(rng.Intn(1 << 28))
	}

	sim, err := cfg.newSim()
	if err != nil {
		return err
	}
	col := sel.NewColumn(vals)
	hx := sel.BuildHashIndex(sim, col)
	tt := sel.BuildTTree(sim, col)
	ct := sel.BuildCSSTree(sim, col)

	const lookups = 1000
	keys := make([]int32, lookups)
	for i := range keys {
		keys[i] = vals[rng.Intn(n)]
	}
	measure := func(f func(k int32)) memsim.Stats {
		sim.Reset()
		for _, k := range keys {
			f(k)
		}
		return sim.Stats()
	}

	point := newTable(fmt.Sprintf("§3.2 ablation — %d point lookups on a %s-row column", lookups, workload.Describe(n)),
		"access path", "ms", "L1", "L2", "TLB")
	rows := []struct {
		name string
		st   memsim.Stats
	}{
		{"scan-select", measure(func(k int32) { sel.ScanSelect(sim, col, k, k) })},
		{"hash index", measure(func(k int32) { hx.Lookup(sim, k) })},
		{"T-tree", measure(func(k int32) { tt.Lookup(sim, k) })},
		{"cache-line B-tree", measure(func(k int32) { ct.Lookup(sim, k) })},
	}
	for _, r := range rows {
		point.addf("%s\t%s\t%s\t%s\t%s", r.name, ms(r.st.ElapsedMillis()), cnt(r.st.L1Misses), cnt(r.st.L2Misses), cnt(r.st.TLBMisses))
	}
	if err := cfg.emit(point, "sel_point.tsv"); err != nil {
		return err
	}

	ranges := newTable("§3.2 ablation — range selection cost vs selectivity (ms)",
		"selectivity", "scan-select", "T-tree", "cache-line B-tree")
	for _, selPct := range []int{1, 10, 50, 90} {
		hi := int32(float64(1<<28) * float64(selPct) / 100)
		run := func(f func()) memsim.Stats {
			sim.Reset()
			f()
			return sim.Stats()
		}
		scanSt := run(func() { sel.ScanSelect(sim, col, 0, hi) })
		ttSt := run(func() { tt.RangeSelect(sim, 0, hi) })
		ctSt := run(func() { ct.RangeSelect(sim, 0, hi) })
		ranges.addf("%d%%\t%s\t%s\t%s", selPct, ms(scanSt.ElapsedMillis()), ms(ttSt.ElapsedMillis()), ms(ctSt.ElapsedMillis()))
	}
	return cfg.emit(ranges, "sel_range.tsv")
}

// AggAblation quantifies the §3.2 grouping discussion: hash-grouping
// versus sort/merge grouping as the number of groups grows past the
// cache sizes.
func AggAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	n := 1 << 18
	if cfg.Full {
		n = 1 << 21
	}
	if cfg.CardOverride > 0 {
		n = cfg.CardOverride
	}
	t := newTable(fmt.Sprintf("§3.2 ablation — grouping %s rows (simulated ms)", workload.Describe(n)),
		"groups", "hash-group", "sort-group", "hash L2 misses", "sort L2 misses")
	for _, groups := range []int{8, 256, 4096, 65536, 1 << 20} {
		if groups > n {
			continue
		}
		rng := workload.NewRNG(cfg.Seed + uint64(groups))
		keys := make([]int32, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = int32(rng.Intn(groups))
			vals[i] = float64(rng.Intn(1000))
		}
		simH, err := cfg.newSim()
		if err != nil {
			return err
		}
		if _, err := agg.HashGroup(simH, bat.NewI32(keys), bat.NewF64(vals)); err != nil {
			return err
		}
		simS, err := cfg.newSim()
		if err != nil {
			return err
		}
		if _, err := agg.SortGroup(simS, bat.NewI32(keys), bat.NewF64(vals)); err != nil {
			return err
		}
		h, s := simH.Stats(), simS.Stats()
		t.addf("%d\t%s\t%s\t%s\t%s", groups, ms(h.ElapsedMillis()), ms(s.ElapsedMillis()), cnt(h.L2Misses), cnt(s.L2Misses))
	}
	return cfg.emit(t, "agg_groups.tsv")
}
