package experiments

import (
	"fmt"

	"monetlite/internal/core"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// VMAblation reproduces the §4 claim that "algorithms that are tuned
// to run well on one level of the memory, also exhibit good
// performance on the lower levels (e.g., radix-join has pure
// sequential access and consequently also runs well on virtual
// memory)": the join operands are made several times larger than the
// simulated main memory, and the cache-conscious plans are compared to
// the simple hash join on page faults.
func VMAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	c := 1 << 19 // 4 MB per operand
	if cfg.CardOverride > 0 {
		c = cfg.CardOverride
	}
	// Main memory of half one operand: the working set is ~8× memory.
	mem := c * 8 / 2
	machine := cfg.Machine.WithVM(mem, 6e6) // 6 ms per fault: 1998 disk

	t := newTable(fmt.Sprintf("§4 ablation — virtual memory: %s tuples/operand, %d KB resident (faults @6ms)",
		workload.Describe(c), mem>>10),
		"strategy", "page faults", "fault ms", "total sim ms")
	for _, s := range []core.Strategy{core.SimpleHash, core.PhashL1, core.Radix8} {
		plan := core.NewPlan(s, c, cfg.Machine)
		sim, err := memsim.New(machine)
		if err != nil {
			return err
		}
		sim.Budget = cfg.Budget
		l, r := workload.JoinInputs(c, cfg.Seed)
		res, err := core.Execute(sim, l, r, plan, nil)
		if err != nil {
			return err
		}
		if res.Len() != c {
			return fmt.Errorf("experiments: VM ablation %v: %d results", s, res.Len())
		}
		st := sim.Stats()
		t.addf("%s\t%s\t%s\t%s", plan, cnt(st.PageFaults),
			ms(float64(st.PageFaults)*machine.VM.LatFault/1e6), ms(st.ElapsedMillis()))
	}
	return cfg.emit(t, "vm_ablation.tsv")
}

// SkewAblation probes the uniform-distribution assumption of §3.4.1:
// join keys whose radix bits follow a Zipf distribution produce
// unbalanced clusters, so the largest cluster no longer obeys the
// strategy formulas' C/H sizing and partitioned hash-join degrades.
func SkewAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	c := 1 << 19
	if cfg.CardOverride > 0 {
		c = cfg.CardOverride
	}
	plan := core.NewPlan(core.PhashL1, c, cfg.Machine)
	t := newTable(fmt.Sprintf("skew ablation — phash L1 (%s) on %s tuples, Zipf radix bits", plan, workload.Describe(c)),
		"skew s", "max cluster", "mean cluster", "sim ms", "L2 misses")
	for _, s := range []float64{0, 0.5, 1.0, 1.5} {
		var l, r = workload.JoinInputs(c, cfg.Seed)
		if s > 0 {
			l, r = workload.SkewedJoinInputs(c, plan.Bits, s, cfg.Seed)
		}
		sim, err := cfg.newSim()
		if err != nil {
			return err
		}
		// Measure cluster imbalance on the clustered inner operand.
		rc, err := core.RadixCluster(nil, r, plan.Bits, plan.Passes, nil)
		if err != nil {
			return err
		}
		maxCl := 0
		for k := 0; k < rc.Clusters(); k++ {
			if n := rc.ClusterLen(k); n > maxCl {
				maxCl = n
			}
		}
		res, err := core.Execute(sim, l, r, plan, nil)
		if err != nil {
			return err
		}
		if res.Len() != c {
			return fmt.Errorf("experiments: skew ablation s=%.1f: %d results", s, res.Len())
		}
		st := sim.Stats()
		t.addf("%.1f\t%d\t%.1f\t%s\t%s", s, maxCl, float64(c)/float64(rc.Clusters()),
			ms(st.ElapsedMillis()), cnt(st.L2Misses))
	}
	return cfg.emit(t, "skew_ablation.tsv")
}

// PrefetchAblation quantifies the §2 argument against software
// prefetching [Mow94]: prefetching can hide memory latency behind CPU
// work, so its ceiling is sum/max of the two — "limited due to the
// fact that the amount of CPU work per memory access tends to be small
// in database operations (e.g., ... only 4 cycles)".
func PrefetchAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	m := cfg.Machine
	lat := m.Cost.LatMem
	t := newTable(fmt.Sprintf("§2 ablation — ideal-prefetch ceiling on %s (lMem=%.0fns)", m.Name, lat),
		"CPU work/access (cycles)", "no prefetch ns", "ideal prefetch ns", "max speedup")
	for _, cycles := range []float64{4, 10, 25, 50, 103, 200, 400} {
		work := cycles / m.CyclesPerNano()
		noPf := work + lat
		pf := work
		if lat > work {
			pf = lat
		}
		t.addf("%.0f\t%.0f\t%.0f\t%.2fx", cycles, noPf, pf, noPf/pf)
	}
	return cfg.emit(t, "prefetch_ablation.tsv")
}

// BitSplitAblation reproduces the §3.4.2 remark that clustering
// "performance strongly depends on even distribution of bits" over the
// passes: the same B and P with skewed schedules against the even
// split.
func BitSplitAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	c := 1 << 20
	if cfg.CardOverride > 0 {
		c = cfg.CardOverride
	}
	const bits = 12
	splits := [][]int{
		core.EvenBitSplit(bits, 2), // 6+6: the recommendation
		{8, 4},
		{10, 2},
		{11, 1},
	}
	in := workload.UniquePairs(c, cfg.Seed)
	t := newTable(fmt.Sprintf("§3.4.2 ablation — bit distribution over 2 passes, B=%d, C=%s", bits, workload.Describe(c)),
		"split", "sim ms", "TLB misses", "L1 misses")
	for _, split := range splits {
		sim, err := cfg.newSim()
		if err != nil {
			return err
		}
		in.Unbind()
		in.Bind(sim)
		cl, err := core.RadixClusterSplit(sim, in, split, nil)
		if err != nil {
			return err
		}
		if err := cl.Validate(); err != nil {
			return err
		}
		st := sim.Stats()
		t.addf("%v\t%s\t%s\t%s", split, ms(st.ElapsedMillis()), cnt(st.TLBMisses), cnt(st.L1Misses))
	}
	in.Unbind()
	return cfg.emit(t, "bitsplit_ablation.tsv")
}

// ModernAblation re-runs the Figure-13 strategy comparison on the
// extension "modern" profile: a 2020s-shaped CPU with an even wider
// CPU/DRAM gap. The paper's conclusion that cache-conscious algorithms
// win has only sharpened.
func ModernAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	cfg.Machine = memsim.Modern()
	c := 1 << 21
	if cfg.CardOverride > 0 {
		c = cfg.CardOverride
	}
	t := newTable(fmt.Sprintf("extension — strategies on a modern profile, C=%s (simulated ms)", workload.Describe(c)),
		"strategy", "plan", "sim ms", "L2 misses", "TLB misses")
	for _, s := range []core.Strategy{core.SortMerge, core.SimpleHash, core.PhashL1, core.PhashMin, core.RadixMin} {
		plan := core.NewPlan(s, c, cfg.Machine)
		sim, err := cfg.newSim()
		if err != nil {
			return err
		}
		l, r := workload.JoinInputs(c, cfg.Seed)
		res, err := core.Execute(sim, l, r, plan, nil)
		if err != nil {
			return err
		}
		if res.Len() != c {
			return fmt.Errorf("experiments: modern ablation %v: %d results", s, res.Len())
		}
		st := sim.Stats()
		t.addf("%s\t%s\t%s\t%s\t%s", s, plan, ms(st.ElapsedMillis()), cnt(st.L2Misses), cnt(st.TLBMisses))
	}
	return cfg.emit(t, "modern_ablation.tsv")
}
