// Package experiments regenerates every figure of the paper's
// evaluation as text tables and TSV series: the Figure-3 stride scan,
// the Figure-9 radix-cluster sweep, the isolated join sweeps of
// Figures 10 and 11, and the overall comparisons of Figures 12 and 13,
// plus the §3.2 selection and aggregation ablations. Simulated
// measurements are printed side by side with the paper's analytical
// model predictions.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"monetlite/internal/memsim"
)

// Config controls an experiment run.
type Config struct {
	Machine memsim.Machine
	Out     io.Writer

	// Full selects the paper-scale cardinalities (8M tuples for
	// Figure 9, 8M top card for Figures 10–13). The default "quick"
	// scale caps cardinalities near 1M so a full regeneration finishes
	// in minutes.
	Full bool

	// Huge additionally enables the 64M-tuple points (needs several GB
	// of memory and a long run, like the paper's own largest runs).
	Huge bool

	// Budget caps simulated accesses per experiment point; points that
	// exceed it are reported as "skipped", mirroring the paper's
	// 15-minute cap per run (§3.4.3). Zero means the default 2e9.
	Budget uint64

	// TSVDir, when non-empty, receives one TSV file per figure for
	// replotting.
	TSVDir string

	// CardOverride, when positive, replaces every cardinality sweep
	// with this single cardinality — smoke tests and quick looks.
	CardOverride int

	Seed uint64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.Machine.Name == "" {
		c.Machine = memsim.Origin2000()
	}
	if c.Budget == 0 {
		c.Budget = 2_000_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1999
	}
	return c
}

// newSim builds a budgeted simulator for one experiment point.
func (c Config) newSim() (*memsim.Sim, error) {
	sim, err := memsim.New(c.Machine)
	if err != nil {
		return nil, err
	}
	sim.Budget = c.Budget
	return sim, nil
}

// table renders aligned text tables.
type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.title)
	b.WriteString("\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%*s", widths[i], c))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := len(t.headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeTSV writes the table's raw cells as a TSV file in dir.
func (t *table) writeTSV(dir, name string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, "\t"))
	b.WriteString("\n")
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteString("\n")
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
}

// emit renders the table to the config's writer and TSV directory.
func (c Config) emit(t *table, tsvName string) error {
	if err := t.write(c.Out); err != nil {
		return err
	}
	return t.writeTSV(c.TSVDir, tsvName)
}

// ms formats milliseconds compactly.
func ms(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// cnt formats large event counts compactly (scientific-ish).
func cnt(v uint64) string {
	switch {
	case v >= 100_000_000:
		return fmt.Sprintf("%.2fe9", float64(v)/1e9)
	case v >= 100_000:
		return fmt.Sprintf("%.2fe6", float64(v)/1e6)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// All regenerates every figure and ablation in order.
func All(cfg Config) error {
	steps := []struct {
		name string
		run  func(Config) error
	}{
		{"figure 1", Fig1},
		{"figure 3", Fig3},
		{"figure 9", Fig9},
		{"figure 10", Fig10},
		{"figure 11", Fig11},
		{"figure 12", Fig12},
		{"figure 13", Fig13},
		{"selection ablation", SelAblation},
		{"aggregation ablation", AggAblation},
		{"virtual-memory ablation", VMAblation},
		{"bit-split ablation", BitSplitAblation},
		{"skew ablation", SkewAblation},
		{"prefetch ablation", PrefetchAblation},
		{"modern-profile ablation", ModernAblation},
	}
	for _, s := range steps {
		if err := s.run(cfg); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
	}
	return nil
}
