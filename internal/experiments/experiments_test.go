package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"monetlite/internal/memsim"
)

// smokeConfig builds a tiny-but-real configuration: 16K tuples keeps
// every figure runner under a second while still exercising the whole
// pipeline.
func smokeConfig(t *testing.T) (Config, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return Config{
		Machine:      memsim.Origin2000(),
		Out:          &buf,
		CardOverride: 1 << 14,
		TSVDir:       t.TempDir(),
		Seed:         7,
	}, &buf
}

func TestFig1Static(t *testing.T) {
	cfg, buf := smokeConfig(t)
	if err := Fig1(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1979") || !strings.Contains(out, "1997") {
		t.Errorf("trend table missing years:\n%s", out)
	}
}

func TestFig3Runs(t *testing.T) {
	cfg, buf := smokeConfig(t)
	if err := Fig3(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range []string{"origin2k", "sun450", "ultra", "sunLX"} {
		if !strings.Contains(out, m) {
			t.Errorf("figure 3 missing machine %s", m)
		}
	}
	if !strings.Contains(out, "stall fraction") {
		t.Error("§2 claims table missing")
	}
}

func TestFig9Runs(t *testing.T) {
	cfg, buf := smokeConfig(t)
	if err := Fig9(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"millisecs", "TLB misses", "L1 misses", "L2 misses", "P=1", "P=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 9 output missing %q", want)
		}
	}
	// TSV files written.
	files, err := filepath.Glob(filepath.Join(cfg.TSVDir, "fig09_*.tsv"))
	if err != nil || len(files) != 4 {
		t.Errorf("expected 4 fig09 TSVs, got %d (%v)", len(files), err)
	}
}

func TestFig10And11Run(t *testing.T) {
	cfg, buf := smokeConfig(t)
	if err := Fig10(cfg); err != nil {
		t.Fatal(err)
	}
	if err := Fig11(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "radix-join") || !strings.Contains(out, "partitioned hash-join") {
		t.Error("figure 10/11 titles missing")
	}
	if !strings.Contains(out, "clustersize") {
		t.Error("cluster size column missing")
	}
}

func TestFig12And13Run(t *testing.T) {
	cfg, buf := smokeConfig(t)
	if err := Fig12(cfg); err != nil {
		t.Fatal(err)
	}
	if err := Fig13(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phash ms", "radix ms", "strategy settings", "sort-merge", "simple hash", "auto pick"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 12/13 output missing %q", want)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	cfg, buf := smokeConfig(t)
	if err := SelAblation(cfg); err != nil {
		t.Fatal(err)
	}
	if err := AggAblation(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"point lookups", "cache-line B-tree", "hash-group", "sort-group"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestBudgetSkipsExpensivePoints(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{
		Machine:      memsim.Origin2000(),
		Out:          &buf,
		CardOverride: 1 << 14,
		Budget:       200_000, // far too small: most points must skip
		Seed:         7,
	}
	if err := Fig10(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skip") {
		t.Error("tiny budget produced no skipped points")
	}
}

func TestAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("All is covered by the per-figure tests")
	}
	cfg, buf := smokeConfig(t)
	if err := All(cfg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("All produced no output")
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("demo", "a", "bb")
	tb.add("1", "2")
	tb.addf("%d\t%s", 10, "xyz")
	var buf bytes.Buffer
	if err := tb.write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "xyz") {
		t.Errorf("table output:\n%s", out)
	}
	dir := t.TempDir()
	if err := tb.writeTSV(dir, "demo.tsv"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "10\txyz") {
		t.Errorf("tsv content: %q", data)
	}
	// Empty dir is a no-op.
	if err := tb.writeTSV("", "x.tsv"); err != nil {
		t.Error(err)
	}
}

func TestFormatters(t *testing.T) {
	if ms(12345) != "12345" || ms(55.5) != "55.5" || ms(1.5) != "1.500" {
		t.Errorf("ms formatting: %q %q %q", ms(12345), ms(55.5), ms(1.5))
	}
	if cnt(5) != "5" || cnt(2_500_000) != "2.50e6" || cnt(3_000_000_000) != "3.00e9" {
		t.Errorf("cnt formatting: %q %q %q", cnt(5), cnt(2_500_000), cnt(3_000_000_000))
	}
}
