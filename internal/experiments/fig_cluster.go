package experiments

import (
	"errors"
	"fmt"

	"monetlite/internal/core"
	"monetlite/internal/costmodel"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// clusterPoint is one (B, P) measurement of the radix-cluster sweep.
type clusterPoint struct {
	bits, passes int
	stats        memsim.Stats
	model        costmodel.Breakdown
	skipped      bool
}

// Fig9 sweeps the radix-cluster tuning space of §3.4.2: number of
// bits B (x-axis), passes P ∈ 1..4, on one cardinality (8M tuples in
// the paper; 1M in quick mode). For each point it reports simulated
// milliseconds and L1/L2/TLB misses next to the Tc model.
func Fig9(cfg Config) error {
	cfg = cfg.withDefaults()
	card := 1 << 20
	maxBits := 18
	if cfg.Full {
		card = 8_000_000
		maxBits = 20
	}
	if cfg.CardOverride > 0 {
		card = cfg.CardOverride
		maxBits = 1
		for (1 << maxBits) < card {
			maxBits++
		}
	}
	in := workload.UniquePairs(card, cfg.Seed)
	model := costmodel.New(cfg.Machine)

	var points []clusterPoint
	for bits := 1; bits <= maxBits; bits++ {
		for passes := 1; passes <= 4 && passes <= bits; passes++ {
			sim, err := cfg.newSim()
			if err != nil {
				return err
			}
			in.Unbind()
			in.Bind(sim)
			p := clusterPoint{bits: bits, passes: passes, model: model.Tc(passes, bits, card)}
			if _, err := core.RadixCluster(sim, in, bits, passes, nil); err != nil {
				if errors.Is(err, memsim.ErrBudget) {
					p.skipped = true
				} else {
					return err
				}
			}
			p.stats = sim.Stats()
			points = append(points, p)
		}
	}
	in.Unbind()

	emit := func(title, tsv string, val func(clusterPoint) string, modelVal func(clusterPoint) string) error {
		headers := []string{"bits"}
		for p := 1; p <= 4; p++ {
			headers = append(headers, fmt.Sprintf("P=%d", p), fmt.Sprintf("P=%d model", p))
		}
		t := newTable(title, headers...)
		for bits := 1; bits <= maxBits; bits++ {
			row := []string{fmt.Sprintf("%d", bits)}
			for passes := 1; passes <= 4; passes++ {
				cell, mcell := "-", "-"
				for _, p := range points {
					if p.bits == bits && p.passes == passes {
						if p.skipped {
							cell = "skip"
						} else {
							cell = val(p)
						}
						mcell = modelVal(p)
					}
				}
				row = append(row, cell, mcell)
			}
			t.add(row...)
		}
		return cfg.emit(t, tsv)
	}

	title := fmt.Sprintf("Figure 9 — radix-cluster of %s tuples on origin2k", workload.Describe(card))
	if err := emit(title+": millisecs", "fig09_millisecs.tsv",
		func(p clusterPoint) string { return ms(p.stats.ElapsedMillis()) },
		func(p clusterPoint) string { return ms(p.model.Millis(cfg.Machine)) }); err != nil {
		return err
	}
	if err := emit(title+": TLB misses", "fig09_tlb.tsv",
		func(p clusterPoint) string { return cnt(p.stats.TLBMisses) },
		func(p clusterPoint) string { return cnt(uint64(p.model.TLBMisses)) }); err != nil {
		return err
	}
	if err := emit(title+": L1 misses", "fig09_l1.tsv",
		func(p clusterPoint) string { return cnt(p.stats.L1Misses) },
		func(p clusterPoint) string { return cnt(uint64(p.model.L1Misses)) }); err != nil {
		return err
	}
	return emit(title+": L2 misses", "fig09_l2.tsv",
		func(p clusterPoint) string { return cnt(p.stats.L2Misses) },
		func(p clusterPoint) string { return cnt(uint64(p.model.L2Misses)) })
}
