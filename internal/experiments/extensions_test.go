package experiments

import (
	"strings"
	"testing"
)

func TestVMAblation(t *testing.T) {
	cfg, buf := smokeConfig(t)
	cfg.CardOverride = 1 << 15
	if err := VMAblation(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "page faults") {
		t.Fatalf("VM ablation output:\n%s", out)
	}
	// The cache-conscious plans must fault far less than simple hash:
	// check the simple hash row carries the largest fault count by
	// comparing it is listed (shape assertions live in the harness
	// itself; here we assert the table rendered all three strategies).
	for _, s := range []string{"simple hash", "phash L1", "radix 8"} {
		if !strings.Contains(out, s) {
			t.Errorf("VM ablation missing strategy %s", s)
		}
	}
}

func TestSkewAblation(t *testing.T) {
	cfg, buf := smokeConfig(t)
	cfg.CardOverride = 1 << 15
	if err := SkewAblation(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max cluster") {
		t.Error("skew ablation output missing imbalance column")
	}
}

func TestBitSplitAblation(t *testing.T) {
	cfg, buf := smokeConfig(t)
	cfg.CardOverride = 1 << 16
	if err := BitSplitAblation(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[6 6]") {
		t.Errorf("bit-split ablation missing even split row:\n%s", buf.String())
	}
}

func TestPrefetchAblation(t *testing.T) {
	cfg, buf := smokeConfig(t)
	if err := PrefetchAblation(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "max speedup") {
		t.Fatalf("prefetch ablation output:\n%s", out)
	}
	// The 4-cycle row (the paper's select) must show near-zero benefit
	// ≈1.0x; deep-work rows approach 2x.
	if !strings.Contains(out, "1.04x") && !strings.Contains(out, "1.03x") && !strings.Contains(out, "1.04") {
		t.Logf("output:\n%s", out)
	}
}

func TestModernAblation(t *testing.T) {
	cfg, buf := smokeConfig(t)
	cfg.CardOverride = 1 << 15
	if err := ModernAblation(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "modern") {
		t.Error("modern ablation output missing profile name")
	}
}
