package experiments

import (
	"errors"
	"fmt"

	"monetlite/internal/core"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// overallJoin runs cluster + join end to end on one budgeted sim.
func overallJoin(cfg Config, c, bits int, radix bool) (memsim.Stats, bool, error) {
	l, r := workload.JoinInputs(c, cfg.Seed+uint64(c))
	sim, err := cfg.newSim()
	if err != nil {
		return memsim.Stats{}, false, err
	}
	passes := 1
	if bits > 0 {
		passes = core.OptimalPasses(bits, cfg.Machine)
	}
	var jerr error
	if bits == 0 {
		_, jerr = core.SimpleHashJoin(sim, l, r, nil)
	} else if radix {
		_, jerr = core.RadixJoin(sim, l, r, bits, passes, nil)
	} else {
		_, jerr = core.PartitionedHashJoin(sim, l, r, bits, passes, nil)
	}
	if jerr != nil {
		if errors.Is(jerr, memsim.ErrBudget) {
			return sim.Stats(), true, nil
		}
		return memsim.Stats{}, false, jerr
	}
	return sim.Stats(), false, nil
}

// fig12Cards returns the Figure-12 cardinalities for the scale.
func fig12Cards(cfg Config) []int {
	if cfg.CardOverride > 0 {
		return []int{cfg.CardOverride}
	}
	cards := []int{15625, 250000, 1000000}
	if cfg.Full {
		cards = append(cards, 4000000, 16000000)
	}
	if cfg.Huge {
		cards = append(cards, 64000000)
	}
	return cards
}

// Fig12 reproduces the overall cluster+join tradeoff of §3.4.4: for
// each cardinality, total time of radix-join and partitioned hash-join
// across the whole bit range (with the optimal pass count per B), plus
// the B each named strategy prescribes.
func Fig12(cfg Config) error {
	cfg = cfg.withDefaults()
	for _, c := range fig12Cards(cfg) {
		t := newTable(fmt.Sprintf("Figure 12 — overall cluster+join, C=%s (ms; optimal passes per B)", workload.Describe(c)),
			"bits", "passes", "phash ms", "radix ms")
		for _, b := range bitRange(c) {
			passes := core.OptimalPasses(b, cfg.Machine)
			ph, phSkip, err := overallJoin(cfg, c, b, false)
			if err != nil {
				return err
			}
			rj, rjSkip, err := overallJoin(cfg, c, b, true)
			if err != nil {
				return err
			}
			phCell, rjCell := ms(ph.ElapsedMillis()), ms(rj.ElapsedMillis())
			if phSkip {
				phCell = "skip"
			}
			if rjSkip {
				rjCell = "skip"
			}
			t.addf("%d\t%d\t%s\t%s", b, passes, phCell, rjCell)
		}
		if err := cfg.emit(t, fmt.Sprintf("fig12_overall_c%d.tsv", c)); err != nil {
			return err
		}

		// The strategy diagonals of the figure: which B each §3.4.4
		// strategy picks at this cardinality.
		d := newTable(fmt.Sprintf("Figure 12 — strategy settings at C=%s", workload.Describe(c)),
			"strategy", "bits", "passes")
		for _, s := range []core.Strategy{core.PhashL2, core.PhashTLB, core.PhashL1, core.Phash256, core.PhashMin, core.Radix8, core.RadixMin} {
			p := core.NewPlan(s, c, cfg.Machine)
			d.addf("%s\t%d\t%d", s, p.Bits, p.Passes)
		}
		if err := cfg.emit(d, fmt.Sprintf("fig12_strategies_c%d.tsv", c)); err != nil {
			return err
		}
	}
	return nil
}

// fig13Cards returns the Figure-13 x axis for the scale (cardinality
// in thousands: 16 … 65536 in the paper).
func fig13Cards(cfg Config) []int {
	if cfg.CardOverride > 0 {
		return []int{cfg.CardOverride}
	}
	cards := []int{16000, 64000, 256000, 1024000}
	if cfg.Full {
		cards = append(cards, 4096000, 16384000)
	}
	if cfg.Huge {
		cards = append(cards, 65536000)
	}
	return cards
}

// Fig13 reproduces the overall algorithm comparison: every §3.4.4
// strategy (plus the sort-merge and non-partitioned hash baselines)
// across cardinalities, total simulated milliseconds.
func Fig13(cfg Config) error {
	cfg = cfg.withDefaults()
	strategies := core.Strategies()
	headers := []string{"cardinality"}
	for _, s := range strategies {
		headers = append(headers, s.String())
	}
	headers = append(headers, "auto pick")
	t := newTable("Figure 13 — overall algorithm comparison (total simulated ms)", headers...)
	for _, c := range fig13Cards(cfg) {
		row := []string{workload.Describe(c)}
		l, r := workload.JoinInputs(c, cfg.Seed+uint64(c))
		for _, s := range strategies {
			plan := core.NewPlan(s, c, cfg.Machine)
			sim, err := cfg.newSim()
			if err != nil {
				return err
			}
			l.Unbind()
			r.Unbind()
			res, err := core.Execute(sim, l, r, plan, nil)
			switch {
			case err != nil && errors.Is(err, memsim.ErrBudget):
				row = append(row, "skip")
				continue
			case err != nil:
				return err
			case res.Len() != c:
				return fmt.Errorf("experiments: %v at C=%d: %d results", s, c, res.Len())
			}
			row = append(row, ms(sim.Stats().ElapsedMillis()))
		}
		row = append(row, core.PlanAuto(c, cfg.Machine).String())
		t.add(row...)
	}
	return cfg.emit(t, "fig13_comparison.tsv")
}
