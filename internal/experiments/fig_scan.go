package experiments

import (
	"fmt"

	"monetlite/internal/costmodel"
	"monetlite/internal/memsim"
	"monetlite/internal/scan"
)

// Fig1 prints the hardware-trend series behind Figure 1: CPU speed
// growing ≈70%/year against DRAM speed growing ≈50% per decade
// [Mow94]. The series is synthetic (the paper plots vendor data) but
// reproduces the figure's log-scale divergence.
func Fig1(cfg Config) error {
	cfg = cfg.withDefaults()
	t := newTable("Figure 1 — hardware trends in DRAM and CPU speed (MHz, log scale)",
		"year", "cpu MHz", "dram MHz", "gap")
	cpu, dram := 1.0, 1.0 // normalized to 1979
	for year := 1979; year <= 1997; year++ {
		if year > 1979 {
			cpu *= 1.70   // +70% per year
			dram *= 1.042 // +50% per decade ≈ +4.2% per year
		}
		t.addf("%d\t%.1f\t%.2f\t%.0fx", year, cpu, dram, cpu/dram)
	}
	return cfg.emit(t, "fig01_trends.tsv")
}

// Fig3 runs the §2 "reality check": 200,000 iterations of a one-byte
// read at stride 1–256 on each machine profile, simulated elapsed
// time next to the T(s) model prediction, plus the cycle breakdown
// that backs the "95% of cycles waiting for memory" claim.
func Fig3(cfg Config) error {
	cfg = cfg.withDefaults()
	iters := scan.Iterations
	if !cfg.Full {
		iters = scan.Iterations / 4
	}
	strides := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 192, 224, 256}

	machines := memsim.Machines()
	headers := []string{"stride"}
	for _, m := range machines {
		headers = append(headers, m.Name+" ms", m.Name+" model")
	}
	t := newTable(fmt.Sprintf("Figure 3 — simple in-memory scan of %d tuples (simulated ms vs T(s) model)", iters), headers...)
	for _, s := range strides {
		row := []string{fmt.Sprintf("%d", s)}
		for _, m := range machines {
			r, err := scan.Run(m, s, iters)
			if err != nil {
				return err
			}
			model := costmodel.New(m).ScanNanos(iters, s) / 1e6
			row = append(row, ms(r.Millis()), ms(model))
		}
		t.add(row...)
	}
	if err := cfg.emit(t, "fig03_scan.tsv"); err != nil {
		return err
	}

	// The §2 / §3.1 claims, quantified on the Origin2000.
	o2k := memsim.Origin2000()
	claims := newTable("§2/§3.1 claims on origin2k", "metric", "value")
	full, err := scan.Run(o2k, 256, iters)
	if err != nil {
		return err
	}
	claims.addf("stall fraction at stride 256\t%.1f%%", 100*scan.StallFraction(full))
	s8, err := scan.Run(o2k, 8, iters)
	if err != nil {
		return err
	}
	work, stall := scan.CyclesPerIteration(o2k, s8)
	claims.addf("stride-8 cycles/iter (CPU + memory)\t%.1f + %.1f", work, stall)
	s1, err := scan.Run(o2k, 1, iters)
	if err != nil {
		return err
	}
	w1, st1 := scan.CyclesPerIteration(o2k, s1)
	claims.addf("stride-1 cycles/iter (CPU + memory)\t%.1f + %.1f", w1, st1)
	return cfg.emit(claims, "fig03_claims.tsv")
}
