package experiments

import (
	"errors"
	"fmt"

	"monetlite/internal/core"
	"monetlite/internal/costmodel"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// joinCards returns the Figure-10/11 cardinality set for the scale.
func joinCards(cfg Config) []int {
	if cfg.CardOverride > 0 {
		return []int{cfg.CardOverride}
	}
	cards := []int{15625, 125000, 1000000}
	if cfg.Full {
		cards = append(cards, 8000000)
	}
	if cfg.Huge {
		cards = append(cards, 64000000)
	}
	return cards
}

// isolatedJoin runs the join phase only (Figures 10 and 11): the
// operands are pre-clustered natively (not instrumented, not timed),
// then the join runs on a fresh budgeted simulator.
func isolatedJoin(cfg Config, c, bits int, radix bool) (memsim.Stats, bool, error) {
	l, r := workload.JoinInputs(c, cfg.Seed+uint64(c))
	passes := 1
	if bits > 0 {
		passes = core.OptimalPasses(bits, cfg.Machine)
	}
	lc, err := core.RadixCluster(nil, l, bits, passes, nil)
	if err != nil {
		return memsim.Stats{}, false, err
	}
	rc, err := core.RadixCluster(nil, r, bits, passes, nil)
	if err != nil {
		return memsim.Stats{}, false, err
	}
	sim, err := cfg.newSim()
	if err != nil {
		return memsim.Stats{}, false, err
	}
	var res *core.JoinIndex
	if radix {
		res, err = core.RadixJoinClustered(sim, lc, rc)
	} else {
		res, err = core.PartitionedHashJoinClustered(sim, lc, rc, nil)
	}
	if err != nil {
		if errors.Is(err, memsim.ErrBudget) {
			return sim.Stats(), true, nil
		}
		return memsim.Stats{}, false, err
	}
	if res.Len() != c {
		return memsim.Stats{}, false, fmt.Errorf("experiments: join at C=%d B=%d produced %d pairs", c, bits, res.Len())
	}
	return sim.Stats(), false, nil
}

// bitRange returns the swept B values for a cardinality: every other
// bit up to just past log2(C), like the x-range of Figures 10/11.
func bitRange(c int) []int {
	maxB := 1
	for (1 << maxB) < c {
		maxB++
	}
	if maxB > core.MaxBits {
		maxB = core.MaxBits
	}
	var bits []int
	for b := 2; b <= maxB; b += 2 {
		bits = append(bits, b)
	}
	return bits
}

// figJoin renders one isolated-join figure.
func figJoin(cfg Config, radix bool, figName, tsvPrefix string, model func(m costmodel.Model, b, c int) costmodel.Breakdown) error {
	cfg = cfg.withDefaults()
	cm := costmodel.New(cfg.Machine)
	for _, c := range joinCards(cfg) {
		t := newTable(fmt.Sprintf("%s — C=%s: isolated join phase vs bits", figName, workload.Describe(c)),
			"bits", "clustersize", "ms", "model ms", "L1", "L2", "TLB", "model TLB")
		for _, b := range bitRange(c) {
			st, skipped, err := isolatedJoin(cfg, c, b, radix)
			if err != nil {
				return err
			}
			mb := model(cm, b, c)
			clSize := float64(c) / float64(uint64(1)<<b)
			if skipped {
				t.addf("%d\t%.1f\tskip\t%s\t-\t-\t-\t%s", b, clSize, ms(mb.Millis(cfg.Machine)), cnt(uint64(mb.TLBMisses)))
				continue
			}
			t.addf("%d\t%.1f\t%s\t%s\t%s\t%s\t%s\t%s",
				b, clSize, ms(st.ElapsedMillis()), ms(mb.Millis(cfg.Machine)),
				cnt(st.L1Misses), cnt(st.L2Misses), cnt(st.TLBMisses), cnt(uint64(mb.TLBMisses)))
		}
		if err := cfg.emit(t, fmt.Sprintf("%s_c%d.tsv", tsvPrefix, c)); err != nil {
			return err
		}
	}
	return nil
}

// Fig10 reproduces the isolated radix-join sweep of §3.4.3: for each
// cardinality, performance improves with B until the mean cluster
// size reaches a few tuples; large clusters explode L1 misses (and the
// access budget, mirroring the paper's 15-minute cap).
func Fig10(cfg Config) error {
	return figJoin(cfg, true, "Figure 10 — radix-join", "fig10_radixjoin",
		func(m costmodel.Model, b, c int) costmodel.Breakdown { return m.Tr(b, c) })
}

// Fig11 reproduces the isolated partitioned hash-join sweep of
// §3.4.3: performance improves steeply until the inner cluster plus
// hash table fits the TLB span and L2, flattens through the L1 fit,
// and turns back up when tiny clusters make table setup dominate.
func Fig11(cfg Config) error {
	return figJoin(cfg, false, "Figure 11 — partitioned hash-join", "fig11_phash",
		func(m costmodel.Model, b, c int) costmodel.Breakdown { return m.Th(b, c) })
}
