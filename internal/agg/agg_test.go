package agg

import (
	"math"
	"testing"
	"testing/quick"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// refGroup computes the oracle aggregates with Go maps.
func refGroup(keys []int64, vals []float64) map[int64]struct {
	count int64
	sum   float64
	min   float64
	max   float64
} {
	out := make(map[int64]struct {
		count int64
		sum   float64
		min   float64
		max   float64
	})
	for i, k := range keys {
		e, ok := out[k]
		if !ok {
			e.min = math.Inf(1)
			e.max = math.Inf(-1)
		}
		e.count++
		e.sum += vals[i]
		if vals[i] < e.min {
			e.min = vals[i]
		}
		if vals[i] > e.max {
			e.max = vals[i]
		}
		out[k] = e
	}
	return out
}

func checkAgainstRef(t *testing.T, name string, g *GroupResult, keys []int64, vals []float64) {
	t.Helper()
	want := refGroup(keys, vals)
	if g.Groups() != len(want) {
		t.Fatalf("%s: %d groups, want %d", name, g.Groups(), len(want))
	}
	for i, k := range g.Key {
		w, ok := want[k]
		if !ok {
			t.Fatalf("%s: spurious group %d", name, k)
		}
		if g.Count[i] != w.count {
			t.Errorf("%s: group %d count %d, want %d", name, k, g.Count[i], w.count)
		}
		if math.Abs(g.Sum[i]-w.sum) > 1e-9*math.Max(1, math.Abs(w.sum)) {
			t.Errorf("%s: group %d sum %v, want %v", name, k, g.Sum[i], w.sum)
		}
		if g.Min[i] != w.min || g.Max[i] != w.max {
			t.Errorf("%s: group %d min/max %v/%v, want %v/%v", name, k, g.Min[i], g.Max[i], w.min, w.max)
		}
	}
}

func genInput(n, groups int, seed uint64) ([]int8, []float64, []int64) {
	rng := workload.NewRNG(seed)
	codes := make([]int8, n)
	vals := make([]float64, n)
	keys := make([]int64, n)
	for i := 0; i < n; i++ {
		codes[i] = int8(rng.Intn(groups))
		vals[i] = float64(rng.Intn(1000)) / 10
		keys[i] = int64(codes[i])
	}
	return codes, vals, keys
}

func TestHashGroupMatchesReference(t *testing.T) {
	codes, vals, keys := genInput(10000, 7, 1)
	g, err := HashGroup(nil, bat.NewI8(codes), bat.NewF64(vals))
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstRef(t, "hash", g, keys, vals)
}

func TestSortGroupMatchesReference(t *testing.T) {
	codes, vals, keys := genInput(10000, 7, 2)
	g, err := SortGroup(nil, bat.NewI8(codes), bat.NewF64(vals))
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstRef(t, "sort", g, keys, vals)
}

func TestGroupingAgree(t *testing.T) {
	codes, vals, _ := genInput(5000, 100, 3)
	h, err := HashGroup(nil, bat.NewI8(codes), bat.NewF64(vals))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SortGroup(nil, bat.NewI8(codes), bat.NewF64(vals))
	if err != nil {
		t.Fatal(err)
	}
	hs, ss := h.Sorted(), s.Sorted()
	if hs.Groups() != ss.Groups() {
		t.Fatalf("group counts differ: %d vs %d", hs.Groups(), ss.Groups())
	}
	for i := range hs.Key {
		if hs.Key[i] != ss.Key[i] || hs.Count[i] != ss.Count[i] ||
			math.Abs(hs.Sum[i]-ss.Sum[i]) > 1e-9*math.Max(1, math.Abs(hs.Sum[i])) {
			t.Errorf("row %d differs: hash(%d,%d,%v) sort(%d,%d,%v)",
				i, hs.Key[i], hs.Count[i], hs.Sum[i], ss.Key[i], ss.Count[i], ss.Sum[i])
		}
	}
}

func TestGroupingValidation(t *testing.T) {
	if _, err := HashGroup(nil, nil, bat.NewF64(nil)); err == nil {
		t.Error("nil keys accepted")
	}
	if _, err := HashGroup(nil, bat.NewI8([]int8{1}), bat.NewF64(nil)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SortGroup(nil, bat.NewI8([]int8{1, 2}), bat.NewF64([]float64{1})); err == nil {
		t.Error("length mismatch accepted (sort)")
	}
}

func TestEmptyInput(t *testing.T) {
	for _, f := range []func(*memsim.Sim, bat.Vector, *bat.F64Vec) (*GroupResult, error){HashGroup, SortGroup} {
		g, err := f(nil, bat.NewI8(nil), bat.NewF64(nil))
		if err != nil {
			t.Fatal(err)
		}
		if g.Groups() != 0 {
			t.Errorf("empty input produced %d groups", g.Groups())
		}
	}
}

func TestSingleGroup(t *testing.T) {
	codes := make([]int8, 100)
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 1
	}
	g, err := HashGroup(nil, bat.NewI8(codes), bat.NewF64(vals))
	if err != nil {
		t.Fatal(err)
	}
	if g.Groups() != 1 || g.Count[0] != 100 || g.Sum[0] != 100 {
		t.Errorf("single group result: %+v", g)
	}
}

func TestManyGroupsGrowth(t *testing.T) {
	// Force table growth: 50k distinct 16-bit keys.
	n := 50000
	codes := make([]int16, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		codes[i] = int16(i % 30000)
		vals[i] = 1
	}
	g, err := HashGroup(nil, bat.NewI16(codes), bat.NewF64(vals))
	if err != nil {
		t.Fatal(err)
	}
	if g.Groups() != 30000 {
		t.Errorf("groups = %d, want 30000", g.Groups())
	}
}

func TestHashGroupBeatsSortGroupWhenGroupsFitCache(t *testing.T) {
	// §3.2: with a limited number of groups the hash table fits L2 (and
	// L1), making hash-grouping superior to sort/merge on memory access.
	const n = 1 << 18
	codes, vals, _ := genInput(n, 8, 9)
	m := memsim.Origin2000()

	simH := memsim.MustNew(m)
	if _, err := HashGroup(simH, bat.NewI8(codes), bat.NewF64(vals)); err != nil {
		t.Fatal(err)
	}
	simS := memsim.MustNew(m)
	if _, err := SortGroup(simS, bat.NewI8(codes), bat.NewF64(vals)); err != nil {
		t.Fatal(err)
	}
	h, s := simH.Stats(), simS.Stats()
	if h.ElapsedNanos() >= s.ElapsedNanos() {
		t.Errorf("hash-group (%.2fms) not faster than sort-group (%.2fms)",
			h.ElapsedMillis(), s.ElapsedMillis())
	}
	if h.L2Misses >= s.L2Misses {
		t.Errorf("hash-group L2 misses %d not below sort-group %d", h.L2Misses, s.L2Misses)
	}
}

func TestSortedOrder(t *testing.T) {
	codes := []int8{3, 1, 2, 1, 3}
	vals := []float64{1, 2, 3, 4, 5}
	g, err := HashGroup(nil, bat.NewI8(codes), bat.NewF64(vals))
	if err != nil {
		t.Fatal(err)
	}
	s := g.Sorted()
	for i := 1; i < len(s.Key); i++ {
		if s.Key[i-1] >= s.Key[i] {
			t.Errorf("Sorted not ascending: %v", s.Key)
		}
	}
}

// Property: both algorithms agree with the map oracle on arbitrary
// inputs.
func TestGroupingProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, gRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		groups := int(gRaw)%100 + 1
		codes, vals, keys := genInput(n, groups, seed)
		h, err := HashGroup(nil, bat.NewI8(codes), bat.NewF64(vals))
		if err != nil {
			return false
		}
		s, err := SortGroup(nil, bat.NewI8(codes), bat.NewF64(vals))
		if err != nil {
			return false
		}
		want := refGroup(keys, vals)
		if h.Groups() != len(want) || s.Groups() != len(want) {
			return false
		}
		hs, ss := h.Sorted(), s.Sorted()
		for i := range hs.Key {
			if hs.Key[i] != ss.Key[i] || hs.Count[i] != ss.Count[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
