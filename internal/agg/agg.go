// Package agg implements the grouping/aggregation algorithms the
// paper contrasts in §3.2: hash-grouping — one scan keeping a
// temporary hash table of aggregate totals, superior as long as the
// table fits the memory caches — and sort/merge grouping, which first
// sorts the relation on the GROUP-BY attribute (random access over the
// entire relation) and then scans. A third strategy, RadixGroup
// (radix.go), extends §4's radix-cluster remedy to aggregation: when
// the group count outgrows the caches, partition the feed on the low
// key bits first so every partition's table is cache-resident again.
//
// Inputs are decomposed columns: a group-key column (typically a 1- or
// 2-byte encoded code column over a void head, as in Figure 4) and a
// measure column.
package agg

import (
	"cmp"
	"fmt"
	"slices"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/sortx"
)

// GroupResult holds one aggregate row per distinct group key, in
// first-seen order for HashGroup and key-bit order for SortGroup; use
// Sorted for a canonical order.
type GroupResult struct {
	Key   []int64
	Count []int64
	Sum   []float64
	Min   []float64
	Max   []float64
}

// Groups returns the number of distinct groups.
func (g *GroupResult) Groups() int { return len(g.Key) }

// Sorted returns the result rows reordered by ascending key.
func (g *GroupResult) Sorted() *GroupResult {
	idx := make([]int, len(g.Key))
	for i := range idx {
		idx[i] = i
	}
	// Keys are unique (one row per group), so a key comparison is a
	// total order and the reflection-free sort is fully deterministic.
	slices.SortFunc(idx, func(a, b int) int { return cmp.Compare(g.Key[a], g.Key[b]) })
	out := &GroupResult{
		Key:   make([]int64, len(idx)),
		Count: make([]int64, len(idx)),
		Sum:   make([]float64, len(idx)),
		Min:   make([]float64, len(idx)),
		Max:   make([]float64, len(idx)),
	}
	for i, j := range idx {
		out.Key[i] = g.Key[j]
		out.Count[i] = g.Count[j]
		out.Sum[i] = g.Sum[j]
		out.Min[i] = g.Min[j]
		out.Max[i] = g.Max[j]
	}
	return out
}

func validate(keys bat.Vector, measure *bat.F64Vec) error {
	if keys == nil || measure == nil {
		return fmt.Errorf("agg: nil column")
	}
	if keys.Len() != measure.Len() {
		return fmt.Errorf("agg: key column length %d != measure length %d", keys.Len(), measure.Len())
	}
	return nil
}

// groupTable is a bucket-chained hash table from group key to slot in
// the aggregate arrays; all state lives in flat arrays with simulated
// addresses so the experiments can count its cache behaviour. The
// bucket array grows with the number of groups seen — the table's
// footprint is what §3.2's "this hash-table fits the L2 cache, and
// probably also the L1 cache" refers to, so it must scale with G, not
// with the relation.
type groupTable struct {
	mask uint32
	head []int32
	next []int32
	keys []int64

	headBase uint64
	entBase  uint64 // entries: 12 bytes (key 8 + next 4)
	aggBase  uint64 // aggregate rows: 32 bytes (count, sum, min, max)
}

func newGroupTable(sim *memsim.Sim, capEntries int) *groupTable {
	const initialBuckets = 16
	t := &groupTable{
		mask: initialBuckets - 1,
		head: make([]int32, initialBuckets),
	}
	for i := range t.head {
		t.head[i] = -1
	}
	if sim != nil {
		t.headBase = sim.Alloc(4 * initialBuckets)
		t.entBase = sim.Alloc(12 * capEntries)
		t.aggBase = sim.Alloc(32 * capEntries)
	}
	return t
}

func (t *groupTable) bucket(key int64) uint32 {
	return uint32(uint64(key)*0x9e3779b97f4a7c15>>33) & t.mask
}

// grow quadruples the bucket array and re-links all entries; the new
// head region gets fresh simulated addresses (a realloc).
func (t *groupTable) grow(sim *memsim.Sim) {
	buckets := (int(t.mask) + 1) * 4
	t.mask = uint32(buckets - 1)
	t.head = make([]int32, buckets)
	if sim != nil {
		t.headBase = sim.Alloc(4 * buckets)
	}
	for i := range t.head {
		t.head[i] = -1
		if sim != nil {
			sim.Write(t.headBase+uint64(i)*4, 4)
		}
	}
	for e := range t.keys {
		h := t.bucket(t.keys[e])
		if sim != nil {
			sim.Read(t.entBase+uint64(e)*12, 12)
			sim.Write(t.entBase+uint64(e)*12, 12)
			sim.Write(t.headBase+uint64(h)*4, 4)
		}
		t.next[e] = t.head[h]
		t.head[h] = int32(e)
	}
}

// slot finds or creates the aggregate slot for key, mirroring the
// chain walk into sim.
func (t *groupTable) slot(sim *memsim.Sim, key int64) int32 {
	h := t.bucket(key)
	if sim != nil {
		sim.Read(t.headBase+uint64(h)*4, 4)
	}
	for e := t.head[h]; e != -1; e = t.next[e] {
		if sim != nil {
			sim.Read(t.entBase+uint64(e)*12, 12)
		}
		if t.keys[e] == key {
			return e
		}
	}
	if len(t.keys) >= 2*(int(t.mask)+1) {
		t.grow(sim)
		h = t.bucket(key)
	}
	e := int32(len(t.keys))
	t.keys = append(t.keys, key)
	t.next = append(t.next, t.head[h])
	t.head[h] = e
	if sim != nil {
		sim.Write(t.entBase+uint64(e)*12, 12)
		sim.Write(t.headBase+uint64(h)*4, 4)
	}
	return e
}

// HashGroup aggregates measure per distinct key in one scan with a
// temporary hash table (§3.2). The table's footprint is proportional
// to the number of groups; while that fits L2 (and ideally L1), every
// aggregate update is a cache hit.
func HashGroup(sim *memsim.Sim, keys bat.Vector, measure *bat.F64Vec) (*GroupResult, error) {
	if err := validate(keys, measure); err != nil {
		return nil, err
	}
	keys.Bind(sim)
	measure.Bind(sim)
	n := keys.Len()
	t := newGroupTable(sim, n)
	res := &GroupResult{}
	var wTuple float64
	if sim != nil {
		wTuple = sim.Machine().Cost.WScanBUN
	}
	for i := 0; i < n; i++ {
		keys.Touch(sim, i)
		measure.Touch(sim, i)
		k := keys.Int(i)
		v := measure.Float(i)
		s := t.slot(sim, k)
		if int(s) == len(res.Key) {
			res.Key = append(res.Key, k)
			res.Count = append(res.Count, 0)
			res.Sum = append(res.Sum, 0)
			res.Min = append(res.Min, v)
			res.Max = append(res.Max, v)
		}
		if sim != nil {
			// Read-modify-write of the 32-byte aggregate row.
			sim.Read(t.aggBase+uint64(s)*32, 32)
			sim.Write(t.aggBase+uint64(s)*32, 32)
			sim.AddCPU(1, wTuple)
		}
		res.Count[s]++
		res.Sum[s] += v
		if v < res.Min[s] {
			res.Min[s] = v
		}
		if v > res.Max[s] {
			res.Max[s] = v
		}
	}
	return res, nil
}

// SortGroup aggregates by first sorting (radix sort on the key bits)
// and then scanning groups off the sorted run — the sort/merge
// strategy of §3.2, whose sort phase has random access behaviour over
// the entire relation.
func SortGroup(sim *memsim.Sim, keys bat.Vector, measure *bat.F64Vec) (*GroupResult, error) {
	if err := validate(keys, measure); err != nil {
		return nil, err
	}
	keys.Bind(sim)
	measure.Bind(sim)
	n := keys.Len()
	// Materialize (key, row) pairs and sort them by key bits; the
	// measure is gathered through the row index afterwards — the
	// "sort is done on the entire relation to be grouped" cost.
	pairs := bat.NewPairs(n)
	pairs.Bind(sim)
	var wTuple float64
	if sim != nil {
		wTuple = sim.Machine().Cost.WScanBUN
	}
	for i := 0; i < n; i++ {
		keys.Touch(sim, i)
		if sim != nil {
			sim.Write(pairs.Addr(i), bat.PairSize)
			sim.AddCPU(1, wTuple)
		}
		pairs.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(keys.Int(i))}
	}
	sortx.SortPairs(sim, pairs, nil)
	if sim != nil {
		sim.AddCPU(4*n, sim.Machine().Cost.Wc)
	}
	res := &GroupResult{}
	for i := 0; i < n; i++ {
		if sim != nil {
			sim.Read(pairs.Addr(i), bat.PairSize)
			sim.AddCPU(1, wTuple)
		}
		bun := pairs.BUNs[i]
		row := int(bun.Head)
		measure.Touch(sim, row) // random gather through the OID
		v := measure.Float(row)
		k := keys.Int(row)
		if i == 0 || uint32(res.Key[len(res.Key)-1]) != bun.Tail {
			res.Key = append(res.Key, k)
			res.Count = append(res.Count, 0)
			res.Sum = append(res.Sum, 0)
			res.Min = append(res.Min, v)
			res.Max = append(res.Max, v)
		}
		s := len(res.Key) - 1
		res.Count[s]++
		res.Sum[s] += v
		if v < res.Min[s] {
			res.Min[s] = v
		}
		if v > res.Max[s] {
			res.Max[s] = v
		}
	}
	return res, nil
}
