package agg

import (
	"math"
	"reflect"
	"testing"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// genKeyed builds an n-row (key, value) feed with keys drawn by gen.
func genKeyed(n int, gen func(rng *workload.RNG, i int) int64, seed uint64) ([]int64, []float64) {
	rng := workload.NewRNG(seed)
	keys := make([]int64, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = gen(rng, i)
		vals[i] = float64(rng.Intn(1<<20)) / 3 // non-terminating binary fractions
	}
	return keys, vals
}

// radixInputs is the adversarial key set the property suite sweeps:
// skew, duplicates, negative keys, near-unique keys, tiny and empty
// relations.
func radixInputs() map[string]struct {
	n   int
	gen func(rng *workload.RNG, i int) int64
} {
	return map[string]struct {
		n   int
		gen func(rng *workload.RNG, i int) int64
	}{
		"empty":    {0, func(*workload.RNG, int) int64 { return 0 }},
		"one":      {1, func(*workload.RNG, int) int64 { return -42 }},
		"tiny":     {7, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(3)) }},
		"skewed":   {6000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(rng.Intn(64) + 1)) }},
		"dups":     {6000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(97)) }},
		"negative": {6000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(4001)) - 2000 }},
		"unique":   {6000, func(_ *workload.RNG, i int) int64 { return int64(i * 2654435761) }},
	}
}

// TestRadixGroupMatchesHashBitwise: RadixGroup must agree with
// HashGroup *bitwise* after Sorted() — the stable cluster passes keep
// each group's measures in input order, so even the float sums must
// come out identical, for every bits/passes split.
func TestRadixGroupMatchesHashBitwise(t *testing.T) {
	for name, in := range radixInputs() {
		keys, vals := genKeyed(in.n, in.gen, 5)
		kv := bat.NewI64(keys)
		h, err := HashGroup(nil, kv, bat.NewF64(vals))
		if err != nil {
			t.Fatal(err)
		}
		hs := h.Sorted()
		for _, cfg := range []struct{ bits, passes int }{{0, 1}, {1, 1}, {4, 2}, {8, 2}, {11, 3}} {
			r, err := RadixGroup(nil, kv, bat.NewF64(vals), cfg.bits, cfg.passes)
			if err != nil {
				t.Fatalf("%s B=%d P=%d: %v", name, cfg.bits, cfg.passes, err)
			}
			if rs := r.Sorted(); !reflect.DeepEqual(hs, rs) {
				t.Errorf("%s B=%d P=%d: radix result differs from hash (groups %d vs %d)",
					name, cfg.bits, cfg.passes, rs.Groups(), hs.Groups())
			}
		}
	}
}

// TestRadixGroupAgreesWithSort: cross-check against the third §3.2
// strategy (tolerance on sums — SortGroup's pairs sort on uint32 key
// bits, a different association only in principle; counts and min/max
// must be exact). Keys stay in the uint32 domain SortGroup handles.
func TestRadixGroupAgreesWithSort(t *testing.T) {
	keys, vals := genKeyed(5000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(2000)) }, 9)
	s, err := SortGroup(nil, bat.NewI64(keys), bat.NewF64(vals))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RadixGroup(nil, bat.NewI64(keys), bat.NewF64(vals), 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss, rs := s.Sorted(), r.Sorted()
	if ss.Groups() != rs.Groups() {
		t.Fatalf("group counts differ: sort %d, radix %d", ss.Groups(), rs.Groups())
	}
	for i := range ss.Key {
		if ss.Key[i] != rs.Key[i] || ss.Count[i] != rs.Count[i] ||
			ss.Min[i] != rs.Min[i] || ss.Max[i] != rs.Max[i] ||
			math.Abs(ss.Sum[i]-rs.Sum[i]) > 1e-9*math.Max(1, math.Abs(ss.Sum[i])) {
			t.Errorf("group %d differs: sort (%d,%d,%v) radix (%d,%d,%v)",
				i, ss.Key[i], ss.Count[i], ss.Sum[i], rs.Key[i], rs.Count[i], rs.Sum[i])
		}
	}
}

// TestRadixGroupInstrumentedMatchesNative: the simulated path must
// produce bit-identical aggregates to the native path, and actually
// mirror work into the simulator.
func TestRadixGroupInstrumentedMatchesNative(t *testing.T) {
	keys, vals := genKeyed(4000, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(1500)) }, 13)
	native, err := RadixGroup(nil, bat.NewI64(keys), bat.NewF64(vals), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := memsim.MustNew(memsim.Origin2000())
	instr, err := RadixGroup(sim, bat.NewI64(keys), bat.NewF64(vals), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(native, instr) {
		t.Error("instrumented radix grouping differs from native")
	}
	st := sim.Stats()
	if st.Accesses == 0 || st.CPUNanos == 0 {
		t.Errorf("instrumented run mirrored no work: %+v", st)
	}
}

// TestRadixGroupPartitioningBeatsMonolithicSim: the point of the
// strategy, measured on the simulator — at a group count far past L1,
// partitioned aggregation must cost less simulated time than one
// monolithic hash table (§3.2 pathology, §4 remedy).
func TestRadixGroupPartitioningBeatsMonolithicSim(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated 200K-row comparison; skipped in -short")
	}
	n := 200_000
	keys, vals := genKeyed(n, func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(n)) }, 17)
	hashSim := memsim.MustNew(memsim.Origin2000())
	if _, err := HashGroup(hashSim, bat.NewI64(keys), bat.NewF64(vals)); err != nil {
		t.Fatal(err)
	}
	radixSim := memsim.MustNew(memsim.Origin2000())
	if _, err := RadixGroup(radixSim, bat.NewI64(keys), bat.NewF64(vals), 10, 2); err != nil {
		t.Fatal(err)
	}
	h, r := hashSim.Stats().ElapsedMillis(), radixSim.Stats().ElapsedMillis()
	t.Logf("simulated %d rows, ~%d groups: hash %.1f ms, radix %.1f ms", n, n, h, r)
	if r >= h {
		t.Errorf("radix grouping simulated at %.1f ms, monolithic hash at %.1f ms — partitioning must win", r, h)
	}
}

func TestRadixGroupErrors(t *testing.T) {
	keys, vals := genKeyed(16, func(rng *workload.RNG, i int) int64 { return int64(i) }, 1)
	kv, vv := bat.NewI64(keys), bat.NewF64(vals)
	if _, err := RadixGroup(nil, kv, vv, -1, 1); err == nil {
		t.Error("negative bits accepted")
	}
	if _, err := RadixGroup(nil, kv, vv, 3, 0); err == nil {
		t.Error("zero passes accepted")
	}
	if _, err := RadixGroup(nil, kv, vv, 2, 3); err == nil {
		t.Error("passes > bits accepted")
	}
	if _, err := RadixGroup(nil, nil, vv, 2, 1); err == nil {
		t.Error("nil keys accepted")
	}
	if _, err := RadixGroup(nil, kv, bat.NewF64(vals[:4]), 2, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}
