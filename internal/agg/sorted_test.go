package agg

import "testing"

// TestSortedCanonicalOrder pins the noreflect fix in Sorted: the
// reflection-based sort.Slice was replaced with slices.SortFunc, and
// because group keys are unique the key comparison alone must yield
// the same canonical permutation, rows moving with their keys.
func TestSortedCanonicalOrder(t *testing.T) {
	g := &GroupResult{
		Key:   []int64{30, 5, 90, -2, 14},
		Count: []int64{3, 1, 9, 2, 4},
		Sum:   []float64{30.5, 1.5, 9.25, 2.75, 4.0},
		Min:   []float64{1, 2, 3, 4, 5},
		Max:   []float64{10, 20, 30, 40, 50},
	}
	s := g.Sorted()
	wantKeys := []int64{-2, 5, 14, 30, 90}
	wantCount := []int64{2, 1, 4, 3, 9}
	for i := range wantKeys {
		if s.Key[i] != wantKeys[i] {
			t.Fatalf("Sorted keys = %v, want %v", s.Key, wantKeys)
		}
		if s.Count[i] != wantCount[i] {
			t.Fatalf("Sorted counts did not move with keys: %v, want %v", s.Count, wantCount)
		}
	}
	// The receiver must be untouched (Sorted returns a copy).
	if g.Key[0] != 30 {
		t.Fatalf("Sorted mutated its receiver: %v", g.Key)
	}
}
