// Radix-partitioned grouping: the paper's signature remedy (§4's
// radix-cluster) applied to the aggregation operator of §3.2. Hash
// grouping is superior exactly as long as its table fits the memory
// caches; once the group count grows past that, every aggregate update
// is a RAM-latency random access. RadixGroup restores the
// cache-resident regime: cluster the (key, value) feed on the low B
// bits of the group key into 2^B partitions — B chosen so one
// partition's group table fits well inside L1 — then aggregate every
// partition independently with a small hash table. Partitions own
// disjoint key sets by construction, so the per-partition results
// concatenate in partition order with no merge step at all.
package agg

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/core"
	"monetlite/internal/memsim"
)

// PairBytes is the footprint of one (key, value) tuple of the
// aggregation feed the radix passes cluster: an 8-byte key plus an
// 8-byte measure.
const PairBytes = 16

// GroupTableBytesPerGroup is the modelled footprint one group
// contributes to a grouping hash table: a 12-byte chained entry, a
// 32-byte aggregate row and ~4 bytes of bucket heads — the "≈48
// bytes/group" the cost models and the radix-bit choice share.
const GroupTableBytesPerGroup = 48

// RadixGroup aggregates measure per distinct key by radix-clustering
// the feed on the low `bits` key bits (in `passes` stable counting-sort
// passes) and hash-grouping each of the 2^bits partitions
// independently. Group rows appear in (partition, first-seen) order;
// Sorted() canonicalizes. bits == 0 degenerates to HashGroup. Because
// the clustering is stable, each group accumulates its measure in
// input order — exactly as HashGroup does — so the aggregates
// (float sums included) are bit-identical to HashGroup's.
//
// Instrumented runs mirror the cluster passes (one histogram read plus
// one read and one write of the 16-byte pair per tuple per pass) and
// the per-partition table probes into sim, so the experiments can
// count how partitioning converts RAM-latency probes into cache hits.
func RadixGroup(sim *memsim.Sim, keys bat.Vector, measure *bat.F64Vec, bits, passes int) (*GroupResult, error) {
	if err := validate(keys, measure); err != nil {
		return nil, err
	}
	if err := core.CheckBits(bits); err != nil {
		return nil, fmt.Errorf("agg: %w", err)
	}
	if bits == 0 {
		return HashGroup(sim, keys, measure)
	}
	if passes < 1 || passes > bits {
		return nil, fmt.Errorf("agg: %d passes invalid for %d bits", passes, bits)
	}

	// Materialize the (key, value) feed into flat pair arrays — the
	// input of the first cluster pass.
	keys.Bind(sim)
	measure.Bind(sim)
	n := keys.Len()
	ks := make([]int64, n)
	vs := make([]float64, n)
	var wTuple float64
	var feedBase uint64
	if sim != nil {
		wTuple = sim.Machine().Cost.WScanBUN
		feedBase = sim.Alloc(PairBytes * n)
	}
	for i := 0; i < n; i++ {
		keys.Touch(sim, i)
		measure.Touch(sim, i)
		if sim != nil {
			sim.Write(feedBase+uint64(i)*PairBytes, PairBytes)
			sim.AddCPU(1, wTuple)
		}
		ks[i] = keys.Int(i)
		vs[i] = measure.Float(i)
	}

	if sim == nil {
		ck, cv, offs, err := core.RadixClusterKV(ks, vs, bits, passes, core.Serial())
		if err != nil {
			return nil, err
		}
		res := &GroupResult{}
		var pa PartitionAggregator
		for p := 0; p+1 < len(offs); p++ {
			pa.AggregateInto(res, ck[offs[p]:offs[p+1]], cv[offs[p]:offs[p+1]])
		}
		return res, nil
	}
	return radixGroupSim(sim, ks, vs, bits, passes, feedBase)
}

// radixGroupSim is the instrumented serial path: the same stable
// multi-pass clustering, every pair access mirrored into sim, then one
// small (cache-resident, by choice of bits) group table per partition.
// The clustering loop deliberately mirrors core.RadixClusterKV's
// algorithm (raw slices carry no simulated-address mapping, so the
// access mirroring lives here); TestRadixGroupInstrumentedMatchesNative
// pins the two implementations in lockstep — an algorithmic change to
// either side fails it loudly.
func radixGroupSim(sim *memsim.Sim, ks []int64, vs []float64, bits, passes int, feedBase uint64) (*GroupResult, error) {
	n := len(ks)
	wc := sim.Machine().Cost.Wc
	wTuple := sim.Machine().Cost.WScanBUN
	split := core.EvenBitSplit(bits, passes)

	kA, vA := make([]int64, n), make([]float64, n)
	kB, vB := []int64(nil), []float64(nil)
	baseA := sim.Alloc(PairBytes * n)
	var baseB uint64
	if len(split) > 1 {
		kB, vB = make([]int64, n), make([]float64, n)
		baseB = sim.Alloc(PairBytes * n)
	}

	kSrc, vSrc, srcBase := ks, vs, feedBase
	kDst, vDst, dstBase := kA, vA, baseA
	dstIsA := true
	regions := []int{0, n}
	bitsDone := 0
	for p, bp := range split {
		shift := uint(bits - bitsDone - bp)
		hp := 1 << bp
		mask := uint64(hp - 1)
		nr := len(regions) - 1
		newRegions := make([]int, 0, nr*hp+1)
		cursors := make([]int, hp)
		for r := 0; r < nr; r++ {
			lo, hi := regions[r], regions[r+1]
			for d := range cursors {
				cursors[d] = 0
			}
			// Histogram: one sequential read per tuple.
			for i := lo; i < hi; i++ {
				sim.Read(srcBase+uint64(i)*PairBytes, PairBytes)
				cursors[(uint64(kSrc[i])>>shift)&mask]++
			}
			pos := lo
			for d := 0; d < hp; d++ {
				newRegions = append(newRegions, pos)
				c := cursors[d]
				cursors[d] = pos
				pos += c
			}
			// Scatter: the randomly-written Hp regions of Figure 5/6.
			for i := lo; i < hi; i++ {
				d := (uint64(kSrc[i]) >> shift) & mask
				at := cursors[d]
				sim.Read(srcBase+uint64(i)*PairBytes, PairBytes)
				sim.Write(dstBase+uint64(at)*PairBytes, PairBytes)
				kDst[at] = kSrc[i]
				vDst[at] = vSrc[i]
				cursors[d] = at + 1
			}
		}
		newRegions = append(newRegions, n)
		regions = newRegions
		sim.AddCPU(n, wc)
		bitsDone += bp
		switch {
		case p == len(split)-1:
			kSrc, vSrc, srcBase = kDst, vDst, dstBase
		case dstIsA:
			kSrc, vSrc, srcBase = kA, vA, baseA
			kDst, vDst, dstBase = kB, vB, baseB
		default:
			kSrc, vSrc, srcBase = kB, vB, baseB
			kDst, vDst, dstBase = kA, vA, baseA
		}
		dstIsA = !dstIsA
	}

	// Aggregate each partition with its own small table; the probes hit
	// the caches because the per-partition footprint was sized to.
	res := &GroupResult{}
	for p := 0; p+1 < len(regions); p++ {
		lo, hi := regions[p], regions[p+1]
		if lo == hi {
			continue
		}
		t := newGroupTable(sim, hi-lo)
		base := len(res.Key)
		for i := lo; i < hi; i++ {
			sim.Read(srcBase+uint64(i)*PairBytes, PairBytes)
			k, v := kSrc[i], vSrc[i]
			s := base + int(t.slot(sim, k))
			if s == len(res.Key) {
				res.Key = append(res.Key, k)
				res.Count = append(res.Count, 0)
				res.Sum = append(res.Sum, 0)
				res.Min = append(res.Min, v)
				res.Max = append(res.Max, v)
			}
			// Read-modify-write of the 32-byte aggregate row.
			sim.Read(t.aggBase+uint64(s-base)*32, 32)
			sim.Write(t.aggBase+uint64(s-base)*32, 32)
			sim.AddCPU(1, wTuple)
			res.Count[s]++
			res.Sum[s] += v
			if v < res.Min[s] {
				res.Min[s] = v
			}
			if v > res.Max[s] {
				res.Max[s] = v
			}
		}
	}
	return res, nil
}

// PartitionAggregator is a reusable grouping table for aggregating one
// radix partition at a time on the native path, appending that
// partition's group rows to a caller-owned GroupResult. The bucket and
// chain arrays are reused across every partition the owner drains (the
// engine keeps one aggregator per worker), so steady-state aggregation
// allocates only the output rows.
type PartitionAggregator struct {
	head []int32
	next []int32
}

// AggregateInto groups one partition's (key, value) feed into res.
// New groups append in first-seen order; existing group rows of res
// (from earlier partitions) are never touched, because partitions own
// disjoint key sets.
//
//monet:kernel
func (pa *PartitionAggregator) AggregateInto(res *GroupResult, keys []int64, vals []float64) {
	if len(keys) == 0 {
		return
	}
	buckets := 16
	for buckets < 2*len(keys) && buckets < 1<<20 {
		buckets <<= 1
	}
	if cap(pa.head) < buckets {
		pa.head = make([]int32, buckets)
	}
	head := pa.head[:buckets]
	for i := range head {
		head[i] = -1
	}
	mask := uint32(buckets - 1)
	next := pa.next[:0]
	base := len(res.Key)
	for i, k := range keys {
		h := uint32(uint64(k)*0x9e3779b97f4a7c15>>33) & mask
		s := int32(-1)
		for e := head[h]; e != -1; e = next[e] {
			if res.Key[base+int(e)] == k {
				s = e
				break
			}
		}
		v := vals[i]
		if s == -1 {
			s = int32(len(next))
			next = append(next, head[h])
			head[h] = s
			res.Key = append(res.Key, k)
			res.Count = append(res.Count, 0)
			res.Sum = append(res.Sum, 0)
			res.Min = append(res.Min, v)
			res.Max = append(res.Max, v)
		}
		j := base + int(s)
		res.Count[j]++
		res.Sum[j] += v
		if v < res.Min[j] {
			res.Min[j] = v
		}
		if v > res.Max[j] {
			res.Max[j] = v
		}
	}
	pa.next = next
}

// Reserve grows the result's backing arrays to hold at least n group
// rows, so partition-order appends do not reallocate mid-run.
func (g *GroupResult) Reserve(n int) {
	if cap(g.Key) >= n {
		return
	}
	key := make([]int64, len(g.Key), n)
	copy(key, g.Key)
	g.Key = key
	cnt := make([]int64, len(g.Count), n)
	copy(cnt, g.Count)
	g.Count = cnt
	for _, f := range []*[]float64{&g.Sum, &g.Min, &g.Max} {
		v := make([]float64, len(*f), n)
		copy(v, *f)
		*f = v
	}
}
