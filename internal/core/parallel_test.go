package core

import (
	"fmt"
	"testing"

	"monetlite/internal/bat"
	"monetlite/internal/hashtab"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// The parallel engine must be a pure performance feature: for every
// input shape and worker count, its output is byte-identical to the
// serial operators'. These tests cross-check that on uniform, skewed,
// duplicate-heavy, empty-cluster and tiny inputs. Run with -race to
// exercise the worker pool under the race detector.

// samePairs reports whether two join indexes (or BATs) are
// byte-identical: same length, same BUNs in the same order.
func samePairs(t *testing.T, label string, got, want *bat.Pairs) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: length %d, want %d", label, got.Len(), want.Len())
	}
	for i := range want.BUNs {
		if got.BUNs[i] != want.BUNs[i] {
			t.Fatalf("%s: BUN %d = %+v, want %+v", label, i, got.BUNs[i], want.BUNs[i])
		}
	}
}

// skewedPairs concentrates half the tuples in radix cluster 0 of a
// B-bit clustering (keys ≡ 0 mod 2^B, identity hash), the rest
// uniform — the worst case for equal-cluster-count work division.
func skewedPairs(n, bits int, seed uint64) *bat.Pairs {
	rng := workload.NewRNG(seed)
	buns := make([]bat.Pair, n)
	for i := range buns {
		var key uint32
		if i%2 == 0 {
			key = uint32(i) << bits
		} else {
			key = uint32(rng.Intn(1 << 30))
		}
		buns[i] = bat.Pair{Head: bat.Oid(i), Tail: key}
	}
	return bat.FromPairs(buns)
}

// dupPairs draws keys from a tiny domain so every probe matches many
// build tuples.
func dupPairs(n, domain int, seed uint64) *bat.Pairs {
	rng := workload.NewRNG(seed)
	buns := make([]bat.Pair, n)
	for i := range buns {
		buns[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(rng.Intn(domain))}
	}
	return bat.FromPairs(buns)
}

// evenPairs uses only even keys, leaving every odd radix cluster
// empty.
func evenPairs(n int, seed uint64) *bat.Pairs {
	rng := workload.NewRNG(seed)
	buns := make([]bat.Pair, n)
	for i := range buns {
		buns[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(rng.Intn(1<<30)) &^ 1}
	}
	return bat.FromPairs(buns)
}

func parallelCases() []struct {
	name string
	l, r *bat.Pairs
} {
	lu, ru := workload.JoinInputs(20000, 11)
	return []struct {
		name string
		l, r *bat.Pairs
	}{
		{"uniform", lu, ru},
		{"skewed", skewedPairs(16384, 6, 12), skewedPairs(16384, 6, 13)},
		{"duplicates", dupPairs(2048, 64, 14), dupPairs(2048, 64, 15)},
		{"empty-clusters", evenPairs(8192, 16), evenPairs(8192, 17)},
		{"tiny", workload.UniquePairs(3, 18), workload.UniquePairs(3, 19)},
		{"single", workload.UniquePairs(1, 20), workload.UniquePairs(1, 21)},
		{"empty", bat.NewPairs(0), bat.NewPairs(0)},
	}
}

var workerCounts = []int{0, 2, 3, 5, 16}

func TestParallelClusterMatchesSerial(t *testing.T) {
	for _, tc := range parallelCases() {
		for _, split := range [][]int{{6}, {4, 4}, {3, 3, 2}} {
			want, err := RadixClusterSplit(nil, tc.l, split, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				got, err := RadixClusterSplitOpts(nil, tc.l, split, nil, Options{Parallelism: w})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/split=%v/workers=%d", tc.name, split, w)
				samePairs(t, label, got.Pairs, want.Pairs)
				if len(got.Offsets) != len(want.Offsets) {
					t.Fatalf("%s: %d offsets, want %d", label, len(got.Offsets), len(want.Offsets))
				}
				for i := range want.Offsets {
					if got.Offsets[i] != want.Offsets[i] {
						t.Fatalf("%s: offset %d = %d, want %d", label, i, got.Offsets[i], want.Offsets[i])
					}
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
		}
	}
}

// TestParallelClusterMonoRegion drives the skew path of the hybrid
// pass scheme: keys with all low 8 bits zero keep every tuple in one
// region after the first pass, so later passes must split that single
// big region across the pool rather than serializing it on one worker.
func TestParallelClusterMonoRegion(t *testing.T) {
	n := 1 << 16
	rng := workload.NewRNG(25)
	buns := make([]bat.Pair, n)
	for i := range buns {
		buns[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(i) << 8}
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		buns[i], buns[j] = buns[j], buns[i]
	}
	in := bat.FromPairs(buns)
	for _, split := range [][]int{{4, 4}, {3, 3, 2}, {6, 6}} {
		want, err := RadixClusterSplit(nil, in, split, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			got, err := RadixClusterSplitOpts(nil, in, split, nil, Options{Parallelism: w})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("mono/split=%v/workers=%d", split, w)
			samePairs(t, label, got.Pairs, want.Pairs)
			for i := range want.Offsets {
				if got.Offsets[i] != want.Offsets[i] {
					t.Fatalf("%s: offset %d = %d, want %d", label, i, got.Offsets[i], want.Offsets[i])
				}
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
	}
}

// TestParallelAbsurdParallelism checks that enormous Parallelism
// values are clamped to the available work instead of oversizing
// pools or overflowing the task-grain arithmetic.
func TestParallelAbsurdParallelism(t *testing.T) {
	l, r := workload.JoinInputs(4096, 26)
	for _, w := range []int{1 << 20, 1 << 61} {
		opt := Options{Parallelism: w}
		want, err := PartitionedHashJoinOpts(nil, l, r, 6, 2, nil, Serial())
		if err != nil {
			t.Fatal(err)
		}
		got, err := PartitionedHashJoinOpts(nil, l, r, 6, 2, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, fmt.Sprintf("absurd=%d", w), got, want)
	}
}

func TestParallelJoinsMatchSerial(t *testing.T) {
	for _, tc := range parallelCases() {
		for _, h := range []hashtab.Hash{nil, hashtab.Mult} {
			hname := "identity"
			if h != nil {
				hname = "mult"
			}
			wantPh, err := PartitionedHashJoinOpts(nil, tc.l, tc.r, 6, 2, h, Serial())
			if err != nil {
				t.Fatal(err)
			}
			wantRx, err := RadixJoinOpts(nil, tc.l, tc.r, 8, 2, h, Serial())
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				opt := Options{Parallelism: w}
				gotPh, err := PartitionedHashJoinOpts(nil, tc.l, tc.r, 6, 2, h, opt)
				if err != nil {
					t.Fatal(err)
				}
				samePairs(t, fmt.Sprintf("phash/%s/%s/workers=%d", tc.name, hname, w), gotPh, wantPh)
				gotRx, err := RadixJoinOpts(nil, tc.l, tc.r, 8, 2, h, opt)
				if err != nil {
					t.Fatal(err)
				}
				samePairs(t, fmt.Sprintf("radix/%s/%s/workers=%d", tc.name, hname, w), gotRx, wantRx)
			}
		}
	}
}

func TestParallelExecuteMatchesSerial(t *testing.T) {
	l, r := workload.JoinInputs(1<<16, 22)
	m := memsim.Origin2000()
	for _, s := range Strategies() {
		p := NewPlan(s, l.Len(), m)
		want, err := Execute(nil, l, r, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteOpts(nil, l, r, p, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, s.String(), got, want)
	}
}

// TestParallelSimFallsBackSerial checks the engine contract: with a
// simulator attached, Opts operators produce the exact event counts of
// the serial path (memsim.Sim is single-goroutine by design).
func TestParallelSimFallsBackSerial(t *testing.T) {
	l, r := workload.JoinInputs(4096, 23)
	simA := memsim.MustNew(memsim.Origin2000())
	want, err := PartitionedHashJoin(simA, l, r, 6, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Unbind()
	r.Unbind()
	simB := memsim.MustNew(memsim.Origin2000())
	got, err := PartitionedHashJoinOpts(simB, l, r, 6, 1, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Unbind()
	r.Unbind()
	samePairs(t, "sim fallback", got, want)
	if simA.Stats() != simB.Stats() {
		t.Errorf("instrumented Opts run diverged from serial: %+v vs %+v", simB.Stats(), simA.Stats())
	}
}

func TestOptionsWorkers(t *testing.T) {
	if got := Serial().workers(); got != 1 {
		t.Errorf("Serial().workers() = %d", got)
	}
	if got := (Options{Parallelism: 7}).workers(); got != 7 {
		t.Errorf("workers = %d, want 7", got)
	}
	if got := (Options{}).workers(); got < 1 {
		t.Errorf("auto workers = %d", got)
	}
}

func TestBitsValidation(t *testing.T) {
	in := workload.UniquePairs(64, 24)
	for _, bits := range []int{-1, MaxBits + 1, 33, 64} {
		if _, err := RadixCluster(nil, in, bits, 1, nil); err == nil {
			t.Errorf("RadixCluster accepted bits=%d", bits)
		}
		if _, err := RadixClusterOpts(nil, in, bits, 1, nil, Options{}); err == nil {
			t.Errorf("RadixClusterOpts accepted bits=%d", bits)
		}
		if err := CheckBits(bits); err == nil {
			t.Errorf("CheckBits accepted %d", bits)
		}
	}
	for _, split := range [][]int{{0}, {-3}, {16, 16}, {27}} {
		if _, err := RadixClusterSplit(nil, in, split, nil); err == nil {
			t.Errorf("RadixClusterSplit accepted %v", split)
		}
		if _, err := RadixClusterSplitOpts(nil, in, split, nil, Options{}); err == nil {
			t.Errorf("RadixClusterSplitOpts accepted %v", split)
		}
	}
	for _, p := range []Plan{
		{Strategy: PhashL2, Bits: -1, Passes: 1},
		{Strategy: PhashL2, Bits: 40, Passes: 2},
		{Strategy: Radix8, Bits: 8, Passes: 0},
		{Strategy: Radix8, Bits: 4, Passes: 5},
	} {
		if _, err := Execute(nil, in, in, p, nil); err == nil {
			t.Errorf("Execute accepted invalid plan %+v", p)
		}
		if _, err := ExecuteOpts(nil, in, in, p, nil, Options{}); err == nil {
			t.Errorf("ExecuteOpts accepted invalid plan %+v", p)
		}
	}
	if got := EvenBitSplit(8, 0); got != nil {
		t.Errorf("EvenBitSplit(8, 0) = %v, want nil", got)
	}
}
