package core

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/hashtab"
	"monetlite/internal/memsim"
)

// Strategy enumerates the join strategies compared in §3.4.4 and
// Figure 13.
type Strategy int

// The §3.4.4 strategy set. The four named diagonal strategies of
// Figure 12 are PhashL2, PhashTLB, PhashL1 and Radix8; Phash256,
// PhashMin (≈200-tuple clusters) and RadixMin (≈4-tuple clusters) are
// the empirically optimal settings the paper identifies beyond them.
const (
	SimpleHash Strategy = iota // non-partitioned bucket-chained hash join
	SortMerge                  // sort both inputs, merge
	PhashL2                    // partitioned hash: inner cluster + table fits L2
	PhashTLB                   // partitioned hash: inner cluster spans ≤ |TLB| pages
	PhashL1                    // partitioned hash: inner cluster + table fits L1
	Phash256                   // partitioned hash: ≈256-tuple clusters
	PhashMin                   // partitioned hash: ≈200-tuple clusters ("phash min")
	Radix8                     // radix-join: ≈8-tuple clusters
	RadixMin                   // radix-join: ≈4-tuple clusters ("radix min")
	Auto                       // pick the cheapest strategy by predicted cost
)

// Strategies lists the concrete (non-Auto) strategies in Figure-13
// legend order.
func Strategies() []Strategy {
	return []Strategy{SortMerge, SimpleHash, PhashL2, PhashTLB, PhashL1, Phash256, PhashMin, Radix8, RadixMin}
}

func (s Strategy) String() string {
	switch s {
	case SimpleHash:
		return "simple hash"
	case SortMerge:
		return "sort-merge"
	case PhashL2:
		return "phash L2"
	case PhashTLB:
		return "phash TLB"
	case PhashL1:
		return "phash L1"
	case Phash256:
		return "phash 256"
	case PhashMin:
		return "phash min"
	case Radix8:
		return "radix 8"
	case RadixMin:
		return "radix min"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// UsesRadixJoin reports whether the strategy's join phase is the
// nested-loop radix-join (vs hash or merge).
func (s Strategy) UsesRadixJoin() bool { return s == Radix8 || s == RadixMin }

// PhashTupleBytes is the per-tuple footprint §3.4.4 uses for the
// partitioned hash-join strategies: the 8-byte BUN plus the amortized
// bucket-chained hash table (≈4 bytes of chain + head).
const PhashTupleBytes = 12

// RadixTupleBytes is the per-tuple footprint of radix-join clusters.
const RadixTupleBytes = 8

// ceilLog2 returns ⌈log2(x)⌉ for x ≥ 1, and 0 for x ≤ 1.
func ceilLog2(x int) int {
	b := 0
	for (1 << b) < x {
		b++
	}
	return b
}

// StrategyBits computes the number of radix bits B the strategy
// prescribes for cardinality c on machine m (§3.4.4): e.g. phash L2
// uses B = log2(C·12/‖L2‖) so the inner cluster plus hash table fits
// the L2 cache. Results are clamped to [0, MaxBits].
func StrategyBits(s Strategy, c int, m memsim.Machine) int {
	if c <= 0 {
		return 0
	}
	bits := 0
	switch s {
	case SimpleHash, SortMerge:
		return 0
	case PhashL2:
		bits = ceilLog2((c*PhashTupleBytes + m.L2.Size - 1) / m.L2.Size)
	case PhashTLB:
		bits = ceilLog2((c*PhashTupleBytes + m.TLB.Span() - 1) / m.TLB.Span())
	case PhashL1:
		bits = ceilLog2((c*PhashTupleBytes + m.L1.Size - 1) / m.L1.Size)
	case Phash256:
		bits = ceilLog2((c + 255) / 256)
	case PhashMin:
		bits = ceilLog2((c + 199) / 200)
	case Radix8:
		bits = ceilLog2((c + 7) / 8)
	case RadixMin:
		bits = ceilLog2((c + 3) / 4)
	default:
		return 0
	}
	if bits < 0 {
		bits = 0
	}
	if bits > MaxBits {
		bits = MaxBits
	}
	return bits
}

// Plan is a fully resolved join plan: strategy plus the radix-cluster
// tuning parameters B and P of §3.4.
type Plan struct {
	Strategy Strategy
	Bits     int
	Passes   int
}

func (p Plan) String() string {
	if p.Bits == 0 {
		return p.Strategy.String()
	}
	return fmt.Sprintf("%s (B=%d, P=%d)", p.Strategy, p.Bits, p.Passes)
}

// Validate rejects hand-built plans whose radix parameters the
// cluster kernels cannot execute correctly: bits outside [0, MaxBits]
// (oversized shifts would silently mis-cluster) or a pass count that
// cannot distribute the bits.
func (p Plan) Validate() error {
	if err := CheckBits(p.Bits); err != nil {
		return err
	}
	if p.Bits > 0 && (p.Passes < 1 || p.Passes > p.Bits) {
		return fmt.Errorf("core: %d passes invalid for %d bits", p.Passes, p.Bits)
	}
	return nil
}

// NewPlan resolves a concrete strategy into bits and passes for
// cardinality c on machine m. Auto is resolved by predicted cost; see
// PlanAuto.
func NewPlan(s Strategy, c int, m memsim.Machine) Plan {
	if s == Auto {
		return PlanAuto(c, m)
	}
	bits := StrategyBits(s, c, m)
	passes := 1
	if bits > 0 {
		passes = OptimalPasses(bits, m)
	}
	return Plan{Strategy: s, Bits: bits, Passes: passes}
}

// Execute runs the plan on operands l (outer) and r (inner) on the
// serial engine, returning the join index.
func Execute(sim *memsim.Sim, l, r *bat.Pairs, p Plan, h hashtab.Hash) (*JoinIndex, error) {
	return ExecuteOpts(sim, l, r, p, h, Serial())
}

// ExecuteOpts runs the plan on the configured execution engine. The
// baseline strategies (simple hash, sort-merge) have no partitioned
// join phase to fan out and always run serially; instrumented runs
// (sim != nil) are serial by contract.
func ExecuteOpts(sim *memsim.Sim, l, r *bat.Pairs, p Plan, h hashtab.Hash, opt Options) (*JoinIndex, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch p.Strategy {
	case SimpleHash:
		return SimpleHashJoin(sim, l, r, h)
	case SortMerge:
		return SortMergeJoin(sim, l, r)
	case PhashL2, PhashTLB, PhashL1, Phash256, PhashMin:
		if p.Bits == 0 {
			return SimpleHashJoin(sim, l, r, h)
		}
		return PartitionedHashJoinOpts(sim, l, r, p.Bits, p.Passes, h, opt)
	case Radix8, RadixMin:
		if p.Bits == 0 {
			return NestedLoopJoin(sim, l, r)
		}
		return RadixJoinOpts(sim, l, r, p.Bits, p.Passes, h, opt)
	default:
		return nil, fmt.Errorf("core: cannot execute strategy %v", p.Strategy)
	}
}
