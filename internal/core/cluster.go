// Package core implements the paper's primary contribution (§3.3): the
// multi-pass radix-cluster algorithm and the two cluster-based equi-join
// algorithms built on it — partitioned hash-join and radix-join — plus
// the baseline joins they are compared against (non-partitioned hash
// join, sort-merge join) and the §3.4.4 strategy planner that picks the
// number of radix bits B and passes P for a given cardinality and
// machine.
//
// Every operator runs in two modes: natively (sim == nil), for
// wall-clock benchmarks, and instrumented, where each BUN access is
// mirrored into a memsim.Sim at stable simulated addresses to produce
// the exact L1/L2/TLB miss counts the paper reads from the R10000
// hardware counters.
package core

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/hashtab"
	"monetlite/internal/memsim"
)

// MaxBits caps the number of radix bits: 2^26 clusters of offsets is
// the largest boundary structure we allow (the paper sweeps B ≤ 25).
const MaxBits = 26

// CheckBits validates a radix-bit count. Anything outside [0, MaxBits]
// is rejected: Go defines shifts ≥ the operand width, so an oversized
// B would not crash but silently produce a wrong clustering.
func CheckBits(bits int) error {
	if bits < 0 || bits > MaxBits {
		return fmt.Errorf("core: radix bits %d outside [0, %d]", bits, MaxBits)
	}
	return nil
}

// checkSplit validates a per-pass bit schedule and returns the total
// bit count.
func checkSplit(split []int) (int, error) {
	bits := 0
	for _, bp := range split {
		if bp < 1 {
			return 0, fmt.Errorf("core: pass with %d bits", bp)
		}
		bits += bp
	}
	if bits < 1 || bits > MaxBits {
		return 0, fmt.Errorf("core: total radix bits %d outside [1, %d]", bits, MaxBits)
	}
	return bits, nil
}

// Clustered is a radix-clustered BAT: tuples reordered so that all
// tuples whose hash value agrees on the lower Bits bits are contiguous.
// Offsets[k] .. Offsets[k+1] delimit cluster k. The paper notes the
// boundaries need not be stored (the radix bits themselves mark them);
// we keep the offsets the clustering pass computes anyway, as Monet's
// implementation does for the merge step.
type Clustered struct {
	Pairs   *bat.Pairs
	Bits    int
	Offsets []int // length 2^Bits + 1
	hash    hashtab.Hash
}

// Clusters returns the number of clusters H = 2^Bits.
func (c *Clustered) Clusters() int { return 1 << c.Bits }

// Cluster returns cluster k as a zero-copy view.
func (c *Clustered) Cluster(k int) *bat.Pairs {
	return c.Pairs.Slice(c.Offsets[k], c.Offsets[k+1])
}

// ClusterLen returns the cardinality of cluster k.
func (c *Clustered) ClusterLen(k int) int { return c.Offsets[k+1] - c.Offsets[k] }

// Validate checks the clustering invariant: every tuple lies in the
// cluster its radix value selects, and offsets are monotone and cover
// the BAT exactly.
func (c *Clustered) Validate() error {
	if len(c.Offsets) != c.Clusters()+1 {
		return fmt.Errorf("core: %d offsets for %d clusters", len(c.Offsets), c.Clusters())
	}
	if c.Offsets[0] != 0 || c.Offsets[len(c.Offsets)-1] != c.Pairs.Len() {
		return fmt.Errorf("core: offsets do not cover the BAT")
	}
	mask := uint32(1)<<c.Bits - 1
	h := c.hash
	if h == nil {
		h = hashtab.Identity
	}
	for k := 0; k < c.Clusters(); k++ {
		if c.Offsets[k] > c.Offsets[k+1] {
			return fmt.Errorf("core: cluster %d has negative length", k)
		}
		for i := c.Offsets[k]; i < c.Offsets[k+1]; i++ {
			if got := h(c.Pairs.BUNs[i].Tail) & mask; got != uint32(k) {
				return fmt.Errorf("core: tuple %d has radix %d, stored in cluster %d", i, got, k)
			}
		}
	}
	return nil
}

// EvenBitSplit distributes bits over passes as evenly as possible,
// earlier passes taking the larger share — §3.4.2 reports performance
// depends strongly on an even distribution.
func EvenBitSplit(bits, passes int) []int {
	if passes < 1 {
		return nil
	}
	split := make([]int, passes)
	base, rem := bits/passes, bits%passes
	for i := range split {
		split[i] = base
		if i < rem {
			split[i]++
		}
	}
	return split
}

// OptimalPasses returns the pass count the §3.4.2 experiments identify
// as best for clustering on B bits: at most log2(TLB entries) bits per
// pass (6 on the Origin2000: one pass up to 6 bits, two up to 12,
// three up to 18, ...).
func OptimalPasses(bits int, m memsim.Machine) int {
	if bits <= 0 {
		return 1
	}
	maxPerPass := 0
	for e := m.TLB.Entries; e > 1; e >>= 1 {
		maxPerPass++
	}
	if maxPerPass < 1 {
		maxPerPass = 1
	}
	return (bits + maxPerPass - 1) / maxPerPass
}

// RadixCluster clusters in on the lower bits of the hash of Tail, in
// the given number of passes (Figure 6), distributing the bits evenly
// across passes (§3.4.2: performance depends strongly on an even
// distribution). The input BAT is not modified. With bits == 0 the
// input is returned as a single cluster without copying. A nil hash
// means identity (the experimental setup: unique uniform integer
// keys).
//
// In instrumented mode each pass charges wc CPU per tuple and mirrors
// one histogram read plus one read and one write per tuple into sim;
// it returns memsim.ErrBudget (wrapped) if the sim's access budget is
// exhausted.
func RadixCluster(sim *memsim.Sim, in *bat.Pairs, bits, passes int, h hashtab.Hash) (*Clustered, error) {
	return RadixClusterOpts(sim, in, bits, passes, h, Serial())
}

// RadixClusterSplit clusters with an explicit per-pass bit schedule
// (pass p subdivides on split[p] bits, leftmost first). It exists for
// the §3.4.2 bit-distribution ablation; RadixCluster's even split is
// the recommended schedule.
func RadixClusterSplit(sim *memsim.Sim, in *bat.Pairs, split []int, h hashtab.Hash) (*Clustered, error) {
	bits, err := checkSplit(split)
	if err != nil {
		return nil, err
	}
	if h == nil {
		h = hashtab.Identity
	}
	n := in.Len()
	wc := 0.0
	if sim != nil {
		wc = sim.Machine().Cost.Wc
		in.Bind(sim)
	}

	// Ping-pong between two scratch BATs; the input is never written.
	bufA := bat.NewPairs(n)
	var bufB *bat.Pairs
	if len(split) > 1 {
		bufB = bat.NewPairs(n)
	}
	if sim != nil {
		bufA.Bind(sim)
		if bufB != nil {
			bufB.Bind(sim)
		}
	}

	src, dst := in, bufA
	regions := []int{0, n}
	bitsDone := 0
	for p, bp := range split {
		shift := uint(bits - bitsDone - bp) // cluster on bits [shift, shift+bp)
		hp := 1 << bp
		mask := uint32(hp - 1)
		newRegions := make([]int, 0, (len(regions)-1)*hp+1)
		cursors := make([]int, hp)
		bounds := make([]int, hp)

		for r := 0; r+1 < len(regions); r++ {
			lo, hi := regions[r], regions[r+1]
			if sim == nil {
				// Native path: the shared region kernel, the same one
				// the parallel engine fans out (parallel.go).
				clusterRegionSerial(src, dst, lo, hi, shift, mask, hp, h, cursors, bounds)
				newRegions = append(newRegions, bounds...)
				continue
			}
			for i := range cursors {
				cursors[i] = 0
			}
			// Histogram: one sequential read per tuple.
			for i := lo; i < hi; i++ {
				sim.Read(src.Addr(i), bat.PairSize)
				d := (h(src.BUNs[i].Tail) >> shift) & mask
				cursors[d]++
			}
			// Prefix sum to per-cluster write cursors; record boundaries.
			pos := lo
			for d := 0; d < hp; d++ {
				newRegions = append(newRegions, pos)
				c := cursors[d]
				cursors[d] = pos
				pos += c
			}
			// Scatter: the randomly-written H_p regions of Figure 5/6.
			for i := lo; i < hi; i++ {
				bun := src.BUNs[i]
				d := (h(bun.Tail) >> shift) & mask
				sim.Read(src.Addr(i), bat.PairSize)
				sim.Write(dst.Addr(cursors[d]), bat.PairSize)
				dst.BUNs[cursors[d]] = bun
				cursors[d]++
			}
		}
		newRegions = append(newRegions, n)
		regions = newRegions
		if sim != nil {
			sim.AddCPU(n, wc)
			if sim.Exhausted() {
				return nil, fmt.Errorf("core: radix-cluster pass %d: %w", p+1, memsim.ErrBudget)
			}
		}
		bitsDone += bp
		switch {
		case p == len(split)-1:
			src = dst // final result
		case dst == bufA:
			src, dst = bufA, bufB
		default:
			src, dst = bufB, bufA
		}
	}
	return &Clustered{Pairs: src, Bits: bits, Offsets: regions, hash: h}, nil
}

// radixOf returns the cluster index of a key under hash h and B bits.
func radixOf(h hashtab.Hash, key uint32, bits int) uint32 {
	return h(key) & (uint32(1)<<bits - 1)
}
