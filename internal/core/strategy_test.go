package core

import (
	"strings"
	"testing"

	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

func TestStrategyBitsOrigin(t *testing.T) {
	m := memsim.Origin2000()
	// §3.4.4 formulas at C = 8M:
	//   phash L2 : 8M·12/4MB   = 24  → B = 5 (ceil log2 24 = 5)
	//   phash TLB: 8M·12/1MB   = 96  → B = 7
	//   phash L1 : 8M·12/32KB  = 3072→ B = 12
	//   radix 8  : 8M/8        = 1M  → B = 20
	const c = 8 << 20
	cases := map[Strategy]int{
		PhashL2:  5,
		PhashTLB: 7,
		PhashL1:  12,
		Radix8:   20,
		RadixMin: 21,
		Phash256: 15,
	}
	for s, want := range cases {
		if got := StrategyBits(s, c, m); got != want {
			t.Errorf("%v bits at 8M = %d, want %d", s, got, want)
		}
	}
	// Tiny relations need no clustering at all.
	if got := StrategyBits(PhashL2, 100, m); got != 0 {
		t.Errorf("phash L2 bits for 100 tuples = %d, want 0", got)
	}
	if StrategyBits(SimpleHash, c, m) != 0 || StrategyBits(SortMerge, c, m) != 0 {
		t.Error("baseline strategies must use 0 bits")
	}
	if StrategyBits(PhashL1, 0, m) != 0 {
		t.Error("zero cardinality must give 0 bits")
	}
}

func TestStrategyOrderingMonotone(t *testing.T) {
	// Finer target granularity ⇒ at least as many bits.
	m := memsim.Origin2000()
	for _, c := range []int{1 << 10, 1 << 16, 1 << 20, 1 << 23} {
		l2 := StrategyBits(PhashL2, c, m)
		tlb := StrategyBits(PhashTLB, c, m)
		l1 := StrategyBits(PhashL1, c, m)
		r8 := StrategyBits(Radix8, c, m)
		if !(l2 <= tlb && tlb <= l1 && l1 <= r8) {
			t.Errorf("C=%d: bits not monotone: L2=%d TLB=%d L1=%d radix8=%d", c, l2, tlb, l1, r8)
		}
	}
}

func TestNewPlanPasses(t *testing.T) {
	m := memsim.Origin2000()
	p := NewPlan(Radix8, 8<<20, m) // B=20 → 4 passes on 6-bit TLB
	if p.Bits != 20 || p.Passes != 4 {
		t.Errorf("radix8 plan at 8M = %+v", p)
	}
	p = NewPlan(PhashL2, 8<<20, m) // B=5 → 1 pass
	if p.Passes != 1 {
		t.Errorf("phash L2 plan = %+v", p)
	}
	p = NewPlan(SimpleHash, 8<<20, m)
	if p.Bits != 0 || p.Passes != 1 {
		t.Errorf("simple hash plan = %+v", p)
	}
}

func TestPlanString(t *testing.T) {
	m := memsim.Origin2000()
	if s := NewPlan(SimpleHash, 1000, m).String(); s != "simple hash" {
		t.Errorf("plan string = %q", s)
	}
	if s := NewPlan(Radix8, 8<<20, m).String(); !strings.Contains(s, "B=20") {
		t.Errorf("plan string = %q", s)
	}
	for _, s := range append(Strategies(), Auto) {
		if strings.HasPrefix(s.String(), "strategy(") {
			t.Errorf("missing name for %d", int(s))
		}
	}
	if Strategy(99).String() != "strategy(99)" {
		t.Error("unknown strategy string")
	}
}

func TestExecuteAllStrategies(t *testing.T) {
	m := memsim.Origin2000()
	l, r := workload.JoinInputs(4096, 9)
	want := refJoin(l, r)
	for _, s := range Strategies() {
		plan := NewPlan(s, l.Len(), m)
		res, err := Execute(nil, l, r, plan, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got := normalize(res); !equalJoin(got, want) {
			t.Errorf("%v: wrong join result", s)
		}
	}
	if _, err := Execute(nil, l, r, Plan{Strategy: Strategy(99)}, nil); err == nil {
		t.Error("unknown strategy executed")
	}
}

func TestExecuteAutoPlan(t *testing.T) {
	m := memsim.Origin2000()
	l, r := workload.JoinInputs(2048, 10)
	plan := NewPlan(Auto, l.Len(), m)
	if plan.Strategy == Auto {
		t.Fatal("Auto did not resolve to a concrete strategy")
	}
	res, err := Execute(nil, l, r, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2048 {
		t.Errorf("auto join returned %d pairs", res.Len())
	}
}

func TestPlanAutoAvoidsBaselinesAtScale(t *testing.T) {
	// §4: cache-conscious algorithms beat the random-access baselines;
	// the optimizer must never pick simple hash for a relation far
	// beyond cache capacity.
	m := memsim.Origin2000()
	plan := PlanAuto(8<<20, m)
	if plan.Strategy == SimpleHash || plan.Strategy == SortMerge {
		t.Errorf("auto picked %v at 8M tuples", plan.Strategy)
	}
	if plan.Bits == 0 {
		t.Error("auto picked no clustering at 8M tuples")
	}
}

func TestPredictPlanPositive(t *testing.T) {
	m := memsim.Origin2000()
	for _, s := range Strategies() {
		p := NewPlan(s, 1<<20, m)
		b := PredictPlan(p, 1<<20, m)
		if b.Total(m) <= 0 {
			t.Errorf("%v: non-positive prediction", s)
		}
	}
}

func TestExecuteTinyCardinalities(t *testing.T) {
	// At tiny cardinalities every strategy collapses to its B=0
	// degenerate (simple hash or nested loop) and must stay correct.
	m := memsim.Origin2000()
	for _, n := range []int{1, 2, 7, 16} {
		l, r := workload.JoinInputs(n, uint64(n))
		want := refJoin(l, r)
		for _, s := range Strategies() {
			plan := NewPlan(s, n, m)
			res, err := Execute(nil, l, r, plan, nil)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, s, err)
			}
			if got := normalize(res); !equalJoin(got, want) {
				t.Errorf("n=%d %v: wrong result", n, s)
			}
		}
	}
}

func TestStrategyBitsAtMaxClamp(t *testing.T) {
	// Enormous cardinalities must clamp to MaxBits, not overflow.
	m := memsim.Origin2000()
	if got := StrategyBits(RadixMin, 1<<30, m); got != MaxBits {
		t.Errorf("bits at 2^30 = %d, want clamp at %d", got, MaxBits)
	}
}

func TestUsesRadixJoin(t *testing.T) {
	if !Radix8.UsesRadixJoin() || !RadixMin.UsesRadixJoin() {
		t.Error("radix strategies misclassified")
	}
	if PhashL1.UsesRadixJoin() || SimpleHash.UsesRadixJoin() {
		t.Error("hash strategies misclassified")
	}
}
