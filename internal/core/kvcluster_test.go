package core

import (
	"reflect"
	"testing"

	"monetlite/internal/workload"
)

// genKV builds a (key, value) feed with the given key generator.
func genKV(n int, key func(rng *workload.RNG, i int) int64, seed uint64) ([]int64, []float64) {
	rng := workload.NewRNG(seed)
	keys := make([]int64, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = key(rng, i)
		vals[i] = float64(rng.Intn(1 << 20))
	}
	return keys, vals
}

// kvInputs is the shared adversarial input set: uniform, skewed,
// negative, sequential, single-key, tiny, empty.
func kvInputs(n int) map[string]func(rng *workload.RNG, i int) int64 {
	return map[string]func(rng *workload.RNG, i int) int64{
		"uniform":    func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(n + 1)) },
		"skewed":     func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(rng.Intn(16) + 1)) },
		"negative":   func(rng *workload.RNG, i int) int64 { return int64(rng.Intn(2*n+1)) - int64(n) },
		"sequential": func(_ *workload.RNG, i int) int64 { return int64(i) },
		"single":     func(*workload.RNG, int) int64 { return -7 },
		"wide":       func(rng *workload.RNG, i int) int64 { return (int64(rng.Intn(1<<30)) << 33) - int64(rng.Intn(1<<31)) },
	}
}

// checkClustered checks the clustering invariants: offsets cover the
// arrays, every tuple lies in the partition its low key bits select,
// and the clustering is stable (tuples keep input order within a
// partition).
func checkClustered(t *testing.T, inK []int64, inV []float64, ck []int64, cv []float64, offs []int, bits int) {
	t.Helper()
	if len(offs) != (1<<bits)+1 {
		t.Fatalf("%d offsets for %d bits", len(offs), bits)
	}
	if offs[0] != 0 || offs[len(offs)-1] != len(inK) {
		t.Fatalf("offsets %v do not cover %d tuples", offs[:min(8, len(offs))], len(inK))
	}
	mask := uint64(1)<<bits - 1
	for p := 0; p+1 < len(offs); p++ {
		if offs[p] > offs[p+1] {
			t.Fatalf("partition %d has negative length", p)
		}
		for i := offs[p]; i < offs[p+1]; i++ {
			if got := uint64(ck[i]) & mask; got != uint64(p) {
				t.Fatalf("tuple %d: key %d has radix %d, stored in partition %d", i, ck[i], got, p)
			}
		}
	}
	// Stability: per partition, the (key, value) tuples must appear in
	// input order. Rebuild the expected order with a stable filter.
	for p := 0; p+1 < len(offs); p++ {
		at := offs[p]
		for i := range inK {
			if uint64(inK[i])&mask != uint64(p) {
				continue
			}
			if ck[at] != inK[i] || cv[at] != inV[i] {
				t.Fatalf("partition %d not stable at %d: got (%d, %v), want (%d, %v)",
					p, at, ck[at], cv[at], inK[i], inV[i])
			}
			at++
		}
		if at != offs[p+1] {
			t.Fatalf("partition %d has %d tuples, offsets say %d", p, at-offs[p], offs[p+1]-offs[p])
		}
	}
}

func TestRadixClusterKVInvariants(t *testing.T) {
	for name, gen := range kvInputs(5000) {
		for _, n := range []int{0, 1, 5, 5000} {
			keys, vals := genKV(n, gen, 11)
			for _, cfg := range []struct{ bits, passes int }{{1, 1}, {4, 1}, {4, 2}, {7, 3}} {
				ck, cv, offs, err := RadixClusterKV(keys, vals, cfg.bits, cfg.passes, Serial())
				if err != nil {
					t.Fatalf("%s n=%d B=%d P=%d: %v", name, n, cfg.bits, cfg.passes, err)
				}
				checkClustered(t, keys, vals, ck, cv, offs, cfg.bits)
			}
		}
	}
}

// TestRadixClusterKVParallelMatchesSerial: the parallel path must be
// byte-identical to serial at every worker count, including the
// per-worker-histogram big-region path (forced by large n) and the
// region fan-out of later passes.
func TestRadixClusterKVParallelMatchesSerial(t *testing.T) {
	n := 1 << 16
	if testing.Short() {
		n = 1 << 14
	}
	for name, gen := range kvInputs(n) {
		keys, vals := genKV(n, gen, 23)
		for _, cfg := range []struct{ bits, passes int }{{6, 1}, {10, 2}, {13, 3}} {
			sk, sv, so, err := RadixClusterKV(keys, vals, cfg.bits, cfg.passes, Serial())
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				pk, pv, po, err := RadixClusterKV(keys, vals, cfg.bits, cfg.passes, Options{Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sk, pk) || !reflect.DeepEqual(sv, pv) || !reflect.DeepEqual(so, po) {
					t.Fatalf("%s B=%d P=%d workers=%d: parallel clustering differs from serial",
						name, cfg.bits, cfg.passes, workers)
				}
			}
		}
	}
}

func TestRadixClusterKVZeroBitsIsZeroCopy(t *testing.T) {
	keys, vals := genKV(64, func(rng *workload.RNG, i int) int64 { return int64(i) }, 3)
	ck, cv, offs, err := RadixClusterKV(keys, vals, 0, 1, Serial())
	if err != nil {
		t.Fatal(err)
	}
	if &ck[0] != &keys[0] || &cv[0] != &vals[0] {
		t.Error("bits=0 copied the input")
	}
	if !reflect.DeepEqual(offs, []int{0, 64}) {
		t.Errorf("bits=0 offsets = %v", offs)
	}
}

func TestRadixClusterKVErrors(t *testing.T) {
	keys, vals := genKV(8, func(rng *workload.RNG, i int) int64 { return int64(i) }, 4)
	if _, _, _, err := RadixClusterKV(keys, vals, -1, 1, Serial()); err == nil {
		t.Error("negative bits accepted")
	}
	if _, _, _, err := RadixClusterKV(keys, vals, MaxBits+1, 1, Serial()); err == nil {
		t.Error("oversized bits accepted")
	}
	if _, _, _, err := RadixClusterKV(keys, vals, 3, 0, Serial()); err == nil {
		t.Error("zero passes accepted")
	}
	if _, _, _, err := RadixClusterKV(keys, vals, 3, 4, Serial()); err == nil {
		t.Error("more passes than bits accepted")
	}
	if _, _, _, err := RadixClusterKV(keys, vals[:4], 3, 1, Serial()); err == nil {
		t.Error("length mismatch accepted")
	}
}
