// Radix-cluster kernel for (key, value) pairs: the §3.3 multi-pass
// counting sort applied to the aggregation feed — an int64 group-key
// column and its float64 measure column — instead of 8-byte BUNs. The
// engine's radix-partitioned GroupAggregate clusters its feed with
// this kernel so every partition's group table stays cache-resident,
// the same remedy the paper applies to the join's inner relation.
package core

import "fmt"

// RadixClusterKV radix-clusters the parallel keys/vals arrays on the
// low `bits` bits of the key into 2^bits partitions, in `passes`
// counting-sort passes with an even bit split (§3.4.2). The inputs are
// never modified; the returned arrays are clustered copies (bits == 0
// returns the inputs unclustered, zero-copy) and offsets delimit
// partition p at [offsets[p], offsets[p+1]).
//
// Clustering is stable — tuples keep their input order within each
// partition — and the parallel path (per-worker histogram → prefix sum
// → scatter into disjoint cursor ranges, exactly the scheme of
// RadixClusterSplitOpts) produces output byte-identical to serial for
// any Parallelism. Keys partition by their low bits directly (two's
// complement, so negative keys cluster fine); no hash is applied —
// partitions own disjoint key sets by construction, which is what lets
// the aggregation concatenate per-partition results without a merge.
//
//monet:kernel
func RadixClusterKV(keys []int64, vals []float64, bits, passes int, opt Options) ([]int64, []float64, []int, error) {
	if err := CheckBits(bits); err != nil {
		return nil, nil, nil, err
	}
	if len(keys) != len(vals) {
		//monet:allow hotalloc cold argument-validation error path
		return nil, nil, nil, fmt.Errorf("core: key column length %d != value length %d", len(keys), len(vals))
	}
	if bits == 0 {
		return keys, vals, []int{0, len(keys)}, nil
	}
	if passes < 1 || passes > bits {
		//monet:allow hotalloc cold argument-validation error path
		return nil, nil, nil, fmt.Errorf("core: %d passes invalid for %d bits", passes, bits)
	}
	split := EvenBitSplit(bits, passes)
	n := len(keys)
	workers := clampWorkers(opt.workers(), n)

	// Ping-pong between two scratch pairs; the input is never written.
	kA, vA := make([]int64, n), make([]float64, n)
	var kB []int64
	var vB []float64
	if passes > 1 {
		kB, vB = make([]int64, n), make([]float64, n)
	}

	// A region larger than one worker's share of a pass splits across
	// the whole pool; the rest fan out one region per worker (the first
	// pass is always one big region).
	bigRegion := n / workers
	if bigRegion < minParallelRegion {
		bigRegion = minParallelRegion
	}

	kSrc, vSrc := keys, vals
	kDst, vDst := kA, vA
	dstIsA := true
	regions := []int{0, n}
	bitsDone := 0
	for p, bp := range split {
		shift := uint(bits - bitsDone - bp) // cluster on bits [shift, shift+bp)
		hp := 1 << bp
		mask := uint64(hp - 1)
		nr := len(regions) - 1
		//monet:allow hotalloc one region table per pass (<= 3 passes), not per tuple
		newRegions := make([]int, nr*hp+1)
		newRegions[nr*hp] = n
		if workers <= 1 {
			//monet:allow hotalloc one cursor array per pass (<= 3 passes), not per tuple
			cursors := make([]int, hp)
			for r := 0; r < nr; r++ {
				clusterKVRegion(kSrc, vSrc, kDst, vDst, regions[r], regions[r+1],
					shift, mask, hp, cursors, newRegions[r*hp:(r+1)*hp])
			}
		} else {
			var small []int
			for r := 0; r < nr; r++ {
				if regions[r+1]-regions[r] > bigRegion {
					clusterKVRegionParallel(kSrc, vSrc, kDst, vDst, regions[r], regions[r+1],
						shift, mask, hp, workers, newRegions[r*hp:(r+1)*hp])
				} else {
					//monet:allow hotalloc small-region list grows once per pass, bounded by region count
					small = append(small, r)
				}
			}
			kvRegionFanOut(kSrc, vSrc, kDst, vDst, regions, small, shift, mask, hp, workers, newRegions)
		}
		regions = newRegions
		bitsDone += bp
		switch {
		case p == len(split)-1:
			kSrc, vSrc = kDst, vDst // final result
		case dstIsA:
			kSrc, vSrc, kDst, vDst = kA, vA, kB, vB
		default:
			kSrc, vSrc, kDst, vDst = kB, vB, kA, vA
		}
		dstIsA = !dstIsA
	}
	return kSrc, vSrc, regions, nil
}

// clusterKVRegion clusters region [lo, hi) of one pass serially:
// histogram, prefix sum (recording the hp partition boundaries in
// bounds), stable scatter. cursors is caller-owned scratch of hp ints.
//
//monet:kernel
func clusterKVRegion(kSrc []int64, vSrc []float64, kDst []int64, vDst []float64,
	lo, hi int, shift uint, mask uint64, hp int, cursors, bounds []int) {
	for d := range cursors[:hp] {
		cursors[d] = 0
	}
	for i := lo; i < hi; i++ {
		cursors[(uint64(kSrc[i])>>shift)&mask]++
	}
	pos := lo
	for d := 0; d < hp; d++ {
		bounds[d] = pos
		c := cursors[d]
		cursors[d] = pos
		pos += c
	}
	for i := lo; i < hi; i++ {
		d := (uint64(kSrc[i]) >> shift) & mask
		at := cursors[d]
		kDst[at] = kSrc[i]
		vDst[at] = vSrc[i]
		cursors[d] = at + 1
	}
}

// kvRegionFanOut runs the listed independent regions of a pass on a
// worker pool, one region per worker at a time; region r writes its hp
// boundaries into newRegions[r*hp : (r+1)*hp].
//
//monet:kernel
func kvRegionFanOut(kSrc []int64, vSrc []float64, kDst []int64, vDst []float64,
	regions, regionIdx []int, shift uint, mask uint64, hp, workers int, newRegions []int) {
	if workers > len(regionIdx) {
		workers = len(regionIdx)
	}
	scratch := make([][]int, workers)
	//monet:allow kernalloc per-worker fan-out: one launch and one closure per worker, amortized over the region batch
	forEachIndex(workers, len(regionIdx), func(w, i int) {
		cursors := scratch[w]
		if cursors == nil {
			cursors = make([]int, hp)
			scratch[w] = cursors
		}
		r := regionIdx[i]
		clusterKVRegion(kSrc, vSrc, kDst, vDst, regions[r], regions[r+1],
			shift, mask, hp, cursors, newRegions[r*hp:(r+1)*hp])
	})
}

// clusterKVRegionParallel clusters one region with chunked per-worker
// histograms, a serial prefix sum over (digit, worker), and a parallel
// scatter: worker w's cursor for digit d starts where the digit-d
// tuples of workers < w end, so every tuple lands exactly where the
// serial scatter would put it (stability preserved).
//
//monet:kernel
func clusterKVRegionParallel(kSrc []int64, vSrc []float64, kDst []int64, vDst []float64,
	lo, hi int, shift uint, mask uint64, hp, workers int, bounds []int) {
	n := hi - lo
	workers = clampWorkers(workers, n)
	//monet:allow kernalloc bounds helper allocated once per region, not per tuple
	chunk := func(w int) (int, int) {
		return lo + w*n/workers, lo + (w+1)*n/workers
	}
	counts := make([][]int, workers)
	//monet:allow kernalloc per-worker fan-out: one launch and one closure per worker, amortized over the region
	forEachIndex(workers, workers, func(_, w int) {
		c := make([]int, hp)
		clo, chi := chunk(w)
		for i := clo; i < chi; i++ {
			c[(uint64(kSrc[i])>>shift)&mask]++
		}
		counts[w] = c
	})
	pos := lo
	for d := 0; d < hp; d++ {
		bounds[d] = pos
		for w := 0; w < workers; w++ {
			c := counts[w][d]
			counts[w][d] = pos
			pos += c
		}
	}
	//monet:allow kernalloc per-worker fan-out: one launch and one closure per worker, amortized over the region
	forEachIndex(workers, workers, func(_, w int) {
		cur := counts[w]
		clo, chi := chunk(w)
		for i := clo; i < chi; i++ {
			d := (uint64(kSrc[i]) >> shift) & mask
			at := cur[d]
			kDst[at] = kSrc[i]
			vDst[at] = vSrc[i]
			cur[d] = at + 1
		}
	})
}
