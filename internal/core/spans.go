package core

import (
	"cmp"
	"slices"
	"time"
)

// Execution-span capture for the worker pool: when a profiling run
// wants to see how morsels were scheduled across workers (utilization,
// stragglers, gaps), it passes a SpanRecorder into ForEachSpan and
// gets back one Span per work unit. A nil recorder is the contract for
// "profiling disabled": ForEachSpan degrades to plain ForEach with no
// extra work and no allocations, so the hot path pays only a nil
// check.
//
// Recording never perturbs determinism — spans are observations, the
// decomposition and merge orders they observe are unchanged.

// Span is one unit of work executed by one worker: a half-open time
// interval relative to the recorder's epoch.
type Span struct {
	// Tag identifies which fan-out (operator, phase) the unit belongs
	// to; the recorder's owner assigns tags serially between fan-outs.
	Tag int32
	// Worker is the pool slot that ran the unit.
	Worker int32
	// Unit is the work-unit index within the fan-out (morsel or task).
	Unit int32
	// Start and Dur are nanoseconds since the recorder's epoch.
	Start int64
	Dur   int64
}

// SpanRecorder captures spans from parallel fan-outs. Each worker
// appends to its own slice — no locking — which is safe because
// worker slots are exclusive within a fan-out and fan-outs are
// separated by the pool's goroutine-join barrier. SetTag must only be
// called between fan-outs (serially), never while one is running.
type SpanRecorder struct {
	epoch     time.Time
	tag       int32
	perWorker [][]Span
}

// NewSpanRecorder returns a recorder for a pool of the given worker
// count, with its epoch set to now.
func NewSpanRecorder(workers int) *SpanRecorder {
	if workers < 1 {
		workers = 1
	}
	return &SpanRecorder{epoch: time.Now(), perWorker: make([][]Span, workers)}
}

// Epoch returns the recorder's zero time.
func (r *SpanRecorder) Epoch() time.Time { return r.epoch }

// Workers returns the recorder's worker-slot count.
func (r *SpanRecorder) Workers() int { return len(r.perWorker) }

// SetTag labels all subsequently recorded spans. Serial use only:
// call between fan-outs, never during one.
func (r *SpanRecorder) SetTag(tag int) { r.tag = int32(tag) }

// Clock returns nanoseconds since the epoch.
func (r *SpanRecorder) Clock() int64 { return time.Since(r.epoch).Nanoseconds() }

// Record appends a span for worker w covering [start, now) for work
// unit `unit` under the current tag. Safe to call concurrently from
// distinct workers.
func (r *SpanRecorder) Record(w, unit int, start int64) {
	if w < 0 || w >= len(r.perWorker) {
		return // defensive: a fan-out wider than the recorded pool
	}
	r.perWorker[w] = append(r.perWorker[w], Span{
		Tag:    r.tag,
		Worker: int32(w),
		Unit:   int32(unit),
		Start:  start,
		Dur:    r.Clock() - start,
	})
}

// Spans merges every worker's spans into one slice ordered by
// (Start, Worker, Unit) — deterministic given the same recorded set.
// Call only between fan-outs.
func (r *SpanRecorder) Spans() []Span {
	total := 0
	for _, s := range r.perWorker {
		total += len(s)
	}
	out := make([]Span, 0, total)
	for _, s := range r.perWorker {
		out = append(out, s...)
	}
	slices.SortFunc(out, func(a, b Span) int {
		if c := cmp.Compare(a.Start, b.Start); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Worker, b.Worker); c != 0 {
			return c
		}
		return cmp.Compare(a.Unit, b.Unit)
	})
	return out
}

// ForEachSpan is ForEach with optional span capture: a nil recorder
// runs the plain fan-out (the disabled fast path — no closure, no
// allocation); otherwise every work unit is timed and recorded under
// the recorder's current tag.
func ForEachSpan(workers, n int, rec *SpanRecorder, body func(w, i int)) {
	if rec == nil {
		ForEach(workers, n, body)
		return
	}
	ForEach(workers, n, func(w, i int) {
		start := rec.Clock()
		body(w, i)
		rec.Record(w, i, start)
	})
}
