package core

import (
	"sync/atomic"
	"testing"
)

func TestForEachSpanNilRecorderRunsAll(t *testing.T) {
	var ran atomic.Int64
	ForEachSpan(4, 100, nil, func(_, _ int) { ran.Add(1) })
	if ran.Load() != 100 {
		t.Fatalf("nil-recorder ForEachSpan ran %d units, want 100", ran.Load())
	}
}

func TestSpanRecorderCapturesEveryUnit(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rec := NewSpanRecorder(workers)
		rec.SetTag(7)
		ForEachSpan(workers, 33, rec, func(_, _ int) {})
		rec.SetTag(9)
		ForEachSpan(workers, 5, rec, func(_, _ int) {})
		spans := rec.Spans()
		if len(spans) != 38 {
			t.Fatalf("workers=%d: got %d spans, want 38", workers, len(spans))
		}
		seen := map[int32]map[int32]bool{7: {}, 9: {}}
		for _, s := range spans {
			units, ok := seen[s.Tag]
			if !ok {
				t.Fatalf("workers=%d: unexpected tag %d", workers, s.Tag)
			}
			if units[s.Unit] {
				t.Fatalf("workers=%d: unit %d recorded twice under tag %d", workers, s.Unit, s.Tag)
			}
			units[s.Unit] = true
			if s.Worker < 0 || int(s.Worker) >= workers {
				t.Fatalf("workers=%d: span worker %d out of range", workers, s.Worker)
			}
			if s.Start < 0 || s.Dur < 0 {
				t.Fatalf("workers=%d: negative span time %+v", workers, s)
			}
		}
		if len(seen[7]) != 33 || len(seen[9]) != 5 {
			t.Fatalf("workers=%d: tag units = %d/%d, want 33/5", workers, len(seen[7]), len(seen[9]))
		}
	}
}

func TestSpanRecorderSpansSorted(t *testing.T) {
	rec := NewSpanRecorder(4)
	ForEachSpan(4, 64, rec, func(_, _ int) {})
	spans := rec.Spans()
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Start > b.Start {
			t.Fatalf("spans out of order at %d: %d after %d", i, b.Start, a.Start)
		}
	}
}

func TestSpanRecorderOutOfRangeWorkerIgnored(t *testing.T) {
	rec := NewSpanRecorder(2)
	rec.Record(5, 0, 0) // must not panic or record
	rec.Record(-1, 0, 0)
	if got := len(rec.Spans()); got != 0 {
		t.Fatalf("out-of-range Record captured %d spans, want 0", got)
	}
}
