package core

import (
	"testing"

	"monetlite/internal/memsim"
	"monetlite/internal/sortx"
	"monetlite/internal/workload"
)

// §3.3.1: "If this constant gets down to 1, radix-join degenerates to
// sort/merge-join, with radix-sort employed in the sorting phase."

func TestRadixClusterFullBitsIsRadixSort(t *testing.T) {
	// Clustering on all key bits orders the relation by key — exactly
	// a radix sort (for our dense test domain).
	const n = 1 << 12
	in := workload.DensePairs(n, 3) // values are a permutation of [0, n)
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	cl, err := RadixCluster(nil, in, bits, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sortx.IsSortedByTail(cl.Pairs) {
		t.Error("full-bit radix-cluster did not sort the relation")
	}
	// Each cluster holds exactly one tuple.
	for k := 0; k < cl.Clusters(); k++ {
		if cl.ClusterLen(k) != 1 {
			t.Fatalf("cluster %d has %d tuples, want 1", k, cl.ClusterLen(k))
		}
	}
}

func TestRadixJoinAtClusterSizeOneIsLinear(t *testing.T) {
	// With one tuple per cluster the nested loop vanishes: the join
	// phase reads each tuple O(1) times (a merge), so simulated
	// accesses stay within a small constant of the cardinality.
	const n = 1 << 14
	l, r := workload.JoinInputs(n, 5)
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	lc, err := RadixCluster(nil, l, bits, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RadixCluster(nil, r, bits, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := memsim.MustNew(memsim.Origin2000())
	res, err := RadixJoinClustered(sim, lc, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != n {
		t.Fatalf("result size %d", res.Len())
	}
	perTuple := float64(sim.Stats().Accesses) / float64(n)
	// Join inputs have unique uniform values over the full 32-bit
	// domain, so clusters average ≤ 1 tuple: ~1 read of each side plus
	// the result write ≈ 3–5 accesses per tuple.
	if perTuple > 8 {
		t.Errorf("accesses per tuple = %.1f, want merge-like O(1)", perTuple)
	}
}

func TestRadixJoinQuadraticBelowFineClustering(t *testing.T) {
	// Contrast: at coarse clustering the nested loop dominates.
	const n = 1 << 10
	l, r := workload.JoinInputs(n, 6)
	lc, _ := RadixCluster(nil, l, 2, 1, nil)
	rc, _ := RadixCluster(nil, r, 2, 1, nil)
	sim := memsim.MustNew(memsim.Origin2000())
	if _, err := RadixJoinClustered(sim, lc, rc); err != nil {
		t.Fatal(err)
	}
	perTuple := float64(sim.Stats().Accesses) / float64(n)
	// Cluster size = n/4 = 256: the inner loop scans ~256 tuples per
	// outer tuple.
	if perTuple < 100 {
		t.Errorf("accesses per tuple = %.1f, expected nested-loop blowup", perTuple)
	}
}

func TestOptimalClusterSizesMatchPaper(t *testing.T) {
	// §3.4.4: radix-join is tuned like a bucket chain, C/H ≈ 8 tuples
	// ("radix 8"), with ≈4 slightly better ("radix min"); phash bottoms
	// out around 200 tuples ("phash min"). Verify the planner's cluster
	// sizes land on those design points.
	m := memsim.Origin2000()
	const c = 1 << 22
	for _, tc := range []struct {
		s      Strategy
		loSize float64
		hiSize float64
	}{
		{Radix8, 4, 8},
		{RadixMin, 2, 4},
		{PhashMin, 100, 200},
		{Phash256, 128, 256},
	} {
		p := NewPlan(tc.s, c, m)
		size := float64(c) / float64(uint64(1)<<p.Bits)
		if size < tc.loSize || size > tc.hiSize {
			t.Errorf("%v: cluster size %.1f tuples, want in [%v, %v]", tc.s, size, tc.loSize, tc.hiSize)
		}
	}
}

func TestMultiPassReducesSimTimeBeyondTLB(t *testing.T) {
	// Figure 9's headline: beyond 6 bits, two passes beat one in
	// *time*, not just TLB misses.
	m := memsim.Origin2000()
	const c = 1 << 19
	run := func(bits, passes int) float64 {
		sim := memsim.MustNew(m)
		in := workload.UniquePairs(c, 8)
		in.Bind(sim)
		if _, err := RadixCluster(sim, in, bits, passes, nil); err != nil {
			t.Fatal(err)
		}
		return sim.Stats().ElapsedNanos()
	}
	if one, two := run(12, 1), run(12, 2); two >= one {
		t.Errorf("B=12: two passes (%.1fms) not faster than one (%.1fms)", two/1e6, one/1e6)
	}
	if one, two := run(4, 1), run(4, 2); one >= two {
		t.Errorf("B=4: one pass (%.1fms) not faster than two (%.1fms)", one/1e6, two/1e6)
	}
}
