package core

import (
	"sort"
	"testing"
	"testing/quick"

	"monetlite/internal/bat"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

// refJoin computes the exact equi-join result with a map, as the
// oracle all algorithms are checked against.
func refJoin(l, r *bat.Pairs) [][2]bat.Oid {
	byVal := make(map[uint32][]bat.Oid, r.Len())
	for _, b := range r.BUNs {
		byVal[b.Tail] = append(byVal[b.Tail], b.Head)
	}
	var out [][2]bat.Oid
	for _, b := range l.BUNs {
		for _, rh := range byVal[b.Tail] {
			out = append(out, [2]bat.Oid{b.Head, rh})
		}
	}
	sortPairs2(out)
	return out
}

func sortPairs2(xs [][2]bat.Oid) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i][0] != xs[j][0] {
			return xs[i][0] < xs[j][0]
		}
		return xs[i][1] < xs[j][1]
	})
}

func normalize(res *JoinIndex) [][2]bat.Oid {
	out := make([][2]bat.Oid, res.Len())
	for i, b := range res.BUNs {
		out[i] = [2]bat.Oid{b.Head, bat.Oid(b.Tail)}
	}
	sortPairs2(out)
	return out
}

func equalJoin(a, b [][2]bat.Oid) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllJoinsAgreeWithReference(t *testing.T) {
	l, r := workload.JoinInputs(3000, 42)
	want := refJoin(l, r)
	algos := []struct {
		name string
		run  func() (*JoinIndex, error)
	}{
		{"simple hash", func() (*JoinIndex, error) { return SimpleHashJoin(nil, l, r, nil) }},
		{"sort-merge", func() (*JoinIndex, error) { return SortMergeJoin(nil, l, r) }},
		{"nested loop", func() (*JoinIndex, error) { return NestedLoopJoin(nil, l, r) }},
		{"phash B=4 P=1", func() (*JoinIndex, error) { return PartitionedHashJoin(nil, l, r, 4, 1, nil) }},
		{"phash B=8 P=2", func() (*JoinIndex, error) { return PartitionedHashJoin(nil, l, r, 8, 2, nil) }},
		{"radix B=9 P=2", func() (*JoinIndex, error) { return RadixJoin(nil, l, r, 9, 2, nil) }},
		{"radix B=12 P=3", func() (*JoinIndex, error) { return RadixJoin(nil, l, r, 12, 3, nil) }},
	}
	for _, a := range algos {
		res, err := a.run()
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if got := normalize(res); !equalJoin(got, want) {
			t.Errorf("%s: result differs from reference (%d vs %d pairs)", a.name, len(got), len(want))
		}
	}
}

func TestJoinWithDuplicatesAndMisses(t *testing.T) {
	// Duplicate keys on both sides plus keys that never match.
	l := bat.FromPairs([]bat.Pair{
		{Head: 0, Tail: 5}, {Head: 1, Tail: 5}, {Head: 2, Tail: 7}, {Head: 3, Tail: 99},
	})
	r := bat.FromPairs([]bat.Pair{
		{Head: 10, Tail: 5}, {Head: 11, Tail: 5}, {Head: 12, Tail: 7}, {Head: 13, Tail: 42},
	})
	want := refJoin(l, r) // 2×2 on key 5 + 1 on key 7 = 5 pairs
	if len(want) != 5 {
		t.Fatalf("oracle computed %d pairs", len(want))
	}
	runs := map[string]func() (*JoinIndex, error){
		"simple hash": func() (*JoinIndex, error) { return SimpleHashJoin(nil, l, r, nil) },
		"sort-merge":  func() (*JoinIndex, error) { return SortMergeJoin(nil, l, r) },
		"phash":       func() (*JoinIndex, error) { return PartitionedHashJoin(nil, l, r, 2, 1, nil) },
		"radix":       func() (*JoinIndex, error) { return RadixJoin(nil, l, r, 2, 1, nil) },
	}
	for name, run := range runs {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := normalize(res); !equalJoin(got, want) {
			t.Errorf("%s: wrong result %v, want %v", name, got, want)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	empty := bat.NewPairs(0)
	some := bat.FromPairs([]bat.Pair{{Head: 0, Tail: 1}})
	for name, run := range map[string]func(l, r *bat.Pairs) (*JoinIndex, error){
		"simple hash": func(l, r *bat.Pairs) (*JoinIndex, error) { return SimpleHashJoin(nil, l, r, nil) },
		"sort-merge":  func(l, r *bat.Pairs) (*JoinIndex, error) { return SortMergeJoin(nil, l, r) },
		"phash":       func(l, r *bat.Pairs) (*JoinIndex, error) { return PartitionedHashJoin(nil, l, r, 2, 1, nil) },
		"radix":       func(l, r *bat.Pairs) (*JoinIndex, error) { return RadixJoin(nil, l, r, 2, 1, nil) },
	} {
		for _, pair := range [][2]*bat.Pairs{{empty, some}, {some, empty}, {empty, empty}} {
			res, err := run(pair[0], pair[1])
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Len() != 0 {
				t.Errorf("%s: join with empty side returned %d pairs", name, res.Len())
			}
		}
	}
}

func TestJoinClusteredBitMismatch(t *testing.T) {
	l, r := workload.JoinInputs(100, 1)
	lc, _ := RadixCluster(nil, l, 3, 1, nil)
	rc, _ := RadixCluster(nil, r, 4, 1, nil)
	if _, err := PartitionedHashJoinClustered(nil, lc, rc, nil); err == nil {
		t.Error("bit mismatch accepted by phash")
	}
	if _, err := RadixJoinClustered(nil, lc, rc); err == nil {
		t.Error("bit mismatch accepted by radix-join")
	}
}

func TestJoinIndexOrientation(t *testing.T) {
	// Result BUNs must be [left OID, right OID].
	l := bat.FromPairs([]bat.Pair{{Head: 7, Tail: 1}})
	r := bat.FromPairs([]bat.Pair{{Head: 9, Tail: 1}})
	res, err := PartitionedHashJoin(nil, l, r, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.BUNs[0].Head != 7 || res.BUNs[0].Tail != 9 {
		t.Errorf("join index = %+v, want [7,9]", res.BUNs)
	}
}

func TestInstrumentedJoinsProduceStats(t *testing.T) {
	m := memsim.Origin2000()
	l, r := workload.JoinInputs(20000, 5)
	type mk func(sim *memsim.Sim, l, r *bat.Pairs) (*JoinIndex, error)
	algos := map[string]mk{
		"simple": func(s *memsim.Sim, l, r *bat.Pairs) (*JoinIndex, error) { return SimpleHashJoin(s, l, r, nil) },
		"smj":    func(s *memsim.Sim, l, r *bat.Pairs) (*JoinIndex, error) { return SortMergeJoin(s, l, r) },
		"phash": func(s *memsim.Sim, l, r *bat.Pairs) (*JoinIndex, error) {
			return PartitionedHashJoin(s, l, r, 8, 2, nil)
		},
		"radix": func(s *memsim.Sim, l, r *bat.Pairs) (*JoinIndex, error) { return RadixJoin(s, l, r, 12, 2, nil) },
	}
	for name, run := range algos {
		sim := memsim.MustNew(m)
		ll, rr := l.Clone(), r.Clone()
		res, err := run(sim, ll, rr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Len() != 20000 {
			t.Errorf("%s: %d results, want 20000", name, res.Len())
		}
		st := sim.Stats()
		if st.Accesses == 0 || st.L1Misses == 0 || st.ElapsedNanos() <= 0 {
			t.Errorf("%s: implausible stats %v", name, st)
		}
	}
}

func TestPartitionedBeatsSimpleHashWhenOutOfCache(t *testing.T) {
	// The paper's headline: once the inner relation exceeds the caches,
	// partitioned hash-join (clustered, cache-sized) beats the simple
	// hash join on simulated time.
	m := memsim.Origin2000()
	c := 1 << 20 // 8 MB per relation: 2× L2
	if testing.Short() {
		// 4 MB relations: the inner cluster plus its 12-byte/tuple hash
		// table still exceeds L2, so the ordering holds at ~4x less work.
		c = 1 << 19
	}
	l, r := workload.JoinInputs(c, 77)

	simSimple := memsim.MustNew(m)
	if _, err := SimpleHashJoin(simSimple, l.Clone(), r.Clone(), nil); err != nil {
		t.Fatal(err)
	}
	simPhash := memsim.MustNew(m)
	plan := NewPlan(PhashL1, c, m)
	if _, err := PartitionedHashJoin(simPhash, l.Clone(), r.Clone(), plan.Bits, plan.Passes, nil); err != nil {
		t.Fatal(err)
	}
	simple, phash := simSimple.Stats(), simPhash.Stats()
	if phash.ElapsedNanos() >= simple.ElapsedNanos() {
		t.Errorf("phash L1 (%.1fms) not faster than simple hash (%.1fms)",
			phash.ElapsedMillis(), simple.ElapsedMillis())
	}
	if phash.L2Misses >= simple.L2Misses {
		t.Errorf("phash L2 misses %d not below simple hash %d", phash.L2Misses, simple.L2Misses)
	}
}

// Property: partitioned hash-join and radix-join agree with the
// reference join for random inputs with duplicates.
func TestJoinCorrectnessProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, bitsRaw uint8) bool {
		n := int(nRaw)%300 + 1
		bits := int(bitsRaw)%8 + 1
		rng := workload.NewRNG(seed)
		l, r := bat.NewPairs(n), bat.NewPairs(n)
		for i := 0; i < n; i++ {
			// Small domain forces duplicates and non-matches.
			l.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(rng.Intn(64))}
			r.BUNs[i] = bat.Pair{Head: bat.Oid(i), Tail: uint32(rng.Intn(64))}
		}
		want := refJoin(l, r)
		ph, err := PartitionedHashJoin(nil, l, r, bits, 1, nil)
		if err != nil || !equalJoin(normalize(ph), want) {
			return false
		}
		rj, err := RadixJoin(nil, l, r, bits, 1, nil)
		if err != nil || !equalJoin(normalize(rj), want) {
			return false
		}
		sm, err := SortMergeJoin(nil, l, r)
		return err == nil && equalJoin(normalize(sm), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
