// Parallel execution engine: after radix-clustering, each cluster pair
// joins independently (§3.3.1), so the join phase fans out over a
// bounded pool of worker goroutines; the clustering passes themselves
// parallelize with the classic per-worker histogram → prefix-sum →
// scatter scheme. Both produce output byte-identical to the serial
// operators: workers own contiguous cluster (or input) ranges and
// results are concatenated in cluster order.
//
// Parallelism applies only to the native execution path. The
// instrumented path (sim != nil) models a single 1999 CPU and
// memsim.Sim is documented single-goroutine, so every Opts operator
// falls back to the serial implementation when given a simulator.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"monetlite/internal/bat"
	"monetlite/internal/hashtab"
	"monetlite/internal/memsim"
)

// Options tunes the execution engine. The zero value asks for full
// parallelism on the native path and is the recommended default.
type Options struct {
	// Parallelism bounds the worker goroutines an operator may use:
	// 0 or negative means runtime.GOMAXPROCS(0), 1 forces serial
	// execution, and larger values are used as given (clamped to the
	// available work). Instrumented runs (sim != nil) are always
	// serial.
	Parallelism int
}

// Serial returns Options that force the serial execution path.
func Serial() Options { return Options{Parallelism: 1} }

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the effective worker count the options resolve to
// (the bound every morsel-driven operator clamps to its morsel count).
func (o Options) Workers() int { return o.workers() }

// MorselRows is the number of rows per morsel: the unit in which the
// morsel-driven operators (select, refilter, gather, group-aggregate)
// split their inputs before fanning them out over the worker pool. At
// 256K rows a morsel of a narrow column is a few hundred KB — past the
// L2 cache, so per-morsel work amortizes scheduling, yet small enough
// that a handful of morsels load-balance across workers. Morsel
// boundaries (not worker count) determine every merge order, so
// results are byte-identical for any Parallelism setting. A variable
// so tests can shrink it to exercise multi-morsel merging on small
// inputs; treat it as a constant otherwise.
var MorselRows = 256 << 10

// MorselsOf returns the number of fixed-size morsels covering n rows
// (at least 1, so a zero-row input still runs its operator body once).
func MorselsOf(n int) int {
	if n <= MorselRows {
		return 1
	}
	return (n + MorselRows - 1) / MorselRows
}

// MorselBounds returns the row range [lo, hi) of morsel m of an n-row
// input.
func MorselBounds(m, n int) (lo, hi int) {
	lo = m * MorselRows
	hi = lo + MorselRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// WorkersFor resolves the degree of parallelism a morsel-driven
// operator over n rows may use: the configured worker bound clamped by
// the morsel count (never below 1). The single source of the clamp —
// execution and EXPLAIN annotations must agree.
func (o Options) WorkersFor(n int) int {
	w := o.workers()
	if m := MorselsOf(n); w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs body(w, i) for every i in [0, n) with up to `workers`
// goroutines pulling indexes off a shared counter — the worker pool
// behind every morsel-driven operator. body must touch only
// index-i-local and worker-w-local state; with workers <= 1 it runs
// inline, in order.
func ForEach(workers, n int, body func(w, i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	forEachIndex(workers, n, body)
}

// ForMorsels runs body(m, lo, hi) for every morsel of an n-row input
// on up to `workers` goroutines — the one source of the morsel
// decompose/fan-out recipe, so every operator slices its input
// identically and the byte-identical merge orders cannot drift apart.
// body must write only morsel-m-local state (its own output ranges or
// buffers); with workers <= 1 the morsels run inline, in order.
func ForMorsels(workers, n int, body func(m, lo, hi int)) {
	ForEach(workers, MorselsOf(n), func(_, m int) {
		lo, hi := MorselBounds(m, n)
		body(m, lo, hi)
	})
}

// joinTask is one unit of join-phase work: a contiguous range of
// clusters [LoK, HiK) whose results land in Out, so concatenating task
// outputs in task order reproduces the serial emission order exactly.
type joinTask struct {
	loK, hiK int
	lTuples  int // outer tuples in the range, for output pre-sizing
	out      []bat.Pair
}

// joinGrain is the minimum number of outer tuples a join task covers;
// below it, task-pull overhead dominates the join work itself.
const joinGrain = 1 << 12

// minParallelRegion is the smallest clustering region worth splitting
// across workers; smaller regions go to the region fan-out instead.
const minParallelRegion = 1 << 14

// clampWorkers bounds a requested worker count by the available work
// units, so absurd Parallelism values cannot oversize pools or
// scratch (Options documents large values as clamped).
func clampWorkers(workers, units int) int {
	if workers > units {
		workers = units
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// clusterTasks splits the cluster range of a join into tasks of
// roughly equal outer cardinality (clusters can be heavily skewed, so
// equal cluster *counts* would balance badly).
func clusterTasks(lc *Clustered, workers int) []joinTask {
	total := lc.Pairs.Len()
	grain := total / (workers * 8)
	if grain < joinGrain {
		grain = joinGrain
	}
	h := lc.Clusters()
	tasks := make([]joinTask, 0, workers*8)
	lo, acc := 0, 0
	for k := 0; k < h; k++ {
		acc += lc.ClusterLen(k)
		if acc >= grain {
			tasks = append(tasks, joinTask{loK: lo, hiK: k + 1, lTuples: acc})
			lo, acc = k+1, 0
		}
	}
	if lo < h {
		tasks = append(tasks, joinTask{loK: lo, hiK: h, lTuples: acc})
	}
	return tasks
}

// forEachIndex runs body(w, i) for every i in [0, n) with up to
// `workers` goroutines pulling indexes off a shared counter; body must
// touch only index-i-local and worker-w-local state.
func forEachIndex(workers, n int, body func(w, i int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				body(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// runTasks drains tasks with up to `workers` goroutines.
func runTasks(workers int, tasks []joinTask, body func(w int, t *joinTask)) {
	forEachIndex(workers, len(tasks), func(w, i int) { body(w, &tasks[i]) })
}

// concatTasks stitches the per-task outputs back into one join index,
// in cluster order.
func concatTasks(tasks []joinTask) *JoinIndex {
	total := 0
	for i := range tasks {
		total += len(tasks[i].out)
	}
	out := make([]bat.Pair, 0, total)
	for i := range tasks {
		out = append(out, tasks[i].out...)
	}
	return bat.FromPairs(out)
}

// PartitionedHashJoinClusteredOpts is PartitionedHashJoinClustered
// with an execution-engine configuration: on the native path it joins
// cluster pairs on a worker pool, each worker reusing its own hash
// table across the clusters it handles.
func PartitionedHashJoinClusteredOpts(sim *memsim.Sim, lc, rc *Clustered, h hashtab.Hash, opt Options) (*JoinIndex, error) {
	workers := opt.workers()
	if sim != nil || workers <= 1 {
		return PartitionedHashJoinClustered(sim, lc, rc, h)
	}
	if lc.Bits != rc.Bits {
		return nil, fmt.Errorf("core: cluster bit mismatch %d vs %d", lc.Bits, rc.Bits)
	}
	if h == nil {
		h = hashtab.Identity
	}
	workers = clampWorkers(workers, lc.Pairs.Len()/joinGrain+1)
	tasks := clusterTasks(lc, workers)
	tabs := make([]*hashtab.Table, workers)
	runTasks(workers, tasks, func(w int, t *joinTask) {
		// Size the worker's (warm, reused) table to the largest inner
		// cluster of this task, not the global maximum: under skew the
		// global maximum times the worker count would multiply the
		// serial engine's scratch footprint.
		maxInner := 0
		for k := t.loK; k < t.hiK; k++ {
			if n := rc.ClusterLen(k); n > maxInner {
				maxInner = n
			}
		}
		tab := tabs[w]
		if tab == nil || tab.Cap() < maxInner {
			tab = hashtab.NewShifted(maxInner, lc.Bits, h)
			tabs[w] = tab
		}
		t.out = make([]bat.Pair, 0, t.lTuples)
		for k := t.loK; k < t.hiK; k++ {
			if lc.ClusterLen(k) == 0 || rc.ClusterLen(k) == 0 {
				continue
			}
			lcl, rcl := lc.Cluster(k), rc.Cluster(k)
			tab.Build(nil, rcl)
			for i := range lcl.BUNs {
				lh, key := lcl.BUNs[i].Head, lcl.BUNs[i].Tail
				tab.Probe(nil, rcl, key, func(pos int32) {
					t.out = append(t.out, bat.Pair{Head: lh, Tail: uint32(rcl.BUNs[pos].Head)})
				})
			}
		}
	})
	return concatTasks(tasks), nil
}

// RadixJoinClusteredOpts is RadixJoinClustered with an
// execution-engine configuration: on the native path the nested-loop
// joins of the (tiny) cluster pairs fan out over a worker pool.
func RadixJoinClusteredOpts(sim *memsim.Sim, lc, rc *Clustered, opt Options) (*JoinIndex, error) {
	workers := opt.workers()
	if sim != nil || workers <= 1 {
		return RadixJoinClustered(sim, lc, rc)
	}
	if lc.Bits != rc.Bits {
		return nil, fmt.Errorf("core: cluster bit mismatch %d vs %d", lc.Bits, rc.Bits)
	}
	workers = clampWorkers(workers, lc.Pairs.Len()/joinGrain+1)
	tasks := clusterTasks(lc, workers)
	runTasks(workers, tasks, func(w int, t *joinTask) {
		t.out = make([]bat.Pair, 0, t.lTuples)
		for k := t.loK; k < t.hiK; k++ {
			if lc.ClusterLen(k) == 0 || rc.ClusterLen(k) == 0 {
				continue
			}
			lcl, rcl := lc.Cluster(k), rc.Cluster(k)
			for i := range lcl.BUNs {
				lh, key := lcl.BUNs[i].Head, lcl.BUNs[i].Tail
				for j := range rcl.BUNs {
					if rcl.BUNs[j].Tail == key {
						t.out = append(t.out, bat.Pair{Head: lh, Tail: uint32(rcl.BUNs[j].Head)})
					}
				}
			}
		}
	})
	return concatTasks(tasks), nil
}

// RadixClusterOpts is RadixCluster with an execution-engine
// configuration; see RadixClusterSplitOpts for the parallel scheme.
func RadixClusterOpts(sim *memsim.Sim, in *bat.Pairs, bits, passes int, h hashtab.Hash, opt Options) (*Clustered, error) {
	if err := CheckBits(bits); err != nil {
		return nil, err
	}
	if bits == 0 {
		return &Clustered{Pairs: in, Bits: 0, Offsets: []int{0, in.Len()}, hash: h}, nil
	}
	if passes < 1 || passes > bits {
		return nil, fmt.Errorf("core: %d passes invalid for %d bits", passes, bits)
	}
	return RadixClusterSplitOpts(sim, in, EvenBitSplit(bits, passes), h, opt)
}

// RadixClusterSplitOpts is RadixClusterSplit with an execution-engine
// configuration. On the native path each pass parallelizes: the first
// pass (one region) with per-worker histograms, a serial prefix sum,
// and a parallel scatter into disjoint cursor ranges; later passes by
// fanning the independent regions of the previous pass out over the
// pool. The resulting BAT and offsets are byte-identical to the
// serial clustering.
func RadixClusterSplitOpts(sim *memsim.Sim, in *bat.Pairs, split []int, h hashtab.Hash, opt Options) (*Clustered, error) {
	workers := opt.workers()
	if sim != nil || workers <= 1 {
		return RadixClusterSplit(sim, in, split, h)
	}
	bits, err := checkSplit(split)
	if err != nil {
		return nil, err
	}
	if h == nil {
		h = hashtab.Identity
	}
	n := in.Len()
	workers = clampWorkers(workers, n)

	bufA := bat.NewPairs(n)
	var bufB *bat.Pairs
	if len(split) > 1 {
		bufB = bat.NewPairs(n)
	}

	// A region larger than one worker's share of the pass splits
	// across the whole pool; the rest fan out one region per worker.
	// The first pass is always one big region; later passes are
	// usually all small, unless the data skews into few clusters.
	bigRegion := n / workers
	if bigRegion < minParallelRegion {
		bigRegion = minParallelRegion
	}

	src, dst := in, bufA
	regions := []int{0, n}
	bitsDone := 0
	for p, bp := range split {
		shift := uint(bits - bitsDone - bp)
		hp := 1 << bp
		mask := uint32(hp - 1)
		nr := len(regions) - 1
		newRegions := make([]int, nr*hp+1)
		newRegions[nr*hp] = n
		small := make([]int, 0, nr)
		for r := 0; r < nr; r++ {
			if regions[r+1]-regions[r] > bigRegion {
				clusterRegionParallel(src, dst, regions[r], regions[r+1], shift, mask, hp, h, workers, newRegions[r*hp:(r+1)*hp])
			} else {
				small = append(small, r)
			}
		}
		regionFanOut(src, dst, regions, small, shift, mask, hp, h, workers, newRegions)
		regions = newRegions
		bitsDone += bp
		switch {
		case p == len(split)-1:
			src = dst // final result
		case dst == bufA:
			src, dst = bufA, bufB
		default:
			src, dst = bufB, bufA
		}
	}
	return &Clustered{Pairs: src, Bits: bits, Offsets: regions, hash: h}, nil
}

// clusterRegionSerial clusters src[lo:hi) into dst on the bp bits at
// shift, recording the hp cluster boundaries in bounds. cursors is a
// caller-owned scratch slice of hp ints. This is the native region
// body of RadixClusterSplit, shared by the region fan-out.
//
//monet:kernel
func clusterRegionSerial(src, dst *bat.Pairs, lo, hi int, shift uint, mask uint32, hp int, h hashtab.Hash, cursors, bounds []int) {
	for d := range cursors {
		cursors[d] = 0
	}
	for i := lo; i < hi; i++ {
		cursors[(h(src.BUNs[i].Tail)>>shift)&mask]++
	}
	pos := lo
	for d := 0; d < hp; d++ {
		bounds[d] = pos
		c := cursors[d]
		cursors[d] = pos
		pos += c
	}
	for i := lo; i < hi; i++ {
		bun := src.BUNs[i]
		d := (h(bun.Tail) >> shift) & mask
		dst.BUNs[cursors[d]] = bun
		cursors[d]++
	}
}

// regionFanOut runs the listed independent regions of a clustering
// pass on a worker pool, one region per worker at a time; region r
// writes its hp boundaries into newRegions[r*hp : (r+1)*hp].
//
//monet:kernel
func regionFanOut(src, dst *bat.Pairs, regions, regionIdx []int, shift uint, mask uint32, hp int, h hashtab.Hash, workers int, newRegions []int) {
	if workers > len(regionIdx) {
		workers = len(regionIdx)
	}
	scratch := make([][]int, workers)
	//monet:allow kernalloc per-worker fan-out: one launch and one closure per worker, amortized over the region batch
	forEachIndex(workers, len(regionIdx), func(w, i int) {
		cursors := scratch[w]
		if cursors == nil {
			cursors = make([]int, hp)
			scratch[w] = cursors
		}
		r := regionIdx[i]
		clusterRegionSerial(src, dst, regions[r], regions[r+1], shift, mask, hp, h, cursors, newRegions[r*hp:(r+1)*hp])
	})
}

// clusterRegionParallel clusters one region with chunked per-worker
// histograms, a serial prefix sum over (digit, worker), and a parallel
// scatter: worker w's cursor for digit d starts where the tuples of d
// from workers < w end, so every tuple lands exactly where the serial
// scatter would put it.
//
//monet:kernel
func clusterRegionParallel(src, dst *bat.Pairs, lo, hi int, shift uint, mask uint32, hp int, h hashtab.Hash, workers int, bounds []int) {
	n := hi - lo
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	//monet:allow kernalloc bounds helper allocated once per region, not per tuple
	chunk := func(w int) (int, int) {
		return lo + w*n/workers, lo + (w+1)*n/workers
	}
	counts := make([][]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) { //monet:allow kernalloc one goroutine stack per worker per region, amortized over the tuples
			defer wg.Done() //monet:allow kernalloc once per worker goroutine, not on the tuple loop
			//monet:allow hotalloc one histogram per worker per region, not per tuple
			c := make([]int, hp)
			clo, chi := chunk(w)
			for i := clo; i < chi; i++ {
				c[(h(src.BUNs[i].Tail)>>shift)&mask]++
			}
			counts[w] = c
		}(w)
	}
	wg.Wait()
	pos := lo
	for d := 0; d < hp; d++ {
		bounds[d] = pos
		for w := 0; w < workers; w++ {
			c := counts[w][d]
			counts[w][d] = pos
			pos += c
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) { //monet:allow kernalloc one goroutine stack per worker per region, amortized over the tuples
			defer wg.Done() //monet:allow kernalloc once per worker goroutine, not on the tuple loop
			cur := counts[w]
			clo, chi := chunk(w)
			for i := clo; i < chi; i++ {
				bun := src.BUNs[i]
				d := (h(bun.Tail) >> shift) & mask
				dst.BUNs[cur[d]] = bun
				cur[d]++
			}
		}(w)
	}
	wg.Wait()
}

// PartitionedHashJoinOpts is the complete partitioned hash-join
// (cluster both operands, hash-join cluster pairs) on the configured
// engine.
func PartitionedHashJoinOpts(sim *memsim.Sim, l, r *bat.Pairs, bits, passes int, h hashtab.Hash, opt Options) (*JoinIndex, error) {
	lc, err := RadixClusterOpts(sim, l, bits, passes, h, opt)
	if err != nil {
		return nil, err
	}
	rc, err := RadixClusterOpts(sim, r, bits, passes, h, opt)
	if err != nil {
		return nil, err
	}
	return PartitionedHashJoinClusteredOpts(sim, lc, rc, h, opt)
}

// RadixJoinOpts is the complete radix-join (cluster both operands,
// nested-loop join cluster pairs) on the configured engine.
func RadixJoinOpts(sim *memsim.Sim, l, r *bat.Pairs, bits, passes int, h hashtab.Hash, opt Options) (*JoinIndex, error) {
	lc, err := RadixClusterOpts(sim, l, bits, passes, h, opt)
	if err != nil {
		return nil, err
	}
	rc, err := RadixClusterOpts(sim, r, bits, passes, h, opt)
	if err != nil {
		return nil, err
	}
	return RadixJoinClusteredOpts(sim, lc, rc, opt)
}
