package core

import (
	"fmt"

	"monetlite/internal/costmodel"
	"monetlite/internal/memsim"
)

// PlanAuto picks the cheapest concrete strategy for joining two
// relations of cardinality c on machine m, by evaluating the paper's
// cost models over the §3.4.4 strategy set — the role a Monet query
// optimizer plays with these formulas.
func PlanAuto(c int, m memsim.Machine) Plan {
	model := costmodel.New(m)
	return PlanAutoModel(c, &model)
}

// planKind is the residual kind a candidate plan's prediction is
// corrected under — the same normalization the profiler applies to the
// executed operator's "Join[<plan>]" label, so a learned "Join[phash]"
// correction reweighs every partitioned-hash candidate here.
func planKind(p Plan) string {
	return costmodel.KindOf(fmt.Sprintf("Join[%s]", p))
}

// PlanAutoModel is PlanAuto pricing every candidate through the given
// cost model, so per-kind corrections learned from profiling feeds
// participate in the strategy choice itself, not just its reported
// cost.
func PlanAutoModel(c int, model *costmodel.Model) Plan {
	m := model.M
	best := NewPlan(SimpleHash, c, m)
	bestCost := model.Nanos(planKind(best), model.SimpleHashTotal(c))
	for _, s := range []Strategy{PhashL2, PhashTLB, PhashL1, Phash256, PhashMin, Radix8, RadixMin} {
		p := NewPlan(s, c, m)
		var b costmodel.Breakdown
		if s.UsesRadixJoin() {
			b = model.RadixTotal(p.Bits, c)
		} else {
			b = model.PhashTotal(p.Bits, c)
		}
		if cost := model.Nanos(planKind(p), b); cost < bestCost {
			bestCost = cost
			best = p
		}
	}
	return best
}

// PredictPlan returns the model-predicted cost breakdown of executing
// plan p at cardinality c on machine m (cluster both operands + join).
func PredictPlan(p Plan, c int, m memsim.Machine) costmodel.Breakdown {
	model := costmodel.New(m)
	switch p.Strategy {
	case SortMerge:
		return model.SortMergeTotal(c)
	case SimpleHash:
		return model.SimpleHashTotal(c)
	default:
		if p.Strategy.UsesRadixJoin() {
			return model.RadixTotal(p.Bits, c)
		}
		return model.PhashTotal(p.Bits, c)
	}
}
