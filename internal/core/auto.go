package core

import (
	"monetlite/internal/costmodel"
	"monetlite/internal/memsim"
)

// PlanAuto picks the cheapest concrete strategy for joining two
// relations of cardinality c on machine m, by evaluating the paper's
// cost models over the §3.4.4 strategy set — the role a Monet query
// optimizer plays with these formulas.
func PlanAuto(c int, m memsim.Machine) Plan {
	model := costmodel.New(m)
	best := NewPlan(SimpleHash, c, m)
	bestCost := model.SimpleHashTotal(c).Total(m)
	for _, s := range []Strategy{PhashL2, PhashTLB, PhashL1, Phash256, PhashMin, Radix8, RadixMin} {
		p := NewPlan(s, c, m)
		var cost float64
		if s.UsesRadixJoin() {
			cost = model.RadixTotal(p.Bits, c).Total(m)
		} else {
			cost = model.PhashTotal(p.Bits, c).Total(m)
		}
		if cost < bestCost {
			bestCost = cost
			best = p
		}
	}
	return best
}

// PredictPlan returns the model-predicted cost breakdown of executing
// plan p at cardinality c on machine m (cluster both operands + join).
func PredictPlan(p Plan, c int, m memsim.Machine) costmodel.Breakdown {
	model := costmodel.New(m)
	switch p.Strategy {
	case SortMerge:
		return model.SortMergeTotal(c)
	case SimpleHash:
		return model.SimpleHashTotal(c)
	default:
		if p.Strategy.UsesRadixJoin() {
			return model.RadixTotal(p.Bits, c)
		}
		return model.PhashTotal(p.Bits, c)
	}
}
