package core

import (
	"fmt"

	"monetlite/internal/bat"
	"monetlite/internal/hashtab"
	"monetlite/internal/memsim"
	"monetlite/internal/sortx"
)

// JoinIndex is the result of every equi-join in the paper's setup
// (§3.4.1): a BAT of [OID,OID] combinations of matching tuples — a
// join index in the sense of [Val87]. Head is the left OID, Tail the
// right OID (stored in the uint32 Tail field).
type JoinIndex = bat.Pairs

// joinSink accumulates the join index and mirrors result writes into
// the simulator. Simulated address space is reserved for twice the
// outer cardinality; the experiments have hit rate exactly 1, so the
// reservation is never exceeded (writes beyond it are counted as CPU
// work only).
type joinSink struct {
	sim    *memsim.Sim
	out    []bat.Pair
	base   uint64
	capSim int
	wOut   float64 // CPU cost per result tuple (w'r / share of wh)
}

func newJoinSink(sim *memsim.Sim, expect int, wOut float64) *joinSink {
	s := &joinSink{sim: sim, out: make([]bat.Pair, 0, expect), wOut: wOut}
	if sim != nil {
		s.capSim = 2 * expect
		if s.capSim == 0 {
			s.capSim = 16
		}
		s.base = sim.Alloc(s.capSim * bat.PairSize)
	}
	return s
}

func (s *joinSink) emit(lh, rh bat.Oid) {
	if s.sim != nil {
		if i := len(s.out); i < s.capSim {
			s.sim.Write(s.base+uint64(i)*bat.PairSize, bat.PairSize)
		}
		s.sim.AddCPU(1, s.wOut)
	}
	s.out = append(s.out, bat.Pair{Head: lh, Tail: uint32(rh)})
}

func (s *joinSink) result() *JoinIndex {
	res := bat.FromPairs(s.out)
	return res
}

// pairClusters walks the matching cluster pairs of two BATs clustered
// on the same number of bits — the merge step on radix values of
// §3.3.1 — invoking f for every pair where both sides are non-empty.
func pairClusters(lc, rc *Clustered, f func(k int, lcl, rcl *bat.Pairs) error) error {
	if lc.Bits != rc.Bits {
		return fmt.Errorf("core: cluster bit mismatch %d vs %d", lc.Bits, rc.Bits)
	}
	for k := 0; k < lc.Clusters(); k++ {
		if lc.ClusterLen(k) == 0 || rc.ClusterLen(k) == 0 {
			continue
		}
		if err := f(k, lc.Cluster(k), rc.Cluster(k)); err != nil {
			return err
		}
	}
	return nil
}

// PartitionedHashJoinClustered runs the join phase of partitioned
// hash-join (Figure 8) on two pre-clustered inputs: for every cluster
// pair it builds a bucket-chained hash table on the right (inner)
// cluster and probes it with the left (outer) cluster. This is the
// isolated join of Figure 11.
func PartitionedHashJoinClustered(sim *memsim.Sim, lc, rc *Clustered, h hashtab.Hash) (*JoinIndex, error) {
	if h == nil {
		h = hashtab.Identity
	}
	var wh, whClus float64
	if sim != nil {
		wh = sim.Machine().Cost.Wh
		whClus = sim.Machine().Cost.WhClus
		lc.Pairs.Bind(sim)
		rc.Pairs.Bind(sim)
	}
	maxInner := 0
	for k := 0; k < rc.Clusters(); k++ {
		if n := rc.ClusterLen(k); n > maxInner {
			maxInner = n
		}
	}
	// One table, reused warm across clusters (like a real allocator
	// handing back the same arena); w'h per cluster charges the
	// create/destroy overhead the model attributes to each cluster.
	// The table buckets on the hash bits ABOVE the radix bits: inside a
	// cluster all keys agree on the lower Bits bits.
	tab := hashtab.NewShifted(maxInner, lc.Bits, h)
	sink := newJoinSink(sim, lc.Pairs.Len(), 0)
	err := pairClusters(lc, rc, func(k int, lcl, rcl *bat.Pairs) error {
		tab.Build(sim, rcl)
		if sim != nil {
			sim.AddCPU(1, whClus)
			sim.AddCPU(lcl.Len(), wh)
		}
		for i := range lcl.BUNs {
			if sim != nil {
				sim.Read(lcl.Addr(i), bat.PairSize)
			}
			lh, key := lcl.BUNs[i].Head, lcl.BUNs[i].Tail
			tab.Probe(sim, rcl, key, func(pos int32) {
				sink.emit(lh, rcl.BUNs[pos].Head)
			})
		}
		if sim != nil && sim.Exhausted() {
			return fmt.Errorf("core: partitioned hash-join cluster %d: %w", k, memsim.ErrBudget)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.result(), nil
}

// RadixJoinClustered runs the join phase of radix-join (Figure 8) on
// two pre-clustered inputs: a nested-loop join of every cluster pair.
// With the very fine clusterings radix-cluster affords, the inner loop
// runs over only a handful of tuples (§3.3.1: ≈8 tuples is optimal).
// This is the isolated join of Figure 10.
func RadixJoinClustered(sim *memsim.Sim, lc, rc *Clustered) (*JoinIndex, error) {
	var wr, wrOut float64
	if sim != nil {
		wr = sim.Machine().Cost.Wr
		wrOut = sim.Machine().Cost.WrOut
		lc.Pairs.Bind(sim)
		rc.Pairs.Bind(sim)
	}
	sink := newJoinSink(sim, lc.Pairs.Len(), wrOut)
	err := pairClusters(lc, rc, func(k int, lcl, rcl *bat.Pairs) error {
		for i := range lcl.BUNs {
			if sim != nil {
				sim.Read(lcl.Addr(i), bat.PairSize)
				sim.AddCPU(rcl.Len(), wr) // predicate checks of the inner scan
			}
			lh, key := lcl.BUNs[i].Head, lcl.BUNs[i].Tail
			for j := range rcl.BUNs {
				if sim != nil {
					sim.Read(rcl.Addr(j), bat.PairSize)
				}
				if rcl.BUNs[j].Tail == key {
					sink.emit(lh, rcl.BUNs[j].Head)
				}
			}
			if sim != nil && i&1023 == 1023 && sim.Exhausted() {
				return fmt.Errorf("core: radix-join cluster %d: %w", k, memsim.ErrBudget)
			}
		}
		if sim != nil && sim.Exhausted() {
			return fmt.Errorf("core: radix-join cluster %d: %w", k, memsim.ErrBudget)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.result(), nil
}

// PartitionedHashJoin is the complete partitioned hash-join of
// Figure 8: radix-cluster both operands on bits/passes, then
// hash-join the matching cluster pairs.
func PartitionedHashJoin(sim *memsim.Sim, l, r *bat.Pairs, bits, passes int, h hashtab.Hash) (*JoinIndex, error) {
	lc, err := RadixCluster(sim, l, bits, passes, h)
	if err != nil {
		return nil, err
	}
	rc, err := RadixCluster(sim, r, bits, passes, h)
	if err != nil {
		return nil, err
	}
	return PartitionedHashJoinClustered(sim, lc, rc, h)
}

// RadixJoin is the complete radix-join of Figure 8: radix-cluster both
// operands on bits/passes, then nested-loop join the matching cluster
// pairs.
func RadixJoin(sim *memsim.Sim, l, r *bat.Pairs, bits, passes int, h hashtab.Hash) (*JoinIndex, error) {
	lc, err := RadixCluster(sim, l, bits, passes, h)
	if err != nil {
		return nil, err
	}
	rc, err := RadixCluster(sim, r, bits, passes, h)
	if err != nil {
		return nil, err
	}
	return RadixJoinClustered(sim, lc, rc)
}

// SimpleHashJoin is the non-partitioned bucket-chained hash join
// ("simple hash" in Figure 13): build one table on the whole inner
// relation, probe with the whole outer relation. When the inner
// relation plus its table exceed the caches, the random access pattern
// of both build and probe trashes L1, L2 and the TLB.
func SimpleHashJoin(sim *memsim.Sim, l, r *bat.Pairs, h hashtab.Hash) (*JoinIndex, error) {
	if h == nil {
		h = hashtab.Identity
	}
	var wh, whClus float64
	if sim != nil {
		wh = sim.Machine().Cost.Wh
		whClus = sim.Machine().Cost.WhClus
		l.Bind(sim)
		r.Bind(sim)
	}
	tab := hashtab.New(r.Len(), h)
	tab.Build(sim, r)
	if sim != nil {
		sim.AddCPU(1, whClus)
		sim.AddCPU(l.Len(), wh)
	}
	sink := newJoinSink(sim, l.Len(), 0)
	for i := range l.BUNs {
		if sim != nil {
			sim.Read(l.Addr(i), bat.PairSize)
		}
		lh, key := l.BUNs[i].Head, l.BUNs[i].Tail
		tab.Probe(sim, r, key, func(pos int32) {
			sink.emit(lh, r.BUNs[pos].Head)
		})
		if sim != nil && i&4095 == 4095 && sim.Exhausted() {
			return nil, fmt.Errorf("core: simple hash-join: %w", memsim.ErrBudget)
		}
	}
	return sink.result(), nil
}

// SortMergeJoin sorts copies of both operands on the join key with
// radix sort [Knu68] and merges them. The paper dismisses it for main
// memory — sorting both relations causes random access over an even
// larger region than hash-join (§3.2) — and Figure 13 confirms it;
// it is implemented as that baseline.
func SortMergeJoin(sim *memsim.Sim, l, r *bat.Pairs) (*JoinIndex, error) {
	var wc, wr, wrOut float64
	if sim != nil {
		wc = sim.Machine().Cost.Wc
		wr = sim.Machine().Cost.Wr
		wrOut = sim.Machine().Cost.WrOut
		l.Bind(sim)
		r.Bind(sim)
	}
	// Sort working copies: the operands themselves stay unsorted, as
	// Monet BATs are immutable inputs to the join.
	ls, rs := l.Clone(), r.Clone()
	if sim != nil {
		ls.Bind(sim)
		rs.Bind(sim)
		for i := 0; i < l.Len(); i++ {
			sim.Read(l.Addr(i), bat.PairSize)
			sim.Write(ls.Addr(i), bat.PairSize)
		}
		for i := 0; i < r.Len(); i++ {
			sim.Read(r.Addr(i), bat.PairSize)
			sim.Write(rs.Addr(i), bat.PairSize)
		}
	}
	sortx.SortPairs(sim, ls, nil)
	sortx.SortPairs(sim, rs, nil)
	if sim != nil {
		// Four radix-sort passes of scatter work per relation, plus the
		// merge walk.
		sim.AddCPU(4*(ls.Len()+rs.Len()), wc)
		sim.AddCPU(ls.Len()+rs.Len(), wr)
		if sim.Exhausted() {
			return nil, fmt.Errorf("core: sort-merge join: %w", memsim.ErrBudget)
		}
	}
	sink := newJoinSink(sim, l.Len(), wrOut)
	sortx.MergeJoinSorted(sim, ls, rs, sink.emit)
	return sink.result(), nil
}

// NestedLoopJoin is the quadratic reference join used by tests and as
// the degenerate baseline; it is exact for any input.
func NestedLoopJoin(sim *memsim.Sim, l, r *bat.Pairs) (*JoinIndex, error) {
	var wr, wrOut float64
	if sim != nil {
		wr = sim.Machine().Cost.Wr
		wrOut = sim.Machine().Cost.WrOut
		l.Bind(sim)
		r.Bind(sim)
	}
	sink := newJoinSink(sim, l.Len(), wrOut)
	for i := range l.BUNs {
		if sim != nil {
			sim.Read(l.Addr(i), bat.PairSize)
			sim.AddCPU(r.Len(), wr)
		}
		lh, key := l.BUNs[i].Head, l.BUNs[i].Tail
		for j := range r.BUNs {
			if sim != nil {
				sim.Read(r.Addr(j), bat.PairSize)
			}
			if r.BUNs[j].Tail == key {
				sink.emit(lh, r.BUNs[j].Head)
			}
		}
		if sim != nil && i&255 == 255 && sim.Exhausted() {
			return nil, fmt.Errorf("core: nested-loop join: %w", memsim.ErrBudget)
		}
	}
	return sink.result(), nil
}
