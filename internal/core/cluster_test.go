package core

import (
	"testing"
	"testing/quick"

	"monetlite/internal/bat"
	"monetlite/internal/hashtab"
	"monetlite/internal/memsim"
	"monetlite/internal/workload"
)

func TestEvenBitSplit(t *testing.T) {
	cases := []struct {
		bits, passes int
		want         []int
	}{
		{6, 1, []int{6}},
		{7, 2, []int{4, 3}},
		{12, 2, []int{6, 6}},
		{13, 3, []int{5, 4, 4}},
		{20, 4, []int{5, 5, 5, 5}},
		{3, 3, []int{1, 1, 1}},
	}
	for _, tc := range cases {
		got := EvenBitSplit(tc.bits, tc.passes)
		if len(got) != len(tc.want) {
			t.Fatalf("split(%d,%d) = %v", tc.bits, tc.passes, got)
		}
		sum := 0
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("split(%d,%d) = %v, want %v", tc.bits, tc.passes, got, tc.want)
				break
			}
			sum += got[i]
		}
		if sum != tc.bits {
			t.Errorf("split(%d,%d) sums to %d", tc.bits, tc.passes, sum)
		}
	}
}

func TestOptimalPasses(t *testing.T) {
	m := memsim.Origin2000() // 64 TLB entries → 6 bits/pass
	cases := map[int]int{0: 1, 1: 1, 6: 1, 7: 2, 12: 2, 13: 3, 18: 3, 19: 4, 20: 4, 24: 4}
	for bits, want := range cases {
		if got := OptimalPasses(bits, m); got != want {
			t.Errorf("OptimalPasses(%d) = %d, want %d (§3.4.2)", bits, got, want)
		}
	}
}

func TestRadixClusterInvariant(t *testing.T) {
	in := workload.UniquePairs(10000, 1)
	for _, tc := range []struct{ bits, passes int }{
		{1, 1}, {4, 1}, {8, 2}, {10, 2}, {12, 3}, {13, 4},
	} {
		cl, err := RadixCluster(nil, in, tc.bits, tc.passes, nil)
		if err != nil {
			t.Fatalf("B=%d P=%d: %v", tc.bits, tc.passes, err)
		}
		if err := cl.Validate(); err != nil {
			t.Errorf("B=%d P=%d: %v", tc.bits, tc.passes, err)
		}
		if cl.Pairs.Len() != in.Len() {
			t.Errorf("B=%d P=%d: lost tuples", tc.bits, tc.passes)
		}
	}
}

func TestRadixClusterPreservesMultiset(t *testing.T) {
	in := workload.UniquePairs(5000, 2)
	orig := make(map[bat.Pair]bool, in.Len())
	for _, b := range in.BUNs {
		orig[b] = true
	}
	cl, err := RadixCluster(nil, in, 9, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range cl.Pairs.BUNs {
		if !orig[b] {
			t.Fatal("cluster invented/corrupted a BUN")
		}
	}
	// Input must be untouched.
	for _, b := range in.BUNs {
		if !orig[b] {
			t.Fatal("input mutated")
		}
	}
}

func TestRadixClusterZeroBits(t *testing.T) {
	in := workload.UniquePairs(100, 3)
	cl, err := RadixCluster(nil, in, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Clusters() != 1 || cl.ClusterLen(0) != 100 {
		t.Errorf("B=0: %d clusters, first len %d", cl.Clusters(), cl.ClusterLen(0))
	}
	if cl.Pairs != in {
		t.Error("B=0 should not copy")
	}
}

func TestRadixClusterParamValidation(t *testing.T) {
	in := workload.UniquePairs(10, 4)
	if _, err := RadixCluster(nil, in, -1, 1, nil); err == nil {
		t.Error("negative bits accepted")
	}
	if _, err := RadixCluster(nil, in, MaxBits+1, 1, nil); err == nil {
		t.Error("oversized bits accepted")
	}
	if _, err := RadixCluster(nil, in, 4, 0, nil); err == nil {
		t.Error("zero passes accepted")
	}
	if _, err := RadixCluster(nil, in, 4, 5, nil); err == nil {
		t.Error("more passes than bits accepted")
	}
}

func TestRadixClusterEmptyInput(t *testing.T) {
	in := bat.NewPairs(0)
	cl, err := RadixCluster(nil, in, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Clusters() != 16 {
		t.Errorf("clusters = %d", cl.Clusters())
	}
	if err := cl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRadixClusterMultiPassEqualsSinglePass(t *testing.T) {
	in := workload.UniquePairs(4096, 5)
	one, err := RadixCluster(nil, in, 8, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	two, err := RadixCluster(nil, in, 8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same cluster boundaries regardless of pass count.
	for k := 0; k <= one.Clusters(); k++ {
		if one.Offsets[k] != two.Offsets[k] {
			t.Fatalf("offset %d differs: %d vs %d", k, one.Offsets[k], two.Offsets[k])
		}
	}
	// Same multiset within each cluster.
	for k := 0; k < one.Clusters(); k++ {
		a, b := one.Cluster(k), two.Cluster(k)
		seen := make(map[bat.Pair]int)
		for _, x := range a.BUNs {
			seen[x]++
		}
		for _, x := range b.BUNs {
			seen[x]--
			if seen[x] < 0 {
				t.Fatalf("cluster %d contents differ", k)
			}
		}
	}
}

func TestRadixClusterWithMultHash(t *testing.T) {
	in := workload.DensePairs(2048, 6)
	cl, err := RadixCluster(nil, in, 6, 2, hashtab.Mult)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRadixClusterInstrumentedAccessCounts(t *testing.T) {
	sim := memsim.MustNew(memsim.Origin2000())
	in := workload.UniquePairs(8192, 7)
	in.Bind(sim)
	cl, err := RadixCluster(sim, in, 6, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	st := sim.Stats()
	// One pass: histogram read + scatter read + scatter write per tuple.
	if want := uint64(3 * 8192); st.Accesses != want {
		t.Errorf("accesses = %d, want %d", st.Accesses, want)
	}
	if st.CPUNanos != 8192*sim.Machine().Cost.Wc {
		t.Errorf("CPU = %v", st.CPUNanos)
	}
	// Two passes double the traffic.
	sim2 := memsim.MustNew(memsim.Origin2000())
	in2 := workload.UniquePairs(8192, 7)
	in2.Bind(sim2)
	if _, err := RadixCluster(sim2, in2, 6, 2, nil); err != nil {
		t.Fatal(err)
	}
	if want := uint64(2 * 3 * 8192); sim2.Stats().Accesses != want {
		t.Errorf("2-pass accesses = %d, want %d", sim2.Stats().Accesses, want)
	}
}

func TestRadixClusterTLBKnee(t *testing.T) {
	// §3.4.2: one-pass clustering into more clusters than TLB entries
	// explodes TLB misses; the same bits in two passes avoid it. The
	// relation must be big enough that its clusters span more pages
	// than the TLB holds: 2^19 tuples = 4 MB = 256 pages on the
	// Origin2000 (16 KB pages, 64 TLB entries, 1 MB reach).
	m := memsim.Origin2000()
	const c = 1 << 19
	run := func(bits, passes int) memsim.Stats {
		sim := memsim.MustNew(m)
		in := workload.UniquePairs(c, 11)
		in.Bind(sim)
		if _, err := RadixCluster(sim, in, bits, passes, nil); err != nil {
			t.Fatal(err)
		}
		return sim.Stats()
	}
	onePassSmall := run(5, 1) // 32 write cursors < 64 TLB entries
	onePassBig := run(10, 1)  // 1024 write cursors >> 64 TLB entries
	twoPassBig := run(10, 2)  // 2 passes × 32 cursors each
	if onePassBig.TLBMisses < 10*onePassSmall.TLBMisses {
		t.Errorf("TLB explosion missing: B=5 %d vs B=10 %d misses",
			onePassSmall.TLBMisses, onePassBig.TLBMisses)
	}
	if twoPassBig.TLBMisses*4 > onePassBig.TLBMisses {
		t.Errorf("two-pass did not fix TLB trashing: 1-pass %d vs 2-pass %d",
			onePassBig.TLBMisses, twoPassBig.TLBMisses)
	}
}

func TestRadixClusterBudget(t *testing.T) {
	sim := memsim.MustNew(memsim.Origin2000())
	sim.Budget = 100
	in := workload.UniquePairs(10000, 12)
	in.Bind(sim)
	if _, err := RadixCluster(sim, in, 8, 2, nil); err == nil {
		t.Error("budget exhaustion not reported")
	}
}

func TestRadixClusterSplitSchedules(t *testing.T) {
	in := workload.UniquePairs(4096, 14)
	even, err := RadixCluster(nil, in, 9, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range [][]int{{3, 3, 3}, {5, 4}, {7, 2}, {1, 8}, {9}} {
		cl, err := RadixClusterSplit(nil, in, split, nil)
		if err != nil {
			t.Fatalf("split %v: %v", split, err)
		}
		if err := cl.Validate(); err != nil {
			t.Fatalf("split %v: %v", split, err)
		}
		// Any schedule summing to the same B yields the same cluster
		// boundaries.
		for k := range even.Offsets {
			if cl.Offsets[k] != even.Offsets[k] {
				t.Fatalf("split %v: offsets differ at %d", split, k)
			}
		}
	}
	// Invalid schedules.
	if _, err := RadixClusterSplit(nil, in, []int{0, 4}, nil); err == nil {
		t.Error("zero-bit pass accepted")
	}
	if _, err := RadixClusterSplit(nil, in, []int{20, 20}, nil); err == nil {
		t.Error("over-MaxBits schedule accepted")
	}
}

func TestUnevenSplitCostsMore(t *testing.T) {
	// §3.4.2: performance depends strongly on an even distribution of
	// bits — a 10+2 schedule trashes the TLB in its first pass where
	// 6+6 stays within the 64 entries.
	const c = 1 << 19
	run := func(split []int) float64 {
		sim := memsim.MustNew(memsim.Origin2000())
		in := workload.UniquePairs(c, 15)
		in.Bind(sim)
		if _, err := RadixClusterSplit(sim, in, split, nil); err != nil {
			t.Fatal(err)
		}
		return sim.Stats().ElapsedNanos()
	}
	even, uneven := run([]int{6, 6}), run([]int{10, 2})
	if even >= uneven {
		t.Errorf("even split (%.1fms) not cheaper than 10+2 (%.1fms)", even/1e6, uneven/1e6)
	}
}

// Property: for random inputs, bits and passes, clustering preserves
// the BUN multiset and satisfies the radix invariant.
func TestRadixClusterProperty(t *testing.T) {
	f := func(seed uint64, nRaw, bitsRaw, passRaw uint8) bool {
		n := int(nRaw)%1500 + 1
		bits := int(bitsRaw)%12 + 1
		passes := int(passRaw)%bits%4 + 1
		in := workload.UniquePairs(n, seed)
		cl, err := RadixCluster(nil, in, bits, passes, nil)
		if err != nil {
			return false
		}
		if cl.Validate() != nil {
			return false
		}
		seen := make(map[bat.Pair]int, n)
		for _, b := range in.BUNs {
			seen[b]++
		}
		for _, b := range cl.Pairs.BUNs {
			seen[b]--
			if seen[b] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
