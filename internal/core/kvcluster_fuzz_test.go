package core

import (
	"encoding/binary"
	"testing"
)

// FuzzRadixClusterKV checks the radix KV-cluster invariants on
// arbitrary feeds:
//
//   - partition structure: offsets are monotone, cover [0, n], and
//     every tuple in partition p has key low-bits p (histogram
//     conservation — no tuple gained, lost, or misfiled);
//   - stability: within each partition, tuples keep their input
//     order (pinned by comparing against a counting-sort oracle that
//     is stable by construction);
//   - value fidelity: each key keeps its measure;
//   - determinism: the parallel path is byte-identical to serial.
func FuzzRadixClusterKV(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(4), uint8(2))
	f.Add([]byte{}, uint8(0), uint8(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint8(8), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, bitsRaw, passesRaw uint8) {
		bits := int(bitsRaw % 12)
		passes := 1
		if bits > 0 {
			passes = 1 + int(passesRaw)%bits
			if passes > 3 {
				passes = 3
			}
		}
		n := len(data) / 2
		keys := make([]int64, n)
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			// Signed 16-bit keys exercise the negative two's-complement
			// clustering path; the measure tags the input position so
			// stability is observable even through duplicate keys.
			keys[i] = int64(int16(binary.LittleEndian.Uint16(data[2*i:])))
			vals[i] = float64(i)
		}

		serialK, serialV, serialOff, err := RadixClusterKV(keys, vals, bits, passes, Serial())
		if err != nil {
			t.Fatalf("serial RadixClusterKV: %v", err)
		}

		// Partition structure + conservation.
		parts := 1 << bits
		if len(serialOff) != parts+1 || serialOff[0] != 0 || serialOff[parts] != n {
			t.Fatalf("offsets %v do not delimit %d partitions over %d tuples", serialOff, parts, n)
		}
		mask := int64(parts - 1)
		for p := 0; p < parts; p++ {
			if serialOff[p] > serialOff[p+1] {
				t.Fatalf("offsets not monotone at %d: %v", p, serialOff)
			}
			for i := serialOff[p]; i < serialOff[p+1]; i++ {
				if serialK[i]&mask != int64(p) {
					t.Fatalf("key %d (low bits %d) filed in partition %d", serialK[i], serialK[i]&mask, p)
				}
			}
		}

		// Stability + fidelity against a one-pass counting-sort oracle.
		counts := make([]int, parts)
		for _, k := range keys {
			counts[int(k&mask)]++
		}
		cursors := make([]int, parts)
		pos := 0
		for p := 0; p < parts; p++ {
			if counts[p] != serialOff[p+1]-serialOff[p] {
				t.Fatalf("partition %d holds %d tuples, histogram says %d", p, serialOff[p+1]-serialOff[p], counts[p])
			}
			cursors[p] = pos
			pos += counts[p]
		}
		for i := 0; i < n; i++ {
			p := int(keys[i] & mask)
			at := cursors[p]
			cursors[p]++
			if serialK[at] != keys[i] || serialV[at] != vals[i] {
				t.Fatalf("tuple %d (key %d, val %g) not at stable position %d: got key %d, val %g",
					i, keys[i], vals[i], at, serialK[at], serialV[at])
			}
		}

		// Parallel output must be byte-identical to serial.
		parK, parV, parOff, err := RadixClusterKV(keys, vals, bits, passes, Options{Parallelism: 4})
		if err != nil {
			t.Fatalf("parallel RadixClusterKV: %v", err)
		}
		if len(parOff) != len(serialOff) {
			t.Fatalf("parallel offsets %v != serial %v", parOff, serialOff)
		}
		for i := range serialOff {
			if parOff[i] != serialOff[i] {
				t.Fatalf("parallel offsets %v != serial %v", parOff, serialOff)
			}
		}
		for i := 0; i < n; i++ {
			if parK[i] != serialK[i] || parV[i] != serialV[i] {
				t.Fatalf("parallel output diverges from serial at %d: (%d, %g) vs (%d, %g)",
					i, parK[i], parV[i], serialK[i], serialV[i])
			}
		}
	})
}
