// Stub of the fmt API shape hotalloc keys on (package name + error
// constructor); fixtures never execute it.
package fmt

func Errorf(format string, args ...any) error { return nil }

func Sprintf(format string, args ...any) string { return format }
