// Fixture for the hotalloc analyzer: every //monet:kernel function
// below seeds one violation class or pins one compliant idiom.
package kern

import "fmt"

func sink(v any) {}

// notKernel is unannotated: hotalloc must ignore it entirely.
func notKernel(n int) {
	for i := 0; i < n; i++ {
		_ = make([]int, 8)
	}
}

//monet:kernel
func makeInLoop(n int) {
	for i := 0; i < n; i++ {
		_ = make([]int, 8) // want "make inside kernel loop allocates per iteration"
	}
}

//monet:kernel
func newInLoop(n int) {
	for i := 0; i < n; i++ {
		_ = new(int) // want "new inside kernel loop allocates per iteration"
	}
}

//monet:kernel
func appendUnprealloc(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append in kernel loop grows out"
	}
	return out
}

//monet:kernel
func appendEmptyLiteral(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append in kernel loop grows out"
	}
	return out
}

//monet:kernel
func appendCapacityLessMake(n int) []int {
	out := make([]int, 0)
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append in kernel loop grows out"
	}
	return out
}

// appendCallerOwned pins the into-caller-buffer idiom: appending to a
// parameter (or a reslice of one) is the intended kernel shape.
//
//monet:kernel
func appendCallerOwned(dst []int32, n int) []int32 {
	out := dst[:0]
	for i := 0; i < n; i++ {
		out = append(out, int32(i))
	}
	return out
}

// appendPrealloc pins the sized-up-front shape.
//
//monet:kernel
func appendPrealloc(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

//monet:kernel
func closureCapture(n int) {
	fns := make([]func() int, 0, n)
	for i := 0; i < n; i++ {
		j := i
		fns = append(fns, func() int { return j }) // want "closure inside kernel loop captures loop state"
	}
	_ = fns
}

// hoistedClosure pins the compliant form: a closure created outside
// the loop captures nothing per-iteration.
//
//monet:kernel
func hoistedClosure(xs []int) int {
	add := func(a, b int) int { return a + b }
	s := 0
	for _, x := range xs {
		s = add(s, x)
	}
	return s
}

//monet:kernel
func fmtInKernel(ok bool) error {
	if !ok {
		return fmt.Errorf("bad input") // want "fmt.Errorf allocates"
	}
	return nil
}

//monet:kernel
func fmtAllowed(ok bool) error {
	if !ok {
		//monet:allow hotalloc cold error path, runs at most once per query
		return fmt.Errorf("bad input")
	}
	return nil
}

//monet:kernel
func concatInKernel(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//monet:kernel
func constConcat() string {
	return "a" + "b" // constant-folded: no allocation, no finding
}

//monet:kernel
func argBoxing(x int) {
	sink(x) // want "boxed into interface"
}

//monet:kernel
func convBoxing(x int) any {
	return any(x) // want "boxed into interface"
}

//monet:kernel
func assignBoxing(x int) {
	var v any
	v = x // want "boxed into interface"
	_ = v
}

// ifaceThrough pins that interface-to-interface moves do not report.
//
//monet:kernel
func ifaceThrough(v any) {
	sink(v)
}
