// _test.go files are exempt from every analyzer, kernels included:
// this seeded violation must produce no finding.
package kern

import "fmt"

//monet:kernel
func helperForTests(n int) error {
	return fmt.Errorf("n=%d", n)
}
