package hotalloc_test

import (
	"testing"

	"monetlite/internal/analysis/framework/analysistest"
	"monetlite/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "kern")
}
