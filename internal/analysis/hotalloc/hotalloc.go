// Package hotalloc enforces the zero-alloc contract of functions
// annotated //monet:kernel — the dsm *Pos pipeline kernels, the core
// radix-cluster region kernels, the agg partition aggregator. The
// paper's remedy for the memory bottleneck only works while these
// inner loops stay allocation-free and cache-resident, so inside a
// kernel the analyzer flags:
//
//   - make/new inside a loop (an allocation per iteration);
//   - append inside a loop whose destination is provably an
//     unpreallocated local (`var dst []T`, `dst := []T{}`, or a
//     capacity-less make([]T, 0)) — appending into a caller-owned
//     buffer (a parameter, receiver field, or a reslice of either) is
//     the intended idiom and stays legal;
//   - closures created inside a loop that capture loop state (each
//     iteration heap-allocates the closure and its captures);
//   - any call into package fmt (formatting allocates; cold error
//     paths may justify one with //monet:allow hotalloc);
//   - string concatenation (non-constant + on strings);
//   - implicit interface boxing: a concrete value passed where the
//     callee takes an interface, converted to an interface type, or
//     assigned to an interface variable.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations inside //monet:kernel functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && monet.IsKernel(fn) {
				k := &kernel{pass: pass, inits: collectInits(pass.TypesInfo, fn)}
				k.check(fn)
			}
		}
	}
	return nil
}

type kernel struct {
	pass *framework.Pass
	// inits maps each local variable to its initializer (nil for a
	// `var x []T` declaration without one), for the append-prealloc
	// origin analysis.
	inits map[*types.Var]ast.Expr
}

// collectInits records, for every local defined in fn, the expression
// it was initialized from.
func collectInits(info *types.Info, fn *ast.FuncDecl) map[*types.Var]ast.Expr {
	inits := make(map[*types.Var]ast.Expr)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, ok := info.Defs[id].(*types.Var); ok {
						inits[v] = n.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				v, ok := info.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				if i < len(n.Values) {
					inits[v] = n.Values[i]
				} else {
					inits[v] = nil // `var x []T`: starts nil
				}
			}
		}
		return true
	})
	return inits
}

// check walks the kernel body tracking the enclosing loops.
func (k *kernel) check(fn *ast.FuncDecl) {
	var loops []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
			ast.Inspect(loopBody(n), visit)
			// Loop headers (init/cond/post/range expression) run with
			// the loop's own cadence; inspect them at this depth too.
			for _, h := range loopHeader(n) {
				ast.Inspect(h, visit)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.FuncLit:
			if len(loops) > 0 {
				if cap := k.capturedLoopVar(n, loops); cap != "" {
					k.pass.Reportf(n.Pos(), "closure inside kernel loop captures loop state (%s): allocates per iteration; hoist the closure or inline the body", cap)
				}
			}
			return true // closure bodies obey kernel rules too
		case *ast.CallExpr:
			k.checkCall(n, len(loops) > 0)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && k.isString(n) && !k.isConst(n) {
				k.pass.Reportf(n.Pos(), "string concatenation allocates in kernel; kernels operate on codes and positions, not strings")
			}
		case *ast.AssignStmt:
			k.checkAssignBoxing(n)
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

func loopHeader(n ast.Node) []ast.Node {
	var hs []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		for _, h := range []ast.Node{n.Init, n.Cond, n.Post} {
			if h != nil {
				hs = append(hs, h)
			}
		}
	case *ast.RangeStmt:
		hs = append(hs, n.X)
	}
	return hs
}

func (k *kernel) checkCall(call *ast.CallExpr, inLoop bool) {
	info := k.pass.TypesInfo

	// Builtins: make/new per iteration, append without prealloc.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				if inLoop {
					k.pass.Reportf(call.Pos(), "%s inside kernel loop allocates per iteration; hoist the buffer out of the loop or take it from the caller", b.Name())
				}
			case "append":
				if inLoop && len(call.Args) > 0 {
					if origin, bad := k.unpreallocated(call.Args[0], 0); bad {
						k.pass.Reportf(call.Pos(), "append in kernel loop grows %s, which is never preallocated: each growth reallocates and copies; size the buffer up front (make with capacity) or append into a caller-owned buffer", origin)
					}
				}
			}
			return
		}
	}

	// Conversion to an interface type: T(x) boxes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		k.checkConversionBoxing(call, tv.Type)
		return
	}

	fn := monet.Callee(info, call)
	if monet.IsPkgFunc(fn, "fmt") {
		k.pass.Reportf(call.Pos(), "fmt.%s allocates (formatting, interface boxing) inside a kernel; build errors outside the kernel or justify a cold path with //monet:allow hotalloc", fn.Name())
		return
	}

	// Implicit boxing at the call boundary: concrete argument, interface
	// parameter.
	sigType := info.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing here
			}
			pi = params.Len() - 1
		}
		if pi >= params.Len() || pi < 0 {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		k.reportBoxing(arg, pt)
	}
}

func (k *kernel) checkConversionBoxing(call *ast.CallExpr, to types.Type) {
	if len(call.Args) == 1 {
		k.reportBoxing(call.Args[0], to)
	}
}

func (k *kernel) checkAssignBoxing(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := k.pass.TypesInfo.TypeOf(lhs)
		if lt == nil {
			continue
		}
		k.reportBoxing(n.Rhs[i], lt)
	}
}

// reportBoxing flags a concrete non-nil value landing in an interface
// slot.
func (k *kernel) reportBoxing(arg ast.Expr, to types.Type) {
	if to == nil {
		return
	}
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := k.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Type == types.Typ[types.Invalid] {
		return
	}
	if _, argIface := tv.Type.Underlying().(*types.Interface); argIface {
		return // interface-to-interface: no new allocation
	}
	if _, isFunc := ast.Unparen(arg).(*ast.FuncLit); isFunc {
		return // a func literal is not boxing; the closure rule covers it
	}
	k.pass.Reportf(arg.Pos(), "%s boxed into interface %s allocates in kernel; keep kernel data monomorphic", tv.Type, to)
}

// unpreallocated reports whether the append destination is a local
// slice that provably starts without capacity: declared `var x []T`,
// initialized from an empty composite literal, or from a make with
// neither length nor capacity. Parameters, receiver fields, globals,
// reslices of any of those, and capacity-carrying makes are fine.
func (k *kernel) unpreallocated(e ast.Expr, depth int) (origin string, bad bool) {
	if depth > 10 {
		return "", false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := k.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return "", false
		}
		init, isLocal := k.inits[v]
		if !isLocal {
			return "", false // parameter, receiver, global: caller-owned
		}
		if init == nil {
			return e.Name + " (declared without an initializer, starts nil)", true
		}
		if from, bad := k.unpreallocated(init, depth+1); bad {
			return e.Name + " (initialized from " + from + ")", true
		}
		return "", false
	case *ast.CompositeLit:
		return "an empty literal", len(e.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return "", false
		}
		if b, ok := k.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return "", false // result of another kernel call: assume managed
		}
		if len(e.Args) >= 3 {
			return "", false // explicit capacity
		}
		if len(e.Args) == 2 && !k.isZeroConst(e.Args[1]) {
			return "", false // non-zero length is a preallocation
		}
		return "a capacity-less make", true
	case *ast.SliceExpr:
		return k.unpreallocated(e.X, depth+1)
	}
	return "", false
}

func (k *kernel) isZeroConst(e ast.Expr) bool {
	tv, ok := k.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}

func (k *kernel) isString(n *ast.BinaryExpr) bool {
	t := k.pass.TypesInfo.TypeOf(n)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (k *kernel) isConst(n ast.Expr) bool {
	tv, ok := k.pass.TypesInfo.Types[n]
	return ok && tv.Value != nil
}

// capturedLoopVar returns the name of a variable declared inside one
// of the enclosing loops (loop variable or body local) that the
// closure references, or "" if the closure captures no loop state.
func (k *kernel) capturedLoopVar(lit *ast.FuncLit, loops []ast.Node) string {
	info := k.pass.TypesInfo
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure itself
		}
		for _, loop := range loops {
			if v.Pos() >= loop.Pos() && v.Pos() < loop.End() {
				captured = v.Name()
				return false
			}
		}
		return true
	})
	return captured
}
