// Package simpurity enforces the two-world discipline around the
// cache simulator handle (*memsim.Sim): instrumented runs (sim != nil)
// model a single 1999 CPU and must stay strictly serial and fully
// mirrored, while native runs (sim == nil) must never touch the
// simulator. Concretely, inside a branch where some sim is provably
// non-nil it flags goroutine spawns, core worker-pool fan-outs
// (ForEach/ForMorsels or passing a core.Options that is not a direct
// core.Serial()), and calls to the native-only dsm *Pos kernels
// (which mirror nothing into the simulator); inside a branch where a
// sim is provably nil it flags method calls on that sim — a
// guaranteed nil dereference.
//
// Nil-ness is tracked lexically: `if sim != nil`, `if sim == nil`,
// && conjunctions, negated disjunctions (the else of
// `sim != nil || workers <= 1` proves sim == nil), and early-return
// branches (`if sim == nil { return ... }` proves sim != nil below).
package simpurity

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "simpurity",
	Doc:  "keep sim != nil paths strictly serial and mirrored; keep sim method calls out of native-only paths",
	Run:  run,
}

// fanOutFuncs are the core worker-pool entry points; calling one in
// an instrumented region spawns goroutines.
var fanOutFuncs = map[string]bool{"ForEach": true, "ForMorsels": true, "forEachIndex": true, "runTasks": true}

// facts maps a sim expression key to its proven nil-ness in the
// current region: true = non-nil (instrumented), false = nil (native).
type facts map[string]bool

func (f facts) anyNonNil() bool {
	for _, nonNil := range f {
		if nonNil {
			return true
		}
	}
	return false
}

func merged(base, add facts) facts {
	if len(add) == 0 {
		return base
	}
	out := make(facts, len(base)+len(add))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range add {
		out[k] = v
	}
	return out
}

func run(pass *framework.Pass) error {
	w := &walker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				w.block(fn.Body.List, facts{})
			}
		}
	}
	return nil
}

type walker struct {
	pass *framework.Pass
}

// block walks a statement list, narrowing facts after early-exit ifs:
// once `if sim == nil { return ... }` has been passed, the remainder
// of the block runs with sim proven non-nil.
func (w *walker) block(stmts []ast.Stmt, env facts) {
	for _, s := range stmts {
		w.stmt(s, env)
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && terminates(ifs.Body) {
			_, elseFacts := w.classify(ifs.Cond)
			env = merged(env, elseFacts)
		}
	}
}

func (w *walker) stmt(s ast.Stmt, env facts) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s.List, env)
	case *ast.IfStmt:
		w.stmt(s.Init, env)
		w.exprs(s.Cond, env)
		bodyFacts, elseFacts := w.classify(s.Cond)
		w.block(s.Body.List, merged(env, bodyFacts))
		if s.Else != nil {
			w.stmt(s.Else, merged(env, elseFacts))
		}
	case *ast.ForStmt:
		w.stmt(s.Init, env)
		w.exprs(s.Cond, env)
		w.stmt(s.Post, env)
		w.block(s.Body.List, env)
	case *ast.RangeStmt:
		w.exprs(s.X, env)
		w.block(s.Body.List, env)
	case *ast.SwitchStmt:
		w.stmt(s.Init, env)
		w.exprs(s.Tag, env)
		w.block(s.Body.List, env)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, env)
		w.stmt(s.Assign, env)
		w.block(s.Body.List, env)
	case *ast.SelectStmt:
		w.block(s.Body.List, env)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.exprs(e, env)
		}
		w.block(s.Body, env)
	case *ast.CommClause:
		w.stmt(s.Comm, env)
		w.block(s.Body, env)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, env)
	case *ast.GoStmt:
		if env.anyNonNil() {
			w.pass.Reportf(s.Pos(), "goroutine spawned in an instrumented (sim != nil) branch; sim runs model one CPU and must stay strictly serial")
		}
		w.exprs(s.Call, env)
	case *ast.DeferStmt:
		w.exprs(s.Call, env)
	default:
		// Leaf statements (expressions, assignments, returns, sends,
		// declarations): scan their expressions.
		w.exprs(s, env)
	}
}

// exprs scans an expression tree (or leaf statement) for calls,
// entering closure bodies with the surrounding facts — a closure in a
// native-only region still must not touch the simulator.
func (w *walker) exprs(n ast.Node, env facts) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			w.block(c.Body.List, env)
			return false
		case *ast.CallExpr:
			w.call(c, env)
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr, env facts) {
	fn := monet.Callee(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}

	// Nil-deref direction: sim.Method() where this region proved sim nil.
	if sig := fn.Signature(); sig.Recv() != nil && monet.IsSimPtr(sig.Recv().Type()) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if k := exprKey(w.pass.TypesInfo, sel.X); k != "" {
				if nonNil, known := env[k]; known && !nonNil {
					w.pass.Reportf(call.Pos(), "sim.%s called in a native-only (sim == nil) branch: guaranteed nil dereference; move the charge into the instrumented path", fn.Name())
				}
			}
		}
	}

	if !env.anyNonNil() {
		return
	}
	// Serial-purity direction: fan-outs and native-only kernels are
	// barred from instrumented regions.
	if monet.IsPkgFunc(fn, "core") && fanOutFuncs[fn.Name()] {
		w.pass.Reportf(call.Pos(), "core.%s fans out over the worker pool inside a sim != nil branch; instrumented runs must stay strictly serial", fn.Name())
		return
	}
	if monet.IsPkgFunc(fn, "dsm") && strings.HasSuffix(fn.Name(), "Pos") {
		w.pass.Reportf(call.Pos(), "native-only kernel dsm.%s called in a sim != nil branch; it mirrors nothing into the simulator — use the materializing operators", fn.Name())
		return
	}
	if sig := fn.Signature(); sig != nil {
		params := sig.Params()
		for i, arg := range call.Args {
			pi := i
			if sig.Variadic() && pi >= params.Len() {
				pi = params.Len() - 1
			}
			if pi >= params.Len() {
				break
			}
			if monet.IsOptions(params.At(pi).Type()) && !isSerialCall(w.pass.TypesInfo, arg) {
				w.pass.Reportf(arg.Pos(), "core.Options passed in a sim != nil branch must be a direct core.Serial(); instrumented runs must stay strictly serial")
			}
		}
	}
}

// isSerialCall reports whether e is a direct core.Serial() call.
func isSerialCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := monet.Callee(info, call)
	return monet.IsPkgFunc(fn, "core") && fn.Name() == "Serial"
}

// classify derives nil-ness facts from a branch condition: facts that
// hold inside the body, and facts that hold when the condition is
// false (the else branch, or the rest of the block after an early
// exit).
func (w *walker) classify(cond ast.Expr) (bodyFacts, elseFacts facts) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ, token.EQL:
			k, ok := w.simNilComparison(e)
			if !ok {
				return nil, nil
			}
			if e.Op == token.NEQ {
				return facts{k: true}, facts{k: false}
			}
			return facts{k: false}, facts{k: true}
		case token.LAND:
			// a && b: both hold in the body; the negation proves nothing.
			bx, _ := w.classify(e.X)
			by, _ := w.classify(e.Y)
			return merged(bx, by), nil
		case token.LOR:
			// a || b: the body proves nothing; ¬(a||b) = ¬a && ¬b.
			_, ex := w.classify(e.X)
			_, ey := w.classify(e.Y)
			return nil, merged(ex, ey)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b, el := w.classify(e.X)
			return el, b
		}
	}
	return nil, nil
}

// simNilComparison matches `simExpr OP nil` (either side) where
// simExpr has type *memsim.Sim and a stable key.
func (w *walker) simNilComparison(e *ast.BinaryExpr) (key string, ok bool) {
	info := w.pass.TypesInfo
	for _, pair := range [2][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
		simSide, nilSide := pair[0], pair[1]
		if id, isIdent := ast.Unparen(nilSide).(*ast.Ident); !isIdent || id.Name != "nil" {
			continue
		}
		t := info.TypeOf(simSide)
		if t == nil || !monet.IsSimPtr(t) {
			continue
		}
		if k := exprKey(info, simSide); k != "" {
			return k, true
		}
	}
	return "", false
}

// exprKey canonicalizes an ident or selector chain (sim, ctx.sim,
// o.ctx.sim) so the same variable compares equal across mentions;
// anything else gets no key and therefore no facts.
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("v%p", obj)
	case *ast.SelectorExpr:
		base := exprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// terminates reports whether a block certainly transfers control away
// (return, branch, or panic as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
