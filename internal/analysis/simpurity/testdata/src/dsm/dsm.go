// Stub of the dsm kernel naming shape simpurity keys on: the *Pos
// suffix marks the native-only pipeline kernels.
package dsm

func FilterRangePos(pos []int32) []int32 { return pos }

func Materialize(pos []int32) []int32 { return pos }
