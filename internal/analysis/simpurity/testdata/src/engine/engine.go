// Fixture for the simpurity analyzer: instrumented (sim != nil)
// regions must stay serial and mirrored; native (sim == nil) regions
// must never touch the simulator.
package engine

import (
	"core"
	"dsm"
	"memsim"
)

func work() {}

func useOpts(o core.Options, n int) {}

func spawnInSim(sim *memsim.Sim) {
	if sim != nil {
		go work() // want "goroutine spawned in an instrumented"
	}
	go work() // no facts here: not flagged
}

func fanOutInSim(sim *memsim.Sim) {
	if sim != nil {
		core.ForEach(2, 8, func(w, i int) {}) // want "fans out over the worker pool"
	}
	core.ForEach(2, 8, func(w, i int) {})
}

func morselsInSim(sim *memsim.Sim) {
	if sim != nil {
		core.ForMorsels(2, 8, func(m, lo, hi int) {}) // want "fans out over the worker pool"
	}
}

func nativeKernelInSim(sim *memsim.Sim, pos []int32) []int32 {
	if sim != nil {
		return dsm.FilterRangePos(pos) // want "native-only kernel dsm.FilterRangePos"
	}
	return dsm.FilterRangePos(pos)
}

// Materialize has no Pos suffix: calling it under sim is the intended
// mirrored path.
func materializeInSim(sim *memsim.Sim, pos []int32) []int32 {
	if sim != nil {
		return dsm.Materialize(pos)
	}
	return pos
}

func optionsInSim(sim *memsim.Sim, opt core.Options) {
	if sim != nil {
		useOpts(opt, 1)              // want "must be a direct core.Serial"
		useOpts(core.Parallel(4), 1) // want "must be a direct core.Serial"
		useOpts(core.Serial(), 1)
	}
	useOpts(opt, 1)
}

func nilDeref(sim *memsim.Sim) {
	if sim == nil {
		sim.AddCPU(1, 2) // want "guaranteed nil dereference"
	}
}

// instrumentedCharge pins the intended mirrored-charge shape.
func instrumentedCharge(sim *memsim.Sim) {
	if sim != nil {
		sim.AddCPU(1, 2)
		sim.Read(0, 8)
	}
}

// earlyReturn pins flow narrowing: after the sim == nil early exit,
// the remainder of the function is an instrumented region.
func earlyReturn(sim *memsim.Sim) {
	if sim == nil {
		return
	}
	go work() // want "goroutine spawned in an instrumented"
}

// orNegation pins ¬(a||b) = ¬a && ¬b: the else branch of
// `sim != nil || n <= 1` proves sim == nil.
func orNegation(sim *memsim.Sim, n int) {
	if sim != nil || n <= 1 {
		work()
	} else {
		sim.AddCPU(1, 2) // want "guaranteed nil dereference"
	}
}

// fieldSim pins selector-chain tracking (ctx.sim-style handles).
type ctx struct{ sim *memsim.Sim }

func fieldSim(c *ctx) {
	if c.sim != nil {
		go work() // want "goroutine spawned in an instrumented"
	}
}

// closureInherits pins that a closure body inherits the region facts
// of its surrounding branch.
func closureInherits(sim *memsim.Sim) func() {
	if sim == nil {
		return func() {
			sim.AddCPU(1, 2) // want "guaranteed nil dereference"
		}
	}
	return work
}

func allowedSpawn(sim *memsim.Sim) {
	if sim != nil {
		//monet:allow simpurity replay goroutine drains a recorded trace, charges nothing
		go work()
	}
}
