// Stub of the simulator handle shape simpurity keys on: a named type
// Sim in a package named memsim, with pointer-receiver methods.
package memsim

type Sim struct{}

func (s *Sim) AddCPU(n int, w float64) {}

func (s *Sim) Read(addr uint64, size int) {}
