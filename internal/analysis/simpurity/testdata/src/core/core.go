// Stub of the core worker-pool API shape simpurity keys on: the
// Options type, the Serial constructor, and the fan-out entry points.
package core

type Options struct{ Parallelism int }

func Serial() Options { return Options{Parallelism: 1} }

func Parallel(n int) Options { return Options{Parallelism: n} }

func ForEach(workers, n int, body func(w, i int)) {}

func ForMorsels(workers, n int, body func(m, lo, hi int)) {}
