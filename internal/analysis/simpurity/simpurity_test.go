package simpurity_test

import (
	"testing"

	"monetlite/internal/analysis/framework/analysistest"
	"monetlite/internal/analysis/simpurity"
)

func TestSimpurity(t *testing.T) {
	analysistest.Run(t, simpurity.Analyzer, "engine")
}
