package detorder_test

import (
	"testing"

	"monetlite/internal/analysis/detorder"
	"monetlite/internal/analysis/framework/analysistest"
)

func TestDetorder(t *testing.T) {
	analysistest.Run(t, detorder.Analyzer, "engine", "mathx")
}
