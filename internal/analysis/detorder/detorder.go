// Package detorder flags iteration-order-dependent constructs in the
// packages that build results, OID lists, group orders and merge
// orders (engine, agg, dsm). The engine's contract since PR 3 is that
// every result is byte-identical to its serial run at any worker
// count; a `range` over a map (or the maps.Keys/Values/All iterators)
// is the canonical way to break that silently — group rows appear in
// random order, float sums associate differently run to run, EXPLAIN
// output flaps. Iterate a slice, or a sorted copy of the keys, or
// justify the site with //monet:allow detorder.
package detorder

import (
	"go/ast"
	"go/types"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "detorder",
	Doc:  "flag nondeterministic iteration order (map range, maps.Keys/Values/All) in result-order-bearing packages",
	Run:  run,
}

var mapsIterFuncs = map[string]bool{"Keys": true, "Values": true, "All": true}

func run(pass *framework.Pass) error {
	if !monet.OrderedPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "range over map has nondeterministic order; package %s builds result/merge orders that must be byte-identical across runs — iterate a slice or a sorted key list", pass.Pkg.Name())
				}
			case *ast.CallExpr:
				if fn := monet.Callee(pass.TypesInfo, n); monet.IsPkgFunc(fn, "maps") && mapsIterFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "maps.%s yields keys in nondeterministic order; iterate a slice or a sorted key list", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
