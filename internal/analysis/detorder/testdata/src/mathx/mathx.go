// Fixture control: mathx is not an ordered package, so the same map
// range that engine.go seeds must produce no finding here.
package mathx

func sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
