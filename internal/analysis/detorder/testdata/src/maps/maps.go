// Stub of the maps iterator API shape detorder keys on; the real
// package returns iter.Seq values, but only the package name and
// function names matter to the analyzer.
package maps

func Keys[M ~map[K]V, K comparable, V any](m M) []K { return nil }

func Values[M ~map[K]V, K comparable, V any](m M) []V { return nil }

func All[M ~map[K]V, K comparable, V any](m M) M { return m }
