// Fixture for the detorder analyzer: package "engine" is in the
// ordered set, so map-order iteration is banned here.
package engine

import "maps"

func mapRange(m map[string]int) int {
	s := 0
	for _, v := range m { // want "range over map has nondeterministic order"
		s += v
	}
	return s
}

func mapsKeys(m map[string]int) int {
	n := 0
	for range maps.Keys(m) { // want "maps.Keys yields keys in nondeterministic order"
		n++
	}
	return n
}

func mapsValues(m map[string]int) []int {
	return maps.Values(m) // want "maps.Values yields keys in nondeterministic order"
}

// sliceRange pins the compliant form: slices iterate in index order.
func sliceRange(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// sortedKeys pins the justified-allow form: the keys are sorted
// immediately after collection, so the map order never escapes.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//monet:allow detorder keys are sorted immediately below, map order never escapes
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
