// Package monet holds the small shared vocabulary of the monetvet
// analyzers: how a function is marked as a hot kernel, which packages
// the engine treats as hot, and how the engine's load-bearing types
// (memsim.Sim, bat.Oid, core.Options) are recognized.
//
// Types and packages are identified by package *name* plus type name
// rather than full import path, so the analyzers work unchanged on
// the real tree (monetlite/internal/memsim) and on the analysistest
// fixture stubs (testdata/src/memsim). Within this module those names
// are unambiguous.
package monet

import (
	"go/ast"
	"go/types"
	"strings"
)

// KernelDirective marks a function whose body must stay
// allocation-free and cache-resident: the dsm *Pos kernels, the core
// radix-cluster scatter kernels, the agg partition aggregator. The
// hotalloc analyzer enforces it.
const KernelDirective = "monet:kernel"

// IsKernel reports whether fn carries a //monet:kernel directive in
// its doc comment.
func IsKernel(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == KernelDirective || strings.HasPrefix(text, KernelDirective+" ") {
			return true
		}
	}
	return false
}

// HotPackages are the packages whose inner loops carry the engine's
// throughput; noreflect bans reflection-driven constructs here
// outright.
var HotPackages = map[string]bool{
	"core":    true,
	"dsm":     true,
	"agg":     true,
	"hashtab": true,
	"sel":     true,
	"scan":    true,
	"sortx":   true,
}

// OrderedPackages are the packages that construct results, OID lists,
// group orders and merge orders; detorder bans iteration-order-
// dependent constructs here because any of them can silently break
// the byte-identical-at-any-worker-count guarantee.
var OrderedPackages = map[string]bool{
	"engine": true,
	"agg":    true,
	"dsm":    true,
}

// Callee resolves the static callee of call, or nil for calls through
// function values, type conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if fid, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = fid
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is a package-level function (or method)
// of a package with the given name.
func IsPkgFunc(fn *types.Func, pkgName string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == pkgName
}

// IsNamed reports whether t (after unaliasing) is the named type
// pkgName.typeName.
func IsNamed(t types.Type, pkgName, typeName string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// IsSimPtr reports whether t is *memsim.Sim, the simulator handle
// whose nil-ness separates instrumented from native execution.
func IsSimPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	return ok && IsNamed(ptr.Elem(), "memsim", "Sim")
}

// IsOidSlice reports whether t is []bat.Oid, the selection-vector
// type for which nil and empty mean different things to consumers.
func IsOidSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).(*types.Slice)
	return ok && IsNamed(sl.Elem(), "bat", "Oid")
}

// IsOptions reports whether t is core.Options, the worker-pool
// fan-out configuration.
func IsOptions(t types.Type) bool {
	return IsNamed(t, "core", "Options")
}

// A WorkerPool describes one of the engine's fan-out entry points:
// which argument is the worker-body closure, and which of that
// closure's parameters are per-unit identifiers (worker slot, morsel
// index, partition/task index). A store inside the body that is
// indexed by a value derived from an identifier parameter is
// worker-local by the pool's contract; anything else it writes to
// captured state is a candidate race.
type WorkerPool struct {
	// BodyArg is the zero-based index of the closure argument among
	// the call's non-receiver arguments.
	BodyArg int
	// IDParams are the zero-based closure-parameter indices that
	// identify the unit of work (all of them are exclusive per
	// concurrent invocation).
	IDParams []int
}

// WorkerPools maps the fan-out functions of internal/core and
// internal/engine — recognized by bare function/method name, like the
// rest of monetvet's vocabulary, so fixture stubs work — to the shape
// of their worker bodies.
var WorkerPools = map[string]WorkerPool{
	// core: ForEach(workers, n, body func(w, i int))
	"ForEach": {BodyArg: 2, IDParams: []int{0, 1}},
	// core: ForEachSpan(workers, n, rec, body func(w, i int))
	"ForEachSpan": {BodyArg: 3, IDParams: []int{0, 1}},
	// core: ForMorsels(workers, n, body func(m, lo, hi int))
	"ForMorsels": {BodyArg: 2, IDParams: []int{0, 1, 2}},
	// core: forEachIndex(workers, n, body func(w, i int))
	"forEachIndex": {BodyArg: 2, IDParams: []int{0, 1}},
	// core: runTasks(workers, tasks, body func(w int, t *joinTask)) —
	// the task pointer is exclusive to one worker while it runs.
	"runTasks": {BodyArg: 2, IDParams: []int{0, 1}},
	// engine: (*execCtx).forMorsels(n, body func(w, m, lo, hi int))
	"forMorsels": {BodyArg: 1, IDParams: []int{0, 1, 2, 3}},
	// engine: (*execCtx).forMorselsErr(n, body func(w, m, lo, hi int) error)
	"forMorselsErr": {BodyArg: 1, IDParams: []int{0, 1, 2, 3}},
}

// IsSyncLock reports whether call is mu.Lock() on a sync.Mutex or
// sync.RWMutex (write lock only — RLock does not license stores).
func IsSyncLock(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Lock" {
		return false
	}
	t := info.TypeOf(sel.X)
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return IsNamed(t, "sync", "Mutex") || IsNamed(t, "sync", "RWMutex")
}
