package nonnilsel_test

import (
	"testing"

	"monetlite/internal/analysis/framework/analysistest"
	"monetlite/internal/analysis/nonnilsel"
)

func TestNonnilsel(t *testing.T) {
	analysistest.Run(t, nonnilsel.Analyzer, "selx")
}
