// Stub of the bat.Oid shape nonnilsel keys on.
package bat

type Oid uint32
