// Fixture for the nonnilsel analyzer: nil selection vectors read as
// "all rows" downstream, so every nil escape shape must be flagged.
package selx

import "bat"

type errOops struct{}

func (errOops) Error() string { return "oops" }

var errBad error = errOops{}

func retNil(empty bool) []bat.Oid {
	if empty {
		return nil // want "selection vector returned as nil on a non-error path"
	}
	return []bat.Oid{1}
}

func retNilNilErr(empty bool) ([]bat.Oid, error) {
	if empty {
		return nil, nil // want "selection vector returned as nil on a non-error path"
	}
	return []bat.Oid{}, nil
}

// retNilWithErr pins the error convention: a nil vector beside a
// non-nil error is fine.
func retNilWithErr(fail bool) ([]bat.Oid, error) {
	if fail {
		return nil, errBad
	}
	return []bat.Oid{}, nil
}

func naked(n int) (out []bat.Oid, err error) {
	if n == 0 {
		return // want "naked return with named"
	}
	out = append(out, bat.Oid(n))
	return out, nil
}

func nilOriginLocal(vals []int32, lo, hi int32) []bat.Oid {
	var out []bat.Oid
	for i, v := range vals {
		if v >= lo && v <= hi {
			out = append(out, bat.Oid(i))
		}
	}
	return out // want "starts nil"
}

// reassignedLocal pins that a later make resets the nil origin.
func reassignedLocal(vals []int32) []bat.Oid {
	var out []bat.Oid
	out = make([]bat.Oid, 0, len(vals))
	for i := range vals {
		out = append(out, bat.Oid(i))
	}
	return out
}

// initializedLocal pins the intended fix shape.
func initializedLocal(vals []int32) []bat.Oid {
	out := []bat.Oid{}
	for i := range vals {
		out = append(out, bat.Oid(i))
	}
	return out
}

// closureReturn pins that returns inside a closure are checked against
// the closure's own signature.
func closureReturn() []bat.Oid {
	f := func(ok bool) []bat.Oid {
		if !ok {
			return nil // want "selection vector returned as nil on a non-error path"
		}
		return []bat.Oid{}
	}
	return f(true)
}

// notASelection pins that other slice types are out of scope.
func notASelection(empty bool) []int32 {
	if empty {
		return nil
	}
	return []int32{1}
}

func allowedNil() []bat.Oid {
	//monet:allow nonnilsel caller documented to treat nil as index-absent, not all-rows
	return nil
}
