// Package nonnilsel flags functions that can hand a caller a nil
// selection vector. dsm.GroupAggregate (and several engine operators)
// read a nil []bat.Oid OID list as "all rows" — void-head semantics —
// so a select path that returns nil for an *empty* selection silently
// aggregates the whole table. That is the exact bug PR 5 fixed in
// three dsm select paths; this analyzer keeps the class extinct:
//
//   - `return nil` at a []bat.Oid result position is flagged, unless
//     the statement also returns a non-nil error (error paths may and
//     should return a nil vector);
//   - a naked `return` in a function with a named []bat.Oid result is
//     flagged outright — the named result's zero value is nil, and
//     proving it was reassigned on every path is exactly the kind of
//     reasoning this analyzer exists to replace. Return the vector
//     explicitly: `return []bat.Oid{}, nil`;
//   - `return out` where out is a nil-origin local (`var out []bat.Oid`
//     with no initializer, only ever grown by self-appends) is flagged:
//     when nothing matched, nothing was appended, and the nil escapes.
//     Initialize with `out := []bat.Oid{}` instead.
package nonnilsel

import (
	"go/ast"
	"go/token"
	"go/types"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "nonnilsel",
	Doc:  "flag nil returns of []bat.Oid selection vectors (nil reads as \"all rows\" downstream)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			checkBody(pass, fn.Body, obj.Signature())
		}
	}
	return nil
}

// checkBody walks one function body, recursing into function literals
// with their own signatures (a return inside a closure belongs to the
// closure).
func checkBody(pass *framework.Pass, body *ast.BlockStmt, sig *types.Signature) {
	nilOrigin := collectNilOrigins(pass.TypesInfo, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if litSig, ok := types.Unalias(pass.TypesInfo.TypeOf(n)).(*types.Signature); ok {
				checkBody(pass, n.Body, litSig)
			}
			return false
		case *ast.ReturnStmt:
			checkReturn(pass, n, sig, nilOrigin)
		}
		return true
	})
}

// collectNilOrigins gathers the []bat.Oid locals declared without an
// initializer (`var out []bat.Oid`) whose only mutations are
// self-appends (`out = append(out, ...)`). Such a local is still nil
// whenever the appends never ran — the empty-selection case. Any other
// assignment (a make, a literal, a call result) removes the variable
// from the set.
func collectNilOrigins(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	origins := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure bodies are checked with their own scope
		}
		switch n := n.(type) {
		case *ast.ValueSpec:
			if len(n.Values) != 0 {
				return true
			}
			for _, id := range n.Names {
				if v, ok := info.Defs[id].(*types.Var); ok && monet.IsOidSlice(v.Type()) {
					origins[v] = true
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || !origins[v] {
					continue
				}
				if i < len(n.Rhs) && isSelfAppend(info, n.Rhs[i], v) {
					continue // append(out, ...) keeps nil when nothing matched
				}
				delete(origins, v)
			}
		}
		return true
	})
	return origins
}

// isSelfAppend reports whether e is append(v, ...).
func isSelfAppend(info *types.Info, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[arg] == v
}

func checkReturn(pass *framework.Pass, ret *ast.ReturnStmt, sig *types.Signature, nilOrigin map[*types.Var]bool) {
	results := sig.Results()
	oidIdx := -1
	for i := 0; i < results.Len(); i++ {
		if monet.IsOidSlice(results.At(i).Type()) {
			oidIdx = i
			break
		}
	}
	if oidIdx < 0 {
		return
	}

	if len(ret.Results) == 0 {
		pass.Reportf(ret.Pos(), "naked return with named []bat.Oid result %q: the zero value is nil, which downstream reads as \"all rows\"; return the selection explicitly", resultName(results, oidIdx))
		return
	}
	if len(ret.Results) != results.Len() {
		return // single call-expr return; the callee is checked at its own returns
	}
	expr := ret.Results[oidIdx]
	nilLit := isNilLiteral(pass.TypesInfo, expr)
	origin := nilOriginVar(pass.TypesInfo, expr, nilOrigin)
	if !nilLit && origin == nil {
		return
	}
	// A nil vector alongside a non-nil error is the error convention;
	// nil alongside a nil error is the PR 5 bug class.
	for i := 0; i < results.Len(); i++ {
		if i != oidIdx && isErrorType(results.At(i).Type()) && !isNilLiteral(pass.TypesInfo, ret.Results[i]) {
			return
		}
	}
	if nilLit {
		pass.Reportf(expr.Pos(), "selection vector returned as nil on a non-error path: downstream operators read nil as \"all rows\"; return []bat.Oid{} for an empty selection")
		return
	}
	pass.Reportf(expr.Pos(), "selection vector %q starts nil (var with no initializer) and is only grown by append: an empty selection returns nil, which downstream reads as \"all rows\"; initialize it with []bat.Oid{}", origin.Name())
}

// nilOriginVar returns the variable behind e if it is one of the
// tracked nil-origin locals.
func nilOriginVar(info *types.Info, e ast.Expr, nilOrigin map[*types.Var]bool) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok && nilOrigin[v] {
		return v
	}
	return nil
}

func resultName(results *types.Tuple, i int) string {
	if name := results.At(i).Name(); name != "" {
		return name
	}
	return "_"
}

func isNilLiteral(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
