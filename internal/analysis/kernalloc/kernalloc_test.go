package kernalloc_test

import (
	"testing"

	"monetlite/internal/analysis/framework/analysistest"
	"monetlite/internal/analysis/kernalloc"
)

func TestKernalloc(t *testing.T) {
	analysistest.Run(t, kernalloc.Analyzer, "kern")
}
