// Package kernalloc proves //monet:kernel functions allocation-free
// on their hot paths, going past hotalloc's syntactic in-loop checks
// in three ways:
//
//   - interprocedural: every same-package callee is summarized
//     (does it allocate at all? does it allocate inside its own
//     loops?) and a kernel call site is flagged when it pulls an
//     allocating callee into a loop — or a loop-allocating callee in
//     at any depth. Callees that are themselves //monet:kernel are
//     exempt (they are checked directly); fmt/strconv/sort.Slice
//     calls are treated as allocating on faith.
//   - map operations anywhere in a kernel: creation, indexing,
//     delete, range. Per-tuple hashing and incremental rehashing are
//     exactly what the paper's radix-partitioned structures exist to
//     avoid, so maps are banned from kernels outright, not just when
//     they allocate.
//   - flow-aware escapes: a growing append whose destination was
//     *reassigned* to an unpreallocated slice on some path (hotalloc
//     only examines the declaration), `defer`/`go` statements,
//     capturing closures, and local variables whose address leaves
//     the kernel (returned, or stored through a parameter or package
//     variable).
//
// Out-of-loop allocation of the result buffer (out := make(...,n)
// before the scan loop) stays legal: it is the amortized pattern the
// engine's kernels are built around, and hotalloc already polices
// per-iteration allocation of that kind. Direct in-loop make/new,
// boxing and fmt calls inside the kernel body itself are likewise
// hotalloc's findings; kernalloc deliberately does not duplicate
// them.
package kernalloc

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/framework/ssa"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "kernalloc",
	Doc:  "prove //monet:kernel functions allocation-free on hot paths, interprocedurally",
	Run:  run,
}

func run(pass *framework.Pass) error {
	s := &state{
		pass:  pass,
		info:  pass.TypesInfo,
		decls: make(map[*types.Func]*ast.FuncDecl),
		sums:  make(map[*types.Func]*summary),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					s.decls[obj] = fn
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && monet.IsKernel(fn) {
				s.checkKernel(fn)
			}
		}
	}
	return nil
}

type state struct {
	pass  *framework.Pass
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*summary
}

// summary is the allocation behavior of one non-kernel function:
// whether it may allocate at all, and whether it may allocate once
// per iteration of its own loops. what/loopWhat describe the first
// cause found, for the diagnostic.
type summary struct {
	anyPos   token.Pos
	anyWhat  string
	loopPos  token.Pos
	loopWhat string
	visiting bool
}

func (s *summary) allocsAny() bool  { return s.anyPos.IsValid() }
func (s *summary) allocsLoop() bool { return s.loopPos.IsValid() }

func (s *summary) record(inLoop bool, what string, pos token.Pos) {
	if !s.anyPos.IsValid() {
		s.anyPos, s.anyWhat = pos, what
	}
	if inLoop && !s.loopPos.IsValid() {
		s.loopPos, s.loopWhat = pos, what
	}
}

// checkKernel reports every allocation hazard in one kernel.
func (s *state) checkKernel(fn *ast.FuncDecl) {
	flow := ssa.Build(s.info, fn.Body)
	reassigned := s.unpreallocReassignments(fn)
	sig, _ := s.info.Defs[fn.Name].Type().(*types.Signature)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if len(ssa.FreeVars(s.info, n)) > 0 {
				s.pass.Reportf(n.Pos(),
					"closure captures variables inside kernel %s: a capturing closure allocates per kernel call; hoist it to the caller, pass state as parameters, or annotate //monet:allow kernalloc",
					fn.Name.Name)
			}
		case *ast.DeferStmt:
			s.pass.Reportf(n.Pos(),
				"defer inside kernel %s: defers cost a frame record on the hot path; restructure or annotate //monet:allow kernalloc", fn.Name.Name)
		case *ast.GoStmt:
			s.pass.Reportf(n.Pos(),
				"goroutine launch inside kernel %s allocates a stack per launch; fan out in the caller or annotate //monet:allow kernalloc with the amortization argument", fn.Name.Name)
		case *ast.RangeStmt:
			if t := s.info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					s.pass.Reportf(n.Pos(),
						"range over a map inside kernel %s: per-tuple hashing and random iteration order have no place in a kernel; use the radix/slice structures", fn.Name.Name)
				}
			}
		case *ast.IndexExpr:
			if t := s.info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					s.pass.Reportf(n.Pos(),
						"map indexing inside kernel %s: per-tuple hashing (and possible rehash allocation) on the hot path; use the radix/slice structures or annotate //monet:allow kernalloc", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if t := s.info.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					s.pass.Reportf(n.Pos(), "map literal inside kernel %s", fn.Name.Name)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if ue, ok := ast.Unparen(res).(*ast.UnaryExpr); ok && ue.Op == token.AND {
					if p, ok := ssa.ResolvePath(s.info, ue.X); ok && p.Root != nil && ssa.DeclaredWithin(p.Root, fn) {
						s.pass.Reportf(ue.Pos(),
							"address of local %s escapes kernel %s via return: the local is heap-allocated on every call", p.Root.Name(), fn.Name.Name)
					}
				}
			}
		case *ast.AssignStmt:
			s.checkEscapingAssign(fn, n)
		case *ast.CallExpr:
			s.checkCall(fn, flow, reassigned, n)
		}
		return true
	})
	_ = sig
}

// checkEscapingAssign flags `&local` stored somewhere that outlives
// the kernel frame: through a parameter, a package variable, or any
// field/deref/index path (bare rebinding of another local is fine).
func (s *state) checkEscapingAssign(fn *ast.FuncDecl, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr)
		if !ok || ue.Op != token.AND {
			continue
		}
		src, ok := ssa.ResolvePath(s.info, ue.X)
		if !ok || src.Root == nil || !ssa.DeclaredWithin(src.Root, fn) {
			continue
		}
		dst, ok := ssa.ResolvePath(s.info, n.Lhs[i])
		if !ok || dst.Root == nil {
			continue
		}
		if dst.BareVar && ssa.DeclaredWithin(dst.Root, fn) {
			continue // pointer held in another local: stays on the stack
		}
		s.pass.Reportf(ue.Pos(),
			"address of local %s escapes kernel %s through %s: the local is heap-allocated on every call",
			src.Root.Name(), fn.Name.Name, dst.Root.Name())
	}
}

// checkCall handles append (flow-aware growth), delete, and
// interprocedural allocation through same-package callees.
func (s *state) checkCall(fn *ast.FuncDecl, flow *ssa.Func, reassigned map[*types.Var]token.Pos, call *ast.CallExpr) {
	inLoop := flow.LoopDepthOf(call) > 0

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "append":
			if !inLoop || len(call.Args) == 0 {
				return
			}
			p, ok := ssa.ResolvePath(s.info, call.Args[0])
			if !ok || !p.BareVar || p.Root == nil {
				return
			}
			if pos, ok := reassigned[p.Root]; ok {
				s.pass.Reportf(call.Pos(),
					"append inside kernel %s may grow %s: it was reassigned to an unpreallocated slice at %s, so the loop reallocates; preallocate on every path",
					fn.Name.Name, p.Root.Name(), s.pass.Fset.Position(pos))
			}
			return
		case "delete":
			if len(call.Args) > 0 {
				if t := s.info.TypeOf(call.Args[0]); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						s.pass.Reportf(call.Pos(), "map delete inside kernel %s", fn.Name.Name)
					}
				}
			}
			return
		}
	}

	callee := monet.Callee(s.info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if callee.Pkg() != s.pass.Pkg {
		s.checkForeignCall(fn, call, callee, inLoop)
		return
	}
	decl, ok := s.decls[callee]
	if !ok || monet.IsKernel(decl) {
		return // no body here, or checked in its own right
	}
	sum := s.summarize(callee)
	switch {
	case inLoop && sum.allocsAny():
		s.pass.Reportf(call.Pos(),
			"kernel loop calls %s, which allocates (%s at %s): the allocation repeats per iteration; hoist it, pass a buffer, or mark the callee //monet:kernel and fix it",
			callee.Name(), sum.anyWhat, s.pass.Fset.Position(sum.anyPos))
	case !inLoop && sum.allocsLoop():
		s.pass.Reportf(call.Pos(),
			"kernel %s calls %s, which allocates per iteration of its own loops (%s at %s)",
			fn.Name.Name, callee.Name(), sum.loopWhat, s.pass.Fset.Position(sum.loopPos))
	}
}

// checkForeignCall applies the cross-package denylist: fmt is left to
// hotalloc (which already bans it in kernels); strconv and the
// reflection-driven sort.Slice family allocate by construction.
func (s *state) checkForeignCall(fn *ast.FuncDecl, call *ast.CallExpr, callee *types.Func, inLoop bool) {
	pkg := callee.Pkg().Name()
	switch {
	case pkg == "strconv":
		s.pass.Reportf(call.Pos(), "kernel %s calls strconv.%s, which allocates", fn.Name.Name, callee.Name())
	case pkg == "sort" && (callee.Name() == "Slice" || callee.Name() == "SliceStable"):
		s.pass.Reportf(call.Pos(), "kernel %s calls sort.%s: the closure and reflect-based swapper allocate", fn.Name.Name, callee.Name())
	}
}

// unpreallocReassignments collects locals (including parameters) that
// some plain assignment in fn sets to an unpreallocated slice — the
// flow hazard hotalloc's declaration-only check misses.
func (s *state) unpreallocReassignments(fn *ast.FuncDecl) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || a.Tok != token.ASSIGN || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, lhs := range a.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := s.info.Uses[id].(*types.Var)
			if !ok || !ssa.DeclaredWithin(v, fn) {
				continue
			}
			if s.unpreallocated(a.Rhs[i]) {
				if _, seen := out[v]; !seen {
					out[v] = a.Rhs[i].Pos()
				}
			}
		}
		return true
	})
	return out
}

// unpreallocated reports whether e yields a slice with no usable
// capacity: nil, an empty literal, or make with constant-zero sizes.
func (s *state) unpreallocated(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		if _, ok := s.info.TypeOf(e).Underlying().(*types.Slice); ok {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) < 2 {
			return false
		}
		for _, arg := range e.Args[1:] {
			tv, ok := s.info.Types[arg]
			if !ok || tv.Value == nil || constant.Sign(tv.Value) != 0 {
				return false // runtime or non-zero size: preallocated
			}
		}
		return true
	}
	return false
}

// summarize computes (memoized, cycle-tolerant) the allocation
// summary of a same-package non-kernel function.
func (s *state) summarize(obj *types.Func) *summary {
	if sum, ok := s.sums[obj]; ok {
		return sum // done, or optimistic view of a cycle in progress
	}
	sum := &summary{visiting: true}
	s.sums[obj] = sum
	decl := s.decls[obj]
	if decl == nil || decl.Body == nil {
		sum.visiting = false
		return sum
	}
	flow := ssa.Build(s.info, decl.Body)
	sig, _ := obj.Type().(*types.Signature)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		inLoop := flow.LoopDepthOf(n) > 0
		switch n := n.(type) {
		case *ast.FuncLit:
			if len(ssa.FreeVars(s.info, n)) > 0 {
				sum.record(inLoop, "capturing closure", n.Pos())
			}
		case *ast.GoStmt:
			sum.record(inLoop, "goroutine launch", n.Pos())
		case *ast.CompositeLit:
			switch s.info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				sum.record(inLoop, "composite literal", n.Pos())
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					sum.record(inLoop, "&composite literal", n.Pos())
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := s.info.Types[n]; ok && tv.Value == nil {
					if bt, ok := s.info.TypeOf(n).Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
						sum.record(inLoop, "string concatenation", n.Pos())
					}
				}
			}
		case *ast.IndexExpr:
			if t := s.info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					sum.record(inLoop, "map operation", n.Pos())
				}
			}
		case *ast.RangeStmt:
			if t := s.info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					sum.record(inLoop, "map iteration", n.Pos())
				}
			}
		case *ast.AssignStmt:
			s.summarizeBoxing(sum, flow, n)
		case *ast.ReturnStmt:
			if sig != nil {
				s.summarizeReturnBoxing(sum, flow, sig, n)
			}
		case *ast.CallExpr:
			s.summarizeCall(sum, flow, n)
		}
		return true
	})
	sum.visiting = false
	return sum
}

func (s *state) summarizeCall(sum *summary, flow *ssa.Func, call *ast.CallExpr) {
	inLoop := flow.LoopDepthOf(call) > 0
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			sum.record(inLoop, id.Name, call.Pos())
			return
		case "append":
			if len(call.Args) > 0 {
				if p, ok := ssa.ResolvePath(s.info, call.Args[0]); ok && p.BareVar && p.Root != nil {
					if s.mayGrow(p.Root) {
						sum.record(inLoop, "growing append", call.Pos())
					}
				} else {
					sum.record(inLoop, "append to a non-variable destination", call.Pos())
				}
			}
			return
		}
	}
	callee := monet.Callee(s.info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if callee.Pkg() != s.pass.Pkg {
		switch callee.Pkg().Name() {
		case "fmt", "strconv":
			sum.record(inLoop, callee.Pkg().Name()+"."+callee.Name(), call.Pos())
		case "sort":
			if callee.Name() == "Slice" || callee.Name() == "SliceStable" {
				sum.record(inLoop, "sort."+callee.Name(), call.Pos())
			}
		}
		return
	}
	inner := s.summarize(callee)
	if inner.allocsAny() {
		sum.record(inLoop, inner.anyWhat+" via "+callee.Name(), inner.anyPos)
	}
	if inner.allocsLoop() {
		sum.record(true, inner.loopWhat+" via "+callee.Name(), inner.loopPos)
	}
}

// mayGrow reports whether v's definitions include an unpreallocated
// slice: nil declaration, empty literal, or zero-capacity make. A
// parameter with no local definitions is caller-preallocated by the
// kernel contract.
func (s *state) mayGrow(v *types.Var) bool {
	// Conservative local scan: any declaration or assignment of v to
	// an unpreallocated value anywhere in the package file set.
	grown := false
	for _, f := range s.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if grown {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						obj := s.info.Defs[id]
						if obj == nil {
							obj = s.info.Uses[id]
						}
						if obj == v && s.unpreallocated(n.Rhs[i]) {
							grown = true
						}
						if obj == v && n.Tok == token.DEFINE && s.unpreallocated(n.Rhs[i]) {
							grown = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if s.info.Defs[name] != v {
						continue
					}
					if len(n.Values) == 0 {
						grown = true // var x []T: nil slice
					} else if i < len(n.Values) && s.unpreallocated(n.Values[i]) {
						grown = true
					}
				}
			}
			return true
		})
	}
	return grown
}

// summarizeBoxing records concrete-to-interface assignments.
func (s *state) summarizeBoxing(sum *summary, flow *ssa.Func, a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN || len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		lt := s.info.TypeOf(a.Lhs[i])
		rt := s.info.TypeOf(a.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if isNilExpr(a.Rhs[i]) {
			continue
		}
		if types.IsInterface(lt) && !types.IsInterface(rt) {
			sum.record(flow.LoopDepthOf(a) > 0, "interface boxing", a.Rhs[i].Pos())
		}
	}
}

// summarizeReturnBoxing records concrete values returned as
// interfaces.
func (s *state) summarizeReturnBoxing(sum *summary, flow *ssa.Func, sig *types.Signature, r *ast.ReturnStmt) {
	res := sig.Results()
	if res == nil || len(r.Results) != res.Len() {
		return
	}
	for i, e := range r.Results {
		rt := s.info.TypeOf(e)
		if rt == nil || isNilExpr(e) {
			continue
		}
		if types.IsInterface(res.At(i).Type()) && !types.IsInterface(rt) {
			sum.record(flow.LoopDepthOf(r) > 0, "interface boxing", e.Pos())
		}
	}
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
