// Fixture for kernalloc: interprocedural allocation proofs for
// //monet:kernel functions.
package kern

// newBuf allocates: any kernel loop calling it is flagged.
func newBuf(n int) []int64 {
	return make([]int64, n)
}

// fill allocates inside its own loop: even an out-of-loop kernel call
// is flagged.
func fill(dst [][]int64) {
	for i := range dst {
		dst[i] = make([]int64, 8)
	}
}

var sink any

// box stores a concrete value into an interface: one heap box per
// call.
func box(v int64) {
	sink = v
}

// add is pure: calls to it are free.
func add(a, b int64) int64 {
	return a + b
}

// chain allocates only transitively, through newBuf.
func chain(n int) []int64 {
	return newBuf(n)
}

// cleanKernel appends into the caller's preallocated buffer and calls
// only pure or kernel callees: no findings.
//
//monet:kernel
func cleanKernel(dst, src []int64) []int64 {
	for i := range src {
		dst = append(dst, add(src[i], 1))
	}
	return dst
}

// kernelCallsKernel: //monet:kernel callees are checked directly, not
// summarized.
//
//monet:kernel
func kernelCallsKernel(dst, src []int64) []int64 {
	return cleanKernel(dst, src)
}

// outOfLoopMakeOK: the amortized allocate-once pattern stays legal
// (hotalloc's territory, and it allows it out of loops too).
//
//monet:kernel
func outOfLoopMakeOK(n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, int64(i))
	}
	return out
}

//monet:kernel
func loopCallsAlloc(src []int64) int64 {
	var total int64
	for i := range src {
		b := newBuf(4) // want "kernel loop calls newBuf, which allocates"
		total += b[0] + src[i]
	}
	return total
}

//monet:kernel
func loopCallsAllocTransitively(src []int64) int64 {
	var total int64
	for i := range src {
		b := chain(4) // want "kernel loop calls chain, which allocates"
		total += b[0] + src[i]
	}
	return total
}

//monet:kernel
func callsLoopAlloc(dst [][]int64) {
	fill(dst) // want "allocates per iteration of its own loops"
}

//monet:kernel
func loopBoxes(src []int64) {
	for i := range src {
		box(src[i]) // want "kernel loop calls box, which allocates .interface boxing"
	}
}

//monet:kernel
func mapIndexing(m map[int64]int64, src []int64) {
	for i := range src {
		m[src[i]]++ // want "map indexing inside kernel"
	}
}

//monet:kernel
func mapDelete(m map[int64]int64, k int64) {
	delete(m, k) // want "map delete inside kernel"
}

//monet:kernel
func mapRange(m map[int64]int64) int64 {
	var total int64
	for _, v := range m { // want "range over a map inside kernel"
		total += v
	}
	return total
}

//monet:kernel
func capturingClosure(src []int64) int64 {
	var total int64
	bump := func() { total++ } // want "closure captures variables inside kernel"
	for range src {
		bump()
	}
	return total
}

//monet:kernel
func deferred(src []int64) {
	defer box(0) // want "defer inside kernel"
	_ = src
}

//monet:kernel
func launches(n int) {
	go add(1, 2) // want "goroutine launch inside kernel"
}

//monet:kernel
func escapeViaReturn(n int64) *int64 {
	x := n * 2
	return &x // want "address of local x escapes kernel escapeViaReturn via return"
}

//monet:kernel
func escapeViaParam(out []*int64, n int64) {
	x := n * 2
	out[0] = &x // want "address of local x escapes kernel escapeViaParam through out"
}

// reassignedAppend: the declaration preallocates, so hotalloc is
// happy, but the conditional reassignment to nil makes the loop grow.
//
//monet:kernel
func reassignedAppend(src []int64, huge bool) []int64 {
	dst := make([]int64, 0, 16)
	if huge {
		dst = nil // the flow hazard
	}
	for i := range src {
		dst = append(dst, src[i]) // want "reassigned to an unpreallocated slice"
	}
	return dst
}

// allowedFanOut: the one-goroutine-per-worker launch is amortized
// over the batch; the suppression documents it.
//
//monet:kernel
func allowedFanOut(workers int, body func(w int)) {
	for w := 0; w < workers; w++ {
		go body(w) //monet:allow kernalloc one goroutine per worker per fan-out, amortized over the batch
	}
}
