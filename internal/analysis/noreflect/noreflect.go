// Package noreflect forbids reflection-driven constructs in the hot
// packages (core, dsm, agg, hashtab, sel, scan, sortx): importing
// reflect, the reflection-based sort.Slice family (PR 5 removed one
// from OrderBy; slices.SortFunc is the monomorphic replacement), and
// fmt.Sprintf-built map keys (an allocation plus a hash of a formatted
// string on every probe). These are the constructs that silently turn
// a per-tuple inner loop into interface boxing and dynamic dispatch.
package noreflect

import (
	"go/ast"
	"go/types"
	"strconv"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "noreflect",
	Doc:  "forbid reflect, sort.Slice*, and fmt.Sprintf-keyed maps in the hot packages",
	Run:  run,
}

var sortSliceFuncs = map[string]bool{"Slice": true, "SliceStable": true, "SliceIsSorted": true}

func run(pass *framework.Pass) error {
	if !monet.HotPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "reflect" {
				pass.Reportf(imp.Pos(), "package %s is a hot package; reflection is banned in per-tuple paths", pass.Pkg.Name())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := monet.Callee(pass.TypesInfo, n)
				if monet.IsPkgFunc(fn, "sort") && sortSliceFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "sort.%s sorts through reflection; use slices.Sort or slices.SortFunc (same permutation, monomorphic)", fn.Name())
				}
			case *ast.IndexExpr:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if call, ok := ast.Unparen(n.Index).(*ast.CallExpr); ok {
					if fn := monet.Callee(pass.TypesInfo, call); monet.IsPkgFunc(fn, "fmt") && fn.Name() == "Sprintf" {
						pass.Reportf(n.Index.Pos(), "fmt.Sprintf-keyed map: formats and allocates a string per probe; key on a struct or packed integer instead")
					}
				}
			}
			return true
		})
	}
	return nil
}
