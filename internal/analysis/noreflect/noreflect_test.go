package noreflect_test

import (
	"testing"

	"monetlite/internal/analysis/framework/analysistest"
	"monetlite/internal/analysis/noreflect"
)

func TestNoreflect(t *testing.T) {
	analysistest.Run(t, noreflect.Analyzer, "core", "coldpkg")
}
