// Stub of the fmt API shape noreflect keys on.
package fmt

func Sprintf(format string, args ...any) string { return format }
