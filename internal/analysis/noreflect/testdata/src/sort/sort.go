// Stub of the sort API shape noreflect keys on.
package sort

func Slice(x any, less func(i, j int) bool) {}

func SliceStable(x any, less func(i, j int) bool) {}

func SliceIsSorted(x any, less func(i, j int) bool) bool { return true }

func Ints(x []int) {}
