// Fixture for the noreflect analyzer: package "core" is in the hot
// set, so reflection-driven constructs are banned here.
package core

import (
	"fmt"
	_ "reflect" // want "reflection is banned"
	"sort"
)

func sortThings(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })       // want "sort.Slice sorts through reflection"
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "sort.SliceStable sorts through reflection"
	sort.Ints(xs)
}

func sprintfKey(m map[string]int, a, b int) int {
	return m[fmt.Sprintf("%d/%d", a, b)] // want "fmt.Sprintf-keyed map"
}

type pairKey struct{ a, b int }

// structKey pins the intended replacement for formatted keys.
func structKey(m map[pairKey]int, a, b int) int {
	return m[pairKey{a, b}]
}

func allowedSort(xs []int) {
	//monet:allow noreflect one-shot startup path, never per-tuple
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
