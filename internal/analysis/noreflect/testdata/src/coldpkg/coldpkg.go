// Fixture control: coldpkg is not a hot package, so the same
// constructs core.go seeds must produce no finding here.
package coldpkg

import (
	_ "reflect"
	"sort"
)

func sortThings(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
