// Stub standing in for the real reflect package: noreflect flags the
// import path itself, so the contents are irrelevant.
package reflect

type Value struct{}

func TypeOf(v any) *Value { return nil }
