package costcover_test

import (
	"testing"

	"monetlite/internal/analysis/costcover"
	"monetlite/internal/analysis/framework/analysistest"
)

func TestCostcover(t *testing.T) {
	analysistest.Run(t, costcover.Analyzer, "engine")
}
