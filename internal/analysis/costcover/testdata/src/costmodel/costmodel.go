// Stub of the real costmodel package: costcover recognizes Breakdown
// by package name and type name only.
package costmodel

// Breakdown mirrors the real per-operator cost prediction.
type Breakdown struct {
	Millis float64
	Bytes  int64
}
