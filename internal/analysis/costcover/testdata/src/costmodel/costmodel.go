// Stub of the real costmodel package: costcover recognizes Breakdown
// by package name and type name only, and the raw-pricing rule by the
// Total/Millis method names on it.
package costmodel

// Machine stands in for memsim.Machine in pricing signatures.
type Machine struct {
	Name string
}

// Breakdown mirrors the real per-operator cost prediction.
type Breakdown struct {
	CPUNanos float64
	Bytes    int64
}

// Total prices the breakdown directly on a machine — the raw path the
// costcover rule forbids inside the engine.
func (b Breakdown) Total(m Machine) float64 { return b.CPUNanos }

// Millis is Total in milliseconds.
func (b Breakdown) Millis(m Machine) float64 { return b.Total(m) / 1e6 }
