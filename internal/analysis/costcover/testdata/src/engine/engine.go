// Fixture for costcover: operator/cost/profiler lockstep in an
// engine-shaped package (declares physOp and opTraffic).
package engine

import "costmodel"

type physOp interface {
	label() string
	predicted() costmodel.Breakdown
}

// goodOp is fully wired: opTraffic case, costed, stable label.
type goodOp struct {
	cost costmodel.Breakdown
}

func (o *goodOp) label() string                  { return "Good[scan]" }
func (o *goodOp) predicted() costmodel.Breakdown { return o.cost }

// missingOp implements physOp but opTraffic does not know it.
type missingOp struct { // want "operator missingOp implements physOp but has no case in opTraffic"
	n int
}

func (o *missingOp) label() string                  { return "Missing" }
func (o *missingOp) predicted() costmodel.Breakdown { return costmodel.Breakdown{} }

// uncostedOp carries a cost field that nothing in the package sets.
type uncostedOp struct { // want "operator uncostedOp has a cost costmodel.Breakdown field that nothing in the package sets"
	cost costmodel.Breakdown
}

func (o *uncostedOp) label() string                  { return "Uncosted" }
func (o *uncostedOp) predicted() costmodel.Breakdown { return o.cost }

// dynlabelOp is calibratable but its label is purely dynamic: the
// residual feed would see unbounded keys.
type dynlabelOp struct {
	inner physOp
	cost  costmodel.Breakdown
}

func (o *dynlabelOp) label() string { // want "operator dynlabelOp feeds the calibration residuals"
	return o.inner.label()
}
func (o *dynlabelOp) predicted() costmodel.Breakdown { return o.cost }

// zeroPredOp never feeds calibration (predicted returns the zero
// literal), so its dynamic label is fine.
type zeroPredOp struct {
	inner physOp
}

func (o *zeroPredOp) label() string                  { return o.inner.label() }
func (o *zeroPredOp) predicted() costmodel.Breakdown { return costmodel.Breakdown{} }

// partsLabelOp builds its label dynamically but anchors it with a
// literal operator name, like the real pipelineOp.
type partsLabelOp struct {
	extra string
	cost  costmodel.Breakdown
}

func (o *partsLabelOp) label() string {
	s := "Parts"
	s += "[" + o.extra + "]"
	return s
}
func (o *partsLabelOp) predicted() costmodel.Breakdown { return o.cost }

// adapterOp mirrors the real pipeStageOp: an explain-only wrapper that
// never executes, documented via suppression.
type adapterOp struct { //monet:allow costcover explain-only adapter, never executed by the vector loop
	inner physOp
}

func (o *adapterOp) label() string                  { return o.inner.label() }
func (o *adapterOp) predicted() costmodel.Breakdown { return costmodel.Breakdown{} }

// rawPrice prices operators directly against the machine: both method
// names of the raw path are flagged — calibration corrections would
// silently not apply here.
func rawPrice(op physOp, m costmodel.Machine) float64 {
	ms := op.predicted().Millis(m) // want "raw Breakdown.Millis pricing bypasses costmodel.Model"
	ns := op.predicted().Total(m)  // want "raw Breakdown.Total pricing bypasses costmodel.Model"
	return ms + ns
}

// rawPriceAllowed mirrors the real simulator cross-check tests:
// comparing the uncorrected analytical prediction against measured
// stalls is deliberate, and documented via suppression.
func rawPriceAllowed(op physOp, m costmodel.Machine) float64 {
	//monet:allow costcover simulator cross-check compares the raw analytical prediction
	return op.predicted().Total(m)
}

// stopwatch has a Millis method of its own: only costmodel.Breakdown
// receivers are raw pricing.
type stopwatch struct{ ns float64 }

func (s stopwatch) Millis() float64 { return s.ns / 1e6 }

func elapsed() float64 { return stopwatch{ns: 1e6}.Millis() }

func buildGood(extra string) physOp {
	g := &goodOp{cost: costmodel.Breakdown{CPUNanos: 1}}
	d := &dynlabelOp{inner: g}
	d.cost = g.cost
	p := &partsLabelOp{extra: extra}
	p.cost = g.cost
	return d
}

func opTraffic(op physOp) int64 {
	switch o := op.(type) {
	case *goodOp:
		return o.cost.Bytes
	case *uncostedOp:
		return o.cost.Bytes
	case *dynlabelOp:
		return opTraffic(o.inner)
	case *zeroPredOp:
		return opTraffic(o.inner)
	case *partsLabelOp:
		return 0
	case *adapterOp:
		return opTraffic(o.inner)
	}
	return 0
}
