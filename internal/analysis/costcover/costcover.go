// Package costcover keeps the engine's physical operators, its cost
// model and its profiler in lockstep. It activates only in packages
// shaped like the engine — an interface named physOp plus a function
// named opTraffic — and then enforces:
//
//   - coverage: every named type implementing physOp must appear as a
//     case in opTraffic's type switch. An operator without traffic
//     accounting silently contributes zero bytes to EXPLAIN ANALYZE
//     and corrupts the calibration feed. (Operators that genuinely
//     never execute — adapters — carry //monet:allow costcover on
//     their type declaration.)
//   - costed operators are really costed: an implementer with a
//     `cost costmodel.Breakdown` field must have that field set
//     somewhere in the package (composite-literal key or assignment);
//     a cost field nothing writes means the planner grew an operator
//     without teaching the cost model about it.
//   - calibratable operators have stable kinds: if predicted()
//     returns a stored breakdown (not the zero literal), the
//     operator feeds costmodel.Residuals, which keys residuals by
//     kindOf(label()). Its label() must therefore contain a string
//     literal with a non-empty prefix before any % verb — a purely
//     dynamic label (fmt.Sprintf("%v", ...) or delegation with no
//     literal at all) would scatter one operator's residuals across
//     unbounded keys and starve the self-tuning feed.
//   - no raw pricing: engine code must never price a Breakdown
//     directly against a machine (Breakdown.Total / Breakdown.Millis).
//     Raw machine pricing bypasses costmodel.Model and with it the
//     learned per-operator-kind corrections, so a calibrated host
//     would plan some decisions on corrected numbers and others on
//     uncorrected ones. Every pricing site goes through
//     Model.Nanos/Model.Millis; deliberate raw comparisons (simulator
//     cross-checks) carry //monet:allow costcover.
//
// Adding an operator now fails lint until cost.go, profile.go and the
// Residuals feed all know about it — exactly the "silent
// mis-prediction" failure mode this analyzer exists to close.
package costcover

import (
	"go/ast"
	"go/types"
	"strings"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "costcover",
	Doc:  "every physOp implementer must be covered by opTraffic, cost fields must be set, calibratable labels must be stable",
	Run:  run,
}

func run(pass *framework.Pass) error {
	iface := findInterface(pass.Pkg, "physOp")
	if iface == nil {
		return nil // not an engine-shaped package
	}
	traffic := findFuncDecl(pass.Files, "opTraffic")

	impls := implementers(pass.Pkg, iface)
	if traffic == nil {
		if len(impls) > 0 {
			pass.Reportf(impls[0].Obj().Pos(),
				"package declares physOp implementers but no opTraffic function: EXPLAIN ANALYZE has no traffic accounting for any operator")
		}
		return nil
	}
	covered := caseTypes(pass.TypesInfo, traffic)
	checkRawPricing(pass)

	for _, named := range impls {
		obj := named.Obj()
		if !covered[obj] {
			pass.Reportf(obj.Pos(),
				"operator %s implements physOp but has no case in opTraffic: its memory traffic is invisible to EXPLAIN ANALYZE and the calibration feed; add a case (or //monet:allow costcover if it provably never executes)",
				obj.Name())
		}
		checkCostField(pass, named)
		checkLabelStability(pass, named)
	}
	return nil
}

// checkRawPricing flags calls that price a costmodel.Breakdown
// directly against a machine — Breakdown.Total or Breakdown.Millis.
// Inside the engine every such site must go through costmodel.Model
// (Nanos/Millis), which applies the learned per-operator-kind
// corrections on top of the machine's analytical cost; a raw call
// silently ignores calibration.
func checkRawPricing(pass *framework.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Total" && sel.Sel.Name != "Millis") {
				return true
			}
			t := pass.TypesInfo.TypeOf(sel.X)
			if t == nil {
				return true
			}
			if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if monet.IsNamed(t, "costmodel", "Breakdown") {
				pass.Reportf(call.Pos(),
					"raw Breakdown.%s pricing bypasses costmodel.Model: the learned per-kind corrections never apply at this site; price through Model.Nanos/Model.Millis (or //monet:allow costcover for a deliberate simulator cross-check)",
					sel.Sel.Name)
			}
			return true
		})
	}
}

// findInterface returns the interface type named name declared at
// package scope, or nil.
func findInterface(pkg *types.Package, name string) *types.Interface {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// findFuncDecl returns the function or method declaration with the
// given name.
func findFuncDecl(files []*ast.File, name string) *ast.FuncDecl {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name && fn.Body != nil {
				return fn
			}
		}
	}
	return nil
}

// implementers returns the package-scope named struct types whose
// value or pointer type implements iface.
func implementers(pkg *types.Package, iface *types.Interface) []*types.Named {
	var out []*types.Named
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if ok && !tn.IsAlias() {
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				continue
			}
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				out = append(out, named)
			}
		}
	}
	return out
}

// caseTypes collects the named types listed in the type-switch cases
// of fn.
func caseTypes(info *types.Info, fn *ast.FuncDecl) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, cc := range ts.Body.List {
			for _, e := range cc.(*ast.CaseClause).List {
				t := info.TypeOf(e)
				if t == nil {
					continue
				}
				if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := types.Unalias(t).(*types.Named); ok {
					out[named.Obj()] = true
				}
			}
		}
		return true
	})
	return out
}

// checkCostField verifies that an implementer with a cost
// costmodel.Breakdown field has that field set somewhere in the
// package.
func checkCostField(pass *framework.Pass, named *types.Named) {
	st := named.Underlying().(*types.Struct)
	hasCost := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "cost" && monet.IsNamed(f.Type(), "costmodel", "Breakdown") {
			hasCost = true
			break
		}
	}
	if !hasCost {
		return
	}
	if costFieldSet(pass, named) {
		return
	}
	pass.Reportf(named.Obj().Pos(),
		"operator %s has a cost costmodel.Breakdown field that nothing in the package sets: the planner produces it with a zero prediction, so EXPLAIN compares actuals against nothing; cost it in the planner or drop the field",
		named.Obj().Name())
}

// costFieldSet scans the package for `cost:` composite-literal keys
// on the type or assignments through a T/*T-typed expression to a
// field named cost.
func costFieldSet(pass *framework.Pass, named *types.Named) bool {
	found := false
	isT := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
			t = ptr.Elem()
		}
		n, ok := types.Unalias(t).(*types.Named)
		return ok && n.Obj() == named.Obj()
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isT(pass.TypesInfo.TypeOf(n)) {
					return true
				}
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "cost" {
							found = true
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if ok && sel.Sel.Name == "cost" && isT(pass.TypesInfo.TypeOf(sel.X)) {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}

// checkLabelStability flags calibratable operators (predicted()
// returns a stored breakdown) whose label() carries no stable literal
// prefix for kindOf to key residuals on.
func checkLabelStability(pass *framework.Pass, named *types.Named) {
	pred := methodDecl(pass, named, "predicted")
	if pred == nil || !calibratable(pred) {
		return
	}
	lab := methodDecl(pass, named, "label")
	if lab == nil {
		return
	}
	stable := false
	ast.Inspect(lab.Body, func(n ast.Node) bool {
		if stable {
			return false
		}
		if bl, ok := n.(*ast.BasicLit); ok && bl.Kind.String() == "STRING" {
			text := strings.Trim(bl.Value, "`\"")
			if prefix, _, _ := strings.Cut(text, "%"); strings.TrimSpace(prefix) != "" {
				stable = true
			}
		}
		return true
	})
	if !stable {
		pass.Reportf(lab.Pos(),
			"operator %s feeds the calibration residuals (predicted() returns a stored breakdown) but label() has no stable literal prefix: kindOf would key its residuals on unbounded dynamic strings; start the label with a fixed operator name",
			named.Obj().Name())
	}
}

// methodDecl finds the declaration of the method with the given name
// on T or *T.
func methodDecl(pass *framework.Pass, named *types.Named, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != name || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
			if t == nil {
				continue
			}
			if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if n, ok := types.Unalias(t).(*types.Named); ok && n.Obj() == named.Obj() {
				return fn
			}
		}
	}
	return nil
}

// calibratable reports whether predicted()'s returns include anything
// beyond the zero costmodel.Breakdown{} literal.
func calibratable(pred *ast.FuncDecl) bool {
	result := false
	ast.Inspect(pred.Body, func(n ast.Node) bool {
		r, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range r.Results {
			cl, isLit := ast.Unparen(e).(*ast.CompositeLit)
			if !isLit || len(cl.Elts) > 0 {
				result = true
			}
		}
		return true
	})
	return result
}
