package morselrace_test

import (
	"testing"

	"monetlite/internal/analysis/framework/analysistest"
	"monetlite/internal/analysis/morselrace"
)

func TestMorselrace(t *testing.T) {
	analysistest.Run(t, morselrace.Analyzer, "worker")
}
