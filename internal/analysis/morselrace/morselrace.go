// Package morselrace is a domain-specific race detector for the
// engine's worker-pool idiom. The contract of core.ForEach,
// core.ForEachSpan, core.ForMorsels, core.runTasks and the engine's
// forMorsels wrappers is that the body closure touches only state
// local to its identifier parameters (worker slot, morsel index,
// task index); everything else the closure captures is shared across
// concurrently running workers. The analyzer flags stores to captured
// state inside a worker body unless it can prove one of:
//
//   - the store is indexed by an expression derived (transitively,
//     via the function's definition chains) from an identifier
//     parameter — the per-worker-slot / per-morsel pattern, e.g.
//     counts[w] = c or errs[m] = err;
//   - the store goes through a local alias of such a slot — the
//     per-worker arena pattern, e.g. cur := counts[w]; cur[d]++;
//   - a mu.Lock() on a sync.Mutex/RWMutex dominates the store within
//     the closure's control-flow graph.
//
// Raw `go func(...){...}(...)` statements get the same treatment with
// the literal's parameters (and the per-iteration loop variables of
// enclosing loops, per Go ≥1.22 semantics) as identifier seeds.
//
// Known soft spots, on purpose: method calls on captured receivers
// are not analyzed (mutating methods like append-style setters can
// hide a race; the dynamic -race CI job remains the backstop for
// those), and stores whose destination is reached through a call
// result are skipped. Both trade missed exotic races for zero noise
// on the engine's real fan-outs.
package morselrace

import (
	"go/ast"
	"go/token"
	"go/types"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/framework/ssa"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "morselrace",
	Doc:  "flag writes to shared captured state inside worker-pool closures",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{
				pass:     pass,
				info:     pass.TypesInfo,
				defs:     ssa.Definitions(pass.TypesInfo, fn.Body),
				litSeeds: make(map[*ast.FuncLit]map[*types.Var]bool),
			}
			c.scan(fn.Body)
		}
	}
	return nil
}

type checker struct {
	pass *framework.Pass
	info *types.Info
	// defs is the enclosing function's flow-insensitive definition
	// set; seeds and aliases resolve against it.
	defs *ssa.DefSet
	// litSeeds records the identifier seeds of every recognized
	// worker-body literal, so a body nested inside another body
	// unions the enclosing identifiers into its own.
	litSeeds map[*ast.FuncLit]map[*types.Var]bool
}

// scan walks a function body keeping a node stack, dispatching every
// recognized worker body to check.
func (c *checker) scan(body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ids, ok := c.workerBody(n); ok {
				c.check(lit, ids, stack)
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				c.check(lit, c.goSeeds(lit, stack), stack)
			}
		}
		return true
	})
}

// workerBody matches call against the engine's fan-out vocabulary and
// returns the body literal plus its identifier parameters.
func (c *checker) workerBody(call *ast.CallExpr) (*ast.FuncLit, []*types.Var, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return nil, nil, false
	}
	pool, ok := monet.WorkerPools[name]
	if !ok || monet.Callee(c.info, call) == nil {
		return nil, nil, false
	}
	if pool.BodyArg >= len(call.Args) {
		return nil, nil, false
	}
	lit, ok := ast.Unparen(call.Args[pool.BodyArg]).(*ast.FuncLit)
	if !ok {
		return nil, nil, false // body passed by name: analyzed where the literal is written
	}
	params := litParams(c.info, lit)
	var ids []*types.Var
	for _, i := range pool.IDParams {
		if i < len(params) && params[i] != nil {
			ids = append(ids, params[i])
		}
	}
	return lit, ids, true
}

// goSeeds returns the identifier seeds for a raw goroutine body: all
// of the literal's parameters (values passed at launch are snapshots)
// plus the per-iteration variables of enclosing for/range statements.
func (c *checker) goSeeds(lit *ast.FuncLit, stack []ast.Node) []*types.Var {
	seeds := litParams(c.info, lit)
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, l := range init.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						if v, ok := c.info.Defs[id].(*types.Var); ok {
							seeds = append(seeds, v)
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := c.info.Defs[id].(*types.Var); ok {
						seeds = append(seeds, v)
					}
				}
			}
		}
	}
	return seeds
}

func litParams(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// check analyzes one worker-body literal: every store in it (and in
// plain nested closures, which run inline on the same worker) must be
// provably local to the identifier seeds.
func (c *checker) check(lit *ast.FuncLit, ids []*types.Var, stack []ast.Node) {
	seeds := make(map[*types.Var]bool, len(ids))
	for _, v := range ids {
		if v != nil {
			seeds[v] = true
		}
	}
	// A worker body nested inside another worker body inherits the
	// enclosing identifiers: state exclusive to the outer unit stays
	// exclusive inside the inner fan-out.
	for _, n := range stack {
		if outer, ok := n.(*ast.FuncLit); ok {
			for v := range c.litSeeds[outer] {
				seeds[v] = true
			}
		}
	}
	c.litSeeds[lit] = seeds

	derived := c.defs.Derived(seeds)
	flow := ssa.Build(c.info, lit.Body)
	locks := lockSites(c.info, flow, lit.Body)

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested worker bodies and goroutine launches get their
			// own pass with their own (richer) seed set; don't
			// second-guess their stores here.
			if c.isOwnBody(n, stack) {
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.store(lit, lhs, n, derived, flow, locks)
			}
		case *ast.IncDecStmt:
			c.store(lit, n.X, n, derived, flow, locks)
		}
		return true
	})
}

// isOwnBody reports whether inner is itself a recognized worker body
// or goroutine body somewhere under the scanned function (it will be
// — or was — visited by scan with its own seeds).
func (c *checker) isOwnBody(inner *ast.FuncLit, stack []ast.Node) bool {
	if _, ok := c.litSeeds[inner]; ok {
		return true
	}
	// Not yet visited: peek at the parent chain cheaply by matching
	// the literal against worker-pool calls and go statements in the
	// enclosing body.
	found := false
	for _, n := range stack {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if l, _, ok := c.workerBody(m); ok && l == inner {
					found = true
				}
			case *ast.GoStmt:
				if l, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok && l == inner {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// store checks one assignment/incdec target inside worker body lit.
func (c *checker) store(lit *ast.FuncLit, lhs ast.Expr, node ast.Node, derived map[*types.Var]bool, flow *ssa.Func, locks []ssa.Site) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	p, ok := ssa.ResolvePath(c.info, lhs)
	if !ok || p.Root == nil {
		return // store through a call result or similar: out of scope
	}
	captured := !ssa.DeclaredWithin(p.Root, lit)

	// Any identifier-derived index along the access path proves the
	// destination exclusive to this unit of work.
	for _, idx := range p.Indices {
		if c.defs.Mentions(idx, derived) {
			return
		}
	}
	// A non-bare store through a root that is itself derived from an
	// identifier (row := grid[i]; row[0] = ...) lands in
	// unit-exclusive memory. Bare stores never qualify: they write
	// the variable's own (shared, if captured) slot, and `total +=
	// vals[i]` mentioning an id does not make total exclusive.
	if !p.BareVar && derived[p.Root] {
		return
	}

	if !captured {
		if p.BareVar {
			return // rebinding a closure-local variable
		}
		// Writing through a local root: fine unless the root aliases
		// captured state without a unit-local index in the chain.
		if shared, via := c.aliasesShared(lit, p.Root, derived, 0); shared {
			c.pass.Reportf(node.Pos(),
				"store through %s inside a worker body: %s aliases captured %s without a worker/morsel-derived index, so concurrent workers write the same memory; take the alias through an id-indexed slot (e.g. %s[w]) or annotate //monet:allow morselrace",
				p.Root.Name(), p.Root.Name(), via, via)
		}
		return
	}

	// Captured destination. A dominating Lock() makes it safe.
	if c.lockDominated(flow, locks, node) {
		return
	}

	assign, _ := node.(*ast.AssignStmt)
	switch {
	case p.BareVar && assign != nil && assign.Tok == token.ASSIGN && c.selfAppend(assign, p.Root):
		c.pass.Reportf(node.Pos(),
			"append to captured %s inside a worker body grows a shared slice concurrently; give each unit its own slot (%s[w] = append(%s[w], ...)) with a merge after the join, or guard with a mutex",
			p.Root.Name(), p.Root.Name(), p.Root.Name())
	case p.BareVar:
		c.pass.Reportf(node.Pos(),
			"write to captured %s inside a worker body: concurrent workers race on it; make it per-unit state indexed by the worker/morsel id, or guard with a mutex",
			p.Root.Name())
	case len(p.Indices) > 0:
		c.pass.Reportf(node.Pos(),
			"write to captured %s inside a worker body is not indexed by a worker/morsel id: the index is shared across workers; derive it from an id parameter or annotate //monet:allow morselrace with the exclusivity argument",
			p.Root.Name())
	default:
		c.pass.Reportf(node.Pos(),
			"write through captured %s inside a worker body: the destination is shared across workers; route it through a per-worker slot or guard with a mutex",
			p.Root.Name())
	}
}

// aliasesShared reports whether var v (local to worker body lit) may
// alias captured memory reached without any derived index, returning
// the captured root's name. Definitions from calls, fresh allocations
// and literals are treated as non-aliasing (lenient by design: the
// alias proof is only needed to accuse, and false accusations cost
// more than the -race backstop misses).
func (c *checker) aliasesShared(lit *ast.FuncLit, v *types.Var, derived map[*types.Var]bool, depth int) (bool, string) {
	if depth > 4 {
		return false, ""
	}
	for _, rhs := range c.defs.Defs(v) {
		if rhs == nil {
			continue
		}
		e := ast.Unparen(rhs)
		if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			e = ast.Unparen(ue.X) // &x[i] aliases exactly what x[i] is
		}
		p, ok := ssa.ResolvePath(c.info, e)
		if !ok || p.Root == nil {
			continue // call result / fresh allocation / literal
		}
		localIdx := false
		for _, idx := range p.Indices {
			if c.defs.Mentions(idx, derived) {
				localIdx = true
				break
			}
		}
		if localIdx {
			continue // alias of an id-indexed slot: unit-local
		}
		if derived[p.Root] {
			continue // alias of something already unit-local
		}
		if !ssa.DeclaredWithin(p.Root, lit) {
			return true, p.Root.Name() // captured root, no unit-local index
		}
		if sub, via := c.aliasesShared(lit, p.Root, derived, depth+1); sub {
			return true, via
		}
	}
	return false, ""
}

// selfAppend reports whether assign is `v = append(v, ...)`.
func (c *checker) selfAppend(assign *ast.AssignStmt, v *types.Var) bool {
	if len(assign.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	arg, ok := ssa.ResolvePath(c.info, call.Args[0])
	return ok && arg.Root == v
}

// lockSites collects the mu.Lock() call sites in body.
func lockSites(info *types.Info, flow *ssa.Func, body *ast.BlockStmt) []ssa.Site {
	var out []ssa.Site
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && monet.IsSyncLock(info, call) {
			if s, ok := flow.SiteOf(call); ok {
				out = append(out, s)
			}
		}
		return true
	})
	return out
}

func (c *checker) lockDominated(flow *ssa.Func, locks []ssa.Site, node ast.Node) bool {
	s, ok := flow.SiteOf(node)
	if !ok {
		return false
	}
	for _, l := range locks {
		if flow.Dominates(l, s) {
			return true
		}
	}
	return false
}
