// Package sync stubs the mutex shapes morselrace recognizes as
// store guards.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
func (m *RWMutex) Unlock()  {}
