// Package core stubs the worker-pool API shapes morselrace keys on.
package core

// SpanRecorder mirrors the profiling recorder's shape.
type SpanRecorder struct{}

// ForEach fans body out over n work items.
func ForEach(workers, n int, body func(w, i int)) {
	for i := 0; i < n; i++ {
		body(0, i)
	}
}

// ForEachSpan is ForEach with span capture.
func ForEachSpan(workers, n int, rec *SpanRecorder, body func(w, i int)) {
	ForEach(workers, n, body)
}

// ForMorsels fans body out over morsel ranges.
func ForMorsels(workers, n int, body func(m, lo, hi int)) {
	body(0, 0, n)
}
