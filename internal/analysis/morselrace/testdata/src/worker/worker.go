// Fixture for morselrace: stores inside worker-pool bodies.
package worker

import (
	"core"
	"sync"
)

// Per-worker slot, indexed by the worker id: the canonical safe
// pattern.
func indexedOK(workers, n int, vals []int64) []int64 {
	sums := make([]int64, workers)
	core.ForEach(workers, n, func(w, i int) {
		sums[w] += vals[i]
	})
	return sums
}

type arena struct{ buf []int64 }

// Writing through a pointer into an id-indexed slot: the per-worker
// arena pattern.
func arenaOK(workers, n int, arenas []arena) {
	core.ForEach(workers, n, func(w, i int) {
		a := &arenas[w]
		a.buf[0]++
	})
}

// A local alias of an id-indexed slot stays unit-local even when the
// store index itself carries no id.
func derivedAliasOK(workers, n int, counts [][]int64) {
	core.ForEach(workers, n, func(w, i int) {
		cur := counts[w]
		for d := 0; d < len(cur); d++ {
			cur[d]++
		}
	})
}

// Morsel bodies may write any index derived from their range bounds.
func morselRangeOK(workers, n int, out []int64) {
	core.ForMorsels(workers, n, func(m, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 1
		}
	})
}

// Growing a captured slice concurrently loses elements.
func sharedAppend(workers, n int, vals []int64) []int64 {
	var out []int64
	core.ForEach(workers, n, func(w, i int) {
		out = append(out, vals[i]) // want "append to captured out"
	})
	return out
}

// A captured scalar accumulator is a read-modify-write race.
func sharedSum(workers, n int, vals []int64) int64 {
	var total int64
	core.ForEach(workers, n, func(w, i int) {
		total += vals[i] // want "write to captured total"
	})
	return total
}

// A fixed element of a captured slice is one shared slot.
func sharedSlot(workers, n int, out []int64) {
	core.ForEach(workers, n, func(w, i int) {
		out[0] = int64(i) // want "not indexed by a worker/morsel id"
	})
}

// A whole-slice alias reaches the same shared memory the captured
// slice does.
func aliasShared(workers, n int, shared []int64) {
	core.ForEach(workers, n, func(w, i int) {
		s := shared
		s[1] = int64(w) // want "aliases captured shared"
	})
}

// The same alias is fine when the store index is id-derived.
func aliasDerivedIndexOK(workers, n int, shared []int64) {
	core.ForEach(workers, n, func(w, i int) {
		s := shared
		s[i] = int64(w)
	})
}

// Fields of captured structs are shared.
type state struct{ hits int64 }

func fieldWrite(workers, n int, st *state) {
	core.ForEach(workers, n, func(w, i int) {
		st.hits = int64(i) // want "write through captured st"
	})
}

// A dominating Lock() licenses the store.
func mutexOK(workers, n int, vals []int64) int64 {
	var total int64
	var mu sync.Mutex
	core.ForEach(workers, n, func(w, i int) {
		mu.Lock()
		total += vals[i]
		mu.Unlock()
	})
	return total
}

// A Lock() on only one path does not.
func mutexWrongPath(workers, n int, vals []int64, cond bool) int64 {
	var total int64
	var mu sync.Mutex
	core.ForEach(workers, n, func(w, i int) {
		if cond {
			mu.Lock()
			defer mu.Unlock()
		}
		total += vals[i] // want "write to captured total"
	})
	return total
}

// ForEachSpan bodies follow the same contract.
func spanBody(workers, n int, rec *core.SpanRecorder) {
	hits := 0
	core.ForEachSpan(workers, n, rec, func(w, i int) {
		hits++ // want "write to captured hits"
	})
	_ = hits
}

// Raw goroutine launches: parameters are per-launch snapshots, and
// Go 1.22 loop variables are per-iteration; everything else captured
// is shared.
func rawGo(workers int, res []int64) {
	var done int
	for w := 0; w < workers; w++ {
		go func(w int) {
			res[w] = 1
			done++ // want "write to captured done"
		}(w)
	}
}

// A nested fan-out inherits the outer body's identifiers: row is
// exclusive to outer unit i, so the inner body may write it freely.
func nestedOK(workers, n int, grid [][]int64) {
	core.ForEach(workers, n, func(w, i int) {
		row := grid[i]
		core.ForEach(1, len(row), func(w2, j int) {
			row[0] = int64(j)
		})
	})
}

// Justified suppression: the diagnostic is covered by //monet:allow.
func allowedLastWins(workers, n int) int {
	last := 0
	core.ForEach(workers, n, func(w, i int) {
		last = i //monet:allow morselrace any winner acceptable, value is a hint only
	})
	return last
}
