package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// stubAnalyzer reports one diagnostic at every call expression, which
// is enough surface to exercise suppression and exemption.
var stubAnalyzer = &Analyzer{
	Name: "stub",
	Doc:  "flag every call",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call here")
				}
				return true
			})
		}
		return nil
	},
}

func runOn(t *testing.T, files map[string]string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, f)
	}
	info := NewTypesInfo()
	conf := &types.Config{}
	tpkg, err := conf.Check("p", fset, parsed, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(&Package{Fset: fset, Files: parsed, Types: tpkg, Info: info}, []*Analyzer{stubAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestAllowSuppression(t *testing.T) {
	diags := runOn(t, map[string]string{"p.go": `package p

func g() {}

func unsuppressed() {
	g()
}

func sameLine() {
	g() //monet:allow stub justified reason
}

func lineAbove() {
	//monet:allow stub justified reason
	g()
}

func wrongAnalyzer() {
	//monet:allow other justified reason
	g()
}
`})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (unsuppressed + wrongAnalyzer): %v", len(diags), diags)
	}
}

func TestMalformedAllowReported(t *testing.T) {
	diags := runOn(t, map[string]string{"p.go": `package p

func g() {}

func f() {
	//monet:allow stub
	g()
}
`})
	// The unjustified directive itself is a diagnostic, and it does
	// not suppress the finding it sits above.
	var malformed, call bool
	for _, d := range diags {
		if d.Analyzer == "monetvet" && strings.Contains(d.Message, "malformed //monet:allow") {
			malformed = true
		}
		if d.Analyzer == "stub" {
			call = true
		}
	}
	if !malformed || !call {
		t.Fatalf("want malformed-allow and unsuppressed call diagnostics, got %v", diags)
	}
}

func TestTestFilesExempt(t *testing.T) {
	diags := runOn(t, map[string]string{
		"p.go":      "package p\n\nfunc g() {}\n",
		"p_test.go": "package p\n\nfunc f() {\n\tg()\n}\n",
	})
	if len(diags) != 0 {
		t.Fatalf("findings in _test.go files must be dropped, got %v", diags)
	}
}
