// Package analysistest runs a framework.Analyzer over small fixture
// packages and checks its diagnostics against // want comments, in
// the style of x/tools/go/analysis/analysistest.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/*.go. Imports
// resolve against sibling fixture directories only (testdata/src/dsm,
// testdata/src/memsim, ...), never the real module or GOROOT: each
// fixture stubs exactly the API shapes its analyzer keys on, which
// keeps the suites hermetic and fast. A line producing a diagnostic
// carries a trailing comment
//
//	// want "regexp"
//
// (several quoted regexps for several diagnostics). Every diagnostic
// must be wanted and every want must be matched. //monet:allow
// suppression and the _test.go exemption are applied exactly as in
// the real drivers, so fixtures can pin those behaviors too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"monetlite/internal/analysis/framework"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run analyzes each fixture package under testdata/src and reports
// any mismatch between diagnostics and // want expectations on t.
func Run(t *testing.T, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	srcdir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{fset: token.NewFileSet(), srcdir: srcdir, loaded: make(map[string]*fixture)}
	for _, pkg := range pkgs {
		fx, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", pkg, err)
		}
		diags, err := framework.RunPackage(&framework.Package{
			Fset: ld.fset, Files: fx.files, Types: fx.pkg, Info: fx.info,
		}, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %q: %v", a.Name, pkg, err)
		}
		check(t, ld.fset, fx.files, diags)
	}
}

type fixture struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset   *token.FileSet
	srcdir string
	loaded map[string]*fixture
}

func (ld *loader) load(path string) (*fixture, error) {
	if fx, ok := ld.loaded[path]; ok {
		if fx == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return fx, nil
	}
	ld.loaded[path] = nil // cycle guard
	dir := filepath.Join(ld.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q not found under %s (stub it): %w", path, ld.srcdir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %q has no .go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			fx, err := ld.load(importPath)
			if err != nil {
				return nil, err
			}
			return fx.pkg, nil
		}),
	}
	info := framework.NewTypesInfo()
	tpkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	fx := &fixture{pkg: tpkg, files: files, info: info}
	ld.loaded[path] = fx
	return fx, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// check matches diagnostics against the fixture's want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, arg[1], err)
						continue
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", posn, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
