package framework

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"
)

// vetConfig is the JSON compilation-unit description `go vet` hands a
// -vettool in a *.cfg file. Field set and semantics follow
// x/tools/go/analysis/unitchecker (the de-facto protocol spec); fields
// monetvet does not consume are still decoded so the schema is
// documented in one place.
type vetConfig struct {
	ID                        string
	Compiler                  string // "gc"
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the command-line protocol required of a
// `go vet -vettool`:
//
//	-V=full    print an executable identity for build caching
//	-flags     describe supported flags in JSON
//	foo.cfg    analyze the compilation unit described by the file
//
// Any other argument list falls through to the standalone driver
// (standalone.go), so the same binary serves both
// `go vet -vettool=$(pwd)/monetvet ./...` and `monetvet ./...`. The
// standalone form additionally accepts:
//
//	-json                  findings as a JSON array on stdout
//	-baseline <file>       suppress findings recorded in the file
//	-write-baseline        rewrite -baseline to accept all findings
func VetMain(analyzers []*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("monetvet: ")

	args := os.Args[1:]
	switch {
	case len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full"):
		printVersion()
	case len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags"):
		// monetvet takes no analyzer flags; an empty JSON list tells
		// `go vet` exactly that.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runUnit(args[0], analyzers)
	default:
		var opts StandaloneOptions
		fs := flag.NewFlagSet("monetvet", flag.ExitOnError)
		fs.BoolVar(&opts.JSON, "json", false, "print findings as a JSON array on stdout")
		fs.StringVar(&opts.BaselinePath, "baseline", "", "suppress findings recorded in this baseline `file`")
		fs.BoolVar(&opts.WriteBaseline, "write-baseline", false, "rewrite -baseline to accept all current findings")
		if err := fs.Parse(args); err != nil {
			os.Exit(2)
		}
		os.Exit(StandaloneWith(fs.Args(), analyzers, os.Stderr, opts))
	}
}

// printVersion implements -V=full: a stable content-derived identity
// line ("<path> version devel comments-go-here buildID=<hash>") that
// `go vet` folds into its action cache key.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
}

// runUnit analyzes the single compilation unit described by cfgFile
// and exits: 0 when clean, 1 when any diagnostic was reported.
func runUnit(cfgFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0) // the compiler will report it better
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return imp.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewTypesInfo()
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}

	// `go vet` expects the facts file even from a tool that exports no
	// facts; an empty file keeps its action graph happy.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	diags, err := RunPackage(&Package{Fset: fset, Files: files, Types: tpkg, Info: info}, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
