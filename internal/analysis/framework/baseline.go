package framework

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Finding is one diagnostic in machine-readable form, as emitted by
// `monetvet -json` and stored in a committed baseline file.
//
// Baseline matching deliberately ignores Line and Col: a refactor that
// moves an accepted finding up or down a file is not a new finding.
// The key is (File, Analyzer, Message), consumed as a multiset so a
// second *instance* of an accepted finding still fails the build.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineFile is the on-disk schema of .monetvet-baseline.json.
type baselineFile struct {
	// Comment documents the suppression workflow inside the committed
	// artifact itself, where the person editing it is looking.
	Comment  string    `json:"_comment,omitempty"`
	Findings []Finding `json:"findings"`
}

const baselineComment = "Accepted monetvet findings. Prefer fixing or a //monet:allow <analyzer> <why> annotation; baseline only findings that cannot carry an annotation. Regenerate with: monetvet -write-baseline -baseline .monetvet-baseline.json ./..."

func baselineKey(f Finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error, so fresh checkouts and new analyzers work
// without ceremony.
func LoadBaseline(path string) ([]Finding, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return bf.Findings, nil
}

// WriteBaseline writes findings as a baseline file, sorted for stable
// diffs.
func WriteBaseline(path string, findings []Finding) error {
	sorted := append([]Finding{}, findings...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(baselineFile{Comment: baselineComment, Findings: sorted}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FilterBaseline returns the findings not covered by the baseline.
// Each baseline entry absorbs exactly one matching finding (multiset
// semantics), in source order.
func FilterBaseline(findings, baseline []Finding) []Finding {
	budget := make(map[string]int, len(baseline))
	for _, f := range baseline {
		budget[baselineKey(f)]++
	}
	var fresh []Finding
	for _, f := range findings {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

// relFile rewrites an absolute position file to be relative to the
// working directory when possible, so baselines are stable across
// checkouts.
func relFile(file string) string {
	if !filepath.IsAbs(file) {
		return file
	}
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil || rel == file || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return file
	}
	return filepath.ToSlash(rel)
}
