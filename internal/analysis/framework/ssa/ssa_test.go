package ssa

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// compile parses and typechecks one file and returns the body of the
// named function plus the populated types.Info.
func compile(t *testing.T, src, fn string) (*types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return info, fd
		}
	}
	t.Fatalf("no func %s", fn)
	return nil, nil
}

// stmtAt finds the first statement of the given concrete type.
func findNode[T ast.Node](root ast.Node) T {
	var out T
	ast.Inspect(root, func(n ast.Node) bool {
		if v, ok := n.(T); ok && isZero(out) {
			out = v
		}
		return true
	})
	return out
}

func isZero[T ast.Node](v T) bool {
	var z ast.Node = ast.Node(v)
	return z == nil || z == ast.Node(*new(T))
}

func TestDominanceStraightLine(t *testing.T) {
	info, fd := compile(t, `package p
func f(a int) int {
	x := a + 1
	y := x * 2
	return y
}`, "f")
	fn := Build(info, fd.Body)
	stmts := fd.Body.List
	s0, _ := fn.SiteOf(stmts[0])
	s1, _ := fn.SiteOf(stmts[1])
	if !fn.Dominates(s0, s1) {
		t.Error("x := dominates y :=")
	}
	if fn.Dominates(s1, s0) {
		t.Error("y := must not dominate x :=")
	}
}

func TestDominanceBranch(t *testing.T) {
	info, fd := compile(t, `package p
func f(a int) int {
	var mu int
	if a > 0 {
		mu = 1
	} else {
		mu = 2
	}
	out := mu
	return out
}`, "f")
	fn := Build(info, fd.Body)
	ifs := findNode[*ast.IfStmt](fd.Body)
	thenStore, _ := fn.SiteOf(ifs.Body.List[0])
	join, _ := fn.SiteOf(fd.Body.List[2]) // out := mu
	if fn.Dominates(thenStore, join) {
		t.Error("a store in one branch must not dominate the join")
	}
	header, _ := fn.SiteOf(fd.Body.List[0]) // var mu
	if !fn.Dominates(header, join) {
		t.Error("pre-branch statement dominates the join")
	}
	if !fn.Dominates(header, thenStore) {
		t.Error("pre-branch statement dominates the branch body")
	}
}

func TestLoopDepthAndBreak(t *testing.T) {
	info, fd := compile(t, `package p
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		for j := 0; j < i; j++ {
			total += j
		}
	}
	return total
}`, "f")
	fn := Build(info, fd.Body)
	var inner *ast.AssignStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if a, ok := n.(*ast.AssignStmt); ok && a.Tok == token.ADD_ASSIGN {
			inner = a
		}
		return true
	})
	if d := fn.LoopDepthOf(inner); d != 2 {
		t.Errorf("total += j at loop depth %d, want 2", d)
	}
	if d := fn.LoopDepthOf(fd.Body.List[0]); d != 0 {
		t.Errorf("total := 0 at loop depth %d, want 0", d)
	}
	// The return after the loop must be reachable (break wiring).
	ret, ok := fn.SiteOf(fd.Body.List[2])
	if !ok {
		t.Fatal("return has no site")
	}
	entry := Site{Block: fn.Entry, Index: 0}
	if !fn.Dominates(entry, ret) {
		t.Error("entry must dominate the return")
	}
}

func TestDerivedTaint(t *testing.T) {
	info, fd := compile(t, `package p
func f(counts [][]int, w int) {
	c := counts[w]
	cur := c
	other := len(counts)
	_ = cur
	_ = other
}`, "f")
	defs := Definitions(info, fd.Body)
	var wVar *types.Var
	for _, p := range fd.Type.Params.List {
		for _, n := range p.Names {
			if n.Name == "w" {
				wVar = info.Defs[n].(*types.Var)
			}
		}
	}
	derived := defs.Derived(map[*types.Var]bool{wVar: true})
	names := map[string]bool{}
	for v := range derived {
		names[v.Name()] = true
	}
	if !names["c"] || !names["cur"] {
		t.Errorf("c and cur should be derived from w; got %v", names)
	}
	if names["other"] {
		t.Error("other is not derived from w")
	}
}

func TestResolvePath(t *testing.T) {
	info, fd := compile(t, `package p
type s struct{ f int }
func f(m [][]int, w int, ps []*s) {
	m[w][0] = 1
	ps[w].f = 2
	x := 0
	x = 3
	_ = x
}`, "f")
	asg := fd.Body.List[0].(*ast.AssignStmt)
	p, ok := ResolvePath(info, asg.Lhs[0])
	if !ok || p.Root.Name() != "m" || len(p.Indices) != 2 || p.BareVar {
		t.Errorf("m[w][0]: got %+v ok=%v", p, ok)
	}
	asg2 := fd.Body.List[1].(*ast.AssignStmt)
	p2, ok := ResolvePath(info, asg2.Lhs[0])
	if !ok || p2.Root.Name() != "ps" || len(p2.Indices) != 1 || !p2.HasField || !p2.HasDeref {
		t.Errorf("ps[w].f: got %+v ok=%v", p2, ok)
	}
	asg3 := fd.Body.List[3].(*ast.AssignStmt)
	p3, ok := ResolvePath(info, asg3.Lhs[0])
	if !ok || !p3.BareVar || p3.Root.Name() != "x" {
		t.Errorf("x: got %+v ok=%v", p3, ok)
	}
}

func TestFreeVars(t *testing.T) {
	info, fd := compile(t, `package p
var global int
func f(shared []int) func(int) {
	local := 0
	return func(w int) {
		inner := w
		shared[w] = inner
		local++
		global++
	}
}`, "f")
	lit := findNode[*ast.FuncLit](fd.Body)
	free := FreeVars(info, lit)
	names := map[string]bool{}
	for v := range free {
		names[v.Name()] = true
	}
	for _, want := range []string{"shared", "local", "global"} {
		if !names[want] {
			t.Errorf("%s should be free in the closure; got %v", want, names)
		}
	}
	for _, not := range []string{"w", "inner"} {
		if names[not] {
			t.Errorf("%s is closure-local, not free", not)
		}
	}
}

func TestLockDominatesStore(t *testing.T) {
	info, fd := compile(t, `package p
import "sync"
var mu sync.Mutex
var n int
func f(cond bool) {
	mu.Lock()
	n++
	mu.Unlock()
	if cond {
		n--
	}
}`, "f")
	fn := Build(info, fd.Body)
	lock, _ := fn.SiteOf(fd.Body.List[0])
	inc, _ := fn.SiteOf(fd.Body.List[1])
	if !fn.Dominates(lock, inc) {
		t.Error("Lock() dominates the guarded store")
	}
	ifs := fd.Body.List[3].(*ast.IfStmt)
	dec, _ := fn.SiteOf(ifs.Body.List[0])
	if !fn.Dominates(lock, dec) {
		t.Error("Lock() dominates statements after Unlock too (dominance, not region)")
	}
	if fn.Dominates(dec, inc) {
		t.Error("branch body must not dominate earlier code")
	}
}
