package ssa

import (
	"go/ast"
	"go/types"
)

// FreeVars returns the variables referenced inside lit but declared
// outside it — the closure's captures, including package-level
// variables. Struct fields reached through a captured receiver count
// via the receiver, not the field.
func FreeVars(info *types.Info, lit *ast.FuncLit) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if !DeclaredWithin(v, lit) {
			out[v] = true
		}
		return true
	})
	return out
}

// DeclaredWithin reports whether obj's declaration lies inside n's
// source range. Package-level and imported objects are never within a
// function literal.
func DeclaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}
