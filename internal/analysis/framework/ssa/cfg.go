package ssa

import (
	"go/ast"
	"go/token"
)

// builder constructs a Func's blocks. cur is the block under
// construction; after a terminator (return, branch, panic) cur is
// replaced with a fresh unreachable block so subsequent dead
// statements still get sites without distorting the reachable graph.
type builder struct {
	f      *Func
	cur    *Block
	frames []frame           // enclosing breakable/continuable regions
	labels map[string]*Block // goto / labeled-statement targets
	label  string            // pending label for the next loop/switch
}

// frame is one enclosing loop, switch or select: where break and
// continue go, and (inside a switch case) where fallthrough goes.
type frame struct {
	label      string
	isLoop     bool
	breakTo    *Block
	continueTo *Block
	fallTo     *Block
}

func (b *builder) newBlock(depth int) *Block {
	blk := &Block{Index: len(b.f.Blocks), LoopDepth: depth}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

// add appends s to the current block as an atom and registers every
// node of its subtree at that site. Registration is last-writer-wins:
// structured statements register their whole subtree when their
// header atom is added, and body statements re-register themselves
// when they are added later, so the innermost atom owns each node.
func (b *builder) add(s ast.Stmt) {
	site := Site{Block: b.cur, Index: len(b.cur.Stmts)}
	b.cur.Stmts = append(b.cur.Stmts, s)
	ast.Inspect(s, func(n ast.Node) bool {
		if n != nil {
			b.f.sites[n] = site
		}
		return true
	})
}

// reg re-registers a subtree at an explicit site (used for loop
// conditions and post statements, which execute per-iteration).
func (b *builder) reg(n ast.Node, site Site) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m != nil {
			b.f.sites[m] = site
		}
		return true
	})
}

// terminate ends the current block: control has left it (return,
// branch, panic). Statements after a terminator accumulate in a fresh
// block with no predecessors.
func (b *builder) terminate() {
	b.cur = b.newBlock(b.cur.LoopDepth)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()
	default:
		// Leaf statements: assign, incdec, expr, decl, send, go,
		// defer, empty. A bare panic(...) call terminates.
		b.add(s)
		if isPanicStmt(s) {
			b.terminate()
		}
	}
}

// takeLabel consumes the pending label set by an enclosing
// LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.takeLabel()
	b.add(s) // header atom: Init + Cond (bodies re-registered below)
	head := b.cur
	depth := head.LoopDepth

	thenB := b.newBlock(depth)
	head.Succs = append(head.Succs, thenB)
	b.cur = thenB
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	join := b.newBlock(depth)
	thenEnd.Succs = append(thenEnd.Succs, join)
	if s.Else != nil {
		elseB := b.newBlock(depth)
		head.Succs = append(head.Succs, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		b.cur.Succs = append(b.cur.Succs, join)
	} else {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	b.add(s) // header atom: Init + Cond + Post
	depth := b.cur.LoopDepth

	// The loop head carries depth+1: Cond and Post execute once per
	// iteration, so nodes re-registered there count as in-loop.
	head := b.newBlock(depth + 1)
	b.cur.Succs = append(b.cur.Succs, head)
	body := b.newBlock(depth + 1)
	exit := b.newBlock(depth)
	head.Succs = append(head.Succs, body)
	if s.Cond != nil {
		head.Succs = append(head.Succs, exit)
		b.reg(s.Cond, Site{Block: head, Index: 0})
	}
	if s.Post != nil {
		b.reg(s.Post, Site{Block: head, Index: 0})
	}

	b.frames = append(b.frames, frame{label: label, isLoop: true, breakTo: exit, continueTo: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.cur.Succs = append(b.cur.Succs, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.add(s) // header atom: Key/Value/X
	depth := b.cur.LoopDepth

	head := b.newBlock(depth)
	b.cur.Succs = append(b.cur.Succs, head)
	body := b.newBlock(depth + 1)
	exit := b.newBlock(depth)
	head.Succs = append(head.Succs, body, exit)

	b.frames = append(b.frames, frame{label: label, isLoop: true, breakTo: exit, continueTo: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.cur.Succs = append(b.cur.Succs, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

// switchStmt handles both expression and type switches; body is the
// case-clause list.
func (b *builder) switchStmt(s ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.add(s) // header atom: Init + Tag/Assign + case expressions
	head := b.cur
	depth := head.LoopDepth
	exit := b.newBlock(depth)

	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cc := range body.List {
		cl := cc.(*ast.CaseClause)
		clauses = append(clauses, cl)
		if cl.List == nil {
			hasDefault = true
		}
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock(depth)
		head.Succs = append(head.Succs, bodies[i])
	}
	if !hasDefault {
		head.Succs = append(head.Succs, exit)
	}

	b.frames = append(b.frames, frame{label: label, breakTo: exit})
	for i, cl := range clauses {
		b.frames[len(b.frames)-1].fallTo = nil
		if i+1 < len(bodies) {
			b.frames[len(b.frames)-1].fallTo = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmtList(cl.Body)
		b.cur.Succs = append(b.cur.Succs, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	b.add(s) // header atom
	head := b.cur
	depth := head.LoopDepth
	exit := b.newBlock(depth)

	b.frames = append(b.frames, frame{label: label, breakTo: exit})
	for _, cc := range s.Body.List {
		comm := cc.(*ast.CommClause)
		body := b.newBlock(depth)
		head.Succs = append(head.Succs, body)
		b.cur = body
		if comm.Comm != nil {
			b.stmt(comm.Comm)
		}
		b.stmtList(comm.Body)
		b.cur.Succs = append(b.cur.Succs, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if len(s.Body.List) == 0 {
		head.Succs = append(head.Succs, exit) // empty select blocks forever; keep the graph connected
	}
	b.cur = exit
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	lb := b.labelBlock(s.Label.Name)
	lb.LoopDepth = b.cur.LoopDepth
	b.cur.Succs = append(b.cur.Succs, lb)
	b.cur = lb
	b.label = s.Label.Name
	b.stmt(s.Stmt)
	b.label = ""
}

// labelBlock returns (creating on first use, for forward gotos) the
// block a label names.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock(b.cur.LoopDepth)
	b.labels[name] = blk
	return blk
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if fr := b.findFrame(label, false); fr != nil {
			b.cur.Succs = append(b.cur.Succs, fr.breakTo)
		}
	case token.CONTINUE:
		if fr := b.findFrame(label, true); fr != nil {
			b.cur.Succs = append(b.cur.Succs, fr.continueTo)
		}
	case token.GOTO:
		b.cur.Succs = append(b.cur.Succs, b.labelBlock(label))
	case token.FALLTHROUGH:
		if fr := b.findFrame("", false); fr != nil && fr.fallTo != nil {
			b.cur.Succs = append(b.cur.Succs, fr.fallTo)
		}
	}
	b.terminate()
}

// findFrame returns the innermost frame matching label (any frame for
// break, loops only for continue), or nil in ill-formed code.
func (b *builder) findFrame(label string, loopOnly bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		fr := &b.frames[i]
		if loopOnly && !fr.isLoop {
			continue
		}
		if label == "" || fr.label == label {
			return fr
		}
	}
	return nil
}

// isPanicStmt reports whether s is a bare `panic(...)` call.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
