package ssa

// Dominator computation: the iterative algorithm of Cooper, Harvey
// and Kennedy ("A Simple, Fast Dominance Algorithm") over the
// reverse-postorder of the reachable blocks. Small CFGs, no need for
// Lengauer-Tarjan.

// ensureDom computes idom and rpo once.
func (f *Func) ensureDom() {
	if f.idom != nil {
		return
	}
	n := len(f.Blocks)
	f.rpo = make([]int, n)
	for i := range f.rpo {
		f.rpo[i] = -1
	}
	// Postorder DFS from entry.
	var order []*Block
	visited := make([]bool, n)
	var dfs func(*Block)
	dfs = func(b *Block) {
		visited[b.Index] = true
		for _, s := range b.Succs {
			if !visited[s.Index] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(f.Entry)
	// Reverse postorder numbering.
	for i, b := range order {
		f.rpo[b.Index] = len(order) - 1 - i
	}

	f.idom = make([]int, n)
	for i := range f.idom {
		f.idom[i] = -1
	}
	f.idom[f.Entry.Index] = f.Entry.Index
	changed := true
	for changed {
		changed = false
		// Process in reverse postorder (order is postorder; walk it
		// backwards), skipping the entry.
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == f.Entry {
				continue
			}
			newIdom := -1
			for _, p := range b.Preds {
				if f.rpo[p.Index] < 0 || f.idom[p.Index] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p.Index
				} else {
					newIdom = f.intersect(newIdom, p.Index)
				}
			}
			if newIdom >= 0 && f.idom[b.Index] != newIdom {
				f.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	f.idom[f.Entry.Index] = -1 // entry has no immediate dominator
}

func (f *Func) intersect(a, b int) int {
	for a != b {
		for f.rpo[a] > f.rpo[b] {
			a = f.idom[a]
		}
		for f.rpo[b] > f.rpo[a] {
			b = f.idom[b]
		}
	}
	return a
}

// blockDominates reports whether block a dominates block b (both by
// index). A block dominates itself. Unreachable blocks dominate
// nothing and are dominated by nothing.
func (f *Func) blockDominates(a, b int) bool {
	f.ensureDom()
	if f.rpo[a] < 0 || f.rpo[b] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := f.idom[b]
		if next < 0 || next == b {
			return false
		}
		b = next
	}
}

// Dominates reports whether the atom at site a executes before the
// atom at site b on every path that reaches b: either both are in one
// block and a comes first (or is the same atom), or a's block strictly
// dominates b's.
func (f *Func) Dominates(a, b Site) bool {
	if a.Block == nil || b.Block == nil {
		return false
	}
	if a.Block == b.Block {
		f.ensureDom()
		return f.rpo[a.Block.Index] >= 0 && a.Index <= b.Index
	}
	return f.blockDominates(a.Block.Index, b.Block.Index)
}
