package ssa

import (
	"go/ast"
	"go/types"
)

// A DefSet is the flow-insensitive definition set of one function:
// for every variable assigned anywhere under the root (including
// inside nested func literals), the right-hand sides it was assigned.
// Flow-insensitivity over-approximates "derived from" — acceptable
// because the taint closure is only ever used to *excuse* stores
// (prove an index worker-local), never to flag them.
type DefSet struct {
	info *types.Info
	defs map[*types.Var][]ast.Expr // nil entry = defined by a form with no usable RHS
}

// Definitions collects every definition under root: assignments
// (including multi-value assignments from calls, where the call is
// recorded as each LHS's RHS), var specs, range clauses, and
// type-switch bindings. IncDec defines a variable in terms of itself
// and so adds no taint edge.
func Definitions(info *types.Info, root ast.Node) *DefSet {
	d := &DefSet{info: info, defs: make(map[*types.Var][]ast.Expr)}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					d.def(n.Lhs[i], n.Rhs[i])
				}
			} else if len(n.Rhs) == 1 {
				for _, l := range n.Lhs {
					d.def(l, n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				} else if len(n.Values) == 1 {
					rhs = n.Values[0]
				}
				d.defObj(info.Defs[name], rhs)
			}
		case *ast.RangeStmt:
			d.def(n.Key, n.X)
			d.def(n.Value, n.X)
		case *ast.TypeSwitchStmt:
			if a, ok := n.Assign.(*ast.AssignStmt); ok && len(a.Lhs) == 1 && len(a.Rhs) == 1 {
				// The bound variable is per-clause; Implicits holds the
				// clause objects, but taint through the switched
				// expression covers all of them via the Uses entry too.
				d.def(a.Lhs[0], a.Rhs[0])
			}
		}
		return true
	})
	return d
}

// def records rhs as a definition of the variable lhs names, if it
// names one directly (stores through index/field/deref paths are not
// variable definitions).
func (d *DefSet) def(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := d.info.Defs[id]; obj != nil {
		d.defObj(obj, rhs)
		return
	}
	d.defObj(d.info.Uses[id], rhs)
}

func (d *DefSet) defObj(obj types.Object, rhs ast.Expr) {
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	d.defs[v] = append(d.defs[v], rhs)
}

// Defs returns the recorded right-hand sides of v (nil entries mean a
// definition with no usable RHS, e.g. an elided var spec).
func (d *DefSet) Defs(v *types.Var) []ast.Expr { return d.defs[v] }

// Derived computes the fixed point of "defined in terms of": every
// variable with a definition whose RHS mentions a seed (or an
// already-derived variable) joins the set. Seeds themselves are
// included in the result.
func (d *DefSet) Derived(seeds map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(seeds))
	for v := range seeds {
		out[v] = true
	}
	for changed := true; changed; {
		changed = false
		for v, rhss := range d.defs {
			if out[v] {
				continue
			}
			for _, rhs := range rhss {
				if rhs != nil && d.Mentions(rhs, out) {
					out[v] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// Mentions reports whether e references any variable in vars.
func (d *DefSet) Mentions(e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := d.info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return true
	})
	return found
}
