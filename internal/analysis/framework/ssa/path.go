package ssa

import (
	"go/ast"
	"go/types"
)

// A Path is the access path of an l-value or alias expression:
// the root variable plus the index, field and deref steps applied to
// it, e.g. counts[w][d] = Root counts, Indices [w, d].
type Path struct {
	// Root is the variable the path starts from (never nil for a
	// resolved path).
	Root *types.Var
	// Indices are the index expressions applied along the path, in
	// source order (outermost access last).
	Indices []ast.Expr
	// HasField is set when the path selects a struct field.
	HasField bool
	// HasDeref is set when the path dereferences an explicit pointer
	// (*p or selection through a pointer).
	HasDeref bool
	// BareVar is set when the expression is exactly the root
	// identifier: an assignment to it rebinds the variable rather
	// than writing through it.
	BareVar bool
}

// ResolvePath decomposes e into a Path. It returns false for
// expressions that are not variable-rooted (calls, literals,
// package-level selector chains ending in functions, etc.).
func ResolvePath(info *types.Info, e ast.Expr) (Path, bool) {
	p := Path{}
	first := true
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, ok := varOf(info, x)
			if !ok {
				return Path{}, false
			}
			p.Root = v
			p.BareVar = first
			reverse(p.Indices)
			return p, true
		case *ast.IndexExpr:
			p.Indices = append(p.Indices, x.Index)
			e = x.X
		case *ast.SelectorExpr:
			// Qualified package variable (pkg.Var): the root is the
			// package-level variable itself.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					v, ok := info.Uses[x.Sel].(*types.Var)
					if !ok {
						return Path{}, false
					}
					p.Root = v
					p.BareVar = first
					reverse(p.Indices)
					return p, true
				}
			}
			p.HasField = true
			if t := info.TypeOf(x.X); t != nil {
				if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
					p.HasDeref = true
				}
			}
			e = x.X
		case *ast.StarExpr:
			p.HasDeref = true
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return Path{}, false
		}
		first = false
	}
}

func varOf(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	v, ok := info.Defs[id].(*types.Var)
	return v, ok
}

func reverse(es []ast.Expr) {
	for i, j := 0, len(es)-1; i < j; i, j = i+1, j-1 {
		es[i], es[j] = es[j], es[i]
	}
}
