// Package ssa is monetvet's flow-analysis layer: a deliberately small,
// standard-library-only reimplementation of the pieces of
// golang.org/x/tools/go/ssa the deep analyzers need (the x/tools
// module is not vendored in this repo and the toolchain's copy is
// unimportable; see the framework package doc). It provides:
//
//   - a control-flow graph over a function body, with statements as
//     atoms, loop depth per block, and a node→site index (cfg.go)
//   - dominators over that CFG, for "this Lock() dominates that
//     store" proofs (dom.go)
//   - a function-wide definition set with a fixed-point "derived
//     from" taint closure, for "this index expression is derived from
//     the worker id" proofs (defuse.go)
//   - l-value path resolution (root variable, index chain, field and
//     deref steps) shared by the store and alias analyses (path.go)
//   - closure-capture resolution: the free variables of a func
//     literal (capture.go)
//
// The design trade-offs are the usual ones for a lint-grade analysis,
// chosen so every approximation errs toward *fewer* findings on
// correct code (the proofs are used to excuse stores, never to accuse
// them):
//
//   - The definition set is flow-insensitive: every assignment to a
//     variable anywhere in the function counts as a definition. Taint
//     therefore over-approximates "derived from", which can only make
//     more stores look worker-local.
//   - Nested func literals are not given their own CFGs; their
//     statements map to the site of the statement that creates the
//     literal. Dominance queries about code inside a closure resolve
//     to the closure's creation point, which is conservative for
//     guard proofs.
//   - Unreachable code dominates nothing and is dominated by nothing;
//     guard proofs simply fail there.
package ssa

import (
	"go/ast"
	"go/types"
)

// A Func is the flow graph of one function (or func literal) body.
type Func struct {
	Info   *types.Info
	Body   *ast.BlockStmt
	Blocks []*Block
	Entry  *Block

	sites map[ast.Node]Site
	idom  []int // Blocks index -> immediate dominator index; -1 entry/unreachable
	rpo   []int // Blocks index -> reverse-postorder number; -1 unreachable
}

// A Block is a maximal straight-line sequence of statement atoms.
// Structured statements (if/for/switch/...) appear as an atom in the
// block where their header evaluates; their bodies live in successor
// blocks.
type Block struct {
	Index     int
	Stmts     []ast.Stmt
	Succs     []*Block
	Preds     []*Block
	LoopDepth int
}

// A Site locates a statement atom within a Func: the block it belongs
// to and its index in that block's atom list.
type Site struct {
	Block *Block
	Index int
}

// Build constructs the CFG of body. Dominators are computed lazily on
// the first Dominates query.
func Build(info *types.Info, body *ast.BlockStmt) *Func {
	f := &Func{Info: info, Body: body, sites: make(map[ast.Node]Site)}
	b := &builder{f: f, labels: make(map[string]*Block)}
	b.cur = b.newBlock(0)
	f.Entry = b.cur
	b.stmtList(body.List)
	for _, blk := range f.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return f
}

// SiteOf returns the statement atom n belongs to. Nodes inside nested
// func literals resolve to the statement that creates the literal.
func (f *Func) SiteOf(n ast.Node) (Site, bool) {
	s, ok := f.sites[n]
	return s, ok
}

// LoopDepthOf returns the loop-nesting depth of the block containing
// n, or 0 if n is not in the graph.
func (f *Func) LoopDepthOf(n ast.Node) int {
	if s, ok := f.sites[n]; ok {
		return s.Block.LoopDepth
	}
	return 0
}
