package framework

import (
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{File: "internal/engine/planner.go", Line: 42, Col: 3, Analyzer: "morselrace", Message: "write to captured total"},
		{File: "internal/core/parallel.go", Line: 7, Col: 1, Analyzer: "kernalloc", Message: "kernel loop calls newBuf"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d findings, want 2", len(loaded))
	}
	// WriteBaseline sorts; the parallel.go finding comes first.
	if loaded[0].File != "internal/core/parallel.go" || loaded[0].Analyzer != "kernalloc" {
		t.Fatalf("unexpected first finding: %+v", loaded[0])
	}
}

func TestLoadBaselineMissingFile(t *testing.T) {
	got, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || got != nil {
		t.Fatalf("missing baseline should be empty, got %v, %v", got, err)
	}
}

func TestFilterBaselineIgnoresLines(t *testing.T) {
	baseline := []Finding{{File: "a.go", Line: 10, Analyzer: "morselrace", Message: "m"}}
	moved := []Finding{{File: "a.go", Line: 99, Analyzer: "morselrace", Message: "m"}}
	if fresh := FilterBaseline(moved, baseline); len(fresh) != 0 {
		t.Fatalf("moved finding should be absorbed, got %+v", fresh)
	}
}

func TestFilterBaselineMultiset(t *testing.T) {
	baseline := []Finding{{File: "a.go", Analyzer: "kernalloc", Message: "m"}}
	twice := []Finding{
		{File: "a.go", Line: 1, Analyzer: "kernalloc", Message: "m"},
		{File: "a.go", Line: 2, Analyzer: "kernalloc", Message: "m"},
	}
	fresh := FilterBaseline(twice, baseline)
	if len(fresh) != 1 || fresh[0].Line != 2 {
		t.Fatalf("one instance should survive the single baseline entry, got %+v", fresh)
	}
}

func TestFilterBaselineNewAnalyzer(t *testing.T) {
	baseline := []Finding{{File: "a.go", Analyzer: "kernalloc", Message: "m"}}
	other := []Finding{{File: "a.go", Analyzer: "morselrace", Message: "m"}}
	if fresh := FilterBaseline(other, baseline); len(fresh) != 1 {
		t.Fatalf("different analyzer must not be absorbed, got %+v", fresh)
	}
}
