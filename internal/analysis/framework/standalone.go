package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the slice of `go list -json` output the standalone
// loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string // export data file (-export)
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// StandaloneOptions control the standalone driver's reporting.
type StandaloneOptions struct {
	// JSON prints surviving findings as a JSON array on stdout
	// instead of text on w.
	JSON bool
	// BaselinePath, when set, loads accepted findings from that file
	// and reports only findings not covered by it.
	BaselinePath string
	// WriteBaseline rewrites BaselinePath to accept every current
	// finding instead of reporting anything.
	WriteBaseline bool
}

// Standalone loads the packages matching patterns with
// `go list -deps -export -json`, typechecks each non-dependency
// package from source against the compiler's export data, runs the
// analyzers, and prints surviving diagnostics to w. It returns the
// process exit code: 0 clean, 1 diagnostics, 2 load failure.
//
// This is the ergonomic local entry point (`monetvet ./...`); CI and
// `go vet -vettool` go through the unitchecker protocol instead.
func Standalone(patterns []string, analyzers []*Analyzer, w io.Writer) int {
	return StandaloneWith(patterns, analyzers, w, StandaloneOptions{})
}

// StandaloneWith is Standalone with baseline and JSON reporting.
func StandaloneWith(patterns []string, analyzers []*Analyzer, w io.Writer, opts StandaloneOptions) int {
	findings, code := collectFindings(patterns, analyzers, w)
	if code != 0 {
		return code
	}

	if opts.WriteBaseline {
		if opts.BaselinePath == "" {
			fmt.Fprintln(w, "monetvet: -write-baseline requires -baseline <file>")
			return 2
		}
		if err := WriteBaseline(opts.BaselinePath, findings); err != nil {
			fmt.Fprintf(w, "monetvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(w, "monetvet: wrote %d finding(s) to %s\n", len(findings), opts.BaselinePath)
		return 0
	}
	if opts.BaselinePath != "" {
		baseline, err := LoadBaseline(opts.BaselinePath)
		if err != nil {
			fmt.Fprintf(w, "monetvet: %v\n", err)
			return 2
		}
		findings = FilterBaseline(findings, baseline)
	}

	if opts.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(w, "monetvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// collectFindings runs the analyzers over the matched packages and
// returns every surviving diagnostic as a Finding with a
// repo-relative file path. The int is an exit code: non-zero only for
// load or analysis failures.
func collectFindings(patterns []string, analyzers []*Analyzer, w io.Writer) ([]Finding, int) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(w, "monetvet: go list: %v\n%s", err, stderr.String())
		return nil, 2
	}

	exports := make(map[string]string) // package path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			fmt.Fprintf(w, "monetvet: decoding go list output: %v\n", err)
			return nil, 2
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil {
			fmt.Fprintf(w, "monetvet: %s: %s\n", p.ImportPath, p.Error.Err)
			return nil, 2
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var findings []Finding
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(w, "monetvet: %v\n", err)
				return nil, 2
			}
			files = append(files, f)
		}
		tc := &types.Config{Importer: imp, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
		info := NewTypesInfo()
		tpkg, err := tc.Check(p.ImportPath, fset, files, info)
		if err != nil {
			fmt.Fprintf(w, "monetvet: %s: %v\n", p.ImportPath, err)
			return nil, 2
		}
		diags, err := RunPackage(&Package{Fset: fset, Files: files, Types: tpkg, Info: info}, analyzers)
		if err != nil {
			fmt.Fprintf(w, "monetvet: %s: %v\n", p.ImportPath, err)
			return nil, 2
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			findings = append(findings, Finding{
				File:     relFile(pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return findings, 0
}
