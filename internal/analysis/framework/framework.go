// Package framework is a small, self-contained analysis driver in the
// style of golang.org/x/tools/go/analysis, built on the standard
// library only (the x/tools module is not vendored here; the Go
// toolchain's copy lives under cmd/vendor and is unimportable). It
// provides just the subset monetvet needs: per-package analyzers over
// parsed+typechecked syntax, the `go vet -vettool` unitchecker
// protocol (unit.go), a `go list`-based standalone loader
// (standalone.go), and a fixture test runner (analysistest).
//
// Two conventions are enforced centrally, for every analyzer:
//
//   - Files ending in _test.go are exempt. The invariants monetvet
//     encodes (zero-alloc kernels, deterministic merge order,
//     sim-purity, non-nil selections, no reflection in hot packages)
//     bind production code; tests may use maps, sort.Slice and
//     reflection freely.
//
//   - A diagnostic may be suppressed with a justified allow comment on
//     the offending line or the line directly above:
//
//     //monet:allow <analyzer>[,<analyzer>...] <justification>
//
//     The justification is mandatory: an allow comment without one is
//     itself reported as a diagnostic, so every suppression in the
//     tree documents why the invariant does not apply.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run is invoked once per
// package with a fully typechecked Pass and reports findings through
// pass.Reportf.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "hotalloc"
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// A Pass hands one typechecked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Package bundles the inputs every driver (unitchecker, standalone,
// analysistest) produces before running analyzers.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewTypesInfo returns a types.Info with every map analyzers consult
// populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// allowDirective is one parsed //monet:allow comment.
type allowDirective struct {
	line      int
	analyzers map[string]bool
	justified bool
	pos       token.Pos
}

const allowPrefix = "monet:allow"

// parseAllows collects the //monet:allow directives of a file.
// Malformed directives (no analyzer list, or no justification) are
// returned separately so RunPackage can report them.
func parseAllows(fset *token.FileSet, f *ast.File) (byLine map[int][]allowDirective, malformed []Diagnostic) {
	byLine = make(map[int][]allowDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments don't carry directives
			}
			text, ok = strings.CutPrefix(strings.TrimSpace(text), allowPrefix)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			fields := strings.Fields(text)
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "monetvet",
					Message:  "malformed //monet:allow: want \"//monet:allow <analyzer>[,<analyzer>] <justification>\" (the justification is mandatory)",
				})
				continue
			}
			d := allowDirective{line: line, analyzers: make(map[string]bool), justified: true, pos: c.Pos()}
			for _, name := range strings.Split(fields[0], ",") {
				d.analyzers[name] = true
			}
			byLine[line] = append(byLine[line], d)
		}
	}
	return byLine, malformed
}

// RunPackage runs every analyzer over pkg and returns the surviving
// diagnostics, sorted by position: findings in _test.go files are
// dropped, findings covered by a justified //monet:allow on the same
// or preceding line are suppressed, and malformed allow comments are
// reported as diagnostics of their own.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := make(map[string]map[int][]allowDirective) // filename -> line -> directives
	var diags []Diagnostic
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		byLine, malformed := parseAllows(pkg.Fset, f)
		allows[name] = byLine
		diags = append(diags, malformed...)
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		if strings.HasSuffix(posn.Filename, "_test.go") {
			continue
		}
		if suppressed(allows[posn.Filename], posn.Line, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// suppressed reports whether a justified allow for analyzer covers
// line (directives apply to their own line and the one below).
func suppressed(byLine map[int][]allowDirective, line int, analyzer string) bool {
	for _, l := range [2]int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.justified && d.analyzers[analyzer] {
				return true
			}
		}
	}
	return false
}
