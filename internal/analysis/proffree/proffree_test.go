package proffree_test

import (
	"testing"

	"monetlite/internal/analysis/framework/analysistest"
	"monetlite/internal/analysis/proffree"
)

func TestProffree(t *testing.T) {
	analysistest.Run(t, proffree.Analyzer, "kern")
}
