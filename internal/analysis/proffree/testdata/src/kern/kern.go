// Fixture for the proffree analyzer: profiling hooks inside
// //monet:kernel loops must be nil-guarded so disabled profiling
// costs nothing. The stub types mirror engine.Profile and
// core.SpanRecorder by name, which is how monetvet recognizes them.
package kern

type Profile struct{ rows int64 }

func (p *Profile) AddStage(rows int64) { p.rows += rows }

type SpanRecorder struct{ last int64 }

func (r *SpanRecorder) Clock() int64             { return r.last }
func (r *SpanRecorder) Record(w, u int, s int64) { r.last = s }

type execCtx struct {
	prof  *Profile
	spans *SpanRecorder
}

//monet:kernel
func unguarded(ctx *execCtx, n int) {
	for i := 0; i < n; i++ {
		ctx.spans.Record(0, i, 0) // want "profiling hook"
	}
}

//monet:kernel
func guardedInLoop(ctx *execCtx, n int) {
	for i := 0; i < n; i++ {
		if ctx.spans != nil {
			start := ctx.spans.Clock()
			ctx.spans.Record(0, i, start)
		}
	}
}

//monet:kernel
func earlyReturn(ctx *execCtx, n int) int {
	if ctx.spans == nil {
		return work(n)
	}
	total := 0
	for i := 0; i < n; i++ {
		start := ctx.spans.Clock()
		total += work(i)
		ctx.spans.Record(0, i, start)
	}
	return total
}

//monet:kernel
func earlyContinue(ctx *execCtx, n int) {
	for i := 0; i < n; i++ {
		if ctx.prof == nil {
			continue
		}
		ctx.prof.AddStage(int64(i))
	}
}

// wrongGuard checks the receiver match is exact: guarding prof does
// not license a spans hook.
//
//monet:kernel
func wrongGuard(ctx *execCtx, n int) {
	for i := 0; i < n; i++ {
		if ctx.prof != nil {
			ctx.spans.Record(0, i, 0) // want "profiling hook"
		}
	}
}

// guardOutsideClosure: the engine's morsel-body idiom — a closure
// created under the guard inherits it.
//
//monet:kernel
func guardOutsideClosure(ctx *execCtx, n int) {
	if ctx.spans != nil {
		each(n, func(i int) {
			ctx.spans.Record(0, i, 0)
		})
	}
}

// unguardedClosure: a hook inside a closure run per element of a loop
// with no guard anywhere.
//
//monet:kernel
func unguardedClosure(ctx *execCtx, n int) {
	for i := 0; i < n; i++ {
		func() {
			ctx.spans.Record(0, i, 0) // want "profiling hook"
		}()
	}
}

// setupCost: hook calls outside any loop are per-query setup, not
// per-tuple cost; proffree leaves them to the engine's alloc gates.
//
//monet:kernel
func setupCost(ctx *execCtx) {
	ctx.spans.Record(0, 0, 0)
}

// notKernel has no directive: free to profile however it likes.
func notKernel(ctx *execCtx, n int) {
	for i := 0; i < n; i++ {
		ctx.spans.Record(0, i, 0)
	}
}

func work(n int) int { return n * 2 }

func each(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}
