// Package proffree enforces the zero-cost-when-disabled contract of
// the execution profiler inside //monet:kernel functions. Profiling
// hooks (methods on engine.Profile, core.SpanRecorder, or the
// per-operator OpStats nodes) are observation-only and must vanish
// when profiling is off; the engine's idiom is a nil check on the
// hook receiver hoisted around the call:
//
//	if ctx.spans != nil {
//	    start := ctx.spans.Clock()
//	    ...
//	    ctx.spans.Record(w, m, start)
//	}
//
// Inside a kernel's inner loops the analyzer flags any profiling-hook
// method call whose receiver is not covered by such a guard — either
// an enclosing `if recv != nil { ... }` body, or an earlier
// `if recv == nil { return/continue/break }` early-out in the same
// block. An unguarded hook call per iteration is exactly the kind of
// hidden per-tuple cost the paper's cache-resident loops cannot
// afford, and it dodges the allocation gates because the call itself
// may not allocate.
//
// Like the rest of monetvet, profiling types are recognized by type
// name (Profile, SpanRecorder, OpStats) so the analyzer works on both
// the real tree and analysistest fixture stubs.
package proffree

import (
	"go/ast"
	"go/token"
	"go/types"

	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/monet"
)

var Analyzer = &framework.Analyzer{
	Name: "proffree",
	Doc:  "flag unguarded profiling-hook calls inside //monet:kernel loops",
	Run:  run,
}

// profTypes are the type names whose methods count as profiling
// hooks.
var profTypes = map[string]bool{
	"Profile":      true,
	"SpanRecorder": true,
	"OpStats":      true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && monet.IsKernel(fn) {
				c := &checker{pass: pass}
				c.block(fn.Body.List, nil, 0)
			}
		}
	}
	return nil
}

type checker struct {
	pass *framework.Pass
}

// guards is the set of receiver expressions (by printed form) proven
// non-nil at the current point. Extension copies so sibling branches
// stay independent.
type guards map[string]bool

func (g guards) with(e ast.Expr) guards {
	out := make(guards, len(g)+1)
	for k := range g {
		out[k] = true
	}
	out[types.ExprString(ast.Unparen(e))] = true
	return out
}

// block walks a statement list, threading guards established by
// early-out statements (`if recv == nil { return }`) into the
// statements that follow them.
func (c *checker) block(stmts []ast.Stmt, g guards, depth int) {
	for _, s := range stmts {
		c.stmt(s, g, depth)
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && terminates(ifs.Body) {
			for _, e := range nilWhenTrue(ifs.Cond) {
				g = g.with(e)
			}
		}
	}
}

func (c *checker) stmt(s ast.Stmt, g guards, depth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.block(s.List, g, depth)
	case *ast.IfStmt:
		c.stmt(s.Init, g, depth)
		c.exprs(g, depth, s.Cond)
		bodyG := g
		for _, e := range nonNilWhenTrue(s.Cond) {
			bodyG = bodyG.with(e)
		}
		c.block(s.Body.List, bodyG, depth)
		if s.Else != nil {
			elseG := g
			for _, e := range nilWhenTrue(s.Cond) {
				elseG = elseG.with(e)
			}
			c.stmt(s.Else, elseG, depth)
		}
	case *ast.ForStmt:
		c.stmt(s.Init, g, depth)
		// Cond and post run once per iteration, so hooks there count
		// as in-loop.
		c.exprs(g, depth+1, s.Cond)
		c.stmt(s.Post, g, depth+1)
		c.block(s.Body.List, g, depth+1)
	case *ast.RangeStmt:
		c.exprs(g, depth, s.X)
		c.block(s.Body.List, g, depth+1)
	case *ast.SwitchStmt:
		c.stmt(s.Init, g, depth)
		c.exprs(g, depth, s.Tag)
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			for _, le := range cl.List {
				c.exprs(g, depth, le)
			}
			c.block(cl.Body, g, depth)
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, g, depth)
		c.stmt(s.Assign, g, depth)
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body, g, depth)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			c.stmt(comm.Comm, g, depth)
			c.block(comm.Body, g, depth)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, g, depth)
	default:
		// Leaf statements (expression, assignment, return, go, defer,
		// inc/dec, send, declaration): scan their expressions. Leaf
		// statements contain no nested statements outside func
		// literals, which the walker intercepts.
		c.exprs(g, depth, s)
	}
}

// exprs scans nodes for profiling-hook calls at the given loop depth,
// descending into func literals with the same guards — the engine's
// closures (morsel bodies, span bodies) run inline under the guard
// that encloses their creation.
func (c *checker) exprs(g guards, depth int, es ...ast.Node) {
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				c.block(n.Body.List, g, depth)
				return false
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// Only reachable through a FuncLit body, which block()
				// already re-enters; never via a plain expression.
				return false
			case *ast.CallExpr:
				c.checkCall(n, g, depth)
			}
			return true
		})
	}
}

// checkCall flags an in-loop method call on a profiling type whose
// receiver is not proven non-nil.
func (c *checker) checkCall(call *ast.CallExpr, g guards, depth int) {
	if depth == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return // package-qualified call, not a method
	}
	name := profTypeName(c.pass.TypesInfo.TypeOf(sel.X))
	if name == "" {
		return
	}
	recv := types.ExprString(ast.Unparen(sel.X))
	if g[recv] {
		return
	}
	c.pass.Reportf(call.Pos(),
		"profiling hook %s.%s (method on %s) inside a kernel loop without a nil guard on %s: profiling must be zero-cost when disabled; wrap the call in `if %s != nil { ... }` or return early when it is nil",
		recv, sel.Sel.Name, name, recv, recv)
}

// profTypeName returns the profiling type name t resolves to (through
// a pointer), or "".
func profTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || !profTypes[named.Obj().Name()] {
		return ""
	}
	return named.Obj().Name()
}

// nonNilWhenTrue returns the expressions proven non-nil when cond is
// true: `x != nil`, possibly conjoined (`x != nil && y != nil`).
func nonNilWhenTrue(cond ast.Expr) []ast.Expr {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	if b.Op == token.LAND {
		return append(nonNilWhenTrue(b.X), nonNilWhenTrue(b.Y)...)
	}
	if e, isEq := nilCompare(b); e != nil && !isEq {
		return []ast.Expr{e}
	}
	return nil
}

// nilWhenTrue returns the expressions known nil when cond is true:
// `x == nil`, possibly disjoined (`x == nil || y == nil` — if the
// guarded body terminates, both are non-nil afterwards).
func nilWhenTrue(cond ast.Expr) []ast.Expr {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	if b.Op == token.LOR {
		return append(nilWhenTrue(b.X), nilWhenTrue(b.Y)...)
	}
	if e, isEq := nilCompare(b); e != nil && isEq {
		return []ast.Expr{e}
	}
	return nil
}

// nilCompare decomposes `x == nil` / `x != nil` (either operand
// order) into the non-nil operand and whether the operator is ==.
func nilCompare(b *ast.BinaryExpr) (ast.Expr, bool) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return nil, false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNil(y) {
		return x, b.Op == token.EQL
	}
	if isNil(x) {
		return y, b.Op == token.EQL
	}
	return nil, false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block's last statement leaves the
// enclosing scope (return, break, continue, goto, or panic), making
// it a valid early-out guard body.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
