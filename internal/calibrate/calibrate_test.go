package calibrate

import (
	"os"
	"path/filepath"
	"testing"

	"monetlite/internal/memsim"
)

// fixturePath is the committed host profile measured once on a real
// machine; engine tests load it instead of calibrating CI hardware.
const fixturePath = "testdata/host-fixture.json"

// TestCheckCannedProfiles: every canned memsim profile satisfies the
// calibration sanity invariants — Check must accept what the simulator
// already trusts.
func TestCheckCannedProfiles(t *testing.T) {
	for _, m := range append(memsim.Machines(), memsim.Modern()) {
		if err := Check(m); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// TestCheckRejectsBroken: Check catches each class of impossible
// calibration output.
func TestCheckRejectsBroken(t *testing.T) {
	base := memsim.Modern()
	cases := map[string]func(*memsim.Machine){
		"L1 larger than L2":  func(m *memsim.Machine) { m.L1.Size = m.L2.Size * 2 },
		"zero work constant": func(m *memsim.Machine) { m.Cost.WScanBUN = 0 },
		"negative latency":   func(m *memsim.Machine) { m.Cost.LatTLB = -1 },
		"L2 slower than RAM": func(m *memsim.Machine) { m.Cost.LatL2 = m.Cost.LatMem * 2 },
		"seq slower than random": func(m *memsim.Machine) {
			m.Cost.LatMemSeq = m.Cost.LatMem * 2
		},
	}
	for name, mutate := range cases {
		m := base
		mutate(&m)
		if err := Check(m); err == nil {
			t.Errorf("%s: Check accepted a broken profile", name)
		}
	}
}

// TestFixtureProfile: the committed fixture loads, carries the host
// name, and passes the full invariant check — it is what engine tests
// run the cost model on.
func TestFixtureProfile(t *testing.T) {
	m, err := memsim.LoadMachineFile(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != memsim.HostName {
		t.Errorf("fixture name = %q, want %q", m.Name, memsim.HostName)
	}
	if err := Check(m); err != nil {
		t.Errorf("fixture fails calibration invariants: %v", err)
	}
}

// TestSaveLoadRoundTrip: Save→Load→Save is byte-identical — the
// persistence format is deterministic, so a re-saved calibration never
// shows up as a spurious diff.
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	orig, err := memsim.LoadMachineFile(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := memsim.SaveMachineFile(orig, p1); err != nil {
		t.Fatal(err)
	}
	back, err := memsim.LoadMachineFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round-trip changed the machine:\n got %+v\nwant %+v", back, orig)
	}
	if err := memsim.SaveMachineFile(back, p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("re-saving a loaded profile produced different bytes")
	}
}

// TestHostSearchPathOverride: $MONETLITE_CALIBRATION pins the file and
// MachineByName("host") resolves through it.
func TestHostSearchPathOverride(t *testing.T) {
	t.Setenv(memsim.HostFileEnv, fixturePath)
	m, err := memsim.MachineByName(memsim.HostName)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != memsim.HostName {
		t.Errorf("resolved name = %q, want %q", m.Name, memsim.HostName)
	}
	fix, err := memsim.LoadMachineFile(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if m != fix {
		t.Error("MachineByName(host) differs from the fixture it should have loaded")
	}
}

// TestLoadHostRejectsBrokenFile: an existing but invalid calibration
// file is an error, never a silent fallback.
func TestLoadHostRejectsBrokenFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "broken.json")
	if err := os.WriteFile(p, []byte(`{"Name":"host"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv(memsim.HostFileEnv, p)
	if _, _, err := memsim.LoadHost(); err == nil {
		t.Error("LoadHost accepted a geometry-free profile")
	}
	if _, err := memsim.MachineByName(memsim.HostName); err == nil {
		t.Error("MachineByName(host) accepted a geometry-free profile")
	}
}

// TestHostConfigTooSmall: a config that cannot resolve any knee is
// rejected up front instead of producing garbage.
func TestHostConfigTooSmall(t *testing.T) {
	if _, _, err := Host(Config{MaxWorkingSet: 1 << 10, ChaseSteps: 16, Repeats: 1}); err == nil {
		t.Error("Host accepted a degenerate config")
	}
}

// TestHostLiveMeasurement runs a real (reduced-sweep) calibration on
// the machine executing the tests and checks only the invariants — the
// measured numbers vary by host, their consistency must not. Skipped
// in -short mode: it is a multi-second timing measurement.
func TestHostLiveMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("live hardware measurement; skipped in -short mode")
	}
	cfg := Quick()
	cfg.MaxWorkingSet = 8 << 20
	cfg.ChaseSteps = 1 << 15
	m, rep, err := Host(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(m); err != nil {
		t.Errorf("live calibration violates invariants: %v", err)
	}
	if m.Name != memsim.HostName {
		t.Errorf("live calibration name = %q, want %q", m.Name, memsim.HostName)
	}
	if rep == nil || len(rep.ChaseCurve) < 4 || len(rep.LineCurve) == 0 || len(rep.TLBCurve) == 0 {
		t.Fatalf("report missing curves: %+v", rep)
	}
	p := filepath.Join(t.TempDir(), "live.json")
	if err := memsim.SaveMachineFile(m, p); err != nil {
		t.Fatal(err)
	}
	back, err := memsim.LoadMachineFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Error("live profile did not survive a save/load round trip")
	}
}
