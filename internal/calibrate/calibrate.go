// Package calibrate measures the cache/TLB geometry and per-event
// latencies of the machine it runs on — the paper's Calibrator
// (§3.4.3, www.cwi.nl/~manegold/Calibrator) reborn in Go. The paper's
// authors ran it on every experimental platform before modelling it;
// here its output is a memsim.Machine named "host" that the engine's
// unified cost model prices plans with, replacing the canned 1999
// profiles with measured reality.
//
// Measurement techniques, all latency- rather than bandwidth-bound:
//
//   - Cache line size: a sequential strided read over a RAM-sized
//     buffer. Per-access cost grows with the stride until it reaches
//     the line size (every access its own miss), then flattens — the
//     knee is the line.
//   - Cache capacities and miss latencies: a pointer chase along a
//     random single-cycle permutation of line-spaced slots. The data
//     dependency defeats out-of-order overlap and the random order
//     defeats the prefetchers, so per-access time is the true load
//     latency of whatever level the working set spills into. The
//     latency-vs-working-set curve is a staircase; its jumps mark the
//     L1 and L2 capacities, its plateaus the miss latencies.
//   - TLB: a pointer chase touching one line per page, with the
//     intra-page offset rotated so the touched lines spread over cache
//     sets (otherwise every page's line maps to the same sets and the
//     cache capacity masks the TLB knee). Latency jumps when the page
//     count exceeds the TLB.
//   - Sequential-miss cost: a full-speed sequential sweep — DRAM
//     bursts and non-blocking caches overlap these misses, which is
//     exactly the LatMemSeq < LatMem effect Figure 3's plateaus show.
//   - CPU work: dependent-add chains (clock) and cache-resident scan
//     loops (per-BUN / per-byte work), with the paper's per-operation
//     join and cluster constants scaled from the Origin2000 values by
//     the measured scan-work ratio — the residual-learning loop then
//     corrects per-operator-kind deviations from that uniform scaling.
//
// Every timed section takes the minimum over Config.Repeats runs: the
// minimum is the run least disturbed by scheduling noise, the right
// estimator for a lower-bound hardware latency.
package calibrate

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"monetlite/internal/memsim"
)

// Config sizes the calibration sweeps.
type Config struct {
	// MaxWorkingSet bounds the pointer-chase working-set grid; it must
	// comfortably exceed any L2 for the DRAM plateau to appear.
	MaxWorkingSet int
	// ChaseSteps is the number of dependent loads timed per
	// working-set point.
	ChaseSteps int
	// Repeats is how many times each timed section runs; the minimum
	// is kept.
	Repeats int
	// MaxTLBPages bounds the TLB sweep's page count.
	MaxTLBPages int
}

// Default returns the full-accuracy configuration (a few seconds of
// measurement).
func Default() Config {
	return Config{
		MaxWorkingSet: 64 << 20,
		ChaseSteps:    1 << 19,
		Repeats:       3,
		MaxTLBPages:   1 << 13,
	}
}

// Quick returns a reduced-sweep configuration for CI smoke jobs:
// coarser (the DRAM plateau is shallower at 16 MB) but fast.
func Quick() Config {
	return Config{
		MaxWorkingSet: 16 << 20,
		ChaseSteps:    1 << 17,
		Repeats:       2,
		MaxTLBPages:   1 << 12,
	}
}

// Point is one sample of a measured curve.
type Point struct {
	X  int     `json:"x"`  // working-set bytes, stride bytes, or pages
	NS float64 `json:"ns"` // nanoseconds per access
}

// Report carries the raw calibration curves alongside the derived
// machine — the evidence behind every parameter.
type Report struct {
	LineCurve  []Point `json:"line_curve"`  // stride sweep (line size)
	ChaseCurve []Point `json:"chase_curve"` // working-set sweep (capacity/latency)
	TLBCurve   []Point `json:"tlb_curve"`   // page-count sweep
	SeqNSLine  float64 `json:"seq_ns_line"` // sequential sweep, ns per L2 line
	ScanBUNNS  float64 `json:"scan_bun_ns"` // cache-resident 8-byte scan, ns per BUN
	ScanByteNS float64 `json:"scan_byte_ns"`
	ClockMHz   float64 `json:"clock_mhz"`
}

// sink defeats dead-code elimination of the measurement loops.
var sink int64

// touchPages writes one word per page so the buffer is backed by real
// frames before timing — reads on untouched Go allocations can hit
// copy-on-write zero pages and measure the cache, not the memory.
func touchPages(buf []int32) {
	for i := 0; i < len(buf); i += 1024 {
		buf[i] = int32(i)
	}
}

// minNS times fn repeats times and returns the fastest run in
// nanoseconds.
func minNS(repeats int, fn func()) float64 {
	best := 0.0
	for r := 0; r < repeats; r++ {
		start := time.Now()
		fn()
		d := float64(time.Since(start).Nanoseconds())
		if r == 0 || d < best {
			best = d
		}
	}
	return best
}

// chaseCycle links buf's slots (spaced stride bytes apart, int32
// indices) into one random cycle and returns the chase entry point.
// The permutation is seeded deterministically: calibration noise
// should come from the machine, not the pattern.
func chaseCycle(buf []int32, n, spacing int, seed int64) int {
	r := rand.New(rand.NewSource(seed))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	for k := 0; k < n; k++ {
		buf[order[k]*spacing] = int32(order[(k+1)%n] * spacing)
	}
	return order[0] * spacing
}

// chaseNS runs steps dependent loads along the cycle and returns ns
// per access (minimum over repeats).
func chaseNS(buf []int32, start, steps, repeats int) float64 {
	total := minNS(repeats, func() {
		p := int32(start)
		for i := 0; i < steps; i++ {
			p = buf[p]
		}
		sink += int64(p)
	})
	return total / float64(steps)
}

// measureLine sweeps the stride of a sequential read over a RAM-sized
// buffer: per-access time rises until the stride covers a full cache
// line, then flattens. Returns the detected line size and the curve.
func measureLine(cfg Config) (int, []Point) {
	bytes := cfg.MaxWorkingSet
	buf := make([]int32, bytes/4)
	touchPages(buf)
	var curve []Point
	for stride := 8; stride <= 512; stride *= 2 {
		sp := stride / 4
		accesses := len(buf) / sp
		total := minNS(cfg.Repeats, func() {
			var s int64
			for i := 0; i < len(buf); i += sp {
				s += int64(buf[i])
			}
			sink += s
		})
		curve = append(curve, Point{X: stride, NS: total / float64(accesses)})
	}
	// The line size is where the steepest growth ends: per-access cost
	// grows with the stride while stride < line (each access covers a
	// growing fraction of a miss) and flattens once every access is a
	// full transfer. That knee only exists where sequential misses are
	// latency-bound; aggressive prefetchers (and virtualized hosts)
	// flatten it into near-linear bandwidth growth, where any jump-
	// picking would flap run to run. Accept the knee only when it is
	// unambiguous — the largest jump ≥ 1.5 and ≥ 1.3× the runner-up —
	// and otherwise fall back to 64 bytes, the line size of every
	// relevant contemporary core.
	best, second, bestAt := 0.0, 0.0, -1
	for i := 1; i < len(curve); i++ {
		if curve[i-1].NS <= 0 {
			continue
		}
		r := curve[i].NS / curve[i-1].NS
		if r > best {
			second, best, bestAt = best, r, i
		} else if r > second {
			second = r
		}
	}
	line := 64
	if bestAt >= 0 && best >= 1.5 && best >= 1.3*second {
		line = curve[bestAt].X
	}
	if line < 32 {
		line = 32 // no sub-32B line hardware worth modelling
	}
	if line > 256 {
		line = 256
	}
	return line, curve
}

// measureChase sweeps the pointer-chase working set over powers of two
// and returns the latency curve.
func measureChase(cfg Config, line int) []Point {
	buf := make([]int32, cfg.MaxWorkingSet/4)
	spacing := line / 4
	var curve []Point
	for ws := 4 << 10; ws <= cfg.MaxWorkingSet; ws *= 2 {
		n := ws / line
		if n < 8 {
			continue
		}
		start := chaseCycle(buf, n, spacing, int64(ws))
		steps := cfg.ChaseSteps
		if ws >= 1<<20 {
			steps = cfg.ChaseSteps / 4 // RAM points are slow; fewer steps suffice
		}
		curve = append(curve, Point{X: ws, NS: chaseNS(buf, start, steps, cfg.Repeats)})
	}
	return curve
}

// knees finds the two largest latency jumps in the chase curve — the
// L1 and L2 capacity boundaries. A jump at point i means working set
// curve[i+1].X spilled the cache that still held curve[i].X, so the
// capacity is curve[i].X. Returns indices into curve, -1 when a knee
// is indistinct (jump ratio under 1.25).
func knees(curve []Point) (l1, l2 int) {
	l1, l2 = -1, -1
	best1, best2 := 1.25, 1.25
	for i := 0; i+1 < len(curve); i++ {
		if curve[i].NS <= 0 {
			continue
		}
		r := curve[i+1].NS / curve[i].NS
		switch {
		case r > best1:
			best2, l2 = best1, l1
			best1, l1 = r, i
		case r > best2:
			best2, l2 = r, i
		}
	}
	if l1 >= 0 && l2 >= 0 && curve[l1].X > curve[l2].X {
		l1, l2 = l2, l1
	}
	return l1, l2
}

// plateauNS averages the curve's latency over (lo, hi] working sets —
// one staircase step.
func plateauNS(curve []Point, lo, hi int) float64 {
	sum, n := 0.0, 0
	for _, p := range curve {
		if p.X > lo && p.X <= hi {
			sum += p.NS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// measureTLB chases one line per page over a growing page count,
// rotating the intra-page offset so the touched lines spread across
// cache sets. Returns the curve (X = pages).
func measureTLB(cfg Config, pageSize, line int) []Point {
	buf := make([]int32, cfg.MaxTLBPages*pageSize/4)
	perPage := pageSize / 4
	var curve []Point
	for pages := 8; pages <= cfg.MaxTLBPages; pages *= 2 {
		// Build the cycle by hand: slot i lives on page i at offset
		// (i % 64) lines into the page.
		r := rand.New(rand.NewSource(int64(pages)))
		order := make([]int, pages)
		for i := range order {
			order[i] = i
		}
		for i := pages - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		// Rotate the intra-page line offset so the touched lines spread
		// over cache sets, staying inside the page.
		offsets := pageSize / line
		if offsets < 1 {
			offsets = 1
		}
		if offsets > 64 {
			offsets = 64
		}
		slot := func(i int) int32 {
			return int32(i*perPage + (i%offsets)*(line/4))
		}
		for k := 0; k < pages; k++ {
			buf[slot(order[k])] = slot(order[(k+1)%pages])
		}
		steps := cfg.ChaseSteps / 8
		curve = append(curve, Point{X: pages,
			NS: chaseNS(buf, int(slot(order[0])), steps, cfg.Repeats)})
	}
	return curve
}

// measureClock estimates the core clock from a dependent-add chain
// (one add per cycle on any relevant core).
func measureClock(repeats int) float64 {
	const iters = 1 << 24
	total := minNS(repeats, func() {
		x := int64(1)
		for i := 0; i < iters; i++ {
			x += x>>63 + 1 // dependent: each add waits on the last
		}
		sink += x
	})
	mhz := float64(iters) / total * 1000
	if mhz < 100 {
		mhz = 100
	}
	if mhz > 10000 {
		mhz = 10000
	}
	return mhz
}

// measureScan times cache-resident scan loops: ns per 8-byte BUN and
// ns per byte — the WScanBUN / WScanByte work constants.
func measureScan(cfg Config) (bunNS, byteNS float64) {
	const bytes = 16 << 10 // L1-resident on anything plausible
	b64 := make([]int64, bytes/8)
	for i := range b64 {
		b64[i] = int64(i)
	}
	const passes = 1 << 11
	total := minNS(cfg.Repeats, func() {
		var s int64
		for p := 0; p < passes; p++ {
			for _, v := range b64 {
				s += v
			}
		}
		sink += s
	})
	bunNS = total / float64(passes*len(b64))
	b8 := make([]byte, bytes)
	total = minNS(cfg.Repeats, func() {
		var s int64
		for p := 0; p < passes; p++ {
			for _, v := range b8 {
				s += int64(v)
			}
		}
		sink += s
	})
	byteNS = total / float64(passes*len(b8))
	return bunNS, byteNS
}

// measureSeq times a full sequential sweep over a RAM-sized buffer and
// returns ns per line-sized chunk — the effective sequential-miss
// cost, CPU scan work subtracted.
func measureSeq(cfg Config, line int, bunNS float64) float64 {
	buf := make([]int64, cfg.MaxWorkingSet/8)
	for i := 0; i < len(buf); i += 512 {
		buf[i] = int64(i) // fault in real pages (zeroed memory is CoW-shared)
	}
	total := minNS(cfg.Repeats, func() {
		var s int64
		for _, v := range buf {
			s += v
		}
		sink += s
	})
	perLine := total / float64(cfg.MaxWorkingSet/line)
	cpu := bunNS * float64(line/8)
	if perLine > cpu {
		perLine -= cpu
	}
	if perLine < 1 {
		perLine = 1
	}
	return perLine
}

// pow2Floor rounds down to a power of two.
func pow2Floor(x int) int {
	p := 1
	for p*2 <= x {
		p *= 2
	}
	return p
}

// Host measures the running machine and derives its memsim profile.
// The returned machine is named "host" and passes Check; the report
// carries the raw curves for inspection.
func Host(cfg Config) (memsim.Machine, *Report, error) {
	if cfg.MaxWorkingSet < 1<<20 || cfg.ChaseSteps < 1<<12 || cfg.Repeats < 1 {
		return memsim.Machine{}, nil, fmt.Errorf("calibrate: config too small to resolve any knee: %+v", cfg)
	}
	rep := &Report{}
	rep.ClockMHz = measureClock(cfg.Repeats)
	line, lineCurve := measureLine(cfg)
	rep.LineCurve = lineCurve
	curve := measureChase(cfg, line)
	rep.ChaseCurve = curve
	if len(curve) < 4 {
		return memsim.Machine{}, nil, fmt.Errorf("calibrate: chase curve has %d points, need ≥ 4", len(curve))
	}

	l1i, l2i := knees(curve)
	l1Size, l2Size := 32<<10, 8<<20 // plausible when the staircase is flat
	switch {
	case l1i >= 0 && l2i >= 0:
		l1Size, l2Size = curve[l1i].X, curve[l2i].X
	case l1i >= 0:
		// One knee: below 256 KB it is almost certainly L1→L2; above,
		// L2→RAM (a flat L1/L2 means a fast shared cache).
		if curve[l1i].X <= 256<<10 {
			l1Size = curve[l1i].X
		} else {
			l2Size = curve[l1i].X
		}
	}
	if l1Size > l2Size {
		l1Size, l2Size = l2Size, l1Size
	}

	l1NS := plateauNS(curve, 0, l1Size)
	l2NS := plateauNS(curve, l1Size, l2Size)
	memNS := plateauNS(curve, l2Size, curve[len(curve)-1].X)
	if l2NS <= l1NS {
		l2NS = l1NS * 2
	}
	if memNS <= l2NS {
		memNS = l2NS * 2
	}
	latL2 := l2NS - l1NS   // an L1 miss serviced by L2
	latMem := memNS - l2NS // an L2 miss serviced by DRAM

	pageSize := os.Getpagesize()
	tlbCurve := measureTLB(cfg, pageSize, line)
	rep.TLBCurve = tlbCurve
	tlbEntries, latTLB := 1536, 5.0 // fallback: huge or unresolvable TLB
	if ti, _ := knees(tlbCurve); ti >= 0 {
		tlbEntries = tlbCurve[ti].X
		post := plateauNS(tlbCurve, tlbCurve[ti].X, tlbCurve[len(tlbCurve)-1].X)
		pre := plateauNS(tlbCurve, 0, tlbCurve[ti].X)
		if d := post - pre; d > latTLB {
			latTLB = d
		}
	}

	bunNS, byteNS := measureScan(cfg)
	rep.ScanBUNNS, rep.ScanByteNS = bunNS, byteNS
	rep.SeqNSLine = measureSeq(cfg, line, bunNS)
	latSeq := rep.SeqNSLine
	if latSeq > latMem {
		latSeq = latMem
	}

	// The paper's per-operation join/cluster work constants, scaled by
	// the measured scan-work ratio: uniform scaling is the calibrated
	// zeroth-order estimate; the residual loop (mlquery -calib /
	// -learn) corrects per-operator-kind deviations from it.
	origin := memsim.Origin2000()
	scale := bunNS / origin.Cost.WScanBUN

	m := memsim.Machine{
		Name:     memsim.HostName,
		ClockMHz: rep.ClockMHz,
		L1:       memsim.CacheSpec{Name: "L1", Size: pow2Floor(l1Size), LineSize: line, Assoc: 8},
		L2:       memsim.CacheSpec{Name: "L2", Size: pow2Floor(l2Size), LineSize: line, Assoc: 16},
		TLB:      memsim.TLBSpec{Entries: pow2Floor(tlbEntries), PageSize: pageSize},
		Cost: memsim.CostParams{
			LatL2:     latL2,
			LatMem:    latMem,
			LatMemSeq: latSeq,
			LatTLB:    latTLB,
			Wc:        origin.Cost.Wc * scale,
			Wr:        origin.Cost.Wr * scale,
			WrOut:     origin.Cost.WrOut * scale,
			Wh:        origin.Cost.Wh * scale,
			WhClus:    origin.Cost.WhClus * scale,
			WScanByte: byteNS,
			WScanBUN:  bunNS,
		},
	}
	if err := Check(m); err != nil {
		return memsim.Machine{}, rep, err
	}
	return m, rep, nil
}

// Check enforces the calibration sanity invariants on a machine
// profile: consistent geometry, L1 no larger than L2, all latencies
// and work constants positive, and latencies monotone non-decreasing
// by level (L2 service ≤ DRAM service; sequential ≤ random DRAM).
func Check(m memsim.Machine) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.L1.Size > m.L2.Size {
		return fmt.Errorf("calibrate: L1 (%d B) larger than L2 (%d B)", m.L1.Size, m.L2.Size)
	}
	c := m.Cost
	// A machine with identical L1 and L2 models a single unified cache
	// (the sunLX shape); there is no L1→L2 transition to price, so
	// LatL2 = 0 is the correct degenerate value there.
	unified := m.L1.Size == m.L2.Size && m.L1.LineSize == m.L2.LineSize
	if !unified && !(c.LatL2 > 0) {
		return fmt.Errorf("calibrate: LatL2 = %v, want > 0", c.LatL2)
	}
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"LatMem", c.LatMem}, {"LatMemSeq", c.LatMemSeq},
		{"LatTLB", c.LatTLB}, {"Wc", c.Wc}, {"Wr", c.Wr}, {"WrOut", c.WrOut},
		{"Wh", c.Wh}, {"WhClus", c.WhClus},
		{"WScanByte", c.WScanByte}, {"WScanBUN", c.WScanBUN},
	} {
		if !(v.val > 0) {
			return fmt.Errorf("calibrate: %s = %v, want > 0", v.name, v.val)
		}
	}
	if c.LatL2 > c.LatMem {
		return fmt.Errorf("calibrate: LatL2 (%v) exceeds LatMem (%v): latencies must be monotone by level", c.LatL2, c.LatMem)
	}
	if c.LatMemSeq > c.LatMem {
		return fmt.Errorf("calibrate: LatMemSeq (%v) exceeds LatMem (%v): sequential misses cannot cost more than random ones", c.LatMemSeq, c.LatMem)
	}
	return nil
}
