package memsim

import "fmt"

// TLBSpec describes a translation lookaside buffer.
type TLBSpec struct {
	Entries  int // number of translations held (fully associative)
	PageSize int // bytes per virtual memory page (power of two)
}

// Span returns the number of bytes covered by a full TLB, written
// ||TLB|| in the paper.
func (t TLBSpec) Span() int { return t.Entries * t.PageSize }

func (t TLBSpec) validate() error {
	switch {
	case t.Entries <= 0:
		return fmt.Errorf("memsim: TLB: non-positive entry count %d", t.Entries)
	case t.PageSize <= 0 || t.PageSize&(t.PageSize-1) != 0:
		return fmt.Errorf("memsim: TLB: page size %d is not a positive power of two", t.PageSize)
	}
	return nil
}

// tlb is a fully-associative LRU translation buffer. Miss handling on
// the paper's machines traps to the OS, so a TLB miss can cost more
// than a memory access; the Sim charges lTLB per miss.
type tlb struct {
	pageBits uint
	pages    []uint64
	stamps   []uint64
	clock    uint64
	lastPage uint64

	hits   uint64
	misses uint64
}

func newTLB(spec TLBSpec) *tlb {
	t := &tlb{
		pages:    make([]uint64, spec.Entries),
		stamps:   make([]uint64, spec.Entries),
		lastPage: ^uint64(0),
	}
	for pb := spec.PageSize; pb > 1; pb >>= 1 {
		t.pageBits++
	}
	return t
}

// access translates the page containing pageAddr (addr >> pageBits) and
// reports whether the translation missed.
func (t *tlb) access(pageAddr uint64) bool {
	if pageAddr == t.lastPage {
		t.hits++
		return false
	}
	t.clock++
	victim := 0
	oldest := ^uint64(0)
	for i, p := range t.pages {
		if t.stamps[i] != 0 && p == pageAddr {
			t.stamps[i] = t.clock
			t.hits++
			t.lastPage = pageAddr
			return false
		}
		if t.stamps[i] < oldest {
			oldest = t.stamps[i]
			victim = i
		}
	}
	t.pages[victim] = pageAddr
	t.stamps[victim] = t.clock
	t.misses++
	t.lastPage = pageAddr
	return true
}

func (t *tlb) flush() {
	for i := range t.pages {
		t.pages[i] = 0
		t.stamps[i] = 0
	}
	t.clock = 0
	t.lastPage = ^uint64(0)
	t.hits = 0
	t.misses = 0
}

func (t *tlb) invalidate() {
	for i := range t.pages {
		t.pages[i] = 0
		t.stamps[i] = 0
	}
	t.lastPage = ^uint64(0)
}
