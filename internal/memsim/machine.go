package memsim

import (
	"fmt"
	"os"
	"strings"
)

// CostParams holds the calibrated per-event costs of a machine, in
// nanoseconds. The Origin2000 values are the paper's own calibration
// (§3.4.2 footnote 4 and §3.4.3): lTLB=228ns, lL2=24ns, lMem=412ns,
// wc=50ns, wr=24ns, w'r=240ns, wh=680ns, w'h=3600ns.
type CostParams struct {
	LatL2  float64 // cost of an L1 miss serviced by L2 (lL2)
	LatMem float64 // cost of an L2 miss serviced by DRAM (lMem)
	LatTLB float64 // cost of a TLB miss (OS trap + walk) (lTLB)

	// LatMemSeq is the effective cost of an L2 miss on the line
	// directly following the previous L2 miss: sequential misses are
	// bandwidth-bound (DRAM burst + non-blocking caches overlap them),
	// not latency-bound. This is why the Figure-3 plateaus sit well
	// below iterations × lMem. Zero means "same as LatMem".
	LatMemSeq float64

	// Per-operation pure-CPU work constants used by the cost models and
	// charged by the instrumented operators.
	Wc     float64 // radix-cluster work per tuple per pass (wc)
	Wr     float64 // radix-join predicate check per inner tuple (wr)
	WrOut  float64 // radix-join result-tuple creation (w'r)
	Wh     float64 // partitioned hash-join work per tuple (wh)
	WhClus float64 // hash-table create/destroy cost per cluster (w'h)

	// Scan experiment per-iteration CPU costs (Figure 3): reading one
	// byte plus loop overhead.
	WScanByte float64 // per-iteration CPU work for the stride scan
	WScanBUN  float64 // per-iteration CPU work scanning 8-byte BUNs
}

// Machine bundles the geometry and cost calibration of one hardware
// profile. The four 1992–1998 profiles correspond to the machines of
// Figure 3; Origin2000 is the platform of all §3.4 experiments.
type Machine struct {
	Name     string
	ClockMHz float64
	L1       CacheSpec
	L2       CacheSpec
	TLB      TLBSpec
	Cost     CostParams

	// VM optionally extends the hierarchy to the virtual-memory level
	// (§4): zero value = all data main-memory resident, no faults.
	VM VMSpec
}

// CyclesPerNano returns the number of CPU cycles per nanosecond.
func (m *Machine) CyclesPerNano() float64 { return m.ClockMHz / 1000 }

// Validate checks the machine description for internal consistency.
func (m *Machine) Validate() error {
	if err := m.L1.validate(); err != nil {
		return err
	}
	if err := m.L2.validate(); err != nil {
		return err
	}
	if err := m.TLB.validate(); err != nil {
		return err
	}
	if m.L1.LineSize > m.L2.LineSize {
		return fmt.Errorf("memsim: %s: L1 line (%d) larger than L2 line (%d)", m.Name, m.L1.LineSize, m.L2.LineSize)
	}
	if m.ClockMHz <= 0 {
		return fmt.Errorf("memsim: %s: non-positive clock %v", m.Name, m.ClockMHz)
	}
	if err := m.VM.validate(); err != nil {
		return err
	}
	return nil
}

// WithVM returns a copy of the machine with main memory restricted to
// memBytes (rounded down to whole pages) and the given page-fault
// latency — the §4 virtual-memory setting.
func (m Machine) WithVM(memBytes int, latFault float64) Machine {
	m.VM = VMSpec{ResidentPages: memBytes / m.TLB.PageSize, LatFault: latFault}
	return m
}

// Origin2000 returns the paper's experimental platform: one 250 MHz MIPS
// R10000 with 32 KB L1 (1024 × 32 B lines), 4 MB L2 (32768 × 128 B
// lines), 64 TLB entries and 16 KB pages (§3.4.1). Latency and work
// constants are the paper's calibrated values.
func Origin2000() Machine {
	return Machine{
		Name:     "origin2k",
		ClockMHz: 250,
		L1:       CacheSpec{Name: "L1", Size: 32 << 10, LineSize: 32, Assoc: 2},
		L2:       CacheSpec{Name: "L2", Size: 4 << 20, LineSize: 128, Assoc: 2},
		TLB:      TLBSpec{Entries: 64, PageSize: 16 << 10},
		Cost: CostParams{
			LatL2:     24,
			LatMem:    412,
			LatMemSeq: 150,
			LatTLB:    228,
			Wc:        50,
			Wr:        24,
			WrOut:     240,
			Wh:        680,
			WhClus:    3600,
			// §3.1: a stride-1 scan costs 4 cycles/iteration on the
			// Origin2000 (16 ns at 250 MHz); a stride-8 BUN scan costs
			// 10 cycles of which 4 are CPU work.
			WScanByte: 16,
			WScanBUN:  16,
		},
	}
}

// Sun450 returns the 1997 Sun Ultra-Enterprise 450 profile of Figure 3:
// 296 MHz UltraSPARC-II, 16-byte L1 lines, 64-byte L2 lines. Latencies
// are calibrated so the simulated curve reproduces the figure's plateau
// (≈30 ms for 200k iterations beyond the L2 line size).
func Sun450() Machine {
	return Machine{
		Name:     "sun450",
		ClockMHz: 296,
		L1:       CacheSpec{Name: "L1", Size: 16 << 10, LineSize: 16, Assoc: 1},
		L2:       CacheSpec{Name: "L2", Size: 4 << 20, LineSize: 64, Assoc: 1},
		TLB:      TLBSpec{Entries: 64, PageSize: 8 << 10},
		Cost: CostParams{
			LatL2: 30, LatMem: 120, LatMemSeq: 90, LatTLB: 200,
			Wc: 60, Wr: 30, WrOut: 300, Wh: 800, WhClus: 4200,
			WScanByte: 14, WScanBUN: 14,
		},
	}
}

// Ultra returns the 1995 Sun Ultra profile of Figure 3: 143 MHz
// UltraSPARC-I, 16-byte L1 lines, 64-byte L2 lines (plateau ≈50 ms).
func Ultra() Machine {
	return Machine{
		Name:     "ultra",
		ClockMHz: 143,
		L1:       CacheSpec{Name: "L1", Size: 16 << 10, LineSize: 16, Assoc: 1},
		L2:       CacheSpec{Name: "L2", Size: 512 << 10, LineSize: 64, Assoc: 1},
		TLB:      TLBSpec{Entries: 64, PageSize: 8 << 10},
		Cost: CostParams{
			LatL2: 42, LatMem: 180, LatMemSeq: 160, LatTLB: 300,
			Wc: 90, Wr: 45, WrOut: 450, Wh: 1200, WhClus: 6300,
			WScanByte: 28, WScanBUN: 28,
		},
	}
}

// SunLX returns the 1992 Sun LX profile of Figure 3: 50 MHz microSPARC
// with a single off-chip cache of 16-byte lines (modelled as identical
// L1 and L2 so the single knee of the figure emerges; plateau ≈70 ms,
// reached already at stride 16).
func SunLX() Machine {
	return Machine{
		Name:     "sunLX",
		ClockMHz: 50,
		L1:       CacheSpec{Name: "L1", Size: 64 << 10, LineSize: 16, Assoc: 1},
		L2:       CacheSpec{Name: "L2", Size: 64 << 10, LineSize: 16, Assoc: 1},
		TLB:      TLBSpec{Entries: 32, PageSize: 4 << 10},
		Cost: CostParams{
			LatL2: 0, LatMem: 190, LatMemSeq: 175, LatTLB: 400,
			Wc: 260, Wr: 130, WrOut: 1300, Wh: 3400, WhClus: 18000,
			WScanByte: 160, WScanBUN: 160,
		},
	}
}

// Modern returns an extension profile loosely shaped like a 2020s
// desktop CPU (not in the paper): much faster CPU work, far larger
// caches, and an even wider CPU/memory gap. Used by the extension
// benches to show that the paper's conclusions have only sharpened.
func Modern() Machine {
	return Machine{
		Name:     "modern",
		ClockMHz: 4000,
		L1:       CacheSpec{Name: "L1", Size: 48 << 10, LineSize: 64, Assoc: 12},
		L2:       CacheSpec{Name: "L2", Size: 32 << 20, LineSize: 64, Assoc: 16},
		TLB:      TLBSpec{Entries: 1536, PageSize: 4 << 10},
		Cost: CostParams{
			LatL2: 10, LatMem: 90, LatMemSeq: 25, LatTLB: 25,
			Wc: 2, Wr: 1, WrOut: 8, Wh: 20, WhClus: 150,
			WScanByte: 0.75, WScanBUN: 0.75,
		},
	}
}

// Machines returns the Figure-3 machine set in the order plotted
// (newest first, matching the figure legend).
func Machines() []Machine {
	return []Machine{Origin2000(), Sun450(), Ultra(), SunLX()}
}

// MachineNames lists every resolvable profile name: the Figure-3 set,
// the modern extension profile, and the calibrated "host" entry.
func MachineNames() []string {
	names := make([]string, 0, 6)
	for _, m := range append(Machines(), Modern()) {
		names = append(names, m.Name)
	}
	return append(names, HostName)
}

// MachineByName resolves a profile by its Figure-3 legend name, or the
// special "host" name: the calibrated profile from the calibration-file
// search path (see HostSearchPath). When no calibration file exists,
// "host" falls back to the modern canned profile with a warning on
// stderr — run `mlquery -calibrate` to measure the real machine.
func MachineByName(name string) (Machine, error) {
	if name == HostName {
		m, path, err := LoadHost()
		if err == nil {
			return m, nil
		}
		if path != "" {
			return Machine{}, fmt.Errorf("memsim: calibration file %s: %w", path, err)
		}
		fallback := Modern()
		fmt.Fprintf(os.Stderr,
			"memsim: no calibration file found (searched %s); machine %q falls back to canned profile %q — run mlquery -calibrate\n",
			strings.Join(HostSearchPath(), ", "), HostName, fallback.Name)
		return fallback, nil
	}
	for _, m := range append(Machines(), Modern()) {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("memsim: unknown machine %q (available: %s)",
		name, strings.Join(MachineNames(), ", "))
}
