package memsim

import "fmt"

// VMSpec extends the memory hierarchy downward to the virtual-memory
// level of Figure 2: the paper treats disk-resident data as "memory
// with a large granularity" (§4 — Monet does I/O by manipulating
// virtual-memory mappings). When ResidentPages is non-zero, the
// simulator keeps an LRU set of resident pages and charges LatFault
// for every page fault, so algorithms whose access pattern is tuned
// for the cache levels can be shown to "also exhibit good performance
// on the lower levels".
type VMSpec struct {
	ResidentPages int     // main-memory capacity in pages; 0 disables VM modelling
	LatFault      float64 // page-fault service time in ns (1998 disk ≈ 6e6)
}

// Enabled reports whether VM modelling is active.
func (v VMSpec) Enabled() bool { return v.ResidentPages > 0 }

func (v VMSpec) validate() error {
	if v.ResidentPages < 0 {
		return fmt.Errorf("memsim: VM: negative resident page count %d", v.ResidentPages)
	}
	if v.ResidentPages > 0 && v.LatFault <= 0 {
		return fmt.Errorf("memsim: VM: fault latency must be positive when enabled")
	}
	return nil
}

// vmLRU is an O(1) LRU over resident pages: a hash map into an
// intrusive doubly-linked list of preallocated nodes.
type vmLRU struct {
	cap      int
	pos      map[uint64]int32 // page → node index
	pages    []uint64
	prev     []int32
	next     []int32
	head     int32 // most recently used
	tail     int32 // least recently used
	used     int
	lastPage uint64

	faults uint64
}

func newVMLRU(capacity int) *vmLRU {
	v := &vmLRU{
		cap:      capacity,
		pos:      make(map[uint64]int32, capacity),
		pages:    make([]uint64, capacity),
		prev:     make([]int32, capacity),
		next:     make([]int32, capacity),
		head:     -1,
		tail:     -1,
		lastPage: ^uint64(0),
	}
	return v
}

// unlink removes node i from the list.
func (v *vmLRU) unlink(i int32) {
	p, n := v.prev[i], v.next[i]
	if p >= 0 {
		v.next[p] = n
	} else {
		v.head = n
	}
	if n >= 0 {
		v.prev[n] = p
	} else {
		v.tail = p
	}
}

// pushFront makes node i the most recently used.
func (v *vmLRU) pushFront(i int32) {
	v.prev[i] = -1
	v.next[i] = v.head
	if v.head >= 0 {
		v.prev[v.head] = i
	}
	v.head = i
	if v.tail < 0 {
		v.tail = i
	}
}

// access touches a page and reports whether it faulted.
func (v *vmLRU) access(page uint64) bool {
	if page == v.lastPage {
		return false
	}
	v.lastPage = page
	if i, ok := v.pos[page]; ok {
		if v.head != i {
			v.unlink(i)
			v.pushFront(i)
		}
		return false
	}
	v.faults++
	var i int32
	if v.used < v.cap {
		i = int32(v.used)
		v.used++
	} else {
		i = v.tail
		v.unlink(i)
		delete(v.pos, v.pages[i])
	}
	v.pages[i] = page
	v.pos[page] = i
	v.pushFront(i)
	return true
}

func (v *vmLRU) flush() {
	v.pos = make(map[uint64]int32, v.cap)
	v.head, v.tail = -1, -1
	v.used = 0
	v.lastPage = ^uint64(0)
	v.faults = 0
}

func (v *vmLRU) invalidate() {
	f := v.faults
	v.flush()
	v.faults = f
}
