package memsim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Host-calibrated machine profiles: internal/calibrate measures the
// real machine and persists the result as a JSON Machine file; this
// file resolves it again. The profile is addressed as
// MachineByName("host") everywhere a canned Figure-3 name works, so a
// calibration taken once (mlquery -calibrate) silently upgrades every
// later run on the same box.

// HostName is the profile name calibrated host machines carry and the
// name MachineByName resolves through the calibration-file search
// path.
const HostName = "host"

// HostFileEnv names the environment variable that, when set, pins the
// calibration file location — first in the search path. Tests point it
// at the committed fixture so CI never measures its own hardware.
const HostFileEnv = "MONETLITE_CALIBRATION"

// hostFileName is the calibration file's base name in the working
// directory and the per-user config directory.
const hostFileName = "monetlite-host.json"

// HostSearchPath lists the locations LoadHost probes, in order: the
// $MONETLITE_CALIBRATION override, ./monetlite-host.json, then
// <user-config-dir>/monetlite/monetlite-host.json. Entries that cannot
// be determined (no config dir) are omitted.
func HostSearchPath() []string {
	var paths []string
	if p := os.Getenv(HostFileEnv); p != "" {
		paths = append(paths, p)
	}
	paths = append(paths, hostFileName)
	if dir, err := os.UserConfigDir(); err == nil {
		paths = append(paths, filepath.Join(dir, "monetlite", hostFileName))
	}
	return paths
}

// LoadMachineFile reads and validates one machine profile from a JSON
// file written by SaveMachineFile (or by hand).
func LoadMachineFile(path string) (Machine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Machine{}, err
	}
	var m Machine
	if err := json.Unmarshal(data, &m); err != nil {
		return Machine{}, fmt.Errorf("memsim: %s: %w", path, err)
	}
	if m.Name == "" {
		m.Name = HostName
	}
	if err := m.Validate(); err != nil {
		return Machine{}, fmt.Errorf("memsim: %s: %w", path, err)
	}
	return m, nil
}

// SaveMachineFile persists a machine profile as indented JSON —
// deterministic (fixed field order, no maps), so calibrate's
// round-trip tests can compare bytes.
func SaveMachineFile(m Machine, path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadHost resolves the calibrated host profile through HostSearchPath,
// returning the profile and the path it came from. A file that exists
// but fails to parse or validate is an error (a broken calibration
// must not silently degrade to a canned profile); absent files mean
// (Machine{}, "", os.ErrNotExist).
func LoadHost() (Machine, string, error) {
	for _, p := range HostSearchPath() {
		if _, err := os.Stat(p); err != nil {
			continue
		}
		m, err := LoadMachineFile(p)
		if err != nil {
			return Machine{}, p, err
		}
		return m, p, nil
	}
	return Machine{}, "", os.ErrNotExist
}
