package memsim

import "fmt"

// Stats is a snapshot of the event counters of a Sim. The three miss
// counters correspond exactly to the hardware events the paper reads
// from the R10000 counters (§3.4.1).
type Stats struct {
	Accesses   uint64 // simulated load/store operations
	LinesRead  uint64 // distinct line touches (after last-line fast path)
	L1Misses   uint64
	L2Misses   uint64
	TLBMisses  uint64
	PageFaults uint64  // virtual-memory faults (0 unless Machine.VM enabled)
	CPUNanos   float64 // accumulated pure-CPU work
	StallNanos float64 // accumulated miss penalties
}

// ElapsedNanos returns the simulated wall time: CPU work plus memory
// stalls, the same decomposition the paper's models use.
func (s Stats) ElapsedNanos() float64 { return s.CPUNanos + s.StallNanos }

// ElapsedMillis returns the simulated wall time in milliseconds, the
// unit of every figure in the paper.
func (s Stats) ElapsedMillis() float64 { return s.ElapsedNanos() / 1e6 }

// Sub returns the event-count delta s − t (counters only grow, so this
// is the events that happened between two snapshots).
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - t.Accesses,
		LinesRead:  s.LinesRead - t.LinesRead,
		L1Misses:   s.L1Misses - t.L1Misses,
		L2Misses:   s.L2Misses - t.L2Misses,
		TLBMisses:  s.TLBMisses - t.TLBMisses,
		PageFaults: s.PageFaults - t.PageFaults,
		CPUNanos:   s.CPUNanos - t.CPUNanos,
		StallNanos: s.StallNanos - t.StallNanos,
	}
}

// Add returns s + t, summing all counters.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Accesses:   s.Accesses + t.Accesses,
		LinesRead:  s.LinesRead + t.LinesRead,
		L1Misses:   s.L1Misses + t.L1Misses,
		L2Misses:   s.L2Misses + t.L2Misses,
		TLBMisses:  s.TLBMisses + t.TLBMisses,
		PageFaults: s.PageFaults + t.PageFaults,
		CPUNanos:   s.CPUNanos + t.CPUNanos,
		StallNanos: s.StallNanos + t.StallNanos,
	}
}

func (s Stats) String() string {
	faults := ""
	if s.PageFaults > 0 {
		faults = fmt.Sprintf(" faults=%d", s.PageFaults)
	}
	return fmt.Sprintf("accesses=%d L1miss=%d L2miss=%d TLBmiss=%d%s cpu=%.3fms stall=%.3fms total=%.3fms",
		s.Accesses, s.L1Misses, s.L2Misses, s.TLBMisses, faults,
		s.CPUNanos/1e6, s.StallNanos/1e6, s.ElapsedMillis())
}

// ErrBudget is returned (wrapped) by operators when a simulation
// exceeds its access budget; it mirrors the paper's 15-minute cap on
// individual runs.
var ErrBudget = fmt.Errorf("memsim: simulated access budget exhausted")

// Sim simulates one machine's memory hierarchy. It is not safe for
// concurrent use; run one Sim per goroutine.
type Sim struct {
	machine Machine
	l1      *cache
	l2      *cache
	tlb     *tlb
	vm      *vmLRU // nil unless machine.VM enabled

	l1LineBits uint
	l2LineBits uint
	pageBits   uint

	stats Stats

	// missStreams tracks the most recent sequential L2-miss streams
	// (like a hardware stride-prefetch stream table): a miss within a
	// small forward window of a tracked stream is bandwidth-bound and
	// charged LatMemSeq instead of the full LatMem. Several streams
	// are tracked because real memory systems overlap them (a scan
	// reading one region while writing results to another is still
	// fully sequential).
	missStreams [8]uint64
	streamRR    int

	// next is the bump-allocator cursor for simulated virtual addresses.
	next uint64

	// Budget, when non-zero, caps the number of simulated accesses; the
	// Exhausted method reports whether it was hit. Operators check it at
	// coarse intervals and abandon the run, mirroring the paper's
	// 15-minute cap on single experiments.
	Budget uint64
}

// allocBase is the first simulated address handed out. Non-zero so that
// a zero cache tag always means "empty way".
const allocBase = 1 << 20

// New creates a simulator for the given machine profile.
func New(m Machine) (*Sim, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		machine: m,
		l1:      newCache(m.L1),
		l2:      newCache(m.L2),
		tlb:     newTLB(m.TLB),
		next:    allocBase,
	}
	for i := range s.missStreams {
		s.missStreams[i] = ^uint64(0) - 8
	}
	if m.VM.Enabled() {
		s.vm = newVMLRU(m.VM.ResidentPages)
	}
	s.l1LineBits = s.l1.lineBits
	s.l2LineBits = s.l2.lineBits
	s.pageBits = s.tlb.pageBits
	return s, nil
}

// MustNew is New for the built-in profiles, panicking on invalid specs.
func MustNew(m Machine) *Sim {
	s, err := New(m)
	if err != nil {
		panic(err)
	}
	return s
}

// Machine returns the simulated machine profile.
func (s *Sim) Machine() Machine { return s.machine }

// Stats returns a snapshot of the current counters.
func (s *Sim) Stats() Stats { return s.stats }

// Reset empties caches and TLB and zeroes all counters. Allocations
// remain valid.
func (s *Sim) Reset() {
	s.l1.flush()
	s.l2.flush()
	s.tlb.flush()
	if s.vm != nil {
		s.vm.flush()
	}
	s.stats = Stats{}
}

// InvalidateCaches empties caches and TLB (cold start) but keeps
// counters, matching the paper's "in memory, but not in any of the
// memory caches" setup for the scan experiment.
func (s *Sim) InvalidateCaches() {
	s.l1.invalidate()
	s.l2.invalidate()
	s.tlb.invalidate()
	if s.vm != nil {
		s.vm.invalidate()
	}
}

// Exhausted reports whether the access budget (if any) has been spent.
func (s *Sim) Exhausted() bool {
	return s.Budget != 0 && s.stats.Accesses >= s.Budget
}

// Alloc reserves n bytes of simulated address space and returns the
// base address. Every allocation is page-aligned, like a fresh mmap
// region backing a Monet BAT.
func (s *Sim) Alloc(n int) uint64 {
	if n < 0 {
		panic("memsim: negative allocation")
	}
	page := uint64(s.machine.TLB.PageSize)
	base := (s.next + page - 1) &^ (page - 1)
	s.next = base + uint64(n)
	return base
}

// touchLine runs one line-granular access through L1, L2 and TLB.
func (s *Sim) touchLine(addr uint64) {
	s.stats.LinesRead++
	if s.tlb.access(addr >> s.pageBits) {
		s.stats.TLBMisses++
		s.stats.StallNanos += s.machine.Cost.LatTLB
	}
	if s.vm != nil && s.vm.access(addr>>s.pageBits) {
		s.stats.PageFaults++
		s.stats.StallNanos += s.machine.VM.LatFault
	}
	if s.l1.access(addr >> s.l1LineBits) {
		s.stats.L1Misses++
		s.stats.StallNanos += s.machine.Cost.LatL2
		if s.l2.access(addr >> s.l2LineBits) {
			s.stats.L2Misses++
			// A miss within a small forward window of a tracked stream
			// is sequential/strided: bandwidth-bound (DRAM row-buffer
			// hits, non-blocking caches, stride prefetch), charged
			// LatMemSeq. This is why Figure 3 stays flat past the L2
			// line size instead of degrading further.
			line := addr >> s.l2LineBits
			seq := false
			if s.machine.Cost.LatMemSeq > 0 {
				for i, last := range s.missStreams {
					if d := line - last; d >= 1 && d <= 4 {
						s.missStreams[i] = line
						seq = true
						break
					}
				}
			}
			if seq {
				s.stats.StallNanos += s.machine.Cost.LatMemSeq
			} else {
				s.stats.StallNanos += s.machine.Cost.LatMem
				s.missStreams[s.streamRR&7] = line
				s.streamRR++
			}
		}
	}
}

// Read simulates a load of size bytes at addr. Accesses spanning
// multiple L1 lines touch each line once.
func (s *Sim) Read(addr uint64, size int) {
	s.stats.Accesses++
	first := addr >> s.l1LineBits
	last := (addr + uint64(size) - 1) >> s.l1LineBits
	for line := first; line <= last; line++ {
		s.touchLine(line << s.l1LineBits)
	}
}

// Write simulates a store of size bytes at addr. The simulated caches
// are write-allocate, so a store behaves like a load for miss
// accounting (the paper's models count stores of output as misses the
// same way).
func (s *Sim) Write(addr uint64, size int) {
	s.stats.Accesses++
	first := addr >> s.l1LineBits
	last := (addr + uint64(size) - 1) >> s.l1LineBits
	for line := first; line <= last; line++ {
		s.touchLine(line << s.l1LineBits)
	}
}

// AddCPU charges pure CPU work of n operations at nsPerOp nanoseconds,
// e.g. the wc/wr/wh constants of the cost models.
func (s *Sim) AddCPU(n int, nsPerOp float64) {
	s.stats.CPUNanos += float64(n) * nsPerOp
}

// L1Resident reports (without counting) whether addr's line is in L1.
func (s *Sim) L1Resident(addr uint64) bool {
	return s.l1.contains(addr >> s.l1LineBits)
}

// L2Resident reports (without counting) whether addr's line is in L2.
func (s *Sim) L2Resident(addr uint64) bool {
	return s.l2.contains(addr >> s.l2LineBits)
}
