package memsim

import (
	"testing"
	"testing/quick"
)

func TestVMSpecValidate(t *testing.T) {
	if (VMSpec{}).Enabled() {
		t.Error("zero VM spec should be disabled")
	}
	if err := (VMSpec{ResidentPages: -1}).validate(); err == nil {
		t.Error("negative pages accepted")
	}
	if err := (VMSpec{ResidentPages: 10}).validate(); err == nil {
		t.Error("enabled VM without fault latency accepted")
	}
	if err := (VMSpec{ResidentPages: 10, LatFault: 1e6}).validate(); err != nil {
		t.Error(err)
	}
}

func TestWithVM(t *testing.T) {
	m := Origin2000().WithVM(64<<20, 6e6)
	if m.VM.ResidentPages != (64<<20)/m.TLB.PageSize {
		t.Errorf("resident pages = %d", m.VM.ResidentPages)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestVMLRUWorkingSet(t *testing.T) {
	v := newVMLRU(4)
	for p := uint64(0); p < 4; p++ {
		if !v.access(100 + p) {
			t.Fatalf("first touch of page %d did not fault", p)
		}
	}
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 4; p++ {
			if v.access(100 + p) {
				t.Fatalf("resident page %d faulted", p)
			}
		}
	}
	if v.faults != 4 {
		t.Errorf("faults = %d, want 4", v.faults)
	}
}

func TestVMLRUEviction(t *testing.T) {
	v := newVMLRU(2)
	v.access(1)
	v.access(2)
	v.access(1) // refresh 1: LRU victim is now 2
	v.access(3) // evicts 2
	if v.access(1) {
		t.Error("page 1 should be resident")
	}
	if !v.access(2) {
		t.Error("page 2 should have been evicted")
	}
}

func TestVMLRUThrash(t *testing.T) {
	v := newVMLRU(4)
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 5; p++ {
			v.access(p)
		}
	}
	// Cyclic over cap+1 with true LRU: every access faults.
	if v.faults != 15 {
		t.Errorf("thrash faults = %d, want 15", v.faults)
	}
}

func TestSimPageFaultAccounting(t *testing.T) {
	m := Origin2000().WithVM(4*16<<10, 6e6) // 4 resident pages
	s := MustNew(m)
	span := 16 * m.TLB.PageSize
	base := s.Alloc(span)
	// Sequential scan over 16 pages: 16 compulsory faults.
	for off := 0; off < span; off += 512 {
		s.Read(base+uint64(off), 8)
	}
	st := s.Stats()
	if st.PageFaults != 16 {
		t.Errorf("faults = %d, want 16", st.PageFaults)
	}
	if st.StallNanos < 16*6e6 {
		t.Errorf("fault stall %.0f below 16 × latFault", st.StallNanos)
	}
	// Second sequential scan: everything evicted by the first pass (16
	// pages through 4 frames) — faults again.
	before := s.Stats()
	for off := 0; off < span; off += 512 {
		s.Read(base+uint64(off), 8)
	}
	if d := s.Stats().Sub(before); d.PageFaults != 16 {
		t.Errorf("second scan faults = %d, want 16", d.PageFaults)
	}
}

func TestSimNoVMNoFaults(t *testing.T) {
	s := MustNew(Origin2000())
	base := s.Alloc(1 << 20)
	for off := 0; off < 1<<20; off += 4096 {
		s.Read(base+uint64(off), 8)
	}
	if s.Stats().PageFaults != 0 {
		t.Error("faults counted with VM disabled")
	}
}

func TestSimVMResetAndInvalidate(t *testing.T) {
	m := Origin2000().WithVM(2*16<<10, 1e6)
	s := MustNew(m)
	base := s.Alloc(1 << 20)
	s.Read(base, 8)
	s.InvalidateCaches()
	s.Read(base, 8) // faults again after invalidate, counter kept
	if s.Stats().PageFaults != 2 {
		t.Errorf("faults after invalidate = %d, want 2", s.Stats().PageFaults)
	}
	s.Reset()
	if s.Stats().PageFaults != 0 {
		t.Error("Reset kept fault counter")
	}
}

// Property: the VM LRU faults exactly once per distinct page when the
// working set fits capacity.
func TestVMLRUCompulsoryProperty(t *testing.T) {
	f := func(trace []uint8) bool {
		v := newVMLRU(16)
		distinct := make(map[uint64]bool)
		for _, x := range trace {
			p := uint64(x % 16)
			distinct[p] = true
			v.access(p)
		}
		return v.faults == uint64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
