package memsim

import (
	"strings"
	"testing"
)

func TestMachineProfilesValid(t *testing.T) {
	for _, m := range append(Machines(), Modern()) {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestOrigin2000Geometry(t *testing.T) {
	m := Origin2000()
	// §3.4.1: 32KB L1 of 1024 × 32B lines; 4MB L2 of 32768 × 128B lines;
	// 64 TLB entries, 16KB pages.
	if m.L1.Lines() != 1024 || m.L1.LineSize != 32 {
		t.Errorf("L1 geometry = %d lines × %dB", m.L1.Lines(), m.L1.LineSize)
	}
	if m.L2.Lines() != 32768 || m.L2.LineSize != 128 {
		t.Errorf("L2 geometry = %d lines × %dB", m.L2.Lines(), m.L2.LineSize)
	}
	if m.TLB.Entries != 64 || m.TLB.PageSize != 16<<10 {
		t.Errorf("TLB = %d × %dB", m.TLB.Entries, m.TLB.PageSize)
	}
	// Paper's calibration: lTLB=228ns, lL2=24ns, lMem=412ns, wc=50ns.
	c := m.Cost
	if c.LatTLB != 228 || c.LatL2 != 24 || c.LatMem != 412 || c.Wc != 50 {
		t.Errorf("calibration = %+v", c)
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"origin2k", "sun450", "ultra", "sunLX", "modern"} {
		m, err := MachineByName(name)
		if err != nil {
			t.Errorf("MachineByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("MachineByName(%q).Name = %q", name, m.Name)
		}
	}
	if _, err := MachineByName("pdp11"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestSimAllocPageAligned(t *testing.T) {
	s := MustNew(Origin2000())
	page := uint64(s.Machine().TLB.PageSize)
	var prevEnd uint64
	for _, n := range []int{1, 100, 16384, 16385, 0, 7} {
		base := s.Alloc(n)
		if base%page != 0 {
			t.Errorf("Alloc(%d) base %#x not page aligned", n, base)
		}
		if base < prevEnd {
			t.Errorf("Alloc(%d) base %#x overlaps previous end %#x", n, base, prevEnd)
		}
		prevEnd = base + uint64(n)
	}
}

func TestSimSequentialScanMissRates(t *testing.T) {
	m := Origin2000()
	s := MustNew(m)
	n := 1 << 20 // 1 MB
	base := s.Alloc(n)
	for i := 0; i < n; i += 8 {
		s.Read(base+uint64(i), 8)
	}
	st := s.Stats()
	wantL1 := uint64(n / m.L1.LineSize)
	wantL2 := uint64(n / m.L2.LineSize)
	wantTLB := uint64(n / m.TLB.PageSize)
	if st.L1Misses != wantL1 {
		t.Errorf("L1 misses = %d, want %d", st.L1Misses, wantL1)
	}
	if st.L2Misses != wantL2 {
		t.Errorf("L2 misses = %d, want %d", st.L2Misses, wantL2)
	}
	if st.TLBMisses != wantTLB {
		t.Errorf("TLB misses = %d, want %d", st.TLBMisses, wantTLB)
	}
	if st.Accesses != uint64(n/8) {
		t.Errorf("accesses = %d, want %d", st.Accesses, n/8)
	}
}

func TestSimStallAccounting(t *testing.T) {
	m := Origin2000()
	s := MustNew(m)
	base := s.Alloc(4096)
	s.Read(base, 1) // cold: TLB + L1 + L2 all miss
	st := s.Stats()
	want := m.Cost.LatTLB + m.Cost.LatL2 + m.Cost.LatMem
	if st.StallNanos != want {
		t.Errorf("cold-read stall = %v, want %v", st.StallNanos, want)
	}
	s.Read(base, 1) // warm: all hit
	if got := s.Stats().StallNanos; got != want {
		t.Errorf("warm read added stall: %v", got-want)
	}
	s.AddCPU(100, 50)
	if got := s.Stats().CPUNanos; got != 5000 {
		t.Errorf("AddCPU accumulated %v, want 5000", got)
	}
	if got := s.Stats().ElapsedNanos(); got != want+5000 {
		t.Errorf("ElapsedNanos = %v, want %v", got, want+5000)
	}
}

func TestSimWriteAllocate(t *testing.T) {
	s := MustNew(Origin2000())
	base := s.Alloc(4096)
	s.Write(base, 8)
	st0 := s.Stats()
	if st0.L1Misses != 1 {
		t.Fatalf("write miss count = %d, want 1", st0.L1Misses)
	}
	s.Read(base, 8) // same line: must hit after write-allocate
	if got := s.Stats().L1Misses; got != 1 {
		t.Errorf("read after write missed (L1 misses = %d)", got)
	}
}

func TestSimStraddlingAccessTouchesTwoLines(t *testing.T) {
	m := Origin2000()
	s := MustNew(m)
	base := s.Alloc(4096)
	// An 8-byte read straddling an L1 line boundary touches two lines.
	s.Read(base+uint64(m.L1.LineSize)-4, 8)
	if got := s.Stats().L1Misses; got != 2 {
		t.Errorf("straddling read L1 misses = %d, want 2", got)
	}
}

func TestSimResetAndInvalidate(t *testing.T) {
	s := MustNew(Origin2000())
	base := s.Alloc(4096)
	s.Read(base, 8)
	s.InvalidateCaches()
	s.Read(base, 8) // cold again
	if got := s.Stats().L1Misses; got != 2 {
		t.Errorf("L1 misses after invalidate = %d, want 2", got)
	}
	s.Reset()
	if s.Stats() != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
	if !s.L1Resident(base) == true { // flushed
		t.Log("note: reset flushes contents") // informational
	}
}

func TestSimBudget(t *testing.T) {
	s := MustNew(Origin2000())
	base := s.Alloc(4096)
	s.Budget = 10
	for i := 0; i < 10; i++ {
		s.Read(base, 8)
	}
	if !s.Exhausted() {
		t.Error("budget of 10 not exhausted after 10 accesses")
	}
	s.Budget = 0
	if s.Exhausted() {
		t.Error("zero budget must mean unlimited")
	}
}

func TestSimResidencyProbesDoNotCount(t *testing.T) {
	s := MustNew(Origin2000())
	base := s.Alloc(4096)
	s.Read(base, 8)
	st := s.Stats()
	if !s.L1Resident(base) || !s.L2Resident(base) {
		t.Error("line should be resident after read")
	}
	if s.Stats() != st {
		t.Error("residency probes changed counters")
	}
}

func TestStatsArithmeticAndString(t *testing.T) {
	a := Stats{Accesses: 10, L1Misses: 5, L2Misses: 3, TLBMisses: 1, CPUNanos: 100, StallNanos: 50}
	b := Stats{Accesses: 4, L1Misses: 2, L2Misses: 1, TLBMisses: 1, CPUNanos: 40, StallNanos: 20}
	d := a.Sub(b)
	if d.Accesses != 6 || d.L1Misses != 3 || d.L2Misses != 2 || d.TLBMisses != 0 {
		t.Errorf("Sub = %+v", d)
	}
	sum := b.Add(d)
	if sum != a {
		t.Errorf("Add(Sub) != original: %+v vs %+v", sum, a)
	}
	if !strings.Contains(a.String(), "L1miss=5") {
		t.Errorf("String() = %q", a.String())
	}
	if a.ElapsedMillis() != (100+50)/1e6 {
		t.Errorf("ElapsedMillis = %v", a.ElapsedMillis())
	}
}

func TestNewRejectsInvalidMachine(t *testing.T) {
	m := Origin2000()
	m.L1.LineSize = 33
	if _, err := New(m); err == nil {
		t.Error("invalid machine accepted")
	}
	m2 := Origin2000()
	m2.L1.LineSize = 256 // larger than L2 line
	if _, err := New(m2); err == nil {
		t.Error("L1 line > L2 line accepted")
	}
	m3 := Origin2000()
	m3.ClockMHz = 0
	if _, err := New(m3); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestRandomAccessThrashesTLB(t *testing.T) {
	m := Origin2000()
	s := MustNew(m)
	span := m.TLB.Span() * 4 // 4× the TLB reach
	base := s.Alloc(span)
	// Strided access hitting a new page every time, cycling far beyond
	// the TLB: every access must be a TLB miss after warmup.
	st0 := s.Stats()
	pages := span / m.TLB.PageSize
	for round := 0; round < 2; round++ {
		for p := 0; p < pages; p++ {
			s.Read(base+uint64(p*m.TLB.PageSize), 8)
		}
	}
	d := s.Stats().Sub(st0)
	if d.TLBMisses != uint64(2*pages) {
		t.Errorf("TLB misses = %d, want %d", d.TLBMisses, 2*pages)
	}
}
