// Package memsim simulates a hierarchical memory system: set-associative
// LRU caches (L1, L2), a fully-associative LRU TLB, and a page-aligned
// virtual allocator. It stands in for the MIPS R10000 hardware event
// counters used by Boncz, Manegold and Kersten (VLDB 1999): algorithms
// mirror their data accesses into a Sim, which produces exact, fully
// deterministic counts of L1 misses, L2 misses and TLB misses, plus a
// simulated elapsed time computed from calibrated per-event latencies.
package memsim

import "fmt"

// CacheSpec describes the geometry of one cache level.
type CacheSpec struct {
	Name     string // e.g. "L1"
	Size     int    // total capacity in bytes
	LineSize int    // bytes per cache line (power of two)
	Assoc    int    // ways per set; 0 means fully associative
}

// Lines returns the total number of cache lines.
func (c CacheSpec) Lines() int { return c.Size / c.LineSize }

// Sets returns the number of sets given the associativity.
func (c CacheSpec) Sets() int {
	ways := c.Assoc
	if ways <= 0 {
		ways = c.Lines()
	}
	return c.Lines() / ways
}

func (c CacheSpec) validate() error {
	switch {
	case c.Size <= 0:
		return fmt.Errorf("memsim: %s: non-positive size %d", c.Name, c.Size)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("memsim: %s: line size %d is not a positive power of two", c.Name, c.LineSize)
	case c.Size%c.LineSize != 0:
		return fmt.Errorf("memsim: %s: size %d not a multiple of line size %d", c.Name, c.Size, c.LineSize)
	case c.Assoc < 0:
		return fmt.Errorf("memsim: %s: negative associativity %d", c.Name, c.Assoc)
	case c.Assoc > 0 && c.Lines()%c.Assoc != 0:
		return fmt.Errorf("memsim: %s: %d lines not divisible into %d ways", c.Name, c.Lines(), c.Assoc)
	}
	return nil
}

// cache is a set-associative cache with true LRU replacement per set.
// Tags are stored flat: set s occupies tags[s*ways : (s+1)*ways], with
// parallel last-use stamps. A zero stamp means the way is empty; the
// clock starts at 1, so stamps of resident lines are always non-zero.
type cache struct {
	lineBits uint
	setMask  uint64
	ways     int
	tags     []uint64
	stamps   []uint64
	clock    uint64

	// lastLine short-circuits the common case of repeated access to the
	// same line (sequential scans); it is invalidated on replacement of
	// that line.
	lastLine uint64

	hits   uint64
	misses uint64
}

func newCache(spec CacheSpec) *cache {
	ways := spec.Assoc
	if ways <= 0 {
		ways = spec.Lines()
	}
	sets := spec.Lines() / ways
	c := &cache{
		ways:     ways,
		tags:     make([]uint64, sets*ways),
		stamps:   make([]uint64, sets*ways),
		setMask:  uint64(sets - 1),
		lastLine: ^uint64(0),
	}
	for lb := spec.LineSize; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	return c
}

// access touches the line containing addr and reports whether it missed.
// addr must already be a line-aligned "line address" (addr >> lineBits).
func (c *cache) access(lineAddr uint64) bool {
	if lineAddr == c.lastLine {
		c.hits++
		return false
	}
	c.clock++
	set := lineAddr & c.setMask
	base := int(set) * c.ways
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.stamps[i] != 0 && c.tags[i] == lineAddr {
			c.stamps[i] = c.clock
			c.hits++
			c.lastLine = lineAddr
			return false
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			victim = i
		}
	}
	// Miss: replace the LRU way in this set.
	c.tags[victim] = lineAddr
	c.stamps[victim] = c.clock
	c.misses++
	c.lastLine = lineAddr
	return true
}

// contains reports whether the line is resident without touching LRU
// state or counters (used by tests and diagnostics).
func (c *cache) contains(lineAddr uint64) bool {
	set := lineAddr & c.setMask
	base := int(set) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.stamps[i] != 0 && c.tags[i] == lineAddr {
			return true
		}
	}
	return false
}

// flush empties the cache and resets counters.
func (c *cache) flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	c.clock = 0
	c.lastLine = ^uint64(0)
	c.hits = 0
	c.misses = 0
}

// invalidate empties the cache contents but keeps counters running.
func (c *cache) invalidate() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	c.lastLine = ^uint64(0)
}
