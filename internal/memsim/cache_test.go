package memsim

import (
	"testing"
	"testing/quick"
)

func TestCacheSpecGeometry(t *testing.T) {
	spec := CacheSpec{Name: "L1", Size: 32 << 10, LineSize: 32, Assoc: 2}
	if got := spec.Lines(); got != 1024 {
		t.Errorf("Lines() = %d, want 1024", got)
	}
	if got := spec.Sets(); got != 512 {
		t.Errorf("Sets() = %d, want 512", got)
	}
	full := CacheSpec{Name: "FA", Size: 1024, LineSize: 64, Assoc: 0}
	if got := full.Sets(); got != 1 {
		t.Errorf("fully associative Sets() = %d, want 1", got)
	}
}

func TestCacheSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec CacheSpec
		ok   bool
	}{
		{"valid", CacheSpec{Name: "c", Size: 1024, LineSize: 32, Assoc: 2}, true},
		{"zero size", CacheSpec{Name: "c", Size: 0, LineSize: 32}, false},
		{"line not power of two", CacheSpec{Name: "c", Size: 1024, LineSize: 48}, false},
		{"size not multiple of line", CacheSpec{Name: "c", Size: 1000, LineSize: 32}, false},
		{"negative assoc", CacheSpec{Name: "c", Size: 1024, LineSize: 32, Assoc: -1}, false},
		{"ways do not divide lines", CacheSpec{Name: "c", Size: 1024, LineSize: 32, Assoc: 5}, false},
	}
	for _, tc := range cases {
		err := tc.spec.validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: validate() err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// newTestCache builds a tiny cache: capacity lines = size/line.
func newTestCache(size, line, assoc int) *cache {
	return newCache(CacheSpec{Name: "t", Size: size, LineSize: line, Assoc: assoc})
}

func TestCacheSequentialScanMissPerLine(t *testing.T) {
	c := newTestCache(1024, 32, 2) // 32 lines
	misses := 0
	// Scan 4096 bytes one byte at a time: 128 lines touched.
	for addr := uint64(1 << 20); addr < (1<<20)+4096; addr++ {
		if c.access(addr >> c.lineBits) {
			misses++
		}
	}
	if misses != 128 {
		t.Errorf("sequential scan misses = %d, want 128", misses)
	}
}

func TestCacheDirectMappedConflict(t *testing.T) {
	c := newTestCache(1024, 32, 1) // 32 sets, direct mapped
	a := uint64(0x100000)
	b := a + 1024 // same set (stride = cache size)
	if !c.access(a >> c.lineBits) {
		t.Fatal("first access to a should miss")
	}
	if !c.access(b >> c.lineBits) {
		t.Fatal("first access to b should miss")
	}
	// b evicted a in a direct-mapped cache.
	if !c.access(a >> c.lineBits) {
		t.Error("a should have been evicted by conflicting b")
	}
}

func TestCacheTwoWayLRU(t *testing.T) {
	c := newTestCache(2048, 32, 2) // 32 sets, 2 ways
	base := uint64(0x100000)
	a := base
	b := base + 1024 // same set: stride = sets*line = 32*32 = 1024
	d := base + 2048 // also same set
	// With 2 ways, a and b fit; touching a again makes b the LRU victim
	// when d is inserted.
	c.access(a >> c.lineBits)
	c.access(b >> c.lineBits)
	c.access(a >> c.lineBits) // refresh a
	c.access(d >> c.lineBits) // evicts b
	if c.access(a>>c.lineBits) != false {
		t.Error("a should still be resident")
	}
	if c.access(b>>c.lineBits) != true {
		t.Error("b should have been the LRU victim")
	}
}

func TestCacheFullyAssociativeWorkingSet(t *testing.T) {
	c := newTestCache(32*64, 64, 0) // 32 lines, fully associative
	// Warm a working set of exactly 32 lines, then re-scan: zero misses.
	for i := 0; i < 32; i++ {
		c.access(uint64(0x100000+i*64) >> c.lineBits)
	}
	before := c.misses
	for round := 0; round < 3; round++ {
		for i := 0; i < 32; i++ {
			if c.access(uint64(0x100000+i*64) >> c.lineBits) {
				t.Fatalf("round %d line %d: unexpected miss", round, i)
			}
		}
	}
	if c.misses != before {
		t.Errorf("misses grew from %d to %d on resident working set", before, c.misses)
	}
}

func TestCacheFullyAssociativeThrashing(t *testing.T) {
	c := newTestCache(32*64, 64, 0) // 32 lines
	// Cyclic scan over 33 lines with true LRU must miss every time.
	for round := 0; round < 3; round++ {
		for i := 0; i < 33; i++ {
			c.access(uint64(0x100000+i*64) >> c.lineBits)
		}
	}
	if c.misses != 3*33 {
		t.Errorf("cyclic thrash misses = %d, want %d", c.misses, 3*33)
	}
}

func TestCacheFlushAndInvalidate(t *testing.T) {
	c := newTestCache(1024, 32, 2)
	c.access(0x100000 >> c.lineBits)
	c.flush()
	if c.misses != 0 || c.hits != 0 {
		t.Error("flush should zero counters")
	}
	if !c.access(0x100000 >> c.lineBits) {
		t.Error("flushed cache should miss")
	}
	c.invalidate()
	if c.misses != 1 {
		t.Error("invalidate should keep counters")
	}
	if !c.access(0x100000 >> c.lineBits) {
		t.Error("invalidated cache should miss")
	}
}

func TestCacheLastLineFastPath(t *testing.T) {
	c := newTestCache(1024, 32, 2)
	line := uint64(0x100000) >> c.lineBits
	c.access(line)
	h0 := c.hits
	for i := 0; i < 10; i++ {
		if c.access(line) {
			t.Fatal("repeated same-line access missed")
		}
	}
	if c.hits != h0+10 {
		t.Errorf("hits = %d, want %d", c.hits, h0+10)
	}
}

// Property: a fully-associative LRU cache with N lines never misses on
// any trace whose distinct line count is ≤ N, after each line's first
// touch (compulsory miss).
func TestCacheCompulsoryMissesOnlyProperty(t *testing.T) {
	f := func(seed uint8, trace []uint8) bool {
		c := newTestCache(16*64, 64, 0) // 16 lines
		distinct := make(map[uint64]bool)
		misses := uint64(0)
		for _, x := range trace {
			line := uint64(0x100000>>c.lineBits) + uint64(x%16)
			distinct[line] = true
			if c.access(line) {
				misses++
			}
		}
		return misses == uint64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: miss count is monotone in trace prefix and bounded by
// accesses, for arbitrary associativity.
func TestCacheMissBoundProperty(t *testing.T) {
	f := func(trace []uint16, assocSel uint8) bool {
		assoc := []int{1, 2, 4, 0}[assocSel%4]
		c := newTestCache(64*32, 32, assoc)
		for _, x := range trace {
			c.access(uint64(0x100000>>c.lineBits) + uint64(x))
		}
		return c.misses+c.hits == uint64(len(trace)) && c.misses <= uint64(len(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
