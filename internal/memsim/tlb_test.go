package memsim

import (
	"testing"
	"testing/quick"
)

func TestTLBSpec(t *testing.T) {
	spec := TLBSpec{Entries: 64, PageSize: 16 << 10}
	if got := spec.Span(); got != 64*16<<10 {
		t.Errorf("Span() = %d, want %d", got, 64*16<<10)
	}
	if err := spec.validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (TLBSpec{Entries: 0, PageSize: 4096}).validate(); err == nil {
		t.Error("zero entries accepted")
	}
	if err := (TLBSpec{Entries: 8, PageSize: 3000}).validate(); err == nil {
		t.Error("non-power-of-two page accepted")
	}
}

func TestTLBSequentialPages(t *testing.T) {
	tb := newTLB(TLBSpec{Entries: 4, PageSize: 4096})
	misses := 0
	// Walk 16 pages byte-sequentially: exactly 16 misses.
	for addr := uint64(1 << 20); addr < (1<<20)+16*4096; addr += 512 {
		if tb.access(addr >> tb.pageBits) {
			misses++
		}
	}
	if misses != 16 {
		t.Errorf("sequential page walk misses = %d, want 16", misses)
	}
}

func TestTLBWorkingSetFits(t *testing.T) {
	tb := newTLB(TLBSpec{Entries: 8, PageSize: 4096})
	for i := 0; i < 8; i++ {
		tb.access(uint64(100 + i))
	}
	before := tb.misses
	for round := 0; round < 4; round++ {
		for i := 0; i < 8; i++ {
			if tb.access(uint64(100 + i)) {
				t.Fatalf("page %d missed with fitting working set", i)
			}
		}
	}
	if tb.misses != before {
		t.Error("resident pages should not miss")
	}
}

func TestTLBThrash(t *testing.T) {
	tb := newTLB(TLBSpec{Entries: 8, PageSize: 4096})
	// Cyclic access to entries+1 pages with LRU: always miss.
	for round := 0; round < 3; round++ {
		for i := 0; i < 9; i++ {
			tb.access(uint64(100 + i))
		}
	}
	if tb.misses != 27 {
		t.Errorf("thrash misses = %d, want 27", tb.misses)
	}
}

func TestTLBFlushInvalidate(t *testing.T) {
	tb := newTLB(TLBSpec{Entries: 4, PageSize: 4096})
	tb.access(5)
	tb.flush()
	if tb.misses != 0 {
		t.Error("flush should clear counters")
	}
	if !tb.access(5) {
		t.Error("flushed TLB should miss")
	}
	tb.invalidate()
	if tb.misses != 1 {
		t.Error("invalidate should preserve counters")
	}
	if !tb.access(5) {
		t.Error("invalidated TLB should miss")
	}
}

// Property: hits + misses == accesses and a working set of ≤ Entries
// pages incurs only compulsory misses.
func TestTLBCompulsoryProperty(t *testing.T) {
	f := func(trace []uint8) bool {
		tb := newTLB(TLBSpec{Entries: 16, PageSize: 4096})
		distinct := make(map[uint64]bool)
		for _, x := range trace {
			p := uint64(x % 16)
			distinct[p] = true
			tb.access(p)
		}
		return tb.misses == uint64(len(distinct)) &&
			tb.hits+tb.misses == uint64(len(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
