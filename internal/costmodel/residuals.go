package costmodel

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Residuals accumulates predicted-vs-actual cost ratios per operator
// kind across profiled query runs — the calibration feed for a
// self-tuning cost model. Each observation pairs one operator's
// predicted milliseconds (from the paper's formulas) with its measured
// wall-clock milliseconds; the accumulator keeps enough sufficient
// statistics per kind to report the geometric-mean error factor
// (actual/predicted) and its spread, which is what a recalibration
// pass would scale the per-kind formulas by.
//
// Not safe for concurrent use; profiled runs feed it serially.
type Residuals struct {
	// Machine names the profile the predictions were computed for —
	// residuals from different machines must not be merged.
	Machine string
	kinds   map[string]*KindResidual
}

// KindResidual is the accumulated evidence for one operator kind.
type KindResidual struct {
	Kind        string  `json:"kind"`
	Count       int64   `json:"count"`
	PredictedMS float64 `json:"predicted_ms"` // summed predictions
	ActualMS    float64 `json:"actual_ms"`    // summed measurements
	LogRatioSum float64 `json:"log_ratio_sum"`
	MinRatio    float64 `json:"min_ratio"`
	MaxRatio    float64 `json:"max_ratio"`
}

// GeoMeanRatio returns the geometric mean of actual/predicted for this
// kind — the multiplicative factor the model is off by (1 = calibrated,
// >1 = model too optimistic, <1 = too pessimistic).
func (k *KindResidual) GeoMeanRatio() float64 {
	if k.Count == 0 {
		return 1
	}
	return math.Exp(k.LogRatioSum / float64(k.Count))
}

// NewResiduals returns an empty accumulator for one machine profile.
func NewResiduals(machine string) *Residuals {
	return &Residuals{Machine: machine, kinds: map[string]*KindResidual{}}
}

// Observe records one operator execution: its kind, the cost model's
// predicted milliseconds and the measured milliseconds. Observations
// with a non-positive prediction or measurement carry no ratio
// information and are ignored.
func (r *Residuals) Observe(kind string, predictedMS, actualMS float64) {
	if predictedMS <= 0 || actualMS <= 0 || kind == "" {
		return
	}
	if r.kinds == nil {
		r.kinds = map[string]*KindResidual{}
	}
	k, ok := r.kinds[kind]
	if !ok {
		k = &KindResidual{Kind: kind, MinRatio: math.Inf(1), MaxRatio: math.Inf(-1)}
		r.kinds[kind] = k
	}
	ratio := actualMS / predictedMS
	k.Count++
	k.PredictedMS += predictedMS
	k.ActualMS += actualMS
	k.LogRatioSum += math.Log(ratio)
	if ratio < k.MinRatio {
		k.MinRatio = ratio
	}
	if ratio > k.MaxRatio {
		k.MaxRatio = ratio
	}
}

// Kind returns the accumulated residual for one kind, or nil.
func (r *Residuals) Kind(kind string) *KindResidual {
	if r.kinds == nil {
		return nil
	}
	return r.kinds[kind]
}

// Kinds returns every accumulated kind, sorted by name — the one
// iteration order, so serialized calibration files are deterministic.
func (r *Residuals) Kinds() []*KindResidual {
	out := make([]*KindResidual, 0, len(r.kinds))
	for _, k := range r.kinds {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Merge folds another accumulator's evidence into r. Machines must
// match (or either may be empty, adopting the other's).
func (r *Residuals) Merge(o *Residuals) error {
	if o == nil {
		return nil
	}
	if r.Machine == "" {
		r.Machine = o.Machine
	}
	if o.Machine != "" && o.Machine != r.Machine {
		return fmt.Errorf("costmodel: cannot merge residuals for %q into %q", o.Machine, r.Machine)
	}
	if r.kinds == nil {
		r.kinds = map[string]*KindResidual{}
	}
	for _, ok := range o.Kinds() {
		k, found := r.kinds[ok.Kind]
		if !found {
			cp := *ok
			r.kinds[ok.Kind] = &cp
			continue
		}
		k.Count += ok.Count
		k.PredictedMS += ok.PredictedMS
		k.ActualMS += ok.ActualMS
		k.LogRatioSum += ok.LogRatioSum
		if ok.MinRatio < k.MinRatio {
			k.MinRatio = ok.MinRatio
		}
		if ok.MaxRatio > k.MaxRatio {
			k.MaxRatio = ok.MaxRatio
		}
	}
	return nil
}

// residualsFile is the serialized calibration-file layout: kinds as a
// sorted array (stable bytes), with the derived geometric-mean ratio
// denormalized in for human readers and downstream consumers that do
// not want to recompute it.
type residualsFile struct {
	Machine string              `json:"machine"`
	Kinds   []kindResidualEntry `json:"kinds"`
}

type kindResidualEntry struct {
	KindResidual
	GeoMeanRatio float64 `json:"geomean_ratio"`
}

// MarshalJSON serializes the accumulator deterministically (kinds
// sorted by name).
func (r *Residuals) MarshalJSON() ([]byte, error) {
	f := residualsFile{Machine: r.Machine, Kinds: []kindResidualEntry{}}
	for _, k := range r.Kinds() {
		f.Kinds = append(f.Kinds, kindResidualEntry{KindResidual: *k, GeoMeanRatio: k.GeoMeanRatio()})
	}
	return json.Marshal(f)
}

// UnmarshalJSON loads a serialized calibration file.
func (r *Residuals) UnmarshalJSON(data []byte) error {
	var f residualsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	r.Machine = f.Machine
	r.kinds = map[string]*KindResidual{}
	for i := range f.Kinds {
		k := f.Kinds[i].KindResidual
		if k.Kind == "" {
			return fmt.Errorf("costmodel: residuals entry %d has no kind", i)
		}
		r.kinds[k.Kind] = &k
	}
	return nil
}
