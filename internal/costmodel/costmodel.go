// Package costmodel implements the paper's analytical main-memory cost
// models: the stride-scan model of §2 and the radix-cluster (Tc),
// radix-join (Tr) and partitioned hash-join (Th) models of §3.4. The
// models quantify query cost in CPU cycles and per-event miss counts
// (L1, L2, TLB) multiplied by calibrated latencies — the methodology
// the paper sets against "magical cost factor" profiling models
// [LN96, WK90].
//
// Two piecewise conditions are printed with garbled guards in the
// proceedings (both branches guarded by ≤/<); this implementation reads
// the second branch of each as the complement (>), and reads the
// hash-join TLB overflow penalty as C·10·(1−‖TLB‖/‖Cl‖) by symmetry
// with the cache term; see DESIGN.md §4.
package costmodel

import (
	"math"

	"monetlite/internal/memsim"
)

// TupleBytes is the BUN width of the experimental BATs (§3.4.1).
const TupleBytes = 8

// PhashTupleBytes is the per-tuple footprint of a cluster plus its
// bucket-chained hash table, the 12 bytes/tuple of §3.4.4.
const PhashTupleBytes = 12

// Model evaluates the paper's cost formulas for one machine profile,
// optionally corrected per operator kind by a learned residual table
// (see model.go): the unified pricing layer every cost-consulting
// component goes through.
type Model struct {
	M memsim.Machine

	// corr maps a KindOf-normalized operator kind to the multiplicative
	// correction its predictions carry (WithResiduals). Nil = the pure
	// paper formulas.
	corr map[string]float64
}

// New returns a model for machine m.
func New(m memsim.Machine) Model { return Model{M: m} }

// Breakdown decomposes a predicted cost into its per-event parts.
// Misses are expected counts (fractional); Total is nanoseconds.
type Breakdown struct {
	CPUNanos  float64
	L1Misses  float64
	L2Misses  float64
	TLBMisses float64
}

// Total returns the predicted elapsed nanoseconds: CPU work plus each
// miss count times its latency.
func (b Breakdown) Total(m memsim.Machine) float64 {
	return b.CPUNanos +
		b.L1Misses*m.Cost.LatL2 +
		b.L2Misses*m.Cost.LatMem +
		b.TLBMisses*m.Cost.LatTLB
}

// Millis is Total in milliseconds.
func (b Breakdown) Millis(m memsim.Machine) float64 { return b.Total(m) / 1e6 }

// Add sums two breakdowns component-wise — the composition rule of
// the paper's models (a plan's cost is the sum of its operators').
func (b Breakdown) Add(o Breakdown) Breakdown { return b.add(o) }

// Scale multiplies every component by k (e.g. P passes, two operands).
func (b Breakdown) Scale(k float64) Breakdown { return b.scale(k) }

// add sums two breakdowns component-wise.
func (b Breakdown) add(o Breakdown) Breakdown {
	return Breakdown{
		CPUNanos:  b.CPUNanos + o.CPUNanos,
		L1Misses:  b.L1Misses + o.L1Misses,
		L2Misses:  b.L2Misses + o.L2Misses,
		TLBMisses: b.TLBMisses + o.TLBMisses,
	}
}

// scale multiplies every component by k.
func (b Breakdown) scale(k float64) Breakdown {
	return Breakdown{
		CPUNanos:  k * b.CPUNanos,
		L1Misses:  k * b.L1Misses,
		L2Misses:  k * b.L2Misses,
		TLBMisses: k * b.TLBMisses,
	}
}

// ---------------------------------------------------------------------
// §2: the stride-scan model.
//
//	T(s) = TCPU + ML1(s)·lL2 + ML2(s)·lMem
//	ML1(s) = min(s/LS_L1, 1), ML2(s) = min(s/LS_L2, 1)

// seqLatMem returns the effective DRAM latency of sequential misses
// (bandwidth-bound; falls back to LatMem when uncalibrated). The scan
// experiment is purely sequential, so its model uses this latency —
// the same effective value the paper's Figure-3 measurements embed.
func (m Model) seqLatMem() float64 {
	if m.M.Cost.LatMemSeq > 0 {
		return m.M.Cost.LatMemSeq
	}
	return m.M.Cost.LatMem
}

// ScanIterNanos returns the §2 model's expected cost of one iteration
// of the stride-scan experiment: pure CPU work plus the expected L1
// and L2 miss penalties at stride s (sequential-miss latency).
func (m Model) ScanIterNanos(s int) float64 {
	b := m.ScanIter(s)
	return b.CPUNanos + b.L1Misses*m.M.Cost.LatL2 + b.L2Misses*m.seqLatMem()
}

// ScanNanos returns the modelled elapsed nanoseconds of the full
// experiment: iters iterations at stride s.
func (m Model) ScanNanos(iters, s int) float64 {
	return float64(iters) * m.ScanIterNanos(s)
}

// ScanIter returns the per-iteration breakdown at stride s.
func (m Model) ScanIter(s int) Breakdown {
	ml1 := math.Min(float64(s)/float64(m.M.L1.LineSize), 1)
	ml2 := math.Min(float64(s)/float64(m.M.L2.LineSize), 1)
	return Breakdown{CPUNanos: m.M.Cost.WScanByte, L1Misses: ml1, L2Misses: ml2}
}

// Scan returns the predicted breakdown of the full Figure-3 experiment:
// iters iterations at stride s.
func (m Model) Scan(iters, s int) Breakdown {
	return m.ScanIter(s).scale(float64(iters))
}

// ---------------------------------------------------------------------
// Geometry helpers, using the paper's notation: |Re|Li = lines per
// relation, |Re|Pg = pages per relation, |Li|Li = lines per cache.

func (m Model) linesOf(c, w int, cacheIdx int) float64 {
	line := m.M.L1.LineSize
	if cacheIdx == 2 {
		line = m.M.L2.LineSize
	}
	return math.Ceil(float64(c) * float64(w) / float64(line))
}

func (m Model) pagesOf(c, w int) float64 {
	return math.Ceil(float64(c) * float64(w) / float64(m.M.TLB.PageSize))
}

func (m Model) relLines(c int, cacheIdx int) float64 {
	return m.linesOf(c, TupleBytes, cacheIdx)
}

func (m Model) relPages(c int) float64 {
	return m.pagesOf(c, TupleBytes)
}

func (m Model) cacheLines(cacheIdx int) float64 {
	if cacheIdx == 2 {
		return float64(m.M.L2.Lines())
	}
	return float64(m.M.L1.Lines())
}

func (m Model) cacheBytes(cacheIdx int) float64 {
	if cacheIdx == 2 {
		return float64(m.M.L2.Size)
	}
	return float64(m.M.L1.Size)
}

// ---------------------------------------------------------------------
// §3.4.2: radix-cluster model Tc(P, B, C).

// clusterPassMisses is MLi,c(Bp, C): the Li misses of one clustering
// pass creating Hp clusters over c tuples of w bytes. First term:
// fetching input and storing output (2·|Re|Li). Second: extra misses
// as the concurrently-filled cluster buffers approach (Hp/|Li| per
// tuple) or exceed (log-degraded) the cache's line count.
func (m Model) clusterPassMisses(hp float64, c, w int, cacheIdx int) float64 {
	lines := m.cacheLines(cacheIdx)
	base := 2 * m.linesOf(c, w, cacheIdx)
	if hp <= lines {
		return base + float64(c)*hp/lines
	}
	return base + float64(c)*(1+math.Log2(hp/lines))
}

// clusterPassTLBMisses is MTLB,c(Bp, C) over c tuples of w bytes.
func (m Model) clusterPassTLBMisses(hp float64, c, w int) float64 {
	tlb := float64(m.M.TLB.Entries)
	pages := m.pagesOf(c, w)
	base := 2 * pages
	if hp <= tlb {
		return base + pages*hp/tlb
	}
	return base + float64(c)*(1-tlb/hp)
}

// ClusterPass returns the breakdown of one pass on bp bits over the
// 8-byte BUNs of the join experiments.
func (m Model) ClusterPass(bp float64, c int) Breakdown {
	return m.ClusterPassBytes(bp, c, TupleBytes)
}

// ClusterPassBytes is ClusterPass generalized to tuples of w bytes:
// the same §3.4.2 per-pass miss model, applied to wider feeds — the
// aggregation path clusters 16-byte (key, value) pairs with it.
func (m Model) ClusterPassBytes(bp float64, c, w int) Breakdown {
	hp := math.Pow(2, bp)
	return Breakdown{
		CPUNanos:  float64(c) * m.M.Cost.Wc,
		L1Misses:  m.clusterPassMisses(hp, c, w, 1),
		L2Misses:  m.clusterPassMisses(hp, c, w, 2),
		TLBMisses: m.clusterPassTLBMisses(hp, c, w),
	}
}

// Tc returns the breakdown of radix-clustering C tuples on B bits in P
// passes of B/P bits each (§3.4.2):
//
//	Tc(P,B,C) = P·(C·wc + ML1,c·lL2 + ML2,c·lMem + MTLB,c·lTLB)
func (m Model) Tc(p, b, c int) Breakdown {
	if b == 0 || p == 0 {
		return Breakdown{}
	}
	return m.ClusterPass(float64(b)/float64(p), c).scale(float64(p))
}

// TcNanos is Tc's total in nanoseconds.
func (m Model) TcNanos(p, b, c int) float64 { return m.Tc(p, b, c).Total(m.M) }

// ---------------------------------------------------------------------
// §3.4.3: radix-join model Tr(B, C).

// radixJoinMisses is MLi,r(B, C): 3·|Re|Li for fetching both operands
// and storing the result, plus the inner-loop misses — a |Cl|Li/|Li|Li
// fraction per tuple while clusters fit, every inner line once per
// outer tuple when they do not.
func (m Model) radixJoinMisses(b, c int, cacheIdx int) float64 {
	line := m.M.L1.LineSize
	if cacheIdx == 2 {
		line = m.M.L2.LineSize
	}
	h := math.Pow(2, float64(b))
	clLines := math.Ceil(float64(c) / h * TupleBytes / float64(line))
	lines := m.cacheLines(cacheIdx)
	base := 3 * m.relLines(c, cacheIdx)
	if clLines <= lines {
		return base + float64(c)*clLines/lines
	}
	return base + float64(c)*clLines
}

// radixJoinTLBMisses is MTLB,r(B, C).
func (m Model) radixJoinTLBMisses(b, c int) float64 {
	h := math.Pow(2, float64(b))
	clBytes := float64(c) / h * TupleBytes
	return 3*m.relPages(c) + float64(c)*clBytes/float64(m.M.TLB.Span())
}

// Tr returns the breakdown of the radix-join phase (§3.4.3) on inputs
// clustered on b bits:
//
//	Tr(B,C) = C·(C/H)·wr + C·w'r + ML1,r·lL2 + ML2,r·lMem + MTLB,r·lTLB
func (m Model) Tr(b, c int) Breakdown {
	h := math.Pow(2, float64(b))
	return Breakdown{
		CPUNanos:  float64(c)*(float64(c)/h)*m.M.Cost.Wr + float64(c)*m.M.Cost.WrOut,
		L1Misses:  m.radixJoinMisses(b, c, 1),
		L2Misses:  m.radixJoinMisses(b, c, 2),
		TLBMisses: m.radixJoinTLBMisses(b, c),
	}
}

// TrNanos is Tr's total in nanoseconds.
func (m Model) TrNanos(b, c int) float64 { return m.Tr(b, c).Total(m.M) }

// ---------------------------------------------------------------------
// §3.4.3: partitioned hash-join model Th(B, C).

// phashMisses is MLi,h(B, C): 3·|Re|Li plus a ‖Cl‖/‖Li‖ fraction per
// tuple while the inner cluster and its hash table fit the cache, and
// up to 10 misses per tuple (8 through the bucket chain plus 2 for the
// tuple) once they trash it.
func (m Model) phashMisses(b, c int, cacheIdx int) float64 {
	h := math.Pow(2, float64(b))
	clBytes := float64(c) / h * PhashTupleBytes
	cache := m.cacheBytes(cacheIdx)
	base := 3 * m.relLines(c, cacheIdx)
	if clBytes <= cache {
		return base + float64(c)*clBytes/cache
	}
	return base + float64(c)*10*(1-cache/clBytes)
}

// phashTLBMisses is MTLB,h(B, C).
func (m Model) phashTLBMisses(b, c int) float64 {
	h := math.Pow(2, float64(b))
	clBytes := float64(c) / h * PhashTupleBytes
	span := float64(m.M.TLB.Span())
	base := 3 * m.relPages(c)
	if clBytes <= span {
		return base + float64(c)*clBytes/span
	}
	return base + float64(c)*10*(1-span/clBytes)
}

// Th returns the breakdown of the partitioned hash-join phase (§3.4.3)
// on inputs clustered on b bits:
//
//	Th(B,C) = C·wh + H·w'h + ML1,h·lL2 + ML2,h·lMem + MTLB,h·lTLB
func (m Model) Th(b, c int) Breakdown {
	h := math.Pow(2, float64(b))
	return Breakdown{
		CPUNanos:  float64(c)*m.M.Cost.Wh + h*m.M.Cost.WhClus,
		L1Misses:  m.phashMisses(b, c, 1),
		L2Misses:  m.phashMisses(b, c, 2),
		TLBMisses: m.phashTLBMisses(b, c),
	}
}

// ThNanos is Th's total in nanoseconds.
func (m Model) ThNanos(b, c int) float64 { return m.Th(b, c).Total(m.M) }

// ---------------------------------------------------------------------
// §3.4.4: combined cluster + join cost.

// optimalPasses mirrors core.OptimalPasses without importing it
// (costmodel sits below core): at most log2(TLB entries) bits/pass.
func (m Model) optimalPasses(bits int) int {
	if bits <= 0 {
		return 1
	}
	per := 0
	for e := m.M.TLB.Entries; e > 1; e >>= 1 {
		per++
	}
	if per < 1 {
		per = 1
	}
	return (bits + per - 1) / per
}

// PhashTotal predicts the full partitioned hash-join: clustering both
// operands on b bits (optimal passes) plus the hash-join phase.
func (m Model) PhashTotal(b, c int) Breakdown {
	p := m.optimalPasses(b)
	return m.Tc(p, b, c).scale(2).add(m.Th(b, c))
}

// RadixTotal predicts the full radix-join: clustering both operands on
// b bits (optimal passes) plus the nested-loop join phase.
func (m Model) RadixTotal(b, c int) Breakdown {
	p := m.optimalPasses(b)
	return m.Tc(p, b, c).scale(2).add(m.Tr(b, c))
}

// SortMergeTotal is a coarse sort-merge-join prediction assembled from
// the paper's building blocks (the paper gives no closed formula; it
// measures sort-merge only as a baseline): radix-sorting both operands
// is 4 passes of 8-bit clustering work each, plus a merge scan.
func (m Model) SortMergeTotal(c int) Breakdown {
	sortOne := m.ClusterPass(8, c).scale(4)
	merge := Breakdown{
		CPUNanos: float64(c) * (m.M.Cost.Wr + m.M.Cost.WrOut),
		L1Misses: 3 * m.relLines(c, 1),
		L2Misses: 3 * m.relLines(c, 2),
	}
	return sortOne.scale(2).add(merge)
}

// SimpleHashTotal predicts the non-partitioned hash join: Th with one
// cluster spanning the whole relation.
func (m Model) SimpleHashTotal(c int) Breakdown { return m.Th(0, c) }
