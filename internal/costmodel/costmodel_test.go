package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"monetlite/internal/memsim"
)

func origin() Model { return New(memsim.Origin2000()) }

func TestScanModelShape(t *testing.T) {
	m := origin()
	// Monotone in stride until the L2 line size, then flat.
	prev := -1.0
	for s := 1; s <= 128; s++ {
		ns := m.ScanIterNanos(s)
		if ns < prev {
			t.Fatalf("scan model not monotone at stride %d", s)
		}
		prev = ns
	}
	if m.ScanIterNanos(128) != m.ScanIterNanos(256) {
		t.Error("scan model not flat past L2 line size")
	}
	// §3.1: stride 1 ≈ 4 cycles (16ns), stride 8 ≈ 10 cycles (40ns).
	if got := m.ScanIterNanos(1); got < 16 || got > 26 {
		t.Errorf("stride-1 iteration = %.1fns, want ≈16–26", got)
	}
	if got := m.ScanIterNanos(8); got < 30 || got > 50 {
		t.Errorf("stride-8 iteration = %.1fns, want ≈40 (10 cycles)", got)
	}
}

func TestScanFullExperimentScale(t *testing.T) {
	m := origin()
	b := m.Scan(200000, 256)
	// Full-miss plateau: every iteration misses L1 and L2.
	if b.L1Misses != 200000 || b.L2Misses != 200000 {
		t.Errorf("plateau misses = %v", b)
	}
	if ms := b.Millis(m.M); ms < 50 || ms > 150 {
		t.Errorf("plateau elapsed = %.1fms, want within Figure-3 magnitude", ms)
	}
}

func TestTcKneesAtTLBAndCacheBoundaries(t *testing.T) {
	m := origin()
	const c = 8 << 20
	// The per-pass TLB term jumps once Hp exceeds 64 entries: the
	// marginal cost of bit 7 in one pass must far exceed that of bit 5.
	d6 := m.TcNanos(1, 7, c) - m.TcNanos(1, 6, c)
	d5 := m.TcNanos(1, 6, c) - m.TcNanos(1, 5, c)
	if d6 < 4*d5 {
		t.Errorf("no TLB knee: Δ(6→7)=%.2e Δ(5→6)=%.2e", d6, d5)
	}
	// Beyond the TLB knee, two passes beat one (Figure 9).
	if m.TcNanos(2, 8, c) >= m.TcNanos(1, 8, c) {
		t.Error("two passes not better at B=8")
	}
	// Up to 6 bits, one pass is best (§3.4.2).
	for b := 1; b <= 6; b++ {
		if m.TcNanos(1, b, c) > m.TcNanos(2, b, c) {
			t.Errorf("B=%d: one pass not optimal", b)
		}
	}
}

func TestTcOptimalPassSchedule(t *testing.T) {
	// Figure 9 / §3.4.2: P passes become optimal beyond 6P bits.
	m := origin()
	const c = 8 << 20
	bestPasses := func(b int) int {
		best, bestNs := 1, math.Inf(1)
		for p := 1; p <= 5 && p <= b; p++ {
			if ns := m.TcNanos(p, b, c); ns < bestNs {
				best, bestNs = p, ns
			}
		}
		return best
	}
	for b, want := range map[int]int{4: 1, 6: 1, 8: 2, 12: 2, 14: 3, 18: 3, 20: 4} {
		if got := bestPasses(b); got != want {
			t.Errorf("optimal passes at B=%d = %d, want %d", b, got, want)
		}
	}
}

func TestTcZeroBits(t *testing.T) {
	m := origin()
	if m.TcNanos(1, 0, 1000) != 0 {
		t.Error("Tc(B=0) must be free (no clustering)")
	}
}

func TestTrImprovesWithBits(t *testing.T) {
	m := origin()
	const c = 1 << 20
	// §3.4.3: radix-join performance improves with the number of radix
	// bits (dominated by the quadratic inner loop shrinking).
	prev := math.Inf(1)
	for b := 4; b <= 18; b += 2 {
		ns := m.TrNanos(b, c)
		if ns >= prev {
			t.Errorf("Tr not improving at B=%d", b)
		}
		prev = ns
	}
}

func TestThPlateausAndUpturn(t *testing.T) {
	m := origin()
	const c = 8 << 20
	// Performance improves strongly until the cluster+table fits the
	// TLB span and L2 (B≈7), then flattens (§3.4.3).
	steep := m.ThNanos(2, c) / m.ThNanos(8, c)
	if steep < 2 {
		t.Errorf("no steep improvement before TLB fit: ratio %.2f", steep)
	}
	flat := m.ThNanos(12, c) / m.ThNanos(14, c)
	if flat < 0.5 || flat > 2.5 {
		t.Errorf("no plateau after L1 fit: ratio %.2f", flat)
	}
	// H·w'h: with very many tiny clusters the hash-table overhead turns
	// the curve back up.
	if m.ThNanos(22, c) <= m.ThNanos(15, c) {
		t.Error("no small-cluster upturn from hash-table allocation overhead")
	}
}

func TestCacheConsciousBeatBaselinesAtScale(t *testing.T) {
	m := origin()
	const c = 8 << 20
	simple := m.SimpleHashTotal(c).Total(m.M)
	sortMerge := m.SortMergeTotal(c).Total(m.M)
	phashL1 := m.PhashTotal(12, c).Total(m.M) // B=12 = phash L1 at 8M
	radix8 := m.RadixTotal(20, c).Total(m.M)
	if phashL1 >= simple {
		t.Errorf("phash L1 %.0fms not below simple hash %.0fms", phashL1/1e6, simple/1e6)
	}
	if phashL1 >= sortMerge {
		t.Errorf("phash L1 %.0fms not below sort-merge %.0fms", phashL1/1e6, sortMerge/1e6)
	}
	if radix8 >= simple {
		t.Errorf("radix 8 %.0fms not below simple hash %.0fms", radix8/1e6, simple/1e6)
	}
	// Order-of-magnitude claim (§4).
	if simple/phashL1 < 3 {
		t.Errorf("improvement only %.1f×, expected substantial", simple/phashL1)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	m := memsim.Origin2000()
	b := Breakdown{CPUNanos: 100, L1Misses: 10, L2Misses: 5, TLBMisses: 2}
	want := 100 + 10*m.Cost.LatL2 + 5*m.Cost.LatMem + 2*m.Cost.LatTLB
	if got := b.Total(m); got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if b.Millis(m) != want/1e6 {
		t.Error("Millis inconsistent")
	}
	s := b.add(b).scale(0.5)
	if s != b {
		t.Errorf("add/scale roundtrip: %+v", s)
	}
}

// Property: all model predictions are non-negative and finite for any
// valid parameters.
func TestModelsFiniteProperty(t *testing.T) {
	m := origin()
	f := func(bRaw, pRaw uint8, cRaw uint32) bool {
		b := int(bRaw) % 27
		p := int(pRaw)%4 + 1
		c := int(cRaw)%(1<<22) + 1
		for _, v := range []float64{
			m.TcNanos(p, b, c), m.TrNanos(b, c), m.ThNanos(b, c),
			m.PhashTotal(b, c).Total(m.M), m.RadixTotal(b, c).Total(m.M),
			m.SortMergeTotal(c).Total(m.M), m.SimpleHashTotal(c).Total(m.M),
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
