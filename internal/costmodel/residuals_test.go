package costmodel

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestResidualsObserveAndGeoMean(t *testing.T) {
	r := NewResiduals("origin2k")
	// Two observations off by 2x and 8x: geometric mean 4x.
	r.Observe("Select[scan]", 10, 20)
	r.Observe("Select[scan]", 10, 80)
	k := r.Kind("Select[scan]")
	if k == nil {
		t.Fatal("kind not accumulated")
	}
	if k.Count != 2 || k.PredictedMS != 20 || k.ActualMS != 100 {
		t.Fatalf("sums: count=%d pred=%v actual=%v", k.Count, k.PredictedMS, k.ActualMS)
	}
	if got := k.GeoMeanRatio(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean ratio = %v, want 4", got)
	}
	if k.MinRatio != 2 || k.MaxRatio != 8 {
		t.Fatalf("min/max ratio = %v/%v, want 2/8", k.MinRatio, k.MaxRatio)
	}
}

func TestResidualsIgnoresNonPositive(t *testing.T) {
	r := NewResiduals("m")
	r.Observe("x", 0, 5)
	r.Observe("x", 5, 0)
	r.Observe("x", -1, 5)
	r.Observe("", 5, 5)
	if len(r.Kinds()) != 0 {
		t.Fatalf("degenerate observations accumulated: %v", r.Kinds())
	}
}

func TestResidualsJSONRoundTripDeterministic(t *testing.T) {
	r := NewResiduals("origin2k")
	r.Observe("GroupAggregate[radix]", 5, 50)
	r.Observe("Select[scan]", 10, 20)
	r.Observe("Join[phash]", 3, 9)
	b1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b2, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("serialization not deterministic:\n%s\n%s", b1, b2)
		}
	}
	var back Residuals
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Machine != "origin2k" {
		t.Fatalf("machine = %q", back.Machine)
	}
	b3, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", b1, b3)
	}
}

func TestResidualsMerge(t *testing.T) {
	a := NewResiduals("m")
	a.Observe("Select[scan]", 10, 20)
	b := NewResiduals("m")
	b.Observe("Select[scan]", 10, 80)
	b.Observe("OrderBy", 1, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	k := a.Kind("Select[scan]")
	if k.Count != 2 || math.Abs(k.GeoMeanRatio()-4) > 1e-9 {
		t.Fatalf("merged: count=%d geomean=%v", k.Count, k.GeoMeanRatio())
	}
	if a.Kind("OrderBy") == nil {
		t.Fatal("merge dropped new kind")
	}
	other := NewResiduals("different")
	if err := a.Merge(other); err == nil {
		// empty accumulator for another machine: nothing to merge but
		// the mismatch must still be refused.
		t.Fatal("cross-machine merge not refused")
	}
}
