package costmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The unified pricing layer: every cost-consulting component (the
// engine's planner, EXPLAIN, the profiler) prices a Breakdown through
// Model rather than multiplying machine latencies directly, so a model
// carrying learned per-operator-kind corrections transparently bends
// every prediction — and every cost-based decision — toward observed
// reality. The correction table is keyed by the same normalized KindOf
// labels Residuals accumulates, closing the self-tuning loop:
//
//	profiled run → Residuals (mlquery -calib) → WithResiduals
//	(mlquery -learn) → corrected planning and prediction.

// maxCorrection bounds a learned per-kind correction factor: a single
// wild observation (clock glitch, cold page cache) must not be able to
// turn the model upside down.
const maxCorrection = 1024

// KindOf normalizes an operator label to its calibration kind:
// algorithm parameters (radix bits, join plan shape) are stripped, the
// algorithm name kept — "GroupAggregate[radix bits=10]" →
// "GroupAggregate[radix]", "Join[phash (B=8, P=2)]" → "Join[phash]".
// Residuals observations and Model corrections share this one
// normalization.
func KindOf(label string) string {
	base, inner, ok := strings.Cut(label, "[")
	if !ok {
		return label
	}
	inner = strings.TrimSuffix(inner, "]")
	if f := strings.Fields(inner); len(f) > 0 {
		inner = f[0]
	}
	return base + "[" + inner + "]"
}

// WithResiduals returns a copy of the model whose predictions are
// multiplied by each kind's geometric-mean actual/predicted ratio —
// the one learned residual round of the self-tuning loop. The
// residuals must have been observed on the same machine profile the
// model prices for (an Origin2000 correction table says nothing about
// a calibrated host).
func (m Model) WithResiduals(r *Residuals) (Model, error) {
	if r == nil {
		m.corr = nil
		return m, nil
	}
	if r.Machine != "" && m.M.Name != "" && r.Machine != m.M.Name {
		return m, fmt.Errorf("costmodel: residuals calibrated on %q cannot correct a %q model", r.Machine, m.M.Name)
	}
	corr := map[string]float64{}
	for _, k := range r.Kinds() {
		g := k.GeoMeanRatio()
		if math.IsNaN(g) || math.IsInf(g, 0) || g <= 0 {
			continue
		}
		if g > maxCorrection {
			g = maxCorrection
		}
		if g < 1/maxCorrection {
			g = 1 / maxCorrection
		}
		corr[k.Kind] = g
	}
	m.corr = corr
	return m, nil
}

// Correction returns the multiplicative factor applied to predictions
// of the given operator kind (1 when the model carries no evidence for
// it).
func (m Model) Correction(kind string) float64 {
	if c, ok := m.corr[kind]; ok {
		return c
	}
	return 1
}

// Corrected reports whether the model carries any learned corrections.
func (m Model) Corrected() bool { return len(m.corr) > 0 }

// Corrections returns the learned (kind, factor) table, sorted by kind
// — the reporting form (mlquery's -json "machine" block).
func (m Model) Corrections() map[string]float64 {
	if len(m.corr) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m.corr))
	for k, v := range m.corr {
		out[k] = v
	}
	return out
}

// CorrectionKinds returns the corrected kinds, sorted.
func (m Model) CorrectionKinds() []string {
	out := make([]string, 0, len(m.corr))
	for k := range m.corr {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Nanos prices a breakdown for one operator kind: the machine's
// per-event totals times the kind's learned correction. This is the
// pricing entry point every cost-consulting layer goes through
// (enforced for engine-shaped packages by monetvet's costcover).
func (m Model) Nanos(kind string, b Breakdown) float64 {
	return b.Total(m.M) * m.Correction(kind)
}

// Millis is Nanos in milliseconds.
func (m Model) Millis(kind string, b Breakdown) float64 {
	return m.Nanos(kind, b) / 1e6
}
