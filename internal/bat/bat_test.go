package bat

import (
	"testing"
	"testing/quick"

	"monetlite/internal/memsim"
)

func TestPairsBasics(t *testing.T) {
	p := NewPairs(10)
	if p.Len() != 10 || p.Bytes() != 80 {
		t.Errorf("Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if (&Pairs{}).Validate() == nil {
		t.Error("nil storage accepted")
	}
	if p.Bound() {
		t.Error("fresh BAT should be unbound")
	}
}

func TestPairsBindAddr(t *testing.T) {
	s := memsim.MustNew(memsim.Origin2000())
	p := NewPairs(100)
	p.Bind(s)
	if !p.Bound() {
		t.Fatal("Bind did not bind")
	}
	base := p.Base()
	if p.Addr(0) != base || p.Addr(7) != base+56 {
		t.Errorf("Addr(7) = %#x, want base+56", p.Addr(7))
	}
	// Rebinding is a no-op.
	p.Bind(s)
	if p.Base() != base {
		t.Error("rebind moved the BAT")
	}
	// Nil sim is a no-op.
	q := NewPairs(1)
	q.Bind(nil)
	if q.Bound() {
		t.Error("nil bind bound the BAT")
	}
}

func TestPairsSliceSharesStorageAndAddresses(t *testing.T) {
	s := memsim.MustNew(memsim.Origin2000())
	p := NewPairs(100)
	for i := range p.BUNs {
		p.BUNs[i] = Pair{Head: Oid(i), Tail: uint32(i * 2)}
	}
	p.Bind(s)
	v := p.Slice(10, 20)
	if v.Len() != 10 {
		t.Fatalf("view len = %d", v.Len())
	}
	if v.BUNs[0] != p.BUNs[10] {
		t.Error("view does not share storage")
	}
	if v.Addr(0) != p.Addr(10) {
		t.Errorf("view Addr(0)=%#x, want %#x", v.Addr(0), p.Addr(10))
	}
	v.BUNs[0].Tail = 999
	if p.BUNs[10].Tail != 999 {
		t.Error("view write not visible in parent")
	}
	// Slicing an unbound BAT stays unbound.
	u := NewPairs(10).Slice(2, 5)
	if u.Bound() {
		t.Error("slice of unbound BAT claims bound")
	}
}

func TestPairsClone(t *testing.T) {
	p := NewPairs(5)
	p.BUNs[3].Tail = 7
	c := p.Clone()
	c.BUNs[3].Tail = 8
	if p.BUNs[3].Tail != 7 {
		t.Error("clone shares storage")
	}
	if c.Bound() {
		t.Error("clone should be unbound")
	}
}

func TestVoidVec(t *testing.T) {
	v := NewVoid(8, 1000)
	if v.Len() != 8 || v.Width() != 0 || v.Type() != TVoid {
		t.Errorf("void geometry: len=%d width=%d type=%v", v.Len(), v.Width(), v.Type())
	}
	if v.Int(3) != 1003 {
		t.Errorf("Int(3) = %d, want 1003", v.Int(3))
	}
	if pos, ok := v.Position(1005); !ok || pos != 5 {
		t.Errorf("Position(1005) = %d,%v", pos, ok)
	}
	if _, ok := v.Position(999); ok {
		t.Error("Position below seqbase accepted")
	}
	if _, ok := v.Position(1008); ok {
		t.Error("Position past end accepted")
	}
}

func TestTypedVectors(t *testing.T) {
	cases := []struct {
		v     Vector
		typ   Type
		width int
		at3   int64
	}{
		{NewI8([]int8{0, 1, 2, 3}), TI8, 1, 3},
		{NewI16([]int16{0, 10, 20, 30}), TI16, 2, 30},
		{NewI32([]int32{0, 100, 200, 300}), TI32, 4, 300},
		{NewI64([]int64{0, 1e9, 2e9, 3e9}), TI64, 8, 3e9},
		{NewOids([]Oid{5, 6, 7, 8}), TOid, 4, 8},
	}
	for _, tc := range cases {
		if tc.v.Type() != tc.typ || tc.v.Width() != tc.width {
			t.Errorf("%v: type=%v width=%d", tc.typ, tc.v.Type(), tc.v.Width())
		}
		if tc.v.Len() != 4 {
			t.Errorf("%v: len=%d", tc.typ, tc.v.Len())
		}
		if got := tc.v.Int(3); got != tc.at3 {
			t.Errorf("%v: Int(3)=%d want %d", tc.typ, got, tc.at3)
		}
	}
	f := NewF64([]float64{0.5, 1.5})
	if f.Float(1) != 1.5 {
		t.Errorf("Float(1) = %v", f.Float(1))
	}
	s := NewStrs([]string{"a", "b"})
	if s.Str(1) != "b" || s.Type() != TStr {
		t.Errorf("StrVec: %q %v", s.Str(1), s.Type())
	}
}

func TestVectorBindAndTouch(t *testing.T) {
	sim := memsim.MustNew(memsim.Origin2000())
	v := NewI32([]int32{1, 2, 3, 4})
	if v.Addr(0) != 0 {
		t.Error("unbound vector has non-zero addr")
	}
	v.Bind(sim)
	if v.Addr(1) != v.Addr(0)+4 {
		t.Errorf("addr stride: %#x vs %#x", v.Addr(1), v.Addr(0))
	}
	before := sim.Stats().Accesses
	v.Touch(sim, 2)
	if sim.Stats().Accesses != before+1 {
		t.Error("Touch did not access")
	}
	// Touch on unbound vector or nil sim is a no-op.
	u := NewI32([]int32{1})
	u.Touch(sim, 0)
	u.Touch(nil, 0)
	void := NewVoid(4, 0)
	void.Bind(sim)
	void.Touch(sim, 0) // storage-free: never accesses
}

func TestBATConstruction(t *testing.T) {
	head := NewVoid(3, 0)
	tail := NewI32([]int32{10, 20, 30})
	b, err := NewBAT("t", head, tail)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
	if b.BUNWidth() != 4 { // void head stores nothing
		t.Errorf("BUNWidth = %d, want 4", b.BUNWidth())
	}
	if _, err := NewBAT("bad", NewVoid(2, 0), tail); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		TVoid: "void", TI8: "i8", TI16: "i16", TI32: "i32",
		TI64: "i64", TF64: "f64", TOid: "oid", TStr: "str",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type has empty string")
	}
}

// Property: Slice(lo,hi) of a bound BAT has addresses consistent with
// the parent for all positions.
func TestSliceAddressProperty(t *testing.T) {
	sim := memsim.MustNew(memsim.Origin2000())
	p := NewPairs(257)
	p.Bind(sim)
	f := func(loRaw, hiRaw uint16) bool {
		lo := int(loRaw) % p.Len()
		hi := lo + int(hiRaw)%(p.Len()-lo) + 1
		v := p.Slice(lo, hi)
		for i := 0; i < v.Len(); i++ {
			if v.Addr(i) != p.Addr(lo+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
