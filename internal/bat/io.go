package bat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The on-disk BAT format: Monet treats disk as the bottom of the
// memory hierarchy and maps BATs straight into memory (§4); this
// package gives the same contiguous-BUN image a portable header so
// workloads (e.g. the 64M-tuple experiment inputs) can be generated
// once and reloaded.
//
//	offset  size  field
//	0       4     magic "BATP"
//	4       4     format version (little endian)
//	8       8     cardinality (little endian)
//	16      8×n   BUNs: head uint32, tail uint32 (little endian)

var batMagic = [4]byte{'B', 'A', 'T', 'P'}

// FormatVersion is the current on-disk format version.
const FormatVersion = 1

// maxReadCardinality guards against corrupt headers allocating
// unbounded memory: 1<<31 BUNs = 16 GB, far past any experiment here.
const maxReadCardinality = 1 << 31

// WritePairs streams the BAT to w in the on-disk format.
func WritePairs(w io.Writer, p *Pairs) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(batMagic[:]); err != nil {
		return fmt.Errorf("bat: write header: %w", err)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(p.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("bat: write header: %w", err)
	}
	var buf [PairSize]byte
	for _, bun := range p.BUNs {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(bun.Head))
		binary.LittleEndian.PutUint32(buf[4:8], bun.Tail)
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("bat: write BUNs: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("bat: flush: %w", err)
	}
	return nil
}

// ReadPairs loads a BAT from r, validating the header.
func ReadPairs(r io.Reader) (*Pairs, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("bat: read header: %w", err)
	}
	if [4]byte(head[0:4]) != batMagic {
		return nil, fmt.Errorf("bat: bad magic %q", head[0:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("bat: unsupported format version %d", v)
	}
	n := binary.LittleEndian.Uint64(head[8:16])
	if n > maxReadCardinality {
		return nil, fmt.Errorf("bat: implausible cardinality %d", n)
	}
	p := NewPairs(int(n))
	var buf [PairSize]byte
	for i := range p.BUNs {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("bat: read BUN %d of %d: %w", i, n, err)
		}
		p.BUNs[i] = Pair{
			Head: Oid(binary.LittleEndian.Uint32(buf[0:4])),
			Tail: binary.LittleEndian.Uint32(buf[4:8]),
		}
	}
	return p, nil
}

// SavePairs writes the BAT to a file (atomically via a temp file in
// the same directory).
func SavePairs(path string, p *Pairs) error {
	tmp, err := os.CreateTemp(dirOf(path), ".bat-*")
	if err != nil {
		return fmt.Errorf("bat: save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WritePairs(tmp, p); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("bat: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("bat: save: %w", err)
	}
	return nil
}

// LoadPairs reads a BAT from a file.
func LoadPairs(path string) (*Pairs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bat: load: %w", err)
	}
	defer f.Close()
	return ReadPairs(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
