package bat

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestEncodeOneByte(t *testing.T) {
	vals := []string{"MAIL", "AIR", "SHIP", "AIR", "MAIL", "TRUCK", "AIR"}
	enc, err := Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Codes.Type() != TI8 {
		t.Errorf("codes type = %v, want i8", enc.Codes.Type())
	}
	if enc.Codes.Width() != 1 {
		t.Errorf("codes width = %d, want 1 byte (Figure 4)", enc.Codes.Width())
	}
	got := enc.DecodeAll()
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("roundtrip[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
	// Sorted dictionary: code order equals value order.
	for i := 1; i < len(enc.Dict); i++ {
		if enc.Dict[i-1] >= enc.Dict[i] {
			t.Error("dictionary not strictly sorted")
		}
	}
}

func TestEncodeTwoByte(t *testing.T) {
	vals := make([]string, 1000)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%04d", i%500)
	}
	enc, err := Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Codes.Type() != TI16 {
		t.Errorf("codes type = %v, want i16 for 500 distinct values", enc.Codes.Type())
	}
	got := enc.DecodeAll()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("roundtrip[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
}

func TestEncodeSignExtension(t *testing.T) {
	// 200 distinct values: codes 128..199 are negative int8s; decode
	// must treat them unsigned.
	vals := make([]string, 200)
	for i := range vals {
		vals[i] = fmt.Sprintf("x%03d", i)
	}
	enc, err := Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got := enc.Decode(enc.Codes.Int(i)); got != vals[i] {
			t.Fatalf("Decode(code[%d]) = %q, want %q", i, got, vals[i])
		}
	}
}

func TestEncodeCardinalityLimit(t *testing.T) {
	vals := make([]string, MaxEncodableCardinality+1)
	for i := range vals {
		vals[i] = fmt.Sprintf("k%06d", i)
	}
	if _, err := Encode(vals); err == nil {
		t.Error("over-limit cardinality accepted")
	}
}

func TestEncodingCodeLookup(t *testing.T) {
	enc, err := Encode([]string{"AIR", "MAIL", "SHIP"})
	if err != nil {
		t.Fatal(err)
	}
	code, ok := enc.Code("MAIL")
	if !ok {
		t.Fatal("MAIL not found")
	}
	if enc.Decode(code) != "MAIL" {
		t.Errorf("Decode(Code(MAIL)) = %q", enc.Decode(code))
	}
	if _, ok := enc.Code("WARP"); ok {
		t.Error("out-of-domain value found")
	}
}

// Property: encode/decode round-trips arbitrary small-domain columns.
func TestEncodeRoundtripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]string, len(raw))
		for i, x := range raw {
			vals[i] = fmt.Sprintf("s%d", x%50)
		}
		enc, err := Encode(vals)
		if err != nil {
			return false
		}
		got := enc.DecodeAll()
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
