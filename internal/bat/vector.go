package bat

import (
	"fmt"
	"math"

	"monetlite/internal/memsim"
)

// Type enumerates the physical column types of the storage layer.
type Type uint8

// Physical column types. TVoid is the virtual-OID column of §3.1:
// dense ascending OIDs computed on the fly, occupying no storage.
const (
	TVoid Type = iota
	TI8
	TI16
	TI32
	TI64
	TF64
	TOid
	TStr
)

func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TI8:
		return "i8"
	case TI16:
		return "i16"
	case TI32:
		return "i32"
	case TI64:
		return "i64"
	case TF64:
		return "f64"
	case TOid:
		return "oid"
	case TStr:
		return "str"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Width returns the stored bytes per value of the type (0 for void).
func (t Type) Width() int {
	switch t {
	case TVoid:
		return 0
	case TI8:
		return 1
	case TI16:
		return 2
	case TI32, TOid:
		return 4
	case TI64, TF64:
		return 8
	case TStr:
		return 16 // pointer + length; var-sized heap not counted
	}
	return 0
}

// Vector is one column of a BAT. Implementations are dense arrays of a
// single physical type; Int is the universal accessor used by
// type-agnostic operators (dictionary codes and OIDs widen losslessly).
type Vector interface {
	Len() int
	Width() int // stored bytes per value (0 for void)
	Type() Type
	Int(i int) int64            // value at position i, widened
	Addr(i int) uint64          // simulated address of value i (0 if unbound or void)
	Bind(s *memsim.Sim)         // allocate simulated address space
	Touch(s *memsim.Sim, i int) // mirror a read of value i into the simulator
}

// VoidVec is a virtual-OID column: value(i) = Seq + i, no storage.
// Positional lookup on a void column eliminates join cost (§3.1).
type VoidVec struct {
	N   int
	Seq Oid // seqbase: first OID
}

// NewVoid returns a void column of n OIDs starting at seq.
func NewVoid(n int, seq Oid) *VoidVec { return &VoidVec{N: n, Seq: seq} }

func (v *VoidVec) Len() int               { return v.N }
func (v *VoidVec) Width() int             { return 0 }
func (v *VoidVec) Type() Type             { return TVoid }
func (v *VoidVec) Int(i int) int64        { return int64(v.Seq) + int64(i) }
func (v *VoidVec) Addr(int) uint64        { return 0 }
func (v *VoidVec) Bind(*memsim.Sim)       {}
func (v *VoidVec) Touch(*memsim.Sim, int) {}

// Position returns the array position holding OID o, and whether the
// OID falls inside the column's dense range. This is the positional
// lookup that replaces hash-lookup for void join columns.
func (v *VoidVec) Position(o Oid) (int, bool) {
	i := int(int64(o) - int64(v.Seq))
	return i, i >= 0 && i < v.N
}

// denseVec carries the simulated-address plumbing shared by all stored
// vectors.
type denseVec struct {
	base  uint64
	width int
}

func (d *denseVec) bind(s *memsim.Sim, n int) {
	if s == nil || d.base != 0 {
		return
	}
	d.base = s.Alloc(n * d.width)
}

func (d *denseVec) addr(i int) uint64 {
	if d.base == 0 {
		return 0
	}
	return d.base + uint64(i)*uint64(d.width)
}

func (d *denseVec) touch(s *memsim.Sim, i int) {
	if s != nil && d.base != 0 {
		s.Read(d.addr(i), d.width)
	}
}

// I8Vec is a stored column of 1-byte integers (byte encodings).
type I8Vec struct {
	denseVec
	V []int8
}

// NewI8 wraps a 1-byte column.
func NewI8(v []int8) *I8Vec { return &I8Vec{denseVec{width: 1}, v} }

func (c *I8Vec) Len() int                   { return len(c.V) }
func (c *I8Vec) Width() int                 { return 1 }
func (c *I8Vec) Type() Type                 { return TI8 }
func (c *I8Vec) Int(i int) int64            { return int64(c.V[i]) }
func (c *I8Vec) Addr(i int) uint64          { return c.addr(i) }
func (c *I8Vec) Bind(s *memsim.Sim)         { c.bind(s, len(c.V)) }
func (c *I8Vec) Touch(s *memsim.Sim, i int) { c.touch(s, i) }

// I16Vec is a stored column of 2-byte integers.
type I16Vec struct {
	denseVec
	V []int16
}

// NewI16 wraps a 2-byte column.
func NewI16(v []int16) *I16Vec { return &I16Vec{denseVec{width: 2}, v} }

func (c *I16Vec) Len() int                   { return len(c.V) }
func (c *I16Vec) Width() int                 { return 2 }
func (c *I16Vec) Type() Type                 { return TI16 }
func (c *I16Vec) Int(i int) int64            { return int64(c.V[i]) }
func (c *I16Vec) Addr(i int) uint64          { return c.addr(i) }
func (c *I16Vec) Bind(s *memsim.Sim)         { c.bind(s, len(c.V)) }
func (c *I16Vec) Touch(s *memsim.Sim, i int) { c.touch(s, i) }

// I32Vec is a stored column of 4-byte integers.
type I32Vec struct {
	denseVec
	V []int32
}

// NewI32 wraps a 4-byte column.
func NewI32(v []int32) *I32Vec { return &I32Vec{denseVec{width: 4}, v} }

func (c *I32Vec) Len() int                   { return len(c.V) }
func (c *I32Vec) Width() int                 { return 4 }
func (c *I32Vec) Type() Type                 { return TI32 }
func (c *I32Vec) Int(i int) int64            { return int64(c.V[i]) }
func (c *I32Vec) Addr(i int) uint64          { return c.addr(i) }
func (c *I32Vec) Bind(s *memsim.Sim)         { c.bind(s, len(c.V)) }
func (c *I32Vec) Touch(s *memsim.Sim, i int) { c.touch(s, i) }

// I64Vec is a stored column of 8-byte integers.
type I64Vec struct {
	denseVec
	V []int64
}

// NewI64 wraps an 8-byte column.
func NewI64(v []int64) *I64Vec { return &I64Vec{denseVec{width: 8}, v} }

func (c *I64Vec) Len() int                   { return len(c.V) }
func (c *I64Vec) Width() int                 { return 8 }
func (c *I64Vec) Type() Type                 { return TI64 }
func (c *I64Vec) Int(i int) int64            { return c.V[i] }
func (c *I64Vec) Addr(i int) uint64          { return c.addr(i) }
func (c *I64Vec) Bind(s *memsim.Sim)         { c.bind(s, len(c.V)) }
func (c *I64Vec) Touch(s *memsim.Sim, i int) { c.touch(s, i) }

// F64Vec is a stored column of 8-byte floats.
type F64Vec struct {
	denseVec
	V []float64
}

// NewF64 wraps a float column.
func NewF64(v []float64) *F64Vec { return &F64Vec{denseVec{width: 8}, v} }

func (c *F64Vec) Len() int   { return len(c.V) }
func (c *F64Vec) Width() int { return 8 }
func (c *F64Vec) Type() Type { return TF64 }

// Int returns the raw IEEE-754 bits so type-agnostic operators can
// still hash/compare; use Float for the numeric value.
func (c *F64Vec) Int(i int) int64            { return int64(math.Float64bits(c.V[i])) }
func (c *F64Vec) Float(i int) float64        { return c.V[i] }
func (c *F64Vec) Addr(i int) uint64          { return c.addr(i) }
func (c *F64Vec) Bind(s *memsim.Sim)         { c.bind(s, len(c.V)) }
func (c *F64Vec) Touch(s *memsim.Sim, i int) { c.touch(s, i) }

// OidVec is a stored column of materialized OIDs (used when a head
// column is not dense, e.g. after selections).
type OidVec struct {
	denseVec
	V []Oid
}

// NewOids wraps an OID column.
func NewOids(v []Oid) *OidVec { return &OidVec{denseVec{width: 4}, v} }

func (c *OidVec) Len() int                   { return len(c.V) }
func (c *OidVec) Width() int                 { return 4 }
func (c *OidVec) Type() Type                 { return TOid }
func (c *OidVec) Int(i int) int64            { return int64(c.V[i]) }
func (c *OidVec) Addr(i int) uint64          { return c.addr(i) }
func (c *OidVec) Bind(s *memsim.Sim)         { c.bind(s, len(c.V)) }
func (c *OidVec) Touch(s *memsim.Sim, i int) { c.touch(s, i) }

// StrVec is a stored column of strings. It exists for the logical
// appearance of Figure 4; low-cardinality string columns should be
// dictionary-encoded with Encode, which replaces them by an I8/I16
// code column plus a small decoding BAT.
type StrVec struct {
	denseVec
	V []string
}

// NewStrs wraps a string column.
func NewStrs(v []string) *StrVec { return &StrVec{denseVec{width: 16}, v} }

func (c *StrVec) Len() int   { return len(c.V) }
func (c *StrVec) Width() int { return 16 }
func (c *StrVec) Type() Type { return TStr }

// Int returns the position; string payloads have no integer widening.
func (c *StrVec) Int(i int) int64            { return int64(i) }
func (c *StrVec) Str(i int) string           { return c.V[i] }
func (c *StrVec) Addr(i int) uint64          { return c.addr(i) }
func (c *StrVec) Bind(s *memsim.Sim)         { c.bind(s, len(c.V)) }
func (c *StrVec) Touch(s *memsim.Sim, i int) { c.touch(s, i) }
