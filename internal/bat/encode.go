package bat

import (
	"fmt"
	"sort"
)

// Encoding is the result of byte-encoding a low-cardinality column
// (§3.1): a fixed-size 1- or 2-byte code column plus the decoding BAT
// mapping codes back to values. Predicates on the original values are
// re-mapped to predicates on codes (e.g. a selection on the string
// "MAIL" becomes a selection on one byte), so no per-tuple decoding
// effort is spent during scans.
type Encoding struct {
	Codes Vector   // I8Vec or I16Vec of dictionary codes
	Dict  []string // code → value, sorted, so code order = value order
}

// MaxEncodableCardinality is the largest domain a 2-byte encoding can
// hold. Columns above it are left unencoded.
const MaxEncodableCardinality = 1 << 16

// Encode dictionary-encodes a string column into the smallest fixed
// integer width that fits its domain cardinality: 1 byte up to 256
// distinct values, 2 bytes up to 65536. It returns an error beyond
// that, where the paper's fixed-size scheme stops paying off.
//
// The dictionary is sorted, so range predicates on values translate to
// range predicates on codes.
func Encode(values []string) (*Encoding, error) {
	set := make(map[string]struct{}, 64)
	for _, v := range values {
		set[v] = struct{}{}
	}
	if len(set) > MaxEncodableCardinality {
		return nil, fmt.Errorf("bat: domain cardinality %d exceeds 2-byte encoding", len(set))
	}
	dict := make([]string, 0, len(set))
	for v := range set {
		dict = append(dict, v)
	}
	sort.Strings(dict)
	code := make(map[string]int, len(dict))
	for i, v := range dict {
		code[v] = i
	}
	enc := &Encoding{Dict: dict}
	if len(dict) <= 1<<8 {
		codes := make([]int8, len(values))
		for i, v := range values {
			codes[i] = int8(code[v])
		}
		enc.Codes = NewI8(codes)
	} else {
		codes := make([]int16, len(values))
		for i, v := range values {
			codes[i] = int16(code[v])
		}
		enc.Codes = NewI16(codes)
	}
	return enc, nil
}

// Code returns the dictionary code for value, or ok=false when the
// value is not in the domain (a selection on it is empty).
func (e *Encoding) Code(value string) (int64, bool) {
	i := sort.SearchStrings(e.Dict, value)
	if i < len(e.Dict) && e.Dict[i] == value {
		return int64(i), true
	}
	return 0, false
}

// Decode returns the value for a code. Codes stored in the 1-/2-byte
// columns widen sign-extended through Vector.Int; Decode interprets
// them unsigned, matching Encode's assignment.
func (e *Encoding) Decode(code int64) string {
	if code < 0 {
		if len(e.Dict) > 1<<8 {
			code += 1 << 16
		} else {
			code += 1 << 8
		}
	}
	return e.Dict[code]
}

// DecodeAll materializes the original string column (used only by
// result presentation, never inside scans).
func (e *Encoding) DecodeAll() []string {
	out := make([]string, e.Codes.Len())
	for i := range out {
		out[i] = e.Decode(e.Codes.Int(i))
	}
	return out
}
