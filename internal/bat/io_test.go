package bat

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestPairsRoundtripBuffer(t *testing.T) {
	p := NewPairs(1000)
	for i := range p.BUNs {
		p.BUNs[i] = Pair{Head: Oid(i), Tail: uint32(i * 7)}
	}
	var buf bytes.Buffer
	if err := WritePairs(&buf, p); err != nil {
		t.Fatal(err)
	}
	// Header 16 bytes + 8 per BUN.
	if buf.Len() != 16+1000*PairSize {
		t.Errorf("encoded size %d", buf.Len())
	}
	got, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != p.Len() {
		t.Fatalf("len %d", got.Len())
	}
	for i := range p.BUNs {
		if got.BUNs[i] != p.BUNs[i] {
			t.Fatalf("BUN %d differs", i)
		}
	}
}

func TestPairsRoundtripFile(t *testing.T) {
	p := NewPairs(100)
	for i := range p.BUNs {
		p.BUNs[i] = Pair{Head: Oid(i), Tail: uint32(1 << (i % 30))}
	}
	path := filepath.Join(t.TempDir(), "test.bat")
	if err := SavePairs(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPairs(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.BUNs {
		if got.BUNs[i] != p.BUNs[i] {
			t.Fatalf("BUN %d differs after file roundtrip", i)
		}
	}
}

func TestReadPairsRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"short header": {'B', 'A', 'T'},
		"bad magic":    append([]byte("NOPE"), make([]byte, 12)...),
		"bad version":  append([]byte("BATP"), 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0),
		"truncated": func() []byte {
			var buf bytes.Buffer
			p := NewPairs(10)
			if err := WritePairs(&buf, p); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()-4]
		}(),
	}
	for name, data := range cases {
		if _, err := ReadPairs(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadPairsImplausibleCardinality(t *testing.T) {
	hdr := append([]byte("BATP"), 1, 0, 0, 0)
	hdr = append(hdr, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadPairs(bytes.NewReader(hdr)); err == nil {
		t.Error("huge cardinality accepted")
	}
}

func TestWritePairsNilStorage(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePairs(&buf, &Pairs{}); err == nil {
		t.Error("nil storage accepted")
	}
}

func TestSavePairsBadPath(t *testing.T) {
	if err := SavePairs("/nonexistent-dir-xyz/a.bat", NewPairs(1)); err == nil {
		t.Error("bad path accepted")
	}
}

func TestEmptyBATRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePairs(&buf, NewPairs(0)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("len %d", got.Len())
	}
}

// Property: serialization round-trips arbitrary BATs.
func TestIORoundtripProperty(t *testing.T) {
	f := func(heads, tails []uint32) bool {
		n := len(heads)
		if len(tails) < n {
			n = len(tails)
		}
		p := NewPairs(n)
		for i := 0; i < n; i++ {
			p.BUNs[i] = Pair{Head: Oid(heads[i]), Tail: tails[i]}
		}
		var buf bytes.Buffer
		if err := WritePairs(&buf, p); err != nil {
			return false
		}
		got, err := ReadPairs(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.BUNs[i] != p.BUNs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
