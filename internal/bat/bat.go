// Package bat implements Monet's vertically decomposed storage model
// (§3.1 of the paper): Binary Association Tables (BATs) holding
// fixed-size two-field [OID,value] records (BUNs), virtual-OID (void)
// columns computed positionally instead of stored, and 1-/2-byte
// dictionary encodings for low-cardinality columns.
package bat

import (
	"fmt"

	"monetlite/internal/memsim"
)

// Oid is a Monet object identifier: a 4-byte surrogate joining the
// decomposed columns of one relational tuple.
type Oid uint32

// Pair is one BUN of the experimental BATs of §3.4.1: two 4-byte
// fields, 8 bytes wide in memory exactly as in the paper.
type Pair struct {
	Head Oid    // object identifier
	Tail uint32 // integer value (the join/cluster key)
}

// PairSize is the in-memory width of a Pair in bytes.
const PairSize = 8

// Pairs is a BAT of fixed 8-byte BUNs, optionally bound to a simulated
// address so instrumented operators can mirror their accesses into a
// memsim.Sim.
type Pairs struct {
	BUNs []Pair
	base uint64
}

// NewPairs returns an unbound BAT with n zeroed BUNs.
func NewPairs(n int) *Pairs { return &Pairs{BUNs: make([]Pair, n)} }

// FromPairs wraps an existing BUN slice as an unbound BAT.
func FromPairs(buns []Pair) *Pairs { return &Pairs{BUNs: buns} }

// Len returns the cardinality of the BAT.
func (p *Pairs) Len() int { return len(p.BUNs) }

// Bytes returns the total BUN storage in bytes (||Re|| in the paper).
func (p *Pairs) Bytes() int { return len(p.BUNs) * PairSize }

// Bind assigns the BAT a simulated base address from sim's allocator.
// Binding an already-bound BAT is a no-op, so temporaries can be bound
// defensively.
func (p *Pairs) Bind(sim *memsim.Sim) {
	if sim == nil || p.base != 0 {
		return
	}
	p.base = sim.Alloc(p.Bytes())
}

// Bound reports whether the BAT has a simulated address.
func (p *Pairs) Bound() bool { return p.base != 0 }

// Unbind detaches the BAT from simulated address space so it can be
// re-bound to a fresh Sim (experiment harnesses reuse one workload BAT
// across many simulator instances).
func (p *Pairs) Unbind() { p.base = 0 }

// Addr returns the simulated address of BUN i. The BAT must be bound.
func (p *Pairs) Addr(i int) uint64 { return p.base + uint64(i)*PairSize }

// Base returns the simulated base address (0 when unbound).
func (p *Pairs) Base() uint64 { return p.base }

// Slice returns a view of BUNs [lo, hi) sharing storage and simulated
// addresses with p: the clusters of a radix-clustered BAT are such
// views, contiguous in the parent (§3.3.1: cluster boundaries need no
// extra structure).
func (p *Pairs) Slice(lo, hi int) *Pairs {
	v := &Pairs{BUNs: p.BUNs[lo:hi]}
	if p.base != 0 {
		v.base = p.base + uint64(lo)*PairSize
	}
	return v
}

// Clone returns an unbound deep copy of the BAT.
func (p *Pairs) Clone() *Pairs {
	c := make([]Pair, len(p.BUNs))
	copy(c, p.BUNs)
	return &Pairs{BUNs: c}
}

// Validate checks basic BAT invariants (non-nil storage).
func (p *Pairs) Validate() error {
	if p.BUNs == nil {
		return fmt.Errorf("bat: nil BUN storage")
	}
	return nil
}

// BAT is a generic binary table of two typed columns, the logical
// appearance of Figure 4. Head is usually a void (virtual-OID) column.
type BAT struct {
	Name string
	Head Vector
	Tail Vector
}

// NewBAT builds a BAT after checking that both columns have equal
// cardinality.
func NewBAT(name string, head, tail Vector) (*BAT, error) {
	if head.Len() != tail.Len() {
		return nil, fmt.Errorf("bat: %s: head length %d != tail length %d", name, head.Len(), tail.Len())
	}
	return &BAT{Name: name, Head: head, Tail: tail}, nil
}

// Len returns the cardinality of the BAT.
func (b *BAT) Len() int { return b.Head.Len() }

// BUNWidth returns the stored bytes per BUN: the sum of both column
// widths. A void head costs zero bytes, so a byte-encoded column over a
// void head stores 1 byte per BUN as in Figure 4.
func (b *BAT) BUNWidth() int { return b.Head.Width() + b.Tail.Width() }

// Bind binds both columns into the simulator's address space.
func (b *BAT) Bind(sim *memsim.Sim) {
	b.Head.Bind(sim)
	b.Tail.Bind(sim)
}
