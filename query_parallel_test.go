package monetlite

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentQueriesShareTable: a decomposed table is immutable, so
// any number of queries — themselves running morsel-parallel — may
// execute against it concurrently, as a serving layer would. Run under
// -race in CI, this is the read-path thread-safety proof: every worker
// sees identical results, byte for byte, including the CSS-tree index
// built lazily on first use by whichever query gets there first.
func TestConcurrentQueriesShareTable(t *testing.T) {
	items, err := ItemTable(1<<14, 42)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartTable(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	revenue := Mul(Col("price"), Sub(Const(1), Col("discnt")))
	builds := []func() *QueryBuilder{
		func() *QueryBuilder {
			return Query(items).WhereRange("date1", 8500, 9499).GroupBy("shipmode", revenue)
		},
		func() *QueryBuilder {
			// Narrow range: exercises the shared, lazily built CSS-tree.
			return Query(items).WhereRange("order", 2000, 2063).Select("order", "qty", "shipmode")
		},
		func() *QueryBuilder {
			return Query(items).
				WhereRange("date1", 8500, 9499).
				WhereString("shipmode", "MAIL").
				JoinTable(parts, "part", "id").
				GroupBy("category", revenue).
				OrderBy("sum", true)
		},
	}
	wants := make([]*QueryResult, len(builds))
	for i, build := range builds {
		res, err := build().Parallel(1).Run()
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = res
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(builds)
				// Alternate serial and parallel plans across workers.
				res, err := builds[i]().Parallel(1 + g%3).Run()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rel, wants[i].Rel) {
					t.Errorf("goroutine %d query %d: result differs from reference", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
