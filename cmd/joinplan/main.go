// Command joinplan is the §3.4.4 strategy planner as a tool: for a
// given cardinality and machine it prints, per strategy, the radix
// bits B and passes P it prescribes and the cost-model prediction
// (CPU work, expected L1/L2/TLB misses, total milliseconds), then the
// model-optimal choice — what a Monet query optimizer armed with the
// paper's cost models would pick.
//
// With -exec it also runs the model-optimal plan natively on the
// serial and the parallel execution engine and reports both wall
// clocks — prediction and reality side by side.
//
// Usage:
//
//	joinplan [-c 8000000] [-machine origin2k] [-exec] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"monetlite"
)

func main() {
	card := flag.Int("c", 8_000_000, "join cardinality (tuples per operand)")
	machine := flag.String("machine", "origin2k", "machine profile")
	execute := flag.Bool("exec", false, "execute the optimal plan natively (serial + parallel)")
	workers := flag.Int("workers", 0, "parallel-engine workers for -exec (0 = GOMAXPROCS)")
	flag.Parse()

	m, err := monetlite.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *card <= 0 {
		fmt.Fprintln(os.Stderr, "joinplan: cardinality must be positive")
		os.Exit(2)
	}

	fmt.Printf("join of two %d-tuple relations on %s (L1 %dKB/%dB lines, L2 %dMB/%dB lines, TLB %d×%dKB)\n\n",
		*card, m.Name,
		m.L1.Size>>10, m.L1.LineSize, m.L2.Size>>20, m.L2.LineSize,
		m.TLB.Entries, m.TLB.PageSize>>10)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tbits\tpasses\tpredicted ms\tCPU ms\tL1 misses\tL2 misses\tTLB misses")
	best := monetlite.PlanAuto(*card, m)
	for _, s := range monetlite.Strategies() {
		plan := monetlite.NewPlan(s, *card, m)
		b := predict(plan, *card, m)
		marker := ""
		if plan.Strategy == best.Strategy && plan.Bits == best.Bits {
			marker = "  <- auto pick"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.1f\t%.2e\t%.2e\t%.2e%s\n",
			plan.Strategy, plan.Bits, plan.Passes,
			b.Millis(m), b.CPUNanos/1e6, b.L1Misses, b.L2Misses, b.TLBMisses, marker)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "joinplan:", err)
		os.Exit(1)
	}
	fmt.Printf("\nplan: %s\n", best)

	if *execute {
		nw := *workers
		if nw <= 0 {
			nw = runtime.GOMAXPROCS(0)
		}
		l, r := monetlite.JoinInputs(*card, 7)
		t0 := time.Now()
		serial, err := monetlite.ExecuteOpts(nil, l, r, best, nil, monetlite.Serial())
		if err != nil {
			fmt.Fprintln(os.Stderr, "joinplan:", err)
			os.Exit(1)
		}
		serialT := time.Since(t0)
		t0 = time.Now()
		parallel, err := monetlite.ExecuteOpts(nil, l, r, best, nil, monetlite.Options{Parallelism: nw})
		if err != nil {
			fmt.Fprintln(os.Stderr, "joinplan:", err)
			os.Exit(1)
		}
		parallelT := time.Since(t0)
		if parallel.Len() != serial.Len() {
			fmt.Fprintf(os.Stderr, "joinplan: parallel result size %d != serial %d\n", parallel.Len(), serial.Len())
			os.Exit(1)
		}
		fmt.Printf("native: serial %v, parallel %v (%d workers, %.2fx)\n",
			serialT.Round(time.Millisecond), parallelT.Round(time.Millisecond), nw,
			float64(serialT)/float64(parallelT))
	}
}

func predict(p monetlite.Plan, c int, m monetlite.Machine) monetlite.Breakdown {
	model := monetlite.NewCostModel(m)
	switch p.Strategy {
	case monetlite.SortMerge:
		return model.SortMergeTotal(c)
	case monetlite.SimpleHash:
		return model.SimpleHashTotal(c)
	case monetlite.Radix8, monetlite.RadixMin:
		return model.RadixTotal(p.Bits, c)
	default:
		return model.PhashTotal(p.Bits, c)
	}
}
