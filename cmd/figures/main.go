// Command figures regenerates the paper's evaluation figures as text
// tables (and optional TSV series): the Figure-3 stride scan, the
// Figure-9 radix-cluster sweep, the isolated join sweeps of Figures 10
// and 11, the overall comparisons of Figures 12 and 13, and the §3.2
// selection/aggregation ablations.
//
// Usage:
//
//	figures [-fig all|1|3|9|10|11|12|13|sel|agg] [-full] [-huge]
//	        [-machine origin2k] [-tsv DIR] [-budget N] [-card N]
//
// The default quick scale caps cardinalities near one million tuples;
// -full selects the paper-scale 8M sweeps and -huge adds the 64M
// points (several GB of memory, long runtime — the paper capped such
// runs at 15 minutes; this harness uses a simulated-access budget).
package main

import (
	"flag"
	"fmt"
	"os"

	"monetlite"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 1, 3, 9, 10, 11, 12, 13, sel, agg, vm, skew, prefetch, modern")
	full := flag.Bool("full", false, "paper-scale cardinalities (8M-tuple sweeps)")
	huge := flag.Bool("huge", false, "additionally run the 64M-tuple points")
	machine := flag.String("machine", "origin2k", "machine profile: origin2k, sun450, ultra, sunLX, modern")
	tsv := flag.String("tsv", "", "directory for TSV series (optional)")
	budget := flag.Uint64("budget", 0, "simulated-access budget per point (0 = default 2e9)")
	card := flag.Int("card", 0, "override every cardinality sweep with one cardinality")
	seed := flag.Uint64("seed", 1999, "workload seed")
	flag.Parse()

	m, err := monetlite.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := monetlite.FigureConfig{
		Machine:      m,
		Out:          os.Stdout,
		Full:         *full,
		Huge:         *huge,
		TSVDir:       *tsv,
		Budget:       *budget,
		CardOverride: *card,
		Seed:         *seed,
	}

	runners := map[string]func(monetlite.FigureConfig) error{
		"all":      monetlite.RunFigures,
		"1":        monetlite.Fig1,
		"3":        monetlite.Fig3,
		"9":        monetlite.Fig9,
		"10":       monetlite.Fig10,
		"11":       monetlite.Fig11,
		"12":       monetlite.Fig12,
		"13":       monetlite.Fig13,
		"sel":      monetlite.SelAblation,
		"agg":      monetlite.AggAblation,
		"vm":       monetlite.VMAblation,
		"bits":     monetlite.BitSplitAblation,
		"skew":     monetlite.SkewAblation,
		"prefetch": monetlite.PrefetchAblation,
		"modern":   monetlite.ModernAblation,
	}
	run, ok := runners[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown -fig %q\n", *fig)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
