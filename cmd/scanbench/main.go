// Command scanbench runs the paper's §2 "reality check" interactively:
// a simulated in-memory scan reading one byte at a varying stride,
// reporting elapsed time, miss counts, the cycle split between CPU
// work and memory stalls, and the T(s) model prediction.
//
// Usage:
//
//	scanbench [-machine origin2k] [-iters 200000] [-strides 1,8,32,128]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"monetlite"
)

func main() {
	machine := flag.String("machine", "origin2k", "machine profile (origin2k, sun450, ultra, sunLX, modern)")
	iters := flag.Int("iters", monetlite.ScanIterations, "iterations (the paper uses 200000)")
	strides := flag.String("strides", "1,2,4,8,16,32,64,128,256", "comma-separated strides in bytes")
	flag.Parse()

	m, err := monetlite.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var ss []int
	for _, f := range strings.Split(*strides, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "scanbench: bad stride %q\n", f)
			os.Exit(2)
		}
		ss = append(ss, v)
	}

	model := monetlite.NewCostModel(m)
	fmt.Printf("%s: %d-iteration scan, one byte per iteration (cold caches)\n\n", m.Name, *iters)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stride\tms\tmodel ms\tL1 miss/iter\tL2 miss/iter\tcycles cpu\tcycles stall\tstall %")
	for _, s := range ss {
		r, err := monetlite.StrideScan(m, s, *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scanbench:", err)
			os.Exit(1)
		}
		work := r.Stats.CPUNanos / float64(*iters) * m.CyclesPerNano()
		stall := r.Stats.StallNanos / float64(*iters) * m.CyclesPerNano()
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.3f\t%.3f\t%.1f\t%.1f\t%.0f%%\n",
			s, r.Millis(), model.ScanNanos(*iters, s)/1e6,
			float64(r.Stats.L1Misses)/float64(*iters),
			float64(r.Stats.L2Misses)/float64(*iters),
			work, stall, 100*stall/(work+stall))
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "scanbench:", err)
		os.Exit(1)
	}
}
