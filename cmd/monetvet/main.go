// monetvet is the engine's static-analysis suite: six analyzers that
// mechanically enforce the invariants the paper reproduction depends
// on — zero-alloc kernels (hotalloc), deterministic result and merge
// order (detorder), strictly-serial fully-mirrored instrumented runs
// (simpurity), non-nil selection vectors (nonnilsel), no reflection
// in the hot packages (noreflect), and nil-guarded profiling hooks in
// kernel loops (proffree).
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/monetvet ./...   # unitchecker protocol, used by CI
//	monetvet ./...                          # standalone, for local iteration
//
// A finding is suppressed with a justified comment on the offending
// line (or the line above):
//
//	//monet:allow <analyzer>[,<analyzer>] <justification>
package main

import (
	"monetlite/internal/analysis/detorder"
	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/hotalloc"
	"monetlite/internal/analysis/nonnilsel"
	"monetlite/internal/analysis/noreflect"
	"monetlite/internal/analysis/proffree"
	"monetlite/internal/analysis/simpurity"
)

func main() {
	framework.VetMain([]*framework.Analyzer{
		hotalloc.Analyzer,
		detorder.Analyzer,
		simpurity.Analyzer,
		nonnilsel.Analyzer,
		noreflect.Analyzer,
		proffree.Analyzer,
	})
}
