// monetvet is the engine's static-analysis suite: nine analyzers that
// mechanically enforce the invariants the paper reproduction depends
// on. Six are syntactic/type-based:
//
//   - hotalloc: no per-iteration allocation in hot-package loops
//   - detorder: deterministic result and merge order
//   - simpurity: strictly-serial fully-mirrored instrumented runs
//   - nonnilsel: non-nil selection vectors
//   - noreflect: no reflection in the hot packages
//   - proffree: nil-guarded profiling hooks in kernel loops
//
// Three are deep analyzers built on the framework's SSA-lite layer
// (CFG + dominators + taint, internal/analysis/framework/ssa):
//
//   - morselrace: writes to shared captured variables inside worker
//     closures must be indexed by a worker/morsel/partition id, go
//     through a per-worker arena, or be lock-dominated
//   - kernalloc: interprocedural allocation-freedom proofs for
//     //monet:kernel functions (escapes, boxing, maps, growing
//     appends, allocating callees)
//   - costcover: physical operators, the cost model and the profiler
//     stay in lockstep (opTraffic coverage, cost fields really set,
//     stable calibration labels)
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/monetvet ./...   # unitchecker protocol, used by CI
//	monetvet ./...                          # standalone, for local iteration
//
// The standalone form also supports machine-readable output and a
// committed findings baseline (CI fails only on NEW findings):
//
//	monetvet -json ./...
//	monetvet -baseline .monetvet-baseline.json ./...
//	monetvet -baseline .monetvet-baseline.json -write-baseline ./...
//
// A finding is suppressed with a justified comment on the offending
// line (or the line above):
//
//	//monet:allow <analyzer>[,<analyzer>] <justification>
package main

import (
	"monetlite/internal/analysis/costcover"
	"monetlite/internal/analysis/detorder"
	"monetlite/internal/analysis/framework"
	"monetlite/internal/analysis/hotalloc"
	"monetlite/internal/analysis/kernalloc"
	"monetlite/internal/analysis/morselrace"
	"monetlite/internal/analysis/nonnilsel"
	"monetlite/internal/analysis/noreflect"
	"monetlite/internal/analysis/proffree"
	"monetlite/internal/analysis/simpurity"
)

func main() {
	framework.VetMain([]*framework.Analyzer{
		hotalloc.Analyzer,
		detorder.Analyzer,
		simpurity.Analyzer,
		nonnilsel.Analyzer,
		noreflect.Analyzer,
		proffree.Analyzer,
		morselrace.Analyzer,
		kernalloc.Analyzer,
		costcover.Analyzer,
	})
}
