// Command mlquery runs a canned query set over the Figure-4 Item
// workload through the cost-model-driven BAT-algebra engine
// (internal/engine), printing each query's EXPLAIN — the physical
// operator tree with the model-chosen access paths, fused pipelines,
// join algorithm and radix bits, and per-operator predicted cost —
// next to its native wall-clock timing, and, with -sim, the simulated
// cost on the chosen machine profile so prediction and measurement sit
// side by side.
//
// Usage:
//
//	mlquery [-rows 1048576] [-parts 2000] [-machine origin2k] [-sim]
//	        [-par 0] [-pipeline on|off] [-verify] [-json] [-top 10]
//
// -par bounds the worker goroutines of the whole native operator tree
// (morsel-driven parallelism; 0 = GOMAXPROCS, 1 = serial).
// -pipeline=off forces the legacy MIL-style materializing execution —
// the A/B baseline for the fused cache-resident pipelines. -verify
// additionally runs every query serially AND with pipelines off,
// checking all results byte-identical — the operator-level smoke test
// CI runs on every push. -json writes one machine-readable report
// (per-query native ms, result rows, predicted ms, allocation stats —
// B/op, allocs/op — and, with -sim, the simulated ms and miss counts)
// to stdout instead of the human output, the format of the repo's
// BENCH_*.json perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"time"

	"monetlite"
)

// query is one canned query: a name, the SQL it stands for, and its
// builder.
type query struct {
	name  string
	sql   string
	build func() *monetlite.QueryBuilder
}

// queryReport is one query's entry in the -json output. The simulated
// fields are present only under -sim.
type queryReport struct {
	Name        string   `json:"name"`
	SQL         string   `json:"sql"`
	NativeMS    float64  `json:"native_ms"`
	ResultRows  int      `json:"result_rows"`
	PredictedMS float64  `json:"predicted_ms"`
	BytesPerOp  uint64   `json:"bytes_per_op"`
	AllocsPerOp uint64   `json:"allocs_per_op"`
	SimMS       *float64 `json:"simulated_ms,omitempty"`
	SimL1       *uint64  `json:"simulated_l1_misses,omitempty"`
	SimL2       *uint64  `json:"simulated_l2_misses,omitempty"`
	SimTLB      *uint64  `json:"simulated_tlb_misses,omitempty"`
}

// report is the top-level -json document.
type report struct {
	Rows     int           `json:"rows"`
	Parts    int           `json:"parts"`
	Machine  string        `json:"machine"`
	Workers  int           `json:"workers"`
	Pipeline bool          `json:"pipeline"`
	GoMaxP   int           `json:"gomaxprocs"`
	Queries  []queryReport `json:"queries"`
}

func main() {
	rows := flag.Int("rows", 1<<20, "Item table cardinality")
	nparts := flag.Int("parts", 2000, "Part dimension cardinality")
	machine := flag.String("machine", "origin2k", "machine profile for planning (and -sim)")
	simulate := flag.Bool("sim", false, "also run instrumented on the machine's simulator")
	var workers int
	flag.IntVar(&workers, "par", 0, "worker goroutines for every plan operator (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(&workers, "workers", 0, "alias for -par")
	pipeline := flag.String("pipeline", "on", "\"on\" = fused cache-resident pipelines, \"off\" = legacy materializing execution")
	verify := flag.Bool("verify", false, "cross-check each result byte-identical to a serial run and to -pipeline=off")
	jsonOut := flag.Bool("json", false, "emit a machine-readable per-query report (timings + B/op, allocs/op) to stdout")
	top := flag.Int("top", 10, "result rows to print per query")
	flag.Parse()

	m, err := monetlite.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *rows <= 0 || *nparts <= 0 {
		fmt.Fprintln(os.Stderr, "mlquery: -rows and -parts must be positive")
		os.Exit(2)
	}
	var pipeOn bool
	switch *pipeline {
	case "on":
		pipeOn = true
	case "off":
		pipeOn = false
	default:
		fmt.Fprintf(os.Stderr, "mlquery: -pipeline must be \"on\" or \"off\", got %q\n", *pipeline)
		os.Exit(2)
	}
	say := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}

	say("generating item(%d rows) and part(%d rows)...\n", *rows, *nparts)
	t0 := time.Now()
	items, err := monetlite.ItemTable(*rows, 42)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := monetlite.PartTable(*nparts, 7)
	if err != nil {
		log.Fatal(err)
	}
	say("done in %v; item decomposed to %d bytes/tuple (N-ary record: %d)\n\n",
		time.Since(t0).Round(time.Millisecond), items.BUNWidth(), items.Schema.RowWidth())

	revenue := monetlite.Mul(monetlite.Col("price"),
		monetlite.Sub(monetlite.Const(1), monetlite.Col("discnt")))
	// Q2's point range sits mid-domain whatever the cardinality
	// (order values are 1000 .. 1000+rows-1).
	orderLo := int64(1000 + *rows/2)

	queries := []query{
		{
			name: "Q1 revenue by shipmode",
			sql: "SELECT shipmode, COUNT(*), SUM(price*(1-discnt)) FROM item\n" +
				"WHERE date1 BETWEEN 8500 AND 9499 GROUP BY shipmode",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("date1", 8500, 9499).
					GroupBy("shipmode", revenue)
			},
		},
		{
			name: "Q2 point lookup via index",
			sql: fmt.Sprintf("SELECT order, qty, price, shipmode FROM item\n"+
				"WHERE order BETWEEN %d AND %d", orderLo, orderLo+19),
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("order", orderLo, orderLo+19).
					Select("order", "qty", "price", "shipmode")
			},
		},
		{
			name: "Q3 select-join-aggregate",
			sql: "SELECT p.category, COUNT(*), SUM(i.price*(1-i.discnt)) FROM item i, part p\n" +
				"WHERE i.date1 BETWEEN 8500 AND 9499 AND i.shipmode = 'MAIL' AND i.part = p.id\n" +
				"GROUP BY p.category ORDER BY SUM DESC",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("date1", 8500, 9499).
					WhereString("shipmode", "MAIL").
					JoinTable(parts, "part", "id").
					GroupBy("category", revenue).
					OrderBy("sum", true)
			},
		},
		{
			name: "Q4 full join, top categories by margin",
			sql: "SELECT p.category, COUNT(*), SUM(p.retail - i.price) FROM item i, part p\n" +
				"WHERE i.part = p.id GROUP BY p.category ORDER BY SUM DESC",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					JoinTable(parts, "part", "id").
					GroupBy("category", monetlite.Sub(monetlite.Col("retail"), monetlite.Col("price"))).
					OrderBy("sum", true)
			},
		},
		{
			name: "Q5 top-20 mail orders by date (limit probe)",
			sql: "SELECT order, date1, price FROM item WHERE shipmode = 'MAIL'\n" +
				"AND date1 BETWEEN 8500 AND 9499 LIMIT 20",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereString("shipmode", "MAIL").
					WhereRange("date1", 8500, 9499).
					Select("order", "date1", "price").
					Limit(20)
			},
		},
	}

	// One simulator for the whole session: column BATs bind to the
	// first sim they see and stay bound, so per-query costs are deltas
	// of the shared counters (caches stay warm across queries, like a
	// real session).
	var sim *monetlite.Sim
	if *simulate {
		sim, err = monetlite.NewSim(m)
		if err != nil {
			log.Fatal(err)
		}
	}

	rep := report{
		Rows: *rows, Parts: *nparts, Machine: m.Name,
		Workers: workers, Pipeline: pipeOn, GoMaxP: runtime.GOMAXPROCS(0),
	}

	for _, q := range queries {
		say("=== %s ===\n%s\n\n", q.name, q.sql)
		b := q.build().On(m).Parallel(workers).Pipeline(pipeOn)
		plan, err := b.Plan()
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Print(plan.Explain())
		}

		t0 := time.Now()
		res, err := plan.Run(nil)
		if err != nil {
			log.Fatal(err)
		}
		native := time.Since(t0)
		say("\nnative: %v, %d result rows\n", native.Round(10*time.Microsecond), res.N())

		if *verify {
			for _, alt := range []struct {
				name  string
				build func() (*monetlite.QueryResult, error)
			}{
				{"serial", func() (*monetlite.QueryResult, error) {
					return q.build().On(m).Parallel(1).Pipeline(pipeOn).Run()
				}},
				{"materializing", func() (*monetlite.QueryResult, error) {
					return q.build().On(m).Parallel(workers).Pipeline(false).Run()
				}},
			} {
				other, err := alt.build()
				if err != nil {
					log.Fatal(err)
				}
				if !reflect.DeepEqual(res.Rel, other.Rel) {
					fmt.Fprintf(os.Stderr, "mlquery: %s: result differs from %s run\n", q.name, alt.name)
					os.Exit(1)
				}
			}
			say("verify: result byte-identical to serial and to -pipeline=off runs\n")
		}

		var qr queryReport
		if sim != nil {
			before := sim.Stats()
			if _, err := plan.Run(sim); err != nil {
				log.Fatal(err)
			}
			st := sim.Stats().Sub(before)
			say("simulated on %s: %.1f ms (L1 %d, L2 %d, TLB %d misses) vs predicted %.1f ms\n",
				m.Name, st.ElapsedMillis(), st.L1Misses, st.L2Misses, st.TLBMisses,
				plan.Predicted().Millis(m))
			simMS := st.ElapsedMillis()
			l1, l2, tlb := st.L1Misses, st.L2Misses, st.TLBMisses
			qr.SimMS, qr.SimL1, qr.SimL2, qr.SimTLB = &simMS, &l1, &l2, &tlb
		}

		if *jsonOut {
			bpo, apo := measureAllocs(func() {
				if _, err := plan.Run(nil); err != nil {
					log.Fatal(err)
				}
			})
			qr.Name = q.name
			qr.SQL = q.sql
			qr.NativeMS = float64(native.Nanoseconds()) / 1e6
			qr.ResultRows = res.N()
			qr.PredictedMS = plan.Predicted().Millis(m)
			qr.BytesPerOp = bpo
			qr.AllocsPerOp = apo
			rep.Queries = append(rep.Queries, qr)
		} else {
			fmt.Printf("\n%s\n", res.Format(*top))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
}

// measureAllocs reports the heap bytes and allocation count of one run
// of f, averaged over a few runs (TotalAlloc/Mallocs are monotonic, so
// concurrent GC cannot skew the deltas).
func measureAllocs(f func()) (bytesPerOp, allocsPerOp uint64) {
	const runs = 3
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / runs,
		(after.Mallocs - before.Mallocs) / runs
}
