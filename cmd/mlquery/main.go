// Command mlquery runs a canned query set over the Figure-4 Item
// workload through the cost-model-driven BAT-algebra engine
// (internal/engine), printing each query's EXPLAIN — the physical
// operator tree with the model-chosen access paths, join algorithm and
// radix bits, and per-operator predicted cost — next to its native
// wall-clock timing, and, with -sim, the simulated cost on the chosen
// machine profile so prediction and measurement sit side by side.
//
// Usage:
//
//	mlquery [-rows 1048576] [-parts 2000] [-machine origin2k] [-sim] [-par 0] [-verify] [-top 10]
//
// -par bounds the worker goroutines of the whole native operator tree
// (morsel-driven parallelism; 0 = GOMAXPROCS, 1 = serial). -verify
// additionally runs every query serially and checks the parallel
// result is byte-identical — the operator-level smoke test CI runs on
// every push.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	"monetlite"
)

// query is one canned query: a name, the SQL it stands for, and its
// builder.
type query struct {
	name  string
	sql   string
	build func() *monetlite.QueryBuilder
}

func main() {
	rows := flag.Int("rows", 1<<20, "Item table cardinality")
	nparts := flag.Int("parts", 2000, "Part dimension cardinality")
	machine := flag.String("machine", "origin2k", "machine profile for planning (and -sim)")
	simulate := flag.Bool("sim", false, "also run instrumented on the machine's simulator")
	var workers int
	flag.IntVar(&workers, "par", 0, "worker goroutines for every plan operator (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(&workers, "workers", 0, "alias for -par")
	verify := flag.Bool("verify", false, "cross-check each parallel result byte-identical to a serial run")
	top := flag.Int("top", 10, "result rows to print per query")
	flag.Parse()

	m, err := monetlite.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *rows <= 0 || *nparts <= 0 {
		fmt.Fprintln(os.Stderr, "mlquery: -rows and -parts must be positive")
		os.Exit(2)
	}

	fmt.Printf("generating item(%d rows) and part(%d rows)...\n", *rows, *nparts)
	t0 := time.Now()
	items, err := monetlite.ItemTable(*rows, 42)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := monetlite.PartTable(*nparts, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v; item decomposed to %d bytes/tuple (N-ary record: %d)\n\n",
		time.Since(t0).Round(time.Millisecond), items.BUNWidth(), items.Schema.RowWidth())

	revenue := monetlite.Mul(monetlite.Col("price"),
		monetlite.Sub(monetlite.Const(1), monetlite.Col("discnt")))
	// Q2's point range sits mid-domain whatever the cardinality
	// (order values are 1000 .. 1000+rows-1).
	orderLo := int64(1000 + *rows/2)

	queries := []query{
		{
			name: "Q1 revenue by shipmode",
			sql: "SELECT shipmode, COUNT(*), SUM(price*(1-discnt)) FROM item\n" +
				"WHERE date1 BETWEEN 8500 AND 9499 GROUP BY shipmode",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("date1", 8500, 9499).
					GroupBy("shipmode", revenue)
			},
		},
		{
			name: "Q2 point lookup via index",
			sql: fmt.Sprintf("SELECT order, qty, price, shipmode FROM item\n"+
				"WHERE order BETWEEN %d AND %d", orderLo, orderLo+19),
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("order", orderLo, orderLo+19).
					Select("order", "qty", "price", "shipmode")
			},
		},
		{
			name: "Q3 select-join-aggregate",
			sql: "SELECT p.category, COUNT(*), SUM(i.price*(1-i.discnt)) FROM item i, part p\n" +
				"WHERE i.date1 BETWEEN 8500 AND 9499 AND i.shipmode = 'MAIL' AND i.part = p.id\n" +
				"GROUP BY p.category ORDER BY SUM DESC",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("date1", 8500, 9499).
					WhereString("shipmode", "MAIL").
					JoinTable(parts, "part", "id").
					GroupBy("category", revenue).
					OrderBy("sum", true)
			},
		},
		{
			name: "Q4 full join, top categories by margin",
			sql: "SELECT p.category, COUNT(*), SUM(p.retail - i.price) FROM item i, part p\n" +
				"WHERE i.part = p.id GROUP BY p.category ORDER BY SUM DESC",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					JoinTable(parts, "part", "id").
					GroupBy("category", monetlite.Sub(monetlite.Col("retail"), monetlite.Col("price"))).
					OrderBy("sum", true)
			},
		},
	}

	// One simulator for the whole session: column BATs bind to the
	// first sim they see and stay bound, so per-query costs are deltas
	// of the shared counters (caches stay warm across queries, like a
	// real session).
	var sim *monetlite.Sim
	if *simulate {
		sim, err = monetlite.NewSim(m)
		if err != nil {
			log.Fatal(err)
		}
	}

	for _, q := range queries {
		fmt.Printf("=== %s ===\n%s\n\n", q.name, q.sql)
		b := q.build().On(m).Parallel(workers)
		plan, err := b.Plan()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan.Explain())

		t0 := time.Now()
		res, err := plan.Run(nil)
		if err != nil {
			log.Fatal(err)
		}
		native := time.Since(t0)
		fmt.Printf("\nnative: %v, %d result rows\n", native.Round(10*time.Microsecond), res.N())

		if *verify {
			serialPlan, err := q.build().On(m).Parallel(1).Plan()
			if err != nil {
				log.Fatal(err)
			}
			serial, err := serialPlan.Run(nil)
			if err != nil {
				log.Fatal(err)
			}
			if !reflect.DeepEqual(res.Rel, serial.Rel) {
				fmt.Fprintf(os.Stderr, "mlquery: %s: parallel result differs from serial\n", q.name)
				os.Exit(1)
			}
			fmt.Println("verify: parallel result byte-identical to serial")
		}

		if sim != nil {
			before := sim.Stats()
			if _, err := plan.Run(sim); err != nil {
				log.Fatal(err)
			}
			st := sim.Stats().Sub(before)
			fmt.Printf("simulated on %s: %.1f ms (L1 %d, L2 %d, TLB %d misses) vs predicted %.1f ms\n",
				m.Name, st.ElapsedMillis(), st.L1Misses, st.L2Misses, st.TLBMisses,
				plan.Predicted().Millis(m))
		}
		fmt.Printf("\n%s\n", res.Format(*top))
	}
}
