// Command mlquery runs a canned query set over the Figure-4 Item
// workload through the cost-model-driven BAT-algebra engine
// (internal/engine), printing each query's EXPLAIN — the physical
// operator tree with the model-chosen access paths, fused pipelines,
// join algorithm and radix bits, and per-operator predicted cost —
// next to its native wall-clock timing, and, with -sim, the simulated
// cost on the chosen machine profile so prediction and measurement sit
// side by side.
//
// Usage:
//
//	mlquery [-rows 1048576] [-parts 2000] [-machine origin2k] [-sim]
//	        [-par 0] [-pipeline on|off] [-agg auto|hash|sort|radix]
//	        [-verify] [-json] [-analyze] [-trace out.json]
//	        [-calib out.json] [-learn in.json] [-replan 4] [-top 10]
//	mlquery -calibrate[=file] [-calshort]
//
// -par bounds the worker goroutines of the whole native operator tree
// (morsel-driven parallelism; 0 = GOMAXPROCS, 1 = serial).
// -pipeline=off forces the legacy MIL-style materializing execution —
// the A/B baseline for the fused cache-resident pipelines. -agg forces
// the grouping algorithm of every GROUP BY (auto = the cost-model
// choice; radix is the partitioned strategy Q6 exists to showcase).
// -verify additionally runs every query serially, with pipelines off,
// AND with the grouping strategy forced to hash and to radix, checking
// all results byte-identical — the operator-level smoke test CI runs
// on every push. -json writes one machine-readable report (per-query
// native ms — the minimum of three runs, all three recorded — result
// rows, predicted ms, allocation stats — B/op, allocs/op — the chosen
// grouping strategy with, when it is radix, a forced-hash comparison
// run, and, with -sim, the simulated ms and miss counts) to stdout
// instead of the human output, the format of the repo's BENCH_*.json
// perf trajectory.
//
// -analyze is EXPLAIN ANALYZE: every query additionally runs with
// per-operator execution profiling (actual wall time, rows, memory
// traffic in cost-model width units, allocations, per-worker busy
// time), printed as an annotated operator tree — or, with -json,
// embedded as an "analyze" block per query. -trace writes the same
// profiles as one Chrome-trace JSON (chrome://tracing, Perfetto; one
// process per query, one thread row per worker plus an "operators"
// row). All three imply profiled runs; the reported native timings
// always come from unprofiled runs.
//
// The self-tuning loop is three flags working together:
//
//   - mlquery -calibrate[=file] measures the running machine — the
//     paper's Calibrator (§3.4.3) — validates the result against the
//     calibration sanity invariants, writes it as a JSON machine
//     profile (default ./monetlite-host.json, the search path of
//     -machine host) and exits. -calshort uses reduced sweeps for CI
//     smoke jobs.
//   - mlquery -calib out.json aggregates per-operator-kind
//     predicted-vs-actual ratios from profiled runs of the query set
//     into a residual file (costmodel.Residuals).
//   - mlquery -learn in.json loads such a residual file back and
//     multiplies the learned per-kind corrections into every
//     prediction of this run — planning choices, EXPLAIN output and
//     the -json predicted_ms all shift toward observed reality.
//
// So `mlquery -calibrate && mlquery -machine host -calib r.json &&
// mlquery -machine host -learn r.json` goes from canned 1999 numbers
// to a host-calibrated, residual-corrected cost model in three runs.
//
// -replan sets the mid-query re-optimization threshold (observed vs
// estimated cardinality at materialization boundaries, default 4;
// 0 disables). With -analyze, triggered replans show up as
// "replanned at <op>: est=N obs=M" annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"monetlite"
	"monetlite/internal/costmodel"
	"monetlite/internal/engine"
	"monetlite/internal/memsim"
)

// query is one canned query: a name, the SQL it stands for, and its
// builder.
type query struct {
	name  string
	sql   string
	build func() *monetlite.QueryBuilder
}

// queryReport is one query's entry in the -json output. The simulated
// fields are present only under -sim; the hash_agg_* fields only when
// the planner chose radix grouping (a forced-hash comparison run, so
// the radix-vs-hash gap is recorded in the same snapshot).
type queryReport struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
	// NativeMS is the minimum of NativeMSRuns — the least-noise
	// estimate; earlier snapshots recorded a single run here, so the
	// field keeps its name and meaning (a native wall-clock ms).
	NativeMS     float64         `json:"native_ms"`
	NativeMSRuns []float64       `json:"native_ms_runs,omitempty"`
	Analyze      *engine.Profile `json:"analyze,omitempty"`
	ResultRows   int             `json:"result_rows"`
	PredictedMS  float64         `json:"predicted_ms"`
	// PredictionErrorFactor is max(predicted/native, native/predicted)
	// ≥ 1 — how far the cost model's prediction is off, direction
	// ignored. The report's geomean of these is the calibration
	// quality metric tracked across BENCH snapshots.
	PredictionErrorFactor float64  `json:"prediction_error_factor"`
	BytesPerOp            uint64   `json:"bytes_per_op"`
	AllocsPerOp           uint64   `json:"allocs_per_op"`
	AggStrategy           string   `json:"agg_strategy,omitempty"`
	HashAggMS             *float64 `json:"hash_agg_ms,omitempty"`
	HashAggBPO            *uint64  `json:"hash_agg_bytes_per_op,omitempty"`
	HashAggAPO            *uint64  `json:"hash_agg_allocs_per_op,omitempty"`
	SimMS                 *float64 `json:"simulated_ms,omitempty"`
	SimL1                 *uint64  `json:"simulated_l1_misses,omitempty"`
	SimL2                 *uint64  `json:"simulated_l2_misses,omitempty"`
	SimTLB                *uint64  `json:"simulated_tlb_misses,omitempty"`
}

// machineInfo is the -json "machine" block: which profile priced the
// plans and where it came from.
type machineInfo struct {
	Name string `json:"name"`
	// Source is "canned" for built-in profiles or "calibrated" when
	// the profile was loaded from a calibration file (File).
	Source string `json:"source"`
	File   string `json:"file,omitempty"`
	// Corrections holds the learned per-operator-kind multipliers
	// applied via -learn (absent when running uncorrected).
	Corrections  map[string]float64 `json:"corrections,omitempty"`
	LearnedFrom  string             `json:"learned_from,omitempty"`
	ReplanFactor float64            `json:"replan_factor"`
}

// report is the top-level -json document.
type report struct {
	Rows     int         `json:"rows"`
	Parts    int         `json:"parts"`
	Machine  machineInfo `json:"machine"`
	Workers  int         `json:"workers"`
	Pipeline bool        `json:"pipeline"`
	GoMaxP   int         `json:"gomaxprocs"`
	// PredictionErrorGeomean is the geometric mean of the per-query
	// prediction_error_factor values — 1.0 would be a perfect model.
	PredictionErrorGeomean float64       `json:"prediction_error_geomean"`
	Queries                []queryReport `json:"queries"`
}

// optionalPath is a flag that can be given bare (-calibrate → default
// path) or with a value (-calibrate=custom.json).
type optionalPath struct {
	set  bool
	path string
}

func (o *optionalPath) String() string   { return o.path }
func (o *optionalPath) IsBoolFlag() bool { return true }
func (o *optionalPath) Set(v string) error {
	o.set = true
	if v != "true" { // bare -calibrate arrives as the literal "true"
		o.path = v
	}
	return nil
}

func main() {
	rows := flag.Int("rows", 1<<20, "Item table cardinality")
	nparts := flag.Int("parts", 2000, "Part dimension cardinality")
	machine := flag.String("machine", "origin2k", "machine profile for planning (and -sim)")
	simulate := flag.Bool("sim", false, "also run instrumented on the machine's simulator")
	var workers int
	flag.IntVar(&workers, "par", 0, "worker goroutines for every plan operator (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(&workers, "workers", 0, "alias for -par")
	pipeline := flag.String("pipeline", "on", "\"on\" = fused cache-resident pipelines, \"off\" = legacy materializing execution")
	aggMode := flag.String("agg", "auto", "grouping algorithm: \"auto\" (cost model), \"hash\", \"sort\" or \"radix\"")
	verify := flag.Bool("verify", false, "cross-check each result byte-identical to a serial run and to -pipeline=off")
	jsonOut := flag.Bool("json", false, "emit a machine-readable per-query report (timings + B/op, allocs/op) to stdout")
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE: profile every query and print per-operator actuals (or embed them in -json)")
	traceOut := flag.String("trace", "", "write per-query execution profiles as one Chrome-trace JSON to this file")
	calibOut := flag.String("calib", "", "write aggregated predicted-vs-actual residuals (cost-model calibration feed) to this file")
	var calibrateTo optionalPath
	flag.Var(&calibrateTo, "calibrate", "measure this machine's cache/TLB geometry and latencies, write the profile (default ./monetlite-host.json) and exit")
	calShort := flag.Bool("calshort", false, "use reduced calibration sweeps (CI smoke; only with -calibrate)")
	learnFrom := flag.String("learn", "", "apply learned per-operator-kind corrections from this -calib residual file to every prediction")
	replanF := flag.Float64("replan", 4, "mid-query replan threshold: re-optimize when observed cardinality diverges from the estimate by this factor (0 = off)")
	top := flag.Int("top", 10, "result rows to print per query")
	flag.Parse()

	if calibrateTo.set {
		runCalibration(calibrateTo.path, *calShort)
		return
	}

	m, err := monetlite.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *rows <= 0 || *nparts <= 0 {
		fmt.Fprintln(os.Stderr, "mlquery: -rows and -parts must be positive")
		os.Exit(2)
	}
	if *replanF < 0 || (*replanF > 0 && *replanF <= 1) {
		fmt.Fprintln(os.Stderr, "mlquery: -replan must be 0 (off) or > 1")
		os.Exit(2)
	}

	// The unified cost model every planning decision goes through:
	// the (possibly calibrated) machine, plus learned per-kind
	// corrections when -learn provides them.
	model := monetlite.NewCostModel(m)
	mInfo := machineInfo{Name: m.Name, Source: "canned", ReplanFactor: *replanF}
	if m.Name == memsim.HostName {
		if _, path, err := memsim.LoadHost(); err == nil {
			mInfo.Source, mInfo.File = "calibrated", path
		}
	}
	if *learnFrom != "" {
		raw, err := os.ReadFile(*learnFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlquery: -learn: %v\n", err)
			os.Exit(2)
		}
		var resi monetlite.Residuals
		if err := json.Unmarshal(raw, &resi); err != nil {
			fmt.Fprintf(os.Stderr, "mlquery: -learn %s: %v\n", *learnFrom, err)
			os.Exit(2)
		}
		model, err = model.WithResiduals(&resi)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlquery: -learn %s: %v\n", *learnFrom, err)
			os.Exit(2)
		}
		mInfo.Corrections = model.Corrections()
		mInfo.LearnedFrom = *learnFrom
	}
	var pipeOn bool
	switch *pipeline {
	case "on":
		pipeOn = true
	case "off":
		pipeOn = false
	default:
		fmt.Fprintf(os.Stderr, "mlquery: -pipeline must be \"on\" or \"off\", got %q\n", *pipeline)
		os.Exit(2)
	}
	aggForce := ""
	switch *aggMode {
	case "auto":
	case "hash", "sort", "radix":
		aggForce = *aggMode
	default:
		fmt.Fprintf(os.Stderr, "mlquery: -agg must be \"auto\", \"hash\", \"sort\" or \"radix\", got %q\n", *aggMode)
		os.Exit(2)
	}
	say := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}

	say("generating item(%d rows) and part(%d rows)...\n", *rows, *nparts)
	t0 := time.Now()
	items, err := monetlite.ItemTable(*rows, 42)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := monetlite.PartTable(*nparts, 7)
	if err != nil {
		log.Fatal(err)
	}
	say("done in %v; item decomposed to %d bytes/tuple (N-ary record: %d)\n\n",
		time.Since(t0).Round(time.Millisecond), items.BUNWidth(), items.Schema.RowWidth())

	revenue := monetlite.Mul(monetlite.Col("price"),
		monetlite.Sub(monetlite.Const(1), monetlite.Col("discnt")))
	// Q2's point range sits mid-domain whatever the cardinality
	// (order values are 1000 .. 1000+rows-1).
	orderLo := int64(1000 + *rows/2)

	queries := []query{
		{
			name: "Q1 revenue by shipmode",
			sql: "SELECT shipmode, COUNT(*), SUM(price*(1-discnt)) FROM item\n" +
				"WHERE date1 BETWEEN 8500 AND 9499 GROUP BY shipmode",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("date1", 8500, 9499).
					GroupBy("shipmode", revenue)
			},
		},
		{
			name: "Q2 point lookup via index",
			sql: fmt.Sprintf("SELECT order, qty, price, shipmode FROM item\n"+
				"WHERE order BETWEEN %d AND %d", orderLo, orderLo+19),
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("order", orderLo, orderLo+19).
					Select("order", "qty", "price", "shipmode")
			},
		},
		{
			name: "Q3 select-join-aggregate",
			sql: "SELECT p.category, COUNT(*), SUM(i.price*(1-i.discnt)) FROM item i, part p\n" +
				"WHERE i.date1 BETWEEN 8500 AND 9499 AND i.shipmode = 'MAIL' AND i.part = p.id\n" +
				"GROUP BY p.category ORDER BY SUM DESC",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereRange("date1", 8500, 9499).
					WhereString("shipmode", "MAIL").
					JoinTable(parts, "part", "id").
					GroupBy("category", revenue).
					OrderBy("sum", true)
			},
		},
		{
			name: "Q4 full join, top categories by margin",
			sql: "SELECT p.category, COUNT(*), SUM(p.retail - i.price) FROM item i, part p\n" +
				"WHERE i.part = p.id GROUP BY p.category ORDER BY SUM DESC",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					JoinTable(parts, "part", "id").
					GroupBy("category", monetlite.Sub(monetlite.Col("retail"), monetlite.Col("price"))).
					OrderBy("sum", true)
			},
		},
		{
			name: "Q5 top-20 mail orders by date (limit probe)",
			sql: "SELECT order, date1, price FROM item WHERE shipmode = 'MAIL'\n" +
				"AND date1 BETWEEN 8500 AND 9499 LIMIT 20",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					WhereString("shipmode", "MAIL").
					WhereRange("date1", 8500, 9499).
					Select("order", "date1", "price").
					Limit(20)
			},
		},
		{
			// Q6 is the radix-aggregation showcase: cust is a uniformly
			// random key with ~rows/2 distinct values, so the monolithic
			// grouping hash table is orders of magnitude past the caches
			// and every probe is a RAM-latency miss — exactly the regime
			// where the planner flips to GroupAggregate[radix bits=B].
			name: "Q6 revenue by customer (high-cardinality group)",
			sql: "SELECT cust, COUNT(*), SUM(price*(1-discnt)) FROM item\n" +
				"GROUP BY cust",
			build: func() *monetlite.QueryBuilder {
				return monetlite.Query(items).
					GroupBy("cust", revenue)
			},
		},
	}

	// One simulator for the whole session: column BATs bind to the
	// first sim they see and stay bound, so per-query costs are deltas
	// of the shared counters (caches stay warm across queries, like a
	// real session).
	var sim *monetlite.Sim
	if *simulate {
		sim, err = monetlite.NewSim(m)
		if err != nil {
			log.Fatal(err)
		}
	}

	rep := report{
		Rows: *rows, Parts: *nparts, Machine: mInfo,
		Workers: workers, Pipeline: pipeOn, GoMaxP: runtime.GOMAXPROCS(0),
	}

	profiling := *analyze || *traceOut != "" || *calibOut != ""
	var traceEvents []engine.TraceEvent
	residuals := costmodel.NewResiduals(m.Name)

	for qi, q := range queries {
		say("=== %s ===\n%s\n\n", q.name, q.sql)
		b := q.build().CostModel(&model).Replan(*replanF).
			Parallel(workers).Pipeline(pipeOn).GroupStrategy(aggForce)
		plan, err := b.Plan()
		if err != nil {
			log.Fatal(err)
		}
		if !*jsonOut {
			fmt.Print(plan.Explain())
		}

		// Native timing: the minimum of three runs (the least-noise
		// estimate on a shared machine); the first run provides the
		// result the verification and printing below use.
		const timingRuns = 3
		var res *monetlite.QueryResult
		msRuns := make([]float64, 0, timingRuns)
		for i := 0; i < timingRuns; i++ {
			t0 := time.Now()
			r, err := plan.Run(nil)
			if err != nil {
				log.Fatal(err)
			}
			msRuns = append(msRuns, float64(time.Since(t0).Nanoseconds())/1e6)
			if i == 0 {
				res = r
			}
		}
		nativeMS := msRuns[0]
		for _, v := range msRuns[1:] {
			if v < nativeMS {
				nativeMS = v
			}
		}
		say("\nnative: %.2f ms (min of %d runs), %d result rows\n", nativeMS, timingRuns, res.N())

		// The profiled run is separate from the timing runs, so the
		// reported native timings never include profiling overhead.
		var prof *engine.Profile
		if profiling {
			pres, err := plan.RunProfiled(nil)
			if err != nil {
				log.Fatal(err)
			}
			if !reflect.DeepEqual(res.Rel, pres.Rel) {
				failVerify(q.name, "profiled", diffRels(res.Rel, pres.Rel))
			}
			prof = pres.Profile
			if *analyze && !*jsonOut {
				fmt.Printf("\n%s", prof.String())
			}
			if *traceOut != "" {
				traceEvents = append(traceEvents, prof.TraceEvents(qi+1, q.name)...)
			}
			prof.Residuals(residuals)
		}

		if *verify {
			mustRun := func(b *monetlite.QueryBuilder) *monetlite.QueryResult {
				r, err := b.Run()
				if err != nil {
					log.Fatal(err)
				}
				return r
			}
			// Within one grouping strategy, every (worker count,
			// pipeline mode) combination is byte-identical.
			for _, alt := range []struct {
				name string
				res  *monetlite.QueryResult
			}{
				{"serial", mustRun(q.build().CostModel(&model).Parallel(1).Pipeline(pipeOn).GroupStrategy(aggForce))},
				{"materializing", mustRun(q.build().CostModel(&model).Parallel(workers).Pipeline(false).GroupStrategy(aggForce))},
			} {
				if !reflect.DeepEqual(res.Rel, alt.res.Rel) {
					failVerify(q.name, alt.name, diffRels(res.Rel, alt.res.Rel))
				}
			}
			// The radix grouping path cross-check (only where the plan
			// has a GroupAggregate — forcing a strategy elsewhere is a
			// no-op and would just re-run the identical plan): radix
			// must be byte-identical to its own serial materializing
			// run, and equivalent to forced hash grouping — keys,
			// counts, min and max bitwise, sums up to association order
			// (strategies decompose the input differently, so
			// multi-morsel float sums agree only to rounding).
			if aggStrategyOf(plan.Explain()) == "" {
				say("verify: result byte-identical to serial and -pipeline=off runs (no GROUP BY)\n")
			} else {
				radix := mustRun(q.build().CostModel(&model).Parallel(workers).Pipeline(pipeOn).GroupStrategy("radix"))
				radixSerialMat := mustRun(q.build().CostModel(&model).Parallel(1).Pipeline(false).GroupStrategy("radix"))
				if !reflect.DeepEqual(radix.Rel, radixSerialMat.Rel) {
					failVerify(q.name, "radix-agg serial materializing", diffRels(radix.Rel, radixSerialMat.Rel))
				}
				hash := mustRun(q.build().CostModel(&model).Parallel(workers).Pipeline(pipeOn).GroupStrategy("hash"))
				if err := equivalentRels(radix.Rel, hash.Rel); err != nil {
					failVerify(q.name, "hash-agg (vs radix-agg)", err.Error())
				}
				if err := equivalentRels(res.Rel, hash.Rel); err != nil {
					failVerify(q.name, "hash-agg", err.Error())
				}
				say("verify: byte-identical serial/materializing runs; radix-agg deterministic and equivalent to hash-agg\n")
			}
		}

		var qr queryReport
		if sim != nil {
			before := sim.Stats()
			if _, err := plan.Run(sim); err != nil {
				log.Fatal(err)
			}
			st := sim.Stats().Sub(before)
			say("simulated on %s: %.1f ms (L1 %d, L2 %d, TLB %d misses) vs predicted %.1f ms\n",
				m.Name, st.ElapsedMillis(), st.L1Misses, st.L2Misses, st.TLBMisses,
				plan.PredictedMillis())
			simMS := st.ElapsedMillis()
			l1, l2, tlb := st.L1Misses, st.L2Misses, st.TLBMisses
			qr.SimMS, qr.SimL1, qr.SimL2, qr.SimTLB = &simMS, &l1, &l2, &tlb
		}

		if *jsonOut {
			bpo, apo := measureAllocs(func() {
				if _, err := plan.Run(nil); err != nil {
					log.Fatal(err)
				}
			})
			qr.Name = q.name
			qr.SQL = q.sql
			qr.NativeMS = nativeMS
			qr.NativeMSRuns = msRuns
			if *analyze {
				qr.Analyze = prof
			}
			qr.ResultRows = res.N()
			qr.PredictedMS = plan.PredictedMillis()
			qr.PredictionErrorFactor = errorFactor(qr.PredictedMS, nativeMS)
			qr.BytesPerOp = bpo
			qr.AllocsPerOp = apo
			qr.AggStrategy = aggStrategyOf(plan.Explain())
			if qr.AggStrategy == "radix" {
				// Record the forced-hash baseline alongside, so one
				// snapshot holds the radix-vs-hash-partials gap.
				hp, err := q.build().CostModel(&model).Parallel(workers).Pipeline(pipeOn).GroupStrategy("hash").Plan()
				if err != nil {
					log.Fatal(err)
				}
				if _, err := hp.Run(nil); err != nil { // warm, like the radix run
					log.Fatal(err)
				}
				hashMS := math.Inf(1)
				for i := 0; i < timingRuns; i++ { // min-of-3, like native_ms
					t0 := time.Now()
					if _, err := hp.Run(nil); err != nil {
						log.Fatal(err)
					}
					if ms := float64(time.Since(t0).Nanoseconds()) / 1e6; ms < hashMS {
						hashMS = ms
					}
				}
				hbpo, hapo := measureAllocs(func() {
					if _, err := hp.Run(nil); err != nil {
						log.Fatal(err)
					}
				})
				qr.HashAggMS, qr.HashAggBPO, qr.HashAggAPO = &hashMS, &hbpo, &hapo
			}
			rep.Queries = append(rep.Queries, qr)
		} else {
			fmt.Printf("\n%s\n", res.Format(*top))
		}
	}

	if *traceOut != "" {
		raw, err := engine.EncodeChromeTrace(traceEvents)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
			log.Fatal(err)
		}
		say("wrote Chrome trace (%d events) to %s\n", len(traceEvents), *traceOut)
	}
	if *calibOut != "" {
		raw, err := json.MarshalIndent(residuals, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*calibOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		say("wrote cost-model residuals (%d operator kinds) to %s\n", len(residuals.Kinds()), *calibOut)
	}
	if *jsonOut {
		logSum := 0.0
		n := 0
		for _, qr := range rep.Queries {
			if qr.PredictionErrorFactor > 0 {
				logSum += math.Log(qr.PredictionErrorFactor)
				n++
			}
		}
		if n > 0 {
			rep.PredictionErrorGeomean = math.Exp(logSum / float64(n))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
}

// errorFactor is how far off a prediction is, direction ignored:
// max(pred/actual, actual/pred), always ≥ 1; 0 when either side is
// degenerate.
func errorFactor(predMS, actualMS float64) float64 {
	if !(predMS > 0) || !(actualMS > 0) {
		return 0
	}
	if predMS > actualMS {
		return predMS / actualMS
	}
	return actualMS / predMS
}

// runCalibration is the -calibrate mode: measure the running machine,
// validate the result against the calibration invariants, persist it
// where -machine host will find it, and exit.
func runCalibration(path string, short bool) {
	if path == "" {
		path = "monetlite-host.json"
	}
	cfg := monetlite.DefaultCalibration()
	kind := "full"
	if short {
		cfg = monetlite.QuickCalibration()
		kind = "reduced (-calshort)"
	}
	fmt.Printf("calibrating this machine (%s sweeps; pointer-chase + stride + TLB probes)...\n", kind)
	t0 := time.Now()
	m, _, err := monetlite.Calibrate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := monetlite.CheckCalibration(m); err != nil {
		log.Fatal(err)
	}
	if err := monetlite.SaveMachine(m, path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v:\n", time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  clock    %.0f MHz\n", m.ClockMHz)
	fmt.Printf("  L1       %d KB, %d B lines (miss → L2: %.1f ns)\n", m.L1.Size>>10, m.L1.LineSize, m.Cost.LatL2)
	fmt.Printf("  L2       %d KB, %d B lines (miss → RAM: %.1f ns random, %.1f ns sequential)\n",
		m.L2.Size>>10, m.L2.LineSize, m.Cost.LatMem, m.Cost.LatMemSeq)
	fmt.Printf("  TLB      %d entries, %d B pages (miss: %.1f ns)\n", m.TLB.Entries, m.TLB.PageSize, m.Cost.LatTLB)
	fmt.Printf("  scan     %.2f ns/BUN, %.2f ns/byte\n", m.Cost.WScanBUN, m.Cost.WScanByte)
	fmt.Printf("wrote %s — `mlquery -machine host` now plans on this profile\n", path)
}

// failVerify reports one -verify cross-check failure on stderr as a
// single line and exits non-zero.
func failVerify(query, against, diff string) {
	fmt.Fprintf(os.Stderr, "mlquery: %s: result differs from %s run: %s\n", query, against, diff)
	os.Exit(1)
}

// diffRels summarizes the first divergence between two result
// relations in one line: the shape mismatch, the column-header
// mismatch, or the first differing cell plus how many rows of that
// column disagree in total.
func diffRels(a, b *engine.Rel) string {
	if a.N != b.N || len(a.Cols) != len(b.Cols) {
		return fmt.Sprintf("shape %d rows x %d cols vs %d rows x %d cols", a.N, len(a.Cols), b.N, len(b.Cols))
	}
	for c := range a.Cols {
		ac, bc := &a.Cols[c], &b.Cols[c]
		if ac.Name != bc.Name || ac.Kind != bc.Kind {
			return fmt.Sprintf("column %d header: %s %v vs %s %v", c, ac.Name, ac.Kind, bc.Name, bc.Kind)
		}
		first, rows := -1, 0
		for i := 0; i < a.N; i++ {
			if relCell(ac, i) != relCell(bc, i) {
				if first < 0 {
					first = i
				}
				rows++
			}
		}
		if first >= 0 {
			return fmt.Sprintf("column %q row %d: %s vs %s (%d of %d rows differ)",
				ac.Name, first, relCell(ac, first), relCell(bc, first), rows, a.N)
		}
	}
	return "no cell-level difference found"
}

// relCell renders one cell for the diff summary.
func relCell(c *engine.RelCol, i int) string {
	switch c.Kind {
	case engine.KInt:
		return fmt.Sprintf("%d", c.Ints[i])
	case engine.KFloat:
		return fmt.Sprintf("%v", c.Floats[i])
	default:
		return c.Strs[i]
	}
}

// equivalentRels compares two result relations across grouping
// strategies: everything bitwise except float "sum" columns, which may
// differ by a relative 1e-9 (different strategies associate the same
// per-group additions differently once the input spans morsels).
func equivalentRels(a, b *engine.Rel) error {
	if a.N != b.N || len(a.Cols) != len(b.Cols) {
		return fmt.Errorf("shape (%d rows, %d cols) vs (%d rows, %d cols)", a.N, len(a.Cols), b.N, len(b.Cols))
	}
	for c := range a.Cols {
		ac, bc := &a.Cols[c], &b.Cols[c]
		if ac.Name != bc.Name || ac.Kind != bc.Kind {
			return fmt.Errorf("column %d: (%s, %v) vs (%s, %v)", c, ac.Name, ac.Kind, bc.Name, bc.Kind)
		}
		if ac.Kind != engine.KFloat || ac.Name != "sum" {
			if !reflect.DeepEqual(*ac, *bc) {
				return fmt.Errorf("column %q differs", ac.Name)
			}
			continue
		}
		for i := range ac.Floats {
			tol := 1e-9 * (1 + math.Abs(ac.Floats[i]))
			if d := ac.Floats[i] - bc.Floats[i]; d > tol || -d > tol {
				return fmt.Errorf("sum[%d] = %v vs %v", i, ac.Floats[i], bc.Floats[i])
			}
		}
	}
	return nil
}

// aggStrategyOf extracts the grouping algorithm from an EXPLAIN
// rendering ("" when the plan has no GroupAggregate): the token inside
// "GroupAggregate[...]", up to the bits annotation.
func aggStrategyOf(explain string) string {
	_, rest, ok := strings.Cut(explain, "GroupAggregate[")
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, " ]"); i >= 0 {
		return rest[:i]
	}
	return rest
}

// measureAllocs reports the heap bytes and allocation count of one run
// of f, averaged over a few runs (TotalAlloc/Mallocs are monotonic, so
// concurrent GC cannot skew the deltas).
func measureAllocs(f func()) (bytesPerOp, allocsPerOp uint64) {
	const runs = 3
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / runs,
		(after.Mallocs - before.Mallocs) / runs
}
