package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"monetlite/internal/engine"
)

func twoRels() (*engine.Rel, *engine.Rel) {
	a := &engine.Rel{N: 3, Cols: []engine.RelCol{
		{Name: "cust", Kind: engine.KInt, Ints: []int64{1, 2, 3}},
		{Name: "sum", Kind: engine.KFloat, Floats: []float64{10, 20, 30}},
	}}
	b := &engine.Rel{N: 3, Cols: []engine.RelCol{
		{Name: "cust", Kind: engine.KInt, Ints: []int64{1, 2, 3}},
		{Name: "sum", Kind: engine.KFloat, Floats: []float64{10, 21, 31}},
	}}
	return a, b
}

func TestDiffRels(t *testing.T) {
	a, b := twoRels()

	got := diffRels(a, b)
	for _, want := range []string{`column "sum"`, "row 1", "20 vs 21", "2 of 3 rows differ"} {
		if !strings.Contains(got, want) {
			t.Errorf("diffRels = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "\n") {
		t.Errorf("diffRels must be a single line, got %q", got)
	}

	short := &engine.Rel{N: 2, Cols: b.Cols}
	if got := diffRels(a, short); !strings.Contains(got, "shape") {
		t.Errorf("diffRels on shape mismatch = %q, missing \"shape\"", got)
	}

	if got := diffRels(a, a); !strings.Contains(got, "no cell-level difference") {
		t.Errorf("diffRels on equal rels = %q", got)
	}
}

// TestFailVerifyExitsNonZero re-executes this test binary as a helper
// process that hits the -verify failure path, pinning both the
// non-zero exit status and the one-line diff summary on stderr.
func TestFailVerifyExitsNonZero(t *testing.T) {
	if os.Getenv("MLQUERY_FAILVERIFY_HELPER") == "1" {
		a, b := twoRels()
		failVerify("Q6 revenue by customer", "serial", diffRels(a, b))
		return // unreachable: failVerify exits
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestFailVerifyExitsNonZero")
	cmd.Env = append(os.Environ(), "MLQUERY_FAILVERIFY_HELPER=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("helper process did not fail: err=%v, output=%q", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("helper exited %d, want 1; output=%q", code, out)
	}
	line := strings.TrimSpace(string(out))
	if !strings.HasPrefix(line, "mlquery: Q6 revenue by customer: result differs from serial run: ") {
		t.Errorf("stderr = %q, want the mlquery one-line verify failure", line)
	}
	if !strings.Contains(line, "20 vs 21") {
		t.Errorf("stderr = %q, missing cell diff", line)
	}
}
