// Command batgen generates experiment workloads (the §3.4.1 BATs of
// unique uniform [OID,value] tuples) and stores them in the portable
// binary BAT format, so large inputs — e.g. the 64M-tuple operands —
// are generated once and reloaded across runs.
//
// Usage:
//
//	batgen -c 8000000 -seed 1999 -out l.bat,r.bat   # join operands
//	batgen -c 8000000 -single -out rel.bat           # one relation
//	batgen -verify l.bat                             # header check
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"monetlite"
	"monetlite/internal/bat"
	"monetlite/internal/workload"
)

func main() {
	card := flag.Int("c", 1_000_000, "cardinality (tuples)")
	seed := flag.Uint64("seed", 1999, "deterministic seed")
	out := flag.String("out", "", "output path(s): one file with -single, else L,R")
	single := flag.Bool("single", false, "generate one relation instead of join operands")
	verify := flag.String("verify", "", "verify an existing BAT file and print its shape")
	flag.Parse()

	if *verify != "" {
		p, err := bat.LoadPairs(*verify)
		if err != nil {
			fmt.Fprintln(os.Stderr, "batgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d BUNs (%d bytes of tuples)\n", *verify, p.Len(), p.Bytes())
		return
	}
	if *card <= 0 {
		fmt.Fprintln(os.Stderr, "batgen: cardinality must be positive")
		os.Exit(2)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "batgen: -out is required")
		os.Exit(2)
	}

	if *single {
		p := workload.UniquePairs(*card, *seed)
		if err := bat.SavePairs(*out, p); err != nil {
			fmt.Fprintln(os.Stderr, "batgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d BUNs\n", *out, p.Len())
		return
	}

	paths := strings.Split(*out, ",")
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "batgen: -out must name two files (L,R) unless -single")
		os.Exit(2)
	}
	l, r := monetlite.JoinInputs(*card, *seed)
	for i, pair := range []struct {
		path string
		p    *monetlite.Pairs
	}{{paths[0], l}, {paths[1], r}} {
		if err := bat.SavePairs(strings.TrimSpace(pair.path), pair.p); err != nil {
			fmt.Fprintln(os.Stderr, "batgen:", err)
			os.Exit(1)
		}
		side := "L"
		if i == 1 {
			side = "R"
		}
		fmt.Printf("wrote %s (%s): %d BUNs\n", pair.path, side, pair.p.Len())
	}
}
