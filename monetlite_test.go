package monetlite

import (
	"bytes"
	"testing"
)

// The facade tests exercise the public API end to end, as a
// downstream user would.

func TestPublicJoinPipeline(t *testing.T) {
	l, r := JoinInputs(10000, 1)
	m := Origin2000()
	plan := NewPlan(Auto, 10000, m)
	sim, err := NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(sim, l, r, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 10000 {
		t.Fatalf("join returned %d pairs", res.Len())
	}
	if sim.Stats().Accesses == 0 {
		t.Error("no simulated activity")
	}
}

func TestPublicClusterAndJoins(t *testing.T) {
	l, r := JoinInputs(4096, 2)
	cl, err := RadixCluster(nil, l, 6, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Clusters() != 64 {
		t.Errorf("clusters = %d", cl.Clusters())
	}
	for _, run := range []func() (*JoinIndex, error){
		func() (*JoinIndex, error) { return PartitionedHashJoin(nil, l, r, 6, 2, nil) },
		func() (*JoinIndex, error) { return RadixJoin(nil, l, r, 9, 2, nil) },
		func() (*JoinIndex, error) { return SimpleHashJoin(nil, l, r, nil) },
		func() (*JoinIndex, error) { return SortMergeJoin(nil, l, r) },
		func() (*JoinIndex, error) { return SimpleHashJoin(nil, l, r, MultHash) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 4096 {
			t.Errorf("result size %d", res.Len())
		}
	}
}

func TestPublicScanAndModel(t *testing.T) {
	m := Origin2000()
	r, err := StrideScan(m, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Millis() <= 0 {
		t.Error("no scan time")
	}
	model := NewCostModel(m)
	if model.ScanNanos(10000, 8) <= 0 {
		t.Error("no model prediction")
	}
	if model.PhashTotal(10, 1<<20).Millis(m) <= 0 {
		t.Error("no phash prediction")
	}
}

func TestPublicMachines(t *testing.T) {
	if len(Machines()) != 4 {
		t.Errorf("expected 4 Figure-3 machines, got %d", len(Machines()))
	}
	if _, err := MachineByName("origin2k"); err != nil {
		t.Error(err)
	}
	if _, err := MachineByName("cray"); err == nil {
		t.Error("unknown machine resolved")
	}
	if Modern().ClockMHz <= Origin2000().ClockMHz {
		t.Error("modern profile not faster than 1998")
	}
}

func TestPublicDSM(t *testing.T) {
	tab, err := ItemTable(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	oids, err := tab.SelectString(nil, "shipmode", "AIR")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tab.GroupAggregate(nil, "status", "price", oids, nil)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, r := range rows {
		n += r.Count
	}
	if int(n) != len(oids) {
		t.Errorf("aggregate covers %d rows, want %d", n, len(oids))
	}
	enc, err := EncodeStrings([]string{"x", "y", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Codes.Len() != 3 {
		t.Error("encode failed")
	}
}

func TestPublicFigureRunners(t *testing.T) {
	var buf bytes.Buffer
	cfg := FigureConfig{Out: &buf, CardOverride: 1 << 12, Seed: 5}
	if err := Fig1(cfg); err != nil {
		t.Fatal(err)
	}
	if err := Fig13(cfg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("figure runners produced no output")
	}
}

func TestPublicStrategyPlanner(t *testing.T) {
	m := Origin2000()
	if got := len(Strategies()); got != 9 {
		t.Errorf("%d strategies", got)
	}
	p := PlanAuto(8<<20, m)
	if p.Strategy == SimpleHash || p.Strategy == SortMerge {
		t.Errorf("auto picked baseline %v at 8M", p.Strategy)
	}
	if OptimalPasses(20, m) != 4 {
		t.Errorf("OptimalPasses(20) = %d", OptimalPasses(20, m))
	}
	if NewPlan(PhashL1, 8<<20, m).Bits != 12 {
		t.Errorf("phash L1 bits = %d", NewPlan(PhashL1, 8<<20, m).Bits)
	}
}
