// Package monetlite is a from-scratch Go reproduction of Boncz,
// Manegold and Kersten, "Database Architecture Optimized for the new
// Bottleneck: Memory Access" (VLDB 1999): the vertically decomposed
// (BAT) storage model, the multi-pass radix-cluster algorithm, the
// partitioned hash-join and radix-join built on it, the baseline join
// algorithms they are compared against, the paper's analytical
// main-memory cost models, and a deterministic simulation of the
// hierarchical memory system (L1/L2 caches + TLB) that stands in for
// the MIPS R10000 hardware event counters of the original study.
//
// The package is a facade over the internal implementation: it
// re-exports the types and operations a downstream user composes, in
// four groups —
//
//   - memory simulation: Machine profiles, NewSim, Stats;
//   - storage: Pairs ([OID,value] BATs), workload generators, the DSM
//     relational layer (Decompose, ItemTable, …);
//   - joins: RadixCluster, PartitionedHashJoin, RadixJoin, the
//     baselines, and the §3.4.4 strategy planner (NewPlan, PlanAuto,
//     Execute);
//   - models & experiments: the T(s)/Tc/Tr/Th cost models and the
//     figure-regeneration harness in RunFigures.
//
// Every operator takes an optional *Sim; pass nil to run natively
// (for wall-clock benchmarking) or a Sim to obtain exact L1/L2/TLB
// miss counts and simulated elapsed time on a chosen machine profile.
package monetlite

import (
	"monetlite/internal/bat"
	"monetlite/internal/calibrate"
	"monetlite/internal/core"
	"monetlite/internal/costmodel"
	"monetlite/internal/experiments"
	"monetlite/internal/hashtab"
	"monetlite/internal/memsim"
	"monetlite/internal/scan"
	"monetlite/internal/workload"
)

// ---------------------------------------------------------------------
// Memory simulation.

// Machine is a simulated hardware profile: cache/TLB geometry plus
// calibrated per-event latencies and per-operation work constants.
type Machine = memsim.Machine

// CacheSpec describes one cache level's geometry.
type CacheSpec = memsim.CacheSpec

// TLBSpec describes a translation lookaside buffer.
type TLBSpec = memsim.TLBSpec

// Sim is a deterministic memory-hierarchy simulator; it produces the
// exact per-event counts the paper reads from hardware counters.
type Sim = memsim.Sim

// Stats is a snapshot of simulated event counters.
type Stats = memsim.Stats

// The machine profiles of the paper: Origin2000 is the §3.4
// experimental platform; Sun450, Ultra and SunLX complete the
// Figure-3 machine set; Modern is a 2020s extension profile.
var (
	Origin2000 = memsim.Origin2000
	Sun450     = memsim.Sun450
	Ultra      = memsim.Ultra
	SunLX      = memsim.SunLX
	Modern     = memsim.Modern
)

// Machines returns the Figure-3 machine set, newest first.
func Machines() []Machine { return memsim.Machines() }

// MachineByName resolves a profile by its Figure-3 legend name, the
// "modern" extension profile, or "host" — the calibrated profile of
// the running machine, loaded through the calibration-file search path
// (see CalibrationSearchPath).
func MachineByName(name string) (Machine, error) { return memsim.MachineByName(name) }

// ---------------------------------------------------------------------
// Host calibration: the paper's Calibrator (§3.4.3) reborn. Calibrate
// measures the real cache/TLB geometry and latencies of the machine
// executing it; the resulting profile, saved to the search path,
// upgrades every later MachineByName("host") — and with it the
// engine's planning decisions — from 1999's canned numbers to measured
// reality.

// CalibrateConfig sizes the calibration sweeps; use DefaultCalibration
// for full accuracy or QuickCalibration for CI smoke runs.
type CalibrateConfig = calibrate.Config

// CalibrationReport carries the raw measured curves behind a
// calibrated profile.
type CalibrationReport = calibrate.Report

// DefaultCalibration and QuickCalibration are the standard sweep
// configurations.
var (
	DefaultCalibration = calibrate.Default
	QuickCalibration   = calibrate.Quick
)

// Calibrate measures the running machine and returns its profile
// (named "host") with the raw evidence curves.
func Calibrate(cfg CalibrateConfig) (Machine, *CalibrationReport, error) {
	return calibrate.Host(cfg)
}

// CheckCalibration verifies the calibration sanity invariants on a
// machine profile (positive latencies, monotone by level, L1 ≤ L2).
func CheckCalibration(m Machine) error { return calibrate.Check(m) }

// SaveMachine persists a machine profile as deterministic JSON.
func SaveMachine(m Machine, path string) error { return memsim.SaveMachineFile(m, path) }

// LoadMachine reads and validates a machine profile saved by
// SaveMachine.
func LoadMachine(path string) (Machine, error) { return memsim.LoadMachineFile(path) }

// CalibrationSearchPath lists the file locations MachineByName("host")
// probes, in order: $MONETLITE_CALIBRATION, ./monetlite-host.json,
// then the per-user config directory.
func CalibrationSearchPath() []string { return memsim.HostSearchPath() }

// NewSim creates a simulator for a machine profile.
func NewSim(m Machine) (*Sim, error) { return memsim.New(m) }

// ---------------------------------------------------------------------
// Storage: BATs and workloads.

// Oid is a Monet object identifier.
type Oid = bat.Oid

// Pair is one 8-byte [OID,value] BUN (§3.4.1).
type Pair = bat.Pair

// Pairs is a BAT of fixed 8-byte BUNs, the experimental storage unit.
type Pairs = bat.Pairs

// NewPairs returns an unbound BAT with n zeroed BUNs.
func NewPairs(n int) *Pairs { return bat.NewPairs(n) }

// FromPairs wraps an existing BUN slice as a BAT.
func FromPairs(buns []Pair) *Pairs { return bat.FromPairs(buns) }

// UniquePairs builds the §3.4.1 experimental BAT: n BUNs with unique
// uniform random values in random order, deterministically from seed.
func UniquePairs(n int, seed uint64) *Pairs { return workload.UniquePairs(n, seed) }

// JoinInputs builds two join operands with identical unique value sets
// in independent random orders (join hit rate exactly one).
func JoinInputs(n int, seed uint64) (l, r *Pairs) { return workload.JoinInputs(n, seed) }

// ---------------------------------------------------------------------
// The radix algorithms and join baselines (§3.3).

// Clustered is a radix-clustered BAT with cluster boundary offsets.
type Clustered = core.Clustered

// JoinIndex is a join result: a BAT of [left OID, right OID] pairs.
type JoinIndex = core.JoinIndex

// Hash is the integer hash used for clustering and hash tables; nil
// means identity (the paper's integer-key setup).
type Hash = hashtab.Hash

// MultHash is Knuth's multiplicative hash, for adversarial domains.
var MultHash Hash = hashtab.Mult

// RadixCluster clusters a BAT on the lower bits of the key hash in
// the given number of passes (Figure 6).
func RadixCluster(sim *Sim, in *Pairs, bits, passes int, h Hash) (*Clustered, error) {
	return core.RadixCluster(sim, in, bits, passes, h)
}

// PartitionedHashJoin radix-clusters both operands and hash-joins the
// matching cluster pairs (Figure 8).
func PartitionedHashJoin(sim *Sim, l, r *Pairs, bits, passes int, h Hash) (*JoinIndex, error) {
	return core.PartitionedHashJoin(sim, l, r, bits, passes, h)
}

// RadixJoin radix-clusters both operands finely and nested-loop joins
// the matching cluster pairs (Figure 8).
func RadixJoin(sim *Sim, l, r *Pairs, bits, passes int, h Hash) (*JoinIndex, error) {
	return core.RadixJoin(sim, l, r, bits, passes, h)
}

// SimpleHashJoin is the non-partitioned bucket-chained hash join
// baseline.
func SimpleHashJoin(sim *Sim, l, r *Pairs, h Hash) (*JoinIndex, error) {
	return core.SimpleHashJoin(sim, l, r, h)
}

// SortMergeJoin is the sort-both-then-merge baseline.
func SortMergeJoin(sim *Sim, l, r *Pairs) (*JoinIndex, error) {
	return core.SortMergeJoin(sim, l, r)
}

// OptimalPasses returns the §3.4.2 pass count for clustering on B
// bits: at most log2(TLB entries) bits per pass.
func OptimalPasses(bits int, m Machine) int { return core.OptimalPasses(bits, m) }

// ---------------------------------------------------------------------
// The parallel execution engine. After radix-clustering, every cluster
// pair joins independently, so the native join phase (and the
// clustering passes themselves) fan out over a bounded goroutine pool.
// Results are byte-identical to the serial operators; instrumented
// runs (sim != nil) always use the serial path, as the simulator
// models a single CPU.

// Options tunes the execution engine: Parallelism bounds the worker
// goroutines (0 = GOMAXPROCS, 1 = serial).
type Options = core.Options

// Serial returns Options that force the serial engine.
func Serial() Options { return core.Serial() }

// ExecuteOpts runs a plan on the configured execution engine.
func ExecuteOpts(sim *Sim, l, r *Pairs, p Plan, h Hash, opt Options) (*JoinIndex, error) {
	return core.ExecuteOpts(sim, l, r, p, h, opt)
}

// JoinParallel runs a plan natively (no simulator) on the fully
// parallel engine — the production fast path. The result is
// byte-identical to Execute(nil, ...).
func JoinParallel(l, r *Pairs, p Plan, h Hash) (*JoinIndex, error) {
	return core.ExecuteOpts(nil, l, r, p, h, core.Options{})
}

// RadixClusterOpts is RadixCluster on the configured engine.
func RadixClusterOpts(sim *Sim, in *Pairs, bits, passes int, h Hash, opt Options) (*Clustered, error) {
	return core.RadixClusterOpts(sim, in, bits, passes, h, opt)
}

// PartitionedHashJoinOpts is PartitionedHashJoin on the configured
// engine.
func PartitionedHashJoinOpts(sim *Sim, l, r *Pairs, bits, passes int, h Hash, opt Options) (*JoinIndex, error) {
	return core.PartitionedHashJoinOpts(sim, l, r, bits, passes, h, opt)
}

// RadixJoinOpts is RadixJoin on the configured engine.
func RadixJoinOpts(sim *Sim, l, r *Pairs, bits, passes int, h Hash, opt Options) (*JoinIndex, error) {
	return core.RadixJoinOpts(sim, l, r, bits, passes, h, opt)
}

// ---------------------------------------------------------------------
// Strategy planning (§3.4.4).

// Strategy enumerates the §3.4.4 join strategies.
type Strategy = core.Strategy

// The strategy set of Figures 12 and 13.
const (
	SimpleHash Strategy = core.SimpleHash
	SortMerge  Strategy = core.SortMerge
	PhashL2    Strategy = core.PhashL2
	PhashTLB   Strategy = core.PhashTLB
	PhashL1    Strategy = core.PhashL1
	Phash256   Strategy = core.Phash256
	PhashMin   Strategy = core.PhashMin
	Radix8     Strategy = core.Radix8
	RadixMin   Strategy = core.RadixMin
	Auto       Strategy = core.Auto
)

// Plan is a resolved join plan: strategy plus radix bits and passes.
type Plan = core.Plan

// NewPlan resolves a strategy for a cardinality on a machine; Auto
// picks the cheapest strategy by predicted cost.
func NewPlan(s Strategy, c int, m Machine) Plan { return core.NewPlan(s, c, m) }

// PlanAuto picks the model-predicted cheapest strategy — the role of
// a Monet query optimizer armed with the paper's cost models.
func PlanAuto(c int, m Machine) Plan { return core.PlanAuto(c, m) }

// Execute runs a plan on two operands.
func Execute(sim *Sim, l, r *Pairs, p Plan, h Hash) (*JoinIndex, error) {
	return core.Execute(sim, l, r, p, h)
}

// Strategies lists the concrete strategies in Figure-13 legend order.
func Strategies() []Strategy { return core.Strategies() }

// ---------------------------------------------------------------------
// Cost models (§2, §3.4) and the scan experiment.

// CostModel evaluates the paper's analytical formulas for a machine.
type CostModel = costmodel.Model

// Breakdown decomposes a predicted cost into CPU work and expected
// miss counts.
type Breakdown = costmodel.Breakdown

// NewCostModel returns the cost model for machine m.
func NewCostModel(m Machine) CostModel { return costmodel.New(m) }

// Residuals accumulates per-operator-kind predicted-vs-actual ratios
// from profiled runs (QueryResult.Profile.Residuals); feed the result
// to CostModel.WithResiduals so future predictions carry the learned
// corrections.
type Residuals = costmodel.Residuals

// NewResiduals returns an empty accumulator bound to a machine name.
func NewResiduals(machine string) *Residuals { return costmodel.NewResiduals(machine) }

// ScanResult is one point of the Figure-3 stride-scan experiment.
type ScanResult = scan.Result

// StrideScan runs the §2 scan experiment: iters one-byte reads at the
// given stride on a cold-cache simulator of machine m.
func StrideScan(m Machine, stride, iters int) (ScanResult, error) {
	return scan.Run(m, stride, iters)
}

// ScanIterations is the paper's iteration count (200,000).
const ScanIterations = scan.Iterations

// ---------------------------------------------------------------------
// Experiment harness.

// FigureConfig configures the figure-regeneration harness.
type FigureConfig = experiments.Config

// RunFigures regenerates every figure and ablation of the paper's
// evaluation with the given configuration.
func RunFigures(cfg FigureConfig) error { return experiments.All(cfg) }

// Individual figure runners, for selective regeneration.
var (
	Fig1  = experiments.Fig1
	Fig3  = experiments.Fig3
	Fig9  = experiments.Fig9
	Fig10 = experiments.Fig10
	Fig11 = experiments.Fig11
	Fig12 = experiments.Fig12
	Fig13 = experiments.Fig13

	SelAblation = experiments.SelAblation
	AggAblation = experiments.AggAblation

	// Extension ablations beyond the paper's figures: the §4
	// virtual-memory claim, key skew, the §2 prefetching argument, and
	// a modern-CPU profile.
	VMAblation       = experiments.VMAblation
	BitSplitAblation = experiments.BitSplitAblation
	SkewAblation     = experiments.SkewAblation
	PrefetchAblation = experiments.PrefetchAblation
	ModernAblation   = experiments.ModernAblation
)
