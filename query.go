package monetlite

import (
	"monetlite/internal/core"
	"monetlite/internal/dsm"
	"monetlite/internal/engine"
)

// ---------------------------------------------------------------------
// The BAT-algebra query engine (internal/engine), surfaced as a fluent
// builder: logical plans over decomposed tables, lowered by a physical
// planner that consults the paper's cost models for every choice —
// selection access path (§3.2), join strategy and radix bits (§3.4.4),
// grouping algorithm (§3.2) — and executed MIL-style, one fully
// materialized operator at a time.
//
//	res, err := monetlite.Query(items).
//		WhereRange("date1", 8500, 9499).
//		GroupBy("shipmode", monetlite.Mul(monetlite.Col("price"),
//			monetlite.Sub(monetlite.Const(1), monetlite.Col("discnt")))).
//		Run()

// QueryPlan is a lowered physical plan: Explain it, predict its cost,
// run it natively or instrumented.
type QueryPlan = engine.PhysicalPlan

// QueryResult is a fully materialized query result.
type QueryResult = engine.Result

// Pred is a selection condition on one column.
type Pred = engine.Predicate

// MeasureExpr is a per-tuple arithmetic expression over numeric
// columns, aggregated by GroupBy.
type MeasureExpr = engine.Expr

// Range selects rows whose integer/date column value lies in [lo, hi].
func Range(col string, lo, hi int64) Pred { return engine.RangePred{Col: col, Lo: lo, Hi: hi} }

// EqString selects rows whose string column equals value (re-mapped to
// a byte-code comparison on encoded columns, §3.1).
func EqString(col, value string) Pred { return engine.EqStringPred{Col: col, Value: value} }

// Col references a numeric column in a measure expression.
func Col(name string) MeasureExpr { return engine.ColExpr{Name: name} }

// Const is a numeric literal in a measure expression.
func Const(v float64) MeasureExpr { return engine.ConstExpr{V: v} }

// Add, Sub, Mul and Div combine measure expressions.
func Add(l, r MeasureExpr) MeasureExpr { return engine.BinExpr{Op: '+', L: l, R: r} }

// Sub subtracts r from l.
func Sub(l, r MeasureExpr) MeasureExpr { return engine.BinExpr{Op: '-', L: l, R: r} }

// Mul multiplies two measure expressions.
func Mul(l, r MeasureExpr) MeasureExpr { return engine.BinExpr{Op: '*', L: l, R: r} }

// Div divides l by r.
func Div(l, r MeasureExpr) MeasureExpr { return engine.BinExpr{Op: '/', L: l, R: r} }

// QueryBuilder accumulates a logical plan DAG bottom-up. Invalid
// plans (unknown columns, type mismatches) surface as errors from
// Plan/Explain/Run.
type QueryBuilder struct {
	root     engine.Node
	machine  Machine
	model    *CostModel
	opt      Options
	hasMach  bool
	noPipe   bool
	noReplan bool
	replanF  float64
	aggStr   string
	analyze  bool
}

// Query starts a plan with a scan of a decomposed table.
func Query(t *Table) *QueryBuilder {
	return &QueryBuilder{root: &engine.ScanNode{Table: t}}
}

// On selects the machine profile whose cost models drive the physical
// planning (default: Origin2000, the paper's platform).
func (q *QueryBuilder) On(m Machine) *QueryBuilder {
	q.machine, q.hasMach = m, true
	return q
}

// CostModel plans with a fully configured cost model instead of a bare
// machine profile — typically a host-calibrated machine with learned
// per-operator-kind corrections applied (see NewCostModel and
// CostModel.WithResiduals). Overrides On.
func (q *QueryBuilder) CostModel(m *CostModel) *QueryBuilder {
	q.model = m
	return q
}

// Replan sets the mid-query re-optimization threshold: when the
// observed cardinality at a materialization boundary diverges from the
// planner's estimate by more than the given factor in either
// direction, the remaining operators are re-planned with the observed
// value. factor ≤ 0 disables replanning; 0 < factor ≤ 1 is rejected at
// Plan time; the default is 4. Results are byte-identical with
// replanning on or off — only strategy choices may change.
func (q *QueryBuilder) Replan(factor float64) *QueryBuilder {
	if factor <= 0 {
		q.noReplan, q.replanF = true, 0
	} else {
		q.noReplan, q.replanF = false, factor
	}
	return q
}

// Parallel bounds the worker goroutines of the whole native operator
// tree (0 = GOMAXPROCS, 1 = serial): every bulk materializing
// operator — scan-select, refilter, gather, join, group-aggregate —
// splits its input into morsels and fans them out over one pool of
// this size, producing results byte-identical to a serial run. The
// CSS-tree point-lookup path stays serial (its work is too small to
// split), and instrumented runs (RunSim) stay strictly serial
// regardless: the memory simulator models a single CPU.
func (q *QueryBuilder) Parallel(workers int) *QueryBuilder {
	q.opt = core.Options{Parallelism: workers}
	return q
}

// Pipeline toggles fused cache-resident pipeline execution (default
// on): the planner groups maximal non-breaking operator chains
// (Scan/Select → Refilter → Project / GroupAggregate feed / Limit)
// into pipelines that execute vector-at-a-time through small
// per-worker buffers sized to the machine's L2 cache, instead of
// materializing every intermediate BAT. Pipeline(false) forces the
// legacy MIL-style materializing execution — results are
// byte-identical either way, only the intermediate memory traffic
// differs. Instrumented runs (RunSim) always materialize.
func (q *QueryBuilder) Pipeline(on bool) *QueryBuilder {
	q.noPipe = !on
	return q
}

// GroupStrategy forces the grouping algorithm for every GroupBy in the
// plan: "hash" (§3.2 single table), "sort" (sort/merge), or "radix"
// (radix-partition the feed on the low group-key bits so every
// partition's table is cache-resident, then aggregate partitions
// independently with no merge). The empty string (default) restores
// the cost-model choice. Results are byte-identical whichever strategy
// runs; only the memory-access pattern differs.
func (q *QueryBuilder) GroupStrategy(s string) *QueryBuilder {
	q.aggStr = s
	return q
}

// Analyze toggles EXPLAIN ANALYZE profiling for Run (default off):
// when on, the returned QueryResult carries a per-operator execution
// profile — actual wall time, rows in/out, cost-model-unit memory
// traffic, allocations, morsel counts and per-worker busy time — in
// Result.Profile, renderable via Profile.String() or exportable as a
// Chrome trace. Profiling is observation-only: results stay
// byte-identical with it on or off, at any worker count. When off, the
// engine pays no profiling cost at all (nil-check hooks only).
func (q *QueryBuilder) Analyze(on bool) *QueryBuilder {
	q.analyze = on
	return q
}

// Where filters by a predicate. Directly above the scan the planner
// chooses the access path (scan-select vs CSS-tree) by predicted cost.
func (q *QueryBuilder) Where(p Pred) *QueryBuilder {
	q.root = &engine.SelectNode{Input: q.root, Pred: p}
	return q
}

// WhereRange is Where(Range(col, lo, hi)).
func (q *QueryBuilder) WhereRange(col string, lo, hi int64) *QueryBuilder {
	return q.Where(Range(col, lo, hi))
}

// WhereString is Where(EqString(col, value)).
func (q *QueryBuilder) WhereString(col, value string) *QueryBuilder {
	return q.Where(EqString(col, value))
}

// JoinTable equi-joins the plan so far with a scan of another table on
// leftCol = rightCol. The planner resolves strategy, radix bits and
// passes via the §3.4.4 cost models at the estimated cardinality.
func (q *QueryBuilder) JoinTable(t *Table, leftCol, rightCol string) *QueryBuilder {
	q.root = &engine.JoinNode{
		Left: q.root, Right: &engine.ScanNode{Table: t},
		LeftCol: leftCol, RightCol: rightCol,
	}
	return q
}

// GroupBy groups by a key column and aggregates the measure expression
// per group, producing columns key, count, sum, min, max.
func (q *QueryBuilder) GroupBy(key string, measure MeasureExpr) *QueryBuilder {
	q.root = &engine.GroupAggNode{Input: q.root, Key: key, Measure: measure}
	return q
}

// Select projects (materializes) the named columns.
func (q *QueryBuilder) Select(cols ...string) *QueryBuilder {
	q.root = &engine.ProjectNode{Input: q.root, Cols: cols}
	return q
}

// OrderBy sorts by a column.
func (q *QueryBuilder) OrderBy(col string, desc bool) *QueryBuilder {
	q.root = &engine.OrderByNode{Input: q.root, Col: col, Desc: desc}
	return q
}

// Limit keeps the first n rows.
func (q *QueryBuilder) Limit(n int) *QueryBuilder {
	q.root = &engine.LimitNode{Input: q.root, N: n}
	return q
}

// Plan lowers the accumulated logical DAG into a physical plan.
func (q *QueryBuilder) Plan() (*QueryPlan, error) {
	cfg := engine.Config{Opt: q.opt, NoPipeline: q.noPipe, ForceGroup: q.aggStr,
		Model: q.model, NoReplan: q.noReplan, ReplanFactor: q.replanF}
	if q.hasMach {
		cfg.Machine = q.machine
	}
	return engine.Plan(q.root, cfg)
}

// Explain plans the query and renders the physical operator tree with
// per-operator cost-model predictions.
func (q *QueryBuilder) Explain() (string, error) {
	p, err := q.Plan()
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Run plans and executes the query natively (morsel-driven parallel
// operators; see Parallel). With Analyze(true) the result carries an
// execution profile in Result.Profile.
func (q *QueryBuilder) Run() (*QueryResult, error) {
	p, err := q.Plan()
	if err != nil {
		return nil, err
	}
	if q.analyze {
		return p.RunProfiled(nil)
	}
	return p.Run(nil)
}

// RunSim plans and executes the query on a simulator of the plan's
// machine, for exact L1/L2/TLB miss counts (always serial).
func (q *QueryBuilder) RunSim(sim *Sim) (*QueryResult, error) {
	p, err := q.Plan()
	if err != nil {
		return nil, err
	}
	return p.Run(sim)
}

// PartSchema is the "Part" dimension-table schema (id joins
// item.part).
func PartSchema() Schema { return dsm.PartSchema() }

// PartTable generates and decomposes n deterministic Part rows.
func PartTable(n int, seed uint64) (*Table, error) { return dsm.PartTable(n, seed) }
